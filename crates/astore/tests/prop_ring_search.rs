//! Property tests for SegmentRing recovery's header binary search and the
//! slot bitmap allocator.

use proptest::prelude::*;
use vedb_astore::layout::SlotBitmap;
use vedb_astore::ring::newest_slot_binary_search;

/// Generate a valid ring-header state: `n` slots, a contiguous used range
/// of `used` slots starting at `start` (mod n) with strictly increasing
/// LSNs beginning at `base`.
fn ring_state() -> impl Strategy<Value = Vec<Option<u64>>> {
    (2usize..64, 0usize..64, 0usize..=64, 0u64..1_000_000).prop_map(|(n, start, used, base)| {
        let start = start % n;
        let used = used.min(n);
        let mut keys = vec![None; n];
        let mut lsn = base;
        for i in 0..used {
            keys[(start + i) % n] = Some(lsn);
            lsn += 1 + (i as u64 * 37) % 1000; // strictly increasing
        }
        keys
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn binary_search_matches_linear_max(keys in ring_state()) {
        let expected = keys
            .iter()
            .enumerate()
            .filter_map(|(i, k)| k.map(|v| (v, i)))
            .max()
            .map(|(_, i)| i);
        prop_assert_eq!(newest_slot_binary_search(&keys), expected);
    }

    #[test]
    fn bitmap_never_double_allocates(ops in proptest::collection::vec(any::<u8>(), 1..200)) {
        let mut bm = SlotBitmap::new(40);
        let mut live: Vec<usize> = Vec::new();
        for op in ops {
            if op % 3 == 0 && !live.is_empty() {
                // Release a pseudo-random live slot.
                let idx = live.remove((op as usize / 3) % live.len());
                bm.release(idx);
                prop_assert!(!bm.is_allocated(idx));
            } else if let Some(slot) = bm.alloc() {
                prop_assert!(!live.contains(&slot), "double allocation of {}", slot);
                prop_assert!(bm.is_allocated(slot));
                live.push(slot);
            }
            prop_assert_eq!(bm.allocated(), live.len());
            prop_assert_eq!(bm.free(), 40 - live.len());
        }
    }
}
