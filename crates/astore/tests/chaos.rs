//! Chaos suite: the fault-recovery layer under injected failures.
//!
//! Each test drives TPC-C-style committed-write traffic (mixed-size REDO
//! records through the client / SegmentRing) while the [`FaultPlan`] kills
//! servers mid-append, partitions replicas, drops messages, and expires
//! leases. The invariants, per the §IV-B/§V-E contract:
//!
//! * **Zero lost committed writes** — every append that returned `Ok` is
//!   readable afterwards, byte for byte.
//! * **No `ReplicaFailed` reaching the caller** while the cluster retains a
//!   survivor — the retry layer absorbs crashes by reporting the dead node
//!   to the CM and re-resolving the shrunk/repaired route.
//! * **Bounded retries** — the capped-backoff policy never spins; retry
//!   counts stay within `max_retries` per operation and are visible through
//!   `vedb_sim::metrics::RecoveryCounters`.

use std::sync::Arc;

use vedb_astore::client::AStoreClient;
use vedb_astore::cm::ClusterManager;
use vedb_astore::layout::SegmentClass;
use vedb_astore::{AStoreServer, AppendOpts, RetryPolicy, SegmentOpts, SegmentRing};
use vedb_rdma::RdmaEndpoint;
use vedb_sim::fault::NodeId;
use vedb_sim::{ClusterSpec, SimCtx, SimEnv, VTime};

struct Cluster {
    env: Arc<SimEnv>,
    cm: Arc<ClusterManager>,
    servers: Vec<Arc<AStoreServer>>,
}

fn cluster(lease_ttl: VTime) -> Cluster {
    let env = ClusterSpec::paper_default().build();
    let cm = ClusterManager::new(Arc::clone(&env.faults), lease_ttl, VTime::from_secs(1));
    let servers: Vec<Arc<AStoreServer>> = env
        .astore_nodes
        .iter()
        .enumerate()
        .map(|(i, n)| {
            AStoreServer::new(
                i as NodeId,
                Arc::clone(n),
                8 << 20,
                256 * 1024,
                false,
                VTime::from_millis(500),
                env.model.clone(),
            )
        })
        .collect();
    for s in &servers {
        cm.register_server(Arc::clone(s));
        cm.heartbeat(VTime::ZERO, s.node(), s.free_slots());
    }
    Cluster { env, cm, servers }
}

fn connect(c: &Cluster, ctx: &mut SimCtx, id: u64, policy: RetryPolicy) -> Arc<AStoreClient> {
    let ep = RdmaEndpoint::new(
        c.env.model.clone(),
        Arc::clone(&c.env.faults),
        Arc::clone(&c.env.engine_nic),
    );
    AStoreClient::connect_with_policy(
        ctx,
        Arc::clone(&c.cm),
        ep,
        Arc::clone(&c.env.engine_cpu),
        c.env.model.clone(),
        id,
        VTime::from_millis(50),
        policy,
    )
}

/// TPC-C-ish record: NewOrder/Payment-sized REDO payloads, 64–700 bytes,
/// deterministic per index so reads can verify content.
fn record(i: usize) -> Vec<u8> {
    let len = 64 + (i * 97) % 640;
    let mut v = Vec::with_capacity(len);
    v.extend_from_slice(&(i as u64).to_le_bytes());
    v.resize(len, (i % 251) as u8);
    v
}

/// The ISSUE acceptance scenario: one of three replicas crashes mid-run
/// with 1% message loss on top; a committed-write workload completes with
/// zero data loss, no `ReplicaFailed` surfacing, and retry counters
/// visible through `sim::metrics`.
#[test]
fn crash_one_replica_with_drops_loses_nothing() {
    let c = cluster(VTime::from_secs(3600));
    let mut ctx = SimCtx::new(1, 0xC0FFEE);
    let client = connect(&c, &mut ctx, 1, RetryPolicy::default());
    let seg = client
        .create_segment_with(&mut ctx, SegmentOpts::new(SegmentClass::Log))
        .unwrap();
    let route = client.cached_route(seg.id).unwrap();
    assert_eq!(route.replicas.len(), 3);

    c.env.faults.set_drop_prob_at(ctx.now(), 0.01);
    let n = 200;
    let mut committed: Vec<(u64, Vec<u8>)> = Vec::new();
    for i in 0..n {
        if i == n / 2 {
            // Kill one replica mid-append-stream.
            c.env.faults.crash_at(ctx.now(), route.replicas[0].node);
        }
        let data = record(i);
        let off = client
            .append_with(&mut ctx, seg, &data, AppendOpts::new())
            .unwrap_or_else(|e| panic!("append {i} must not surface an error, got {e}"));
        committed.push((off, data));
    }
    c.env.faults.set_drop_prob_at(ctx.now(), 0.0);

    // Zero lost committed writes: every acked byte reads back.
    for (off, data) in &committed {
        let got = client.read(&mut ctx, seg, *off, data.len()).unwrap();
        assert_eq!(
            &got, data,
            "committed write at offset {off} lost or corrupted"
        );
    }
    // The route shrank to the two survivors (3-node cluster has no spare).
    let after = client.cached_route(seg.id).unwrap();
    assert_eq!(after.replicas.len(), 2);
    assert!(!after
        .replicas
        .iter()
        .any(|l| l.node == route.replicas[0].node));
    assert!(!client.is_frozen(seg));

    // Recovery telemetry: retries happened, are bounded, and are visible.
    let counters = client.recovery_counters();
    assert!(
        counters.retries() >= 1,
        "crash + 1% drops must force retries: {counters:?}"
    );
    assert!(
        counters.retries() <= (n as u64) * RetryPolicy::default().max_retries as u64,
        "retry counts must stay within the policy budget: {counters:?}"
    );
    assert!(
        counters.route_refreshes() >= 1,
        "crash must force a route re-resolution"
    );
    assert!(counters.backoff() > VTime::ZERO);
}

/// Replica crash while a SegmentRing (the WAL's container) is mid-stream:
/// the ring never sees an error and the full REDO byte stream survives.
#[test]
fn ring_traffic_rides_through_replica_crash() {
    let c = cluster(VTime::from_secs(3600));
    let mut ctx = SimCtx::new(1, 0xBEEF);
    let client = connect(&c, &mut ctx, 1, RetryPolicy::default());
    let ring = SegmentRing::create(&mut ctx, Arc::clone(&client), 6, 0).unwrap();

    let victim = client.cached_route(ring.segment_ids()[0]).unwrap().replicas[0].node;
    let mut expected = Vec::new();
    for i in 0..150 {
        if i == 40 {
            c.env.faults.crash_at(ctx.now(), victim);
        }
        let data = record(i);
        let lsn = ring.append(&mut ctx, &data).unwrap();
        assert_eq!(
            lsn,
            expected.len() as u64,
            "LSNs stay dense across the crash"
        );
        expected.extend_from_slice(&data);
    }
    let (start, bytes) = ring.read_from(&mut ctx, 0).unwrap();
    assert_eq!(start, 0);
    assert_eq!(
        bytes, expected,
        "REDO stream must be intact after the crash"
    );
    assert!(client.recovery_counters().retries() >= 1);
}

/// ISSUE 8 group-commit scenario: the segment leader (first replica of
/// the active route) crashes in the middle of a stream of *batched* group
/// flushes driven through [`SegmentRing::append_batch`]. Invariants:
///
/// * **Zero acked-but-lost commits** — every batch that returned `Ok` is
///   readable afterwards, byte for byte.
/// * **No reordering across the batch boundary** — LSNs stay dense and in
///   submission order through the crash, and the recovered REDO stream is
///   exactly the acked batches concatenated in order.
#[test]
fn leader_crash_mid_group_flush_keeps_every_acked_batch() {
    let c = cluster(VTime::from_secs(3600));
    let mut ctx = SimCtx::new(1, 0x6C07);
    let client = connect(&c, &mut ctx, 1, RetryPolicy::default());
    let ring = SegmentRing::create(&mut ctx, Arc::clone(&client), 6, 0).unwrap();
    let victim = client.cached_route(ring.segment_ids()[0]).unwrap().replicas[0].node;

    let mut expected = Vec::new();
    let mut idx = 0usize;
    for batch_no in 0..40 {
        // Consolidated group: 2–6 commit-sized records per flush.
        let group: Vec<Vec<u8>> = (0..2 + (batch_no * 7) % 5)
            .map(|_| {
                let r = record(idx);
                idx += 1;
                r
            })
            .collect();
        let refs: Vec<&[u8]> = group.iter().map(|r| r.as_slice()).collect();
        if batch_no == 20 {
            // Kill the segment leader with this batch in flight.
            c.env.faults.crash_at(ctx.now(), victim);
        }
        let lsns = ring
            .append_batch(&mut ctx, &refs)
            .unwrap_or_else(|e| panic!("batch {batch_no} must not surface an error, got {e}"));
        let mut cur = expected.len() as u64;
        for (lsn, rec) in lsns.iter().zip(&group) {
            assert_eq!(
                *lsn, cur,
                "batch {batch_no}: LSNs must stay dense and ordered across the crash"
            );
            cur += rec.len() as u64;
        }
        for rec in &group {
            expected.extend_from_slice(rec);
        }
    }

    let (start, bytes) = ring.read_from(&mut ctx, 0).unwrap();
    assert_eq!(start, 0);
    assert_eq!(
        bytes, expected,
        "every acked batch must survive the leader crash, in submission order"
    );
    assert!(client.recovery_counters().retries() >= 1);
}

/// Sustained 1% message loss over a long append+read workload: every
/// operation completes, and the total retry count stays near the expected
/// loss rate rather than exploding (bounded backoff, no retry storms).
#[test]
fn one_percent_drops_bounded_retries() {
    let c = cluster(VTime::from_secs(3600));
    let mut ctx = SimCtx::new(1, 0xD06);
    let client = connect(&c, &mut ctx, 1, RetryPolicy::default());
    let seg = client
        .create_segment_with(&mut ctx, SegmentOpts::new(SegmentClass::Log))
        .unwrap();
    c.env.faults.set_drop_prob_at(ctx.now(), 0.01);
    let n = 300;
    let mut offs = Vec::new();
    for i in 0..n {
        let data = record(i);
        let off = client
            .append_with(&mut ctx, seg, &data, AppendOpts::new())
            .unwrap();
        offs.push((off, data.len()));
    }
    for (i, (off, len)) in offs.iter().enumerate() {
        let got = client.read(&mut ctx, seg, *off, *len).unwrap();
        assert_eq!(got, record(i));
    }
    c.env.faults.set_drop_prob_at(ctx.now(), 0.0);
    let counters = client.recovery_counters();
    // ~1% of ~900 one-sided messages + ~300 reads → a handful of retries;
    // 10× the expectation still catches a retry storm.
    assert!(
        counters.retries() <= 120,
        "retry storm under 1% drops: {counters:?}"
    );
}

/// A partitioned replica (alive but unreachable) serves no reads; the read
/// path fails over to the other replicas and keeps the data available.
#[test]
fn reads_survive_partition_of_primary_replica() {
    let c = cluster(VTime::from_secs(3600));
    let mut ctx = SimCtx::new(1, 0xFA11);
    let client = connect(&c, &mut ctx, 1, RetryPolicy::default());
    let seg = client
        .create_segment_with(&mut ctx, SegmentOpts::new(SegmentClass::Log))
        .unwrap();
    let data = b"partitioned-but-available".to_vec();
    let off = client
        .append_with(&mut ctx, seg, &data, AppendOpts::new())
        .unwrap();

    let route = client.cached_route(seg.id).unwrap();
    c.env.metrics.trace().enable();
    c.env.faults.partition_at(ctx.now(), route.replicas[0].node);
    for _ in 0..10 {
        let got = client.read(&mut ctx, seg, off, data.len()).unwrap();
        assert_eq!(got, data);
    }
    assert!(client.recovery_counters().read_failovers() >= 10);
    c.env.faults.heal_at(ctx.now(), route.replicas[0].node);
    // Timestamped injections land in the deployment trace, so the chaos
    // window is reconstructable from the exported report.
    let faults: Vec<_> = c
        .env
        .metrics
        .trace()
        .events()
        .into_iter()
        .filter(|e| e.component == "fault")
        .collect();
    assert_eq!(faults.len(), 2);
    assert_eq!(faults[0].op, "partition");
    assert_eq!(faults[1].op, "heal");
    assert_eq!(faults[0].client, route.replicas[0].node as u64);
    c.env.metrics.trace().disable();
}

/// Lease TTL expires repeatedly while traffic runs: control-plane calls
/// renew the same epoch transparently; the client is never re-fenced and
/// never mints a new epoch.
#[test]
fn lease_expiry_mid_traffic_renews_same_epoch() {
    let ttl = VTime::from_secs(5);
    let c = cluster(ttl);
    let mut ctx = SimCtx::new(1, 0x1EA5E);
    let client = connect(&c, &mut ctx, 1, RetryPolicy::default());
    let epoch = client.lease().epoch;

    for round in 0..4 {
        // Let the TTL lapse, then run control-plane + data-plane traffic.
        ctx.advance(ttl + VTime::from_secs(1));
        let seg = client
            .create_segment_with(&mut ctx, SegmentOpts::new(SegmentClass::Log))
            .unwrap();
        let data = record(round);
        let off = client
            .append_with(&mut ctx, seg, &data, AppendOpts::new())
            .unwrap();
        assert_eq!(client.read(&mut ctx, seg, off, data.len()).unwrap(), data);
        client.delete_segment(&mut ctx, seg).unwrap();
    }
    assert_eq!(
        client.lease().epoch,
        epoch,
        "renewal must never mint a new epoch"
    );
    assert!(client.recovery_counters().lease_renewals() >= 4);
}

/// Fencing regression: the retry layer renews leases but must never let a
/// *superseded* incarnation back in — even though it retries and renews,
/// every control-plane call keeps failing with a fencing error.
#[test]
fn superseded_epoch_is_fenced_through_the_retry_layer() {
    let c = cluster(VTime::from_secs(3600));
    let mut ctx = SimCtx::new(1, 0xFE7CE);
    let old = connect(&c, &mut ctx, 7, RetryPolicy::default());
    let seg = old
        .create_segment_with(&mut ctx, SegmentOpts::new(SegmentClass::Log))
        .unwrap();
    old.append_with(&mut ctx, seg, b"epoch-1-data", AppendOpts::new())
        .unwrap();

    // A new incarnation of the same client takes over: fresh epoch.
    let new = connect(&c, &mut ctx, 7, RetryPolicy::default());
    assert!(new.lease().epoch > old.lease().epoch);

    // The superseded client keeps retrying/renewing — and keeps losing.
    for _ in 0..3 {
        let err = old
            .create_segment_with(&mut ctx, SegmentOpts::new(SegmentClass::Log))
            .unwrap_err();
        assert!(
            err.is_fencing(),
            "superseded epoch must stay fenced, got {err}"
        );
    }
    assert!(old.renew_lease(&mut ctx).unwrap_err().is_fencing());

    // The new incarnation adopts and extends the data unharmed.
    let adopted = new
        .adopt_segment(&mut ctx, seg.id, SegmentClass::Log)
        .unwrap();
    assert_eq!(new.read(&mut ctx, adopted, 0, 12).unwrap(), b"epoch-1-data");
    new.append_with(&mut ctx, adopted, b"+epoch-2", AppendOpts::new())
        .unwrap();
}

/// Crash + restore churn: a replica dies, the CM repairs routes onto the
/// survivors, the node returns and is reintegrated — and a brand-new
/// client recovers every committed byte from the repaired replica set,
/// including the io-meta copied during re-replication.
#[test]
fn repair_copies_io_meta_so_recovery_sees_full_length() {
    let c = cluster(VTime::from_secs(3600));
    let mut ctx = SimCtx::new(1, 0x10_AD);
    let client = connect(&c, &mut ctx, 1, RetryPolicy::default());
    let seg = client
        .create_segment_with(
            &mut ctx,
            SegmentOpts::new(SegmentClass::Log).with_replication(2),
        )
        .unwrap();
    let mut total = 0u64;
    for i in 0..20 {
        let data = record(i);
        client
            .append_with(&mut ctx, seg, &data, AppendOpts::new())
            .unwrap();
        total += data.len() as u64;
    }

    // Kill one of the two replicas; the CM's failure sweep re-replicates
    // the segment (slot data AND io-meta) onto the spare third node.
    let route = client.cached_route(seg.id).unwrap();
    let dead = route.replicas[0].node;
    c.env.faults.crash_at(ctx.now(), dead);
    ctx.advance(VTime::from_secs(5));
    for s in &c.servers {
        if s.node() != dead {
            c.cm.heartbeat(ctx.now(), s.node(), s.free_slots());
        }
    }
    c.cm.tick(&mut ctx);
    let repaired = c.cm.get_route(&mut ctx, seg.id).unwrap();
    assert_eq!(
        repaired.replicas.len(),
        2,
        "re-replicated onto the spare node"
    );

    // A fresh incarnation recovers the segment length from io-meta alone —
    // whichever replica it reads, including the freshly repaired one.
    let client2 = connect(&c, &mut ctx, 1, RetryPolicy::default());
    let adopted = client2
        .adopt_segment(&mut ctx, seg.id, SegmentClass::Log)
        .unwrap();
    assert_eq!(
        client2.segment_len(adopted),
        total,
        "io-meta must survive repair"
    );
}

/// Fault-free control run: with no injected faults, the RDMA verb counts
/// published into the cluster registry must match the workload's ground
/// truth exactly — `N` appends over a 3-replica route are `3N` chained
/// WRITEs, `N` reads are `N` one-sided READs off the first replica, and
/// nothing is dropped or retried.
#[test]
fn fault_free_rdma_counts_match_ground_truth() {
    let c = cluster(VTime::from_secs(3600));
    c.cm.attach_metrics(Arc::clone(&c.env.metrics));
    let mut ctx = SimCtx::new(9, 0xFEED);
    let ep = RdmaEndpoint::with_metrics(
        c.env.model.clone(),
        Arc::clone(&c.env.faults),
        Arc::clone(&c.env.engine_nic),
        &c.env.metrics,
    );
    let client = AStoreClient::connect_with_policy(
        &mut ctx,
        Arc::clone(&c.cm),
        ep,
        Arc::clone(&c.env.engine_cpu),
        c.env.model.clone(),
        9,
        VTime::from_millis(50),
        RetryPolicy::default(),
    );
    let seg = client
        .create_segment_with(&mut ctx, SegmentOpts::new(SegmentClass::Log))
        .unwrap();
    let replicas = client.cached_route(seg.id).unwrap().replicas.len() as u64;
    assert_eq!(replicas, 3);

    let chain_writes = c.env.metrics.counter("rdma", "chain_writes");
    let rdma_reads = c.env.metrics.counter("rdma", "reads");
    let appends = c.env.metrics.counter("astore", "appends");
    let astore_reads = c.env.metrics.counter("astore", "reads");
    let drops = c.env.metrics.counter("rdma", "drops");
    let pmem_writes = c.env.metrics.counter("pmem", "writes");

    let n = 120u64;
    let (cw0, rr0, ap0, ar0, pw0) = (
        chain_writes.get(),
        rdma_reads.get(),
        appends.get(),
        astore_reads.get(),
        pmem_writes.get(),
    );
    let mut committed = Vec::new();
    for i in 0..n as usize {
        let data = record(i);
        let off = client
            .append_with(&mut ctx, seg, &data, AppendOpts::new())
            .unwrap();
        committed.push((off, data));
    }
    assert_eq!(
        chain_writes.get() - cw0,
        n * replicas,
        "one chained WRITE per replica per append"
    );
    assert_eq!(appends.get() - ap0, n);
    // Each replica's chained WRITE lands the record and the io-meta stamp
    // on its PMem device: two device writes per replica per append.
    assert_eq!(
        pmem_writes.get() - pw0,
        n * replicas * 2,
        "record + io-meta per replica per append"
    );

    for (off, data) in &committed {
        let got = client.read(&mut ctx, seg, *off, data.len()).unwrap();
        assert_eq!(&got, data);
    }
    assert_eq!(
        rdma_reads.get() - rr0,
        n,
        "fault-free reads are served by the first replica in one READ"
    );
    assert_eq!(astore_reads.get() - ar0, n);

    // Nothing was dropped and the recovery layer never engaged.
    assert_eq!(drops.get(), 0, "fault-free run must not drop");
    assert_eq!(client.recovery_counters().retries(), 0);
    assert_eq!(client.recovery_counters().read_failovers(), 0);

    // The per-op latency histograms saw exactly the ops that ran.
    assert_eq!(c.env.metrics.latency("astore", "append").count(), n);
    assert_eq!(c.env.metrics.latency("astore", "read").count(), n);
    assert_eq!(c.env.metrics.latency("rdma", "write_chain").count() % n, 0);
}
