//! AStore edge cases: consistency hygiene of §IV-C under adversarial
//! schedules — delayed cleanup vs route refresh, lease fencing across
//! client incarnations, recovery of empty/odd-shaped rings.

use std::sync::Arc;

use vedb_astore::client::AStoreClient;
use vedb_astore::cm::ClusterManager;
use vedb_astore::layout::SegmentClass;
use vedb_astore::{AStoreServer, AppendOpts, SegmentOpts, SegmentRing};
use vedb_rdma::RdmaEndpoint;
use vedb_sim::fault::NodeId;
use vedb_sim::{ClusterSpec, SimCtx, SimEnv, VTime};

struct Cluster {
    env: Arc<SimEnv>,
    cm: Arc<ClusterManager>,
    servers: Vec<Arc<AStoreServer>>,
}

fn cluster(cleanup_delay: VTime) -> Cluster {
    let env = ClusterSpec::paper_default().build();
    let cm = ClusterManager::new(
        Arc::clone(&env.faults),
        VTime::from_secs(600),
        VTime::from_secs(30),
    );
    let servers: Vec<Arc<AStoreServer>> = env
        .astore_nodes
        .iter()
        .enumerate()
        .map(|(i, n)| {
            AStoreServer::new(
                i as NodeId,
                Arc::clone(n),
                8 << 20,
                256 * 1024,
                false,
                cleanup_delay,
                env.model.clone(),
            )
        })
        .collect();
    for s in &servers {
        cm.register_server(Arc::clone(s));
        cm.heartbeat(VTime::ZERO, s.node(), s.free_slots());
    }
    Cluster { env, cm, servers }
}

fn connect(c: &Cluster, ctx: &mut SimCtx, id: u64, refresh: VTime) -> Arc<AStoreClient> {
    let ep = RdmaEndpoint::new(
        c.env.model.clone(),
        Arc::clone(&c.env.faults),
        Arc::clone(&c.env.engine_nic),
    );
    AStoreClient::connect(
        ctx,
        Arc::clone(&c.cm),
        ep,
        Arc::clone(&c.env.engine_cpu),
        c.env.model.clone(),
        id,
        refresh,
    )
}

/// §IV-C's central timing argument: a deleted segment's space is not
/// reused before every client has had a chance to refresh its routes —
/// the cleanup delay exceeds the refresh period.
#[test]
fn delayed_cleanup_outlives_route_refresh() {
    let cleanup_delay = VTime::from_millis(500);
    let refresh = VTime::from_millis(50);
    let c = cluster(cleanup_delay);
    let mut ctx = SimCtx::new(1, 7);
    let client = connect(&c, &mut ctx, 1, refresh);

    let seg = client
        .create_segment_with(&mut ctx, SegmentOpts::new(SegmentClass::Log))
        .unwrap();
    client
        .append_with(&mut ctx, seg, b"live-data", AppendOpts::new())
        .unwrap();
    client.delete_segment(&mut ctx, seg).unwrap();

    // Within the refresh period the slot must still be intact on every
    // server (stale one-sided readers see the old bytes, never recycled
    // garbage).
    ctx.advance(refresh);
    for s in &c.servers {
        if s.hosts_segment(seg.id) {
            let mut sctx = ctx.fork();
            assert!(
                s.run_cleanup(&mut sctx).is_empty(),
                "cleanup must be delayed"
            );
        }
    }
    // After the (longer) cleanup delay the slots are reclaimed.
    ctx.advance(cleanup_delay);
    let mut freed = 0;
    for s in &c.servers {
        let mut sctx = ctx.fork();
        freed += s.run_cleanup(&mut sctx).len();
    }
    assert_eq!(freed, 3, "all three replicas reclaimed after the delay");
}

/// A fenced-out client incarnation cannot delete or create segments, even
/// though its cached routes still allow (stale) reads.
#[test]
fn stale_incarnation_is_fenced_from_control_plane() {
    let c = cluster(VTime::from_millis(500));
    let mut ctx = SimCtx::new(1, 7);
    let old = connect(&c, &mut ctx, 42, VTime::from_secs(3600));
    let seg = old
        .create_segment_with(&mut ctx, SegmentOpts::new(SegmentClass::Log))
        .unwrap();
    old.append_with(&mut ctx, seg, b"original", AppendOpts::new())
        .unwrap();

    // New incarnation takes over (same client identity).
    let new = connect(&c, &mut ctx, 42, VTime::from_millis(50));
    let adopted = new
        .adopt_segment(&mut ctx, seg.id, SegmentClass::Log)
        .unwrap();

    // Old incarnation: control-plane ops rejected.
    assert!(old
        .create_segment_with(&mut ctx, SegmentOpts::new(SegmentClass::Log))
        .unwrap_err()
        .is_fencing());
    assert!(old.delete_segment(&mut ctx, seg).unwrap_err().is_fencing());
    // New incarnation owns the data.
    assert_eq!(new.read(&mut ctx, adopted, 0, 8).unwrap(), b"original");
}

#[test]
fn recover_empty_and_single_segment_rings() {
    let c = cluster(VTime::from_millis(500));
    let mut ctx = SimCtx::new(1, 7);
    let client = connect(&c, &mut ctx, 1, VTime::from_millis(50));

    // Ring that never received an append.
    let ring = SegmentRing::create(&mut ctx, Arc::clone(&client), 3, 0).unwrap();
    let ids = ring.segment_ids();
    drop(ring);
    let client2 = connect(&c, &mut ctx, 1, VTime::from_millis(50));
    let rec = SegmentRing::recover(&mut ctx, Arc::clone(&client2), &ids).unwrap();
    // The freshly opened slot 0 header counts as the newest segment.
    assert_eq!(rec.next_lsn(), 0);
    let lsn = rec.append(&mut ctx, b"first-bytes").unwrap();
    assert_eq!(lsn, 0);

    // Recover again after exactly one append.
    let ids2 = rec.segment_ids();
    drop(rec);
    let client3 = connect(&c, &mut ctx, 1, VTime::from_millis(50));
    let rec2 = SegmentRing::recover(&mut ctx, client3, &ids2).unwrap();
    assert_eq!(rec2.next_lsn(), 11);
    let (start, bytes) = rec2.read_from(&mut ctx, 0).unwrap();
    assert_eq!(start, 0);
    assert_eq!(&bytes, b"first-bytes");
}

/// Route repair after node death followed by reintegration cleans exactly
/// the stale copy and leaves live replicas alone.
#[test]
fn repair_then_reintegrate_cleans_only_stale_copies() {
    let c = cluster(VTime::from_millis(100));
    let mut ctx = SimCtx::new(1, 7);
    let client = connect(&c, &mut ctx, 1, VTime::from_millis(20));
    let seg = client
        .create_segment_with(
            &mut ctx,
            SegmentOpts::new(SegmentClass::Log).with_replication(2),
        )
        .unwrap();
    client
        .append_with(&mut ctx, seg, b"replicated-payload", AppendOpts::new())
        .unwrap();
    let route = client.cached_route(seg.id).unwrap();
    let dead = route.replicas[0].node;

    c.env.faults.crash_at(ctx.now(), dead);
    ctx.advance(VTime::from_secs(60));
    for s in &c.servers {
        if s.node() != dead {
            c.cm.heartbeat(ctx.now(), s.node(), s.free_slots());
        }
    }
    c.cm.tick(&mut ctx);
    let new_route = c.cm.get_route(&mut ctx, seg.id).unwrap();
    assert_eq!(new_route.replicas.len(), 2);

    // Node returns: only its (stale) copy is scheduled for cleanup.
    c.env.faults.restore_at(ctx.now(), dead);
    let cleaned = c.cm.reintegrate_server(&mut ctx, dead);
    assert_eq!(cleaned, 1);
    // Reads still served from the repaired replica set.
    client.refresh_all_routes(&mut ctx);
    assert_eq!(
        client.read(&mut ctx, seg, 0, 18).unwrap(),
        b"replicated-payload"
    );
}

/// Appends around the exact segment boundary: a record that exactly fills
/// the segment, then one that forces the advance.
#[test]
fn exact_boundary_append() {
    let c = cluster(VTime::from_millis(500));
    let mut ctx = SimCtx::new(1, 7);
    let client = connect(&c, &mut ctx, 1, VTime::from_millis(50));
    let ring = SegmentRing::create(&mut ctx, Arc::clone(&client), 3, 0).unwrap();
    let cap = ring.segment_data_capacity() as usize;

    let fill = vec![1u8; cap]; // exactly fills slot 0's data area
    let a = ring.append(&mut ctx, &fill).unwrap();
    assert_eq!(a, 0);
    let b = ring.append(&mut ctx, b"next-seg").unwrap();
    assert_eq!(b, cap as u64);
    let (_, bytes) = ring.read_from(&mut ctx, cap as u64).unwrap();
    assert_eq!(&bytes, b"next-seg");
    assert_eq!(ring.empty_slots(), 1);
}
