//! The central cluster manager (CM).
//!
//! §IV-A: "The Cluster Manager is responsible for managing the resources of
//! the entire cluster ... storage node management, registration, fault
//! detection, background task scheduling, capacity expansion, and load
//! balancing", plus the client leases of §IV-C.
//!
//! The CM is deliberately off the data path: clients talk to it only to
//! create/delete segments and to refresh routes; reads and writes go
//! straight to PMem with one-sided verbs. Control operations cost
//! milliseconds (paper: "the entire process of Create takes a few
//! milliseconds"), modelled as RPC round-trips plus a fixed CM processing
//! delay.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use vedb_sim::fault::NodeId;
use vedb_sim::{Counter, FaultPlan, MetricsRegistry, RecoveryCounters, SimCtx, VTime};

use crate::layout::SegmentClass;
use crate::server::AStoreServer;
use crate::{AStoreError, Result, SegmentId, SegmentLoc};

/// Fixed CM processing delay per control operation.
const CM_PROC: VTime = VTime::from_micros(800);

/// A client lease (§IV-C): ownership of client-visible state is fenced by
/// `epoch` — a client that crashes and returns holds a stale epoch and is
/// rejected at the control plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lease {
    /// The owning client.
    pub client_id: u64,
    /// Monotonic fencing token.
    pub epoch: u64,
}

/// A segment's routing entry.
#[derive(Debug, Clone)]
pub struct Route {
    /// Replication class.
    pub class: SegmentClass,
    /// Live replicas.
    pub replicas: Vec<SegmentLoc>,
    /// Bumped on every replica-set change; clients compare versions when
    /// refreshing.
    pub version: u64,
}

struct NodeInfo {
    server: Arc<AStoreServer>,
    last_heartbeat: VTime,
    free_slots: usize,
    alive: bool,
}

struct CmState {
    nodes: HashMap<NodeId, NodeInfo>,
    routes: HashMap<SegmentId, Route>,
    next_segment: SegmentId,
    /// client id -> (current epoch, lease expiry)
    leases: HashMap<u64, (u64, VTime)>,
    next_epoch: u64,
}

/// Control-plane metric handles (component `"astore"`), re-resolved whenever
/// a deployment registry is attached.
struct CmMetrics {
    registry: Arc<MetricsRegistry>,
    lease_acquires: Arc<Counter>,
    lease_renewals: Arc<Counter>,
    segment_creates: Arc<Counter>,
    segment_deletes: Arc<Counter>,
    route_lookups: Arc<Counter>,
    repairs: Arc<Counter>,
}

impl CmMetrics {
    fn register(registry: Arc<MetricsRegistry>) -> Self {
        CmMetrics {
            lease_acquires: registry.counter("astore", "lease_acquires"),
            lease_renewals: registry.counter("astore", "lease_renewals"),
            segment_creates: registry.counter("astore", "cm_segment_creates"),
            segment_deletes: registry.counter("astore", "cm_segment_deletes"),
            route_lookups: registry.counter("astore", "cm_route_lookups"),
            repairs: registry.counter("astore", "cm_repairs"),
            registry,
        }
    }
}

/// The cluster manager.
pub struct ClusterManager {
    faults: Arc<FaultPlan>,
    lease_ttl: VTime,
    heartbeat_timeout: VTime,
    state: Mutex<CmState>,
    /// Optional recovery telemetry sink (shared with the client SDK).
    counters: Mutex<Option<Arc<RecoveryCounters>>>,
    /// Deployment metric registry; detached until the assembler attaches the
    /// cluster-wide one (mirrors `attach_recovery_counters`).
    metrics: Mutex<CmMetrics>,
}

impl ClusterManager {
    /// Create a CM. `lease_ttl` bounds how long a silent client keeps
    /// ownership; `heartbeat_timeout` is how long a silent server is
    /// trusted.
    pub fn new(faults: Arc<FaultPlan>, lease_ttl: VTime, heartbeat_timeout: VTime) -> Arc<Self> {
        Arc::new(ClusterManager {
            faults,
            lease_ttl,
            heartbeat_timeout,
            state: Mutex::new(CmState {
                nodes: HashMap::new(),
                routes: HashMap::new(),
                next_segment: 1,
                leases: HashMap::new(),
                next_epoch: 1,
            }),
            counters: Mutex::new(None),
            metrics: Mutex::new(CmMetrics::register(MetricsRegistry::detached())),
        })
    }

    /// Attach a [`RecoveryCounters`] sink: repair actions (re-replication)
    /// are counted there so tests and operators can observe failover
    /// activity alongside the client SDK's retry counters.
    pub fn attach_recovery_counters(&self, counters: Arc<RecoveryCounters>) {
        *self.counters.lock() = Some(counters);
    }

    /// Attach the deployment-wide [`MetricsRegistry`]. Control-plane
    /// counters (`astore.lease_*`, `astore.cm_*`) are re-registered there,
    /// and clients connecting through this CM inherit the registry for their
    /// data-path metrics — so component constructors keep their signatures.
    pub fn attach_metrics(&self, registry: Arc<MetricsRegistry>) {
        *self.metrics.lock() = CmMetrics::register(registry);
    }

    /// The registry this CM (and clients connected through it) publish into.
    pub fn metrics(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.metrics.lock().registry)
    }

    /// Register a storage node.
    pub fn register_server(&self, server: Arc<AStoreServer>) {
        let mut st = self.state.lock();
        let free = server.free_slots();
        st.nodes.insert(
            server.node(),
            NodeInfo {
                server,
                last_heartbeat: VTime::ZERO,
                free_slots: free,
                alive: true,
            },
        );
    }

    /// Look up a registered server (used by the engine to hand push-down
    /// fragments to the EBP hosts).
    pub fn server(&self, node: NodeId) -> Option<Arc<AStoreServer>> {
        self.state
            .lock()
            .nodes
            .get(&node)
            .map(|n| Arc::clone(&n.server))
    }

    /// All currently-alive servers.
    pub fn live_servers(&self) -> Vec<Arc<AStoreServer>> {
        self.state
            .lock()
            .nodes
            .values()
            .filter(|n| n.alive)
            .map(|n| Arc::clone(&n.server))
            .collect()
    }

    /// Acquire (or re-acquire) a lease for `client_id`. Any previous epoch
    /// for the same client is superseded.
    pub fn acquire_lease(&self, ctx: &mut SimCtx, client_id: u64) -> Lease {
        ctx.advance(CM_PROC);
        self.metrics.lock().lease_acquires.inc();
        let mut st = self.state.lock();
        let epoch = st.next_epoch;
        st.next_epoch += 1;
        let expiry = ctx.now() + self.lease_ttl;
        st.leases.insert(client_id, (epoch, expiry));
        Lease { client_id, epoch }
    }

    /// Renew a lease; fails with [`AStoreError::LeaseExpired`] if the lease
    /// was **superseded** (a newer epoch exists for the client).
    ///
    /// A merely *timed-out* lease with the still-current epoch is renewable:
    /// epoch supersession is the real fence (§IV-C), while TTL expiry just
    /// bounds how long a silent client keeps ownership. This is what lets
    /// the SDK's retry layer recover from `LeaseExpired` on a slow client
    /// without re-acquiring (which would mint a new epoch and fence the
    /// client's own in-flight operations).
    pub fn renew_lease(&self, ctx: &mut SimCtx, lease: Lease) -> Result<()> {
        ctx.advance(CM_PROC);
        self.metrics.lock().lease_renewals.inc();
        let mut st = self.state.lock();
        match st.leases.get(&lease.client_id) {
            Some((epoch, _)) if *epoch != lease.epoch => {
                return Err(AStoreError::LeaseExpired {
                    presented: lease.epoch,
                    current: *epoch,
                });
            }
            Some(_) => {}
            None => {
                return Err(AStoreError::LeaseExpired {
                    presented: lease.epoch,
                    current: 0,
                })
            }
        }
        let exp = ctx.now() + self.lease_ttl;
        st.leases.insert(lease.client_id, (lease.epoch, exp));
        Ok(())
    }

    fn validate_locked(&self, st: &CmState, lease: Lease, now: VTime) -> Result<()> {
        match st.leases.get(&lease.client_id) {
            Some((epoch, expiry)) => {
                // Superseded epoch or lapsed TTL: either way the lease no
                // longer grants ownership.
                if *epoch != lease.epoch || now > *expiry {
                    Err(AStoreError::LeaseExpired {
                        presented: lease.epoch,
                        current: *epoch,
                    })
                } else {
                    Ok(())
                }
            }
            None => Err(AStoreError::LeaseExpired {
                presented: lease.epoch,
                current: 0,
            }),
        }
    }

    /// Validate a lease without renewing it.
    pub fn validate_lease(&self, now: VTime, lease: Lease) -> Result<()> {
        self.validate_locked(&self.state.lock(), lease, now)
    }

    /// Create a segment: pick the `replication` live nodes with the most
    /// free slots, allocate a slot on each, and record the route.
    pub fn create_segment(
        &self,
        ctx: &mut SimCtx,
        lease: Lease,
        class: SegmentClass,
        replication: usize,
    ) -> Result<(SegmentId, Route)> {
        ctx.advance(CM_PROC);
        self.metrics.lock().segment_creates.inc();
        let (seg, targets) = {
            let mut st = self.state.lock();
            self.validate_locked(&st, lease, ctx.now())?;
            let mut live: Vec<(&NodeId, &NodeInfo)> = st
                .nodes
                .iter()
                .filter(|(id, n)| {
                    n.alive && !self.faults.is_crashed(**id) && !self.faults.is_partitioned(**id)
                })
                .collect();
            if live.len() < replication {
                return Err(AStoreError::NotEnoughServers {
                    live: live.len(),
                    required: replication,
                });
            }
            // Load balancing: most free capacity first (§IV-A: "the CM
            // returns the appropriate nodes according to the capacity and
            // load").
            live.sort_by(|a, b| b.1.free_slots.cmp(&a.1.free_slots).then(a.0.cmp(b.0)));
            let targets: Vec<Arc<AStoreServer>> = live
                .iter()
                .take(replication)
                .map(|(_, n)| Arc::clone(&n.server))
                .collect();
            let seg = st.next_segment;
            st.next_segment += 1;
            (seg, targets)
        };
        // Allocate on each replica (RPC-ish: server-side alloc work).
        let mut replicas = Vec::with_capacity(replication);
        for server in &targets {
            let offset = server.handle_alloc(ctx, seg, class)?;
            replicas.push(SegmentLoc {
                node: server.node(),
                offset,
            });
        }
        let route = Route {
            class,
            replicas,
            version: 1,
        };
        let mut st = self.state.lock();
        for loc in &route.replicas {
            if let Some(n) = st.nodes.get_mut(&loc.node) {
                n.free_slots = n.free_slots.saturating_sub(1);
            }
        }
        st.routes.insert(seg, route.clone());
        Ok((seg, route))
    }

    /// Delete a segment: drop the route and ask the hosting servers to
    /// clean the slots up (delayed on the server side, §IV-C).
    pub fn delete_segment(&self, ctx: &mut SimCtx, lease: Lease, seg: SegmentId) -> Result<()> {
        ctx.advance(CM_PROC);
        self.metrics.lock().segment_deletes.inc();
        let route = {
            let mut st = self.state.lock();
            self.validate_locked(&st, lease, ctx.now())?;
            st.routes
                .remove(&seg)
                .ok_or(AStoreError::UnknownSegment(seg))?
        };
        let servers: Vec<Arc<AStoreServer>> = {
            let st = self.state.lock();
            route
                .replicas
                .iter()
                .filter_map(|loc| st.nodes.get(&loc.node).map(|n| Arc::clone(&n.server)))
                .collect()
        };
        for server in servers {
            server.handle_enqueue_cleanup(ctx.now(), seg);
        }
        Ok(())
    }

    /// Fetch a segment's current route (clients poll this on a short
    /// period; cost is one CM round trip).
    pub fn get_route(&self, ctx: &mut SimCtx, seg: SegmentId) -> Result<Route> {
        ctx.advance(CM_PROC);
        self.metrics.lock().route_lookups.inc();
        self.state
            .lock()
            .routes
            .get(&seg)
            .cloned()
            .ok_or(AStoreError::UnknownSegment(seg))
    }

    /// Route version without charging time (driver-internal fast path for
    /// tests).
    pub fn peek_route_version(&self, seg: SegmentId) -> Option<u64> {
        self.state.lock().routes.get(&seg).map(|r| r.version)
    }

    /// Server heartbeat: capacity + liveness report (§IV-A).
    pub fn heartbeat(&self, now: VTime, node: NodeId, free_slots: usize) {
        let mut st = self.state.lock();
        if let Some(n) = st.nodes.get_mut(&node) {
            n.last_heartbeat = now;
            n.free_slots = free_slots;
            n.alive = true;
        }
    }

    /// Periodic failure detection + repair. Nodes silent for longer than
    /// `heartbeat_timeout` (or crash-injected) are marked dead; their
    /// replicas are removed from routes. Log-class segments are re-replicated
    /// onto a live node by copying from a surviving replica; EBP-class
    /// segments (replication 1) are simply dropped — losing them only
    /// lowers the cache hit ratio (§V-E).
    ///
    /// Returns the segments whose routes changed.
    pub fn tick(&self, ctx: &mut SimCtx) -> Vec<SegmentId> {
        let now = ctx.now();
        let dead: Vec<NodeId> = {
            let mut st = self.state.lock();
            let timeout = self.heartbeat_timeout;
            let mut dead = Vec::new();
            for (id, n) in st.nodes.iter_mut() {
                let silent = now.saturating_sub(n.last_heartbeat) > timeout;
                if n.alive && (silent || self.faults.is_crashed(*id)) {
                    n.alive = false;
                    dead.push(*id);
                }
            }
            dead
        };
        if dead.is_empty() {
            return Vec::new();
        }
        self.repair_after_death(ctx, &dead)
    }

    /// A client observed `node` unreachable on the data path and reported
    /// it (push-based failure detection, complementing the heartbeat pull
    /// path of [`ClusterManager::tick`]). The CM verifies the claim against
    /// its own connectivity before acting — a client behind a partition must
    /// not be able to evict a healthy node.
    ///
    /// Returns the segments whose routes changed.
    pub fn report_failure(&self, ctx: &mut SimCtx, node: NodeId) -> Vec<SegmentId> {
        ctx.advance(CM_PROC);
        if !(self.faults.is_crashed(node) || self.faults.is_partitioned(node)) {
            return Vec::new();
        }
        let newly_dead = {
            let mut st = self.state.lock();
            match st.nodes.get_mut(&node) {
                Some(n) if n.alive => {
                    n.alive = false;
                    true
                }
                _ => false,
            }
        };
        if !newly_dead {
            return Vec::new();
        }
        self.repair_after_death(ctx, &[node])
    }

    /// Remove `dead` nodes from every route and re-replicate Log-class
    /// segments from a surviving replica (shared by [`ClusterManager::tick`]
    /// and [`ClusterManager::report_failure`]).
    fn repair_after_death(&self, ctx: &mut SimCtx, dead: &[NodeId]) -> Vec<SegmentId> {
        let mut changed = Vec::new();
        let affected: Vec<SegmentId> = {
            let st = self.state.lock();
            st.routes
                .iter()
                .filter(|(_, r)| r.replicas.iter().any(|l| dead.contains(&l.node)))
                .map(|(s, _)| *s)
                .collect()
        };
        for seg in affected {
            let (class, survivors, lost_count) = {
                let mut st = self.state.lock();
                let r = st.routes.get_mut(&seg).expect("route exists");
                let before = r.replicas.len();
                r.replicas.retain(|l| !dead.contains(&l.node));
                r.version += 1;
                (r.class, r.replicas.clone(), before - r.replicas.len())
            };
            if lost_count == 0 {
                continue;
            }
            changed.push(seg);
            if class == SegmentClass::Ebp || survivors.is_empty() {
                // EBP loss is a cache miss, not a failure; a log segment
                // with no survivors is unrecoverable here (the ring layer
                // will have frozen and re-opened long before).
                if survivors.is_empty() {
                    self.state.lock().routes.remove(&seg);
                }
                continue;
            }
            // Re-replicate from a survivor onto the best live node not
            // already hosting the segment.
            for _ in 0..lost_count {
                let target = {
                    let st = self.state.lock();
                    let mut candidates: Vec<&NodeInfo> = st
                        .nodes
                        .values()
                        .filter(|n| {
                            n.alive
                                && !self.faults.is_crashed(n.server.node())
                                && !self.faults.is_partitioned(n.server.node())
                                && !n.server.hosts_segment(seg)
                        })
                        .collect();
                    candidates.sort_by_key(|n| std::cmp::Reverse(n.free_slots));
                    candidates.first().map(|n| Arc::clone(&n.server))
                };
                let Some(target) = target else { break };
                let src = {
                    let st = self.state.lock();
                    st.nodes
                        .get(&survivors[0].node)
                        .map(|n| Arc::clone(&n.server))
                };
                let Some(src) = src else { break };
                if let Ok(new_off) = target.handle_alloc(ctx, seg, class) {
                    // Copy the slot contents survivor -> new replica.
                    let data = src
                        .device()
                        .peek(survivors[0].offset, src.slot_size() as usize)
                        .expect("slot readable");
                    let done = target
                        .device()
                        .write(ctx.now(), new_off, &data)
                        .expect("slot writable");
                    target.device().flush(done);
                    ctx.wait_until(done);
                    // The io-meta (effective length) lives outside the slot
                    // and must travel with it, or the new replica would
                    // claim the segment is empty during crash recovery.
                    let meta = src
                        .device()
                        .peek(src.io_meta_offset(survivors[0].offset), 8)
                        .expect("io-meta readable");
                    let done = target
                        .device()
                        .write(ctx.now(), target.io_meta_offset(new_off), &meta)
                        .expect("io-meta writable");
                    target.device().flush(done);
                    ctx.wait_until(done);
                    let mut st = self.state.lock();
                    if let Some(r) = st.routes.get_mut(&seg) {
                        r.replicas.push(SegmentLoc {
                            node: target.node(),
                            offset: new_off,
                        });
                        r.version += 1;
                    }
                    if let Some(n) = st.nodes.get_mut(&target.node()) {
                        n.free_slots = n.free_slots.saturating_sub(1);
                    }
                    drop(st);
                    if let Some(c) = self.counters.lock().as_ref() {
                        c.note_replica_repaired();
                    }
                    self.metrics.lock().repairs.inc();
                }
            }
        }
        changed
    }

    /// A failed node has returned (§IV-C): its local segments that are no
    /// longer part of any current route are stale — enqueue their cleanup.
    pub fn reintegrate_server(&self, ctx: &mut SimCtx, node: NodeId) -> usize {
        let (server, stale): (Arc<AStoreServer>, Vec<SegmentId>) = {
            let mut st = self.state.lock();
            let Some(n) = st.nodes.get_mut(&node) else {
                return 0;
            };
            n.alive = true;
            n.last_heartbeat = ctx.now();
            let server = Arc::clone(&n.server);
            let stale = st
                .routes
                .iter()
                .filter(|(seg, r)| {
                    server.hosts_segment(**seg) && !r.replicas.iter().any(|l| l.node == node)
                })
                .map(|(s, _)| *s)
                .collect();
            (server, stale)
        };
        // Segments hosted locally but absent from every route are also stale.
        let mut count = 0;
        for seg in stale {
            server.handle_enqueue_cleanup(ctx.now(), seg);
            count += 1;
        }
        count
    }

    /// Number of known routes (tests).
    pub fn route_count(&self) -> usize {
        self.state.lock().routes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vedb_sim::ClusterSpec;

    fn cluster() -> (
        Arc<vedb_sim::SimEnv>,
        Arc<ClusterManager>,
        Vec<Arc<AStoreServer>>,
    ) {
        let env = ClusterSpec::paper_default().build();
        let cm = ClusterManager::new(
            Arc::clone(&env.faults),
            VTime::from_secs(10),
            VTime::from_secs(1),
        );
        let servers: Vec<Arc<AStoreServer>> = env
            .astore_nodes
            .iter()
            .enumerate()
            .map(|(i, n)| {
                AStoreServer::new(
                    i as NodeId,
                    Arc::clone(n),
                    1 << 20,
                    64 * 1024,
                    false,
                    VTime::from_millis(500),
                    env.model.clone(),
                )
            })
            .collect();
        for s in &servers {
            cm.register_server(Arc::clone(s));
        }
        (env, cm, servers)
    }

    #[test]
    fn lease_epoch_fencing() {
        let (_env, cm, _servers) = cluster();
        let mut ctx = SimCtx::new(1, 7);
        let lease_a = cm.acquire_lease(&mut ctx, 42);
        assert!(cm.validate_lease(ctx.now(), lease_a).is_ok());
        // The "client returns after failover" scenario: a new incarnation
        // acquires a fresh lease; the old epoch is fenced out.
        let lease_b = cm.acquire_lease(&mut ctx, 42);
        assert!(lease_b.epoch > lease_a.epoch);
        assert!(matches!(
            cm.validate_lease(ctx.now(), lease_a),
            Err(AStoreError::LeaseExpired { .. })
        ));
        assert!(cm.validate_lease(ctx.now(), lease_b).is_ok());
    }

    #[test]
    fn lease_expires_after_ttl() {
        let (_env, cm, _servers) = cluster();
        let mut ctx = SimCtx::new(1, 7);
        let lease = cm.acquire_lease(&mut ctx, 1);
        ctx.advance(VTime::from_secs(11));
        assert!(matches!(
            cm.validate_lease(ctx.now(), lease),
            Err(AStoreError::LeaseExpired { .. })
        ));
        // Renewal before expiry keeps it alive.
        let lease2 = cm.acquire_lease(&mut ctx, 1);
        ctx.advance(VTime::from_secs(5));
        cm.renew_lease(&mut ctx, lease2).unwrap();
        ctx.advance(VTime::from_secs(6));
        assert!(cm.validate_lease(ctx.now(), lease2).is_ok());
    }

    #[test]
    fn renew_allows_expired_same_epoch_but_not_superseded() {
        let (_env, cm, _servers) = cluster();
        let mut ctx = SimCtx::new(1, 7);
        let lease = cm.acquire_lease(&mut ctx, 1);
        ctx.advance(VTime::from_secs(11)); // past the 10s TTL
        assert!(cm.validate_lease(ctx.now(), lease).is_err());
        // Same epoch: the TTL lapse is recoverable by renewal.
        cm.renew_lease(&mut ctx, lease).unwrap();
        assert!(cm.validate_lease(ctx.now(), lease).is_ok());
        // Superseded epoch: renewal must be refused forever.
        let newer = cm.acquire_lease(&mut ctx, 1);
        assert!(matches!(
            cm.renew_lease(&mut ctx, lease),
            Err(AStoreError::LeaseExpired { .. })
        ));
        assert!(cm.renew_lease(&mut ctx, newer).is_ok());
    }

    #[test]
    fn report_failure_repairs_only_verified_dead_nodes() {
        let (env, cm, servers) = cluster();
        let mut ctx = SimCtx::new(1, 7);
        let lease = cm.acquire_lease(&mut ctx, 1);
        for s in &servers {
            cm.heartbeat(ctx.now(), s.node(), s.free_slots());
        }
        let (seg, route) = cm
            .create_segment(&mut ctx, lease, SegmentClass::Log, 2)
            .unwrap();
        let dead = route.replicas[0].node;
        // A report against a healthy node is rejected (no route change).
        assert!(cm.report_failure(&mut ctx, dead).is_empty());
        assert_eq!(cm.peek_route_version(seg), Some(1));
        // Crash it for real: the report is now verified and repair runs.
        env.faults.crash(dead);
        let changed = cm.report_failure(&mut ctx, dead);
        assert_eq!(changed, vec![seg]);
        let new_route = cm.get_route(&mut ctx, seg).unwrap();
        assert_eq!(
            new_route.replicas.len(),
            2,
            "re-replicated onto a live node"
        );
        assert!(!new_route.replicas.iter().any(|l| l.node == dead));
        // A duplicate report is a no-op.
        assert!(cm.report_failure(&mut ctx, dead).is_empty());
    }

    #[test]
    fn create_places_on_distinct_most_free_nodes() {
        let (_env, cm, _servers) = cluster();
        let mut ctx = SimCtx::new(1, 7);
        let lease = cm.acquire_lease(&mut ctx, 1);
        let (seg, route) = cm
            .create_segment(&mut ctx, lease, SegmentClass::Log, 3)
            .unwrap();
        assert_eq!(route.replicas.len(), 3);
        let mut nodes: Vec<NodeId> = route.replicas.iter().map(|l| l.node).collect();
        nodes.sort_unstable();
        nodes.dedup();
        assert_eq!(nodes.len(), 3, "replicas must land on distinct nodes");
        assert_eq!(cm.peek_route_version(seg), Some(1));
    }

    #[test]
    fn create_costs_milliseconds() {
        let (_env, cm, _servers) = cluster();
        let mut ctx = SimCtx::new(1, 7);
        let lease = cm.acquire_lease(&mut ctx, 1);
        let t0 = ctx.now();
        cm.create_segment(&mut ctx, lease, SegmentClass::Log, 3)
            .unwrap();
        let cost = ctx.now() - t0;
        assert!(
            cost >= VTime::from_micros(800),
            "create should cost ~ms (control plane), got {cost}"
        );
    }

    #[test]
    fn create_with_insufficient_live_servers_fails() {
        let (env, cm, servers) = cluster();
        let mut ctx = SimCtx::new(1, 7);
        let lease = cm.acquire_lease(&mut ctx, 1);
        env.faults.crash(servers[0].node());
        assert!(matches!(
            cm.create_segment(&mut ctx, lease, SegmentClass::Log, 3),
            Err(AStoreError::NotEnoughServers {
                live: 2,
                required: 3
            })
        ));
        // EBP (replication 1) still placeable.
        assert!(cm
            .create_segment(&mut ctx, lease, SegmentClass::Ebp, 1)
            .is_ok());
    }

    #[test]
    fn delete_enqueues_delayed_cleanup() {
        let (_env, cm, servers) = cluster();
        let mut ctx = SimCtx::new(1, 7);
        let lease = cm.acquire_lease(&mut ctx, 1);
        let (seg, route) = cm
            .create_segment(&mut ctx, lease, SegmentClass::Log, 3)
            .unwrap();
        cm.delete_segment(&mut ctx, lease, seg).unwrap();
        assert!(matches!(
            cm.get_route(&mut ctx, seg),
            Err(AStoreError::UnknownSegment(_))
        ));
        // Slots are still intact on the servers (delayed cleanup).
        for loc in &route.replicas {
            let s = servers.iter().find(|s| s.node() == loc.node).unwrap();
            assert!(s.hosts_segment(seg));
            assert_eq!(s.pending_cleanup_len(), 1);
        }
    }

    #[test]
    fn tick_detects_death_and_repairs_log_segments() {
        let (env, cm, servers) = cluster();
        let mut ctx = SimCtx::new(1, 7);
        let lease = cm.acquire_lease(&mut ctx, 1);
        // Heartbeats so everyone is fresh.
        for s in &servers {
            cm.heartbeat(ctx.now(), s.node(), s.free_slots());
        }
        let (seg, route) = cm
            .create_segment(&mut ctx, lease, SegmentClass::Log, 2)
            .unwrap();
        // Write recognizable bytes to one replica so repair copies them.
        let src = servers
            .iter()
            .find(|s| s.node() == route.replicas[0].node)
            .unwrap();
        let t = src
            .device()
            .write(ctx.now(), route.replicas[0].offset, b"replica-data")
            .unwrap();
        src.device().flush(t);
        // Mirror onto the second replica as a real client would.
        let dst0 = servers
            .iter()
            .find(|s| s.node() == route.replicas[1].node)
            .unwrap();
        let t = dst0
            .device()
            .write(ctx.now(), route.replicas[1].offset, b"replica-data")
            .unwrap();
        dst0.device().flush(t);

        // Kill the first replica's node; everyone else keeps heartbeating.
        env.faults.crash(route.replicas[0].node);
        ctx.advance(VTime::from_secs(2));
        for s in &servers {
            if s.node() != route.replicas[0].node {
                cm.heartbeat(ctx.now(), s.node(), s.free_slots());
            }
        }
        let changed = cm.tick(&mut ctx);
        assert_eq!(changed, vec![seg]);

        let new_route = cm.get_route(&mut ctx, seg).unwrap();
        assert_eq!(
            new_route.replicas.len(),
            2,
            "repair must restore replication"
        );
        assert!(new_route.version > route.version);
        assert!(!new_route
            .replicas
            .iter()
            .any(|l| l.node == route.replicas[0].node));
        // The repaired replica holds the survivor's data.
        let fresh = new_route
            .replicas
            .iter()
            .find(|l| l.node != route.replicas[1].node)
            .unwrap();
        let s = servers.iter().find(|s| s.node() == fresh.node).unwrap();
        assert_eq!(s.device().peek(fresh.offset, 12).unwrap(), b"replica-data");
    }

    #[test]
    fn tick_drops_ebp_replicas_without_repair() {
        let (env, cm, servers) = cluster();
        let mut ctx = SimCtx::new(1, 7);
        let lease = cm.acquire_lease(&mut ctx, 1);
        for s in &servers {
            cm.heartbeat(ctx.now(), s.node(), s.free_slots());
        }
        let (seg, route) = cm
            .create_segment(&mut ctx, lease, SegmentClass::Ebp, 1)
            .unwrap();
        env.faults.crash(route.replicas[0].node);
        ctx.advance(VTime::from_secs(2));
        for s in &servers {
            if s.node() != route.replicas[0].node {
                cm.heartbeat(ctx.now(), s.node(), s.free_slots());
            }
        }
        let changed = cm.tick(&mut ctx);
        assert_eq!(changed, vec![seg]);
        // Route is gone entirely: the cached pages are simply lost.
        assert!(matches!(
            cm.get_route(&mut ctx, seg),
            Err(AStoreError::UnknownSegment(_))
        ));
    }

    #[test]
    fn reintegration_cleans_stale_segments() {
        let (env, cm, servers) = cluster();
        let mut ctx = SimCtx::new(1, 7);
        let lease = cm.acquire_lease(&mut ctx, 1);
        for s in &servers {
            cm.heartbeat(ctx.now(), s.node(), s.free_slots());
        }
        let (seg, route) = cm
            .create_segment(&mut ctx, lease, SegmentClass::Log, 2)
            .unwrap();
        let dead_node = route.replicas[0].node;
        env.faults.crash(dead_node);
        ctx.advance(VTime::from_secs(2));
        for s in &servers {
            if s.node() != dead_node {
                cm.heartbeat(ctx.now(), s.node(), s.free_slots());
            }
        }
        cm.tick(&mut ctx);

        // Node comes back: its copy of `seg` is stale (route moved on).
        env.faults.restore(dead_node);
        let cleaned = cm.reintegrate_server(&mut ctx, dead_node);
        assert_eq!(cleaned, 1);
        let s = servers.iter().find(|s| s.node() == dead_node).unwrap();
        assert_eq!(s.pending_cleanup_len(), 1);
        let _ = seg;
    }
}
