//! On-media layout of an AStore server's PMem and the slot bitmap allocator.
//!
//! §IV-A: "The AStore Server divides the memory into the superblock, segment
//! meta, I/O meta, and segment storage areas. We use a bitmap to manage
//! segment applications and releases."
//!
//! The device is divided into fixed-size *slots*; a segment occupies one
//! slot. The layout is:
//!
//! ```text
//! +------------+-----------------------+---------------------------------+
//! | superblock | segment meta          | slot 0 | slot 1 | ... | slot N-1|
//! | 4 KB       | SLOT_META_SIZE × N    |  (slot_size bytes each)         |
//! +------------+-----------------------+---------------------------------+
//! ```
//!
//! Each slot's meta records `{state, segment_id}` and is persisted on
//! allocate/release so a restarted server can rebuild its allocator from
//! PMem (the paper's fast-recovery property).

use crate::SegmentId;

/// Size of the superblock area.
pub const SUPERBLOCK_SIZE: u64 = 4096;

/// Persisted metadata per slot:
/// `state (1) + class (1) + pad (6) + segment_id (8)` — written by the
/// server on allocate/release — followed by the **I/O meta**:
/// `used_len (8) + pad (8)` — written by the *client* with the chained
/// one-sided WRITE of every append (§IV-B's second WRITE), so a segment's
/// effective data length is recoverable after any failure.
pub const SLOT_META_SIZE: u64 = 32;

/// Offset of the client-maintained `used_len` within a slot's meta record.
pub const IO_META_USED_OFFSET: u64 = 16;

/// Magic value in the superblock identifying a formatted device.
pub const SUPERBLOCK_MAGIC: u64 = 0x4153_544F_5245_0001; // "ASTORE" v1

/// Replication class of a segment (§IV-A: "configurable replication factor
/// for different segments. By default, the segment that stores the log has
/// three copies and the segment storing the page has only one copy").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SegmentClass {
    /// REDO log segment — replicated (default 3).
    Log,
    /// Extended-buffer-pool page segment — replication factor 1 (losing it
    /// only lowers the cache hit ratio).
    Ebp,
}

impl SegmentClass {
    /// Default replication factor of the class.
    pub fn default_replication(self) -> usize {
        match self {
            SegmentClass::Log => 3,
            SegmentClass::Ebp => 1,
        }
    }
}

/// Persisted slot state byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum SlotState {
    /// Slot is free.
    Free = 0,
    /// Slot holds a live segment.
    Allocated = 1,
}

impl SlotState {
    /// Parse from the persisted byte.
    pub fn from_byte(b: u8) -> Option<SlotState> {
        match b {
            0 => Some(SlotState::Free),
            1 => Some(SlotState::Allocated),
            _ => None,
        }
    }
}

/// Geometry of a formatted device: slot size/count and derived offsets.
#[derive(Debug, Clone, Copy)]
pub struct Geometry {
    /// Bytes per slot (== max segment size on this server).
    pub slot_size: u64,
    /// Number of slots.
    pub slots: usize,
}

impl Geometry {
    /// Compute the geometry for a device of `capacity` bytes and the given
    /// slot size: as many slots as fit after the superblock and meta area.
    pub fn for_capacity(capacity: u64, slot_size: u64) -> Geometry {
        assert!(slot_size > 0, "slot size must be positive");
        // slots * (slot_size + SLOT_META_SIZE) + SUPERBLOCK_SIZE <= capacity
        let usable = capacity.saturating_sub(SUPERBLOCK_SIZE);
        let slots = (usable / (slot_size + SLOT_META_SIZE)) as usize;
        Geometry { slot_size, slots }
    }

    /// Offset of slot `i`'s persisted metadata.
    pub fn meta_offset(&self, i: usize) -> u64 {
        assert!(i < self.slots);
        SUPERBLOCK_SIZE + i as u64 * SLOT_META_SIZE
    }

    /// Offset of the start of the data area.
    pub fn data_base(&self) -> u64 {
        SUPERBLOCK_SIZE + self.slots as u64 * SLOT_META_SIZE
    }

    /// Offset of slot `i`'s data.
    pub fn slot_offset(&self, i: usize) -> u64 {
        assert!(i < self.slots);
        self.data_base() + i as u64 * self.slot_size
    }

    /// Total bytes the layout occupies.
    pub fn total_size(&self) -> u64 {
        self.data_base() + self.slots as u64 * self.slot_size
    }
}

/// In-memory bitmap allocator over the slots (rebuilt from slot meta on
/// restart).
#[derive(Debug)]
pub struct SlotBitmap {
    words: Vec<u64>,
    slots: usize,
    allocated: usize,
}

impl SlotBitmap {
    /// All-free bitmap for `slots` slots.
    pub fn new(slots: usize) -> Self {
        SlotBitmap {
            words: vec![0; slots.div_ceil(64)],
            slots,
            allocated: 0,
        }
    }

    /// Number of slots tracked.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Number of allocated slots.
    pub fn allocated(&self) -> usize {
        self.allocated
    }

    /// Number of free slots.
    pub fn free(&self) -> usize {
        self.slots - self.allocated
    }

    /// Allocate the lowest free slot, or `None` if full.
    pub fn alloc(&mut self) -> Option<usize> {
        for (w, word) in self.words.iter_mut().enumerate() {
            if *word != u64::MAX {
                let bit = word.trailing_ones() as usize;
                let idx = w * 64 + bit;
                if idx >= self.slots {
                    return None;
                }
                *word |= 1u64 << bit;
                self.allocated += 1;
                return Some(idx);
            }
        }
        None
    }

    /// Mark a specific slot allocated (during recovery rebuild).
    ///
    /// # Panics
    /// Panics if the slot is out of range or already allocated.
    pub fn set_allocated(&mut self, idx: usize) {
        assert!(idx < self.slots, "slot {idx} out of range");
        let (w, b) = (idx / 64, idx % 64);
        assert_eq!(self.words[w] & (1 << b), 0, "slot {idx} already allocated");
        self.words[w] |= 1 << b;
        self.allocated += 1;
    }

    /// Release a slot.
    ///
    /// # Panics
    /// Panics if the slot is out of range or not allocated (double free).
    pub fn release(&mut self, idx: usize) {
        assert!(idx < self.slots, "slot {idx} out of range");
        let (w, b) = (idx / 64, idx % 64);
        assert_ne!(self.words[w] & (1 << b), 0, "double free of slot {idx}");
        self.words[w] &= !(1 << b);
        self.allocated -= 1;
    }

    /// Is the slot allocated?
    pub fn is_allocated(&self, idx: usize) -> bool {
        assert!(idx < self.slots);
        self.words[idx / 64] & (1 << (idx % 64)) != 0
    }
}

impl SegmentClass {
    /// Persisted class byte.
    pub fn as_byte(self) -> u8 {
        match self {
            SegmentClass::Log => 0,
            SegmentClass::Ebp => 1,
        }
    }

    /// Parse from the persisted byte.
    pub fn from_byte(b: u8) -> Option<SegmentClass> {
        match b {
            0 => Some(SegmentClass::Log),
            1 => Some(SegmentClass::Ebp),
            _ => None,
        }
    }
}

/// Encode a slot's persisted meta record:
/// `state (1) + class (1) + pad (6) + segment_id (8)`.
pub fn encode_slot_meta(
    state: SlotState,
    class: SegmentClass,
    segment_id: SegmentId,
) -> [u8; SLOT_META_SIZE as usize] {
    let mut buf = [0u8; SLOT_META_SIZE as usize];
    buf[0] = state as u8;
    buf[1] = class.as_byte();
    buf[8..16].copy_from_slice(&segment_id.to_le_bytes());
    buf
}

/// Decode a slot's persisted meta record.
pub fn decode_slot_meta(buf: &[u8]) -> Option<(SlotState, SegmentClass, SegmentId)> {
    if buf.len() < SLOT_META_SIZE as usize {
        return None;
    }
    let state = SlotState::from_byte(buf[0])?;
    let class = SegmentClass::from_byte(buf[1])?;
    let id = u64::from_le_bytes(buf[8..16].try_into().unwrap());
    Some((state, class, id))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_fits_capacity() {
        let g = Geometry::for_capacity(1 << 20, 64 * 1024);
        assert!(g.slots >= 15);
        assert!(g.total_size() <= 1 << 20);
        assert_eq!(g.meta_offset(0), SUPERBLOCK_SIZE);
        assert_eq!(g.meta_offset(1), SUPERBLOCK_SIZE + SLOT_META_SIZE);
        assert_eq!(g.slot_offset(1) - g.slot_offset(0), 64 * 1024);
        assert!(g.slot_offset(0) >= g.data_base());
    }

    #[test]
    fn geometry_zero_slots_for_tiny_device() {
        let g = Geometry::for_capacity(1024, 64 * 1024);
        assert_eq!(g.slots, 0);
    }

    #[test]
    fn bitmap_alloc_release_cycle() {
        let mut bm = SlotBitmap::new(10);
        assert_eq!(bm.free(), 10);
        let a = bm.alloc().unwrap();
        let b = bm.alloc().unwrap();
        assert_ne!(a, b);
        assert!(bm.is_allocated(a));
        assert_eq!(bm.allocated(), 2);
        bm.release(a);
        assert!(!bm.is_allocated(a));
        // Lowest-free-first: released slot is reused.
        assert_eq!(bm.alloc().unwrap(), a);
    }

    #[test]
    fn bitmap_exhaustion() {
        let mut bm = SlotBitmap::new(3);
        for _ in 0..3 {
            assert!(bm.alloc().is_some());
        }
        assert!(bm.alloc().is_none());
        assert_eq!(bm.free(), 0);
    }

    #[test]
    fn bitmap_more_than_64_slots() {
        let mut bm = SlotBitmap::new(130);
        let all: Vec<usize> = (0..130).map(|_| bm.alloc().unwrap()).collect();
        assert_eq!(all.len(), 130);
        assert!(bm.alloc().is_none());
        bm.release(129);
        assert_eq!(bm.alloc().unwrap(), 129);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn bitmap_double_free_panics() {
        let mut bm = SlotBitmap::new(4);
        let a = bm.alloc().unwrap();
        bm.release(a);
        bm.release(a);
    }

    #[test]
    fn slot_meta_roundtrip() {
        let enc = encode_slot_meta(SlotState::Allocated, SegmentClass::Ebp, 0xDEAD_BEEF);
        let (state, class, id) = decode_slot_meta(&enc).unwrap();
        assert_eq!(state, SlotState::Allocated);
        assert_eq!(class, SegmentClass::Ebp);
        assert_eq!(id, 0xDEAD_BEEF);
        assert!(decode_slot_meta(&[0u8; 3]).is_none());
        assert!(decode_slot_meta(&[9u8; 16]).is_none()); // bad state byte
    }

    #[test]
    fn class_byte_roundtrip() {
        for c in [SegmentClass::Log, SegmentClass::Ebp] {
            assert_eq!(SegmentClass::from_byte(c.as_byte()), Some(c));
        }
        assert_eq!(SegmentClass::from_byte(9), None);
    }

    #[test]
    fn class_replication_defaults() {
        assert_eq!(SegmentClass::Log.default_replication(), 3);
        assert_eq!(SegmentClass::Ebp.default_replication(), 1);
    }
}
