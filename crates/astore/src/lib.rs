//! # vedb-astore — the distributed PMem storage engine (the paper's §IV)
//!
//! AStore pools PMem from a cluster of storage servers behind one-sided
//! RDMA. It has three modules, mirroring Fig. 3:
//!
//! * [`AStoreServer`] — owns one node's PMem device: on-media layout
//!   (superblock / segment meta / segment storage), a bitmap allocator for
//!   segment slots, delayed stale-segment cleanup, and the page→LSN map
//!   used to rebuild the Extended Buffer Pool after a DBEngine crash.
//! * [`ClusterManager`] — the central control plane: node registry and
//!   heartbeats, segment placement by free capacity, routing, client
//!   leases with epoch fencing, failure detection and replica repair.
//! * [`AStoreClient`] — the access SDK embedded in the DBEngine: caches
//!   routes, creates/deletes segments over RPC (milliseconds), and reads/
//!   writes segment data with **one-sided verbs only** (tens of µs) — the
//!   write is the chained 2×WRITE + READ-flush of §IV-B.
//!
//! On top of the client sits [`SegmentRing`] (§V-A): the ring of
//! pre-created append-only segments that replaces the BlobGroup for REDO
//! logging, including the header binary-search used for crash recovery.
//!
//! Read-write consistency with one-sided verbs (§IV-C) is preserved by the
//! same three mechanisms as the paper: short-period client route refresh,
//! server-side *delayed* cleanup of deallocated segments (cleanup delay ≫
//! refresh period), and client leases fenced by epoch at the CM.

pub mod client;
pub mod cm;
pub mod ebp_format;
pub mod layout;
pub mod retry;
pub mod ring;
pub mod server;

pub use client::{AStoreClient, SegmentHandle};
pub use cm::{ClusterManager, Lease};
pub use layout::SegmentClass;
pub use retry::{AppendOpts, RetryPolicy, SegmentOpts};
pub use ring::SegmentRing;
pub use server::AStoreServer;

use vedb_rdma::RdmaError;
use vedb_sim::fault::NodeId;

/// Segment identifier, unique cluster-wide (assigned by the CM).
pub type SegmentId = u64;

/// Log sequence number: a byte offset in the global REDO stream.
pub type Lsn = u64;

/// Identifier of a data page: `(space_no, page_no)` as in the paper's EBP
/// index key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId {
    /// Tablespace number.
    pub space_no: u32,
    /// Page number within the space.
    pub page_no: u32,
}

impl PageId {
    /// Construct a page id.
    pub fn new(space_no: u32, page_no: u32) -> Self {
        PageId { space_no, page_no }
    }
}

impl std::fmt::Display for PageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.space_no, self.page_no)
    }
}

/// Errors surfaced by AStore operations.
///
/// The enum is `#[non_exhaustive]`: code outside this crate must not match
/// on variants to drive recovery decisions — use the classification methods
/// ([`AStoreError::is_retryable`], [`AStoreError::is_fencing`],
/// [`AStoreError::is_segment_unwritable`]) instead, so new failure modes
/// can be added without breaking callers.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AStoreError {
    /// Network / node failure.
    Network(RdmaError),
    /// The client's lease is expired or superseded (epoch fencing, §IV-C).
    LeaseExpired {
        /// Epoch presented by the client.
        presented: u64,
        /// Epoch the CM currently holds.
        current: u64,
    },
    /// No server has room for the requested segment.
    NoSpace,
    /// Segment unknown to the CM / server.
    UnknownSegment(SegmentId),
    /// A write could not reach every replica; the segment is frozen.
    ReplicaFailed {
        /// Replicas that acknowledged.
        acked: usize,
        /// Replicas required.
        required: usize,
    },
    /// Append to a frozen segment.
    SegmentFrozen(SegmentId),
    /// Segment has no room for the append.
    SegmentFull {
        /// Bytes used.
        used: u64,
        /// Segment capacity.
        capacity: u64,
    },
    /// The SegmentRing is out of reusable segments (log not truncated).
    LogFull,
    /// On-media data failed validation.
    Corrupt(String),
    /// Not enough live servers to satisfy the replication factor.
    NotEnoughServers {
        /// Live servers available.
        live: usize,
        /// Replicas required.
        required: usize,
    },
}

impl AStoreError {
    /// Is this a *transient* fault that a capped-backoff retry of the same
    /// operation may clear (dropped message, unreachable node that the CM
    /// may repair around)? Retry code must branch on this — never on the
    /// enum variants directly.
    pub fn is_retryable(&self) -> bool {
        matches!(self, AStoreError::Network(_))
    }

    /// Is this a fencing error — the client's lease epoch was superseded or
    /// expired? Fencing is only recoverable by *renewing the same epoch*;
    /// if renewal is refused the client has been superseded and must stop
    /// (retrying can never bypass the fence).
    pub fn is_fencing(&self) -> bool {
        matches!(self, AStoreError::LeaseExpired { .. })
    }

    /// Can this segment no longer accept appends (full, frozen, or a
    /// replica set that lost a member mid-write)? Callers holding a ring of
    /// segments roll over to a fresh one on these.
    pub fn is_segment_unwritable(&self) -> bool {
        matches!(
            self,
            AStoreError::SegmentFull { .. }
                | AStoreError::SegmentFrozen(_)
                | AStoreError::ReplicaFailed { .. }
        )
    }

    /// If this error identifies a concrete unreachable node, its id. The
    /// recovery layer reports such nodes to the CM, which verifies the claim
    /// and re-replicates or shrinks the affected routes.
    pub fn unreachable_node(&self) -> Option<NodeId> {
        match self {
            AStoreError::Network(RdmaError::NodeUnreachable(n)) => Some(*n),
            _ => None,
        }
    }

    /// Terminal for the current operation: not transient, not fencing, and
    /// not cleared by rolling to another segment (e.g. corruption, unknown
    /// segment, cluster-wide capacity exhaustion).
    pub fn is_terminal(&self) -> bool {
        !self.is_retryable() && !self.is_fencing() && !self.is_segment_unwritable()
    }
}

impl From<RdmaError> for AStoreError {
    fn from(e: RdmaError) -> Self {
        AStoreError::Network(e)
    }
}

impl std::fmt::Display for AStoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AStoreError::Network(e) => write!(f, "network: {e}"),
            AStoreError::LeaseExpired { presented, current } => {
                write!(
                    f,
                    "lease expired: presented epoch {presented}, current {current}"
                )
            }
            AStoreError::NoSpace => write!(f, "no server has space for the segment"),
            AStoreError::UnknownSegment(s) => write!(f, "unknown segment {s}"),
            AStoreError::ReplicaFailed { acked, required } => {
                write!(f, "write reached {acked}/{required} replicas")
            }
            AStoreError::SegmentFrozen(s) => write!(f, "segment {s} is frozen"),
            AStoreError::SegmentFull { used, capacity } => {
                write!(f, "segment full: {used}/{capacity} bytes")
            }
            AStoreError::LogFull => write!(f, "segment ring exhausted (log not truncated)"),
            AStoreError::Corrupt(m) => write!(f, "corrupt data: {m}"),
            AStoreError::NotEnoughServers { live, required } => {
                write!(
                    f,
                    "only {live} live servers for replication factor {required}"
                )
            }
        }
    }
}

impl std::error::Error for AStoreError {}

/// Result alias for AStore operations.
pub type Result<T> = std::result::Result<T, AStoreError>;

/// Location of one replica of a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentLoc {
    /// Node hosting the replica.
    pub node: NodeId,
    /// Byte offset of the slot within the node's PMem data area.
    pub offset: u64,
}
