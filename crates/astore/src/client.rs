//! The AStore client — the access SDK embedded in the DBEngine (§IV-A).
//!
//! Control plane (create/delete/route/lease) goes through the CM over RPC
//! and costs milliseconds; the data plane is **one-sided only**:
//!
//! * [`AStoreClient::append`] — the §IV-B write: one chained work request
//!   carrying the payload WRITE, the io-meta WRITE (so the segment's
//!   effective length survives any crash), and the trailing READ that
//!   flushes into the PMem persistence domain. All replicas are written in
//!   parallel; *every* replica must acknowledge or the segment is frozen
//!   and the caller re-opens a new one (§IV-B "Write").
//! * [`AStoreClient::read`] — a one-sided READ from any online replica.
//!
//! Route hygiene (§IV-C): routes are cached and re-validated against the CM
//! when older than `refresh_period`, which the deployment guarantees is much
//! shorter than the servers' stale-segment cleanup delay.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use vedb_rdma::{RdmaEndpoint, RemoteMr};
use vedb_sim::fault::NodeId;
use vedb_sim::{LatencyModel, Resource, SimCtx, VTime};

use crate::cm::{ClusterManager, Lease, Route};
use crate::layout::SegmentClass;
use crate::server::AStoreServer;
use crate::{AStoreError, Result, SegmentId, SegmentLoc};

/// A client-side reference to an open segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SegmentHandle {
    /// Cluster-wide segment id.
    pub id: SegmentId,
    /// Replication class.
    pub class: SegmentClass,
}

struct CachedRoute {
    route: Route,
    fetched_at: VTime,
}

struct SegMeta {
    len: u64,
    capacity: u64,
    frozen: bool,
}

/// The AStore client SDK.
pub struct AStoreClient {
    cm: Arc<ClusterManager>,
    ep: RdmaEndpoint,
    engine_cpu: Arc<Resource>,
    model: LatencyModel,
    client_id: u64,
    refresh_period: VTime,
    lease: Mutex<Lease>,
    /// Per-node connection state: registered MR + server reference.
    nodes: Mutex<HashMap<NodeId, (RemoteMr, Arc<AStoreServer>)>>,
    routes: Mutex<HashMap<SegmentId, CachedRoute>>,
    segs: Mutex<HashMap<SegmentId, SegMeta>>,
}

impl AStoreClient {
    /// Connect: acquire a lease from the CM and set up one-sided access to
    /// every live server.
    pub fn connect(
        ctx: &mut SimCtx,
        cm: Arc<ClusterManager>,
        ep: RdmaEndpoint,
        engine_cpu: Arc<Resource>,
        model: LatencyModel,
        client_id: u64,
        refresh_period: VTime,
    ) -> Arc<Self> {
        let lease = cm.acquire_lease(ctx, client_id);
        let nodes = cm
            .live_servers()
            .into_iter()
            .map(|s| (s.node(), (s.mr(), s)))
            .collect();
        Arc::new(AStoreClient {
            cm,
            ep,
            engine_cpu,
            model,
            client_id,
            refresh_period,
            lease: Mutex::new(lease),
            nodes: Mutex::new(nodes),
            routes: Mutex::new(HashMap::new()),
            segs: Mutex::new(HashMap::new()),
        })
    }

    /// The client's id.
    pub fn client_id(&self) -> u64 {
        self.client_id
    }

    /// Current lease (tests).
    pub fn lease(&self) -> Lease {
        *self.lease.lock()
    }

    /// The cluster manager this client talks to.
    pub fn cm(&self) -> &Arc<ClusterManager> {
        &self.cm
    }

    fn charge_sdk(&self, ctx: &mut SimCtx) {
        let done = self
            .engine_cpu
            .acquire(ctx.now(), VTime::from_nanos(self.model.cpu_astore_sdk_ns));
        ctx.wait_until(done);
    }

    fn node_conn(&self, node: NodeId) -> Result<(RemoteMr, Arc<AStoreServer>)> {
        if let Some((mr, s)) = self.nodes.lock().get(&node) {
            return Ok((mr.clone(), Arc::clone(s)));
        }
        // A node added after connect (repair target): fetch from the CM.
        match self.cm.server(node) {
            Some(s) => {
                let mr = s.mr();
                self.nodes.lock().insert(node, (mr.clone(), Arc::clone(&s)));
                Ok((mr, s))
            }
            None => Err(AStoreError::UnknownSegment(0)),
        }
    }

    /// Create a segment of the class's default replication. Control-plane
    /// cost: milliseconds (§IV-B "Create").
    pub fn create_segment(&self, ctx: &mut SimCtx, class: SegmentClass) -> Result<SegmentHandle> {
        self.create_segment_with_replication(ctx, class, class.default_replication())
    }

    /// Create a segment with an explicit replication factor (the paper's
    /// "configurable replication factor for different segments").
    pub fn create_segment_with_replication(
        &self,
        ctx: &mut SimCtx,
        class: SegmentClass,
        replication: usize,
    ) -> Result<SegmentHandle> {
        self.charge_sdk(ctx);
        let lease = *self.lease.lock();
        let (id, route) = self.cm.create_segment(ctx, lease, class, replication)?;
        let capacity = route
            .replicas
            .iter()
            .filter_map(|loc| self.node_conn(loc.node).ok())
            .map(|(_, s)| s.slot_size())
            .min()
            .unwrap_or(0);
        self.routes.lock().insert(id, CachedRoute { route, fetched_at: ctx.now() });
        self.segs.lock().insert(id, SegMeta { len: 0, capacity, frozen: false });
        Ok(SegmentHandle { id, class })
    }

    /// Delete a segment (CM route removal + delayed server cleanup).
    pub fn delete_segment(&self, ctx: &mut SimCtx, handle: SegmentHandle) -> Result<()> {
        self.charge_sdk(ctx);
        let lease = *self.lease.lock();
        self.cm.delete_segment(ctx, lease, handle.id)?;
        self.routes.lock().remove(&handle.id);
        self.segs.lock().remove(&handle.id);
        Ok(())
    }

    /// Refresh the cached route for `seg` if it is older than the refresh
    /// period (§IV-C: "the AStore Client regularly checks with the CM to
    /// see if the segment's route has changed").
    fn maybe_refresh_route(&self, ctx: &mut SimCtx, seg: SegmentId) -> Result<Route> {
        let stale = {
            let routes = self.routes.lock();
            match routes.get(&seg) {
                Some(c) => ctx.now().saturating_sub(c.fetched_at) > self.refresh_period,
                None => true,
            }
        };
        if stale {
            let route = self.cm.get_route(ctx, seg)?;
            self.routes
                .lock()
                .insert(seg, CachedRoute { route: route.clone(), fetched_at: ctx.now() });
            Ok(route)
        } else {
            Ok(self.routes.lock().get(&seg).expect("cached").route.clone())
        }
    }

    /// Force-refresh all cached routes (background task).
    pub fn refresh_all_routes(&self, ctx: &mut SimCtx) {
        let segs: Vec<SegmentId> = self.routes.lock().keys().copied().collect();
        for seg in segs {
            match self.cm.get_route(ctx, seg) {
                Ok(route) => {
                    self.routes
                        .lock()
                        .insert(seg, CachedRoute { route, fetched_at: ctx.now() });
                }
                Err(_) => {
                    // Route is gone: the segment was deleted or fully lost.
                    self.routes.lock().remove(&seg);
                }
            }
        }
    }

    /// Renew the client lease (periodic background task).
    pub fn renew_lease(&self, ctx: &mut SimCtx) -> Result<()> {
        let lease = *self.lease.lock();
        self.cm.renew_lease(ctx, lease)
    }

    /// Bytes appended so far.
    pub fn segment_len(&self, handle: SegmentHandle) -> u64 {
        self.segs.lock().get(&handle.id).map(|m| m.len).unwrap_or(0)
    }

    /// Segment capacity in bytes.
    pub fn segment_capacity(&self, handle: SegmentHandle) -> u64 {
        self.segs.lock().get(&handle.id).map(|m| m.capacity).unwrap_or(0)
    }

    /// Whether the segment was frozen by a failed write.
    pub fn is_frozen(&self, handle: SegmentHandle) -> bool {
        self.segs.lock().get(&handle.id).map(|m| m.frozen).unwrap_or(true)
    }

    /// Mark a segment frozen (also done automatically on replica failure).
    pub fn freeze(&self, handle: SegmentHandle) {
        if let Some(m) = self.segs.lock().get_mut(&handle.id) {
            m.frozen = true;
        }
    }

    fn replica_write(
        &self,
        ctx: &mut SimCtx,
        loc: &SegmentLoc,
        writes: &[(u64, &[u8])],
    ) -> Result<()> {
        let (mr, server) = self.node_conn(loc.node)?;
        // Translate segment-relative offsets to absolute device offsets;
        // the io-meta sentinel offset u64::MAX maps to the slot's io-meta.
        let abs: Vec<(u64, &[u8])> = writes
            .iter()
            .map(|(off, data)| {
                if *off == u64::MAX {
                    (server.io_meta_offset(loc.offset), *data)
                } else {
                    (loc.offset + off, *data)
                }
            })
            .collect();
        self.ep.write_chain(ctx, &mr, &abs)?;
        Ok(())
    }

    fn fanout_write(
        &self,
        ctx: &mut SimCtx,
        handle: SegmentHandle,
        route: &Route,
        writes: &[(u64, &[u8])],
    ) -> Result<()> {
        let required = route.replicas.len();
        let mut done = ctx.now();
        let mut acked = 0;
        for loc in &route.replicas {
            let mut rep_ctx = ctx.fork();
            match self.replica_write(&mut rep_ctx, loc, writes) {
                Ok(()) => {
                    acked += 1;
                    done = done.max(rep_ctx.now());
                }
                Err(AStoreError::Network(_)) => {}
                Err(e) => return Err(e),
            }
        }
        if acked < required {
            // §IV-B: "If any copy fails, it returns a failure to the
            // application and freezes the segment with the current
            // effective length."
            self.freeze(handle);
            return Err(AStoreError::ReplicaFailed { acked, required });
        }
        ctx.wait_until(done);
        Ok(())
    }

    /// Append `data` to the segment (the §IV-B write path). Returns the
    /// segment-relative offset the data landed at.
    pub fn append(&self, ctx: &mut SimCtx, handle: SegmentHandle, data: &[u8]) -> Result<u64> {
        self.append_with_tail(ctx, handle, data, &[])
    }

    /// Append `data` and additionally write `tail` *after* it without
    /// advancing the segment length (the EBP writer uses this to lay down a
    /// zeroed terminator header so server-side recovery scans stop at the
    /// true end of data).
    pub fn append_with_tail(
        &self,
        ctx: &mut SimCtx,
        handle: SegmentHandle,
        data: &[u8],
        tail: &[u8],
    ) -> Result<u64> {
        assert!(!data.is_empty(), "empty appends are not meaningful");
        self.charge_sdk(ctx);
        let route = self.maybe_refresh_route(ctx, handle.id)?;
        let (off, new_len) = {
            let segs = self.segs.lock();
            let meta = segs.get(&handle.id).ok_or(AStoreError::UnknownSegment(handle.id))?;
            if meta.frozen {
                return Err(AStoreError::SegmentFrozen(handle.id));
            }
            let end = meta.len + (data.len() + tail.len()) as u64;
            if end > meta.capacity {
                return Err(AStoreError::SegmentFull { used: meta.len, capacity: meta.capacity });
            }
            (meta.len, meta.len + data.len() as u64)
        };
        let len_bytes = new_len.to_le_bytes();
        let mut writes: Vec<(u64, &[u8])> = vec![(off, data)];
        if !tail.is_empty() {
            writes.push((off + data.len() as u64, tail));
        }
        writes.push((u64::MAX, &len_bytes)); // io-meta, chained (2nd WRITE)
        self.fanout_write(ctx, handle, &route, &writes)?;
        if let Some(m) = self.segs.lock().get_mut(&handle.id) {
            m.len = new_len;
        }
        Ok(off)
    }

    /// Positioned write that does **not** change the segment length —
    /// used for in-segment headers (SegmentRing status/LSN updates).
    pub fn write_at(
        &self,
        ctx: &mut SimCtx,
        handle: SegmentHandle,
        offset: u64,
        data: &[u8],
    ) -> Result<()> {
        self.charge_sdk(ctx);
        let route = self.maybe_refresh_route(ctx, handle.id)?;
        {
            let segs = self.segs.lock();
            let meta = segs.get(&handle.id).ok_or(AStoreError::UnknownSegment(handle.id))?;
            if offset + data.len() as u64 > meta.capacity {
                return Err(AStoreError::SegmentFull { used: offset, capacity: meta.capacity });
            }
        }
        self.fanout_write(ctx, handle, &route, &[(offset, data)])
    }

    /// Reset the segment's logical length to zero (ring-slot recycling).
    pub fn reset_len(&self, ctx: &mut SimCtx, handle: SegmentHandle) -> Result<()> {
        self.charge_sdk(ctx);
        let route = self.maybe_refresh_route(ctx, handle.id)?;
        let zero = 0u64.to_le_bytes();
        self.fanout_write(ctx, handle, &route, &[(u64::MAX, &zero)])?;
        if let Some(m) = self.segs.lock().get_mut(&handle.id) {
            m.len = 0;
            m.frozen = false;
        }
        Ok(())
    }

    /// One-sided read of `len` bytes at segment-relative `offset`, from the
    /// first online replica (§IV-B "Read").
    pub fn read(
        &self,
        ctx: &mut SimCtx,
        handle: SegmentHandle,
        offset: u64,
        len: usize,
    ) -> Result<Vec<u8>> {
        let route = self.maybe_refresh_route(ctx, handle.id)?;
        {
            let segs = self.segs.lock();
            if let Some(meta) = segs.get(&handle.id) {
                if offset + len as u64 > meta.capacity {
                    return Err(AStoreError::SegmentFull { used: offset, capacity: meta.capacity });
                }
            }
        }
        let mut last_err = AStoreError::UnknownSegment(handle.id);
        for loc in &route.replicas {
            let (mr, _) = match self.node_conn(loc.node) {
                Ok(c) => c,
                Err(e) => {
                    last_err = e;
                    continue;
                }
            };
            match self.ep.read(ctx, &mr, loc.offset + offset, len) {
                Ok(data) => return Ok(data),
                Err(e) => last_err = AStoreError::Network(e),
            }
        }
        Err(last_err)
    }

    /// Recover a segment's effective data length from the on-media io-meta
    /// (used after a client crash, when the DRAM `segs` table is gone).
    pub fn recover_used_len(&self, ctx: &mut SimCtx, seg: SegmentId) -> Result<u64> {
        let route = self.maybe_refresh_route(ctx, seg)?;
        for loc in &route.replicas {
            let (mr, server) = match self.node_conn(loc.node) {
                Ok(c) => c,
                Err(_) => continue,
            };
            let abs = server.io_meta_offset(loc.offset);
            if let Ok(bytes) = self.ep.read(ctx, &mr, abs, 8) {
                return Ok(u64::from_le_bytes(bytes.try_into().unwrap()));
            }
        }
        Err(AStoreError::Network(vedb_rdma::RdmaError::Dropped))
    }

    /// Adopt a segment created by a previous incarnation of this client
    /// (crash recovery): fetch the route, recover the effective length.
    pub fn adopt_segment(
        &self,
        ctx: &mut SimCtx,
        seg: SegmentId,
        class: SegmentClass,
    ) -> Result<SegmentHandle> {
        let route = self.cm.get_route(ctx, seg)?;
        let capacity = route
            .replicas
            .iter()
            .filter_map(|loc| self.node_conn(loc.node).ok())
            .map(|(_, s)| s.slot_size())
            .min()
            .unwrap_or(0);
        self.routes
            .lock()
            .insert(seg, CachedRoute { route, fetched_at: ctx.now() });
        let handle = SegmentHandle { id: seg, class };
        let len = self.recover_used_len(ctx, seg)?;
        self.segs.lock().insert(seg, SegMeta { len, capacity, frozen: false });
        Ok(handle)
    }

    /// The current route of a segment, if cached (engine push-down uses the
    /// node ids to dispatch fragments to EBP hosts).
    pub fn cached_route(&self, seg: SegmentId) -> Option<Route> {
        self.routes.lock().get(&seg).map(|c| c.route.clone())
    }

    /// Server handle for a node (push-down execution against local PMem).
    pub fn server(&self, node: NodeId) -> Option<Arc<AStoreServer>> {
        self.node_conn(node).ok().map(|(_, s)| s)
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use vedb_rdma::RpcFabric;
    use vedb_sim::ClusterSpec;

    pub(crate) struct TestCluster {
        pub env: Arc<vedb_sim::SimEnv>,
        pub cm: Arc<ClusterManager>,
        pub servers: Vec<Arc<AStoreServer>>,
        pub client: Arc<AStoreClient>,
    }

    pub(crate) fn test_cluster(ctx: &mut SimCtx) -> TestCluster {
        let env = ClusterSpec::paper_default().build();
        let cm = ClusterManager::new(
            Arc::clone(&env.faults),
            VTime::from_secs(30),
            VTime::from_secs(1),
        );
        let servers: Vec<Arc<AStoreServer>> = env
            .astore_nodes
            .iter()
            .enumerate()
            .map(|(i, n)| {
                AStoreServer::new(
                    i as NodeId,
                    Arc::clone(n),
                    4 << 20,
                    64 * 1024,
                    false,
                    VTime::from_millis(500),
                    env.model.clone(),
                )
            })
            .collect();
        for s in &servers {
            cm.register_server(Arc::clone(s));
            cm.heartbeat(VTime::ZERO, s.node(), s.free_slots());
        }
        let ep = RdmaEndpoint::new(env.model.clone(), Arc::clone(&env.faults), Arc::clone(&env.engine_nic));
        let client = AStoreClient::connect(
            ctx,
            Arc::clone(&cm),
            ep,
            Arc::clone(&env.engine_cpu),
            env.model.clone(),
            1,
            VTime::from_millis(50),
        );
        let _ = RpcFabric::new(env.model.clone(), Arc::clone(&env.faults));
        TestCluster { env, cm, servers, client }
    }

    #[test]
    fn append_and_read_roundtrip() {
        let mut ctx = SimCtx::new(1, 7);
        let tc = test_cluster(&mut ctx);
        let seg = tc.client.create_segment(&mut ctx, SegmentClass::Log).unwrap();
        let off1 = tc.client.append(&mut ctx, seg, b"first-record").unwrap();
        let off2 = tc.client.append(&mut ctx, seg, b"second").unwrap();
        assert_eq!(off1, 0);
        assert_eq!(off2, 12);
        assert_eq!(tc.client.segment_len(seg), 18);
        assert_eq!(tc.client.read(&mut ctx, seg, 0, 18).unwrap(), b"first-recordsecond");
        assert_eq!(tc.client.read(&mut ctx, seg, 12, 6).unwrap(), b"second");
    }

    #[test]
    fn append_latency_near_86us_table2() {
        let mut ctx = SimCtx::new(1, 7);
        let tc = test_cluster(&mut ctx);
        let seg = tc.client.create_segment(&mut ctx, SegmentClass::Log).unwrap();
        let n = 10;
        let t0 = ctx.now();
        for _ in 0..n {
            tc.client.append(&mut ctx, seg, &[7u8; 4096]).unwrap();
        }
        let avg_us = (ctx.now() - t0).as_micros_f64() / n as f64;
        assert!(
            (50.0..=130.0).contains(&avg_us),
            "4KB AStore append should average ~86us, got {avg_us:.1}us"
        );
    }

    #[test]
    fn appends_survive_server_crash_once_acked() {
        let mut ctx = SimCtx::new(1, 7);
        let tc = test_cluster(&mut ctx);
        let seg = tc.client.create_segment(&mut ctx, SegmentClass::Log).unwrap();
        tc.client.append(&mut ctx, seg, b"durable-record").unwrap();
        // Power-cycle every server: PMem media survives, caches don't.
        for s in &tc.servers {
            s.device().crash();
        }
        assert_eq!(tc.client.read(&mut ctx, seg, 0, 14).unwrap(), b"durable-record");
        // And the io-meta survives too.
        assert_eq!(tc.client.recover_used_len(&mut ctx, seg.id).unwrap(), 14);
    }

    #[test]
    fn replica_failure_freezes_segment() {
        let mut ctx = SimCtx::new(1, 7);
        let tc = test_cluster(&mut ctx);
        let seg = tc.client.create_segment(&mut ctx, SegmentClass::Log).unwrap();
        tc.client.append(&mut ctx, seg, b"before").unwrap();
        let route = tc.client.cached_route(seg.id).unwrap();
        tc.env.faults.crash(route.replicas[0].node);
        assert!(matches!(
            tc.client.append(&mut ctx, seg, b"after"),
            Err(AStoreError::ReplicaFailed { acked: 2, required: 3 })
        ));
        assert!(tc.client.is_frozen(seg));
        assert!(matches!(
            tc.client.append(&mut ctx, seg, b"again"),
            Err(AStoreError::SegmentFrozen(_))
        ));
        // The client opens a new segment and carries on (ring layer policy).
        tc.env.faults.restore(route.replicas[0].node);
        let seg2 = tc.client.create_segment(&mut ctx, SegmentClass::Log).unwrap();
        assert!(tc.client.append(&mut ctx, seg2, b"after").is_ok());
        // Frozen segment still readable.
        assert_eq!(tc.client.read(&mut ctx, seg, 0, 6).unwrap(), b"before");
    }

    #[test]
    fn reads_fail_over_to_live_replicas() {
        let mut ctx = SimCtx::new(1, 7);
        let tc = test_cluster(&mut ctx);
        let seg = tc.client.create_segment(&mut ctx, SegmentClass::Log).unwrap();
        tc.client.append(&mut ctx, seg, b"replicated").unwrap();
        let route = tc.client.cached_route(seg.id).unwrap();
        tc.env.faults.crash(route.replicas[0].node);
        assert_eq!(tc.client.read(&mut ctx, seg, 0, 10).unwrap(), b"replicated");
    }

    #[test]
    fn segment_full_rejected() {
        let mut ctx = SimCtx::new(1, 7);
        let tc = test_cluster(&mut ctx);
        let seg = tc.client.create_segment(&mut ctx, SegmentClass::Log).unwrap();
        let cap = tc.client.segment_capacity(seg) as usize;
        tc.client.append(&mut ctx, seg, &vec![1u8; cap - 8]).unwrap();
        assert!(matches!(
            tc.client.append(&mut ctx, seg, &[1u8; 16]),
            Err(AStoreError::SegmentFull { .. })
        ));
        // Exactly filling works.
        tc.client.append(&mut ctx, seg, &[1u8; 8]).unwrap();
    }

    #[test]
    fn ebp_segment_has_one_replica() {
        let mut ctx = SimCtx::new(1, 7);
        let tc = test_cluster(&mut ctx);
        let seg = tc.client.create_segment(&mut ctx, SegmentClass::Ebp).unwrap();
        let route = tc.client.cached_route(seg.id).unwrap();
        assert_eq!(route.replicas.len(), 1);
    }

    #[test]
    fn write_at_and_reset_len() {
        let mut ctx = SimCtx::new(1, 7);
        let tc = test_cluster(&mut ctx);
        let seg = tc.client.create_segment(&mut ctx, SegmentClass::Log).unwrap();
        tc.client.append(&mut ctx, seg, &[0xFFu8; 64]).unwrap();
        tc.client.write_at(&mut ctx, seg, 0, b"HDR!").unwrap();
        assert_eq!(tc.client.read(&mut ctx, seg, 0, 4).unwrap(), b"HDR!");
        assert_eq!(tc.client.segment_len(seg), 64, "write_at must not change len");
        tc.client.reset_len(&mut ctx, seg).unwrap();
        assert_eq!(tc.client.segment_len(seg), 0);
        assert_eq!(tc.client.recover_used_len(&mut ctx, seg.id).unwrap(), 0);
    }

    #[test]
    fn crashed_client_is_fenced_but_new_client_adopts_segments() {
        let mut ctx = SimCtx::new(1, 7);
        let tc = test_cluster(&mut ctx);
        let seg = tc.client.create_segment(&mut ctx, SegmentClass::Log).unwrap();
        tc.client.append(&mut ctx, seg, b"pre-crash-state!").unwrap();
        let old_lease = tc.client.lease();

        // "Client A fails; client B takes over" (§IV-C).
        let ep = RdmaEndpoint::new(
            tc.env.model.clone(),
            Arc::clone(&tc.env.faults),
            Arc::clone(&tc.env.engine_nic),
        );
        let client_b = AStoreClient::connect(
            &mut ctx,
            Arc::clone(&tc.cm),
            ep,
            Arc::clone(&tc.env.engine_cpu),
            tc.env.model.clone(),
            1, // same client identity, new incarnation
            VTime::from_millis(50),
        );
        // Old incarnation's control-plane ops are fenced.
        assert!(matches!(
            tc.cm.validate_lease(ctx.now(), old_lease),
            Err(AStoreError::LeaseExpired { .. })
        ));
        // New incarnation adopts the segment with the recovered length.
        let adopted = client_b.adopt_segment(&mut ctx, seg.id, SegmentClass::Log).unwrap();
        assert_eq!(client_b.segment_len(adopted), 16);
        assert_eq!(client_b.read(&mut ctx, adopted, 0, 16).unwrap(), b"pre-crash-state!");
        let off = client_b.append(&mut ctx, adopted, b"-postcrash").unwrap();
        assert_eq!(off, 16);
    }

    #[test]
    fn route_refresh_detects_repair() {
        let mut ctx = SimCtx::new(1, 7);
        let tc = test_cluster(&mut ctx);
        let seg = tc.client.create_segment(&mut ctx, SegmentClass::Log).unwrap();
        tc.client.append(&mut ctx, seg, b"data").unwrap();
        let route_v1 = tc.client.cached_route(seg.id).unwrap();

        tc.env.faults.crash(route_v1.replicas[0].node);
        ctx.advance(VTime::from_secs(2));
        for s in &tc.servers {
            if s.node() != route_v1.replicas[0].node {
                tc.cm.heartbeat(ctx.now(), s.node(), s.free_slots());
            }
        }
        tc.cm.tick(&mut ctx);

        // After the refresh period the client picks up the new route.
        ctx.advance(VTime::from_millis(100));
        tc.client.refresh_all_routes(&mut ctx);
        let route_v2 = tc.client.cached_route(seg.id).unwrap();
        assert!(route_v2.version > route_v1.version);
        assert!(!route_v2.replicas.iter().any(|l| l.node == route_v1.replicas[0].node));
    }
}
