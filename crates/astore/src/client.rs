//! The AStore client — the access SDK embedded in the DBEngine (§IV-A).
//!
//! Control plane (create/delete/route/lease) goes through the CM over RPC
//! and costs milliseconds; the data plane is **one-sided only**:
//!
//! * [`AStoreClient::append_with`] — the §IV-B write: one chained work
//!   request carrying the payload WRITE, the io-meta WRITE (so the
//!   segment's effective length survives any crash), and the trailing READ
//!   that flushes into the PMem persistence domain. All replicas are
//!   written in parallel; *every* replica must acknowledge (§IV-B "Write").
//! * [`AStoreClient::read`] — a one-sided READ from any online replica.
//!
//! Route hygiene (§IV-C): routes are cached and re-validated against the CM
//! when older than `refresh_period`, which the deployment guarantees is much
//! shorter than the servers' stale-segment cleanup delay.
//!
//! ## Fault recovery
//!
//! Every operation runs under a [`RetryPolicy`] (capped exponential backoff
//! over *virtual* time):
//!
//! * Transient message loss ([`vedb_rdma::RdmaError::Dropped`]) retries the
//!   same chained write — idempotent, since every attempt writes the same
//!   bytes at the same offsets.
//! * A replica that is *unreachable* is reported to the CM
//!   ([`ClusterManager::report_failure`]), which verifies the claim,
//!   re-replicates the segment (or shrinks its replica set when no spare
//!   node exists) and bumps the route version; the client force-refreshes
//!   the route and retries against the repaired replica set.
//! * `LeaseExpired` on a control-plane call triggers one **same-epoch**
//!   lease renewal. The SDK never re-acquires: a re-acquire would mint a
//!   fresh epoch and defeat the §IV-C fencing of superseded clients.
//! * Reads fail over across replicas, refreshing the route between retry
//!   rounds.
//!
//! Only when the policy is exhausted does a write surface
//! [`AStoreError::ReplicaFailed`] — at which point the segment is frozen
//! and the ring layer rolls to a fresh one. All recovery activity is
//! published through [`RecoveryCounters`] (see `vedb_sim::metrics`).

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use vedb_rdma::{RdmaEndpoint, RemoteMr};
use vedb_sim::fault::NodeId;
use vedb_sim::trace::TraceLog;
use vedb_sim::{
    Counter, LatencyModel, LatencyRecorder, MetricsRegistry, RecoveryCounters, Resource, SimCtx,
    VTime,
};

use crate::cm::{ClusterManager, Lease, Route};
use crate::layout::SegmentClass;
use crate::retry::{AppendOpts, RetryPolicy, SegmentOpts};
use crate::server::AStoreServer;
use crate::{AStoreError, Result, SegmentId, SegmentLoc};

/// A client-side reference to an open segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SegmentHandle {
    /// Cluster-wide segment id.
    pub id: SegmentId,
    /// Replication class.
    pub class: SegmentClass,
}

struct CachedRoute {
    route: Route,
    fetched_at: VTime,
}

struct SegMeta {
    len: u64,
    capacity: u64,
    frozen: bool,
}

/// Data-path metric handles (component `"astore"`), cached at connect time
/// from the CM's registry.
struct ClientStats {
    registry: Arc<MetricsRegistry>,
    appends: Arc<Counter>,
    /// Records carried by appends; `batch_records / appends` is the
    /// group-commit consolidation ratio as seen by the store.
    batch_records: Arc<Counter>,
    append_bytes: Arc<Counter>,
    reads: Arc<Counter>,
    read_bytes: Arc<Counter>,
    append_lat: Arc<LatencyRecorder>,
    read_lat: Arc<LatencyRecorder>,
    trace: Arc<TraceLog>,
}

impl ClientStats {
    fn register(registry: Arc<MetricsRegistry>) -> Self {
        ClientStats {
            appends: registry.counter("astore", "appends"),
            batch_records: registry.counter("astore", "batch_records"),
            append_bytes: registry.counter("astore", "append_bytes"),
            reads: registry.counter("astore", "reads"),
            read_bytes: registry.counter("astore", "read_bytes"),
            append_lat: registry.latency("astore", "append"),
            read_lat: registry.latency("astore", "read"),
            trace: Arc::clone(registry.trace()),
            registry,
        }
    }
}

/// The AStore client SDK.
pub struct AStoreClient {
    cm: Arc<ClusterManager>,
    ep: RdmaEndpoint,
    engine_cpu: Arc<Resource>,
    model: LatencyModel,
    client_id: u64,
    refresh_period: VTime,
    policy: RetryPolicy,
    counters: Arc<RecoveryCounters>,
    stats: ClientStats,
    lease: Mutex<Lease>,
    /// Per-node connection state: registered MR + server reference.
    nodes: Mutex<HashMap<NodeId, (RemoteMr, Arc<AStoreServer>)>>,
    routes: Mutex<HashMap<SegmentId, CachedRoute>>,
    segs: Mutex<HashMap<SegmentId, SegMeta>>,
}

impl AStoreClient {
    /// Connect with the default [`RetryPolicy`]: acquire a lease from the
    /// CM and set up one-sided access to every live server.
    pub fn connect(
        ctx: &mut SimCtx,
        cm: Arc<ClusterManager>,
        ep: RdmaEndpoint,
        engine_cpu: Arc<Resource>,
        model: LatencyModel,
        client_id: u64,
        refresh_period: VTime,
    ) -> Arc<Self> {
        Self::connect_with_policy(
            ctx,
            cm,
            ep,
            engine_cpu,
            model,
            client_id,
            refresh_period,
            RetryPolicy::default(),
        )
    }

    /// Connect with an explicit [`RetryPolicy`] (the DBEngine passes
    /// `DbConfig::retry` through here).
    #[allow(clippy::too_many_arguments)]
    pub fn connect_with_policy(
        ctx: &mut SimCtx,
        cm: Arc<ClusterManager>,
        ep: RdmaEndpoint,
        engine_cpu: Arc<Resource>,
        model: LatencyModel,
        client_id: u64,
        refresh_period: VTime,
        policy: RetryPolicy,
    ) -> Arc<Self> {
        let lease = cm.acquire_lease(ctx, client_id);
        let nodes = cm
            .live_servers()
            .into_iter()
            .map(|s| (s.node(), (s.mr(), s)))
            .collect();
        let counters = Arc::new(RecoveryCounters::new());
        cm.attach_recovery_counters(Arc::clone(&counters));
        let stats = ClientStats::register(cm.metrics());
        Arc::new(AStoreClient {
            cm,
            ep,
            engine_cpu,
            model,
            client_id,
            refresh_period,
            policy,
            counters,
            stats,
            lease: Mutex::new(lease),
            nodes: Mutex::new(nodes),
            routes: Mutex::new(HashMap::new()),
            segs: Mutex::new(HashMap::new()),
        })
    }

    /// The client's id.
    pub fn client_id(&self) -> u64 {
        self.client_id
    }

    /// Current lease (tests).
    pub fn lease(&self) -> Lease {
        *self.lease.lock()
    }

    /// The cluster manager this client talks to.
    pub fn cm(&self) -> &Arc<ClusterManager> {
        &self.cm
    }

    /// The retry policy this client runs under.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.policy
    }

    /// Recovery telemetry: retries, failovers, renewals, repairs.
    pub fn recovery_counters(&self) -> &Arc<RecoveryCounters> {
        &self.counters
    }

    /// The deployment metric registry this client publishes into (inherited
    /// from the CM at connect time); engine-side layers built on top of the
    /// client (EBP) register their own metrics here.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.stats.registry
    }

    fn charge_sdk(&self, ctx: &mut SimCtx) {
        let done = self
            .engine_cpu
            .acquire(ctx.now(), VTime::from_nanos(self.model.cpu_astore_sdk_ns));
        ctx.wait_until(done);
    }

    /// Sleep the capped-exponential backoff for retry number `retry`.
    fn sleep_backoff(&self, ctx: &mut SimCtx, retry: u32) {
        let slept = self.policy.backoff(retry);
        ctx.advance(slept);
        self.counters.note_retry();
        self.counters.note_backoff(slept);
    }

    /// Run a lease-bearing CM operation under the retry policy. A fencing
    /// error gets exactly one **same-epoch** renewal attempt; if the CM
    /// refuses the renewal this client was superseded and the fence is
    /// final. Transient errors back off and retry.
    fn cm_op<T>(
        &self,
        ctx: &mut SimCtx,
        mut op: impl FnMut(&mut SimCtx, Lease) -> Result<T>,
    ) -> Result<T> {
        // Failure paths drop the guard → the span records as abandoned.
        let sp = self.stats.trace.span(ctx, "astore", "cm_rpc");
        let mut retry = 0u32;
        let mut renewed = false;
        loop {
            let lease = *self.lease.lock();
            match op(ctx, lease) {
                Ok(v) => {
                    sp.finish(ctx);
                    return Ok(v);
                }
                Err(e) if e.is_fencing() && !renewed => {
                    // Renew the *same* epoch; never re-acquire (that would
                    // mint a new epoch and bypass the §IV-C fence).
                    self.cm.renew_lease(ctx, lease)?;
                    self.counters.note_lease_renewal();
                    renewed = true;
                }
                Err(e) if e.is_retryable() && self.policy.allows(retry) => {
                    self.sleep_backoff(ctx, retry);
                    retry += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn node_conn(&self, node: NodeId) -> Result<(RemoteMr, Arc<AStoreServer>)> {
        if let Some((mr, s)) = self.nodes.lock().get(&node) {
            return Ok((mr.clone(), Arc::clone(s)));
        }
        // A node added after connect (repair target): fetch from the CM.
        match self.cm.server(node) {
            Some(s) => {
                let mr = s.mr();
                self.nodes.lock().insert(node, (mr.clone(), Arc::clone(&s)));
                Ok((mr, s))
            }
            None => Err(AStoreError::UnknownSegment(0)),
        }
    }

    /// Create a segment described by `opts` — class plus optional explicit
    /// replication factor. Control-plane cost: milliseconds (§IV-B
    /// "Create").
    pub fn create_segment_with(
        &self,
        ctx: &mut SimCtx,
        opts: SegmentOpts,
    ) -> Result<SegmentHandle> {
        self.charge_sdk(ctx);
        let class = opts.class;
        let replication = opts.effective_replication();
        let (id, route) = self.cm_op(ctx, |ctx, lease| {
            self.cm.create_segment(ctx, lease, class, replication)
        })?;
        let capacity = route
            .replicas
            .iter()
            .filter_map(|loc| self.node_conn(loc.node).ok())
            .map(|(_, s)| s.slot_size())
            .min()
            .unwrap_or(0);
        self.routes.lock().insert(
            id,
            CachedRoute {
                route,
                fetched_at: ctx.now(),
            },
        );
        self.segs.lock().insert(
            id,
            SegMeta {
                len: 0,
                capacity,
                frozen: false,
            },
        );
        Ok(SegmentHandle { id, class })
    }

    /// Create a segment of the class's default replication.
    #[deprecated(note = "use `create_segment_with(ctx, SegmentOpts::new(class))`")]
    pub fn create_segment(&self, ctx: &mut SimCtx, class: SegmentClass) -> Result<SegmentHandle> {
        self.create_segment_with(ctx, SegmentOpts::new(class))
    }

    /// Create a segment with an explicit replication factor.
    #[deprecated(
        note = "use `create_segment_with(ctx, SegmentOpts::new(class).with_replication(n))`"
    )]
    pub fn create_segment_with_replication(
        &self,
        ctx: &mut SimCtx,
        class: SegmentClass,
        replication: usize,
    ) -> Result<SegmentHandle> {
        self.create_segment_with(ctx, SegmentOpts::new(class).with_replication(replication))
    }

    /// Delete a segment (CM route removal + delayed server cleanup).
    pub fn delete_segment(&self, ctx: &mut SimCtx, handle: SegmentHandle) -> Result<()> {
        self.charge_sdk(ctx);
        self.cm_op(ctx, |ctx, lease| {
            self.cm.delete_segment(ctx, lease, handle.id)
        })?;
        self.routes.lock().remove(&handle.id);
        self.segs.lock().remove(&handle.id);
        Ok(())
    }

    /// Refresh the cached route for `seg` if it is older than the refresh
    /// period (§IV-C: "the AStore Client regularly checks with the CM to
    /// see if the segment's route has changed").
    fn maybe_refresh_route(&self, ctx: &mut SimCtx, seg: SegmentId) -> Result<Route> {
        let stale = {
            let routes = self.routes.lock();
            match routes.get(&seg) {
                Some(c) => ctx.now().saturating_sub(c.fetched_at) > self.refresh_period,
                None => true,
            }
        };
        if stale {
            let route = self.cm.get_route(ctx, seg)?;
            self.routes.lock().insert(
                seg,
                CachedRoute {
                    route: route.clone(),
                    fetched_at: ctx.now(),
                },
            );
            Ok(route)
        } else {
            Ok(self.routes.lock().get(&seg).expect("cached").route.clone())
        }
    }

    /// Re-resolve a route from the CM unconditionally (recovery path).
    fn force_refresh_route(&self, ctx: &mut SimCtx, seg: SegmentId) -> Result<Route> {
        let route = self.cm.get_route(ctx, seg)?;
        self.routes.lock().insert(
            seg,
            CachedRoute {
                route: route.clone(),
                fetched_at: ctx.now(),
            },
        );
        self.counters.note_route_refresh();
        Ok(route)
    }

    /// Force-refresh all cached routes (background task).
    pub fn refresh_all_routes(&self, ctx: &mut SimCtx) {
        let segs: Vec<SegmentId> = self.routes.lock().keys().copied().collect();
        for seg in segs {
            match self.cm.get_route(ctx, seg) {
                Ok(route) => {
                    self.routes.lock().insert(
                        seg,
                        CachedRoute {
                            route,
                            fetched_at: ctx.now(),
                        },
                    );
                }
                Err(_) => {
                    // Route is gone: the segment was deleted or fully lost.
                    self.routes.lock().remove(&seg);
                }
            }
        }
    }

    /// Renew the client lease (periodic background task).
    pub fn renew_lease(&self, ctx: &mut SimCtx) -> Result<()> {
        let lease = *self.lease.lock();
        self.cm.renew_lease(ctx, lease)
    }

    /// Bytes appended so far.
    pub fn segment_len(&self, handle: SegmentHandle) -> u64 {
        self.segs.lock().get(&handle.id).map(|m| m.len).unwrap_or(0)
    }

    /// Segment capacity in bytes.
    pub fn segment_capacity(&self, handle: SegmentHandle) -> u64 {
        self.segs
            .lock()
            .get(&handle.id)
            .map(|m| m.capacity)
            .unwrap_or(0)
    }

    /// Whether the segment was frozen by a failed write.
    pub fn is_frozen(&self, handle: SegmentHandle) -> bool {
        self.segs
            .lock()
            .get(&handle.id)
            .map(|m| m.frozen)
            .unwrap_or(true)
    }

    /// Mark a segment frozen (also done automatically on replica failure).
    pub fn freeze(&self, handle: SegmentHandle) {
        if let Some(m) = self.segs.lock().get_mut(&handle.id) {
            m.frozen = true;
        }
    }

    /// Attempt to un-freeze a segment frozen by a failed write: force a
    /// route re-resolution (the CM may have repaired or shrunk the replica
    /// set since the failure) and probe every replica's io-meta with a
    /// one-sided READ. If the whole current replica set answers, the
    /// segment accepts appends again; otherwise the caller rolls to a
    /// fresh segment (§V-E).
    pub fn try_unfreeze(&self, ctx: &mut SimCtx, handle: SegmentHandle) -> Result<bool> {
        let Ok(route) = self.force_refresh_route(ctx, handle.id) else {
            return Ok(false);
        };
        if route.replicas.is_empty() {
            return Ok(false);
        }
        for loc in &route.replicas {
            let Ok((mr, server)) = self.node_conn(loc.node) else {
                return Ok(false);
            };
            if self
                .ep
                .read(ctx, &mr, server.io_meta_offset(loc.offset), 8)
                .is_err()
            {
                return Ok(false);
            }
        }
        if let Some(m) = self.segs.lock().get_mut(&handle.id) {
            m.frozen = false;
        }
        Ok(true)
    }

    fn replica_write(
        &self,
        ctx: &mut SimCtx,
        loc: &SegmentLoc,
        writes: &[(u64, &[u8])],
    ) -> Result<()> {
        let (mr, server) = self.node_conn(loc.node)?;
        // Translate segment-relative offsets to absolute device offsets;
        // the io-meta sentinel offset u64::MAX maps to the slot's io-meta.
        let abs: Vec<(u64, &[u8])> = writes
            .iter()
            .map(|(off, data)| {
                if *off == u64::MAX {
                    (server.io_meta_offset(loc.offset), *data)
                } else {
                    (loc.offset + off, *data)
                }
            })
            .collect();
        self.ep.write_chain(ctx, &mr, &abs)?;
        Ok(())
    }

    /// One round of the replicated §IV-B write: every replica in `route`
    /// gets the chained WRITE in parallel. Transient failures leave the
    /// replica un-acked; concretely unreachable nodes are also collected in
    /// `unreachable` so the caller can report them to the CM.
    fn fanout_once(
        &self,
        ctx: &mut SimCtx,
        route: &Route,
        writes: &[(u64, &[u8])],
        unreachable: &mut Vec<NodeId>,
    ) -> Result<()> {
        let required = route.replicas.len();
        let mut done = ctx.now();
        let mut acked = 0;
        unreachable.clear();
        for loc in &route.replicas {
            let mut rep_ctx = ctx.fork();
            match self.replica_write(&mut rep_ctx, loc, writes) {
                Ok(()) => {
                    acked += 1;
                    done = done.max(rep_ctx.now());
                }
                Err(e) if e.is_retryable() => {
                    if let Some(n) = e.unreachable_node() {
                        unreachable.push(n);
                    }
                    // The failed attempt still cost the client its timeout.
                    done = done.max(rep_ctx.now());
                }
                Err(e) => return Err(e),
            }
        }
        ctx.wait_until(done);
        if acked < required {
            return Err(AStoreError::ReplicaFailed { acked, required });
        }
        Ok(())
    }

    /// The replicated write with the full recovery ladder (§IV-B + §V-E):
    ///
    /// 1. fan the chained WRITE out to every replica;
    /// 2. on shortfall, report unreachable replicas to the CM (verified
    ///    failure detection → re-replication or route shrink), force a
    ///    route re-resolution, back off, retry — the chain is idempotent;
    /// 3. only with the retry budget exhausted freeze the segment and
    ///    surface [`AStoreError::ReplicaFailed`] for the ring layer.
    fn fanout_write(
        &self,
        ctx: &mut SimCtx,
        handle: SegmentHandle,
        writes: &[(u64, &[u8])],
    ) -> Result<()> {
        let mut route = self.maybe_refresh_route(ctx, handle.id)?;
        let mut unreachable = Vec::new();
        let mut retry = 0u32;
        loop {
            match self.fanout_once(ctx, &route, writes, &mut unreachable) {
                Ok(()) => return Ok(()),
                Err(e) if e.is_segment_unwritable() || e.is_retryable() => {
                    if !self.policy.allows(retry) {
                        // §IV-B: freeze with the current effective length;
                        // the caller re-opens a new segment.
                        self.freeze(handle);
                        return Err(e);
                    }
                    for &node in &unreachable {
                        self.cm.report_failure(ctx, node);
                    }
                    self.sleep_backoff(ctx, retry);
                    retry += 1;
                    if !unreachable.is_empty() {
                        // The replica set may have been repaired or shrunk.
                        match self.force_refresh_route(ctx, handle.id) {
                            Ok(r) => route = r,
                            Err(e2) => return Err(e2),
                        }
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Append a batch of `records` to the segment in one §IV-B write —
    /// **the primitive append**. The batch takes a single reservation
    /// (records land back to back at the current segment length), every
    /// record becomes its own WRITE work request in one chain per replica,
    /// the io-meta WRITE covering the *whole* batch is chained after them,
    /// and one doorbell rings the lot out. Returns each record's
    /// segment-relative offset.
    ///
    /// Durability contract: when this returns `Ok`, every record of the
    /// batch is persistent on every replica — there is no partially-durable
    /// prefix observable through the io-meta, because the length update is
    /// the chain's final WRITE.
    ///
    /// [`append_with`](Self::append_with) is the single-record wrapper.
    pub fn append_batch(
        &self,
        ctx: &mut SimCtx,
        handle: SegmentHandle,
        records: &[&[u8]],
    ) -> Result<Vec<u64>> {
        self.append_records(ctx, handle, records, &[])
    }

    /// Shared implementation of the batch append: `records` back to back,
    /// an optional speculative `tail` after the last record (not counted in
    /// the segment length), and the covering io-meta — all in one chained
    /// work request per replica.
    fn append_records(
        &self,
        ctx: &mut SimCtx,
        handle: SegmentHandle,
        records: &[&[u8]],
        tail: &[u8],
    ) -> Result<Vec<u64>> {
        assert!(!records.is_empty(), "empty batches are not meaningful");
        assert!(
            records.iter().all(|r| !r.is_empty()),
            "empty appends are not meaningful"
        );
        let t0 = ctx.now();
        let sp = self.stats.trace.span(ctx, "astore", "append");
        self.charge_sdk(ctx);
        // A frozen segment gets one shot at un-freezing — the CM may have
        // repaired the replica set since the failed write that froze it.
        if self.is_frozen(handle) && !self.try_unfreeze(ctx, handle)? {
            return Err(AStoreError::SegmentFrozen(handle.id));
        }
        let data_len: u64 = records.iter().map(|r| r.len() as u64).sum();
        let (base, new_len) = {
            let segs = self.segs.lock();
            let meta = segs
                .get(&handle.id)
                .ok_or(AStoreError::UnknownSegment(handle.id))?;
            if meta.frozen {
                return Err(AStoreError::SegmentFrozen(handle.id));
            }
            let end = meta.len + data_len + tail.len() as u64;
            if end > meta.capacity {
                return Err(AStoreError::SegmentFull {
                    used: meta.len,
                    capacity: meta.capacity,
                });
            }
            (meta.len, meta.len + data_len)
        };
        let len_bytes = new_len.to_le_bytes();
        let mut writes: Vec<(u64, &[u8])> = Vec::with_capacity(records.len() + 2);
        let mut offsets = Vec::with_capacity(records.len());
        let mut off = base;
        for rec in records {
            writes.push((off, rec));
            offsets.push(off);
            off += rec.len() as u64;
        }
        if !tail.is_empty() {
            writes.push((off, tail));
        }
        writes.push((u64::MAX, &len_bytes)); // io-meta, chained (final WRITE)
        self.fanout_write(ctx, handle, &writes)?;
        if let Some(m) = self.segs.lock().get_mut(&handle.id) {
            m.len = new_len;
        }
        self.stats.appends.inc();
        self.stats.batch_records.add(records.len() as u64);
        self.stats.append_bytes.add(data_len);
        self.stats.append_lat.record(ctx.now() - t0);
        sp.finish(ctx);
        Ok(offsets)
    }

    /// Append `data` to the segment with the options in `opts` — the
    /// documented **single-record wrapper** over the batch primitive
    /// [`append_batch`](Self::append_batch). Returns the segment-relative
    /// offset the data landed at.
    ///
    /// `opts.tail` additionally writes bytes *after* the record without
    /// advancing the segment length (the EBP writer lays down a zeroed
    /// terminator header this way, in the same chained work request).
    pub fn append_with(
        &self,
        ctx: &mut SimCtx,
        handle: SegmentHandle,
        data: &[u8],
        opts: AppendOpts<'_>,
    ) -> Result<u64> {
        let tail = opts.tail.unwrap_or(&[]);
        Ok(self.append_records(ctx, handle, &[data], tail)?[0])
    }

    /// Append `data` to the segment — single-record wrapper over
    /// [`append_batch`](Self::append_batch).
    #[deprecated(note = "use `append_with(ctx, handle, data, AppendOpts::new())`")]
    pub fn append(&self, ctx: &mut SimCtx, handle: SegmentHandle, data: &[u8]) -> Result<u64> {
        self.append_with(ctx, handle, data, AppendOpts::new())
    }

    /// Append `data` followed by a speculative `tail` write —
    /// single-record wrapper over [`append_batch`](Self::append_batch).
    #[deprecated(note = "use `append_with(ctx, handle, data, AppendOpts::new().with_tail(tail))`")]
    pub fn append_with_tail(
        &self,
        ctx: &mut SimCtx,
        handle: SegmentHandle,
        data: &[u8],
        tail: &[u8],
    ) -> Result<u64> {
        let opts = if tail.is_empty() {
            AppendOpts::new()
        } else {
            AppendOpts::new().with_tail(tail)
        };
        self.append_with(ctx, handle, data, opts)
    }

    /// Positioned write that does **not** change the segment length —
    /// used for in-segment headers (SegmentRing status/LSN updates).
    pub fn write_at(
        &self,
        ctx: &mut SimCtx,
        handle: SegmentHandle,
        offset: u64,
        data: &[u8],
    ) -> Result<()> {
        self.charge_sdk(ctx);
        {
            let segs = self.segs.lock();
            let meta = segs
                .get(&handle.id)
                .ok_or(AStoreError::UnknownSegment(handle.id))?;
            if offset + data.len() as u64 > meta.capacity {
                return Err(AStoreError::SegmentFull {
                    used: offset,
                    capacity: meta.capacity,
                });
            }
        }
        self.fanout_write(ctx, handle, &[(offset, data)])
    }

    /// Reset the segment's logical length to zero (ring-slot recycling).
    pub fn reset_len(&self, ctx: &mut SimCtx, handle: SegmentHandle) -> Result<()> {
        self.charge_sdk(ctx);
        let zero = 0u64.to_le_bytes();
        self.fanout_write(ctx, handle, &[(u64::MAX, &zero)])?;
        if let Some(m) = self.segs.lock().get_mut(&handle.id) {
            m.len = 0;
            m.frozen = false;
        }
        Ok(())
    }

    /// One-sided read of `len` bytes at segment-relative `offset` (§IV-B
    /// "Read"): served by the first replica that answers, failing over
    /// across the replica set and re-resolving the route between retry
    /// rounds.
    pub fn read(
        &self,
        ctx: &mut SimCtx,
        handle: SegmentHandle,
        offset: u64,
        len: usize,
    ) -> Result<Vec<u8>> {
        let t0 = ctx.now();
        let sp = self.stats.trace.span(ctx, "astore", "read");
        let mut retry = 0u32;
        loop {
            let route = self.maybe_refresh_route(ctx, handle.id)?;
            {
                let segs = self.segs.lock();
                if let Some(meta) = segs.get(&handle.id) {
                    if offset + len as u64 > meta.capacity {
                        return Err(AStoreError::SegmentFull {
                            used: offset,
                            capacity: meta.capacity,
                        });
                    }
                }
            }
            let mut last_err = AStoreError::UnknownSegment(handle.id);
            for (i, loc) in route.replicas.iter().enumerate() {
                let (mr, _) = match self.node_conn(loc.node) {
                    Ok(c) => c,
                    Err(e) => {
                        last_err = e;
                        continue;
                    }
                };
                match self.ep.read(ctx, &mr, loc.offset + offset, len) {
                    Ok(data) => {
                        if i > 0 {
                            self.counters.note_read_failover();
                        }
                        self.stats.reads.inc();
                        self.stats.read_bytes.add(len as u64);
                        self.stats.read_lat.record(ctx.now() - t0);
                        sp.finish(ctx);
                        return Ok(data);
                    }
                    Err(e) => last_err = AStoreError::Network(e),
                }
            }
            // Every replica failed this round.
            if !last_err.is_retryable() || !self.policy.allows(retry) {
                return Err(last_err);
            }
            self.sleep_backoff(ctx, retry);
            retry += 1;
            let _ = self.force_refresh_route(ctx, handle.id);
        }
    }

    /// Recover a segment's effective data length from the on-media io-meta
    /// (used after a client crash, when the DRAM `segs` table is gone).
    /// Reads every reachable replica and takes the maximum — a replica
    /// re-replicated mid-history may hold an older io-meta.
    pub fn recover_used_len(&self, ctx: &mut SimCtx, seg: SegmentId) -> Result<u64> {
        let route = self.maybe_refresh_route(ctx, seg)?;
        let mut best: Option<u64> = None;
        for loc in &route.replicas {
            let (mr, server) = match self.node_conn(loc.node) {
                Ok(c) => c,
                Err(_) => continue,
            };
            let abs = server.io_meta_offset(loc.offset);
            if let Ok(bytes) = self.ep.read(ctx, &mr, abs, 8) {
                let len = u64::from_le_bytes(bytes.try_into().unwrap());
                best = Some(best.map_or(len, |b| b.max(len)));
            }
        }
        best.ok_or(AStoreError::Network(vedb_rdma::RdmaError::Dropped))
    }

    /// Adopt a segment created by a previous incarnation of this client
    /// (crash recovery): fetch the route, recover the effective length.
    pub fn adopt_segment(
        &self,
        ctx: &mut SimCtx,
        seg: SegmentId,
        class: SegmentClass,
    ) -> Result<SegmentHandle> {
        let route = self.cm.get_route(ctx, seg)?;
        let capacity = route
            .replicas
            .iter()
            .filter_map(|loc| self.node_conn(loc.node).ok())
            .map(|(_, s)| s.slot_size())
            .min()
            .unwrap_or(0);
        self.routes.lock().insert(
            seg,
            CachedRoute {
                route,
                fetched_at: ctx.now(),
            },
        );
        let handle = SegmentHandle { id: seg, class };
        let len = self.recover_used_len(ctx, seg)?;
        self.segs.lock().insert(
            seg,
            SegMeta {
                len,
                capacity,
                frozen: false,
            },
        );
        Ok(handle)
    }

    /// The current route of a segment, if cached (engine push-down uses the
    /// node ids to dispatch fragments to EBP hosts).
    pub fn cached_route(&self, seg: SegmentId) -> Option<Route> {
        self.routes.lock().get(&seg).map(|c| c.route.clone())
    }

    /// Server handle for a node (push-down execution against local PMem).
    pub fn server(&self, node: NodeId) -> Option<Arc<AStoreServer>> {
        self.node_conn(node).ok().map(|(_, s)| s)
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use vedb_rdma::RpcFabric;
    use vedb_sim::ClusterSpec;

    pub(crate) struct TestCluster {
        pub env: Arc<vedb_sim::SimEnv>,
        pub cm: Arc<ClusterManager>,
        pub servers: Vec<Arc<AStoreServer>>,
        pub client: Arc<AStoreClient>,
    }

    pub(crate) fn test_cluster(ctx: &mut SimCtx) -> TestCluster {
        test_cluster_with_policy(ctx, RetryPolicy::default())
    }

    pub(crate) fn test_cluster_with_policy(ctx: &mut SimCtx, policy: RetryPolicy) -> TestCluster {
        let env = ClusterSpec::paper_default().build();
        let cm = ClusterManager::new(
            Arc::clone(&env.faults),
            VTime::from_secs(30),
            VTime::from_secs(1),
        );
        let servers: Vec<Arc<AStoreServer>> = env
            .astore_nodes
            .iter()
            .enumerate()
            .map(|(i, n)| {
                AStoreServer::new(
                    i as NodeId,
                    Arc::clone(n),
                    4 << 20,
                    64 * 1024,
                    false,
                    VTime::from_millis(500),
                    env.model.clone(),
                )
            })
            .collect();
        for s in &servers {
            cm.register_server(Arc::clone(s));
            cm.heartbeat(VTime::ZERO, s.node(), s.free_slots());
        }
        let ep = RdmaEndpoint::new(
            env.model.clone(),
            Arc::clone(&env.faults),
            Arc::clone(&env.engine_nic),
        );
        let client = AStoreClient::connect_with_policy(
            ctx,
            Arc::clone(&cm),
            ep,
            Arc::clone(&env.engine_cpu),
            env.model.clone(),
            1,
            VTime::from_millis(50),
            policy,
        );
        let _ = RpcFabric::new(env.model.clone(), Arc::clone(&env.faults));
        TestCluster {
            env,
            cm,
            servers,
            client,
        }
    }

    fn log_seg(ctx: &mut SimCtx, tc: &TestCluster) -> SegmentHandle {
        tc.client
            .create_segment_with(ctx, SegmentOpts::new(SegmentClass::Log))
            .unwrap()
    }

    #[test]
    fn append_and_read_roundtrip() {
        let mut ctx = SimCtx::new(1, 7);
        let tc = test_cluster(&mut ctx);
        let seg = log_seg(&mut ctx, &tc);
        let off1 = tc
            .client
            .append_with(&mut ctx, seg, b"first-record", AppendOpts::new())
            .unwrap();
        let off2 = tc
            .client
            .append_with(&mut ctx, seg, b"second", AppendOpts::new())
            .unwrap();
        assert_eq!(off1, 0);
        assert_eq!(off2, 12);
        assert_eq!(tc.client.segment_len(seg), 18);
        assert_eq!(
            tc.client.read(&mut ctx, seg, 0, 18).unwrap(),
            b"first-recordsecond"
        );
        assert_eq!(tc.client.read(&mut ctx, seg, 12, 6).unwrap(), b"second");
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_still_work() {
        let mut ctx = SimCtx::new(1, 7);
        let tc = test_cluster(&mut ctx);
        let seg = tc
            .client
            .create_segment(&mut ctx, SegmentClass::Log)
            .unwrap();
        let seg2 = tc
            .client
            .create_segment_with_replication(&mut ctx, SegmentClass::Log, 2)
            .unwrap();
        assert_eq!(tc.client.cached_route(seg2.id).unwrap().replicas.len(), 2);
        tc.client.append(&mut ctx, seg, b"old-api").unwrap();
        tc.client
            .append_with_tail(&mut ctx, seg, b"x", &[0u8; 4])
            .unwrap();
        assert_eq!(tc.client.read(&mut ctx, seg, 0, 7).unwrap(), b"old-api");
    }

    #[test]
    fn append_latency_near_86us_table2() {
        let mut ctx = SimCtx::new(1, 7);
        let tc = test_cluster(&mut ctx);
        let seg = log_seg(&mut ctx, &tc);
        let n = 10;
        let t0 = ctx.now();
        for _ in 0..n {
            tc.client
                .append_with(&mut ctx, seg, &[7u8; 4096], AppendOpts::new())
                .unwrap();
        }
        let avg_us = (ctx.now() - t0).as_micros_f64() / n as f64;
        assert!(
            (50.0..=130.0).contains(&avg_us),
            "4KB AStore append should average ~86us, got {avg_us:.1}us"
        );
    }

    #[test]
    fn appends_survive_server_crash_once_acked() {
        let mut ctx = SimCtx::new(1, 7);
        let tc = test_cluster(&mut ctx);
        let seg = log_seg(&mut ctx, &tc);
        tc.client
            .append_with(&mut ctx, seg, b"durable-record", AppendOpts::new())
            .unwrap();
        // Power-cycle every server: PMem media survives, caches don't.
        for s in &tc.servers {
            s.device().crash();
        }
        assert_eq!(
            tc.client.read(&mut ctx, seg, 0, 14).unwrap(),
            b"durable-record"
        );
        // And the io-meta survives too.
        assert_eq!(tc.client.recover_used_len(&mut ctx, seg.id).unwrap(), 14);
    }

    #[test]
    fn replica_failure_freezes_segment_without_retry_policy() {
        // RetryPolicy::disabled() preserves the raw §IV-B contract: any
        // replica shortfall freezes the segment and surfaces ReplicaFailed.
        let mut ctx = SimCtx::new(1, 7);
        let tc = test_cluster_with_policy(&mut ctx, RetryPolicy::disabled());
        let seg = log_seg(&mut ctx, &tc);
        tc.client
            .append_with(&mut ctx, seg, b"before", AppendOpts::new())
            .unwrap();
        let route = tc.client.cached_route(seg.id).unwrap();
        tc.env.faults.crash(route.replicas[0].node);
        let err = tc
            .client
            .append_with(&mut ctx, seg, b"after", AppendOpts::new())
            .unwrap_err();
        assert!(
            err.is_segment_unwritable(),
            "expected replica shortfall, got {err}"
        );
        assert!(tc.client.is_frozen(seg));
        // While the cluster is degraded the un-freeze probe fails and the
        // frozen segment keeps rejecting appends.
        let err = tc
            .client
            .append_with(&mut ctx, seg, b"again", AppendOpts::new())
            .unwrap_err();
        assert!(err.is_segment_unwritable());
        // The client opens a new segment and carries on (ring layer policy).
        tc.env.faults.restore(route.replicas[0].node);
        let seg2 = log_seg(&mut ctx, &tc);
        assert!(tc
            .client
            .append_with(&mut ctx, seg2, b"after", AppendOpts::new())
            .is_ok());
        // Frozen segment still readable.
        assert_eq!(tc.client.read(&mut ctx, seg, 0, 6).unwrap(), b"before");
    }

    #[test]
    fn write_path_recovers_from_replica_crash() {
        // With the default policy a crashed replica is reported to the CM,
        // the route shrinks (no spare node on the 3-node cluster) and the
        // append completes against the surviving replicas — no error, no
        // frozen segment.
        let mut ctx = SimCtx::new(1, 7);
        let tc = test_cluster(&mut ctx);
        let seg = log_seg(&mut ctx, &tc);
        tc.client
            .append_with(&mut ctx, seg, b"before", AppendOpts::new())
            .unwrap();
        let route = tc.client.cached_route(seg.id).unwrap();
        tc.env.faults.crash(route.replicas[0].node);
        let off = tc
            .client
            .append_with(&mut ctx, seg, b"-after", AppendOpts::new())
            .unwrap();
        assert_eq!(off, 6);
        assert!(!tc.client.is_frozen(seg));
        let c = tc.client.recovery_counters();
        assert!(c.retries() >= 1, "recovery must have retried: {c:?}");
        assert!(
            c.route_refreshes() >= 1,
            "recovery must have re-resolved the route: {c:?}"
        );
        let new_route = tc.client.cached_route(seg.id).unwrap();
        assert_eq!(new_route.replicas.len(), 2, "route shrunk to the survivors");
        assert!(new_route.version > route.version);
        assert_eq!(
            tc.client.read(&mut ctx, seg, 0, 12).unwrap(),
            b"before-after"
        );
    }

    #[test]
    fn write_path_rides_out_transient_drops() {
        let mut ctx = SimCtx::new(1, 7);
        let tc = test_cluster(&mut ctx);
        let seg = log_seg(&mut ctx, &tc);
        tc.env.faults.set_drop_prob(0.2);
        for i in 0..20u8 {
            tc.client
                .append_with(&mut ctx, seg, &[i; 128], AppendOpts::new())
                .unwrap();
        }
        tc.env.faults.set_drop_prob(0.0);
        assert_eq!(tc.client.segment_len(seg), 20 * 128);
        let c = tc.client.recovery_counters();
        assert!(c.retries() >= 1, "20% drop rate must force retries: {c:?}");
        assert!(c.backoff() > VTime::ZERO);
        // Every byte of every acked append is readable.
        let all = tc.client.read(&mut ctx, seg, 0, 20 * 128).unwrap();
        for i in 0..20usize {
            assert!(all[i * 128..(i + 1) * 128].iter().all(|&b| b == i as u8));
        }
    }

    #[test]
    fn frozen_segment_unfreezes_after_repair() {
        // Freeze a segment with an exhausted policy, then heal the cluster:
        // the next append un-freezes it instead of failing.
        let mut ctx = SimCtx::new(1, 7);
        let tc = test_cluster_with_policy(&mut ctx, RetryPolicy::disabled());
        let seg = log_seg(&mut ctx, &tc);
        tc.client
            .append_with(&mut ctx, seg, b"before", AppendOpts::new())
            .unwrap();
        let route = tc.client.cached_route(seg.id).unwrap();
        tc.env.faults.crash(route.replicas[0].node);
        assert!(tc
            .client
            .append_with(&mut ctx, seg, b"x", AppendOpts::new())
            .is_err());
        assert!(tc.client.is_frozen(seg));
        // Node comes back; the route is intact, the un-freeze probe passes.
        tc.env.faults.restore(route.replicas[0].node);
        let off = tc
            .client
            .append_with(&mut ctx, seg, b"-after", AppendOpts::new())
            .unwrap();
        assert_eq!(off, 6);
        assert!(!tc.client.is_frozen(seg));
        assert_eq!(
            tc.client.read(&mut ctx, seg, 0, 12).unwrap(),
            b"before-after"
        );
    }

    #[test]
    fn reads_fail_over_to_live_replicas() {
        let mut ctx = SimCtx::new(1, 7);
        let tc = test_cluster(&mut ctx);
        let seg = log_seg(&mut ctx, &tc);
        tc.client
            .append_with(&mut ctx, seg, b"replicated", AppendOpts::new())
            .unwrap();
        let route = tc.client.cached_route(seg.id).unwrap();
        tc.env.faults.crash(route.replicas[0].node);
        assert_eq!(tc.client.read(&mut ctx, seg, 0, 10).unwrap(), b"replicated");
        assert!(tc.client.recovery_counters().read_failovers() >= 1);
    }

    #[test]
    fn reads_retry_through_a_partition() {
        // Partition (not crash) the first replica: reads fail over; with
        // *every* replica partitioned the read errors after bounded retries.
        let mut ctx = SimCtx::new(1, 7);
        let tc = test_cluster(&mut ctx);
        let seg = log_seg(&mut ctx, &tc);
        tc.client
            .append_with(&mut ctx, seg, b"partition-proof", AppendOpts::new())
            .unwrap();
        let route = tc.client.cached_route(seg.id).unwrap();
        tc.env.faults.partition(route.replicas[0].node);
        assert_eq!(
            tc.client.read(&mut ctx, seg, 0, 15).unwrap(),
            b"partition-proof"
        );
        for loc in &route.replicas {
            tc.env.faults.partition(loc.node);
        }
        let before = tc.client.recovery_counters().retries();
        let err = tc.client.read(&mut ctx, seg, 0, 15).unwrap_err();
        assert!(
            err.is_retryable(),
            "a fully-partitioned read surfaces as transient: {err}"
        );
        let spent = tc.client.recovery_counters().retries() - before;
        assert_eq!(
            spent as u32,
            tc.client.retry_policy().max_retries,
            "retries are bounded"
        );
        for loc in &route.replicas {
            tc.env.faults.heal(loc.node);
        }
        assert_eq!(
            tc.client.read(&mut ctx, seg, 0, 15).unwrap(),
            b"partition-proof"
        );
    }

    #[test]
    fn segment_full_rejected() {
        let mut ctx = SimCtx::new(1, 7);
        let tc = test_cluster(&mut ctx);
        let seg = log_seg(&mut ctx, &tc);
        let cap = tc.client.segment_capacity(seg) as usize;
        tc.client
            .append_with(&mut ctx, seg, &vec![1u8; cap - 8], AppendOpts::new())
            .unwrap();
        assert!(matches!(
            tc.client
                .append_with(&mut ctx, seg, &[1u8; 16], AppendOpts::new()),
            Err(AStoreError::SegmentFull { .. })
        ));
        // Exactly filling works.
        tc.client
            .append_with(&mut ctx, seg, &[1u8; 8], AppendOpts::new())
            .unwrap();
    }

    #[test]
    fn ebp_segment_has_one_replica() {
        let mut ctx = SimCtx::new(1, 7);
        let tc = test_cluster(&mut ctx);
        let seg = tc
            .client
            .create_segment_with(&mut ctx, SegmentOpts::new(SegmentClass::Ebp))
            .unwrap();
        let route = tc.client.cached_route(seg.id).unwrap();
        assert_eq!(route.replicas.len(), 1);
    }

    #[test]
    fn write_at_and_reset_len() {
        let mut ctx = SimCtx::new(1, 7);
        let tc = test_cluster(&mut ctx);
        let seg = log_seg(&mut ctx, &tc);
        tc.client
            .append_with(&mut ctx, seg, &[0xFFu8; 64], AppendOpts::new())
            .unwrap();
        tc.client.write_at(&mut ctx, seg, 0, b"HDR!").unwrap();
        assert_eq!(tc.client.read(&mut ctx, seg, 0, 4).unwrap(), b"HDR!");
        assert_eq!(
            tc.client.segment_len(seg),
            64,
            "write_at must not change len"
        );
        tc.client.reset_len(&mut ctx, seg).unwrap();
        assert_eq!(tc.client.segment_len(seg), 0);
        assert_eq!(tc.client.recover_used_len(&mut ctx, seg.id).unwrap(), 0);
    }

    #[test]
    fn crashed_client_is_fenced_but_new_client_adopts_segments() {
        let mut ctx = SimCtx::new(1, 7);
        let tc = test_cluster(&mut ctx);
        let seg = log_seg(&mut ctx, &tc);
        tc.client
            .append_with(&mut ctx, seg, b"pre-crash-state!", AppendOpts::new())
            .unwrap();
        let old_lease = tc.client.lease();

        // "Client A fails; client B takes over" (§IV-C).
        let ep = RdmaEndpoint::new(
            tc.env.model.clone(),
            Arc::clone(&tc.env.faults),
            Arc::clone(&tc.env.engine_nic),
        );
        let client_b = AStoreClient::connect(
            &mut ctx,
            Arc::clone(&tc.cm),
            ep,
            Arc::clone(&tc.env.engine_cpu),
            tc.env.model.clone(),
            1, // same client identity, new incarnation
            VTime::from_millis(50),
        );
        // Old incarnation's control-plane ops are fenced.
        assert!(matches!(
            tc.cm.validate_lease(ctx.now(), old_lease),
            Err(AStoreError::LeaseExpired { .. })
        ));
        // New incarnation adopts the segment with the recovered length.
        let adopted = client_b
            .adopt_segment(&mut ctx, seg.id, SegmentClass::Log)
            .unwrap();
        assert_eq!(client_b.segment_len(adopted), 16);
        assert_eq!(
            client_b.read(&mut ctx, adopted, 0, 16).unwrap(),
            b"pre-crash-state!"
        );
        let off = client_b
            .append_with(&mut ctx, adopted, b"-postcrash", AppendOpts::new())
            .unwrap();
        assert_eq!(off, 16);
    }

    #[test]
    fn superseded_client_stays_fenced_despite_retries() {
        // The fencing regression the retry layer must NOT break: once a new
        // incarnation holds a fresher epoch, the old client's control-plane
        // calls fail, its automatic renewal is refused, and no amount of
        // retrying gets it back in.
        let mut ctx = SimCtx::new(1, 7);
        let tc = test_cluster(&mut ctx);
        let old_client = Arc::clone(&tc.client);
        let ep = RdmaEndpoint::new(
            tc.env.model.clone(),
            Arc::clone(&tc.env.faults),
            Arc::clone(&tc.env.engine_nic),
        );
        let new_client = AStoreClient::connect(
            &mut ctx,
            Arc::clone(&tc.cm),
            ep,
            Arc::clone(&tc.env.engine_cpu),
            tc.env.model.clone(),
            1, // supersedes old_client's lease
            VTime::from_millis(50),
        );
        assert!(new_client.lease().epoch > old_client.lease().epoch);
        let err = old_client
            .create_segment_with(&mut ctx, SegmentOpts::new(SegmentClass::Log))
            .unwrap_err();
        assert!(
            err.is_fencing(),
            "superseded client must stay fenced, got {err}"
        );
        // Explicit renewal is refused too — same epoch, but superseded.
        assert!(old_client.renew_lease(&mut ctx).unwrap_err().is_fencing());
        // The new incarnation is unaffected.
        assert!(new_client
            .create_segment_with(&mut ctx, SegmentOpts::new(SegmentClass::Log))
            .is_ok());
    }

    #[test]
    fn lease_renewed_automatically_after_ttl_lapse() {
        // The TTL (30s here) lapses while the client is idle; the next
        // control-plane call renews the same epoch transparently.
        let mut ctx = SimCtx::new(1, 7);
        let tc = test_cluster(&mut ctx);
        ctx.advance(VTime::from_secs(40));
        let epoch_before = tc.client.lease().epoch;
        let seg = log_seg(&mut ctx, &tc);
        assert_eq!(
            tc.client.lease().epoch,
            epoch_before,
            "no re-acquire, same epoch"
        );
        assert!(tc.client.recovery_counters().lease_renewals() >= 1);
        tc.client
            .append_with(&mut ctx, seg, b"renewed", AppendOpts::new())
            .unwrap();
    }

    #[test]
    fn route_refresh_detects_repair() {
        let mut ctx = SimCtx::new(1, 7);
        let tc = test_cluster(&mut ctx);
        let seg = log_seg(&mut ctx, &tc);
        tc.client
            .append_with(&mut ctx, seg, b"data", AppendOpts::new())
            .unwrap();
        let route_v1 = tc.client.cached_route(seg.id).unwrap();

        tc.env.faults.crash(route_v1.replicas[0].node);
        ctx.advance(VTime::from_secs(2));
        for s in &tc.servers {
            if s.node() != route_v1.replicas[0].node {
                tc.cm.heartbeat(ctx.now(), s.node(), s.free_slots());
            }
        }
        tc.cm.tick(&mut ctx);

        // After the refresh period the client picks up the new route.
        ctx.advance(VTime::from_millis(100));
        tc.client.refresh_all_routes(&mut ctx);
        let route_v2 = tc.client.cached_route(seg.id).unwrap();
        assert!(route_v2.version > route_v1.version);
        assert!(!route_v2
            .replicas
            .iter()
            .any(|l| l.node == route_v1.replicas[0].node));
    }
}
