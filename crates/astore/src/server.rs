//! The AStore server: PMem resource management on one storage node.
//!
//! §IV-A: the server manages the data layout, metadata, and background
//! tasks; it registers the PMem space with the RDMA NIC (here:
//! [`AStoreServer::mr`]) and tracks slot allocation with a persisted bitmap.
//! Because clients access segment *data* purely with one-sided verbs, the
//! server CPU only sees control-plane traffic (allocate/release) and
//! background work — which is exactly why its cores are available for
//! push-down query execution (§VI-B).
//!
//! Stale-segment hygiene (§IV-C): when the CM asks the server to clean a
//! segment, the server does **not** free the slot immediately — it enqueues
//! it and frees it only after `cleanup_delay` of virtual time has passed.
//! Clients refresh their routes on a much shorter period, so no client can
//! still be holding a one-sided route to a slot when it gets reused.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use vedb_pmem::PmemDevice;
use vedb_rdma::RemoteMr;
use vedb_sim::cluster::NodeRes;
use vedb_sim::fault::NodeId;
use vedb_sim::{LatencyModel, SimCtx, VTime};

use crate::ebp_format::{decode_header, RECORD_HDR_SIZE};
use crate::layout::{
    decode_slot_meta, encode_slot_meta, Geometry, SegmentClass, SlotBitmap, SlotState,
    SLOT_META_SIZE, SUPERBLOCK_MAGIC, SUPERBLOCK_SIZE,
};
use crate::{AStoreError, Lsn, PageId, Result, SegmentId};

/// A valid EBP page found by a recovery scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EbpScanEntry {
    /// Cached page id.
    pub page: PageId,
    /// LSN of the cached image.
    pub lsn: Lsn,
    /// Segment holding the image.
    pub segment: SegmentId,
    /// Offset of the *payload* within the segment.
    pub offset: u64,
    /// Payload length.
    pub len: u32,
}

struct ServerState {
    bitmap: SlotBitmap,
    /// segment id -> (slot index, class)
    segments: HashMap<SegmentId, (usize, SegmentClass)>,
    /// Deallocated segments awaiting delayed cleanup: (segment, enqueue time).
    pending_cleanup: Vec<(SegmentId, VTime)>,
}

/// One storage node's AStore server.
pub struct AStoreServer {
    node: NodeId,
    res: Arc<NodeRes>,
    device: Arc<PmemDevice>,
    geo: Geometry,
    model: LatencyModel,
    cleanup_delay: VTime,
    state: Mutex<ServerState>,
    /// page -> latest LSN, shipped in batches by the DBEngine (§V-E); used
    /// to prune stale cached pages during EBP recovery. DRAM-resident.
    page_lsns: Mutex<HashMap<PageId, Lsn>>,
}

impl AStoreServer {
    /// Create and format a server over a fresh PMem device of
    /// `capacity` bytes divided into `slot_size`-byte segment slots.
    pub fn new(
        node: NodeId,
        res: Arc<NodeRes>,
        capacity: usize,
        slot_size: u64,
        ddio_enabled: bool,
        cleanup_delay: VTime,
        model: LatencyModel,
    ) -> Arc<Self> {
        let device = Arc::new(PmemDevice::with_metrics(
            format!("pmem-node-{node}"),
            capacity,
            ddio_enabled,
            res.pmem
                .clone()
                // vedb-lint: allow(no-panic-in-runtime, "deployment wiring: AStore nodes are built with a PMem resource; fails at fabric construction, not mid-request")
                .expect("AStore node must have a PMem resource"),
            model.clone(),
            &res.metrics,
        ));
        let geo = Geometry::for_capacity(capacity as u64, slot_size);
        assert!(geo.slots > 0, "device too small for even one slot");
        // Format: superblock magic + slot count; meta area is already zero
        // (all slots Free).
        let mut sb = vec![0u8; 16];
        sb[0..8].copy_from_slice(&SUPERBLOCK_MAGIC.to_le_bytes());
        sb[8..16].copy_from_slice(&(geo.slots as u64).to_le_bytes());
        // vedb-lint: allow(no-panic-in-runtime, "format-time write at offset 0; Geometry::for_capacity guarantees the superblock fits")
        device.write(VTime::ZERO, 0, &sb).expect("superblock fits");
        device.flush(VTime::ZERO);
        Arc::new(AStoreServer {
            node,
            res,
            device,
            geo,
            model,
            cleanup_delay,
            state: Mutex::new(ServerState {
                bitmap: SlotBitmap::new(geo.slots),
                segments: HashMap::new(),
                pending_cleanup: Vec::new(),
            }),
            page_lsns: Mutex::new(HashMap::new()),
        })
    }

    /// Node id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Node resources (for RPC dispatch and push-down CPU accounting).
    pub fn res(&self) -> &Arc<NodeRes> {
        &self.res
    }

    /// Slot size == maximum segment size on this server.
    pub fn slot_size(&self) -> u64 {
        self.geo.slot_size
    }

    /// Free slots (reported in heartbeats for CM placement).
    pub fn free_slots(&self) -> usize {
        self.state.lock().bitmap.free()
    }

    /// The backing device (crash injection in tests; local reads in
    /// push-down execution).
    pub fn device(&self) -> &Arc<PmemDevice> {
        &self.device
    }

    /// Register the full PMem address space for one-sided access (§IV-A:
    /// "register the full physical address of PMem devices to the RDMA
    /// NIC"). Offsets handed to clients (slot data and io-meta offsets) are
    /// absolute device offsets and can be used directly against this MR.
    pub fn mr(self: &Arc<Self>) -> RemoteMr {
        RemoteMr::register(
            self.node,
            Arc::clone(&self.res),
            Arc::clone(&self.device),
            0,
            self.geo.total_size() as usize,
        )
    }

    /// Absolute device offset of the client-maintained `used_len` io-meta
    /// for the slot whose data starts at `slot_data_offset`.
    ///
    /// One io-meta WRITE covers an entire batched append: the client
    /// chains every record of the batch before the single `used_len`
    /// update, so the server-visible length only ever moves to a
    /// whole-batch boundary (no partially-durable batch is observable).
    pub fn io_meta_offset(&self, slot_data_offset: u64) -> u64 {
        let slot = ((slot_data_offset - self.geo.data_base()) / self.geo.slot_size) as usize;
        self.geo.meta_offset(slot) + crate::layout::IO_META_USED_OFFSET
    }

    fn persist_slot_meta(
        &self,
        ctx: &mut SimCtx,
        slot: usize,
        state: SlotState,
        class: SegmentClass,
        id: SegmentId,
    ) {
        let meta = encode_slot_meta(state, class, id);
        let done = self
            .device
            .write(ctx.now(), self.geo.meta_offset(slot), &meta)
            // vedb-lint: allow(no-panic-in-runtime, "meta_offset(slot) is derived from a validated Geometry; always within device capacity")
            .expect("meta area in bounds");
        self.device.flush(done);
        ctx.wait_until(done);
    }

    /// Handler: allocate a slot for `segment_id`. Returns the segment's
    /// absolute device offset. Zeroes the first EBP record header
    /// so recovery scans terminate.
    pub fn handle_alloc(
        &self,
        ctx: &mut SimCtx,
        segment_id: SegmentId,
        class: SegmentClass,
    ) -> Result<u64> {
        let slot = {
            let mut st = self.state.lock();
            if st.segments.contains_key(&segment_id) {
                // Idempotent re-alloc (client RPC retry).
                let (slot, _) = st.segments[&segment_id];
                return Ok(self.geo.slot_offset(slot));
            }
            let slot = st.bitmap.alloc().ok_or(AStoreError::NoSpace)?;
            st.segments.insert(segment_id, (slot, class));
            slot
        };
        self.persist_slot_meta(ctx, slot, SlotState::Allocated, class, segment_id);
        // Terminator so scans of recycled PMem stop immediately.
        let zero = [0u8; RECORD_HDR_SIZE];
        let done = self
            .device
            .write(ctx.now(), self.geo.slot_offset(slot), &zero)
            // vedb-lint: allow(no-panic-in-runtime, "slot_offset(slot) comes from the allocator bitmap sized by the same Geometry")
            .expect("slot start in bounds");
        self.device.flush(done);
        ctx.wait_until(done);
        Ok(self.geo.slot_offset(slot))
    }

    /// Handler: the CM requests cleanup of a deallocated segment. The slot
    /// is *enqueued*, not freed (§IV-C) — see [`run_cleanup`](Self::run_cleanup).
    pub fn handle_enqueue_cleanup(&self, now: VTime, segment_id: SegmentId) {
        let mut st = self.state.lock();
        if st.segments.contains_key(&segment_id) {
            st.pending_cleanup.push((segment_id, now));
        }
    }

    /// Background task: free slots whose cleanup was enqueued at least
    /// `cleanup_delay` ago. Returns the segments actually freed.
    pub fn run_cleanup(&self, ctx: &mut SimCtx) -> Vec<SegmentId> {
        let due: Vec<(SegmentId, VTime)> = {
            let mut st = self.state.lock();
            let now = ctx.now();
            let delay = self.cleanup_delay;
            let (due, keep): (Vec<_>, Vec<_>) = st
                .pending_cleanup
                .drain(..)
                .partition(|(_, t)| now.saturating_sub(*t) >= delay);
            st.pending_cleanup = keep;
            due
        };
        let mut freed = Vec::with_capacity(due.len());
        for (seg, _) in due {
            let slot = {
                let mut st = self.state.lock();
                match st.segments.remove(&seg) {
                    Some((slot, _)) => {
                        st.bitmap.release(slot);
                        slot
                    }
                    None => continue,
                }
            };
            self.persist_slot_meta(ctx, slot, SlotState::Free, SegmentClass::Log, 0);
            freed.push(seg);
        }
        freed
    }

    /// Segments still awaiting delayed cleanup (visible for tests and the
    /// §IV-C consistency argument).
    pub fn pending_cleanup_len(&self) -> usize {
        self.state.lock().pending_cleanup.len()
    }

    /// Whether the server currently hosts `segment_id` (the slot may be
    /// pending cleanup but is still intact until `run_cleanup` frees it).
    pub fn hosts_segment(&self, segment_id: SegmentId) -> bool {
        self.state.lock().segments.contains_key(&segment_id)
    }

    /// Offset of a hosted segment within the data-area MR.
    pub fn segment_offset(&self, segment_id: SegmentId) -> Option<u64> {
        self.state
            .lock()
            .segments
            .get(&segment_id)
            .map(|(slot, _)| self.geo.slot_offset(*slot))
    }

    /// Crash the node's volatile state **and** the device's unpersisted
    /// bytes (the PMem media itself survives). After this, call
    /// [`restart`](Self::restart).
    pub fn crash(&self) {
        self.device.crash();
        let mut st = self.state.lock();
        st.segments.clear();
        st.pending_cleanup.clear();
        st.bitmap = SlotBitmap::new(self.geo.slots);
        self.page_lsns.lock().clear();
    }

    /// Rebuild the allocator and segment table from the persisted slot
    /// metadata (the PMem-powered fast restart the paper leans on).
    pub fn restart(&self, ctx: &mut SimCtx) -> Result<()> {
        // Validate the superblock. A short or unreadable device is treated
        // as corruption, not a crash: restart is the recovery path and must
        // surface every failure as a typed error the CM can act on.
        let sb = self
            .device
            .peek(0, 16)
            .map_err(|e| AStoreError::Corrupt(format!("superblock unreadable: {e}")))?;
        let magic = sb
            .get(0..8)
            .and_then(|b| <[u8; 8]>::try_from(b).ok())
            .map(u64::from_le_bytes)
            .ok_or_else(|| AStoreError::Corrupt("superblock truncated".into()))?;
        if magic != SUPERBLOCK_MAGIC {
            return Err(AStoreError::Corrupt("bad superblock magic".into()));
        }
        let meta_len = self.geo.slots * SLOT_META_SIZE as usize;
        let (meta, done) = self
            .device
            .read(ctx.now(), SUPERBLOCK_SIZE, meta_len)
            .map_err(|e| AStoreError::Corrupt(format!("slot metadata unreadable: {e}")))?;
        ctx.wait_until(done);
        let mut st = self.state.lock();
        st.bitmap = SlotBitmap::new(self.geo.slots);
        st.segments.clear();
        for slot in 0..self.geo.slots {
            let rec = &meta[slot * SLOT_META_SIZE as usize..(slot + 1) * SLOT_META_SIZE as usize];
            if let Some((SlotState::Allocated, class, id)) = decode_slot_meta(rec) {
                st.bitmap.set_allocated(slot);
                st.segments.insert(id, (slot, class));
            }
        }
        Ok(())
    }

    /// Receive a batch of `(page, latest LSN)` mappings from the DBEngine
    /// (§V-C: "periodically sent to the AStore server in batches").
    pub fn record_page_lsns(&self, batch: impl IntoIterator<Item = (PageId, Lsn)>) {
        let mut map = self.page_lsns.lock();
        for (page, lsn) in batch {
            let e = map.entry(page).or_insert(lsn);
            if *e < lsn {
                *e = lsn;
            }
        }
    }

    /// Number of page→LSN mappings currently held (tests).
    pub fn page_lsn_count(&self) -> usize {
        self.page_lsns.lock().len()
    }

    /// EBP recovery scan (§V-E): walk every EBP segment's records, drop
    /// images older than the freshest known LSN for that page, and return
    /// the newest valid image per page with its position.
    pub fn ebp_recovery_scan(&self, ctx: &mut SimCtx) -> Vec<EbpScanEntry> {
        let slots: Vec<(SegmentId, usize)> = {
            let st = self.state.lock();
            st.segments
                .iter()
                .filter(|(_, (_, class))| *class == SegmentClass::Ebp)
                .map(|(id, (slot, _))| (*id, *slot))
                .collect()
        };
        let lsn_map = self.page_lsns.lock().clone();
        let mut best: HashMap<PageId, EbpScanEntry> = HashMap::new();
        let mut scanned_bytes = 0usize;
        for (seg, slot) in slots {
            let base = self.geo.slot_offset(slot);
            let mut pos = 0u64;
            loop {
                if pos + RECORD_HDR_SIZE as u64 > self.geo.slot_size {
                    break;
                }
                let hdr_bytes = self
                    .device
                    .peek(base + pos, RECORD_HDR_SIZE)
                    // vedb-lint: allow(no-panic-in-runtime, "scan cursor stays below slot_end, which the Geometry keeps within capacity")
                    .expect("header in bounds");
                let Some(hdr) = decode_header(&hdr_bytes) else {
                    break;
                };
                if pos + RECORD_HDR_SIZE as u64 + hdr.len as u64 > self.geo.slot_size {
                    break; // truncated tail record
                }
                scanned_bytes += RECORD_HDR_SIZE + hdr.len as usize;
                let stale = lsn_map
                    .get(&hdr.page)
                    .is_some_and(|latest| hdr.lsn < *latest);
                if !stale {
                    let entry = EbpScanEntry {
                        page: hdr.page,
                        lsn: hdr.lsn,
                        segment: seg,
                        offset: pos + RECORD_HDR_SIZE as u64,
                        len: hdr.len,
                    };
                    match best.get(&hdr.page) {
                        Some(prev) if prev.lsn >= hdr.lsn => {}
                        _ => {
                            best.insert(hdr.page, entry);
                        }
                    }
                }
                pos += RECORD_HDR_SIZE as u64 + hdr.len as u64;
            }
        }
        // Charge the media time of the sequential scan in one go.
        let done = self
            .res
            .pmem
            .as_ref()
            // vedb-lint: allow(no-panic-in-runtime, "deployment wiring: AStore nodes are built with a PMem resource; fails at fabric construction, not mid-request")
            .expect("astore node has pmem")
            .acquire(ctx.now(), self.model.pmem_read_svc(scanned_bytes.max(64)));
        ctx.wait_until(done);
        best.into_values().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ebp_format::{encode_header, EbpRecordHeader};
    use vedb_sim::ClusterSpec;

    fn server() -> (Arc<vedb_sim::SimEnv>, Arc<AStoreServer>) {
        let env = ClusterSpec::tiny().build();
        let s = AStoreServer::new(
            0,
            Arc::clone(&env.astore_nodes[0]),
            1 << 20,
            64 * 1024,
            false,
            VTime::from_millis(500),
            env.model.clone(),
        );
        (env, s)
    }

    #[test]
    fn alloc_is_idempotent_and_persists() {
        let (_env, s) = server();
        let mut ctx = SimCtx::new(1, 7);
        let off1 = s.handle_alloc(&mut ctx, 42, SegmentClass::Log).unwrap();
        let off2 = s.handle_alloc(&mut ctx, 42, SegmentClass::Log).unwrap();
        assert_eq!(off1, off2);
        assert!(s.hosts_segment(42));
        assert_eq!(s.segment_offset(42), Some(off1));
    }

    #[test]
    fn cleanup_is_delayed() {
        let (_env, s) = server();
        let mut ctx = SimCtx::new(1, 7);
        s.handle_alloc(&mut ctx, 7, SegmentClass::Log).unwrap();
        let free_before = s.free_slots();
        s.handle_enqueue_cleanup(ctx.now(), 7);
        assert_eq!(s.pending_cleanup_len(), 1);
        // Too early: nothing freed.
        assert!(s.run_cleanup(&mut ctx).is_empty());
        assert!(s.hosts_segment(7));
        // After the delay, the slot is reclaimed.
        ctx.advance(VTime::from_millis(600));
        assert_eq!(s.run_cleanup(&mut ctx), vec![7]);
        assert!(!s.hosts_segment(7));
        assert_eq!(s.free_slots(), free_before + 1);
    }

    #[test]
    fn restart_rebuilds_from_persisted_meta() {
        let (_env, s) = server();
        let mut ctx = SimCtx::new(1, 7);
        let off_a = s.handle_alloc(&mut ctx, 100, SegmentClass::Log).unwrap();
        s.handle_alloc(&mut ctx, 101, SegmentClass::Ebp).unwrap();
        let free = s.free_slots();

        s.crash();
        assert!(!s.hosts_segment(100));
        s.restart(&mut ctx).unwrap();
        assert!(s.hosts_segment(100));
        assert!(s.hosts_segment(101));
        assert_eq!(s.segment_offset(100), Some(off_a));
        assert_eq!(s.free_slots(), free);
        // New allocations don't collide with recovered ones.
        let off_c = s.handle_alloc(&mut ctx, 102, SegmentClass::Log).unwrap();
        assert_ne!(off_c, off_a);
    }

    #[test]
    fn alloc_exhaustion_reports_no_space() {
        let (_env, s) = server();
        let mut ctx = SimCtx::new(1, 7);
        let mut n = 0u64;
        loop {
            match s.handle_alloc(&mut ctx, n, SegmentClass::Log) {
                Ok(_) => n += 1,
                Err(AStoreError::NoSpace) => break,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(
            n >= 10,
            "expected at least 10 slots in a 1MB device, got {n}"
        );
        assert_eq!(s.free_slots(), 0);
    }

    #[test]
    fn ebp_scan_finds_newest_and_prunes_stale() {
        let (_env, s) = server();
        let mut ctx = SimCtx::new(1, 7);
        s.handle_alloc(&mut ctx, 1, SegmentClass::Ebp).unwrap();
        let mr = s.mr();
        let base = s.segment_offset(1).unwrap();

        // Write three records directly (as the engine's EBP writer would):
        // page A @ lsn 10, page A @ lsn 20 (newer), page B @ lsn 5.
        let page_a = PageId::new(1, 1);
        let page_b = PageId::new(1, 2);
        let mut pos = base;
        for (page, lsn, fill) in [
            (page_a, 10u64, 0xAAu8),
            (page_a, 20, 0xAB),
            (page_b, 5, 0xBB),
        ] {
            let payload = vec![fill; 128];
            let hdr = encode_header(&EbpRecordHeader {
                page,
                lsn,
                len: 128,
            });
            let zero = [0u8; RECORD_HDR_SIZE];
            let dev = mr.device();
            let t = dev.write(ctx.now(), pos, &hdr).unwrap();
            let t = dev
                .write(t, pos + RECORD_HDR_SIZE as u64, &payload)
                .unwrap();
            let t = dev
                .write(t, pos + (RECORD_HDR_SIZE + 128) as u64, &zero)
                .unwrap();
            dev.flush(t);
            pos += (RECORD_HDR_SIZE + 128) as u64;
        }

        let mut found = s.ebp_recovery_scan(&mut ctx);
        found.sort_by_key(|e| e.page);
        assert_eq!(found.len(), 2);
        assert_eq!(found[0].page, page_a);
        assert_eq!(found[0].lsn, 20, "newest image of page A wins");
        assert_eq!(found[1].page, page_b);

        // Now the engine reports page B was modified at LSN 50: the cached
        // image (lsn 5) is stale and must be pruned.
        s.record_page_lsns([(page_b, 50u64)]);
        let found2 = s.ebp_recovery_scan(&mut ctx);
        assert_eq!(found2.len(), 1);
        assert_eq!(found2[0].page, page_a);
    }

    #[test]
    fn record_page_lsns_keeps_max() {
        let (_env, s) = server();
        let p = PageId::new(9, 9);
        s.record_page_lsns([(p, 10u64)]);
        s.record_page_lsns([(p, 5u64)]); // older: ignored
        s.record_page_lsns([(p, 30u64)]);
        assert_eq!(s.page_lsn_count(), 1);
        assert_eq!(*s.page_lsns.lock().get(&p).unwrap(), 30);
    }
}
