//! On-media record format for Extended-Buffer-Pool page images.
//!
//! The DBEngine writes evicted pages into EBP segments with one-sided RDMA,
//! so the AStore server never sees a structured "put" — but it must still be
//! able to *scan* its local PMem during EBP recovery (§V-E: "each AStore
//! server scans pages stored in local PMem, compares their LSNs with the one
//! in memory, discards those with older LSNs, then returns the valid page
//! IDs along with their position"). Every page image is therefore prefixed
//! with a self-validating header, and the writer chains a zeroed header
//! *after* each record as a terminator, so a scan walks records until the
//! first invalid header.

use crate::{Lsn, PageId};

/// Magic marking a valid EBP page record.
pub const EBP_MAGIC: u32 = 0xEB9A_6E01;

/// Size of the record header in bytes.
pub const RECORD_HDR_SIZE: usize = 32;

/// A decoded EBP record header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EbpRecordHeader {
    /// The cached page's identity.
    pub page: PageId,
    /// LSN the page image was current as of.
    pub lsn: Lsn,
    /// Payload (page image) length in bytes.
    pub len: u32,
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Encode a record header.
pub fn encode_header(h: &EbpRecordHeader) -> [u8; RECORD_HDR_SIZE] {
    let mut buf = [0u8; RECORD_HDR_SIZE];
    buf[0..4].copy_from_slice(&EBP_MAGIC.to_le_bytes());
    buf[4..8].copy_from_slice(&h.page.space_no.to_le_bytes());
    buf[8..12].copy_from_slice(&h.page.page_no.to_le_bytes());
    buf[12..16].copy_from_slice(&h.len.to_le_bytes());
    buf[16..24].copy_from_slice(&h.lsn.to_le_bytes());
    let ck = fnv1a(&buf[0..24]);
    buf[24..32].copy_from_slice(&ck.to_le_bytes());
    buf
}

/// Decode and validate a record header; `None` for anything that is not a
/// well-formed record (including the all-zero terminator).
pub fn decode_header(buf: &[u8]) -> Option<EbpRecordHeader> {
    if buf.len() < RECORD_HDR_SIZE {
        return None;
    }
    let magic = u32::from_le_bytes(buf[0..4].try_into().unwrap());
    if magic != EBP_MAGIC {
        return None;
    }
    let ck_stored = u64::from_le_bytes(buf[24..32].try_into().unwrap());
    if fnv1a(&buf[0..24]) != ck_stored {
        return None;
    }
    Some(EbpRecordHeader {
        page: PageId::new(
            u32::from_le_bytes(buf[4..8].try_into().unwrap()),
            u32::from_le_bytes(buf[8..12].try_into().unwrap()),
        ),
        len: u32::from_le_bytes(buf[12..16].try_into().unwrap()),
        lsn: u64::from_le_bytes(buf[16..24].try_into().unwrap()),
    })
}

/// Total on-media size of a record with `payload_len` bytes of page image.
pub fn record_size(payload_len: usize) -> usize {
    RECORD_HDR_SIZE + payload_len
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let h = EbpRecordHeader {
            page: PageId::new(3, 77),
            lsn: 123_456,
            len: 16 * 1024,
        };
        let enc = encode_header(&h);
        assert_eq!(decode_header(&enc), Some(h));
    }

    #[test]
    fn zero_terminator_is_invalid() {
        assert_eq!(decode_header(&[0u8; RECORD_HDR_SIZE]), None);
    }

    #[test]
    fn corrupted_header_rejected() {
        let h = EbpRecordHeader {
            page: PageId::new(1, 2),
            lsn: 9,
            len: 100,
        };
        let mut enc = encode_header(&h);
        enc[5] ^= 0xFF; // flip a bit in space_no
        assert_eq!(decode_header(&enc), None);
        let mut enc2 = encode_header(&h);
        enc2[25] ^= 0x01; // corrupt the checksum itself
        assert_eq!(decode_header(&enc2), None);
    }

    #[test]
    fn short_buffer_rejected() {
        let h = EbpRecordHeader {
            page: PageId::new(1, 2),
            lsn: 9,
            len: 100,
        };
        let enc = encode_header(&h);
        assert_eq!(decode_header(&enc[..31]), None);
    }

    #[test]
    fn record_size_adds_header() {
        assert_eq!(record_size(16 * 1024), 16 * 1024 + RECORD_HDR_SIZE);
    }
}
