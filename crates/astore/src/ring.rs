//! SegmentRing — the log space container that replaces BlobGroup (§V-A).
//!
//! A ring of pre-created append-only segments. Each segment's first 16
//! bytes are a header `{status, start_lsn}`; the REDO byte stream follows.
//! LSNs are byte offsets in the global REDO stream; within one segment the
//! stream is dense, and when a record does not fit the writer freezes the
//! segment (status = Full), advances to the next ring slot (which must be
//! Empty — recycled by [`SegmentRing::truncate`] once PageStore has applied
//! its records), and stamps the new header with the record's LSN.
//!
//! Crash recovery (§V-A): headers are read back and the newest segment is
//! identified by a **binary search** over the rotated, monotonically
//! increasing `start_lsn` sequence ([`newest_slot_binary_search`]); the
//! effective data length of that segment comes from the io-meta the client
//! chained into every append.
//!
//! Failure handling (§V-E): if an append fails because a replica died, the
//! ring freezes the slot's segment, creates a replacement segment, and
//! retries — transparently to the WAL writer above.

use std::sync::Arc;

use parking_lot::Mutex;
use vedb_sim::SimCtx;

use crate::client::{AStoreClient, SegmentHandle};
use crate::layout::SegmentClass;
use crate::retry::{AppendOpts, SegmentOpts};
use crate::{AStoreError, Lsn, Result, SegmentId};

/// Bytes reserved at the start of each segment for the ring header.
pub const RING_HDR_SIZE: u64 = 16;

/// Ring-slot status byte (§V-A: "empty, in-use, full, or in-error").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum SlotStatus {
    /// Never written or recycled.
    Empty = 0,
    /// Currently receiving appends.
    InUse = 1,
    /// Frozen: full or superseded.
    Full = 2,
    /// Frozen by a write failure.
    Error = 3,
}

impl SlotStatus {
    fn from_byte(b: u8) -> SlotStatus {
        match b {
            1 => SlotStatus::InUse,
            2 => SlotStatus::Full,
            3 => SlotStatus::Error,
            _ => SlotStatus::Empty,
        }
    }
}

fn encode_ring_header(status: SlotStatus, start_lsn: Lsn) -> [u8; RING_HDR_SIZE as usize] {
    let mut h = [0u8; RING_HDR_SIZE as usize];
    h[0] = status as u8;
    h[8..16].copy_from_slice(&start_lsn.to_le_bytes());
    h
}

fn decode_ring_header(buf: &[u8]) -> (SlotStatus, Lsn) {
    let status = SlotStatus::from_byte(buf[0]);
    let lsn = u64::from_le_bytes(buf[8..16].try_into().unwrap());
    (status, lsn)
}

/// Find the slot with the greatest `start_lsn` by binary search.
///
/// Invariant maintained by the ring: used slots (status ≠ Empty) occupy one
/// contiguous ring-range with strictly increasing `start_lsn` in ring
/// order. `keys[i]` is `Some(start_lsn)` for used slots. Returns `None` if
/// every slot is empty.
pub fn newest_slot_binary_search(keys: &[Option<Lsn>]) -> Option<usize> {
    let n = keys.len();
    if n == 0 {
        return None;
    }
    // Locate any used slot: used slots are contiguous mod n, so probing at
    // a logarithmic stride finds one in O(log n) probes unless fewer than
    // O(n / log n) slots are used — then the linear tail below still only
    // inspects indices we already have in memory.
    let pivot = keys.iter().position(Option::is_some)?;
    // The used range starts somewhere; we want its *end* (max LSN). Walk by
    // binary search over the rotated order starting at `pivot`: index i in
    // [0, n) maps to slot (pivot + i) % n; LSNs increase over the used
    // prefix of that rotation... unless the rotation cut the used range.
    // Handle the cut by choosing the true start: if the slot before pivot
    // (mod n) is used with a smaller LSN, the range started earlier — back
    // up to the smallest-LSN used slot reachable from pivot.
    let mut start = pivot;
    loop {
        let prev = (start + n - 1) % n;
        if prev == pivot {
            break; // fully-used ring
        }
        match (keys[prev], keys[start]) {
            (Some(p), Some(s)) if p < s => start = prev,
            _ => break,
        }
    }
    // Now slots start, start+1, ... (mod n) have increasing LSNs over the
    // used range. Binary search for the last used index in that rotation.
    let used_at = |i: usize| keys[(start + i) % n];
    let (mut lo, mut hi) = (0usize, n - 1);
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        // Used and part of the same increasing run as `start`?
        let in_run = match (used_at(mid), used_at(0)) {
            (Some(m), Some(s0)) => m >= s0,
            _ => false,
        };
        if in_run {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    Some((start + lo) % n)
}

struct RingSlot {
    handle: SegmentHandle,
    status: SlotStatus,
    start_lsn: Lsn,
}

struct RingState {
    slots: Vec<RingSlot>,
    active: usize,
    next_lsn: Lsn,
    /// Segments replaced after a write failure: still readable (their
    /// acked bytes are durable) until truncation deletes them.
    retired: Vec<(SegmentHandle, Lsn, Lsn)>,
}

/// The ring of pre-created log segments.
pub struct SegmentRing {
    client: Arc<AStoreClient>,
    state: Mutex<RingState>,
    seg_capacity: u64,
}

impl SegmentRing {
    /// Bootstrap a fresh ring: pre-create `n_segments` segments (§V-A:
    /// "all segments with an index starting from 0 within the ring are
    /// pre-created by the storage SDK") and open slot 0 at LSN
    /// `initial_lsn`.
    pub fn create(
        ctx: &mut SimCtx,
        client: Arc<AStoreClient>,
        n_segments: usize,
        initial_lsn: Lsn,
    ) -> Result<Self> {
        assert!(n_segments >= 2, "a ring needs at least two segments");
        let mut slots = Vec::with_capacity(n_segments);
        for _ in 0..n_segments {
            let handle = client.create_segment_with(ctx, SegmentOpts::new(SegmentClass::Log))?;
            slots.push(RingSlot {
                handle,
                status: SlotStatus::Empty,
                start_lsn: 0,
            });
        }
        let seg_capacity = client.segment_capacity(slots[0].handle);
        let ring = SegmentRing {
            client,
            state: Mutex::new(RingState {
                slots,
                active: 0,
                next_lsn: initial_lsn,
                retired: Vec::new(),
            }),
            seg_capacity,
        };
        ring.open_slot(ctx, 0, initial_lsn)?;
        Ok(ring)
    }

    /// Segment ids of the ring slots, in ring order. The engine persists
    /// these in its bootstrap catalog so a restarted instance can
    /// [`recover`](Self::recover) the ring.
    pub fn segment_ids(&self) -> Vec<SegmentId> {
        self.state
            .lock()
            .slots
            .iter()
            .map(|s| s.handle.id)
            .collect()
    }

    /// Bytes of log a single segment can hold.
    pub fn segment_data_capacity(&self) -> u64 {
        self.seg_capacity - RING_HDR_SIZE
    }

    /// The next LSN that will be assigned.
    pub fn next_lsn(&self) -> Lsn {
        self.state.lock().next_lsn
    }

    fn open_slot(&self, ctx: &mut SimCtx, idx: usize, start_lsn: Lsn) -> Result<()> {
        let handle = {
            let st = self.state.lock();
            st.slots[idx].handle
        };
        self.client.reset_len(ctx, handle)?;
        let hdr = encode_ring_header(SlotStatus::InUse, start_lsn);
        self.client
            .append_with(ctx, handle, &hdr, AppendOpts::new())?;
        let mut st = self.state.lock();
        st.slots[idx].status = SlotStatus::InUse;
        st.slots[idx].start_lsn = start_lsn;
        Ok(())
    }

    fn freeze_slot(&self, ctx: &mut SimCtx, idx: usize, status: SlotStatus) -> Result<()> {
        let (handle, start_lsn) = {
            let st = self.state.lock();
            (st.slots[idx].handle, st.slots[idx].start_lsn)
        };
        let hdr = encode_ring_header(status, start_lsn);
        // Best effort: a frozen-by-error segment may not accept the header
        // update (that is fine — recovery treats InUse and Full alike).
        let _ = self.client.write_at(ctx, handle, 0, &hdr);
        self.state.lock().slots[idx].status = status;
        Ok(())
    }

    /// Create a replacement segment for a slot whose segment failed, open
    /// it at `start_lsn`, and return its handle.
    fn replace_slot(&self, ctx: &mut SimCtx, idx: usize, start_lsn: Lsn) -> Result<SegmentHandle> {
        let new_handle = self
            .client
            .create_segment_with(ctx, SegmentOpts::new(SegmentClass::Log))?;
        self.client.recovery_counters().note_segment_replaced();
        {
            let mut st = self.state.lock();
            let old = st.slots[idx].handle;
            let old_start = st.slots[idx].start_lsn;
            let old_end = st.next_lsn;
            if old_end > old_start {
                st.retired.push((old, old_start, old_end));
            }
            st.slots[idx].handle = new_handle;
            st.slots[idx].status = SlotStatus::Empty;
        }
        self.open_slot(ctx, idx, start_lsn)?;
        Ok(new_handle)
    }

    /// Append one REDO record; returns its assigned LSN (persistence
    /// order, §III) — single-record wrapper over
    /// [`append_batch`](Self::append_batch).
    pub fn append(&self, ctx: &mut SimCtx, record: &[u8]) -> Result<Lsn> {
        Ok(self.append_batch(ctx, &[record])?[0])
    }

    /// Append a batch of REDO records in ring order with **one
    /// reservation** — the primitive append. All records that fit the
    /// active segment go down as a single [`AStoreClient::append_batch`]
    /// (one chained work request per replica); the batch only splits at a
    /// segment boundary. Returns each record's assigned LSN, dense and in
    /// argument order. Handles segment-full advancement and
    /// replica-failure replacement transparently, exactly like the
    /// single-record path always did.
    pub fn append_batch(&self, ctx: &mut SimCtx, records: &[&[u8]]) -> Result<Vec<Lsn>> {
        assert!(!records.is_empty());
        for record in records {
            assert!(!record.is_empty());
            assert!(
                (record.len() as u64) <= self.seg_capacity - RING_HDR_SIZE,
                "record larger than a segment"
            );
        }
        let mut lsns = Vec::with_capacity(records.len());
        let mut rest = records;
        while !rest.is_empty() {
            let (active, lsn) = {
                let st = self.state.lock();
                (st.active, st.next_lsn)
            };
            // A previous failed write may have left the active slot in
            // Error with no replacement (e.g. the cluster was too degraded
            // to create one). Replace it now that we write again.
            if self.state.lock().slots[active].status == SlotStatus::Error {
                self.replace_slot(ctx, active, lsn)?;
            }
            // Take the longest record prefix that fits the active segment.
            let used = self
                .client
                .segment_len(self.state.lock().slots[active].handle);
            let room = self.seg_capacity.saturating_sub(used);
            let mut take = 0usize;
            let mut bytes = 0u64;
            while take < rest.len() && bytes + rest[take].len() as u64 <= room {
                bytes += rest[take].len() as u64;
                take += 1;
            }
            if take == 0 {
                // Not even one record fits: advance to the next slot.
                self.freeze_slot(ctx, active, SlotStatus::Full)?;
                let next = (active + 1) % self.state.lock().slots.len();
                if self.state.lock().slots[next].status != SlotStatus::Empty {
                    return Err(AStoreError::LogFull);
                }
                self.open_slot(ctx, next, lsn)?;
                self.state.lock().active = next;
                continue;
            }
            let sub = &rest[..take];
            let handle = self.state.lock().slots[active].handle;
            match self.client.append_batch(ctx, handle, sub) {
                Ok(_) => {}
                Err(e) if e.is_segment_unwritable() || e.is_retryable() => {
                    // §V-E, after the client's own retry budget is spent:
                    // close the failed segment, create a new one, retry the
                    // same sub-batch once there.
                    self.freeze_slot(ctx, active, SlotStatus::Error)?;
                    let new_handle = self.replace_slot(ctx, active, lsn)?;
                    self.client.append_batch(ctx, new_handle, sub)?;
                }
                Err(e) => return Err(e),
            }
            let mut cur = lsn;
            for record in sub {
                lsns.push(cur);
                cur += record.len() as u64;
            }
            self.state.lock().next_lsn = cur;
            rest = &rest[take..];
        }
        Ok(lsns)
    }

    /// Recycle every frozen segment whose entire LSN range is below
    /// `upto_lsn` (PageStore has applied those records). Returns how many
    /// slots were recycled.
    pub fn truncate(&self, ctx: &mut SimCtx, upto_lsn: Lsn) -> Result<usize> {
        let candidates: Vec<(usize, SegmentHandle)> = {
            let st = self.state.lock();
            let n = st.slots.len();
            let mut v = Vec::new();
            for i in 0..n {
                let s = &st.slots[i];
                if i == st.active || s.status == SlotStatus::Empty {
                    continue;
                }
                // End LSN of slot i = start LSN of the *next* used slot in
                // ring order, or next_lsn if it is the most recent frozen
                // one. Conservative: use the next slot's start when known.
                let next = &st.slots[(i + 1) % n];
                let end = if next.status != SlotStatus::Empty && next.start_lsn > s.start_lsn {
                    next.start_lsn
                } else {
                    st.next_lsn
                };
                if end <= upto_lsn {
                    v.push((i, s.handle));
                }
            }
            v
        };
        // Retired segments fully below the truncation point are deleted.
        let drop_retired: Vec<SegmentHandle> = {
            let mut st = self.state.lock();
            let (dead, keep): (Vec<_>, Vec<_>) = st
                .retired
                .drain(..)
                .partition(|(_, _, end)| *end <= upto_lsn);
            st.retired = keep;
            dead.into_iter().map(|(h, _, _)| h).collect()
        };
        for h in drop_retired {
            let _ = self.client.delete_segment(ctx, h);
        }
        let mut recycled = 0;
        for (idx, handle) in candidates {
            let hdr = encode_ring_header(SlotStatus::Empty, 0);
            self.client.write_at(ctx, handle, 0, &hdr)?;
            self.client.reset_len(ctx, handle)?;
            let mut st = self.state.lock();
            st.slots[idx].status = SlotStatus::Empty;
            st.slots[idx].start_lsn = 0;
            recycled += 1;
        }
        Ok(recycled)
    }

    /// Read the raw REDO byte stream from `from_lsn` (inclusive) to the
    /// current end of log. Returns `(start_lsn_of_returned_bytes, bytes)` —
    /// the start equals `from_lsn` when it falls inside the retained log,
    /// or the oldest retained LSN otherwise.
    pub fn read_from(&self, ctx: &mut SimCtx, from_lsn: Lsn) -> Result<(Lsn, Vec<u8>)> {
        type Snapshot = (
            Vec<(SegmentHandle, SlotStatus, Lsn)>,
            Vec<(SegmentHandle, Lsn, Lsn)>,
            Lsn,
        );
        let (slots_info, retired, next_lsn): Snapshot = {
            let st = self.state.lock();
            (
                st.slots
                    .iter()
                    .map(|s| (s.handle, s.status, s.start_lsn))
                    .collect(),
                st.retired.clone(),
                st.next_lsn,
            )
        };
        // Collect used slots (including retired ones) in LSN order.
        let mut used: Vec<(SegmentHandle, Lsn)> = slots_info
            .iter()
            .filter(|(_, status, _)| *status != SlotStatus::Empty)
            .map(|(h, _, lsn)| (*h, *lsn))
            .chain(retired.iter().map(|(h, start, _)| (*h, *start)))
            .collect();
        used.sort_by_key(|(_, lsn)| *lsn);
        let mut out = Vec::new();
        let mut out_start = None;
        for (i, (handle, start_lsn)) in used.iter().enumerate() {
            let end_lsn = if i + 1 < used.len() {
                used[i + 1].1
            } else {
                next_lsn
            };
            if end_lsn <= from_lsn {
                continue;
            }
            let seg_used = self.client.segment_len(*handle);
            let data_len = seg_used.saturating_sub(RING_HDR_SIZE);
            let skip = from_lsn.saturating_sub(*start_lsn).min(data_len);
            let want = (end_lsn - start_lsn - skip).min(data_len - skip) as usize;
            if want == 0 {
                continue;
            }
            let bytes = self.client.read(ctx, *handle, RING_HDR_SIZE + skip, want)?;
            if out_start.is_none() {
                out_start = Some(start_lsn + skip);
            }
            out.extend_from_slice(&bytes);
        }
        Ok((out_start.unwrap_or(next_lsn), out))
    }

    /// Recover a ring after a DBEngine crash: adopt the segments, read all
    /// headers, binary-search for the newest slot, and recover the end of
    /// log from the newest segment's io-meta (§V-A, §V-E).
    pub fn recover(
        ctx: &mut SimCtx,
        client: Arc<AStoreClient>,
        segment_ids: &[SegmentId],
    ) -> Result<Self> {
        let mut slots = Vec::with_capacity(segment_ids.len());
        for &id in segment_ids {
            let handle = client.adopt_segment(ctx, id, SegmentClass::Log)?;
            let used = client.segment_len(handle);
            let (status, start_lsn) = if used >= RING_HDR_SIZE {
                let hdr = client.read(ctx, handle, 0, RING_HDR_SIZE as usize)?;
                decode_ring_header(&hdr)
            } else {
                (SlotStatus::Empty, 0)
            };
            slots.push(RingSlot {
                handle,
                status,
                start_lsn,
            });
        }
        let keys: Vec<Option<Lsn>> = slots
            .iter()
            .map(|s| (s.status != SlotStatus::Empty).then_some(s.start_lsn))
            .collect();
        let seg_capacity = client.segment_capacity(slots[0].handle);
        let (active, next_lsn) = match newest_slot_binary_search(&keys) {
            Some(newest) => {
                let used = client.segment_len(slots[newest].handle);
                let next = slots[newest].start_lsn + used.saturating_sub(RING_HDR_SIZE);
                slots[newest].status = SlotStatus::InUse;
                (newest, next)
            }
            None => (0, 0),
        };
        Ok(SegmentRing {
            client,
            state: Mutex::new(RingState {
                slots,
                active,
                next_lsn,
                retired: Vec::new(),
            }),
            seg_capacity,
        })
    }

    /// The live log window `(oldest_retained_lsn, next_lsn)`: bytes at or
    /// beyond the first bound are still readable from the ring; everything
    /// below was recycled by [`truncate`](Self::truncate). The window's
    /// width is the redo a PageStore replica can be asked to re-ship — and
    /// what a restarted replica must replay when its checkpoints lag.
    pub fn log_window(&self) -> (Lsn, Lsn) {
        let st = self.state.lock();
        let mut oldest = st.next_lsn;
        for s in &st.slots {
            if s.status != SlotStatus::Empty {
                oldest = oldest.min(s.start_lsn);
            }
        }
        for (_, start, _) in &st.retired {
            oldest = oldest.min(*start);
        }
        (oldest, st.next_lsn)
    }

    /// Number of slots currently Empty (tests / capacity monitoring).
    pub fn empty_slots(&self) -> usize {
        self.state
            .lock()
            .slots
            .iter()
            .filter(|s| s.status == SlotStatus::Empty)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::tests::{test_cluster, test_cluster_with_policy};
    use crate::retry::RetryPolicy;
    use vedb_sim::VTime;

    #[test]
    fn header_roundtrip() {
        let h = encode_ring_header(SlotStatus::Full, 987654);
        assert_eq!(decode_ring_header(&h), (SlotStatus::Full, 987654));
        assert_eq!(decode_ring_header(&[0u8; 16]), (SlotStatus::Empty, 0));
    }

    #[test]
    fn binary_search_simple_prefix() {
        // Bootstrap shape: slots 0..k used, rest empty.
        let keys = vec![Some(0), Some(100), Some(200), None, None];
        assert_eq!(newest_slot_binary_search(&keys), Some(2));
    }

    #[test]
    fn binary_search_wrapped() {
        // Ring wrapped: newest is before the oldest in index order.
        let keys = vec![Some(500), Some(600), Some(100), Some(200), Some(300)];
        assert_eq!(newest_slot_binary_search(&keys), Some(1));
    }

    #[test]
    fn binary_search_with_truncated_prefix() {
        // Slots 0-1 recycled by truncation; used range is 2..=4.
        let keys = vec![None, None, Some(100), Some(200), Some(300)];
        assert_eq!(newest_slot_binary_search(&keys), Some(4));
        // Used range wraps: 3, 4, 0.
        let keys2 = vec![Some(300), None, None, Some(100), Some(200)];
        assert_eq!(newest_slot_binary_search(&keys2), Some(0));
    }

    #[test]
    fn binary_search_all_empty_or_single() {
        assert_eq!(newest_slot_binary_search(&[None, None, None]), None);
        assert_eq!(newest_slot_binary_search(&[None, Some(5), None]), Some(1));
        assert_eq!(newest_slot_binary_search(&[]), None);
    }

    #[test]
    fn append_assigns_dense_lsns() {
        let mut ctx = SimCtx::new(1, 7);
        let tc = test_cluster(&mut ctx);
        let ring = SegmentRing::create(&mut ctx, Arc::clone(&tc.client), 4, 0).unwrap();
        let a = ring.append(&mut ctx, b"0123456789").unwrap();
        let b = ring.append(&mut ctx, b"abcde").unwrap();
        assert_eq!(a, 0);
        assert_eq!(b, 10);
        assert_eq!(ring.next_lsn(), 15);
        let (start, bytes) = ring.read_from(&mut ctx, 0).unwrap();
        assert_eq!(start, 0);
        assert_eq!(&bytes, b"0123456789abcde");
        let (start, bytes) = ring.read_from(&mut ctx, 10).unwrap();
        assert_eq!(start, 10);
        assert_eq!(&bytes, b"abcde");
    }

    #[test]
    fn ring_advances_and_wraps_with_truncation() {
        let mut ctx = SimCtx::new(1, 7);
        let tc = test_cluster(&mut ctx);
        let ring = SegmentRing::create(&mut ctx, Arc::clone(&tc.client), 3, 0).unwrap();
        let cap = ring.segment_data_capacity() as usize;
        let rec = vec![0xAAu8; cap / 2 - 8]; // two records fill a segment

        // Fill slots 0 and 1.
        for _ in 0..4 {
            ring.append(&mut ctx, &rec).unwrap();
        }
        // Slot 2 is open; 0 and 1 are full. One more pair needs slot 0 back.
        ring.append(&mut ctx, &rec).unwrap();
        ring.append(&mut ctx, &rec).unwrap();
        let err = ring.append(&mut ctx, &rec);
        assert!(
            matches!(err, Err(AStoreError::LogFull)),
            "untruncated ring must report LogFull"
        );

        // PageStore applied everything: recycle and continue.
        let recycled = ring.truncate(&mut ctx, ring.next_lsn()).unwrap();
        assert!(recycled >= 1, "expected recycling, got {recycled}");
        ring.append(&mut ctx, &rec).unwrap();
    }

    #[test]
    fn log_window_tracks_truncation() {
        let mut ctx = SimCtx::new(1, 7);
        let tc = test_cluster(&mut ctx);
        let ring = SegmentRing::create(&mut ctx, Arc::clone(&tc.client), 3, 0).unwrap();
        assert_eq!(ring.log_window(), (0, 0));
        let cap = ring.segment_data_capacity() as usize;
        let rec = vec![0xBBu8; cap / 2 - 8];
        for _ in 0..4 {
            ring.append(&mut ctx, &rec).unwrap();
        }
        let (oldest, next) = ring.log_window();
        assert_eq!(oldest, 0, "nothing truncated yet");
        assert_eq!(next, ring.next_lsn());
        // Recycle the first full segment; the window's floor advances to
        // the start of the oldest surviving slot.
        let first_seg_end = 2 * rec.len() as u64;
        let recycled = ring.truncate(&mut ctx, first_seg_end).unwrap();
        assert_eq!(recycled, 1);
        let (oldest, next) = ring.log_window();
        assert_eq!(oldest, first_seg_end);
        assert_eq!(next, ring.next_lsn());
        assert!(oldest <= next);
    }

    #[test]
    fn recovery_finds_end_of_log() {
        let mut ctx = SimCtx::new(1, 7);
        let tc = test_cluster(&mut ctx);
        let ring = SegmentRing::create(&mut ctx, Arc::clone(&tc.client), 4, 0).unwrap();
        for i in 0..20u8 {
            ring.append(&mut ctx, &[i; 100]).unwrap();
        }
        let end = ring.next_lsn();
        let ids = ring.segment_ids();
        drop(ring); // DBEngine crash: all DRAM state gone

        // New incarnation (new lease), same AStore.
        let ep = vedb_rdma::RdmaEndpoint::new(
            tc.env.model.clone(),
            Arc::clone(&tc.env.faults),
            Arc::clone(&tc.env.engine_nic),
        );
        let client2 = AStoreClient::connect(
            &mut ctx,
            Arc::clone(&tc.cm),
            ep,
            Arc::clone(&tc.env.engine_cpu),
            tc.env.model.clone(),
            1,
            VTime::from_millis(50),
        );
        let recovered = SegmentRing::recover(&mut ctx, client2, &ids).unwrap();
        assert_eq!(recovered.next_lsn(), end, "recovered end-of-log must match");
        let (start, bytes) = recovered.read_from(&mut ctx, 0).unwrap();
        assert_eq!(start, 0);
        assert_eq!(bytes.len() as u64, end);
        assert_eq!(&bytes[0..100], &[0u8; 100]);
        assert_eq!(&bytes[1900..2000], &[19u8; 100]);
        // And the recovered ring accepts new appends at the right LSN.
        let lsn = recovered.append(&mut ctx, b"post-recovery").unwrap();
        assert_eq!(lsn, end);
    }

    #[test]
    fn replica_failure_replaces_segment_when_retries_disabled() {
        // With the client's retry layer off, the ring's own §V-E policy is
        // the only recovery: freeze the slot, create a replacement, retry.
        let mut ctx = SimCtx::new(1, 7);
        let tc = test_cluster_with_policy(&mut ctx, RetryPolicy::disabled());
        let ring = SegmentRing::create(&mut ctx, Arc::clone(&tc.client), 3, 0).unwrap();
        ring.append(&mut ctx, b"before-failure").unwrap();

        let active_seg = ring.segment_ids()[0];
        let route = tc.client.cached_route(active_seg).unwrap();
        tc.env.faults.crash(route.replicas[0].node);
        // With only 2 of 3 nodes alive, creating the replacement segment
        // fails; the error is surfaced.
        assert!(ring.append(&mut ctx, b"during-failure").is_err());
        tc.env.faults.restore(route.replicas[0].node);

        // Retry now succeeds via the replacement path (slot was frozen).
        let lsn = ring.append(&mut ctx, b"after-restore").unwrap();
        assert_eq!(lsn, 14, "LSN continuity across segment replacement");
        assert!(tc.client.recovery_counters().segments_replaced() >= 1);
        let (_, bytes) = ring.read_from(&mut ctx, 14).unwrap();
        assert_eq!(&bytes, b"after-restore");
    }

    #[test]
    fn replica_crash_is_absorbed_below_the_ring() {
        // With the default retry policy the client reports the dead node,
        // the CM shrinks the route, and the append completes — the ring
        // never sees an error and keeps the same segment.
        let mut ctx = SimCtx::new(1, 7);
        let tc = test_cluster(&mut ctx);
        let ring = SegmentRing::create(&mut ctx, Arc::clone(&tc.client), 3, 0).unwrap();
        ring.append(&mut ctx, b"before-failure").unwrap();

        let ids_before = ring.segment_ids();
        let route = tc.client.cached_route(ids_before[0]).unwrap();
        tc.env.faults.crash(route.replicas[0].node);

        let lsn = ring.append(&mut ctx, b"during-failure").unwrap();
        assert_eq!(lsn, 14, "append must succeed despite the crashed replica");
        assert_eq!(ring.segment_ids(), ids_before, "no slot replacement needed");
        assert_eq!(tc.client.recovery_counters().segments_replaced(), 0);
        assert!(tc.client.recovery_counters().retries() >= 1);
        let (_, bytes) = ring.read_from(&mut ctx, 0).unwrap();
        assert_eq!(&bytes, b"before-failureduring-failure");
    }
}
