//! Fault-recovery policy types: capped exponential backoff over virtual
//! time, and the option structs of the consolidated client surface.
//!
//! The paper's §IV-C consistency machinery (epoch-fenced leases, route
//! refresh, delayed cleanup) and its failure-detection/repair design only
//! pay off if the client *recovers* from faults instead of surfacing them.
//! [`RetryPolicy`] is that contract: every one-sided read/write and CM RPC
//! issued by `AStoreClient` is wrapped in a bounded retry loop that sleeps
//! in **virtual time** (`SimCtx::advance`), renews leases, re-resolves
//! routes, and fails over across replicas. The policy caps both the number
//! of attempts and the per-attempt backoff so a partitioned cluster
//! degrades into a bounded error, never an unbounded stall.

use vedb_sim::time::VTime;

use crate::layout::SegmentClass;

/// Capped exponential backoff policy over simulated virtual time.
///
/// Attempt `k` (0-based retry index) sleeps `base * 2^k`, capped at `cap`.
/// `max_retries` bounds the retries *after* the initial attempt, so an
/// operation issues at most `max_retries + 1` attempts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the initial attempt (0 = fail fast).
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub base_backoff: VTime,
    /// Upper bound on a single backoff sleep.
    pub max_backoff: VTime,
}

impl Default for RetryPolicy {
    /// Paper-scale defaults: 6 retries, 100 µs base, 10 ms cap — a worst
    /// case of ~20 ms of backoff per operation, far below the CM lease TTL.
    fn default() -> Self {
        RetryPolicy {
            max_retries: 6,
            base_backoff: VTime::from_micros(100),
            max_backoff: VTime::from_millis(10),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (surface the first error).
    pub fn disabled() -> Self {
        RetryPolicy {
            max_retries: 0,
            base_backoff: VTime::ZERO,
            max_backoff: VTime::ZERO,
        }
    }

    /// Builder-style override of the retry count.
    pub fn with_max_retries(mut self, n: u32) -> Self {
        self.max_retries = n;
        self
    }

    /// Builder-style override of the base backoff.
    pub fn with_base_backoff(mut self, t: VTime) -> Self {
        self.base_backoff = t;
        self
    }

    /// Builder-style override of the backoff cap.
    pub fn with_max_backoff(mut self, t: VTime) -> Self {
        self.max_backoff = t;
        self
    }

    /// Backoff to sleep before retry number `retry` (0-based), i.e.
    /// `base * 2^retry` capped at `max_backoff`.
    pub fn backoff(&self, retry: u32) -> VTime {
        let base = self.base_backoff.as_nanos();
        if base == 0 {
            return VTime::ZERO;
        }
        let scaled = base.saturating_mul(1u64 << retry.min(32));
        VTime::from_nanos(scaled.min(self.max_backoff.as_nanos().max(base)))
    }

    /// May retry number `retry` (0-based) still be attempted?
    pub fn allows(&self, retry: u32) -> bool {
        retry < self.max_retries
    }
}

/// Options for [`crate::AStoreClient::append_with`] — the consolidated
/// append entry point (replaces the `append` / `append_with_tail` pair).
#[derive(Debug, Clone, Copy, Default)]
pub struct AppendOpts<'a> {
    /// Extra bytes written *past* the appended record without advancing the
    /// segment's used length — §V-A's speculative tail-header write used by
    /// the SegmentRing to stamp the next slot's header in the same chained
    /// WRITE. `None` for a plain append.
    pub tail: Option<&'a [u8]>,
}

impl<'a> AppendOpts<'a> {
    /// Plain append, no speculative tail.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attach a speculative tail write.
    pub fn with_tail(mut self, tail: &'a [u8]) -> Self {
        self.tail = Some(tail);
        self
    }
}

/// Options for [`crate::AStoreClient::create_segment_with`] — the
/// consolidated creation entry point (replaces `create_segment` /
/// `create_segment_with_replication`).
#[derive(Debug, Clone, Copy)]
pub struct SegmentOpts {
    /// Replication class of the segment (drives the default factor).
    pub class: SegmentClass,
    /// Explicit replication factor; `None` uses the class default
    /// (§IV-A: Log = 3, EBP = 1).
    pub replication: Option<usize>,
}

impl SegmentOpts {
    /// Options for a segment of `class` with the class-default replication.
    pub fn new(class: SegmentClass) -> Self {
        SegmentOpts {
            class,
            replication: None,
        }
    }

    /// Override the replication factor.
    pub fn with_replication(mut self, replication: usize) -> Self {
        self.replication = Some(replication);
        self
    }

    /// The effective replication factor.
    pub fn effective_replication(&self) -> usize {
        self.replication
            .unwrap_or_else(|| self.class.default_replication())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_and_caps() {
        let p = RetryPolicy {
            max_retries: 10,
            base_backoff: VTime::from_micros(100),
            max_backoff: VTime::from_millis(1),
        };
        assert_eq!(p.backoff(0), VTime::from_micros(100));
        assert_eq!(p.backoff(1), VTime::from_micros(200));
        assert_eq!(p.backoff(2), VTime::from_micros(400));
        assert_eq!(p.backoff(3), VTime::from_micros(800));
        assert_eq!(p.backoff(4), VTime::from_millis(1)); // capped
        assert_eq!(p.backoff(30), VTime::from_millis(1));
    }

    #[test]
    fn disabled_never_allows() {
        let p = RetryPolicy::disabled();
        assert!(!p.allows(0));
        assert_eq!(p.backoff(0), VTime::ZERO);
    }

    #[test]
    fn default_total_backoff_is_bounded() {
        let p = RetryPolicy::default();
        let total: u64 = (0..p.max_retries).map(|k| p.backoff(k).as_nanos()).sum();
        // Must stay well under the CM heartbeat/lease scale (seconds).
        assert!(
            total < VTime::from_millis(100).as_nanos(),
            "total backoff {total}ns"
        );
    }

    #[test]
    fn segment_opts_effective_replication() {
        assert_eq!(
            SegmentOpts::new(SegmentClass::Log).effective_replication(),
            3
        );
        assert_eq!(
            SegmentOpts::new(SegmentClass::Ebp).effective_replication(),
            1
        );
        assert_eq!(
            SegmentOpts::new(SegmentClass::Log)
                .with_replication(2)
                .effective_replication(),
            2
        );
    }
}
