//! Property test: the device's crash semantics match a reference model.
//!
//! The model keeps two byte arrays — `live` and `durable` — and applies the
//! same op sequence: `Write` updates `live` and remembers the range as
//! pending, `Flush` copies pending ranges into `durable` (DDIO off), `Crash`
//! resets `live` to `durable`. After any sequence, the device's visible and
//! would-survive contents must equal the model's.

use std::sync::Arc;

use proptest::prelude::*;
use vedb_pmem::PmemDevice;
use vedb_sim::{LatencyModel, Resource, VTime};

const CAP: usize = 4096;

#[derive(Debug, Clone)]
enum Op {
    Write { offset: u64, data: Vec<u8> },
    Flush,
    Crash,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u64..(CAP as u64 - 64), proptest::collection::vec(any::<u8>(), 1..64))
            .prop_map(|(offset, data)| Op::Write { offset, data }),
        2 => Just(Op::Flush),
        1 => Just(Op::Crash),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn device_matches_model(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let dev = PmemDevice::new(
            "prop",
            CAP,
            false,
            Arc::new(Resource::new("pmem", 4)),
            LatencyModel::paper_default(),
        );
        let mut live = vec![0u8; CAP];
        let mut durable = vec![0u8; CAP];
        let mut pending: Vec<(u64, Vec<u8>)> = Vec::new();

        for op in &ops {
            match op {
                Op::Write { offset, data } => {
                    dev.write(VTime::ZERO, *offset, data).unwrap();
                    live[*offset as usize..*offset as usize + data.len()]
                        .copy_from_slice(data);
                    pending.push((*offset, data.clone()));
                }
                Op::Flush => {
                    dev.flush(VTime::ZERO);
                    for (off, data) in pending.drain(..) {
                        durable[off as usize..off as usize + data.len()]
                            .copy_from_slice(&data);
                    }
                }
                Op::Crash => {
                    dev.crash();
                    pending.clear();
                    live = durable.clone();
                }
            }
            prop_assert_eq!(dev.peek(0, CAP).unwrap(), live.clone());
        }

        // A final crash must land exactly on the model's durable state.
        dev.crash();
        prop_assert_eq!(dev.peek(0, CAP).unwrap(), durable);
    }
}
