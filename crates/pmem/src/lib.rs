//! # vedb-pmem — a simulated Optane-style persistent-memory device
//!
//! The paper's AStore servers expose raw PMem over one-sided RDMA. The
//! crash-consistency subtlety (§IV-B) is that an RDMA WRITE that has been
//! acknowledged by the NIC is **not yet persistent**: with Intel DDIO
//! enabled the payload may sit in the CPU's L3 cache, and even with DDIO
//! disabled it may sit in PCIe/iMC buffers outside the ADR (Asynchronous
//! DRAM Refresh) persistence domain. AStore therefore disables DDIO and
//! issues a trailing one-sided RDMA READ, which forces the preceding writes
//! through to the memory controller — inside the ADR domain — before the
//! write is acknowledged to the client.
//!
//! [`PmemDevice`] models exactly that state machine with three "places"
//! bytes can live:
//!
//! 1. **in-flight** — written but not yet flushed (always lost on crash),
//! 2. **cache** — flushed while DDIO is *enabled* (still lost on crash:
//!    this is the bug the paper engineered around),
//! 3. **media** — flushed while DDIO is *disabled* (ADR-protected; survives
//!    crash).
//!
//! Reads always observe the newest data regardless of placement (cache
//! coherence). [`PmemDevice::crash`] reverts the device to its durable
//! contents, which is what lets the higher layers (AStore recovery, EBP
//! rebuild, SegmentRing recovery) be tested against *real* crash semantics.
//!
//! Timing: every access charges service time from the shared
//! [`LatencyModel`] on the device's [`Resource`] (a small number of lanes —
//! Optane's limited internal parallelism), so concurrency collapse emerges
//! under load.

use std::sync::Arc;

use parking_lot::RwLock;
use vedb_sim::{Counter, Gauge, LatencyModel, MetricsRegistry, Resource, VTime};

/// Errors returned by the device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PmemError {
    /// Access beyond the device capacity.
    OutOfBounds {
        /// Requested offset.
        offset: u64,
        /// Requested length.
        len: usize,
        /// Device capacity in bytes.
        capacity: usize,
    },
}

impl std::fmt::Display for PmemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PmemError::OutOfBounds {
                offset,
                len,
                capacity,
            } => write!(
                f,
                "pmem access out of bounds: offset={offset} len={len} capacity={capacity}"
            ),
        }
    }
}

impl std::error::Error for PmemError {}

/// Result alias for device operations.
pub type Result<T> = std::result::Result<T, PmemError>;

/// Where a flushed-but-not-crashed byte range currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    /// Written, not yet flushed (PCIe/NIC buffers).
    InFlight,
    /// Flushed with DDIO enabled — sits in L3, volatile.
    Cache,
}

#[derive(Debug, Clone)]
struct PendingRange {
    offset: u64,
    data: Vec<u8>,
    stage: Stage,
}

struct Inner {
    /// Live view: what any read observes.
    live: Vec<u8>,
    /// Durable view: what survives a crash (the ADR persistence domain).
    durable: Vec<u8>,
    /// Ranges present in `live` but not yet in `durable`.
    pending: Vec<PendingRange>,
}

/// Cached handles into the deployment's [`MetricsRegistry`] (component
/// `"pmem"`). Several devices in one deployment share the same handles, so
/// the registry reports subsystem totals.
struct PmemStats {
    writes: Arc<Counter>,
    reads: Arc<Counter>,
    bytes_written: Arc<Counter>,
    bytes_read: Arc<Counter>,
    flushes: Arc<Counter>,
    bytes_persisted: Arc<Counter>,
    crashes: Arc<Counter>,
    bytes_lost_on_crash: Arc<Counter>,
    unpersisted_bytes: Arc<Gauge>,
}

impl PmemStats {
    fn register(reg: &MetricsRegistry) -> Self {
        PmemStats {
            writes: reg.counter("pmem", "writes"),
            reads: reg.counter("pmem", "reads"),
            bytes_written: reg.counter("pmem", "bytes_written"),
            bytes_read: reg.counter("pmem", "bytes_read"),
            flushes: reg.counter("pmem", "flushes"),
            bytes_persisted: reg.counter("pmem", "bytes_persisted"),
            crashes: reg.counter("pmem", "crashes"),
            bytes_lost_on_crash: reg.counter("pmem", "bytes_lost_on_crash"),
            unpersisted_bytes: reg.gauge("pmem", "unpersisted_bytes"),
        }
    }
}

/// A simulated PMem DIMM attached to one AStore server.
pub struct PmemDevice {
    name: String,
    capacity: usize,
    ddio_enabled: bool,
    inner: RwLock<Inner>,
    resource: Arc<Resource>,
    model: LatencyModel,
    stats: PmemStats,
}

impl PmemDevice {
    /// Create a device of `capacity` bytes, zero-filled, using the given
    /// contention resource (typically `NodeRes::pmem`) and calibration.
    ///
    /// `ddio_enabled = false` reproduces the paper's deployment; `true`
    /// exists to demonstrate (and test) the data-loss mode the paper avoids.
    ///
    /// Metrics go to a detached registry; production assembly uses
    /// [`with_metrics`](Self::with_metrics) so device counters land in the
    /// deployment report.
    pub fn new(
        name: impl Into<String>,
        capacity: usize,
        ddio_enabled: bool,
        resource: Arc<Resource>,
        model: LatencyModel,
    ) -> Self {
        Self::with_metrics(
            name,
            capacity,
            ddio_enabled,
            resource,
            model,
            &MetricsRegistry::detached(),
        )
    }

    /// Like [`new`](Self::new), but publishing device counters (`pmem.writes`,
    /// `pmem.flushes`, `pmem.bytes_persisted`, the `pmem.unpersisted_bytes`
    /// gauge, …) into `registry`.
    pub fn with_metrics(
        name: impl Into<String>,
        capacity: usize,
        ddio_enabled: bool,
        resource: Arc<Resource>,
        model: LatencyModel,
        registry: &MetricsRegistry,
    ) -> Self {
        PmemDevice {
            name: name.into(),
            capacity,
            ddio_enabled,
            inner: RwLock::new(Inner {
                live: vec![0; capacity],
                durable: vec![0; capacity],
                pending: Vec::new(),
            }),
            resource,
            model,
            stats: PmemStats::register(registry),
        }
    }

    /// Device name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether DDIO is enabled (see crate docs).
    pub fn ddio_enabled(&self) -> bool {
        self.ddio_enabled
    }

    /// The device's contention resource (exposed so the RDMA layer can
    /// co-charge NIC and media time).
    pub fn resource(&self) -> &Arc<Resource> {
        &self.resource
    }

    fn check(&self, offset: u64, len: usize) -> Result<()> {
        let end = offset as usize + len;
        if end > self.capacity {
            return Err(PmemError::OutOfBounds {
                offset,
                len,
                capacity: self.capacity,
            });
        }
        Ok(())
    }

    /// Write `data` at `offset`. The bytes become *visible* immediately but
    /// *durable* only after [`flush`](Self::flush) (and only if DDIO is
    /// disabled). Returns the virtual completion time (media service charged
    /// on the device resource).
    pub fn write(&self, now: VTime, offset: u64, data: &[u8]) -> Result<VTime> {
        self.check(offset, data.len())?;
        let done = self
            .resource
            .acquire(now, self.model.pmem_write_svc(data.len()));
        let mut inner = self.inner.write();
        inner.live[offset as usize..offset as usize + data.len()].copy_from_slice(data);
        inner.pending.push(PendingRange {
            offset,
            data: data.to_vec(),
            stage: Stage::InFlight,
        });
        self.stats.writes.inc();
        self.stats.bytes_written.add(data.len() as u64);
        self.stats.unpersisted_bytes.add(data.len() as i64);
        Ok(done)
    }

    /// Read `len` bytes at `offset` — always the newest data, wherever the
    /// bytes currently live. Returns the data and virtual completion time.
    pub fn read(&self, now: VTime, offset: u64, len: usize) -> Result<(Vec<u8>, VTime)> {
        self.check(offset, len)?;
        let done = self.resource.acquire(now, self.model.pmem_read_svc(len));
        let inner = self.inner.read();
        self.stats.reads.inc();
        self.stats.bytes_read.add(len as u64);
        Ok((
            inner.live[offset as usize..offset as usize + len].to_vec(),
            done,
        ))
    }

    /// Flush everything in flight toward the persistence domain. With DDIO
    /// disabled the bytes reach ADR-protected media (crash-durable); with
    /// DDIO enabled they only reach the (volatile) cache. Models the
    /// trailing one-sided RDMA READ in the AStore write chain; the READ's
    /// own media time is charged by the caller as a small read.
    pub fn flush(&self, now: VTime) -> VTime {
        let mut inner = self.inner.write();
        self.stats.flushes.inc();
        if self.ddio_enabled {
            for p in &mut inner.pending {
                if p.stage == Stage::InFlight {
                    p.stage = Stage::Cache;
                }
            }
        } else {
            let pending = std::mem::take(&mut inner.pending);
            let persisted: usize = pending.iter().map(|p| p.data.len()).sum();
            for p in pending {
                let start = p.offset as usize;
                inner.durable[start..start + p.data.len()].copy_from_slice(&p.data);
            }
            self.stats.bytes_persisted.add(persisted as u64);
            self.stats.unpersisted_bytes.sub(persisted as i64);
        }
        now
    }

    /// Atomic compare-and-swap of the little-endian `u64` at `offset`:
    /// if the current value equals `expected`, `new` is written (visible
    /// immediately, durable only after [`flush`](Self::flush), like any
    /// write). Returns the value observed *before* the swap and the virtual
    /// completion time. Backs the RDMA CAS verb — the NIC performs the
    /// compare at the target, so compare+write are one atomic step here too.
    pub fn cas64(&self, now: VTime, offset: u64, expected: u64, new: u64) -> Result<(u64, VTime)> {
        self.check(offset, 8)?;
        let done = self.resource.acquire(now, self.model.pmem_write_svc(8));
        let mut inner = self.inner.write();
        let at = offset as usize;
        let cur = u64::from_le_bytes(inner.live[at..at + 8].try_into().unwrap());
        if cur == expected {
            let bytes = new.to_le_bytes();
            inner.live[at..at + 8].copy_from_slice(&bytes);
            inner.pending.push(PendingRange {
                offset,
                data: bytes.to_vec(),
                stage: Stage::InFlight,
            });
            self.stats.writes.inc();
            self.stats.bytes_written.add(8);
            self.stats.unpersisted_bytes.add(8);
        }
        Ok((cur, done))
    }

    /// Bytes written but not yet crash-durable (in flight or in cache).
    pub fn unpersisted_bytes(&self) -> usize {
        self.inner.read().pending.iter().map(|p| p.data.len()).sum()
    }

    /// Power-fail the device: the live view reverts to the durable
    /// (ADR-protected) contents; everything in flight or in cache is lost.
    pub fn crash(&self) {
        let mut inner = self.inner.write();
        let lost: usize = inner.pending.iter().map(|p| p.data.len()).sum();
        inner.pending.clear();
        let durable = inner.durable.clone();
        inner.live = durable;
        self.stats.crashes.inc();
        self.stats.bytes_lost_on_crash.add(lost as u64);
        self.stats.unpersisted_bytes.sub(lost as i64);
    }

    /// Read without charging any virtual time (server-local access during
    /// recovery scans, and assertions in tests).
    pub fn peek(&self, offset: u64, len: usize) -> Result<Vec<u8>> {
        self.check(offset, len)?;
        let inner = self.inner.read();
        Ok(inner.live[offset as usize..offset as usize + len].to_vec())
    }

    /// What a crash *would* preserve right now (tests/verification only).
    pub fn durable_snapshot(&self, offset: u64, len: usize) -> Result<Vec<u8>> {
        self.check(offset, len)?;
        let inner = self.inner.read();
        Ok(inner.durable[offset as usize..offset as usize + len].to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device(ddio: bool) -> PmemDevice {
        PmemDevice::new(
            "pmem-0",
            1 << 20,
            ddio,
            Arc::new(Resource::new("pmem", 7)),
            LatencyModel::paper_default(),
        )
    }

    #[test]
    fn write_then_read_sees_data() {
        let d = device(false);
        let t = d.write(VTime::ZERO, 100, b"hello").unwrap();
        assert!(t > VTime::ZERO);
        let (data, t2) = d.read(t, 100, 5).unwrap();
        assert_eq!(&data, b"hello");
        assert!(t2 > t);
    }

    #[test]
    fn unflushed_write_lost_on_crash() {
        let d = device(false);
        d.write(VTime::ZERO, 0, b"volatile").unwrap();
        assert_eq!(d.unpersisted_bytes(), 8);
        d.crash();
        assert_eq!(d.peek(0, 8).unwrap(), vec![0; 8]);
    }

    #[test]
    fn flushed_write_survives_crash_with_ddio_off() {
        let d = device(false);
        d.write(VTime::ZERO, 64, b"durable!").unwrap();
        d.flush(VTime::ZERO);
        assert_eq!(d.unpersisted_bytes(), 0);
        d.crash();
        assert_eq!(d.peek(64, 8).unwrap(), b"durable!");
    }

    #[test]
    fn flushed_write_lost_on_crash_with_ddio_on() {
        // The failure mode the paper disables DDIO to avoid.
        let d = device(true);
        d.write(VTime::ZERO, 64, b"unsafe!!").unwrap();
        d.flush(VTime::ZERO);
        assert_eq!(d.unpersisted_bytes(), 8); // still volatile (L3)
        d.crash();
        assert_eq!(d.peek(64, 8).unwrap(), vec![0; 8]);
    }

    #[test]
    fn crash_preserves_older_flushed_data_under_overwrite() {
        let d = device(false);
        d.write(VTime::ZERO, 0, b"AAAA").unwrap();
        d.flush(VTime::ZERO);
        d.write(VTime::ZERO, 0, b"BBBB").unwrap(); // not flushed
        assert_eq!(d.peek(0, 4).unwrap(), b"BBBB"); // visible
        d.crash();
        assert_eq!(d.peek(0, 4).unwrap(), b"AAAA"); // durable version restored
    }

    #[test]
    fn out_of_bounds_rejected() {
        let d = device(false);
        let cap = d.capacity() as u64;
        assert!(matches!(
            d.write(VTime::ZERO, cap - 2, b"xyz"),
            Err(PmemError::OutOfBounds { .. })
        ));
        assert!(d.read(VTime::ZERO, cap, 1).is_err());
        assert!(d.peek(cap - 1, 2).is_err());
        // Exactly at the boundary is fine.
        assert!(d.write(VTime::ZERO, cap - 3, b"xyz").is_ok());
    }

    #[test]
    fn writes_queue_on_device_lanes() {
        let r = Arc::new(Resource::new("pmem", 1));
        let d = PmemDevice::new("p", 4096, false, r, LatencyModel::paper_default());
        let t1 = d.write(VTime::ZERO, 0, &[1u8; 1024]).unwrap();
        let t2 = d.write(VTime::ZERO, 1024, &[2u8; 1024]).unwrap();
        assert!(t2 > t1, "single-lane device must serialize");
        assert_eq!(t2.as_nanos(), t1.as_nanos() * 2);
    }

    #[test]
    fn attached_device_resource_publishes_saturation_metrics() {
        use vedb_sim::MetricsRegistry;
        let reg = MetricsRegistry::new();
        let r = Arc::new(Resource::with_metrics("astore-0.pmem", 1, &reg));
        let d = PmemDevice::new("p", 4096, false, r, LatencyModel::paper_default());
        d.write(VTime::ZERO, 0, &[1u8; 1024]).unwrap();
        d.write(VTime::ZERO, 1024, &[2u8; 1024]).unwrap(); // queues
        assert_eq!(reg.gauge_values()["astore-0.pmem.lanes"], 1);
        assert_eq!(reg.counter_values()["astore-0.pmem.ops"], 2);
        let lats = reg.latency_handles();
        let (_, wait) = lats
            .iter()
            .find(|(k, _)| k == "astore-0.pmem.wait")
            .unwrap();
        let (_, svc) = lats
            .iter()
            .find(|(k, _)| k == "astore-0.pmem.service")
            .unwrap();
        assert_eq!(wait.count(), 2);
        assert_eq!(svc.count(), 2);
        // The second write queues behind the first on the single lane, so
        // its wait equals one full service interval.
        assert!(wait.max() > VTime::ZERO);
        assert_eq!(wait.max(), svc.max());
    }

    #[test]
    fn read_is_cheaper_than_write() {
        let d = device(false);
        let w = d.write(VTime::ZERO, 0, &[0u8; 4096]).unwrap();
        let (_, r) = d.read(VTime::ZERO, 0, 4096).unwrap();
        // Same start time; read completes first even queued behind the write
        // on a 7-lane device (separate lanes).
        assert!(r < w);
    }

    #[test]
    fn overlapping_pending_ranges_flush_in_order() {
        let d = device(false);
        d.write(VTime::ZERO, 0, b"XXXXXXXX").unwrap();
        d.write(VTime::ZERO, 4, b"YYYY").unwrap();
        d.flush(VTime::ZERO);
        d.crash();
        assert_eq!(d.peek(0, 8).unwrap(), b"XXXXYYYY");
    }

    #[test]
    fn cas64_swaps_only_on_match_and_is_volatile_until_flush() {
        let d = device(false);
        let (old, _) = d.cas64(VTime::ZERO, 64, 0, 7).unwrap();
        assert_eq!(old, 0);
        assert_eq!(d.peek(64, 8).unwrap(), 7u64.to_le_bytes());
        // Mismatched expectation leaves the value untouched.
        let (old, _) = d.cas64(VTime::ZERO, 64, 0, 9).unwrap();
        assert_eq!(old, 7);
        assert_eq!(d.peek(64, 8).unwrap(), 7u64.to_le_bytes());
        // Like any write, the swap is volatile until flushed.
        d.crash();
        assert_eq!(d.peek(64, 8).unwrap(), [0u8; 8]);
        d.cas64(VTime::ZERO, 64, 0, 7).unwrap();
        d.flush(VTime::ZERO);
        d.crash();
        assert_eq!(d.peek(64, 8).unwrap(), 7u64.to_le_bytes());
    }

    #[test]
    fn metrics_track_persistence_lifecycle() {
        let reg = MetricsRegistry::detached();
        let d = PmemDevice::with_metrics(
            "p",
            4096,
            false,
            Arc::new(Resource::new("pmem", 7)),
            LatencyModel::paper_default(),
            &reg,
        );
        d.write(VTime::ZERO, 0, &[1u8; 100]).unwrap();
        d.write(VTime::ZERO, 200, &[2u8; 50]).unwrap();
        assert_eq!(reg.counter("pmem", "writes").get(), 2);
        assert_eq!(reg.counter("pmem", "bytes_written").get(), 150);
        assert_eq!(reg.gauge("pmem", "unpersisted_bytes").get(), 150);
        d.flush(VTime::ZERO);
        assert_eq!(reg.counter("pmem", "flushes").get(), 1);
        assert_eq!(reg.counter("pmem", "bytes_persisted").get(), 150);
        assert_eq!(reg.gauge("pmem", "unpersisted_bytes").get(), 0);
        d.write(VTime::ZERO, 0, &[3u8; 30]).unwrap();
        d.crash();
        assert_eq!(reg.counter("pmem", "bytes_lost_on_crash").get(), 30);
        assert_eq!(reg.gauge("pmem", "unpersisted_bytes").get(), 0);
        d.read(VTime::ZERO, 0, 64).unwrap();
        assert_eq!(reg.counter("pmem", "reads").get(), 1);
        assert_eq!(reg.counter("pmem", "bytes_read").get(), 64);
    }

    #[test]
    fn error_display() {
        let e = PmemError::OutOfBounds {
            offset: 10,
            len: 5,
            capacity: 12,
        };
        assert!(e.to_string().contains("offset=10"));
    }
}
