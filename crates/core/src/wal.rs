//! Write-ahead logging: record format, framing, and the two log backends.
//!
//! Every mutation writes a [`WalRecord`] before the page change is
//! considered done (WAL rule), and a transaction commits by persisting a
//! `Commit` record (§III: "After the REDO log is written to the LogStore
//! ... the transaction processing thread is notified"). Page records carry
//! both the REDO half (a [`RedoRecord`], shipped to PageStore) and a
//! *logical* undo half (applied through the B+Tree during rollback and
//! crash recovery — logical, because physical slot indexes shift under
//! concurrent activity).
//!
//! The engine is generic over [`LogBackend`]:
//!
//! * [`BlobGroupLog`] — baseline LogStore: SSD blob storage over TCP,
//! * [`RingLog`] — AStore SegmentRing: PMem over one-sided RDMA.
//!
//! Swapping these two (same engine, same workload) *is* the paper's
//! with/without-AStore comparison.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};
use vedb_astore::{Lsn, SegmentRing};
use vedb_blobstore::BlobGroup;
use vedb_pagestore::redo::{decode_record, encode_record, RedoRecord};
use vedb_sim::metrics::{Counter, LatencyRecorder, Timeline};
use vedb_sim::trace::TraceLog;
use vedb_sim::{LatencyModel, MetricsRegistry, Resource, SimCtx, VTime};

use crate::{EngineError, Result};

/// Logical undo information for one page mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UndoOp {
    /// Undo an insert: remove `key` from the index.
    Remove {
        /// Encoded key.
        key: Vec<u8>,
    },
    /// Undo an update: restore the old cell for `key`.
    Revert {
        /// Encoded key.
        key: Vec<u8>,
        /// Previous cell bytes.
        old_cell: Vec<u8>,
    },
    /// Undo a delete: re-insert the old cell.
    ReInsert {
        /// Encoded key.
        key: Vec<u8>,
        /// Deleted cell bytes.
        old_cell: Vec<u8>,
    },
}

/// Undo target: which index tree the logical operation applies to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UndoInfo {
    /// Tablespace of the index to patch.
    pub index_space: u32,
    /// The inverse operation.
    pub op: UndoOp,
}

/// One log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// A page mutation: REDO for PageStore + optional logical undo.
    Page {
        /// The REDO half.
        redo: RedoRecord,
        /// The logical undo half (absent for structural/meta operations,
        /// which never need undoing — they are redo-only reorganizations).
        undo: Option<UndoInfo>,
    },
    /// Transaction commit marker.
    Commit {
        /// Committing transaction.
        txn_id: u64,
    },
    /// Transaction abort marker (undo already applied).
    Abort {
        /// Aborted transaction.
        txn_id: u64,
    },
}

fn encode_undo(undo: &UndoInfo, out: &mut Vec<u8>) {
    out.extend_from_slice(&undo.index_space.to_le_bytes());
    let (tag, key, cell): (u8, &[u8], &[u8]) = match &undo.op {
        UndoOp::Remove { key } => (0, key, &[]),
        UndoOp::Revert { key, old_cell } => (1, key, old_cell),
        UndoOp::ReInsert { key, old_cell } => (2, key, old_cell),
    };
    out.push(tag);
    out.extend_from_slice(&(key.len() as u32).to_le_bytes());
    out.extend_from_slice(key);
    out.extend_from_slice(&(cell.len() as u32).to_le_bytes());
    out.extend_from_slice(cell);
}

/// Bounds-checked little-endian reads: WAL bytes come back from storage
/// after a crash and may be torn — truncation must surface as a codec
/// error on the recovery path, never as a panic.
fn wal_u32(buf: &[u8], pos: usize, what: &str) -> Result<u32> {
    buf.get(pos..pos + 4)
        .and_then(|b| <[u8; 4]>::try_from(b).ok())
        .map(u32::from_le_bytes)
        .ok_or_else(|| EngineError::Codec(format!("{what} truncated")))
}

fn wal_u64(buf: &[u8], pos: usize, what: &str) -> Result<u64> {
    buf.get(pos..pos + 8)
        .and_then(|b| <[u8; 8]>::try_from(b).ok())
        .map(u64::from_le_bytes)
        .ok_or_else(|| EngineError::Codec(format!("{what} truncated")))
}

fn decode_undo(buf: &[u8]) -> Result<(UndoInfo, usize)> {
    let err = || EngineError::Codec("undo truncated".into());
    let space = wal_u32(buf, 0, "undo")?;
    let tag = *buf.get(4).ok_or_else(err)?;
    let klen = wal_u32(buf, 5, "undo")? as usize;
    let key = buf.get(9..9 + klen).ok_or_else(err)?.to_vec();
    let mut pos = 9 + klen;
    let clen = wal_u32(buf, pos, "undo")? as usize;
    pos += 4;
    let cell = buf.get(pos..pos + clen).ok_or_else(err)?.to_vec();
    pos += clen;
    let op = match tag {
        0 => UndoOp::Remove { key },
        1 => UndoOp::Revert {
            key,
            old_cell: cell,
        },
        2 => UndoOp::ReInsert {
            key,
            old_cell: cell,
        },
        t => return Err(EngineError::Codec(format!("bad undo tag {t}"))),
    };
    Ok((
        UndoInfo {
            index_space: space,
            op,
        },
        pos,
    ))
}

/// Encode a record body (without framing).
pub fn encode_wal_record(rec: &WalRecord, out: &mut Vec<u8>) {
    match rec {
        WalRecord::Page { redo, undo } => {
            out.push(0);
            match undo {
                Some(u) => {
                    out.push(1);
                    encode_undo(u, out);
                }
                None => out.push(0),
            }
            encode_record(redo, out);
        }
        WalRecord::Commit { txn_id } => {
            out.push(1);
            out.extend_from_slice(&txn_id.to_le_bytes());
        }
        WalRecord::Abort { txn_id } => {
            out.push(2);
            out.extend_from_slice(&txn_id.to_le_bytes());
        }
    }
}

/// Decode a record body.
pub fn decode_wal_record(buf: &[u8]) -> Result<WalRecord> {
    let err = || EngineError::Codec("wal record truncated".into());
    match *buf.first().ok_or_else(err)? {
        0 => {
            let has_undo = *buf.get(1).ok_or_else(err)?;
            let mut pos = 2;
            let undo = if has_undo == 1 {
                let (u, n) = decode_undo(&buf[pos..])?;
                pos += n;
                Some(u)
            } else {
                None
            };
            let (redo, _) =
                decode_record(&buf[pos..]).map_err(|e| EngineError::Codec(format!("redo: {e}")))?;
            Ok(WalRecord::Page { redo, undo })
        }
        1 => Ok(WalRecord::Commit {
            txn_id: wal_u64(buf, 1, "commit record")?,
        }),
        2 => Ok(WalRecord::Abort {
            txn_id: wal_u64(buf, 1, "abort record")?,
        }),
        t => Err(EngineError::Codec(format!("bad wal tag {t}"))),
    }
}

/// Iterate `[len u32][body]` frames from a raw log byte stream. Stops at a
/// truncated tail (torn final write after a crash).
pub fn iter_frames(start_lsn: Lsn, bytes: &[u8]) -> Vec<(Lsn, WalRecord)> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos + 4 <= bytes.len() {
        let Ok(len) = wal_u32(bytes, pos, "frame header") else {
            break;
        };
        let len = len as usize;
        if len == 0 || pos + 4 + len > bytes.len() {
            break;
        }
        match decode_wal_record(&bytes[pos + 4..pos + 4 + len]) {
            Ok(rec) => out.push((start_lsn + pos as u64, rec)),
            Err(_) => break,
        }
        pos += 4 + len;
    }
    out
}

/// A durable, ordered byte log with LSN = byte offset.
pub trait LogBackend: Send + Sync {
    /// LSN the next append will receive.
    fn next_lsn(&self) -> Lsn;
    /// Largest single append the backend accepts.
    fn max_append(&self) -> usize {
        usize::MAX
    }
    /// Durably append `bytes`; returns the record's LSN.
    fn append(&self, ctx: &mut SimCtx, bytes: &[u8]) -> Result<Lsn>;
    /// Durably append a batch of records in order; returns each record's
    /// LSN. Backends that can take one reservation for the whole batch
    /// (AStore: one chained work request per replica, one doorbell)
    /// override this; the default is a per-record loop.
    fn append_batch(&self, ctx: &mut SimCtx, records: &[&[u8]]) -> Result<Vec<Lsn>> {
        records.iter().map(|r| self.append(ctx, r)).collect()
    }
    /// Read the retained stream from `lsn` to the end.
    fn read_from(&self, ctx: &mut SimCtx, lsn: Lsn) -> Result<(Lsn, Vec<u8>)>;
    /// Allow the backend to reclaim everything below `upto`.
    fn truncate(&self, ctx: &mut SimCtx, upto: Lsn) -> Result<()>;
}

/// AStore-backed log: the SegmentRing (§V-A/B).
pub struct RingLog {
    ring: SegmentRing,
}

impl RingLog {
    /// Wrap a ring.
    pub fn new(ring: SegmentRing) -> Self {
        RingLog { ring }
    }

    /// Access the underlying ring (recovery bootstrap needs segment ids).
    pub fn ring(&self) -> &SegmentRing {
        &self.ring
    }
}

impl LogBackend for RingLog {
    fn next_lsn(&self) -> Lsn {
        self.ring.next_lsn()
    }

    fn max_append(&self) -> usize {
        self.ring.segment_data_capacity() as usize
    }

    fn append(&self, ctx: &mut SimCtx, bytes: &[u8]) -> Result<Lsn> {
        Ok(self.ring.append(ctx, bytes)?)
    }

    fn append_batch(&self, ctx: &mut SimCtx, records: &[&[u8]]) -> Result<Vec<Lsn>> {
        Ok(self.ring.append_batch(ctx, records)?)
    }

    fn read_from(&self, ctx: &mut SimCtx, lsn: Lsn) -> Result<(Lsn, Vec<u8>)> {
        Ok(self.ring.read_from(ctx, lsn)?)
    }

    fn truncate(&self, ctx: &mut SimCtx, upto: Lsn) -> Result<()> {
        self.ring.truncate(ctx, upto)?;
        Ok(())
    }
}

/// Baseline LogStore: BlobGroup over SSD + TCP (§III). The SDK burns
/// engine CPU per submit (buffer copy + async submission + completion
/// callback context switch — the overheads §V-B calls out).
pub struct BlobGroupLog {
    group: BlobGroup,
    engine_cpu: Arc<Resource>,
    model: LatencyModel,
    base_lsn: AtomicU64,
    low_water: AtomicU64,
}

impl BlobGroupLog {
    /// Wrap a blob group as the log device.
    pub fn new(group: BlobGroup, engine_cpu: Arc<Resource>, model: LatencyModel) -> Self {
        BlobGroupLog {
            group,
            engine_cpu,
            model,
            base_lsn: AtomicU64::new(0),
            low_water: AtomicU64::new(0),
        }
    }
}

impl LogBackend for BlobGroupLog {
    fn next_lsn(&self) -> Lsn {
        self.base_lsn.load(Ordering::Acquire) + self.group.len()
    }

    fn append(&self, ctx: &mut SimCtx, bytes: &[u8]) -> Result<Lsn> {
        let done = self
            .engine_cpu
            .acquire(ctx.now(), VTime::from_nanos(self.model.cpu_logstore_sdk_ns));
        ctx.wait_until(done);
        let off = self.group.append(ctx, bytes)?;
        Ok(self.base_lsn.load(Ordering::Acquire) + off)
    }

    fn read_from(&self, ctx: &mut SimCtx, lsn: Lsn) -> Result<(Lsn, Vec<u8>)> {
        let base = self.base_lsn.load(Ordering::Acquire);
        let low = self.low_water.load(Ordering::Acquire).max(base);
        let start = lsn.max(low);
        let end = base + self.group.len();
        if start >= end {
            return Ok((end, Vec::new()));
        }
        let bytes = self.group.read(ctx, start - base, (end - start) as usize)?;
        Ok((start, bytes))
    }

    fn truncate(&self, _ctx: &mut SimCtx, upto: Lsn) -> Result<()> {
        // Blob GC happens out of band in the real system; the log simply
        // remembers that older bytes are dead.
        self.low_water.fetch_max(upto, Ordering::AcqRel);
        Ok(())
    }
}

/// When does a commit's `flush` hit the backend?
///
/// Validated by `DbConfig::builder().flush_policy(..)`: a `Group` policy
/// must have non-zero `max_batch_bytes` and `max_wait`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FlushPolicy {
    /// Every committer issues its own backend flush — the pre-consolidator
    /// behavior, byte-compatible with it. A racing committer's buffered
    /// bytes still ride along (the flush takes the whole buffer), but in
    /// practice every commit pays a full one-sided flush.
    #[default]
    PerCommit,
    /// Group-commit consolidation: the first committer to reach the WAL
    /// becomes the *leader* and dwells, letting concurrent committers
    /// enqueue their frames, then writes the whole buffer as **one**
    /// batched append. Carried committers are woken only after the batch
    /// end-LSN is durable (ack-after-persist, never before).
    Group {
        /// Flush as soon as this many bytes are buffered, even if the
        /// dwell window has not elapsed.
        max_batch_bytes: usize,
        /// Longest a leader dwells (virtual time) before flushing whatever
        /// has accumulated. Bounds the latency a solo commit can pay.
        max_wait: VTime,
    },
}

struct WalBuffer {
    /// Framed records not yet written to the backend.
    buf: Vec<u8>,
    /// Byte offset in `buf` where each buffered frame starts. Group
    /// flushes split the buffer at these boundaries so one batched append
    /// carries whole records.
    frames: Vec<usize>,
    /// LSN the next record will receive.
    next_lsn: Lsn,
    /// `Commit` frames buffered since the last flush took the buffer —
    /// the group size of the next flush.
    pending_commits: u64,
}

struct GroupState {
    /// A leader is currently dwelling or flushing.
    leader: bool,
    /// Committers parked waiting for the leader's batch.
    waiters: usize,
    /// Completed flushes: `(end_lsn, virtual time the batch was durable)`.
    /// A carried committer acks at the durable time of the first batch
    /// covering its LSN, never earlier.
    history: VecDeque<(Lsn, VTime)>,
}

/// Merges concurrent commit flushes into one batched AStore append.
///
/// Committers enqueue their frames in the WAL buffer and call
/// [`Wal::flush`]; the first one in becomes the leader, everyone else
/// parks here. The leader dwells (real time, so sibling committer threads
/// actually get to run; virtual time advances in step), takes the buffer,
/// issues a single [`LogBackend::append_batch`], records the batch's
/// durable point, and wakes the carried committers — whose clocks are
/// moved to that durable point before they ack (§V-B ack-after-persist).
struct GroupCommitConsolidator {
    state: Mutex<GroupState>,
    cv: Condvar,
}

/// Completed-flush history entries kept for late acks. A committer only
/// needs the entry covering its own LSN, which is nearly always the most
/// recent; the tail exists for stragglers.
const FLUSH_HISTORY: usize = 64;

impl GroupCommitConsolidator {
    fn new() -> Self {
        GroupCommitConsolidator {
            state: Mutex::new(GroupState {
                leader: false,
                waiters: 0,
                history: VecDeque::new(),
            }),
            cv: Condvar::new(),
        }
    }

    /// Virtual time at which everything below `upto` became durable, if
    /// the covering flush is still in history.
    fn ack_time(&self, upto: Lsn) -> Option<VTime> {
        let st = self.state.lock();
        st.history
            .iter()
            .find(|(end, _)| *end > upto)
            .map(|&(_, t)| t)
    }

    /// Record a completed flush's durable point (used by both policies, so
    /// late acks always have a covering entry).
    fn record(&self, end: Lsn, durable_at: VTime) {
        let mut st = self.state.lock();
        st.history.push_back((end, durable_at));
        while st.history.len() > FLUSH_HISTORY {
            st.history.pop_front();
        }
    }

    /// Record a completed flush and release leadership.
    fn finish(&self, end: Lsn, durable_at: VTime) {
        self.record(end, durable_at);
        let mut st = self.state.lock();
        st.leader = false;
        drop(st);
        self.cv.notify_all();
    }

    /// Release leadership without a completed flush (error path or empty
    /// buffer), waking parked committers to retry.
    fn abdicate(&self) {
        self.state.lock().leader = false;
        self.cv.notify_all();
    }
}

/// The engine's WAL writer with a global in-memory log buffer.
///
/// Records are appended to the buffer at memory speed; durability happens
/// at [`flush`](Self::flush) — which transactions call at commit (§V-B:
/// the paper registers the DBEngine's *global log buffer* with the RDMA
/// NIC and writes it out with one-sided verbs). *When* the buffer hits the
/// backend is the [`FlushPolicy`]:
///
/// * [`FlushPolicy::PerCommit`] — every committer flushes immediately.
///   Despite the whole buffer being taken per flush, committers on
///   instant virtual clocks almost never overlap, so flushes ≈ commits
///   (the metrics prove it: `core.wal_flushes` ≈ `core.txn_commits`).
///   Acks are after-persist under both policies: a committer whose bytes
///   rode someone else's flush waits until that flush's durable point.
/// * [`FlushPolicy::Group`] — the `GroupCommitConsolidator` elects the
///   first committer as leader; it dwells up to `max_wait` (or until
///   `max_batch_bytes` accumulate) while concurrent committers are
///   *carried*: they park, their frames ride the leader's single batched
///   append, and they are acked only once the batch end-LSN is durable.
pub struct Wal {
    backend: Box<dyn LogBackend>,
    state: Mutex<WalBuffer>,
    flushed: AtomicU64,
    /// Serializes take-buffer + backend-append so concurrent flushes cannot
    /// interleave and land bytes at the wrong LSN (the backend assigns LSN
    /// by arrival order).
    flush_lock: Mutex<()>,
    policy: FlushPolicy,
    group: GroupCommitConsolidator,
    /// Largest single backend write (matches the paper's observation that
    /// a 256 KB one-sided write costs ~0.1 ms; bigger flushes are split).
    max_io: usize,
    bytes_logged: Arc<Counter>,
    flushes: Arc<Counter>,
    group_flushes: Arc<Counter>,
    carried_commits: Arc<Counter>,
    bytes_flushed: Arc<Counter>,
    flush_lat: Arc<LatencyRecorder>,
    /// Buffered-but-unflushed bytes over virtual time: rises as committers
    /// append, drops to zero when a group commit takes the buffer. The
    /// sawtooth amplitude in the report timeline is the group-commit batch
    /// size.
    backlog: Arc<Timeline>,
    trace: Arc<TraceLog>,
}

impl Wal {
    /// Wrap a backend with a detached metrics registry.
    pub fn new(backend: Box<dyn LogBackend>) -> Self {
        Self::with_metrics(
            backend,
            FlushPolicy::PerCommit,
            &MetricsRegistry::detached(),
        )
    }

    /// Wrap a backend, publishing WAL counters/latencies into `registry`.
    pub fn with_metrics(
        backend: Box<dyn LogBackend>,
        policy: FlushPolicy,
        registry: &MetricsRegistry,
    ) -> Self {
        let next = backend.next_lsn();
        let max_io = backend.max_append().min(256 * 1024);
        Wal {
            backend,
            state: Mutex::new(WalBuffer {
                buf: Vec::new(),
                frames: Vec::new(),
                next_lsn: next,
                pending_commits: 0,
            }),
            flushed: AtomicU64::new(next),
            flush_lock: Mutex::new(()),
            policy,
            group: GroupCommitConsolidator::new(),
            max_io,
            bytes_logged: registry.counter("core", "wal_bytes_logged"),
            flushes: registry.counter("core", "wal_flushes"),
            group_flushes: registry.counter("core", "wal_group_flushes"),
            carried_commits: registry.counter("core", "wal_carried_commits"),
            bytes_flushed: registry.counter("core", "wal_bytes_flushed"),
            flush_lat: registry.latency("core", "wal_flush"),
            backlog: registry.timeline("core", "wal_backlog_bytes"),
            trace: Arc::clone(registry.trace()),
        }
    }

    /// The backend (recovery needs direct access).
    pub fn backend(&self) -> &dyn LogBackend {
        self.backend.as_ref()
    }

    /// Log a non-page record (commit/abort). Buffered; not yet durable.
    pub fn log(&self, ctx: &mut SimCtx, rec: &WalRecord) -> Result<Lsn> {
        let sp = self.trace.span(ctx, "wal", "serialize");
        let mut body = Vec::with_capacity(64);
        encode_wal_record(rec, &mut body);
        let is_commit = matches!(rec, WalRecord::Commit { .. });
        let lsn = self.buffer_frame(ctx, &body, is_commit);
        sp.finish(ctx);
        Ok(lsn)
    }

    /// Log a page mutation: assigns the record's LSN (fixing up the REDO
    /// half) and returns the finalized REDO record for shipping. Buffered.
    pub fn log_page(
        &self,
        ctx: &mut SimCtx,
        mut redo: RedoRecord,
        undo: Option<UndoInfo>,
    ) -> Result<(Lsn, RedoRecord)> {
        let sp = self.trace.span(ctx, "wal", "serialize");
        let mut state = self.state.lock();
        redo.lsn = state.next_lsn;
        let mut body = Vec::with_capacity(128);
        encode_wal_record(
            &WalRecord::Page {
                redo: redo.clone(),
                undo,
            },
            &mut body,
        );
        let lsn = Self::buffer_frame_locked(&mut state, &body);
        let backlog = state.buf.len() as i64;
        drop(state);
        self.bytes_logged.add(4 + body.len() as u64);
        self.backlog.record(ctx.now(), backlog);
        // Log-buffer memcpy cost.
        ctx.advance(VTime::from_nanos(200 + body.len() as u64 / 16));
        sp.finish(ctx);
        Ok((lsn, redo))
    }

    fn buffer_frame(&self, ctx: &mut SimCtx, body: &[u8], is_commit: bool) -> Lsn {
        let mut state = self.state.lock();
        let lsn = Self::buffer_frame_locked(&mut state, body);
        if is_commit {
            state.pending_commits += 1;
        }
        let backlog = state.buf.len() as i64;
        drop(state);
        self.bytes_logged.add(4 + body.len() as u64);
        self.backlog.record(ctx.now(), backlog);
        ctx.advance(VTime::from_nanos(200 + body.len() as u64 / 16));
        lsn
    }

    fn buffer_frame_locked(state: &mut WalBuffer, body: &[u8]) -> Lsn {
        let lsn = state.next_lsn;
        state.frames.push(state.buf.len());
        state
            .buf
            .extend_from_slice(&(body.len() as u32).to_le_bytes());
        state.buf.extend_from_slice(body);
        state.next_lsn += 4 + body.len() as u64;
        lsn
    }

    /// Make everything logged at or before `upto` durable, per the
    /// configured [`FlushPolicy`]. Returns once the covering backend
    /// write(s) complete — under `Group`, a carried committer returns at
    /// the virtual time its batch became durable, never before.
    pub fn flush(&self, ctx: &mut SimCtx, upto: Lsn) -> Result<()> {
        match self.policy {
            FlushPolicy::PerCommit => self.flush_per_commit(ctx, upto),
            FlushPolicy::Group {
                max_batch_bytes,
                max_wait,
            } => self.flush_grouped(ctx, upto, max_batch_bytes, max_wait),
        }
    }

    /// Pre-consolidator flush path, byte-compatible on the wire: every
    /// caller that finds undurable bytes takes the whole buffer and writes
    /// it in `max_io` chunks itself. Acks are still after-persist: a
    /// committer whose bytes rode a racing flush waits until that flush's
    /// durable point before returning (same history mechanism as the
    /// grouped path — without it a carried committer would ack at a
    /// virtual time *before* its bytes hit the backend).
    fn flush_per_commit(&self, ctx: &mut SimCtx, upto: Lsn) -> Result<()> {
        if self.ack_if_durable(ctx, upto) {
            return Ok(());
        }
        let sp = self.trace.span(ctx, "wal", "flush");
        let _serialize = self.flush_lock.lock();
        // A racing flush may have carried our bytes while we waited.
        if self.ack_if_durable(ctx, upto) {
            sp.finish(ctx);
            return Ok(());
        }
        let (bytes, end) = match self.take_buffer() {
            Some(taken) => taken,
            None => {
                sp.finish(ctx);
                return Ok(());
            }
        };
        let t0 = ctx.now();
        for chunk in bytes.0.chunks(self.max_io) {
            self.backend.append(ctx, chunk)?;
        }
        let durable_at = ctx.now();
        self.flushed.fetch_max(end, Ordering::AcqRel);
        self.flushes.inc();
        self.bytes_flushed.add(bytes.0.len() as u64);
        self.flush_lat.record(durable_at - t0);
        // The group commit drained the buffer at take time.
        self.backlog.record(t0, 0);
        self.group.record(end, durable_at);
        sp.finish(ctx);
        Ok(())
    }

    /// Group-commit flush: lead or be carried.
    fn flush_grouped(
        &self,
        ctx: &mut SimCtx,
        upto: Lsn,
        max_batch_bytes: usize,
        max_wait: VTime,
    ) -> Result<()> {
        if self.ack_if_durable(ctx, upto) {
            return Ok(());
        }
        let sp = self.trace.span(ctx, "wal", "flush");
        // Lead, or park until the current leader's batch lands.
        {
            let mut g = self.group.state.lock();
            loop {
                if self.flushed.load(Ordering::Acquire) > upto {
                    drop(g);
                    self.ack_if_durable(ctx, upto);
                    sp.finish(ctx);
                    return Ok(());
                }
                if !g.leader {
                    g.leader = true;
                    break;
                }
                g.waiters += 1;
                self.group.cv.wait(&mut g);
                g.waiters -= 1;
            }
        }
        let result = self.lead_group_flush(ctx, max_batch_bytes, max_wait);
        sp.finish(ctx);
        result
    }

    /// If `upto` is already durable, move the clock to the covering
    /// batch's durable point (ack-after-persist) and report true.
    fn ack_if_durable(&self, ctx: &mut SimCtx, upto: Lsn) -> bool {
        if self.flushed.load(Ordering::Acquire) <= upto {
            return false;
        }
        if let Some(t) = self.group.ack_time(upto) {
            if t > ctx.now() {
                ctx.wait_until(t);
            }
        }
        true
    }

    /// The leader half of the consolidator: dwell, take, batch-append,
    /// publish the durable point, wake the carried committers.
    fn lead_group_flush(
        &self,
        ctx: &mut SimCtx,
        max_batch_bytes: usize,
        max_wait: VTime,
    ) -> Result<()> {
        // Dwell so concurrent committers can enqueue. Virtual clocks
        // advance in zero real time, so the dwell must burn *real* time
        // for sibling committer threads to actually reach the buffer; the
        // virtual clock advances in step to keep the latency honest.
        const DWELL_STEPS: u64 = 4;
        let step = VTime::from_nanos((max_wait.as_nanos() / DWELL_STEPS).max(1));
        for i in 0..DWELL_STEPS {
            if self.state.lock().buf.len() >= max_batch_bytes {
                break;
            }
            // Solo fast path: after one arrival window with nobody parked
            // behind us, stop dwelling — a lone committer pays at most one
            // step of extra latency.
            if i > 0 && self.group.state.lock().waiters == 0 {
                break;
            }
            // vedb-lint: allow(no-wall-clock, "group-commit leader dwell burns real CPU time so sibling committer OS threads can enqueue; the virtual clock charges the flush separately, so reports are unaffected")
            std::thread::sleep(Duration::from_micros(60));
            ctx.advance(step);
        }
        let _serialize = self.flush_lock.lock();
        let ((bytes, frames), end) = match self.take_buffer() {
            Some(taken) => taken,
            None => {
                self.group.abdicate();
                return Ok(());
            }
        };
        let carried = {
            // Everyone parked right now rides this batch.
            let g = self.group.state.lock();
            g.waiters as u64
        };
        let t0 = ctx.now();
        let records = Self::split_records(&bytes, &frames, self.max_io);
        let outcome = self.backend.append_batch(ctx, &records);
        if let Err(e) = outcome {
            // The batch may be partially durable; `flushed` stays put so
            // affected committers retry (and fail loudly if the backend is
            // truly gone) rather than ack on a guess.
            self.group.abdicate();
            return Err(e);
        }
        let durable_at = ctx.now();
        self.flushed.fetch_max(end, Ordering::AcqRel);
        self.flushes.inc();
        self.group_flushes.inc();
        self.carried_commits.add(carried);
        self.bytes_flushed.add(bytes.len() as u64);
        self.flush_lat.record(durable_at - t0);
        self.backlog.record(t0, 0);
        self.group.finish(end, durable_at);
        Ok(())
    }

    /// Take the whole buffer; `None` if it is empty. Returns the bytes,
    /// the frame-start offsets within them, and the end LSN.
    #[allow(clippy::type_complexity)]
    fn take_buffer(&self) -> Option<((Vec<u8>, Vec<usize>), Lsn)> {
        let mut state = self.state.lock();
        if state.buf.is_empty() {
            return None;
        }
        state.pending_commits = 0;
        Some((
            (
                std::mem::take(&mut state.buf),
                std::mem::take(&mut state.frames),
            ),
            state.next_lsn,
        ))
    }

    /// Split the taken buffer into batch records: whole frames, merged up
    /// to `max_io` bytes per record (an oversized frame falls back to raw
    /// chunking — it cannot ride in one backend write anyway).
    fn split_records<'a>(bytes: &'a [u8], frames: &[usize], max_io: usize) -> Vec<&'a [u8]> {
        let mut records = Vec::new();
        let mut start = 0usize;
        for (i, &frame_start) in frames.iter().enumerate() {
            let frame_end = frames.get(i + 1).copied().unwrap_or(bytes.len());
            if frame_end - start > max_io && frame_start > start {
                records.push(&bytes[start..frame_start]);
                start = frame_start;
            }
            if frame_end - start > max_io {
                // Single frame larger than one write: split it raw.
                for chunk in bytes[start..frame_end].chunks(max_io) {
                    records.push(chunk);
                }
                start = frame_end;
            }
        }
        if start < bytes.len() {
            records.push(&bytes[start..]);
        }
        records
    }

    /// LSN below which everything is durable.
    pub fn flushed_lsn(&self) -> Lsn {
        self.flushed.load(Ordering::Acquire)
    }

    /// Read and decode every *durable* record from `lsn`.
    pub fn records_from(&self, ctx: &mut SimCtx, lsn: Lsn) -> Result<Vec<(Lsn, WalRecord)>> {
        let (start, bytes) = self.backend.read_from(ctx, lsn)?;
        Ok(iter_frames(start, &bytes))
    }

    /// Next LSN (end of log, including buffered records).
    pub fn next_lsn(&self) -> Lsn {
        self.state.lock().next_lsn
    }

    /// Truncate below `upto`.
    pub fn truncate(&self, ctx: &mut SimCtx, upto: Lsn) -> Result<()> {
        self.backend.truncate(ctx, upto)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vedb_astore::PageId;
    use vedb_pagestore::redo::PageOp;
    use vedb_pagestore::PageType;

    fn page_rec(txn: u64) -> WalRecord {
        WalRecord::Page {
            redo: RedoRecord {
                lsn: 0,
                prev_same_segment: 0,
                txn_id: txn,
                page: PageId::new(1, 2),
                op: PageOp::InsertAt {
                    slot: 3,
                    cell: b"cell-bytes".to_vec(),
                },
            },
            undo: Some(UndoInfo {
                index_space: 1,
                op: UndoOp::Revert {
                    key: b"k1".to_vec(),
                    old_cell: b"old".to_vec(),
                },
            }),
        }
    }

    #[test]
    fn wal_record_roundtrip() {
        for rec in [
            page_rec(7),
            WalRecord::Page {
                redo: RedoRecord {
                    lsn: 5,
                    prev_same_segment: 0,
                    txn_id: 1,
                    page: PageId::new(0, 1),
                    op: PageOp::Format {
                        ty: PageType::BTreeLeaf,
                        level: 0,
                    },
                },
                undo: None,
            },
            WalRecord::Commit { txn_id: 99 },
            WalRecord::Abort { txn_id: 100 },
        ] {
            let mut buf = Vec::new();
            encode_wal_record(&rec, &mut buf);
            assert_eq!(decode_wal_record(&buf).unwrap(), rec);
        }
    }

    #[test]
    fn undo_variants_roundtrip() {
        for op in [
            UndoOp::Remove { key: b"k".to_vec() },
            UndoOp::Revert {
                key: b"k".to_vec(),
                old_cell: b"v1".to_vec(),
            },
            UndoOp::ReInsert {
                key: b"k".to_vec(),
                old_cell: b"v2".to_vec(),
            },
        ] {
            let u = UndoInfo { index_space: 9, op };
            let mut buf = Vec::new();
            encode_undo(&u, &mut buf);
            let (dec, used) = decode_undo(&buf).unwrap();
            assert_eq!(dec, u);
            assert_eq!(used, buf.len());
        }
    }

    #[test]
    fn frame_iteration_and_torn_tail() {
        let mut stream = Vec::new();
        let mut lsns = Vec::new();
        for i in 0..3u64 {
            let mut body = Vec::new();
            encode_wal_record(&WalRecord::Commit { txn_id: i }, &mut body);
            lsns.push(stream.len() as u64 + 100);
            stream.extend_from_slice(&(body.len() as u32).to_le_bytes());
            stream.extend_from_slice(&body);
        }
        // Torn final frame: only half its bytes made it.
        let cut = stream.len() - 4;
        let frames = iter_frames(100, &stream[..cut]);
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].0, lsns[0]);
        assert_eq!(frames[1], (lsns[1], WalRecord::Commit { txn_id: 1 }));
        // Intact stream decodes fully.
        assert_eq!(iter_frames(100, &stream).len(), 3);
    }
}
