//! Crash recovery of the DBEngine (§V-E + standard ARIES structure).
//!
//! When the DBEngine process dies, everything volatile is gone: buffer
//! pool, EBP index, lock table, ship buffer, transaction table. What
//! survives is AStore's PMem (the SegmentRing log + EBP page images) and
//! PageStore. Recovery:
//!
//! 1. **Ring recovery** — adopt the log segments, binary-search headers for
//!    the newest segment, recover the end-of-log from the io-meta (§V-A).
//! 2. **Analysis** — scan the retained log; transactions with a Commit or
//!    Abort record are winners (history will be repeated for them);
//!    transactions with page records but no terminal record are losers.
//! 3. **Redo** — re-ship every page record to PageStore (idempotent:
//!    replicas drop records at or below their high-water LSN), so the page
//!    service reflects all logged work, then reload the meta page (roots +
//!    allocation marks).
//! 4. **Undo** — apply the losers' logical undo chains in reverse LSN
//!    order and log their Abort records.
//! 5. **EBP rebuild** — ask every AStore server to scan its PMem and
//!    return valid cached pages (stale ones pruned by the page→LSN batches
//!    the old engine shipped), and rebuild the EBP index from the result.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use vedb_astore::client::AStoreClient;
use vedb_astore::{Lsn, PageId, SegmentId, SegmentRing};
use vedb_rdma::RdmaEndpoint;
use vedb_sim::{SimCtx, VTime};

use crate::catalog::Catalog;
use crate::db::{decode_meta_blob, Db, DbConfig, LogBackendKind, StorageFabric, META_PAGE};
use crate::ebp::Ebp;
use crate::wal::{RingLog, UndoInfo, Wal, WalRecord};
use crate::{EngineError, Result};

/// What recovery did (assertable in tests).
#[derive(Debug, Default)]
pub struct RecoveryReport {
    /// Log records scanned.
    pub records_scanned: usize,
    /// Committed transactions found.
    pub committed: usize,
    /// Loser transactions rolled back.
    pub losers_undone: usize,
    /// EBP pages restored to the index.
    pub ebp_pages_recovered: usize,
}

/// Recover a crashed AStore-backed engine. `ring_segment_ids` come from
/// the previous incarnation's bootstrap catalog
/// ([`Db::log_segment_ids`]); `schema` re-registers the same schema.
pub fn recover(
    ctx: &mut SimCtx,
    fabric: &StorageFabric,
    cfg: DbConfig,
    schema: impl FnOnce(&mut Catalog),
    ring_segment_ids: &[SegmentId],
) -> Result<(Arc<Db>, RecoveryReport)> {
    assert_eq!(
        cfg.log,
        LogBackendKind::AStore,
        "crash recovery is AStore's capability (§V-E); the baseline \
         LogStore's blob metadata lives outside this reproduction"
    );
    let mut report = RecoveryReport::default();

    // 1. New incarnation: fresh lease (fences the dead engine), ring
    //    recovery from segment headers + io-meta.
    let ep = RdmaEndpoint::with_metrics(
        fabric.env.model.clone(),
        Arc::clone(&fabric.env.faults),
        Arc::clone(&fabric.env.engine_nic),
        &fabric.env.metrics,
    );
    let client = AStoreClient::connect_with_policy(
        ctx,
        Arc::clone(&fabric.cm),
        ep,
        Arc::clone(&fabric.env.engine_cpu),
        fabric.env.model.clone(),
        ctx.client_id,
        VTime::from_millis(50),
        cfg.retry,
    );
    let ring = SegmentRing::recover(ctx, Arc::clone(&client), ring_segment_ids)?;
    let log_segments = ring.segment_ids();
    let wal = Wal::with_metrics(Box::new(RingLog::new(ring)), cfg.flush, &fabric.env.metrics);

    // 2. Analysis.
    let records = wal.records_from(ctx, 0)?;
    report.records_scanned = records.len();
    let mut terminal: HashSet<u64> = HashSet::new();
    let mut touched: HashSet<u64> = HashSet::new();
    let mut page_lsns: HashMap<PageId, Lsn> = HashMap::new();
    let mut undo_chains: HashMap<u64, Vec<(Lsn, UndoInfo)>> = HashMap::new();
    let mut redo_records = Vec::new();
    for (lsn, rec) in &records {
        match rec {
            WalRecord::Page { redo, undo } => {
                touched.insert(redo.txn_id);
                page_lsns
                    .entry(redo.page)
                    .and_modify(|l| *l = (*l).max(redo.lsn))
                    .or_insert(redo.lsn);
                if let Some(u) = undo {
                    undo_chains
                        .entry(redo.txn_id)
                        .or_default()
                        .push((*lsn, u.clone()));
                }
                redo_records.push(redo.clone());
            }
            WalRecord::Commit { txn_id } => {
                terminal.insert(*txn_id);
                report.committed += 1;
            }
            WalRecord::Abort { txn_id } => {
                terminal.insert(*txn_id);
            }
        }
    }
    let losers: Vec<u64> = {
        // Txn id 0 is the system transaction (bootstrap, page allocation,
        // tree creation): redo-only structural work with no commit record
        // and nothing to undo.
        let mut l: Vec<u64> = touched
            .difference(&terminal)
            .copied()
            .filter(|t| *t != 0)
            .collect();
        l.sort_unstable();
        l
    };

    // 3. Redo: repeat history at PageStore (duplicates are dropped by the
    //    replicas' LSN high-water check).
    let ebp_cfg = cfg.ebp.clone();
    let ebp = match ebp_cfg {
        Some(ecfg) => {
            let e = Ebp::recover(ctx, Arc::clone(&client), ecfg)?;
            report.ebp_pages_recovered = e.len();
            Some(e)
        }
        None => None,
    };
    let db = Db::assemble(fabric, cfg, wal, Some(client), ebp, log_segments);
    db.define_schema(schema);
    {
        // Ship through the engine's buffer so ordering/back-links hold.
        for redo in redo_records {
            db.enqueue_redo_for_recovery(redo);
        }
        db.flush_ship(ctx, true);
    }
    db.install_page_lsns(page_lsns.clone());

    // Reload the meta page (roots + allocation marks) from PageStore.
    let meta_lsn = page_lsns.get(&META_PAGE).copied().unwrap_or(0);
    let bytes = db
        .pagestore()
        .read_page(ctx, META_PAGE, meta_lsn)
        .map_err(|_| EngineError::PageUnavailable(META_PAGE))?;
    let page = vedb_pagestore::Page::from_bytes(&bytes)?;
    let blob = page.get(0)?;
    let (next_page, roots) = decode_meta_blob(blob)?;
    db.install_meta(next_page, roots);

    // 4. Undo the losers (reverse LSN order), then mark them aborted.
    for loser in &losers {
        if let Some(mut chain) = undo_chains.remove(loser) {
            chain.sort_by_key(|(lsn, _)| *lsn);
            for (_, u) in chain.iter().rev() {
                db.apply_undo(ctx, *loser, u)?;
            }
        }
        db.wal().log(ctx, &WalRecord::Abort { txn_id: *loser })?;
        report.losers_undone += 1;
    }
    db.flush_ship(ctx, true);
    Ok((db, report))
}

/// Point-in-time restore of the storage layer: rebuild every PageStore
/// replica from checkpoint + log replay to exactly `target`, durably
/// discarding redo beyond it. Returns the total records replayed across
/// replicas.
///
/// This is the storage half of a PITR: run it *before* [`recover`], which
/// then re-ships the engine WAL's surviving records on top (replicas drop
/// the duplicates via their LSN high-water check). Restoring below the
/// checkpointer's truncation horizon fails with
/// [`NotYetApplied`](vedb_pagestore::PageStoreError::NotYetApplied) and
/// leaves the stores untouched.
pub fn restore_pagestore_to_lsn(
    ctx: &mut SimCtx,
    fabric: &StorageFabric,
    target: Lsn,
) -> Result<usize> {
    fabric
        .pagestore
        .restore_to_lsn(ctx, target)
        .map_err(EngineError::from)
}
