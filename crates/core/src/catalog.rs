//! Schema catalog: tables, columns, and indexes.
//!
//! Every table is a clustered B+Tree on its primary key living in its own
//! tablespace; each secondary index is another B+Tree (key → primary key)
//! in its own space. Space 0 is reserved for the engine's meta page.

use std::collections::HashMap;

use crate::{EngineError, Result};

/// Column type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnType {
    /// 64-bit integer.
    Int,
    /// Double-precision float.
    Double,
    /// UTF-8 string.
    Str,
}

/// A column definition.
#[derive(Debug, Clone)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Column type.
    pub ty: ColumnType,
}

/// A secondary index definition.
#[derive(Debug, Clone)]
pub struct IndexDef {
    /// Index id == its tablespace number.
    pub space_no: u32,
    /// Index name.
    pub name: String,
    /// Key column positions (into the table's column list).
    pub key_cols: Vec<usize>,
    /// Whether keys are unique (non-unique indexes append the PK to the
    /// stored key to disambiguate).
    pub unique: bool,
}

/// A table definition.
#[derive(Debug, Clone)]
pub struct TableDef {
    /// Table id == its clustered tablespace number.
    pub space_no: u32,
    /// Table name.
    pub name: String,
    /// Columns in schema order.
    pub columns: Vec<ColumnDef>,
    /// Primary-key column positions.
    pub pk_cols: Vec<usize>,
    /// Secondary indexes.
    pub secondary: Vec<IndexDef>,
}

impl TableDef {
    /// Position of a column by name.
    pub fn col(&self, name: &str) -> usize {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .unwrap_or_else(|| panic!("no column {name} in table {}", self.name))
    }
}

/// The schema catalog. Workloads register their schema at bootstrap (and
/// again after a crash — schema is code, not data, in this reproduction;
/// the *roots and allocation state* of the trees are what recovery
/// restores, via the persistent meta page).
#[derive(Default)]
pub struct Catalog {
    tables: Vec<TableDef>,
    by_name: HashMap<String, usize>,
    next_space: u32,
}

impl Catalog {
    /// An empty catalog; spaces start at 1 (0 is the meta space).
    pub fn new() -> Catalog {
        Catalog {
            tables: Vec::new(),
            by_name: HashMap::new(),
            next_space: 1,
        }
    }

    /// Start defining a table.
    pub fn define(&mut self, name: &str) -> TableBuilder<'_> {
        TableBuilder {
            catalog: self,
            name: name.to_string(),
            columns: Vec::new(),
            pk: Vec::new(),
            secondary: Vec::new(),
        }
    }

    /// Look up a table by name.
    pub fn table(&self, name: &str) -> Result<&TableDef> {
        self.by_name
            .get(name)
            .map(|i| &self.tables[*i])
            .ok_or_else(|| EngineError::UnknownTable(name.to_string()))
    }

    /// Look up a table by its space number.
    pub fn table_by_space(&self, space_no: u32) -> Option<&TableDef> {
        self.tables.iter().find(|t| t.space_no == space_no)
    }

    /// Find the table owning an index space (clustered or secondary),
    /// along with the index definition if secondary.
    pub fn index_owner(&self, space_no: u32) -> Option<(&TableDef, Option<&IndexDef>)> {
        for t in &self.tables {
            if t.space_no == space_no {
                return Some((t, None));
            }
            if let Some(ix) = t.secondary.iter().find(|ix| ix.space_no == space_no) {
                return Some((t, Some(ix)));
            }
        }
        None
    }

    /// All tables.
    pub fn tables(&self) -> &[TableDef] {
        &self.tables
    }
}

/// Fluent table definition builder.
pub struct TableBuilder<'a> {
    catalog: &'a mut Catalog,
    name: String,
    columns: Vec<ColumnDef>,
    pk: Vec<String>,
    secondary: Vec<(String, Vec<String>, bool)>,
}

impl TableBuilder<'_> {
    /// Add a column.
    pub fn col(mut self, name: &str, ty: ColumnType) -> Self {
        self.columns.push(ColumnDef {
            name: name.to_string(),
            ty,
        });
        self
    }

    /// Set the primary key columns.
    pub fn pk(mut self, cols: &[&str]) -> Self {
        self.pk = cols.iter().map(|c| c.to_string()).collect();
        self
    }

    /// Add a non-unique secondary index.
    pub fn index(mut self, name: &str, cols: &[&str]) -> Self {
        self.secondary.push((
            name.to_string(),
            cols.iter().map(|c| c.to_string()).collect(),
            false,
        ));
        self
    }

    /// Add a unique secondary index.
    pub fn unique_index(mut self, name: &str, cols: &[&str]) -> Self {
        self.secondary.push((
            name.to_string(),
            cols.iter().map(|c| c.to_string()).collect(),
            true,
        ));
        self
    }

    /// Register the table; returns its space number.
    ///
    /// # Panics
    /// Panics on empty/unknown PK columns or duplicate table names.
    pub fn build(self) -> u32 {
        assert!(
            !self.pk.is_empty(),
            "table {} needs a primary key",
            self.name
        );
        assert!(
            !self.catalog.by_name.contains_key(&self.name),
            "duplicate table {}",
            self.name
        );
        let col_pos = |n: &str| {
            self.columns
                .iter()
                .position(|c| c.name == n)
                .unwrap_or_else(|| panic!("unknown column {n} in table {}", self.name))
        };
        let pk_cols: Vec<usize> = self.pk.iter().map(|c| col_pos(c)).collect();
        let space_no = self.catalog.next_space;
        self.catalog.next_space += 1;
        let mut secondary = Vec::new();
        for (name, cols, unique) in &self.secondary {
            let key_cols: Vec<usize> = cols.iter().map(|c| col_pos(c)).collect();
            let ix_space = self.catalog.next_space;
            self.catalog.next_space += 1;
            secondary.push(IndexDef {
                space_no: ix_space,
                name: name.clone(),
                key_cols,
                unique: *unique,
            });
        }
        let def = TableDef {
            space_no,
            name: self.name.clone(),
            columns: self.columns,
            pk_cols,
            secondary,
        };
        self.catalog
            .by_name
            .insert(self.name, self.catalog.tables.len());
        self.catalog.tables.push(def);
        space_no
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn define_and_lookup() {
        let mut cat = Catalog::new();
        let space = cat
            .define("orders")
            .col("o_id", ColumnType::Int)
            .col("o_cust", ColumnType::Int)
            .col("o_info", ColumnType::Str)
            .pk(&["o_id"])
            .index("idx_cust", &["o_cust"])
            .build();
        assert_eq!(space, 1);
        let t = cat.table("orders").unwrap();
        assert_eq!(t.col("o_cust"), 1);
        assert_eq!(t.pk_cols, vec![0]);
        assert_eq!(t.secondary.len(), 1);
        assert_eq!(t.secondary[0].space_no, 2);
        assert!(cat.table("nope").is_err());
        assert_eq!(cat.table_by_space(1).unwrap().name, "orders");
        let (owner, ix) = cat.index_owner(2).unwrap();
        assert_eq!(owner.name, "orders");
        assert_eq!(ix.unwrap().name, "idx_cust");
    }

    #[test]
    fn spaces_are_unique_across_tables() {
        let mut cat = Catalog::new();
        let a = cat.define("a").col("x", ColumnType::Int).pk(&["x"]).build();
        let b = cat
            .define("b")
            .col("y", ColumnType::Int)
            .pk(&["y"])
            .index("i1", &["y"])
            .build();
        let c = cat.define("c").col("z", ColumnType::Int).pk(&["z"]).build();
        assert_eq!((a, b, c), (1, 2, 4));
    }

    #[test]
    #[should_panic(expected = "needs a primary key")]
    fn missing_pk_panics() {
        let mut cat = Catalog::new();
        cat.define("bad").col("x", ColumnType::Int).build();
    }
}
