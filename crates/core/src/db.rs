//! The `Db` facade: veDB's DBEngine assembled.
//!
//! A [`Db`] wires together the catalog, buffer pool, optional Extended
//! Buffer Pool, WAL (either log backend), PageStore shipping, the lock
//! manager and the B+Trees. [`StorageFabric`] builds the storage cluster
//! (AStore servers + CM, blob servers, PageStore servers) for one
//! experiment; several `Db` configurations can be run against the same
//! fabric, which is how the benches compare "veDB" vs "veDB + AStore".
//!
//! Data-plane flow for one mutation:
//!
//! 1. row lock (S2PL) →
//! 2. B+Tree locates the page via the buffer pool (BP → EBP → PageStore) →
//! 3. the mutation is WAL-logged (this is the latency AStore attacks) and
//!    applied to the in-pool page →
//! 4. the REDO record joins the ship buffer, delivered to PageStore off the
//!    commit path →
//! 5. commit = one more WAL record, then locks release.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Mutex, RwLock};
use vedb_astore::client::AStoreClient;
use vedb_astore::cm::ClusterManager;
use vedb_astore::{AStoreServer, Lsn, PageId, RetryPolicy, SegmentId, SegmentRing};
use vedb_blobstore::{BlobGroup, BlobGroupConfig, BlobServer};
use vedb_pagestore::page::{Page, PageType};
use vedb_pagestore::redo::{PageOp, RedoRecord};
use vedb_pagestore::{ApplyConfig, PageStore, PageStoreConfig, PageStoreError, PageStoreServer};
use vedb_rdma::{RdmaEndpoint, RpcFabric};
use vedb_sim::fault::NodeId;
use vedb_sim::metrics::{Counter, LatencyRecorder};
use vedb_sim::trace::TraceLog;
use vedb_sim::{ClusterSpec, MetricsRegistry, SimCtx, SimEnv, VTime};

use crate::btree::{BTree, TreeAccess};
use crate::buffer::{BufferPool, EvictionSink, Frame};
use crate::catalog::{Catalog, TableDef};
use crate::ebp::{Ebp, EbpConfig};
use crate::lock::{LockManager, LockMode};
use crate::row::{decode_row, encode_key, encode_row, Row, Value};
use crate::txn::{TxnHandle, TxnStatus};
use crate::wal::{
    BlobGroupLog, FlushPolicy, LogBackend, RingLog, UndoInfo, UndoOp, Wal, WalRecord,
};
use crate::{EngineError, Result};

/// Which log backend the engine uses — the paper's central switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogBackendKind {
    /// Baseline: SSD LogStore over TCP (BlobGroups).
    BlobStore,
    /// Accelerated: AStore SegmentRing over PMem + one-sided RDMA.
    AStore,
}

/// Engine configuration.
///
/// Construct through [`DbConfig::builder`] — the struct is
/// `#[non_exhaustive]`, so field-by-field literal construction is only
/// possible inside `vedb-core`. The builder validates the combination in
/// [`DbConfigBuilder::build`], which is where configuration mistakes
/// surface instead of deep inside `Db::open`.
#[non_exhaustive]
#[derive(Clone)]
pub struct DbConfig {
    /// Buffer pool capacity in pages.
    pub bp_pages: usize,
    /// Buffer pool shards.
    pub bp_shards: usize,
    /// Log backend.
    pub log: LogBackendKind,
    /// SegmentRing length (AStore log).
    pub ring_segments: usize,
    /// Extended Buffer Pool (None = disabled).
    pub ebp: Option<EbpConfig>,
    /// Real-time lock wait budget (deadlock breaker).
    pub lock_timeout: Duration,
    /// Checkpoint (ship + truncate the log) automatically once this many
    /// log bytes have accumulated since the last truncation. veDB's
    /// storage layer applies REDO continuously, so the log's working
    /// window stays small (§IV: "the capacity reserved for REDO logs in
    /// AStore for each database instance is ... limited to GB level").
    pub auto_checkpoint_bytes: u64,
    /// Fault-recovery policy for the engine's AStore client: retries,
    /// backoff, lease renewal and replica failover all run under this.
    pub retry: RetryPolicy,
    /// Commit-path flush policy: per-commit flushes (default) or
    /// group-commit consolidation (see [`FlushPolicy`]).
    pub flush: FlushPolicy,
}

impl Default for DbConfig {
    fn default() -> Self {
        DbConfig {
            bp_pages: 256,
            bp_shards: 8,
            log: LogBackendKind::AStore,
            ring_segments: 8,
            ebp: None,
            lock_timeout: Duration::from_millis(200),
            auto_checkpoint_bytes: 2 << 20,
            retry: RetryPolicy::default(),
            flush: FlushPolicy::PerCommit,
        }
    }
}

impl DbConfig {
    /// Start building a configuration from the paper defaults.
    pub fn builder() -> DbConfigBuilder {
        DbConfigBuilder {
            cfg: DbConfig::default(),
        }
    }
}

/// Fluent builder for [`DbConfig`] — see [`DbConfig::builder`].
#[derive(Clone)]
pub struct DbConfigBuilder {
    cfg: DbConfig,
}

impl DbConfigBuilder {
    /// Buffer pool capacity in pages.
    pub fn bp_pages(mut self, pages: usize) -> Self {
        self.cfg.bp_pages = pages;
        self
    }

    /// Buffer pool shard count.
    pub fn bp_shards(mut self, shards: usize) -> Self {
        self.cfg.bp_shards = shards;
        self
    }

    /// Which log backend the engine writes REDO to.
    pub fn log(mut self, log: LogBackendKind) -> Self {
        self.cfg.log = log;
        self
    }

    /// Number of segments in the AStore SegmentRing.
    pub fn ring_segments(mut self, n: usize) -> Self {
        self.cfg.ring_segments = n;
        self
    }

    /// Enable the Extended Buffer Pool (accepts an `EbpConfig` or an
    /// `Option<EbpConfig>`; `None` disables it).
    pub fn ebp(mut self, ebp: impl Into<Option<EbpConfig>>) -> Self {
        self.cfg.ebp = ebp.into();
        self
    }

    /// Real-time lock wait budget.
    pub fn lock_timeout(mut self, t: Duration) -> Self {
        self.cfg.lock_timeout = t;
        self
    }

    /// Auto-checkpoint threshold in log bytes.
    pub fn auto_checkpoint_bytes(mut self, bytes: u64) -> Self {
        self.cfg.auto_checkpoint_bytes = bytes;
        self
    }

    /// Fault-recovery policy for the AStore client.
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.cfg.retry = policy;
        self
    }

    /// Commit-path flush policy (per-commit or group-commit consolidation).
    pub fn flush_policy(mut self, policy: FlushPolicy) -> Self {
        self.cfg.flush = policy;
        self
    }

    /// Validate and produce the configuration.
    pub fn build(self) -> Result<DbConfig> {
        let c = &self.cfg;
        if c.bp_pages == 0 {
            return Err(EngineError::Config("bp_pages must be at least 1".into()));
        }
        if c.bp_shards == 0 {
            return Err(EngineError::Config("bp_shards must be at least 1".into()));
        }
        if c.bp_shards > c.bp_pages {
            return Err(EngineError::Config(format!(
                "bp_shards ({}) cannot exceed bp_pages ({})",
                c.bp_shards, c.bp_pages
            )));
        }
        if c.log == LogBackendKind::AStore && c.ring_segments < 2 {
            return Err(EngineError::Config(format!(
                "ring_segments must be at least 2, got {}",
                c.ring_segments
            )));
        }
        if c.lock_timeout.is_zero() {
            return Err(EngineError::Config("lock_timeout must be non-zero".into()));
        }
        if let Some(ebp) = &c.ebp {
            if ebp.capacity_bytes == 0 {
                return Err(EngineError::Config(
                    "ebp capacity_bytes must be at least 1".into(),
                ));
            }
        }
        if let FlushPolicy::Group {
            max_batch_bytes,
            max_wait,
        } = c.flush
        {
            if max_batch_bytes == 0 {
                return Err(EngineError::Config(
                    "flush_policy Group max_batch_bytes must be at least 1".into(),
                ));
            }
            if max_wait == vedb_sim::VTime::ZERO {
                return Err(EngineError::Config(
                    "flush_policy Group max_wait must be non-zero".into(),
                ));
            }
        }
        Ok(self.cfg)
    }
}

/// The storage cluster for one experiment: AStore (servers + CM), the
/// baseline blob store, PageStore, and the shared fabrics.
pub struct StorageFabric {
    /// The simulated cluster resources.
    pub env: Arc<SimEnv>,
    /// AStore control plane.
    pub cm: Arc<ClusterManager>,
    /// AStore data servers.
    pub astore_servers: Vec<Arc<AStoreServer>>,
    /// Baseline blob servers (share the storage nodes with PageStore).
    pub blob_servers: Vec<Arc<BlobServer>>,
    /// PageStore facade.
    pub pagestore: Arc<PageStore>,
    /// RPC fabric.
    pub rpc: Arc<RpcFabric>,
}

impl StorageFabric {
    /// Build the full Table-I-shaped fabric for a cluster spec.
    ///
    /// `astore_slot_bytes` is the AStore segment (slot) size; rings and the
    /// EBP both allocate slots of this size.
    pub fn build(
        spec: ClusterSpec,
        astore_capacity: usize,
        astore_slot_bytes: u64,
    ) -> StorageFabric {
        Self::build_with_apply(
            spec,
            astore_capacity,
            astore_slot_bytes,
            ApplyConfig::default(),
        )
    }

    /// [`build`](Self::build) with an explicit PageStore apply-pipeline
    /// configuration (worker count, checkpoint cadence).
    pub fn build_with_apply(
        spec: ClusterSpec,
        astore_capacity: usize,
        astore_slot_bytes: u64,
        apply: ApplyConfig,
    ) -> StorageFabric {
        let env = spec.build();
        let cm = ClusterManager::new(
            Arc::clone(&env.faults),
            VTime::from_secs(3600),
            VTime::from_secs(60),
        );
        cm.attach_metrics(Arc::clone(&env.metrics));
        let astore_servers: Vec<Arc<AStoreServer>> = env
            .astore_nodes
            .iter()
            .enumerate()
            .map(|(i, n)| {
                AStoreServer::new(
                    i as NodeId,
                    Arc::clone(n),
                    astore_capacity,
                    astore_slot_bytes,
                    false,
                    VTime::from_millis(500),
                    env.model.clone(),
                )
            })
            .collect();
        for s in &astore_servers {
            cm.register_server(Arc::clone(s));
            cm.heartbeat(VTime::ZERO, s.node(), s.free_slots());
        }
        let blob_servers: Vec<Arc<BlobServer>> = env
            .storage_nodes
            .iter()
            .enumerate()
            .map(|(i, n)| {
                Arc::new(BlobServer::new(
                    100 + i as NodeId,
                    Arc::clone(n),
                    env.model.clone(),
                    8192,
                ))
            })
            .collect();
        let rpc = Arc::new(RpcFabric::with_metrics(
            env.model.clone(),
            Arc::clone(&env.faults),
            &env.metrics,
        ));
        let ps_servers: Vec<Arc<PageStoreServer>> = env
            .storage_nodes
            .iter()
            .enumerate()
            .map(|(i, n)| {
                PageStoreServer::with_apply(
                    200 + i as NodeId,
                    Arc::clone(n),
                    env.model.clone(),
                    apply.clone(),
                )
            })
            .collect();
        let pagestore = PageStore::new(PageStoreConfig::default(), Arc::clone(&rpc), ps_servers);
        StorageFabric {
            env,
            cm,
            astore_servers,
            blob_servers,
            pagestore,
            rpc,
        }
    }
}

/// Persistent engine metadata, mirrored in the meta page (space 0, page 1).
#[derive(Default, Clone, Debug, PartialEq, Eq)]
struct MetaState {
    /// Next page number per space (1-based; 0 means none allocated).
    next_page: HashMap<u32, u32>,
    /// Index roots: space -> (root page, level).
    roots: HashMap<u32, (u32, u8)>,
}

/// Bounded retries for transient stale-replica page reads (`get_frame`).
const PAGE_READ_RETRIES: u32 = 3;

/// The meta page's identity.
pub const META_PAGE: PageId = PageId {
    space_no: 0,
    page_no: 1,
};

fn encode_meta(m: &MetaState) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + m.next_page.len() * 8 + m.roots.len() * 9);
    let mut np: Vec<(u32, u32)> = m.next_page.iter().map(|(k, v)| (*k, *v)).collect();
    np.sort_unstable();
    out.extend_from_slice(&(np.len() as u32).to_le_bytes());
    for (s, n) in np {
        out.extend_from_slice(&s.to_le_bytes());
        out.extend_from_slice(&n.to_le_bytes());
    }
    let mut roots: Vec<(u32, (u32, u8))> = m.roots.iter().map(|(k, v)| (*k, *v)).collect();
    roots.sort_unstable();
    out.extend_from_slice(&(roots.len() as u32).to_le_bytes());
    for (s, (r, l)) in roots {
        out.extend_from_slice(&s.to_le_bytes());
        out.extend_from_slice(&r.to_le_bytes());
        out.push(l);
    }
    out
}

/// Decoded meta page: per-space next-page allocation marks and per-space
/// `(root page, height)` entries.
pub(crate) type MetaBlob = (HashMap<u32, u32>, HashMap<u32, (u32, u8)>);

pub(crate) fn decode_meta_blob(buf: &[u8]) -> Result<MetaBlob> {
    let m = decode_meta(buf)?;
    Ok((m.next_page, m.roots))
}

/// Bounds-checked little-endian u32 read; truncation is a codec error, not
/// a panic — meta pages come off the wire / storage and may be damaged.
fn meta_u32(buf: &[u8], pos: usize) -> Result<u32> {
    buf.get(pos..pos + 4)
        .and_then(|b| <[u8; 4]>::try_from(b).ok())
        .map(u32::from_le_bytes)
        .ok_or_else(|| EngineError::Codec("meta truncated".into()))
}

fn decode_meta(buf: &[u8]) -> Result<MetaState> {
    let err = || EngineError::Codec("meta truncated".into());
    let mut m = MetaState::default();
    let n = meta_u32(buf, 0)? as usize;
    let mut pos = 4;
    for _ in 0..n {
        let s = meta_u32(buf, pos)?;
        let v = meta_u32(buf, pos + 4)?;
        m.next_page.insert(s, v);
        pos += 8;
    }
    let r = meta_u32(buf, pos)? as usize;
    pos += 4;
    for _ in 0..r {
        let s = meta_u32(buf, pos)?;
        let root = meta_u32(buf, pos + 4)?;
        let level = *buf.get(pos + 8).ok_or_else(err)?;
        m.roots.insert(s, (root, level));
        pos += 9;
    }
    Ok(m)
}

/// Engine-level transaction counters + trace handle (component `core`).
struct DbStats {
    commits: Arc<Counter>,
    aborts: Arc<Counter>,
    commit_lat: Arc<LatencyRecorder>,
    trace: Arc<TraceLog>,
}

impl DbStats {
    fn register(registry: &MetricsRegistry) -> Self {
        DbStats {
            commits: registry.counter("core", "txn_commits"),
            aborts: registry.counter("core", "txn_aborts"),
            commit_lat: registry.latency("core", "txn_commit"),
            trace: Arc::clone(registry.trace()),
        }
    }
}

/// The engine.
pub struct Db {
    cfg: DbConfig,
    catalog: RwLock<Catalog>,
    bp: BufferPool,
    ebp: Option<Ebp>,
    wal: Wal,
    pagestore: Arc<PageStore>,
    locks: LockManager,
    astore_client: Option<Arc<AStoreClient>>,
    meta: Mutex<MetaState>,
    page_lsns: Mutex<HashMap<PageId, Lsn>>,
    ship_buf: Mutex<Vec<RedoRecord>>,
    /// Serializes drain-and-ship so concurrent committers cannot hand
    /// batches to PageStore in inverted LSN order (see `flush_ship`).
    ship_order: Mutex<()>,
    shipped_lsn: AtomicU64,
    next_txn: AtomicU64,
    space_latches: Mutex<HashMap<u32, Arc<RwLock<()>>>>,
    env: Arc<SimEnv>,
    log_segments: Vec<SegmentId>,
    rpc: Arc<RpcFabric>,
    last_truncate: AtomicU64,
    checkpoint_lock: Mutex<()>,
    stats: DbStats,
}

impl Db {
    /// Open a fresh engine against `fabric` and bootstrap the meta page.
    pub fn open(ctx: &mut SimCtx, fabric: &StorageFabric, cfg: DbConfig) -> Result<Arc<Db>> {
        let needs_astore = cfg.log == LogBackendKind::AStore || cfg.ebp.is_some();
        let astore_client = if needs_astore {
            let ep = RdmaEndpoint::with_metrics(
                fabric.env.model.clone(),
                Arc::clone(&fabric.env.faults),
                Arc::clone(&fabric.env.engine_nic),
                &fabric.env.metrics,
            );
            Some(AStoreClient::connect_with_policy(
                ctx,
                Arc::clone(&fabric.cm),
                ep,
                Arc::clone(&fabric.env.engine_cpu),
                fabric.env.model.clone(),
                ctx.client_id,
                VTime::from_millis(50),
                cfg.retry,
            ))
        } else {
            None
        };
        let mut log_segments = Vec::new();
        let backend: Box<dyn LogBackend> = match cfg.log {
            LogBackendKind::AStore => {
                let client = Arc::clone(astore_client.as_ref().ok_or_else(|| {
                    EngineError::Config("AStore log backend requires an AStore fabric".into())
                })?);
                let ring = SegmentRing::create(ctx, client, cfg.ring_segments, 0)?;
                log_segments = ring.segment_ids();
                Box::new(RingLog::new(ring))
            }
            LogBackendKind::BlobStore => {
                let group = BlobGroup::create(
                    ctx,
                    BlobGroupConfig::default(),
                    &fabric.blob_servers,
                    Arc::clone(&fabric.rpc),
                )?;
                Box::new(BlobGroupLog::new(
                    group,
                    Arc::clone(&fabric.env.engine_cpu),
                    fabric.env.model.clone(),
                ))
            }
        };
        let ebp = match cfg.ebp.as_ref() {
            Some(ecfg) => Some(Ebp::new(
                Arc::clone(astore_client.as_ref().ok_or_else(|| {
                    EngineError::Config("the EBP requires an AStore fabric".into())
                })?),
                ecfg.clone(),
            )),
            None => None,
        };
        let flush_policy = cfg.flush;
        let db = Db::assemble(
            fabric,
            cfg,
            Wal::with_metrics(backend, flush_policy, &fabric.env.metrics),
            astore_client,
            ebp,
            log_segments,
        );
        db.bootstrap_meta(ctx)?;
        db.wal.flush(ctx, db.wal.next_lsn())?;
        Ok(db)
    }

    /// Assemble an engine around pre-built parts (fresh open and crash
    /// recovery share this).
    pub(crate) fn assemble(
        fabric: &StorageFabric,
        cfg: DbConfig,
        wal: Wal,
        astore_client: Option<Arc<AStoreClient>>,
        ebp: Option<Ebp>,
        log_segments: Vec<SegmentId>,
    ) -> Arc<Db> {
        Arc::new(Db {
            bp: BufferPool::with_metrics(
                cfg.bp_pages,
                cfg.bp_shards,
                Arc::clone(&fabric.env.engine_cpu),
                fabric.env.model.clone(),
                &fabric.env.metrics,
            ),
            ebp,
            wal,
            pagestore: Arc::clone(&fabric.pagestore),
            locks: LockManager::with_metrics(64, cfg.lock_timeout, &fabric.env.metrics),
            stats: DbStats::register(&fabric.env.metrics),
            astore_client,
            catalog: RwLock::new(Catalog::new()),
            meta: Mutex::new(MetaState::default()),
            page_lsns: Mutex::new(HashMap::new()),
            ship_buf: Mutex::new(Vec::new()),
            ship_order: Mutex::new(()),
            shipped_lsn: AtomicU64::new(0),
            next_txn: AtomicU64::new(1),
            space_latches: Mutex::new(HashMap::new()),
            env: Arc::clone(&fabric.env),
            log_segments,
            rpc: Arc::clone(&fabric.rpc),
            last_truncate: AtomicU64::new(0),
            checkpoint_lock: Mutex::new(()),
            cfg,
        })
    }

    fn bootstrap_meta(&self, ctx: &mut SimCtx) -> Result<()> {
        let frame = self.get_frame(ctx, META_PAGE)?;
        let mut page = frame.page.write();
        self.log_and_apply(
            ctx,
            0,
            META_PAGE,
            PageOp::Format {
                ty: PageType::BTreeLeaf,
                level: 0,
            },
            None,
            &mut page,
        )?;
        let blob = encode_meta(&self.meta.lock());
        self.log_and_apply(
            ctx,
            0,
            META_PAGE,
            PageOp::InsertAt {
                slot: 0,
                cell: blob,
            },
            None,
            &mut page,
        )?;
        frame.mark_dirty();
        Ok(())
    }

    /// The engine configuration.
    pub fn config(&self) -> &DbConfig {
        &self.cfg
    }

    /// The simulated environment (resource/utilization inspection).
    pub fn env(&self) -> &Arc<SimEnv> {
        &self.env
    }

    /// The deployment-wide metrics registry every subsystem publishes into.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.env.metrics
    }

    /// The buffer pool (hit-rate stats in benches).
    pub fn buffer_pool(&self) -> &BufferPool {
        &self.bp
    }

    /// The EBP, when enabled.
    pub fn ebp(&self) -> Option<&Ebp> {
        self.ebp.as_ref()
    }

    /// The PageStore facade.
    pub fn pagestore(&self) -> &Arc<PageStore> {
        &self.pagestore
    }

    /// The AStore client, when the configuration uses AStore.
    pub fn astore_client(&self) -> Option<&Arc<AStoreClient>> {
        self.astore_client.as_ref()
    }

    /// SegmentRing segment ids — the engine's bootstrap catalog persists
    /// these so a restarted instance can recover the ring (§V-A). Empty on
    /// the baseline backend.
    pub fn log_segment_ids(&self) -> Vec<SegmentId> {
        self.log_segments.clone()
    }

    /// Register schema objects. Call before any data access. Table and
    /// secondary-index spaces are labelled in the lock-contention profile
    /// (`orders`, `orders.by_customer`, …) so the top-K contended-lock
    /// table in run reports names schema objects, not space numbers.
    pub fn define_schema(&self, f: impl FnOnce(&mut Catalog)) {
        let mut cat = self.catalog.write();
        f(&mut cat);
        for t in cat.tables() {
            self.locks.set_space_label(t.space_no, t.name.clone());
            for ix in &t.secondary {
                self.locks
                    .set_space_label(ix.space_no, format!("{}.{}", t.name, ix.name));
            }
        }
    }

    /// Create the B+Trees for every registered table (idempotent).
    pub fn create_tables(&self, ctx: &mut SimCtx) -> Result<()> {
        let spaces: Vec<u32> = {
            let cat = self.catalog.read();
            cat.tables()
                .iter()
                .flat_map(|t| {
                    std::iter::once(t.space_no).chain(t.secondary.iter().map(|ix| ix.space_no))
                })
                .collect()
        };
        for space in spaces {
            BTree::new(space).create(ctx, self, 0)?;
        }
        self.wal.flush(ctx, self.wal.next_lsn())?;
        self.flush_ship(ctx, false);
        Ok(())
    }

    /// Run `f` with the table definition for `name`.
    pub fn with_table<R>(&self, name: &str, f: impl FnOnce(&TableDef) -> R) -> Result<R> {
        let cat = self.catalog.read();
        Ok(f(cat.table(name)?))
    }

    /// Begin a transaction.
    pub fn begin(&self) -> TxnHandle {
        TxnHandle::new(self.next_txn.fetch_add(1, Ordering::Relaxed))
    }

    fn pk_key(table: &TableDef, row: &Row) -> Vec<u8> {
        let vals: Vec<Value> = table.pk_cols.iter().map(|i| row[*i].clone()).collect();
        encode_key(&vals)
    }

    fn sec_key(table: &TableDef, ix: &crate::catalog::IndexDef, row: &Row) -> Vec<u8> {
        let mut vals: Vec<Value> = ix.key_cols.iter().map(|i| row[*i].clone()).collect();
        if !ix.unique {
            for i in &table.pk_cols {
                vals.push(row[*i].clone());
            }
        }
        encode_key(&vals)
    }

    /// Insert a row.
    pub fn insert(
        &self,
        ctx: &mut SimCtx,
        txn: &mut TxnHandle,
        table: &str,
        row: Row,
    ) -> Result<()> {
        if !txn.is_active() {
            return Err(EngineError::TxnFinished);
        }
        // Error paths drop the guard → the span records as abandoned.
        let sp = self.stats.trace.span(ctx, "core", "insert");
        let t = self.catalog.read().table(table)?.clone();
        let key = Self::pk_key(&t, &row);
        self.lock_row(ctx, txn, t.space_no, key.clone(), LockMode::Exclusive)?;
        let mut payload = Vec::with_capacity(64);
        encode_row(&row, &mut payload);
        let undo = UndoInfo {
            index_space: t.space_no,
            op: UndoOp::Remove { key: key.clone() },
        };
        BTree::new(t.space_no)
            .insert(ctx, self, txn.id, &key, &payload, Some(undo.clone()))
            .map_err(|e| match e {
                EngineError::DuplicateKey { .. } => EngineError::DuplicateKey {
                    table: t.name.clone(),
                },
                e => e,
            })?;
        txn.undo.push(undo);
        for ix in &t.secondary {
            let skey = Self::sec_key(&t, ix, &row);
            let undo = UndoInfo {
                index_space: ix.space_no,
                op: UndoOp::Remove { key: skey.clone() },
            };
            BTree::new(ix.space_no).insert(ctx, self, txn.id, &skey, &key, Some(undo.clone()))?;
            txn.undo.push(undo);
        }
        sp.finish(ctx);
        Ok(())
    }

    /// Point read by primary key. With a transaction, takes a shared row
    /// lock; without, reads at read-committed (page latch only).
    pub fn get_by_pk(
        &self,
        ctx: &mut SimCtx,
        txn: Option<&mut TxnHandle>,
        table: &str,
        key_vals: &[Value],
    ) -> Result<Option<Row>> {
        let sp = self.stats.trace.span(ctx, "core", "get");
        let t = self.catalog.read().table(table)?.clone();
        let key = encode_key(key_vals);
        if let Some(txn) = txn {
            self.lock_row(ctx, txn, t.space_no, key.clone(), LockMode::Shared)?;
        }
        let row = match BTree::new(t.space_no).get(ctx, self, &key)? {
            Some(payload) => Some(decode_row(&payload)?),
            None => None,
        };
        sp.finish(ctx);
        Ok(row)
    }

    /// Update a row by primary key through a mutator closure.
    pub fn update_by_pk(
        &self,
        ctx: &mut SimCtx,
        txn: &mut TxnHandle,
        table: &str,
        key_vals: &[Value],
        mutate: impl FnOnce(&mut Row),
    ) -> Result<()> {
        if !txn.is_active() {
            return Err(EngineError::TxnFinished);
        }
        let sp = self.stats.trace.span(ctx, "core", "update");
        let t = self.catalog.read().table(table)?.clone();
        let key = encode_key(key_vals);
        self.lock_row(ctx, txn, t.space_no, key.clone(), LockMode::Exclusive)?;
        let tree = BTree::new(t.space_no);
        let old_payload = tree.get(ctx, self, &key)?.ok_or(EngineError::NotFound)?;
        let old_row = decode_row(&old_payload)?;
        let mut new_row = old_row.clone();
        mutate(&mut new_row);
        let mut new_payload = Vec::with_capacity(old_payload.len());
        encode_row(&new_row, &mut new_payload);
        let undo = UndoInfo {
            index_space: t.space_no,
            op: UndoOp::Revert {
                key: key.clone(),
                old_cell: old_payload.clone(),
            },
        };
        tree.update(ctx, self, txn.id, &key, &new_payload, Some(undo.clone()))?;
        txn.undo.push(undo);
        // Maintain secondary indexes whose keys changed.
        for ix in &t.secondary {
            let old_k = Self::sec_key(&t, ix, &old_row);
            let new_k = Self::sec_key(&t, ix, &new_row);
            if old_k != new_k {
                let u1 = UndoInfo {
                    index_space: ix.space_no,
                    op: UndoOp::ReInsert {
                        key: old_k.clone(),
                        old_cell: key.clone(),
                    },
                };
                BTree::new(ix.space_no).delete(ctx, self, txn.id, &old_k, Some(u1.clone()))?;
                txn.undo.push(u1);
                let u2 = UndoInfo {
                    index_space: ix.space_no,
                    op: UndoOp::Remove { key: new_k.clone() },
                };
                BTree::new(ix.space_no).insert(
                    ctx,
                    self,
                    txn.id,
                    &new_k,
                    &key,
                    Some(u2.clone()),
                )?;
                txn.undo.push(u2);
            }
        }
        sp.finish(ctx);
        Ok(())
    }

    /// Delete a row by primary key.
    pub fn delete_by_pk(
        &self,
        ctx: &mut SimCtx,
        txn: &mut TxnHandle,
        table: &str,
        key_vals: &[Value],
    ) -> Result<()> {
        if !txn.is_active() {
            return Err(EngineError::TxnFinished);
        }
        let sp = self.stats.trace.span(ctx, "core", "delete");
        let t = self.catalog.read().table(table)?.clone();
        let key = encode_key(key_vals);
        self.lock_row(ctx, txn, t.space_no, key.clone(), LockMode::Exclusive)?;
        let tree = BTree::new(t.space_no);
        let old_payload = tree.get(ctx, self, &key)?.ok_or(EngineError::NotFound)?;
        let old_row = decode_row(&old_payload)?;
        let undo = UndoInfo {
            index_space: t.space_no,
            op: UndoOp::ReInsert {
                key: key.clone(),
                old_cell: old_payload.clone(),
            },
        };
        tree.delete(ctx, self, txn.id, &key, Some(undo.clone()))?;
        txn.undo.push(undo);
        for ix in &t.secondary {
            let skey = Self::sec_key(&t, ix, &old_row);
            let u = UndoInfo {
                index_space: ix.space_no,
                op: UndoOp::ReInsert {
                    key: skey.clone(),
                    old_cell: key.clone(),
                },
            };
            BTree::new(ix.space_no).delete(ctx, self, txn.id, &skey, Some(u.clone()))?;
            txn.undo.push(u);
        }
        sp.finish(ctx);
        Ok(())
    }

    /// Look up rows through a secondary index by key prefix.
    pub fn index_lookup(
        &self,
        ctx: &mut SimCtx,
        table: &str,
        index: &str,
        prefix_vals: &[Value],
        limit: usize,
    ) -> Result<Vec<Row>> {
        let sp = self.stats.trace.span(ctx, "core", "index_lookup");
        let t = self.catalog.read().table(table)?.clone();
        let ix = t
            .secondary
            .iter()
            .find(|ix| ix.name == index)
            .ok_or_else(|| EngineError::UnknownTable(format!("{table}.{index}")))?;
        let prefix = encode_key(prefix_vals);
        let mut pks: Vec<Vec<u8>> = Vec::new();
        BTree::new(ix.space_no).scan(ctx, self, Some(&prefix), None, |k, v| {
            if !k.starts_with(&prefix) {
                return false;
            }
            pks.push(v.to_vec());
            pks.len() < limit
        })?;
        let tree = BTree::new(t.space_no);
        let mut rows = Vec::with_capacity(pks.len());
        for pk in pks {
            if let Some(payload) = tree.get(ctx, self, &pk)? {
                rows.push(decode_row(&payload)?);
            }
        }
        sp.finish(ctx);
        Ok(rows)
    }

    /// Full-table scan (read-committed), invoking `f` per row; stop early
    /// when `f` returns `false`.
    pub fn scan_table(
        &self,
        ctx: &mut SimCtx,
        table: &str,
        mut f: impl FnMut(&Row) -> bool,
    ) -> Result<()> {
        let t = self.catalog.read().table(table)?.clone();
        let mut err = None;
        BTree::new(t.space_no).scan(ctx, self, None, None, |_k, v| match decode_row(v) {
            Ok(row) => f(&row),
            Err(e) => {
                err = Some(e);
                false
            }
        })?;
        match err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn lock_row(
        &self,
        ctx: &mut SimCtx,
        txn: &mut TxnHandle,
        space: u32,
        key: Vec<u8>,
        mode: LockMode,
    ) -> Result<()> {
        let lk = (space, key);
        if txn.locks.contains(&lk) && mode == LockMode::Shared {
            return Ok(());
        }
        self.locks.acquire(ctx, txn.id, lk.clone(), mode)?;
        if !txn.locks.contains(&lk) {
            txn.locks.push(lk);
        }
        Ok(())
    }

    /// Commit: persist the commit record (the commit latency), release
    /// locks, ship REDO off the critical path.
    pub fn commit(&self, ctx: &mut SimCtx, txn: &mut TxnHandle) -> Result<()> {
        if !txn.is_active() {
            return Err(EngineError::TxnFinished);
        }
        let t0 = ctx.now();
        let sp = self.stats.trace.span(ctx, "core", "commit");
        let done = self.env.engine_cpu.acquire(
            ctx.now(),
            VTime::from_nanos(self.env.model.cpu_txn_overhead_ns),
        );
        ctx.wait_until(done);
        let commit_lsn = self.wal.log(ctx, &WalRecord::Commit { txn_id: txn.id })?;
        // The commit latency: flush the global log buffer (group commit).
        self.wal.flush(ctx, commit_lsn)?;
        self.flush_ship(ctx, false);
        self.maybe_auto_checkpoint(ctx)?;
        self.locks.release_all(ctx.now(), txn.id, &txn.locks);
        txn.locks.clear();
        txn.undo.clear();
        txn.status = TxnStatus::Committed;
        self.stats.commits.inc();
        self.stats.commit_lat.record(ctx.now() - t0);
        sp.finish(ctx);
        Ok(())
    }

    /// Abort: apply logical undo in reverse, log the abort, release locks.
    pub fn abort(&self, ctx: &mut SimCtx, txn: &mut TxnHandle) -> Result<()> {
        if !txn.is_active() {
            return Err(EngineError::TxnFinished);
        }
        let sp = self.stats.trace.span(ctx, "core", "abort");
        let undo: Vec<UndoInfo> = txn.undo.drain(..).collect();
        for u in undo.iter().rev() {
            self.apply_undo(ctx, txn.id, u)?;
        }
        self.wal.log(ctx, &WalRecord::Abort { txn_id: txn.id })?;
        self.flush_ship(ctx, false);
        self.locks.release_all(ctx.now(), txn.id, &txn.locks);
        txn.locks.clear();
        txn.status = TxnStatus::Aborted;
        self.stats.aborts.inc();
        sp.finish(ctx);
        Ok(())
    }

    /// Apply one logical undo operation (abort and crash recovery paths).
    /// Idempotent: a missing key on Remove, or an existing key on
    /// ReInsert, are tolerated (the compensation may already be in place).
    pub(crate) fn apply_undo(&self, ctx: &mut SimCtx, txn_id: u64, u: &UndoInfo) -> Result<()> {
        let tree = BTree::new(u.index_space);
        match &u.op {
            UndoOp::Remove { key } => match tree.delete(ctx, self, txn_id, key, None) {
                Ok(()) | Err(EngineError::NotFound) => Ok(()),
                Err(e) => Err(e),
            },
            UndoOp::Revert { key, old_cell } => {
                match tree.update(ctx, self, txn_id, key, old_cell, None) {
                    Ok(()) => Ok(()),
                    Err(EngineError::NotFound) => {
                        tree.insert(ctx, self, txn_id, key, old_cell, None)
                    }
                    Err(e) => Err(e),
                }
            }
            UndoOp::ReInsert { key, old_cell } => {
                match tree.insert(ctx, self, txn_id, key, old_cell, None) {
                    Ok(()) => Ok(()),
                    Err(EngineError::DuplicateKey { .. }) => Ok(()),
                    Err(e) => Err(e),
                }
            }
        }
    }

    /// Ship buffered REDO to PageStore. With `sync == false` the transfer
    /// happens in a forked context (off the caller's critical path) —
    /// matching veDB's asynchronous REDO shipping; `sync == true` blocks
    /// (checkpoint / pre-read barrier).
    pub fn flush_ship(&self, ctx: &mut SimCtx, sync: bool) {
        // Only durable (flushed) records may reach PageStore — otherwise a
        // crash could leave PageStore with effects whose log was lost.
        let durable = self.wal.flushed_lsn();
        // Drain and ship under one lock: if two committers drained
        // concurrently and raced to `ship()`, the later-LSN batch could
        // reach the PageStore facade first; replicas would then drop the
        // earlier batch as a back-link duplicate and serve stale page
        // images (the `slot out of range` flake, ROADMAP item 6).
        let _order = self.ship_order.lock();
        let records: Vec<RedoRecord> = {
            let mut buf = self.ship_buf.lock();
            if buf.is_empty() {
                return;
            }
            let mut records = std::mem::take(&mut *buf);
            records.sort_by_key(|r| r.lsn);
            let keep: Vec<RedoRecord> = records
                .iter()
                .filter(|r| r.lsn >= durable)
                .cloned()
                .collect();
            records.retain(|r| r.lsn < durable);
            *buf = keep;
            records
        };
        if records.is_empty() {
            return;
        }
        let max_lsn = records.last().map(|r| r.lsn).unwrap_or(0);
        // Always executed in a forked context: shipping consumes storage
        // resources but is off the commit critical path (§III); `sync`
        // callers additionally wait for completion.
        let mut ship_ctx = ctx.fork();
        if self.pagestore.ship(&mut ship_ctx, &records).is_ok() {
            self.shipped_lsn.fetch_max(max_lsn, Ordering::AcqRel);
        } else {
            // Quorum failure: the batch must go back in the buffer. Losing
            // it here would leave PageStore permanently unable to replay
            // these LSNs (every later read of the touched pages would fail
            // `NotYetApplied` forever).
            self.ship_buf.lock().extend(records);
        }
        if sync {
            ctx.wait_until(ship_ctx.now());
        }
    }

    /// Checkpoint: ship everything, then let the log reclaim space below
    /// the shipped LSN — bounded by PageStore's durable truncation
    /// watermark, so WAL records a degraded replica quorum has not yet
    /// secured stay re-shippable (the watermark RPC runs on a forked
    /// clock: a slow storage node must not stall the commit path).
    pub fn checkpoint(&self, ctx: &mut SimCtx) -> Result<()> {
        let _g = self.checkpoint_lock.lock();
        self.wal.flush(ctx, self.wal.next_lsn())?;
        self.flush_ship(ctx, true);
        let shipped = self.shipped_lsn.load(Ordering::Acquire);
        let mut bg = ctx.fork();
        let wm = self.pagestore.truncation_watermark(&mut bg);
        let upto = shipped.min(wm);
        self.wal.truncate(ctx, upto)?;
        self.last_truncate.fetch_max(upto, Ordering::AcqRel);
        Ok(())
    }

    /// Highest LSN shipped (and quorum-acked) to PageStore.
    pub fn shipped_lsn(&self) -> Lsn {
        self.shipped_lsn.load(Ordering::Acquire)
    }

    /// Checkpoint when the log's working window exceeds the configured
    /// budget (invoked on the commit path; cheap when nothing to do).
    fn maybe_auto_checkpoint(&self, ctx: &mut SimCtx) -> Result<()> {
        let used = self
            .wal
            .next_lsn()
            .saturating_sub(self.last_truncate.load(Ordering::Acquire));
        if used > self.cfg.auto_checkpoint_bytes {
            self.checkpoint(ctx)?;
        }
        Ok(())
    }

    /// Known latest LSN of a page (0 when never touched by this engine).
    pub fn page_lsn(&self, pid: PageId) -> Lsn {
        *self.page_lsns.lock().get(&pid).unwrap_or(&0)
    }

    /// Read a page image for push-down planning / remote execution support
    /// — follows BP → EBP → PageStore without caching the result.
    pub fn load_page_for_pushdown(&self, ctx: &mut SimCtx, pid: PageId) -> Result<Page> {
        let frame = self.get_frame(ctx, pid)?;
        let page = frame.page.read();
        Ok(page.clone())
    }

    /// The shared RPC fabric (push-down task dispatch).
    pub fn rpc(&self) -> &Arc<RpcFabric> {
        &self.rpc
    }

    /// §VIII extension: warm the local buffer pool from the Extended
    /// Buffer Pool after a restart ("speed up the warm-up process for the
    /// buffer pool during crash recovery"). Loads up to `limit` cached
    /// pages — most-recently-used first is not tracked across restarts, so
    /// the scan order is index order. Returns how many pages were loaded.
    pub fn warmup_from_ebp(&self, ctx: &mut SimCtx, limit: usize) -> usize {
        let Some(ebp) = &self.ebp else { return 0 };
        let mut loaded = 0;
        for pid in ebp.cached_pages(limit) {
            if self.get_frame(ctx, pid).is_ok() {
                loaded += 1;
            }
        }
        loaded
    }

    /// The WAL (recovery and tests).
    pub fn wal(&self) -> &Wal {
        &self.wal
    }

    /// Recovery-only: queue a REDO record read back from the log for
    /// re-shipping to PageStore.
    pub(crate) fn enqueue_redo_for_recovery(&self, redo: RedoRecord) {
        self.ship_buf.lock().push(redo);
    }

    pub(crate) fn install_meta(
        &self,
        next_page: HashMap<u32, u32>,
        roots: HashMap<u32, (u32, u8)>,
    ) {
        let mut m = self.meta.lock();
        m.next_page = next_page;
        m.roots = roots;
    }

    pub(crate) fn install_page_lsns(&self, lsns: HashMap<PageId, Lsn>) {
        *self.page_lsns.lock() = lsns;
    }

    /// Allocated page count of a space (push-down page enumeration).
    pub fn space_pages(&self, space: u32) -> u32 {
        self.meta.lock().next_page.get(&space).copied().unwrap_or(0)
    }

    fn persist_meta(&self, ctx: &mut SimCtx, txn: u64) -> Result<()> {
        let blob = encode_meta(&self.meta.lock());
        let frame = self.get_frame(ctx, META_PAGE)?;
        let mut page = frame.page.write();
        self.log_and_apply(
            ctx,
            txn,
            META_PAGE,
            PageOp::Update {
                slot: 0,
                cell: blob,
            },
            None,
            &mut page,
        )?;
        frame.mark_dirty();
        Ok(())
    }
}

/// Eviction sink that enforces the WAL rule before handing pages to the
/// EBP: a page image may only be persisted once its mutations' log records
/// are durable.
struct DbEvictionSink<'a>(&'a Db);

impl EvictionSink for DbEvictionSink<'_> {
    fn on_evict(&self, ctx: &mut SimCtx, page_id: PageId, page: &Page, lsn: Lsn) {
        // Never cache the meta page (recovery reads it from PageStore).
        if page_id == META_PAGE {
            self.0.env().metrics.counter("core", "ebp_skips").inc();
            return;
        }
        let Some(ebp) = &self.0.ebp else { return };
        if lsn > self.0.wal.flushed_lsn() && self.0.wal.flush(ctx, lsn).is_err() {
            self.0.env().metrics.counter("core", "ebp_skips").inc();
            return;
        }
        let _ = ebp.write_page(ctx, page_id, page, lsn);
    }
}

impl TreeAccess for Db {
    fn get_frame(&self, ctx: &mut SimCtx, pid: PageId) -> Result<Arc<Frame>> {
        let sink_impl = DbEvictionSink(self);
        let sink: Option<&dyn EvictionSink> =
            self.ebp.as_ref().map(|_| &sink_impl as &dyn EvictionSink);
        let min_lsn = self.page_lsn(pid);
        self.bp.get(ctx, pid, sink, |ctx| {
            // EBP first (§V-C), then PageStore.
            if let Some(ebp) = &self.ebp {
                if let Some(page) = ebp.read_page(ctx, pid, min_lsn) {
                    return Ok(page);
                }
            }
            // Make sure PageStore has everything we logged for this page:
            // force the log (WAL rule), then ship.
            if min_lsn > self.shipped_lsn.load(Ordering::Acquire) {
                self.wal.flush(ctx, min_lsn)?;
                self.flush_ship(ctx, true);
            }
            // Stale-replica reads are transient: a replica whose apply
            // watermark lags can serve an older page image (surfacing as
            // `SlotOutOfRange` / `NotYetApplied`). Re-drive shipping and
            // retry with virtual-time backoff before failing the query.
            let mut attempt = 0u32;
            loop {
                match self.pagestore.read_page(ctx, pid, min_lsn) {
                    Ok(bytes) => return Ok(Page::from_bytes(&bytes)?),
                    Err(PageStoreError::UnknownPage(_)) if min_lsn == 0 => {
                        // Freshly allocated page: starts blank.
                        return Ok(Page::new());
                    }
                    Err(e) if e.is_retryable() && attempt < PAGE_READ_RETRIES => {
                        attempt += 1;
                        self.wal.flush(ctx, min_lsn)?;
                        self.flush_ship(ctx, true);
                        ctx.advance(VTime::from_micros(50u64 << attempt));
                    }
                    Err(e) => return Err(e.into()),
                }
            }
        })
    }

    fn alloc_page(&self, ctx: &mut SimCtx, txn: u64, space: u32) -> Result<u32> {
        let page_no = {
            let mut m = self.meta.lock();
            let next = m.next_page.entry(space).or_insert(0);
            *next += 1;
            *next
        };
        self.persist_meta(ctx, txn)?;
        Ok(page_no)
    }

    fn root_of(&self, space: u32) -> (u32, u8) {
        self.meta
            .lock()
            .roots
            .get(&space)
            .copied()
            .unwrap_or((0, 0))
    }

    fn set_root(&self, ctx: &mut SimCtx, txn: u64, space: u32, root: u32, level: u8) -> Result<()> {
        self.meta.lock().roots.insert(space, (root, level));
        self.persist_meta(ctx, txn)
    }

    fn log_and_apply(
        &self,
        ctx: &mut SimCtx,
        txn: u64,
        pid: PageId,
        op: PageOp,
        undo: Option<UndoInfo>,
        page: &mut Page,
    ) -> Result<Lsn> {
        let proto = RedoRecord {
            lsn: 0,
            prev_same_segment: 0,
            txn_id: txn,
            page: pid,
            op,
        };
        let (lsn, redo) = self.wal.log_page(ctx, proto, undo)?;
        redo.apply(page)?;
        self.ship_buf.lock().push(redo);
        self.page_lsns.lock().insert(pid, lsn);
        if let Some(ebp) = &self.ebp {
            if ebp.contains(pid) {
                ebp.note_page_lsn(ctx, pid, lsn);
            }
        }
        Ok(lsn)
    }

    fn space_pages(&self, space: u32) -> u32 {
        Db::space_pages(self, space)
    }

    fn charge_cpu(&self, ctx: &mut SimCtx, ns: u64) {
        let done = self
            .env
            .engine_cpu
            .acquire(ctx.now(), VTime::from_nanos(ns));
        ctx.wait_until(done);
    }

    fn space_latch(&self, space: u32) -> Arc<RwLock<()>> {
        let mut latches = self.space_latches.lock();
        Arc::clone(
            latches
                .entry(space)
                .or_insert_with(|| Arc::new(RwLock::new(()))),
        )
    }
}
