//! Clustered B+Trees over buffer-pool pages.
//!
//! Every index (clustered table or secondary) is a B+Tree in its own
//! tablespace. Leaf cells are `[klen u16][key][payload]`; internal cells
//! are `[klen u16][key][child u32]` where the first cell of the leftmost
//! node carries the empty key (−∞). Keys are memcomparable byte strings
//! ([`crate::row::encode_key`]), so pages binary-search raw bytes. All
//! trees have unique keys — non-unique secondary indexes append the
//! primary key to the index key before reaching this layer.
//!
//! Every mutation is logged through [`TreeAccess::log_and_apply`] *before*
//! the page change becomes visible (the WAL rule), and splits decompose
//! into plain page-level REDO ops (`Format`, `InsertAt`, `Delete`,
//! `SetNextPage`), so PageStore replays structure changes with the same
//! code path as row changes.
//!
//! Concurrency: a per-space `RwLock` (supplied by [`TreeAccess`])
//! serializes structural writers against readers in *real* time; virtual
//! time is unaffected (contended virtual resources are charged
//! explicitly), so this latch protects memory safety without distorting
//! the simulation.

use std::sync::Arc;

use vedb_astore::{Lsn, PageId};
use vedb_pagestore::page::{Page, PageType};
use vedb_pagestore::redo::PageOp;
use vedb_sim::SimCtx;

use crate::buffer::Frame;
use crate::wal::UndoInfo;
use crate::{EngineError, Result};

/// Services the tree needs from the engine.
pub trait TreeAccess {
    /// Fetch a page through the cache hierarchy.
    fn get_frame(&self, ctx: &mut SimCtx, pid: PageId) -> Result<Arc<Frame>>;
    /// Allocate a fresh page number in `space` (persisted via the meta
    /// page).
    fn alloc_page(&self, ctx: &mut SimCtx, txn: u64, space: u32) -> Result<u32>;
    /// Current root of `space`: `(page_no, level)`; `(0, _)` = empty tree.
    fn root_of(&self, space: u32) -> (u32, u8);
    /// Persist a root change.
    fn set_root(&self, ctx: &mut SimCtx, txn: u64, space: u32, root: u32, level: u8) -> Result<()>;
    /// WAL-log `op` against `pid` and apply it to `page` (held exclusively
    /// by the caller). Returns the record's LSN.
    fn log_and_apply(
        &self,
        ctx: &mut SimCtx,
        txn: u64,
        pid: PageId,
        op: PageOp,
        undo: Option<UndoInfo>,
        page: &mut Page,
    ) -> Result<Lsn>;
    /// Charge engine CPU (per-row/level costs).
    fn charge_cpu(&self, ctx: &mut SimCtx, ns: u64);
    /// Number of allocated pages in `space` (read-ahead bound).
    fn space_pages(&self, space: u32) -> u32;
    /// The per-space structural latch.
    fn space_latch(&self, space: u32) -> Arc<parking_lot::RwLock<()>>;
}

/// Build a leaf cell.
pub fn leaf_cell(key: &[u8], payload: &[u8]) -> Vec<u8> {
    let mut c = Vec::with_capacity(2 + key.len() + payload.len());
    c.extend_from_slice(&(key.len() as u16).to_le_bytes());
    c.extend_from_slice(key);
    c.extend_from_slice(payload);
    c
}

/// Split a leaf cell into (key, payload).
pub fn parse_leaf_cell(cell: &[u8]) -> (&[u8], &[u8]) {
    let klen = u16::from_le_bytes([cell[0], cell[1]]) as usize;
    (&cell[2..2 + klen], &cell[2 + klen..])
}

fn internal_cell(key: &[u8], child: u32) -> Vec<u8> {
    let mut c = Vec::with_capacity(6 + key.len());
    c.extend_from_slice(&(key.len() as u16).to_le_bytes());
    c.extend_from_slice(key);
    c.extend_from_slice(&child.to_le_bytes());
    c
}

fn parse_internal_cell(cell: &[u8]) -> (&[u8], u32) {
    let klen = u16::from_le_bytes([cell[0], cell[1]]) as usize;
    let child = u32::from_le_bytes(cell[2 + klen..2 + klen + 4].try_into().unwrap());
    (&cell[2..2 + klen], child)
}

/// Binary search a page's cells for `key`. `Ok(slot)` = exact match,
/// `Err(slot)` = insertion position.
fn search_cells(page: &Page, key: &[u8]) -> std::result::Result<usize, usize> {
    let (mut lo, mut hi) = (0usize, page.n_slots());
    while lo < hi {
        let mid = (lo + hi) / 2;
        let cell = page.get(mid).expect("slot in range");
        let (ckey, _) = parse_leaf_cell(cell); // same prefix layout for both kinds
        match ckey.cmp(key) {
            std::cmp::Ordering::Less => lo = mid + 1,
            std::cmp::Ordering::Greater => hi = mid,
            std::cmp::Ordering::Equal => return Ok(mid),
        }
    }
    Err(lo)
}

/// Child pointer to follow for `key` in an internal page: the last cell
/// whose key is `<= key`.
fn child_for(page: &Page, key: &[u8]) -> u32 {
    let slot = match search_cells(page, key) {
        Ok(s) => s,
        Err(0) => 0, // shouldn't happen (cell 0 is -inf), but be safe
        Err(s) => s - 1,
    };
    let (_, child) = parse_internal_cell(page.get(slot).expect("internal cell"));
    child
}

/// One B+Tree (stateless handle; all state lives in pages + meta).
pub struct BTree {
    /// Tablespace of the tree.
    pub space: u32,
}

impl BTree {
    /// Handle for the tree in `space`.
    pub fn new(space: u32) -> BTree {
        BTree { space }
    }

    fn pid(&self, page_no: u32) -> PageId {
        PageId::new(self.space, page_no)
    }

    /// Create the (empty) tree: allocates and formats the root leaf.
    pub fn create(&self, ctx: &mut SimCtx, access: &dyn TreeAccess, txn: u64) -> Result<()> {
        let latch = access.space_latch(self.space);
        let _g = latch.write();
        let (root, _) = access.root_of(self.space);
        if root != 0 {
            return Ok(()); // already exists
        }
        let page_no = access.alloc_page(ctx, txn, self.space)?;
        let frame = access.get_frame(ctx, self.pid(page_no))?;
        {
            let mut page = frame.page.write();
            access.log_and_apply(
                ctx,
                txn,
                self.pid(page_no),
                PageOp::Format {
                    ty: PageType::BTreeLeaf,
                    level: 0,
                },
                None,
                &mut page,
            )?;
        }
        access.set_root(ctx, txn, self.space, page_no, 0)
    }

    /// Descend to the leaf that should hold `key`; returns the path of
    /// page numbers from root (exclusive of leaf) and the leaf page no.
    fn descend(
        &self,
        ctx: &mut SimCtx,
        access: &dyn TreeAccess,
        key: &[u8],
    ) -> Result<(Vec<u32>, u32)> {
        let (root, mut level) = access.root_of(self.space);
        if root == 0 {
            return Err(EngineError::Query(format!(
                "tree {} not created",
                self.space
            )));
        }
        let mut path = Vec::new();
        let mut current = root;
        while level > 0 {
            access.charge_cpu(ctx, 400);
            let frame = access.get_frame(ctx, self.pid(current))?;
            let page = frame.page.read();
            path.push(current);
            current = child_for(&page, key);
            level -= 1;
        }
        access.charge_cpu(ctx, 400);
        Ok((path, current))
    }

    /// Point lookup: the payload stored under `key`.
    pub fn get(
        &self,
        ctx: &mut SimCtx,
        access: &dyn TreeAccess,
        key: &[u8],
    ) -> Result<Option<Vec<u8>>> {
        let latch = access.space_latch(self.space);
        let _g = latch.read();
        let (root, _) = access.root_of(self.space);
        if root == 0 {
            return Ok(None);
        }
        let (_, leaf) = self.descend(ctx, access, key)?;
        let frame = access.get_frame(ctx, self.pid(leaf))?;
        let page = frame.page.read();
        match search_cells(&page, key) {
            Ok(slot) => {
                let (_, payload) = parse_leaf_cell(page.get(slot)?);
                Ok(Some(payload.to_vec()))
            }
            Err(_) => Ok(None),
        }
    }

    /// Insert `key -> payload`. Fails with [`EngineError::DuplicateKey`] if
    /// present. `undo` is attached to the leaf insert record.
    pub fn insert(
        &self,
        ctx: &mut SimCtx,
        access: &dyn TreeAccess,
        txn: u64,
        key: &[u8],
        payload: &[u8],
        undo: Option<UndoInfo>,
    ) -> Result<()> {
        let latch = access.space_latch(self.space);
        let _g = latch.write();
        let cell = leaf_cell(key, payload);
        loop {
            let (path, leaf_no) = self.descend(ctx, access, key)?;
            let frame = access.get_frame(ctx, self.pid(leaf_no))?;
            let mut page = frame.page.write();
            let slot = match search_cells(&page, key) {
                Ok(_) => {
                    return Err(EngineError::DuplicateKey {
                        table: format!("space {}", self.space),
                    })
                }
                Err(s) => s,
            };
            if page.can_insert(cell.len()) {
                access.log_and_apply(
                    ctx,
                    txn,
                    self.pid(leaf_no),
                    PageOp::InsertAt {
                        slot: slot as u16,
                        cell: cell.clone(),
                    },
                    undo,
                    &mut page,
                )?;
                frame.mark_dirty();
                access.charge_cpu(ctx, 1_000);
                return Ok(());
            }
            drop(page);
            // Split and retry.
            self.split(ctx, access, txn, &path, leaf_no)?;
        }
    }

    /// Split page `target_no` (leaf or internal), pushing a separator into
    /// its parent (splitting upward as needed).
    fn split(
        &self,
        ctx: &mut SimCtx,
        access: &dyn TreeAccess,
        txn: u64,
        path: &[u32],
        target_no: u32,
    ) -> Result<()> {
        let target_pid = self.pid(target_no);
        let frame = access.get_frame(ctx, target_pid)?;
        let new_no = access.alloc_page(ctx, txn, self.space)?;
        let new_pid = self.pid(new_no);
        let new_frame = access.get_frame(ctx, new_pid)?;

        let (is_leaf, level, n, next_link) = {
            let p = frame.page.read();
            (
                p.page_type() == PageType::BTreeLeaf,
                p.level(),
                p.n_slots(),
                p.next_page(),
            )
        };
        assert!(n >= 2, "cannot split a page with {n} cells");
        let mid = n / 2;

        // Format the right sibling.
        {
            let mut np = new_frame.page.write();
            access.log_and_apply(
                ctx,
                txn,
                new_pid,
                PageOp::Format {
                    ty: if is_leaf {
                        PageType::BTreeLeaf
                    } else {
                        PageType::BTreeInternal
                    },
                    level,
                },
                None,
                &mut np,
            )?;
            if is_leaf {
                access.log_and_apply(
                    ctx,
                    txn,
                    new_pid,
                    PageOp::SetNextPage { page_no: next_link },
                    None,
                    &mut np,
                )?;
            }
        }
        // Move the upper half.
        let moved: Vec<Vec<u8>> = {
            let p = frame.page.read();
            (mid..n).map(|i| p.get(i).expect("cell").to_vec()).collect()
        };
        let sep_key = parse_leaf_cell(&moved[0]).0.to_vec();
        {
            let mut np = new_frame.page.write();
            for (i, cell) in moved.iter().enumerate() {
                access.log_and_apply(
                    ctx,
                    txn,
                    new_pid,
                    PageOp::InsertAt {
                        slot: i as u16,
                        cell: cell.clone(),
                    },
                    None,
                    &mut np,
                )?;
            }
            new_frame.mark_dirty();
        }
        {
            let mut p = frame.page.write();
            for i in (mid..n).rev() {
                access.log_and_apply(
                    ctx,
                    txn,
                    target_pid,
                    PageOp::Delete { slot: i as u16 },
                    None,
                    &mut p,
                )?;
            }
            if is_leaf {
                access.log_and_apply(
                    ctx,
                    txn,
                    target_pid,
                    PageOp::SetNextPage { page_no: new_no },
                    None,
                    &mut p,
                )?;
            }
            frame.mark_dirty();
        }

        // Insert the separator into the parent (or grow a new root).
        let parent_cell = internal_cell(&sep_key, new_no);
        match path.last() {
            Some(&parent_no) => {
                let parent_pid = self.pid(parent_no);
                let pframe = access.get_frame(ctx, parent_pid)?;
                let fits = {
                    let pp = pframe.page.read();
                    pp.can_insert(parent_cell.len())
                };
                if !fits {
                    self.split(ctx, access, txn, &path[..path.len() - 1], parent_no)?;
                    // The separator's home may have moved: re-descend to the
                    // internal node now covering sep_key at this level.
                    return self.insert_separator(ctx, access, txn, &sep_key, new_no, level + 1);
                }
                let mut pp = pframe.page.write();
                let slot = match search_cells(&pp, &sep_key) {
                    Ok(s) => s + 1,
                    Err(s) => s,
                };
                access.log_and_apply(
                    ctx,
                    txn,
                    parent_pid,
                    PageOp::InsertAt {
                        slot: slot as u16,
                        cell: parent_cell,
                    },
                    None,
                    &mut pp,
                )?;
                pframe.mark_dirty();
            }
            None => {
                // Root split.
                let new_root_no = access.alloc_page(ctx, txn, self.space)?;
                let root_pid = self.pid(new_root_no);
                let rframe = access.get_frame(ctx, root_pid)?;
                let mut rp = rframe.page.write();
                access.log_and_apply(
                    ctx,
                    txn,
                    root_pid,
                    PageOp::Format {
                        ty: PageType::BTreeInternal,
                        level: level + 1,
                    },
                    None,
                    &mut rp,
                )?;
                access.log_and_apply(
                    ctx,
                    txn,
                    root_pid,
                    PageOp::InsertAt {
                        slot: 0,
                        cell: internal_cell(&[], target_no),
                    },
                    None,
                    &mut rp,
                )?;
                access.log_and_apply(
                    ctx,
                    txn,
                    root_pid,
                    PageOp::InsertAt {
                        slot: 1,
                        cell: parent_cell,
                    },
                    None,
                    &mut rp,
                )?;
                rframe.mark_dirty();
                drop(rp);
                access.set_root(ctx, txn, self.space, new_root_no, level + 1)?;
            }
        }
        Ok(())
    }

    /// After a parent split, place a separator at `target_level` by
    /// descending from the root.
    fn insert_separator(
        &self,
        ctx: &mut SimCtx,
        access: &dyn TreeAccess,
        txn: u64,
        sep_key: &[u8],
        child: u32,
        target_level: u8,
    ) -> Result<()> {
        let (root, mut level) = access.root_of(self.space);
        let mut current = root;
        while level > target_level {
            let frame = access.get_frame(ctx, self.pid(current))?;
            let page = frame.page.read();
            current = child_for(&page, sep_key);
            level -= 1;
        }
        let pid = self.pid(current);
        let frame = access.get_frame(ctx, pid)?;
        let mut page = frame.page.write();
        let cell = internal_cell(sep_key, child);
        debug_assert!(page.can_insert(cell.len()), "freshly split parent must fit");
        let slot = match search_cells(&page, sep_key) {
            Ok(s) => s + 1,
            Err(s) => s,
        };
        access.log_and_apply(
            ctx,
            txn,
            pid,
            PageOp::InsertAt {
                slot: slot as u16,
                cell,
            },
            None,
            &mut page,
        )?;
        frame.mark_dirty();
        Ok(())
    }

    /// Replace the payload under `key`. Falls back to delete+insert when
    /// the grown cell no longer fits its page.
    pub fn update(
        &self,
        ctx: &mut SimCtx,
        access: &dyn TreeAccess,
        txn: u64,
        key: &[u8],
        payload: &[u8],
        undo: Option<UndoInfo>,
    ) -> Result<()> {
        let latch = access.space_latch(self.space);
        let _g = latch.write();
        let (_, leaf_no) = self.descend(ctx, access, key)?;
        let frame = access.get_frame(ctx, self.pid(leaf_no))?;
        let mut page = frame.page.write();
        let slot = match search_cells(&page, key) {
            Ok(s) => s,
            Err(_) => return Err(EngineError::NotFound),
        };
        let cell = leaf_cell(key, payload);
        let old_len = page.get(slot)?.len();
        let fits =
            cell.len() <= old_len || cell.len() <= page.free_space_after_compaction() + old_len;
        if fits {
            access.log_and_apply(
                ctx,
                txn,
                self.pid(leaf_no),
                PageOp::Update {
                    slot: slot as u16,
                    cell,
                },
                undo,
                &mut page,
            )?;
            frame.mark_dirty();
            access.charge_cpu(ctx, 1_000);
            return Ok(());
        }
        // Grow beyond the page: delete + re-insert (REDO-wise two ops; the
        // caller's single logical undo still reverts it correctly).
        access.log_and_apply(
            ctx,
            txn,
            self.pid(leaf_no),
            PageOp::Delete { slot: slot as u16 },
            None,
            &mut page,
        )?;
        frame.mark_dirty();
        drop(page);
        drop(_g);
        self.insert(ctx, access, txn, key, payload, undo)
    }

    /// Delete `key`.
    pub fn delete(
        &self,
        ctx: &mut SimCtx,
        access: &dyn TreeAccess,
        txn: u64,
        key: &[u8],
        undo: Option<UndoInfo>,
    ) -> Result<()> {
        let latch = access.space_latch(self.space);
        let _g = latch.write();
        let (_, leaf_no) = self.descend(ctx, access, key)?;
        let frame = access.get_frame(ctx, self.pid(leaf_no))?;
        let mut page = frame.page.write();
        let slot = match search_cells(&page, key) {
            Ok(s) => s,
            Err(_) => return Err(EngineError::NotFound),
        };
        access.log_and_apply(
            ctx,
            txn,
            self.pid(leaf_no),
            PageOp::Delete { slot: slot as u16 },
            undo,
            &mut page,
        )?;
        frame.mark_dirty();
        access.charge_cpu(ctx, 1_000);
        Ok(())
    }

    /// Range scan: call `f(key, payload)` for every entry with
    /// `start <= key < end` (whole tree when both are `None`); stop early
    /// if `f` returns `false`.
    pub fn scan(
        &self,
        ctx: &mut SimCtx,
        access: &dyn TreeAccess,
        start: Option<&[u8]>,
        end: Option<&[u8]>,
        mut f: impl FnMut(&[u8], &[u8]) -> bool,
    ) -> Result<()> {
        let latch = access.space_latch(self.space);
        let _g = latch.read();
        let (root, _) = access.root_of(self.space);
        if root == 0 {
            return Ok(());
        }
        let seek = start.unwrap_or(&[]);
        let (_, leaf_no) = self.descend(ctx, access, seek)?;
        {
            let frame = access.get_frame(ctx, self.pid(leaf_no))?;
            let page = frame.page.read();
            let from = match start {
                Some(k) => match search_cells(&page, k) {
                    Ok(s) => s,
                    Err(s) => s,
                },
                None => 0,
            };
            for i in from..page.n_slots() {
                let (k, v) = parse_leaf_cell(page.get(i)?);
                if let Some(e) = end {
                    if k >= e {
                        return Ok(());
                    }
                }
                access.charge_cpu(ctx, 150);
                if !f(k, v) {
                    return Ok(());
                }
            }
            let next = page.next_page();
            if next == 0 {
                return Ok(());
            }
            // After the first leaf the start bound no longer matters.
            self.scan_rest(ctx, access, next, end, &mut f)
        }
    }

    /// Linear read-ahead depth for scans: the engine fetches this many
    /// pages of the space concurrently ahead of the scan cursor (the
    /// equivalent of MySQL's linear read-ahead; without it a cold scan
    /// pays a full remote round trip per page).
    pub const READ_AHEAD: u32 = 16;

    fn scan_rest(
        &self,
        ctx: &mut SimCtx,
        access: &dyn TreeAccess,
        mut leaf_no: u32,
        end: Option<&[u8]>,
        f: &mut impl FnMut(&[u8], &[u8]) -> bool,
    ) -> Result<()> {
        let mut window_end = 0u32;
        loop {
            // Read-ahead: prefetch the next window of pages in parallel.
            if leaf_no >= window_end {
                let total = access.space_pages(self.space);
                let to = (leaf_no + Self::READ_AHEAD).min(total + 1);
                let mut done = ctx.now();
                for p in leaf_no..to {
                    let mut pf = ctx.fork();
                    if access.get_frame(&mut pf, self.pid(p)).is_ok() {
                        done = done.max(pf.now());
                    }
                }
                ctx.wait_until(done);
                window_end = to;
            }
            let frame = access.get_frame(ctx, self.pid(leaf_no))?;
            let page = frame.page.read();
            for i in 0..page.n_slots() {
                let (k, v) = parse_leaf_cell(page.get(i)?);
                if let Some(e) = end {
                    if k >= e {
                        return Ok(());
                    }
                }
                access.charge_cpu(ctx, 150);
                if !f(k, v) {
                    return Ok(());
                }
            }
            let next = page.next_page();
            if next == 0 {
                return Ok(());
            }
            leaf_no = next;
        }
    }
}
