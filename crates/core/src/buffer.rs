//! The DBEngine's local buffer pool.
//!
//! A sharded page cache: page ids hash to one of several shards, each with
//! its own LRU ordering and mutex (the paper uses the same trick for the
//! EBP's LRU lists, §V-D; the local pool shares the implementation).
//! Frames are `Arc`-pinned — eviction skips any frame still referenced by
//! an operation in flight.
//!
//! Under the log-is-database rule, dirty pages are never written back to
//! PageStore; on eviction they are offered to an [`EvictionSink`] (the
//! Extended Buffer Pool, when attached) and then dropped — PageStore can
//! always reconstruct them from shipped REDO.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use vedb_astore::{Lsn, PageId};
use vedb_pagestore::Page;
use vedb_sim::metrics::Counter;
use vedb_sim::{LatencyModel, MetricsRegistry, Resource, SimCtx, VTime};

use crate::Result;

/// Receives pages as they fall out of the buffer pool.
pub trait EvictionSink: Send + Sync {
    /// Called with the evicted page's image and last-mutation LSN.
    fn on_evict(&self, ctx: &mut SimCtx, page_id: PageId, page: &Page, lsn: Lsn);
}

/// A cached page frame.
pub struct Frame {
    /// The page image (latched by readers/writers).
    pub page: RwLock<Page>,
    dirty: AtomicBool,
}

impl Frame {
    fn new(page: Page) -> Arc<Frame> {
        Arc::new(Frame {
            page: RwLock::new(page),
            dirty: AtomicBool::new(false),
        })
    }

    /// Mark the frame dirty (its REDO has been logged).
    pub fn mark_dirty(&self) {
        self.dirty.store(true, Ordering::Release);
    }

    /// Is the frame dirty?
    pub fn is_dirty(&self) -> bool {
        self.dirty.load(Ordering::Acquire)
    }
}

struct Shard {
    frames: HashMap<PageId, (Arc<Frame>, u64)>,
    /// recency index: touch counter -> page id
    recency: BTreeMap<u64, PageId>,
}

/// The sharded buffer pool.
pub struct BufferPool {
    shards: Vec<Mutex<Shard>>,
    capacity_per_shard: usize,
    touch: AtomicU64,
    engine_cpu: Arc<Resource>,
    model: LatencyModel,
    hits: AtomicU64,
    misses: AtomicU64,
    m_hits: Arc<Counter>,
    m_misses: Arc<Counter>,
    m_evictions: Arc<Counter>,
}

impl BufferPool {
    /// A pool holding at most `capacity_pages` pages across `shards`
    /// shards.
    pub fn new(
        capacity_pages: usize,
        shards: usize,
        engine_cpu: Arc<Resource>,
        model: LatencyModel,
    ) -> BufferPool {
        Self::with_metrics(
            capacity_pages,
            shards,
            engine_cpu,
            model,
            &MetricsRegistry::detached(),
        )
    }

    /// Like [`new`](Self::new), mirroring hit/miss/eviction counts into
    /// `registry` (component `core`: `bp_hits`, `bp_misses`,
    /// `bp_evictions`).
    pub fn with_metrics(
        capacity_pages: usize,
        shards: usize,
        engine_cpu: Arc<Resource>,
        model: LatencyModel,
        registry: &MetricsRegistry,
    ) -> BufferPool {
        assert!(shards > 0 && capacity_pages >= shards);
        BufferPool {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        frames: HashMap::new(),
                        recency: BTreeMap::new(),
                    })
                })
                .collect(),
            capacity_per_shard: capacity_pages / shards,
            touch: AtomicU64::new(1),
            engine_cpu,
            model,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            m_hits: registry.counter("core", "bp_hits"),
            m_misses: registry.counter("core", "bp_misses"),
            m_evictions: registry.counter("core", "bp_evictions"),
        }
    }

    fn shard_of(&self, page_id: PageId) -> usize {
        let h = (page_id.space_no as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(page_id.page_no as u64);
        (h % self.shards.len() as u64) as usize
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Pages currently cached.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().frames.len()).sum()
    }

    /// Is the pool empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Look up a page without loading (tests / pushdown planning).
    pub fn peek(&self, page_id: PageId) -> Option<Arc<Frame>> {
        let shard = self.shards[self.shard_of(page_id)].lock();
        shard.frames.get(&page_id).map(|(f, _)| Arc::clone(f))
    }

    /// Get a page, loading it with `loader` on a miss. Evicts the shard's
    /// LRU page (offering it to `sink`) when over capacity. Charges a
    /// buffer-pool hit cost on the engine CPU either way.
    pub fn get(
        &self,
        ctx: &mut SimCtx,
        page_id: PageId,
        sink: Option<&dyn EvictionSink>,
        loader: impl FnOnce(&mut SimCtx) -> Result<Page>,
    ) -> Result<Arc<Frame>> {
        let done = self
            .engine_cpu
            .acquire(ctx.now(), VTime::from_nanos(self.model.cpu_bp_hit_ns));
        ctx.wait_until(done);

        let idx = self.shard_of(page_id);
        {
            let mut shard = self.shards[idx].lock();
            if let Some((frame, old_touch)) = shard.frames.get(&page_id).cloned() {
                let t = self.touch.fetch_add(1, Ordering::Relaxed);
                shard.recency.remove(&old_touch);
                shard.recency.insert(t, page_id);
                shard.frames.insert(page_id, (Arc::clone(&frame), t));
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.m_hits.inc();
                return Ok(frame);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.m_misses.inc();
        // Load outside the shard lock (the loader does remote I/O).
        let page = loader(ctx)?;
        let frame = Frame::new(page);
        let mut evicted: Vec<(PageId, Arc<Frame>)> = Vec::new();
        {
            let mut shard = self.shards[idx].lock();
            // Double-check: another thread may have loaded it meanwhile.
            if let Some((existing, _)) = shard.frames.get(&page_id) {
                return Ok(Arc::clone(existing));
            }
            let t = self.touch.fetch_add(1, Ordering::Relaxed);
            shard.frames.insert(page_id, (Arc::clone(&frame), t));
            shard.recency.insert(t, page_id);
            while shard.frames.len() > self.capacity_per_shard {
                // Oldest unpinned frame.
                let victim = shard.recency.iter().map(|(t, p)| (*t, *p)).find(|(_, p)| {
                    shard
                        .frames
                        .get(p)
                        .map(|(f, _)| Arc::strong_count(f) == 1)
                        .unwrap_or(false)
                });
                match victim {
                    Some((vt, vp)) => {
                        shard.recency.remove(&vt);
                        let (vf, _) = shard.frames.remove(&vp).expect("present");
                        self.m_evictions.inc();
                        evicted.push((vp, vf));
                    }
                    None => break, // everything pinned; allow temporary overflow
                }
            }
        }
        for (vp, vf) in evicted {
            if let Some(sink) = sink {
                let page = vf.page.read();
                let lsn = page.lsn();
                sink.on_evict(ctx, vp, &page, lsn);
            }
        }
        Ok(frame)
    }

    /// Drop every cached page (simulating an engine restart).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut s = shard.lock();
            s.frames.clear();
            s.recency.clear();
        }
    }

    /// Reset hit/miss counters (between benchmark phases).
    pub fn reset_stats(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vedb_sim::ClusterSpec;

    fn pool(cap: usize) -> (BufferPool, SimCtx) {
        let env = ClusterSpec::tiny().build();
        (
            BufferPool::new(cap, 2, Arc::clone(&env.engine_cpu), env.model.clone()),
            SimCtx::new(1, 7),
        )
    }

    fn loader(marker: u8) -> impl FnOnce(&mut SimCtx) -> Result<Page> {
        move |_ctx| {
            let mut p = Page::new();
            p.format(vedb_pagestore::PageType::BTreeLeaf, 0);
            p.insert_at(0, &[marker]).unwrap();
            Ok(p)
        }
    }

    #[test]
    fn hit_after_load() {
        let (bp, mut ctx) = pool(4);
        let pid = PageId::new(1, 1);
        let f1 = bp.get(&mut ctx, pid, None, loader(7)).unwrap();
        drop(f1);
        let f2 = bp
            .get(&mut ctx, pid, None, |_| panic!("must not reload"))
            .unwrap();
        assert_eq!(f2.page.read().get(0).unwrap(), &[7]);
        assert_eq!(bp.hits(), 1);
        assert_eq!(bp.misses(), 1);
    }

    #[test]
    fn lru_eviction_at_capacity() {
        let (bp, mut ctx) = pool(4); // 2 per shard
                                     // Fill far past capacity; pool must stay bounded.
        for i in 0..20 {
            let f = bp
                .get(&mut ctx, PageId::new(1, i), None, loader(i as u8))
                .unwrap();
            drop(f);
        }
        assert!(bp.len() <= 4, "pool exceeded capacity: {}", bp.len());
    }

    #[test]
    fn pinned_frames_survive_eviction() {
        let (bp, mut ctx) = pool(4);
        let pid = PageId::new(1, 0);
        let pinned = bp.get(&mut ctx, pid, None, loader(9)).unwrap();
        for i in 1..30 {
            drop(
                bp.get(&mut ctx, PageId::new(1, i), None, loader(i as u8))
                    .unwrap(),
            );
        }
        // Still present because we hold a pin.
        let again = bp
            .get(&mut ctx, pid, None, |_| panic!("pinned page reloaded"))
            .unwrap();
        assert_eq!(again.page.read().get(0).unwrap(), &[9]);
        drop(pinned);
    }

    #[test]
    fn eviction_sink_sees_evicted_pages() {
        struct Sink(Mutex<Vec<PageId>>);
        impl EvictionSink for Sink {
            fn on_evict(&self, _ctx: &mut SimCtx, page_id: PageId, _page: &Page, _lsn: Lsn) {
                self.0.lock().push(page_id);
            }
        }
        let (bp, mut ctx) = pool(4);
        let sink = Sink(Mutex::new(Vec::new()));
        for i in 0..12 {
            drop(
                bp.get(&mut ctx, PageId::new(1, i), Some(&sink), loader(0))
                    .unwrap(),
            );
        }
        let evicted = sink.0.lock();
        assert!(!evicted.is_empty());
        assert_eq!(evicted.len() + bp.len(), 12);
    }

    #[test]
    fn dirty_flag() {
        let (bp, mut ctx) = pool(4);
        let f = bp
            .get(&mut ctx, PageId::new(1, 1), None, loader(0))
            .unwrap();
        assert!(!f.is_dirty());
        f.mark_dirty();
        assert!(f.is_dirty());
    }

    #[test]
    fn clear_empties_pool() {
        let (bp, mut ctx) = pool(4);
        drop(
            bp.get(&mut ctx, PageId::new(1, 1), None, loader(0))
                .unwrap(),
        );
        assert!(!bp.is_empty());
        bp.clear();
        assert!(bp.is_empty());
    }
}
