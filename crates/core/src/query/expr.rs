//! Scalar expressions: evaluation and wire codec.
//!
//! Expressions are evaluated against a row (column indexes into the row).
//! Booleans are represented as `Value::Int(0|1)`; any comparison involving
//! NULL yields false (SQL-ish enough for the evaluated workloads). The
//! binary codec exists because push-down plan fragments are *serialized*
//! and sent to storage servers (§VI-A), and we reproduce that faithfully.

use crate::row::{Row, Value};
use crate::{EngineError, Result};

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

/// A scalar expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference (index into the input row).
    Col(usize),
    /// Literal.
    Lit(Value),
    /// Comparison.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Logical AND.
    And(Box<Expr>, Box<Expr>),
    /// Logical OR.
    Or(Box<Expr>, Box<Expr>),
    /// Logical NOT.
    Not(Box<Expr>),
    /// Arithmetic.
    Arith(ArithOp, Box<Expr>, Box<Expr>),
    /// SQL LIKE limited to `%substr%`, `prefix%`, `%suffix` patterns.
    Like(Box<Expr>, String),
}

impl Expr {
    /// Column reference.
    pub fn col(i: usize) -> Expr {
        Expr::Col(i)
    }

    /// Integer literal.
    pub fn int(v: i64) -> Expr {
        Expr::Lit(Value::Int(v))
    }

    /// String literal.
    pub fn str(v: &str) -> Expr {
        Expr::Lit(Value::Str(v.to_string()))
    }

    /// Double literal.
    pub fn dbl(v: f64) -> Expr {
        Expr::Lit(Value::Double(v))
    }

    /// Comparison builder.
    pub fn cmp(op: CmpOp, a: Expr, b: Expr) -> Expr {
        Expr::Cmp(op, Box::new(a), Box::new(b))
    }

    /// `a = b`.
    pub fn eq(a: Expr, b: Expr) -> Expr {
        Self::cmp(CmpOp::Eq, a, b)
    }

    /// `a AND b`.
    pub fn and(a: Expr, b: Expr) -> Expr {
        Expr::And(Box::new(a), Box::new(b))
    }

    /// `a OR b`.
    pub fn or(a: Expr, b: Expr) -> Expr {
        Expr::Or(Box::new(a), Box::new(b))
    }

    /// `a BETWEEN lo AND hi` (inclusive).
    pub fn between(a: Expr, lo: Expr, hi: Expr) -> Expr {
        Self::and(
            Self::cmp(CmpOp::Ge, a.clone(), lo),
            Self::cmp(CmpOp::Le, a, hi),
        )
    }

    /// `a * b`.
    ///
    /// A builder constructor taking two operands, not `std::ops::Mul` —
    /// the std trait would force `Expr * Expr` syntax on plan-building
    /// code that consistently uses named constructors.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(a: Expr, b: Expr) -> Expr {
        Expr::Arith(ArithOp::Mul, Box::new(a), Box::new(b))
    }

    /// Evaluate against `row`.
    pub fn eval(&self, row: &Row) -> Result<Value> {
        Ok(match self {
            Expr::Col(i) => row
                .get(*i)
                .cloned()
                .ok_or_else(|| EngineError::Query(format!("column {i} out of range")))?,
            Expr::Lit(v) => v.clone(),
            Expr::Cmp(op, a, b) => {
                let (va, vb) = (a.eval(row)?, b.eval(row)?);
                let r = match va.partial_cmp(&vb) {
                    None => false,
                    Some(ord) => match op {
                        CmpOp::Eq => ord.is_eq(),
                        CmpOp::Ne => ord.is_ne(),
                        CmpOp::Lt => ord.is_lt(),
                        CmpOp::Le => ord.is_le(),
                        CmpOp::Gt => ord.is_gt(),
                        CmpOp::Ge => ord.is_ge(),
                    },
                };
                // NULL comparisons are false.
                let r = r && !va.is_null() && !vb.is_null();
                Value::Int(r as i64)
            }
            Expr::And(a, b) => Value::Int((a.eval_bool(row)? && b.eval_bool(row)?) as i64),
            Expr::Or(a, b) => Value::Int((a.eval_bool(row)? || b.eval_bool(row)?) as i64),
            Expr::Not(a) => Value::Int(!a.eval_bool(row)? as i64),
            Expr::Arith(op, a, b) => {
                let (va, vb) = (a.eval(row)?, b.eval(row)?);
                match (va, vb) {
                    (Value::Int(x), Value::Int(y)) => match op {
                        ArithOp::Add => Value::Int(x + y),
                        ArithOp::Sub => Value::Int(x - y),
                        ArithOp::Mul => Value::Int(x * y),
                        ArithOp::Div => {
                            if y == 0 {
                                Value::Null
                            } else {
                                Value::Int(x / y)
                            }
                        }
                    },
                    (x, y) if !x.is_null() && !y.is_null() => {
                        let (x, y) = (x.as_f64(), y.as_f64());
                        Value::Double(match op {
                            ArithOp::Add => x + y,
                            ArithOp::Sub => x - y,
                            ArithOp::Mul => x * y,
                            ArithOp::Div => x / y,
                        })
                    }
                    _ => Value::Null,
                }
            }
            Expr::Like(e, pattern) => {
                let v = e.eval(row)?;
                let s = match &v {
                    Value::Str(s) => s.as_str(),
                    _ => return Ok(Value::Int(0)),
                };
                let m = match (pattern.starts_with('%'), pattern.ends_with('%')) {
                    (true, true) => s.contains(&pattern[1..pattern.len() - 1]),
                    (false, true) => s.starts_with(&pattern[..pattern.len() - 1]),
                    (true, false) => s.ends_with(&pattern[1..]),
                    (false, false) => s == pattern,
                };
                Value::Int(m as i64)
            }
        })
    }

    /// Evaluate as a boolean predicate.
    pub fn eval_bool(&self, row: &Row) -> Result<bool> {
        Ok(match self.eval(row)? {
            Value::Int(v) => v != 0,
            Value::Null => false,
            Value::Double(v) => v != 0.0,
            Value::Str(_) => true,
        })
    }
}

fn encode_value(v: &Value, out: &mut Vec<u8>) {
    let mut row_buf = Vec::new();
    crate::row::encode_row(&vec![v.clone()], &mut row_buf);
    out.extend_from_slice(&(row_buf.len() as u32).to_le_bytes());
    out.extend_from_slice(&row_buf);
}

fn decode_value(buf: &[u8], pos: &mut usize) -> Result<Value> {
    let err = || EngineError::Codec("expr value truncated".into());
    let len =
        u32::from_le_bytes(buf.get(*pos..*pos + 4).ok_or_else(err)?.try_into().unwrap()) as usize;
    *pos += 4;
    let row = crate::row::decode_row(buf.get(*pos..*pos + len).ok_or_else(err)?)?;
    *pos += len;
    row.into_iter().next().ok_or_else(err)
}

/// Encode an expression (push-down fragment wire format).
pub fn encode_expr(e: &Expr, out: &mut Vec<u8>) {
    match e {
        Expr::Col(i) => {
            out.push(0);
            out.extend_from_slice(&(*i as u32).to_le_bytes());
        }
        Expr::Lit(v) => {
            out.push(1);
            encode_value(v, out);
        }
        Expr::Cmp(op, a, b) => {
            out.push(2);
            out.push(*op as u8);
            encode_expr(a, out);
            encode_expr(b, out);
        }
        Expr::And(a, b) => {
            out.push(3);
            encode_expr(a, out);
            encode_expr(b, out);
        }
        Expr::Or(a, b) => {
            out.push(4);
            encode_expr(a, out);
            encode_expr(b, out);
        }
        Expr::Not(a) => {
            out.push(5);
            encode_expr(a, out);
        }
        Expr::Arith(op, a, b) => {
            out.push(6);
            out.push(*op as u8);
            encode_expr(a, out);
            encode_expr(b, out);
        }
        Expr::Like(a, p) => {
            out.push(7);
            encode_expr(a, out);
            out.extend_from_slice(&(p.len() as u32).to_le_bytes());
            out.extend_from_slice(p.as_bytes());
        }
    }
}

/// Decode an expression.
pub fn decode_expr(buf: &[u8], pos: &mut usize) -> Result<Expr> {
    let err = || EngineError::Codec("expr truncated".into());
    let tag = *buf.get(*pos).ok_or_else(err)?;
    *pos += 1;
    Ok(match tag {
        0 => {
            let i =
                u32::from_le_bytes(buf.get(*pos..*pos + 4).ok_or_else(err)?.try_into().unwrap());
            *pos += 4;
            Expr::Col(i as usize)
        }
        1 => Expr::Lit(decode_value(buf, pos)?),
        2 => {
            let op = match *buf.get(*pos).ok_or_else(err)? {
                0 => CmpOp::Eq,
                1 => CmpOp::Ne,
                2 => CmpOp::Lt,
                3 => CmpOp::Le,
                4 => CmpOp::Gt,
                5 => CmpOp::Ge,
                t => return Err(EngineError::Codec(format!("bad cmp op {t}"))),
            };
            *pos += 1;
            let a = decode_expr(buf, pos)?;
            let b = decode_expr(buf, pos)?;
            Expr::Cmp(op, Box::new(a), Box::new(b))
        }
        3 => {
            let a = decode_expr(buf, pos)?;
            let b = decode_expr(buf, pos)?;
            Expr::And(Box::new(a), Box::new(b))
        }
        4 => {
            let a = decode_expr(buf, pos)?;
            let b = decode_expr(buf, pos)?;
            Expr::Or(Box::new(a), Box::new(b))
        }
        5 => Expr::Not(Box::new(decode_expr(buf, pos)?)),
        6 => {
            let op = match *buf.get(*pos).ok_or_else(err)? {
                0 => ArithOp::Add,
                1 => ArithOp::Sub,
                2 => ArithOp::Mul,
                3 => ArithOp::Div,
                t => return Err(EngineError::Codec(format!("bad arith op {t}"))),
            };
            *pos += 1;
            let a = decode_expr(buf, pos)?;
            let b = decode_expr(buf, pos)?;
            Expr::Arith(op, Box::new(a), Box::new(b))
        }
        7 => {
            let a = decode_expr(buf, pos)?;
            let len =
                u32::from_le_bytes(buf.get(*pos..*pos + 4).ok_or_else(err)?.try_into().unwrap())
                    as usize;
            *pos += 4;
            let p = String::from_utf8(buf.get(*pos..*pos + len).ok_or_else(err)?.to_vec())
                .map_err(|_| EngineError::Codec("bad utf8 in LIKE".into()))?;
            *pos += len;
            Expr::Like(Box::new(a), p)
        }
        t => return Err(EngineError::Codec(format!("bad expr tag {t}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> Row {
        vec![
            Value::Int(10),
            Value::Str("hello".into()),
            Value::Double(2.5),
            Value::Null,
        ]
    }

    #[test]
    fn eval_comparisons() {
        let r = row();
        assert!(Expr::cmp(CmpOp::Eq, Expr::col(0), Expr::int(10))
            .eval_bool(&r)
            .unwrap());
        assert!(Expr::cmp(CmpOp::Lt, Expr::col(0), Expr::int(11))
            .eval_bool(&r)
            .unwrap());
        assert!(!Expr::cmp(CmpOp::Gt, Expr::col(0), Expr::int(10))
            .eval_bool(&r)
            .unwrap());
        assert!(Expr::cmp(CmpOp::Ge, Expr::col(2), Expr::dbl(2.5))
            .eval_bool(&r)
            .unwrap());
        // NULL comparisons are false.
        assert!(!Expr::cmp(CmpOp::Eq, Expr::col(3), Expr::col(3))
            .eval_bool(&r)
            .unwrap());
        // Int/Double cross comparisons work.
        assert!(Expr::cmp(CmpOp::Lt, Expr::col(2), Expr::int(3))
            .eval_bool(&r)
            .unwrap());
    }

    #[test]
    fn eval_logic_and_arith() {
        let r = row();
        let e = Expr::and(
            Expr::cmp(CmpOp::Gt, Expr::col(0), Expr::int(5)),
            Expr::Not(Box::new(Expr::cmp(CmpOp::Eq, Expr::col(1), Expr::str("x")))),
        );
        assert!(e.eval_bool(&r).unwrap());
        let m = Expr::mul(Expr::col(0), Expr::col(2)).eval(&r).unwrap();
        assert_eq!(m, Value::Double(25.0));
        let d = Expr::Arith(ArithOp::Div, Box::new(Expr::int(7)), Box::new(Expr::int(0)))
            .eval(&r)
            .unwrap();
        assert!(d.is_null());
        assert!(Expr::between(Expr::col(0), Expr::int(5), Expr::int(15))
            .eval_bool(&r)
            .unwrap());
    }

    #[test]
    fn eval_like() {
        let r = row();
        assert!(Expr::Like(Box::new(Expr::col(1)), "%ell%".into())
            .eval_bool(&r)
            .unwrap());
        assert!(Expr::Like(Box::new(Expr::col(1)), "he%".into())
            .eval_bool(&r)
            .unwrap());
        assert!(Expr::Like(Box::new(Expr::col(1)), "%lo".into())
            .eval_bool(&r)
            .unwrap());
        assert!(!Expr::Like(Box::new(Expr::col(1)), "%xyz%".into())
            .eval_bool(&r)
            .unwrap());
        assert!(Expr::Like(Box::new(Expr::col(1)), "hello".into())
            .eval_bool(&r)
            .unwrap());
    }

    #[test]
    fn codec_roundtrip() {
        let exprs = [
            Expr::col(3),
            Expr::int(-42),
            Expr::str("abc"),
            Expr::dbl(1.5),
            Expr::and(
                Expr::or(
                    Expr::cmp(CmpOp::Ne, Expr::col(0), Expr::int(1)),
                    Expr::Like(Box::new(Expr::col(1)), "%x%".into()),
                ),
                Expr::Not(Box::new(Expr::mul(Expr::col(2), Expr::dbl(2.0)))),
            ),
        ];
        for e in exprs {
            let mut buf = Vec::new();
            encode_expr(&e, &mut buf);
            let mut pos = 0;
            let dec = decode_expr(&buf, &mut pos).unwrap();
            assert_eq!(pos, buf.len());
            assert_eq!(dec, e);
        }
    }

    #[test]
    fn truncated_expr_rejected() {
        let mut buf = Vec::new();
        encode_expr(&Expr::and(Expr::col(1), Expr::col(2)), &mut buf);
        let mut pos = 0;
        assert!(decode_expr(&buf[..buf.len() - 2], &mut pos).is_err());
    }
}
