//! Query processing: expressions, plans, the local executor, and the
//! push-down framework (§VI).

pub mod exec;
pub mod expr;
pub mod plan;
pub mod pushdown;

pub use exec::{execute, QuerySession};
pub use expr::{CmpOp, Expr};
pub use plan::{AggExpr, AggFunc, Plan};
