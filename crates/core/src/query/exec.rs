//! Local (engine-side) query execution.
//!
//! The executor materializes each operator bottom-up in the engine's
//! single-threaded model (§VI), charging engine CPU per processed row so
//! large scans cost realistic virtual time. When a [`QuerySession`] has
//! push-down enabled and an eligible fragment is large enough, execution
//! of `SeqScan`/`HashAgg`-over-`SeqScan` shapes is delegated to the
//! storage layer (see [`super::pushdown`]).

use std::collections::HashMap;

use vedb_sim::{SimCtx, VTime};

use crate::db::Db;
use crate::query::expr::Expr;
use crate::query::plan::{AggFunc, Plan};
use crate::query::pushdown;
use crate::row::{encode_row, Row, Value};
use crate::Result;

/// Per-session query settings (the paper's "session variable enabling the
/// PQ feature" plus the row threshold, §VI-A).
#[derive(Debug, Clone)]
pub struct QuerySession {
    /// Enable the push-down framework.
    pub pushdown: bool,
    /// Minimum allocated pages in a table before a scan fragment is pushed
    /// down (proxy for the paper's scanned-row threshold).
    pub pushdown_min_pages: u32,
    /// Use the cost-based push-down decision instead of the bare threshold
    /// (§VIII lists cost-based selection as future work; implemented here
    /// as an extension — see [`super::pushdown::cost_decision`]).
    pub cost_based: bool,
}

impl Default for QuerySession {
    fn default() -> Self {
        QuerySession {
            pushdown: false,
            pushdown_min_pages: 4,
            cost_based: false,
        }
    }
}

impl QuerySession {
    /// Session with push-down on (threshold rule, as evaluated in §VII-C).
    pub fn with_pushdown() -> QuerySession {
        QuerySession {
            pushdown: true,
            ..Default::default()
        }
    }

    /// Session with the cost-based push-down decision (§VIII extension).
    pub fn with_cost_based_pushdown() -> QuerySession {
        QuerySession {
            pushdown: true,
            cost_based: true,
            ..Default::default()
        }
    }
}

/// Running aggregate state.
#[derive(Debug, Clone)]
pub(crate) enum AggState {
    Count(i64),
    Sum(f64, bool),
    Avg(f64, i64),
    Min(Option<Value>),
    Max(Option<Value>),
}

impl AggState {
    pub(crate) fn new(func: AggFunc) -> AggState {
        match func {
            AggFunc::CountStar | AggFunc::Count => AggState::Count(0),
            AggFunc::Sum => AggState::Sum(0.0, false),
            AggFunc::Avg => AggState::Avg(0.0, 0),
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
        }
    }

    pub(crate) fn update(&mut self, func: AggFunc, v: Value) {
        match self {
            AggState::Count(c) => {
                if func == AggFunc::CountStar || !v.is_null() {
                    *c += 1;
                }
            }
            AggState::Sum(s, any) => {
                if !v.is_null() {
                    *s += v.as_f64();
                    *any = true;
                }
            }
            AggState::Avg(s, c) => {
                if !v.is_null() {
                    *s += v.as_f64();
                    *c += 1;
                }
            }
            AggState::Min(m) => {
                if !v.is_null() && m.as_ref().map(|cur| v < *cur).unwrap_or(true) {
                    *m = Some(v);
                }
            }
            AggState::Max(m) => {
                if !v.is_null() && m.as_ref().map(|cur| v > *cur).unwrap_or(true) {
                    *m = Some(v);
                }
            }
        }
    }

    /// Merge a partial state produced by a push-down executor.
    pub(crate) fn merge(&mut self, other: &AggState) {
        match (self, other) {
            (AggState::Count(a), AggState::Count(b)) => *a += *b,
            (AggState::Sum(a, any_a), AggState::Sum(b, any_b)) => {
                *a += *b;
                *any_a |= *any_b;
            }
            (AggState::Avg(sa, ca), AggState::Avg(sb, cb)) => {
                *sa += *sb;
                *ca += *cb;
            }
            (AggState::Min(a), AggState::Min(b)) => {
                if let Some(vb) = b {
                    if a.as_ref().map(|va| vb < va).unwrap_or(true) {
                        *a = Some(vb.clone());
                    }
                }
            }
            (AggState::Max(a), AggState::Max(b)) => {
                if let Some(vb) = b {
                    if a.as_ref().map(|va| vb > va).unwrap_or(true) {
                        *a = Some(vb.clone());
                    }
                }
            }
            _ => unreachable!("mismatched aggregate states"),
        }
    }

    pub(crate) fn finalize(self) -> Value {
        match self {
            AggState::Count(c) => Value::Int(c),
            AggState::Sum(s, any) => {
                if any {
                    Value::Double(s)
                } else {
                    Value::Null
                }
            }
            AggState::Avg(s, c) => {
                if c > 0 {
                    Value::Double(s / c as f64)
                } else {
                    Value::Null
                }
            }
            AggState::Min(m) | AggState::Max(m) => m.unwrap_or(Value::Null),
        }
    }
}

/// Canonical group-key bytes (hashable Value vectors).
pub(crate) fn group_key(vals: &[Value]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(vals.len() * 8);
    encode_row(&vals.to_vec(), &mut buf);
    buf
}

fn charge_rows(ctx: &mut SimCtx, db: &Db, rows: usize, per_row_ns: u64) {
    if rows == 0 {
        return;
    }
    let done = db
        .env()
        .engine_cpu
        .acquire(ctx.now(), VTime::from_nanos(rows as u64 * per_row_ns));
    ctx.wait_until(done);
}

fn apply_filter_project(
    rows: Vec<Row>,
    filter: &Option<Expr>,
    project: &Option<Vec<Expr>>,
) -> Result<Vec<Row>> {
    let mut out = Vec::with_capacity(rows.len());
    for row in rows {
        if let Some(f) = filter {
            if !f.eval_bool(&row)? {
                continue;
            }
        }
        match project {
            Some(exprs) => {
                let mut projected = Vec::with_capacity(exprs.len());
                for e in exprs {
                    projected.push(e.eval(&row)?);
                }
                out.push(projected);
            }
            None => out.push(row),
        }
    }
    Ok(out)
}

/// Execute `plan` and materialize its result rows.
pub fn execute(ctx: &mut SimCtx, db: &Db, session: &QuerySession, plan: &Plan) -> Result<Vec<Row>> {
    match plan {
        Plan::SeqScan {
            table,
            filter,
            project,
        } => {
            if pushdown::eligible(
                db,
                session,
                table,
                filter.is_some() || project.is_some(),
                false,
            )? {
                return pushdown::pushdown_scan(ctx, db, table, filter, project, None);
            }
            let mut rows = Vec::new();
            db.scan_table(ctx, table, |row| {
                rows.push(row.clone());
                true
            })?;
            charge_rows(ctx, db, rows.len(), 50);
            apply_filter_project(rows, filter, project)
        }
        Plan::IndexLookup {
            table,
            index,
            prefix,
            filter,
            project,
        } => {
            let rows = db.index_lookup(ctx, table, index, prefix, usize::MAX)?;
            charge_rows(ctx, db, rows.len(), 100);
            apply_filter_project(rows, filter, project)
        }
        Plan::HashAgg {
            input,
            group_by,
            aggs,
        } => {
            // Fully-pushable shape: aggregation directly over a scan.
            if let Plan::SeqScan {
                table,
                filter,
                project: None,
            } = input.as_ref()
            {
                if pushdown::eligible(db, session, table, filter.is_some(), true)? {
                    return pushdown::pushdown_scan(
                        ctx,
                        db,
                        table,
                        filter,
                        &None,
                        Some((group_by.clone(), aggs.clone())),
                    );
                }
            }
            let rows = execute(ctx, db, session, input)?;
            charge_rows(ctx, db, rows.len(), 100);
            let mut groups: HashMap<Vec<u8>, (Vec<Value>, Vec<AggState>)> = HashMap::new();
            for row in &rows {
                let key_vals: Vec<Value> = group_by.iter().map(|i| row[*i].clone()).collect();
                let key = group_key(&key_vals);
                let entry = groups.entry(key).or_insert_with(|| {
                    (
                        key_vals.clone(),
                        aggs.iter().map(|a| AggState::new(a.func)).collect(),
                    )
                });
                for (state, agg) in entry.1.iter_mut().zip(aggs) {
                    state.update(agg.func, agg.expr.eval(row)?);
                }
            }
            let mut out: Vec<Row> = groups
                .into_values()
                .map(|(mut key_vals, states)| {
                    key_vals.extend(states.into_iter().map(AggState::finalize));
                    key_vals
                })
                .collect();
            // Deterministic output order for tests.
            out.sort_by_key(|r| group_key(r));
            Ok(out)
        }
        Plan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
            filter,
            project,
        } => {
            let lrows = execute(ctx, db, session, left)?;
            let rrows = execute(ctx, db, session, right)?;
            charge_rows(ctx, db, lrows.len() + rrows.len(), 100);
            let mut build: HashMap<Vec<u8>, Vec<&Row>> = HashMap::new();
            for row in &lrows {
                let key_vals: Vec<Value> = left_keys.iter().map(|i| row[*i].clone()).collect();
                build.entry(group_key(&key_vals)).or_default().push(row);
            }
            let mut out = Vec::new();
            for rrow in &rrows {
                let key_vals: Vec<Value> = right_keys.iter().map(|i| rrow[*i].clone()).collect();
                if let Some(matches) = build.get(&group_key(&key_vals)) {
                    for lrow in matches {
                        let mut joined: Row = (*lrow).clone();
                        joined.extend(rrow.iter().cloned());
                        out.push(joined);
                    }
                }
            }
            charge_rows(ctx, db, out.len(), 50);
            apply_filter_project(out, filter, project)
        }
        Plan::NestLoopJoin {
            left,
            right,
            on,
            project,
        } => {
            let lrows = execute(ctx, db, session, left)?;
            let rrows = execute(ctx, db, session, right)?;
            charge_rows(ctx, db, lrows.len() * rrows.len().max(1), 20);
            let mut out = Vec::new();
            for lrow in &lrows {
                for rrow in &rrows {
                    let mut joined: Row = lrow.clone();
                    joined.extend(rrow.iter().cloned());
                    if on.eval_bool(&joined)? {
                        out.push(joined);
                    }
                }
            }
            apply_filter_project(out, &None, project)
        }
        Plan::Sort { input, by, limit } => {
            let mut rows = execute(ctx, db, session, input)?;
            let n = rows.len();
            charge_rows(
                ctx,
                db,
                n * (usize::BITS - n.leading_zeros()).max(1) as usize / 8,
                50,
            );
            rows.sort_by(|a, b| {
                for (col, desc) in by {
                    let ord = a[*col]
                        .partial_cmp(&b[*col])
                        .unwrap_or(std::cmp::Ordering::Equal);
                    let ord = if *desc { ord.reverse() } else { ord };
                    if !ord.is_eq() {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            if let Some(k) = limit {
                rows.truncate(*k);
            }
            Ok(rows)
        }
        Plan::Map {
            input,
            filter,
            project,
        } => {
            let rows = execute(ctx, db, session, input)?;
            charge_rows(ctx, db, rows.len(), 50);
            apply_filter_project(rows, filter, project)
        }
    }
}
