//! The query push-down framework (§VI).
//!
//! Eligible plan fragments — single-table scans with simple filters and/or
//! aggregation, no joins or subqueries — are serialized and executed *where
//! the pages live*:
//!
//! * pages cached in the **EBP** run on their AStore server, reading local
//!   PMem and using the CPU cores that one-sided RDMA leaves idle (§VI-B);
//! * the remaining pages run on their **PageStore** server, reading local
//!   SSD (§VI-A).
//!
//! The engine splits the fragment into per-server tasks from the EBP index
//! and the PageStore routing, dispatches them in parallel, and performs
//! secondary aggregation over the returned partials. The decision to push
//! down is a page-count threshold plus a session flag, exactly as in the
//! paper (cost-based selection is listed as future work).

use std::collections::HashMap;

use vedb_astore::{Lsn, PageId};
use vedb_pagestore::page::{Page, PageType};
use vedb_sim::fault::NodeId;
use vedb_sim::{SimCtx, VTime};

use crate::btree::parse_leaf_cell;
use crate::db::Db;
use crate::ebp::EbpLoc;
use crate::query::exec::{group_key, AggState, QuerySession};
use crate::query::expr::{decode_expr, encode_expr, Expr};
use crate::query::plan::{AggExpr, AggFunc};
use crate::row::{decode_row, Row, Value};
use crate::{EngineError, Result};

/// Aggregation part of a fragment.
pub type FragAgg = (Vec<usize>, Vec<AggExpr>);

/// A serialized-and-shipped plan fragment (§VI-A): scan of one table space
/// with optional filter, projection, and partial aggregation.
#[derive(Debug, Clone, PartialEq)]
pub struct Fragment {
    /// Tablespace to scan.
    pub space: u32,
    /// Filter over the raw table row.
    pub filter: Option<Expr>,
    /// Projection over the raw table row.
    pub project: Option<Vec<Expr>>,
    /// Partial aggregation: (group-by column indexes, aggregates).
    pub agg: Option<FragAgg>,
}

/// Encode a fragment for shipping.
pub fn encode_fragment(f: &Fragment, out: &mut Vec<u8>) {
    out.extend_from_slice(&f.space.to_le_bytes());
    match &f.filter {
        Some(e) => {
            out.push(1);
            encode_expr(e, out);
        }
        None => out.push(0),
    }
    match &f.project {
        Some(exprs) => {
            out.push(1);
            out.extend_from_slice(&(exprs.len() as u32).to_le_bytes());
            for e in exprs {
                encode_expr(e, out);
            }
        }
        None => out.push(0),
    }
    match &f.agg {
        Some((group_by, aggs)) => {
            out.push(1);
            out.extend_from_slice(&(group_by.len() as u32).to_le_bytes());
            for g in group_by {
                out.extend_from_slice(&(*g as u32).to_le_bytes());
            }
            out.extend_from_slice(&(aggs.len() as u32).to_le_bytes());
            for a in aggs {
                out.push(a.func as u8);
                encode_expr(&a.expr, out);
            }
        }
        None => out.push(0),
    }
}

/// Decode a fragment.
pub fn decode_fragment(buf: &[u8]) -> Result<Fragment> {
    let err = || EngineError::Codec("fragment truncated".into());
    let space = u32::from_le_bytes(buf.get(0..4).ok_or_else(err)?.try_into().unwrap());
    let mut pos = 4;
    let take_u8 = |pos: &mut usize| -> Result<u8> {
        let b = *buf.get(*pos).ok_or_else(err)?;
        *pos += 1;
        Ok(b)
    };
    let filter = if take_u8(&mut pos)? == 1 {
        Some(decode_expr(buf, &mut pos)?)
    } else {
        None
    };
    let project = if take_u8(&mut pos)? == 1 {
        let n = u32::from_le_bytes(buf.get(pos..pos + 4).ok_or_else(err)?.try_into().unwrap());
        pos += 4;
        let mut exprs = Vec::with_capacity(n as usize);
        for _ in 0..n {
            exprs.push(decode_expr(buf, &mut pos)?);
        }
        Some(exprs)
    } else {
        None
    };
    let agg = if take_u8(&mut pos)? == 1 {
        let n = u32::from_le_bytes(buf.get(pos..pos + 4).ok_or_else(err)?.try_into().unwrap());
        pos += 4;
        let mut group_by = Vec::with_capacity(n as usize);
        for _ in 0..n {
            group_by.push(u32::from_le_bytes(
                buf.get(pos..pos + 4).ok_or_else(err)?.try_into().unwrap(),
            ) as usize);
            pos += 4;
        }
        let m = u32::from_le_bytes(buf.get(pos..pos + 4).ok_or_else(err)?.try_into().unwrap());
        pos += 4;
        let mut aggs = Vec::with_capacity(m as usize);
        for _ in 0..m {
            let func = match *buf.get(pos).ok_or_else(err)? {
                0 => AggFunc::CountStar,
                1 => AggFunc::Count,
                2 => AggFunc::Sum,
                3 => AggFunc::Avg,
                4 => AggFunc::Min,
                5 => AggFunc::Max,
                t => return Err(EngineError::Codec(format!("bad agg func {t}"))),
            };
            pos += 1;
            aggs.push(AggExpr {
                func,
                expr: decode_expr(buf, &mut pos)?,
            });
        }
        Some((group_by, aggs))
    } else {
        None
    };
    Ok(Fragment {
        space,
        filter,
        project,
        agg,
    })
}

/// Which server a task runs on and which pages it covers.
enum TaskPages {
    /// Pages cached in the EBP on an AStore node.
    Ebp(Vec<EbpLoc>),
    /// Pages served by a PageStore node: (page, required LSN).
    PageStore(Vec<(PageId, Lsn)>),
}

struct Task {
    node: NodeId,
    pages: TaskPages,
}

/// Is this table's scan worth pushing down under the session settings?
///
/// The evaluated system uses the paper's simple rule — a page-count
/// threshold plus the session flag (§VI-A). With
/// [`QuerySession::cost_based`] set, the §VIII extension applies instead:
/// see [`cost_decision`].
pub fn eligible(
    db: &Db,
    session: &QuerySession,
    table: &str,
    reduces_rows: bool,
    has_agg: bool,
) -> Result<bool> {
    if !session.pushdown {
        return Ok(false);
    }
    let space = db.with_table(table, |t| t.space_no)?;
    let pages = db.space_pages(space);
    if session.cost_based {
        return Ok(cost_decision(db, space, pages, reduces_rows, has_agg));
    }
    Ok(pages >= session.pushdown_min_pages)
}

/// The §VIII "cost-based strategy" extension: estimate the engine-local
/// cost of the scan (page sourcing through BP/EBP/PageStore at their
/// modelled latencies) against the push-down cost (fragment round trip +
/// storage-local page reads + shipping the result rows), and push down
/// only when it wins.
pub fn cost_decision(db: &Db, space: u32, pages: u32, reduces_rows: bool, has_agg: bool) -> bool {
    if pages == 0 {
        return false;
    }
    let model = &db.env().model;
    // Where would local execution source each page? Count EBP-resident
    // pages; the rest come from PageStore (BP residency is negligible for
    // the large scans this decision concerns).
    let mut ebp_pages = 0u64;
    for page_no in 1..=pages {
        let pid = PageId::new(space, page_no);
        if db.ebp().and_then(|e| e.locate(pid)).is_some() {
            ebp_pages += 1;
        }
    }
    let ps_pages = pages as u64 - ebp_pages;
    let page_sz = vedb_pagestore::PAGE_SIZE;
    // Local: EBP pages at one-sided read latency, PageStore pages at the
    // RPC path amortized by linear read-ahead.
    let local_ns = ebp_pages as f64 * model.pmem_read_svc(page_sz).as_nanos() as f64
        + ps_pages as f64
            * (model.rpc_rtt().as_nanos() + model.ssd_read_svc(page_sz).as_nanos()) as f64
            / crate::btree::BTree::READ_AHEAD as f64;
    // Push-down: one RPC per involved server + local media reads there +
    // the result transfer. Aggregations return tiny results; plain scans
    // without a filter/projection return everything (no win).
    let servers = 3.0f64;
    let result_factor = if has_agg {
        0.01
    } else if reduces_rows {
        0.3
    } else {
        1.0
    };
    let pq_ns = servers * model.rpc_rtt().as_nanos() as f64
        + ebp_pages as f64 * model.pmem_read_svc(page_sz).as_nanos() as f64 / servers
        + ps_pages as f64 * model.ssd_read_svc(page_sz).as_nanos() as f64 / servers
        + pages as f64 * page_sz as f64 * result_factor * model.wire_per_kb_ns as f64 / 1024.0;
    pq_ns < local_ns
}

/// Split a fragment into per-server tasks by page location (§VI-B: "the
/// original request gets split up into parallel tasks by looking up the
/// requested pages in the EBP index").
fn split_tasks(db: &Db, space: u32) -> Vec<Task> {
    let n_pages = db.space_pages(space);
    let mut ebp_groups: HashMap<NodeId, Vec<EbpLoc>> = HashMap::new();
    let mut ps_groups: HashMap<NodeId, Vec<(PageId, Lsn)>> = HashMap::new();
    for page_no in 1..=n_pages {
        let pid = PageId::new(space, page_no);
        let need_lsn = db.page_lsn(pid);
        let ebp_hit = db
            .ebp()
            .and_then(|e| e.locate(pid))
            .filter(|loc| loc.lsn >= need_lsn);
        match ebp_hit {
            Some(loc) => ebp_groups.entry(loc.node).or_default().push(loc),
            None => {
                let key = db.pagestore().cfg().segment_of(pid);
                let node = db.pagestore().replicas_of(key)[0].node();
                ps_groups.entry(node).or_default().push((pid, need_lsn));
            }
        }
    }
    let mut tasks: Vec<Task> = ebp_groups
        .into_iter()
        .map(|(node, pages)| Task {
            node,
            pages: TaskPages::Ebp(pages),
        })
        .collect();
    tasks.extend(ps_groups.into_iter().map(|(node, pages)| Task {
        node,
        pages: TaskPages::PageStore(pages),
    }));
    tasks
}

/// Run the fragment over one page image, updating rows/groups.
fn process_page(
    page: &Page,
    frag: &Fragment,
    rows_out: &mut Vec<Row>,
    groups: &mut HashMap<Vec<u8>, (Vec<Value>, Vec<AggState>)>,
    rows_scanned: &mut usize,
) -> Result<()> {
    if page.page_type() != PageType::BTreeLeaf {
        return Ok(()); // internal node: no rows
    }
    for cell in page.iter() {
        let (_key, payload) = parse_leaf_cell(cell);
        let row = decode_row(payload)?;
        *rows_scanned += 1;
        if let Some(f) = &frag.filter {
            if !f.eval_bool(&row)? {
                continue;
            }
        }
        match &frag.agg {
            Some((group_by, aggs)) => {
                let key_vals: Vec<Value> = group_by.iter().map(|i| row[*i].clone()).collect();
                let key = group_key(&key_vals);
                let entry = groups.entry(key).or_insert_with(|| {
                    (
                        key_vals.clone(),
                        aggs.iter().map(|a| AggState::new(a.func)).collect(),
                    )
                });
                for (state, agg) in entry.1.iter_mut().zip(aggs) {
                    state.update(agg.func, agg.expr.eval(&row)?);
                }
            }
            None => match &frag.project {
                Some(exprs) => {
                    let mut projected = Vec::with_capacity(exprs.len());
                    for e in exprs {
                        projected.push(e.eval(&row)?);
                    }
                    rows_out.push(projected);
                }
                None => rows_out.push(row),
            },
        }
    }
    Ok(())
}

/// Encode partial aggregate states as transferable rows:
/// `[group vals..., per-agg state columns...]`.
fn states_to_rows(groups: HashMap<Vec<u8>, (Vec<Value>, Vec<AggState>)>) -> Vec<Row> {
    groups
        .into_values()
        .map(|(mut vals, states)| {
            for s in states {
                match s {
                    AggState::Count(c) => vals.push(Value::Int(c)),
                    AggState::Sum(s, any) => {
                        vals.push(Value::Double(s));
                        vals.push(Value::Int(any as i64));
                    }
                    AggState::Avg(s, c) => {
                        vals.push(Value::Double(s));
                        vals.push(Value::Int(c));
                    }
                    AggState::Min(m) | AggState::Max(m) => vals.push(m.unwrap_or(Value::Null)),
                }
            }
            vals
        })
        .collect()
}

fn state_arity(func: AggFunc) -> usize {
    match func {
        AggFunc::CountStar | AggFunc::Count | AggFunc::Min | AggFunc::Max => 1,
        AggFunc::Sum | AggFunc::Avg => 2,
    }
}

/// Rebuild states from a partial row (inverse of [`states_to_rows`]).
fn row_to_states(row: &Row, n_groups: usize, aggs: &[AggExpr]) -> (Vec<Value>, Vec<AggState>) {
    let key_vals = row[..n_groups].to_vec();
    let mut pos = n_groups;
    let mut states = Vec::with_capacity(aggs.len());
    for a in aggs {
        let s = match a.func {
            AggFunc::CountStar | AggFunc::Count => AggState::Count(row[pos].as_int()),
            AggFunc::Sum => AggState::Sum(row[pos].as_f64(), row[pos + 1].as_int() != 0),
            AggFunc::Avg => AggState::Avg(row[pos].as_f64(), row[pos + 1].as_int()),
            AggFunc::Min => AggState::Min(match &row[pos] {
                Value::Null => None,
                v => Some(v.clone()),
            }),
            AggFunc::Max => AggState::Max(match &row[pos] {
                Value::Null => None,
                v => Some(v.clone()),
            }),
        };
        pos += state_arity(a.func);
        states.push(s);
    }
    (key_vals, states)
}

/// Execute one task on its server, charging that server's resources.
fn run_task(
    ctx: &mut SimCtx,
    db: &Db,
    frag: &Fragment,
    frag_bytes: usize,
    task: &Task,
) -> Result<Vec<Row>> {
    let mut rows_out = Vec::new();
    let mut groups = HashMap::new();
    let mut rows_scanned = 0usize;
    match &task.pages {
        TaskPages::Ebp(locs) => {
            let client = db
                .astore_client()
                .ok_or_else(|| EngineError::Query("EBP task without AStore".into()))?;
            let server = client
                .server(task.node)
                .ok_or_else(|| EngineError::Query(format!("no AStore server {}", task.node)))?;
            let result: Result<()> = db.rpc().call(
                ctx,
                task.node,
                server.res(),
                frag_bytes + locs.len() * 16,
                0,
                |c| {
                    // The storage-side scan pipelines: reads stream across
                    // the PMem lanes (issued back-to-back, the device queue
                    // models the parallelism) while the idle cores process
                    // pages as they arrive (§VI-B). The task finishes when
                    // both the last read and the operator work complete.
                    let pmem = server.res().pmem.as_ref().expect("astore node pmem");
                    let issue = c.now();
                    let mut io_done = issue;
                    let mut cpu_done = issue;
                    for loc in locs {
                        let Some(seg_off) = server.segment_offset(loc.seg.id) else {
                            continue;
                        };
                        // Local PMem read (no network).
                        let done =
                            pmem.acquire(issue, db.env().model.pmem_read_svc(loc.len as usize));
                        io_done = io_done.max(done);
                        let Ok(bytes) =
                            server.device().peek(seg_off + loc.offset, loc.len as usize)
                        else {
                            continue;
                        };
                        let Ok(page) = Page::from_bytes(&bytes) else {
                            continue;
                        };
                        let before = rows_scanned;
                        process_page(&page, frag, &mut rows_out, &mut groups, &mut rows_scanned)?;
                        // Operator work on the idle cores: each page is
                        // handed to a core as its read completes.
                        let page_rows = (rows_scanned - before) as u64;
                        if page_rows > 0 {
                            let cpu = server
                                .res()
                                .cpu
                                .acquire(done, VTime::from_nanos(page_rows * 200));
                            cpu_done = cpu_done.max(cpu);
                        }
                    }
                    c.wait_until(io_done.max(cpu_done));
                    Ok(())
                },
            )?;
            result?;
        }
        TaskPages::PageStore(pages) => {
            let server = db
                .pagestore()
                .servers()
                .iter()
                .find(|s| s.node() == task.node)
                .cloned()
                .ok_or_else(|| EngineError::Query(format!("no PageStore server {}", task.node)))?;
            let cfg = db.pagestore().cfg().clone();
            let result: Result<()> = db.rpc().call(
                ctx,
                task.node,
                server.res(),
                frag_bytes + pages.len() * 12,
                0,
                |c| {
                    let mut cpu_done = c.now();
                    for (pid, min_lsn) in pages {
                        match server.local_page(c, &cfg, *pid, *min_lsn) {
                            Ok(page) => {
                                let before = rows_scanned;
                                process_page(
                                    &page,
                                    frag,
                                    &mut rows_out,
                                    &mut groups,
                                    &mut rows_scanned,
                                )?;
                                // Pages are handed to idle cores as they
                                // come off the SSD, overlapping the
                                // remaining reads.
                                let page_rows = (rows_scanned - before) as u64;
                                if page_rows > 0 {
                                    let cpu = server
                                        .res()
                                        .cpu
                                        .acquire(c.now(), VTime::from_nanos(page_rows * 250));
                                    cpu_done = cpu_done.max(cpu);
                                }
                            }
                            Err(vedb_pagestore::PageStoreError::UnknownPage(_)) => continue,
                            Err(e) => return Err(e.into()),
                        }
                    }
                    c.wait_until(cpu_done);
                    Ok(())
                },
            )?;
            result?;
        }
    }
    let mut partials = if frag.agg.is_some() {
        states_to_rows(groups)
    } else {
        rows_out
    };
    // Response streaming back to the engine: charge the transfer size.
    let resp_bytes: usize = partials.len() * 48;
    ctx.advance(VTime::from_nanos(
        (resp_bytes as u64).div_ceil(1024) * db.env().model.wire_per_kb_ns,
    ));
    partials.shrink_to_fit();
    Ok(partials)
}

/// Orchestrate a pushed-down scan (optionally with partial aggregation):
/// split → parallel dispatch → collect → secondary aggregation (§VI-B).
pub fn pushdown_scan(
    ctx: &mut SimCtx,
    db: &Db,
    table: &str,
    filter: &Option<Expr>,
    project: &Option<Vec<Expr>>,
    agg: Option<FragAgg>,
) -> Result<Vec<Row>> {
    let space = db.with_table(table, |t| t.space_no)?;
    // PageStore must be able to serve every logged page version.
    db.flush_ship(ctx, true);
    let frag = Fragment {
        space,
        filter: clone_opt(filter),
        project: clone_opt_vec(project),
        agg,
    };
    let mut frag_buf = Vec::with_capacity(128);
    encode_fragment(&frag, &mut frag_buf);
    // Serialization cost on the engine.
    let done = db.env().engine_cpu.acquire(
        ctx.now(),
        VTime::from_nanos(db.env().model.cpu_fragment_codec_ns),
    );
    ctx.wait_until(done);

    let tasks = split_tasks(db, space);
    let mut partial_sets = Vec::with_capacity(tasks.len());
    let mut done_max = ctx.now();
    for task in &tasks {
        let mut task_ctx = ctx.fork();
        partial_sets.push(run_task(&mut task_ctx, db, &frag, frag_buf.len(), task)?);
        done_max = done_max.max(task_ctx.now());
    }
    ctx.wait_until(done_max);

    match &frag.agg {
        Some((group_by, aggs)) => {
            // Secondary aggregation over the partial states.
            let mut merged: HashMap<Vec<u8>, (Vec<Value>, Vec<AggState>)> = HashMap::new();
            for rows in partial_sets {
                for row in &rows {
                    let (key_vals, states) = row_to_states(row, group_by.len(), aggs);
                    let key = group_key(&key_vals);
                    match merged.get_mut(&key) {
                        Some((_, existing)) => {
                            for (e, s) in existing.iter_mut().zip(&states) {
                                e.merge(s);
                            }
                        }
                        None => {
                            merged.insert(key, (key_vals, states));
                        }
                    }
                }
            }
            let mut out: Vec<Row> = merged
                .into_values()
                .map(|(mut vals, states)| {
                    vals.extend(states.into_iter().map(AggState::finalize));
                    vals
                })
                .collect();
            out.sort_by_key(|r| group_key(r));
            Ok(out)
        }
        None => Ok(partial_sets.into_iter().flatten().collect()),
    }
}

fn clone_opt(e: &Option<Expr>) -> Option<Expr> {
    e.clone()
}

fn clone_opt_vec(e: &Option<Vec<Expr>>) -> Option<Vec<Expr>> {
    e.clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::expr::CmpOp;

    #[test]
    fn fragment_codec_roundtrip() {
        let frag = Fragment {
            space: 7,
            filter: Some(Expr::cmp(CmpOp::Gt, Expr::col(2), Expr::int(100))),
            project: Some(vec![Expr::col(0), Expr::mul(Expr::col(1), Expr::col(2))]),
            agg: Some((
                vec![0, 1],
                vec![
                    AggExpr::count_star(),
                    AggExpr::sum(Expr::col(2)),
                    AggExpr::avg(Expr::col(3)),
                    AggExpr::min(Expr::col(4)),
                    AggExpr::max(Expr::col(4)),
                ],
            )),
        };
        let mut buf = Vec::new();
        encode_fragment(&frag, &mut buf);
        assert_eq!(decode_fragment(&buf).unwrap(), frag);

        let bare = Fragment {
            space: 1,
            filter: None,
            project: None,
            agg: None,
        };
        let mut buf2 = Vec::new();
        encode_fragment(&bare, &mut buf2);
        assert_eq!(decode_fragment(&buf2).unwrap(), bare);
    }

    #[test]
    fn partial_state_rows_roundtrip() {
        let aggs = vec![
            AggExpr::count_star(),
            AggExpr::sum(Expr::col(1)),
            AggExpr::avg(Expr::col(1)),
            AggExpr::min(Expr::col(1)),
        ];
        let mut groups = HashMap::new();
        let key_vals = vec![Value::Int(5)];
        let mut states: Vec<AggState> = aggs.iter().map(|a| AggState::new(a.func)).collect();
        for v in [10i64, 20, 30] {
            states[0].update(AggFunc::CountStar, Value::Int(0));
            states[1].update(AggFunc::Sum, Value::Int(v));
            states[2].update(AggFunc::Avg, Value::Int(v));
            states[3].update(AggFunc::Min, Value::Int(v));
        }
        groups.insert(group_key(&key_vals), (key_vals.clone(), states));
        let rows = states_to_rows(groups);
        assert_eq!(rows.len(), 1);
        let (kv, states2) = row_to_states(&rows[0], 1, &aggs);
        assert_eq!(kv, key_vals);
        let finals: Vec<Value> = states2.into_iter().map(AggState::finalize).collect();
        assert_eq!(finals[0], Value::Int(3));
        assert_eq!(finals[1], Value::Double(60.0));
        assert_eq!(finals[2], Value::Double(20.0));
        assert_eq!(finals[3], Value::Int(10));
    }
}
