//! Physical query plans.
//!
//! veDB processes each query single-threaded in the engine (§VI); plans are
//! small Volcano-style trees that the executor materializes bottom-up.
//! Plans are built programmatically (the reproduction has no SQL parser —
//! workload queries are constructed by the workloads crate).

use crate::query::expr::Expr;
use crate::row::Value;

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(*)`
    CountStar,
    /// `COUNT(expr)` (non-null).
    Count,
    /// `SUM(expr)`
    Sum,
    /// `AVG(expr)`
    Avg,
    /// `MIN(expr)`
    Min,
    /// `MAX(expr)`
    Max,
}

/// One aggregate column.
#[derive(Debug, Clone, PartialEq)]
pub struct AggExpr {
    /// The function.
    pub func: AggFunc,
    /// Input expression (ignored for `CountStar`).
    pub expr: Expr,
}

impl AggExpr {
    /// `COUNT(*)`.
    pub fn count_star() -> AggExpr {
        AggExpr {
            func: AggFunc::CountStar,
            expr: Expr::int(0),
        }
    }

    /// `SUM(expr)`.
    pub fn sum(expr: Expr) -> AggExpr {
        AggExpr {
            func: AggFunc::Sum,
            expr,
        }
    }

    /// `AVG(expr)`.
    pub fn avg(expr: Expr) -> AggExpr {
        AggExpr {
            func: AggFunc::Avg,
            expr,
        }
    }

    /// `MIN(expr)`.
    pub fn min(expr: Expr) -> AggExpr {
        AggExpr {
            func: AggFunc::Min,
            expr,
        }
    }

    /// `MAX(expr)`.
    pub fn max(expr: Expr) -> AggExpr {
        AggExpr {
            func: AggFunc::Max,
            expr,
        }
    }
}

/// A physical plan node.
#[derive(Debug, Clone, PartialEq)]
pub enum Plan {
    /// Full scan of a table's clustered tree with optional filter and
    /// projection — the push-down-eligible shape (§VI-A).
    SeqScan {
        /// Table name.
        table: String,
        /// Row filter (over the table's columns).
        filter: Option<Expr>,
        /// Projection (over the table's columns); `None` = all columns.
        project: Option<Vec<Expr>>,
    },
    /// Secondary-index prefix lookup followed by clustered row fetch.
    IndexLookup {
        /// Table name.
        table: String,
        /// Index name.
        index: String,
        /// Key prefix values.
        prefix: Vec<Value>,
        /// Residual filter over fetched rows.
        filter: Option<Expr>,
        /// Projection.
        project: Option<Vec<Expr>>,
    },
    /// Hash aggregation.
    HashAgg {
        /// Input plan.
        input: Box<Plan>,
        /// Group-by column indexes (into the input's output row).
        group_by: Vec<usize>,
        /// Aggregates.
        aggs: Vec<AggExpr>,
    },
    /// Hash equi-join (build = left, probe = right).
    HashJoin {
        /// Build side.
        left: Box<Plan>,
        /// Probe side.
        right: Box<Plan>,
        /// Join key columns of the left output.
        left_keys: Vec<usize>,
        /// Join key columns of the right output.
        right_keys: Vec<usize>,
        /// Residual filter over the concatenated row (left ++ right).
        filter: Option<Expr>,
        /// Projection over the concatenated row; `None` = all.
        project: Option<Vec<Expr>>,
    },
    /// Nested-loop join (arbitrary predicate; used when the optimizer
    /// picks it — Fig. 14's plan-change discussion).
    NestLoopJoin {
        /// Outer side.
        left: Box<Plan>,
        /// Inner side.
        right: Box<Plan>,
        /// Join predicate over the concatenated row.
        on: Expr,
        /// Projection over the concatenated row.
        project: Option<Vec<Expr>>,
    },
    /// Sort (+ optional limit).
    Sort {
        /// Input plan.
        input: Box<Plan>,
        /// Sort keys: (column index, descending).
        by: Vec<(usize, bool)>,
        /// Keep only the first `limit` rows.
        limit: Option<usize>,
    },
    /// Post-projection / filter over any input (secondary processing).
    Map {
        /// Input plan.
        input: Box<Plan>,
        /// Filter over the input row.
        filter: Option<Expr>,
        /// Projection over the input row.
        project: Option<Vec<Expr>>,
    },
}

impl Plan {
    /// Plain full scan.
    pub fn scan(table: &str) -> Plan {
        Plan::SeqScan {
            table: table.to_string(),
            filter: None,
            project: None,
        }
    }

    /// Filtered scan.
    pub fn scan_where(table: &str, filter: Expr) -> Plan {
        Plan::SeqScan {
            table: table.to_string(),
            filter: Some(filter),
            project: None,
        }
    }

    /// Aggregate this plan.
    pub fn agg(self, group_by: Vec<usize>, aggs: Vec<AggExpr>) -> Plan {
        Plan::HashAgg {
            input: Box::new(self),
            group_by,
            aggs,
        }
    }

    /// Hash-join with `right`.
    pub fn hash_join(self, right: Plan, left_keys: Vec<usize>, right_keys: Vec<usize>) -> Plan {
        Plan::HashJoin {
            left: Box::new(self),
            right: Box::new(right),
            left_keys,
            right_keys,
            filter: None,
            project: None,
        }
    }

    /// Sort by `(col, desc)` keys.
    pub fn sort(self, by: Vec<(usize, bool)>) -> Plan {
        Plan::Sort {
            input: Box::new(self),
            by,
            limit: None,
        }
    }

    /// Sort + limit.
    pub fn top_k(self, by: Vec<(usize, bool)>, k: usize) -> Plan {
        Plan::Sort {
            input: Box::new(self),
            by,
            limit: Some(k),
        }
    }

    /// Project columns of this plan's output.
    pub fn project(self, exprs: Vec<Expr>) -> Plan {
        Plan::Map {
            input: Box::new(self),
            filter: None,
            project: Some(exprs),
        }
    }

    /// Filter this plan's output.
    pub fn filtered(self, filter: Expr) -> Plan {
        Plan::Map {
            input: Box::new(self),
            filter: Some(filter),
            project: None,
        }
    }
}
