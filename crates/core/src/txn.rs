//! Transaction handles.
//!
//! A [`TxnHandle`] carries the per-transaction state the engine needs:
//! the held locks (released at commit/abort) and the logical undo chain
//! (applied in reverse on abort). Isolation is strict two-phase locking on
//! rows; durability is the WAL commit record (§III).

use crate::lock::LockKey;
use crate::wal::UndoInfo;

/// Transaction status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnStatus {
    /// Running.
    Active,
    /// Durably committed.
    Committed,
    /// Rolled back.
    Aborted,
}

/// A client-held transaction handle.
pub struct TxnHandle {
    /// Transaction id (unique per engine incarnation).
    pub id: u64,
    /// Current status.
    pub status: TxnStatus,
    /// Locks held (row keys), released at completion.
    pub(crate) locks: Vec<LockKey>,
    /// Logical undo chain, newest last.
    pub(crate) undo: Vec<UndoInfo>,
}

impl TxnHandle {
    /// New active transaction.
    pub(crate) fn new(id: u64) -> TxnHandle {
        TxnHandle {
            id,
            status: TxnStatus::Active,
            locks: Vec::new(),
            undo: Vec::new(),
        }
    }

    /// Is the transaction still running?
    pub fn is_active(&self) -> bool {
        self.status == TxnStatus::Active
    }

    /// Number of locks currently held (tests).
    pub fn lock_count(&self) -> usize {
        self.locks.len()
    }

    /// Number of undo entries accumulated (tests).
    pub fn undo_count(&self) -> usize {
        self.undo.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_flags() {
        let t = TxnHandle::new(7);
        assert!(t.is_active());
        assert_eq!(t.lock_count(), 0);
        assert_eq!(t.undo_count(), 0);
        let mut t2 = TxnHandle::new(8);
        t2.status = TxnStatus::Committed;
        assert!(!t2.is_active());
    }
}
