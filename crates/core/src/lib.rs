//! # vedb-core — the veDB DBEngine
//!
//! The compute layer of the reproduction (§III, §V, §VI): clustered B+Tree
//! tables over 16 KB slotted pages, a sharded-LRU buffer pool, row-level
//! two-phase locking, ARIES-style write-ahead REDO logging with logical
//! undo, and a Volcano-style query executor with the paper's push-down
//! framework.
//!
//! The engine is generic over its **log backend** ([`wal::LogBackend`]):
//!
//! * [`wal::BlobGroupLog`] — the baseline SSD LogStore (TCP + BlobGroups),
//! * [`wal::RingLog`] — AStore's SegmentRing over PMem + one-sided RDMA,
//!
//! and optionally attaches an **Extended Buffer Pool** ([`ebp::Ebp`])
//! between the local buffer pool and PageStore. Those two switches are
//! exactly the paper's "veDB" vs "veDB + AStore (+EBP)" configurations and
//! drive every experiment in §VII.

pub mod btree;
pub mod buffer;
pub mod catalog;
pub mod db;
pub mod ebp;
pub mod lock;
pub mod query;
pub mod recovery;
pub mod row;
pub mod txn;
pub mod wal;

pub use catalog::{Catalog, ColumnDef, ColumnType, IndexDef, TableDef};
pub use db::{Db, DbConfig, DbConfigBuilder, LogBackendKind};
pub use row::{Row, Value};
pub use txn::TxnHandle;
pub use wal::FlushPolicy;

use vedb_astore::PageId;

/// Errors surfaced by the engine.
///
/// The enum is `#[non_exhaustive]`: callers must not match on variants to
/// drive recovery decisions — use [`EngineError::is_retryable`] /
/// [`EngineError::is_fencing`] instead, so new failure modes can be added
/// without breaking downstream code.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// Storage-layer failure (AStore).
    AStore(vedb_astore::AStoreError),
    /// Storage-layer failure (PageStore / page format).
    PageStore(vedb_pagestore::PageStoreError),
    /// Baseline blob-store failure.
    Blob(vedb_blobstore::BlobError),
    /// Duplicate primary key on insert.
    DuplicateKey {
        /// Table the insert targeted.
        table: String,
    },
    /// Row not found (update/delete/get by key).
    NotFound,
    /// Lock wait timed out (deadlock victim).
    LockTimeout {
        /// Page/row the transaction was waiting for.
        context: String,
    },
    /// Transaction already finished.
    TxnFinished,
    /// Catalog lookup failure.
    UnknownTable(String),
    /// Encoding failure.
    Codec(String),
    /// A page read could not be satisfied anywhere.
    PageUnavailable(PageId),
    /// Query planning/execution error.
    Query(String),
    /// Invalid engine configuration (rejected by `DbConfigBuilder::build`).
    Config(String),
}

impl EngineError {
    /// Is this a transient storage/network fault that retrying the same
    /// operation may clear? Delegates to the storage layers' own
    /// classification (see [`vedb_astore::AStoreError::is_retryable`]).
    pub fn is_retryable(&self) -> bool {
        match self {
            EngineError::AStore(e) => e.is_retryable(),
            EngineError::PageStore(e) => e.is_retryable(),
            EngineError::LockTimeout { .. } => true,
            _ => false,
        }
    }

    /// Is this a lease-fencing error — the engine's storage lease was
    /// superseded by a newer incarnation? Fencing is final once renewal is
    /// refused; the engine must shut down rather than retry.
    pub fn is_fencing(&self) -> bool {
        match self {
            EngineError::AStore(e) => e.is_fencing(),
            _ => false,
        }
    }
}

impl From<vedb_astore::AStoreError> for EngineError {
    fn from(e: vedb_astore::AStoreError) -> Self {
        EngineError::AStore(e)
    }
}

impl From<vedb_pagestore::PageStoreError> for EngineError {
    fn from(e: vedb_pagestore::PageStoreError) -> Self {
        EngineError::PageStore(e)
    }
}

impl From<vedb_rdma::RdmaError> for EngineError {
    fn from(e: vedb_rdma::RdmaError) -> Self {
        EngineError::AStore(vedb_astore::AStoreError::Network(e))
    }
}

impl From<vedb_blobstore::BlobError> for EngineError {
    fn from(e: vedb_blobstore::BlobError) -> Self {
        EngineError::Blob(e)
    }
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::AStore(e) => write!(f, "astore: {e}"),
            EngineError::PageStore(e) => write!(f, "pagestore: {e}"),
            EngineError::Blob(e) => write!(f, "blobstore: {e}"),
            EngineError::DuplicateKey { table } => write!(f, "duplicate key in {table}"),
            EngineError::NotFound => write!(f, "row not found"),
            EngineError::LockTimeout { context } => write!(f, "lock timeout on {context}"),
            EngineError::TxnFinished => write!(f, "transaction already finished"),
            EngineError::UnknownTable(t) => write!(f, "unknown table {t}"),
            EngineError::Codec(m) => write!(f, "codec: {m}"),
            EngineError::PageUnavailable(p) => write!(f, "page {p} unavailable"),
            EngineError::Query(m) => write!(f, "query: {m}"),
            EngineError::Config(m) => write!(f, "config: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Result alias for engine operations.
pub type Result<T> = std::result::Result<T, EngineError>;
