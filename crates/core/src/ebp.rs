//! The Extended Buffer Pool (§V-C/D/E).
//!
//! Pages evicted from the local buffer pool are cached in AStore (PMem,
//! replication factor 1 — losing an EBP page only lowers the hit ratio).
//! The engine keeps the **EBP Index**: `{(space_no, page_no) → lsn +
//! segment + offset}` in sharded maps, each shard with its own LRU order
//! (the paper's "multiple LRU lists" for contention relief, §V-D).
//!
//! Writes are append-only records in EBP segments; overwriting a page makes
//! the previous image *garbage*, tracked per segment. Segments whose
//! garbage ratio crosses a threshold are **compacted** (live records moved
//! to the active segment) or, if compaction is disabled, released outright
//! — dropping some live pages with them, exactly as the paper describes.
//!
//! Capacity policies (§V-C): `Flat` — one LRU space for everyone;
//! `Priority` — spaces carry priorities, and a page may only evict pages of
//! its own priority or lower, so hot push-down tables can be pinned by
//! giving their space a high priority (§VI-B).
//!
//! Recovery (§V-E): the engine periodically ships `(page, latest LSN)`
//! batches to the AStore servers; after a DBEngine crash the servers scan
//! their local PMem, prune stale images, and return the valid entries from
//! which [`Ebp::recover`] rebuilds the index.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use vedb_astore::client::{AStoreClient, SegmentHandle};
use vedb_astore::ebp_format::{encode_header, EbpRecordHeader, RECORD_HDR_SIZE};
use vedb_astore::layout::SegmentClass;
use vedb_astore::{AppendOpts, Lsn, PageId, SegmentId, SegmentOpts};
use vedb_pagestore::Page;
use vedb_sim::fault::NodeId;
use vedb_sim::metrics::Counter;
use vedb_sim::{MetricsRegistry, SimCtx, VTime};

use crate::Result;

/// EBP capacity management policy (§V-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EbpPolicy {
    /// No partitioning: all pages compete in one LRU space.
    Flat,
    /// Spaces carry priorities; a page can only displace pages of equal or
    /// lower priority.
    Priority,
}

/// EBP configuration.
#[derive(Clone)]
pub struct EbpConfig {
    /// Total live-page capacity in bytes.
    pub capacity_bytes: u64,
    /// Capacity policy.
    pub policy: EbpPolicy,
    /// Index/LRU shards.
    pub shards: usize,
    /// Whether background compaction is enabled.
    pub compaction: bool,
    /// Garbage ratio above which a frozen segment is compacted/released.
    pub compaction_garbage_ratio: f64,
    /// Per-space priority (Priority policy; default 0).
    pub space_priority: HashMap<u32, u8>,
    /// Page→LSN mappings buffered before a batch is shipped to the
    /// AStore servers.
    pub lsn_batch_size: usize,
}

impl Default for EbpConfig {
    fn default() -> Self {
        EbpConfig {
            capacity_bytes: 64 << 20,
            policy: EbpPolicy::Flat,
            shards: 8,
            compaction: true,
            compaction_garbage_ratio: 0.5,
            space_priority: HashMap::new(),
            lsn_batch_size: 64,
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Entry {
    lsn: Lsn,
    seg: SegmentHandle,
    offset: u64,
    len: u32,
    prio: u8,
    touch: u64,
}

struct Shard {
    entries: HashMap<PageId, Entry>,
    recency: BTreeMap<u64, PageId>,
}

struct SegInfo {
    handle: SegmentHandle,
    used: u64,
    garbage: u64,
}

struct SegTable {
    active: Option<SegmentHandle>,
    info: HashMap<SegmentId, SegInfo>,
}

/// Where an EBP-cached page physically lives (push-down task routing).
#[derive(Debug, Clone, Copy)]
pub struct EbpLoc {
    /// AStore node hosting the (single) replica.
    pub node: NodeId,
    /// Segment.
    pub seg: SegmentHandle,
    /// Offset of the page image within the segment.
    pub offset: u64,
    /// Image length.
    pub len: u32,
    /// LSN the image was current as of.
    pub lsn: Lsn,
}

/// Registry-mirrored EBP counters (component `core`). The registry comes
/// from the AStore client, so EBP activity lands in the same deployment
/// report as the subsystems underneath it.
struct EbpStats {
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    writes: Arc<Counter>,
    /// Write offers satisfied by an already-cached image at the same or a
    /// newer LSN (touch only, no append).
    dedups: Arc<Counter>,
    evictions: Arc<Counter>,
    compactions: Arc<Counter>,
}

impl EbpStats {
    fn register(registry: &MetricsRegistry) -> Self {
        EbpStats {
            hits: registry.counter("core", "ebp_hits"),
            misses: registry.counter("core", "ebp_misses"),
            writes: registry.counter("core", "ebp_writes"),
            dedups: registry.counter("core", "ebp_dedups"),
            evictions: registry.counter("core", "ebp_evictions"),
            compactions: registry.counter("core", "ebp_compactions"),
        }
    }
}

/// The Extended Buffer Pool manager (engine side).
pub struct Ebp {
    client: Arc<AStoreClient>,
    cfg: EbpConfig,
    shards: Vec<Mutex<Shard>>,
    segs: Mutex<SegTable>,
    live_bytes: AtomicU64,
    touch: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    lsn_batch: Mutex<Vec<(PageId, Lsn)>>,
    /// Set while a compaction pass runs: re-admission writes go through
    /// [`Ebp::write_page`], whose trailing `maybe_compact` must not recurse
    /// into another pass over the same (still-registered) segment.
    compacting: AtomicBool,
    stats: EbpStats,
}

impl Ebp {
    /// Create an empty EBP over `client`. Counters publish into the
    /// client's metrics registry.
    pub fn new(client: Arc<AStoreClient>, cfg: EbpConfig) -> Ebp {
        assert!(cfg.shards > 0);
        let shards = (0..cfg.shards)
            .map(|_| {
                Mutex::new(Shard {
                    entries: HashMap::new(),
                    recency: BTreeMap::new(),
                })
            })
            .collect();
        let stats = EbpStats::register(client.metrics());
        Ebp {
            client,
            cfg,
            shards,
            segs: Mutex::new(SegTable {
                active: None,
                info: HashMap::new(),
            }),
            live_bytes: AtomicU64::new(0),
            touch: AtomicU64::new(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            lsn_batch: Mutex::new(Vec::new()),
            compacting: AtomicBool::new(false),
            stats,
        }
    }

    fn shard_of(&self, pid: PageId) -> usize {
        let h = (pid.space_no as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((pid.page_no as u64).wrapping_mul(0xFF51_AFD7_ED55_8CCD));
        (h % self.shards.len() as u64) as usize
    }

    fn prio_of(&self, pid: PageId) -> u8 {
        match self.cfg.policy {
            EbpPolicy::Flat => 0,
            EbpPolicy::Priority => *self.cfg.space_priority.get(&pid.space_no).unwrap_or(&0),
        }
    }

    /// EBP hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// EBP misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Reset the hit/miss counters.
    pub fn reset_stats(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }

    /// Live cached bytes.
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes.load(Ordering::Relaxed)
    }

    /// Number of cached pages.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().entries.len()).sum()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Is a page currently cached (any version)?
    pub fn contains(&self, pid: PageId) -> bool {
        self.shards[self.shard_of(pid)]
            .lock()
            .entries
            .contains_key(&pid)
    }

    /// Physical location of a cached page (push-down routing).
    pub fn locate(&self, pid: PageId) -> Option<EbpLoc> {
        let e = *self.shards[self.shard_of(pid)].lock().entries.get(&pid)?;
        let node = self.client.cached_route(e.seg.id)?.replicas.first()?.node;
        Some(EbpLoc {
            node,
            seg: e.seg,
            offset: e.offset,
            len: e.len,
            lsn: e.lsn,
        })
    }

    fn active_segment(&self, ctx: &mut SimCtx, need: u64) -> Result<SegmentHandle> {
        let mut segs = self.segs.lock();
        if let Some(h) = segs.active {
            let used = self.client.segment_len(h);
            if used + need <= self.client.segment_capacity(h) && !self.client.is_frozen(h) {
                return Ok(h);
            }
        }
        // Freeze current (it becomes a compaction candidate) and open a new
        // segment.
        let h = self
            .client
            .create_segment_with(ctx, SegmentOpts::new(SegmentClass::Ebp))?;
        segs.active = Some(h);
        segs.info.insert(
            h.id,
            SegInfo {
                handle: h,
                used: 0,
                garbage: 0,
            },
        );
        Ok(h)
    }

    fn drop_entry(&self, pid: PageId, e: &Entry) {
        self.live_bytes.fetch_sub(e.len as u64, Ordering::Relaxed);
        let mut segs = self.segs.lock();
        if let Some(info) = segs.info.get_mut(&e.seg.id) {
            info.garbage += e.len as u64 + RECORD_HDR_SIZE as u64;
        }
        let _ = pid;
    }

    /// Cache a page image. Applies the admission/eviction policy; may
    /// trigger segment roll-over and compaction. A page that cannot be
    /// admitted (Priority policy, nothing evictable) is silently skipped —
    /// the EBP is a cache, not a store.
    pub fn write_page(&self, ctx: &mut SimCtx, pid: PageId, page: &Page, lsn: Lsn) -> Result<()> {
        // Eviction of an unmodified page whose image the cache already holds
        // (same or newer LSN) is a touch, not a new append — otherwise a
        // read-only workload turns every eviction into garbage and
        // compaction churn. Compaction passes are exempt: their
        // re-admissions must move the record out of the dying segment even
        // at an unchanged LSN.
        if !self.compacting.load(Ordering::Relaxed) {
            let mut shard = self.shards[self.shard_of(pid)].lock();
            if let Some(e) = shard.entries.get(&pid).copied() {
                if e.lsn >= lsn {
                    let t = self.touch.fetch_add(1, Ordering::Relaxed);
                    shard.recency.remove(&e.touch);
                    shard.recency.insert(t, pid);
                    shard.entries.get_mut(&pid).expect("present").touch = t;
                    self.stats.dedups.inc();
                    return Ok(());
                }
            }
        }
        let bytes = page.as_bytes();
        let prio = self.prio_of(pid);
        let shard_idx = self.shard_of(pid);
        let shard_cap = self.cfg.capacity_bytes / self.shards.len() as u64;

        // Admission + eviction decision under the shard lock.
        {
            let mut shard = self.shards[shard_idx].lock();
            // Overwrite: old image becomes garbage.
            if let Some(old) = shard.entries.remove(&pid) {
                shard.recency.remove(&old.touch);
                self.drop_entry(pid, &old);
            }
            let shard_bytes = |s: &Shard| s.entries.values().map(|e| e.len as u64).sum::<u64>();
            let mut freed_enough = shard_bytes(&shard) + bytes.len() as u64 <= shard_cap;
            while !freed_enough {
                let victim = shard.recency.iter().map(|(t, p)| (*t, *p)).find(|(_, p)| {
                    shard
                        .entries
                        .get(p)
                        .map(|e| e.prio <= prio)
                        .unwrap_or(false)
                });
                match victim {
                    Some((t, p)) => {
                        shard.recency.remove(&t);
                        if let Some(e) = shard.entries.remove(&p) {
                            self.drop_entry(p, &e);
                            self.stats.evictions.inc();
                        }
                        freed_enough = shard_bytes(&shard) + bytes.len() as u64 <= shard_cap;
                    }
                    None => {
                        // Priority policy: nothing evictable — skip caching.
                        return Ok(());
                    }
                }
            }
        }

        // Append the record + terminator to the active segment.
        let hdr = encode_header(&EbpRecordHeader {
            page: pid,
            lsn,
            len: bytes.len() as u32,
        });
        let mut record = Vec::with_capacity(RECORD_HDR_SIZE + bytes.len());
        record.extend_from_slice(&hdr);
        record.extend_from_slice(bytes);
        let zero = [0u8; RECORD_HDR_SIZE];
        let need = (record.len() + zero.len()) as u64;
        let mut seg = self.active_segment(ctx, need)?;
        let opts = AppendOpts::new().with_tail(&zero);
        let offset = match self.client.append_with(ctx, seg, &record, opts) {
            Ok(off) => off,
            Err(e) if e.is_segment_unwritable() => {
                self.segs.lock().active = None;
                seg = self.active_segment(ctx, need)?;
                self.client
                    .append_with(ctx, seg, &record, AppendOpts::new().with_tail(&zero))?
            }
            Err(e) => return Err(e.into()),
        };
        {
            let mut segs = self.segs.lock();
            if let Some(info) = segs.info.get_mut(&seg.id) {
                info.used += need;
            }
        }
        let t = self.touch.fetch_add(1, Ordering::Relaxed);
        {
            let mut shard = self.shards[shard_idx].lock();
            shard.entries.insert(
                pid,
                Entry {
                    lsn,
                    seg,
                    offset: offset + RECORD_HDR_SIZE as u64,
                    len: bytes.len() as u32,
                    prio,
                    touch: t,
                },
            );
            shard.recency.insert(t, pid);
        }
        self.live_bytes
            .fetch_add(bytes.len() as u64, Ordering::Relaxed);
        self.stats.writes.inc();
        self.maybe_compact(ctx)?;
        Ok(())
    }

    /// Fetch a cached page no older than `min_lsn`. A stale hit is treated
    /// as a miss (and the stale entry dropped).
    pub fn read_page(&self, ctx: &mut SimCtx, pid: PageId, min_lsn: Lsn) -> Option<Page> {
        let shard_idx = self.shard_of(pid);
        let entry = {
            let mut shard = self.shards[shard_idx].lock();
            match shard.entries.get(&pid).copied() {
                Some(e) if e.lsn >= min_lsn => {
                    // Touch.
                    let t = self.touch.fetch_add(1, Ordering::Relaxed);
                    shard.recency.remove(&e.touch);
                    shard.recency.insert(t, pid);
                    shard.entries.get_mut(&pid).expect("present").touch = t;
                    Some(e)
                }
                Some(e) => {
                    // Stale image: drop it.
                    shard.recency.remove(&e.touch);
                    shard.entries.remove(&pid);
                    self.drop_entry(pid, &e);
                    None
                }
                None => None,
            }
        };
        let Some(e) = entry else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            self.stats.misses.inc();
            return None;
        };
        match self.client.read(ctx, e.seg, e.offset, e.len as usize) {
            Ok(bytes) => match Page::from_bytes(&bytes) {
                Ok(p) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    self.stats.hits.inc();
                    Some(p)
                }
                Err(_) => None,
            },
            Err(_) => {
                // Server lost: remove the entry; hit ratio drops, nothing
                // else (§V-E).
                let mut shard = self.shards[shard_idx].lock();
                if let Some(e) = shard.entries.remove(&pid) {
                    shard.recency.remove(&e.touch);
                    self.drop_entry(pid, &e);
                }
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.stats.misses.inc();
                None
            }
        }
    }

    /// Record that the engine has a newer version of `pid` (modified in
    /// the local buffer pool); shipped to the AStore servers in batches for
    /// EBP recovery pruning (§V-C).
    pub fn note_page_lsn(&self, ctx: &mut SimCtx, pid: PageId, lsn: Lsn) {
        let flush = {
            let mut batch = self.lsn_batch.lock();
            batch.push((pid, lsn));
            batch.len() >= self.cfg.lsn_batch_size
        };
        if flush {
            self.flush_lsn_batch(ctx);
        }
    }

    /// Ship the buffered page→LSN batch to every AStore server.
    pub fn flush_lsn_batch(&self, ctx: &mut SimCtx) {
        let batch: Vec<(PageId, Lsn)> = std::mem::take(&mut *self.lsn_batch.lock());
        if batch.is_empty() {
            return;
        }
        for server in self.client.cm().live_servers() {
            // One RPC per server per batch.
            ctx.advance(VTime::from_micros(120));
            server.record_page_lsns(batch.iter().copied());
        }
    }

    /// Compact (or release) frozen segments whose garbage ratio crossed the
    /// threshold (§V-D). Returns the number of segments processed.
    pub fn maybe_compact(&self, ctx: &mut SimCtx) -> Result<usize> {
        // Re-admission below routes through `write_page`, which ends with a
        // `maybe_compact` call of its own; without this guard one segment
        // crossing the ratio triggers nested passes over the same segment
        // (repeated CM delete_segment + route churn — a compaction storm).
        if self.compacting.swap(true, Ordering::Acquire) {
            return Ok(0);
        }
        let result = self.compact_locked(ctx);
        self.compacting.store(false, Ordering::Release);
        result
    }

    fn compact_locked(&self, ctx: &mut SimCtx) -> Result<usize> {
        let candidates: Vec<(SegmentId, SegmentHandle)> = {
            let segs = self.segs.lock();
            segs.info
                .iter()
                .filter(|(_id, info)| {
                    Some(info.handle) != segs.active
                        && info.used > 0
                        && info.garbage as f64 / info.used as f64
                            >= self.cfg.compaction_garbage_ratio
                })
                .map(|(id, info)| (*id, info.handle))
                .collect()
        };
        let mut processed = 0;
        for (seg_id, handle) in candidates {
            if self.cfg.compaction {
                // Move live records into the active segment.
                let live: Vec<(PageId, Entry)> = self
                    .shards
                    .iter()
                    .flat_map(|s| {
                        s.lock()
                            .entries
                            .iter()
                            .filter(|(_, e)| e.seg.id == seg_id)
                            .map(|(p, e)| (*p, *e))
                            .collect::<Vec<_>>()
                    })
                    .collect();
                for (pid, e) in live {
                    if let Ok(bytes) = self.client.read(ctx, e.seg, e.offset, e.len as usize) {
                        if let Ok(page) = Page::from_bytes(&bytes) {
                            // Re-admit at the same LSN (write_page drops the
                            // old entry and appends to the active segment).
                            self.write_page(ctx, pid, &page, e.lsn)?;
                        }
                    }
                }
            } else {
                // Release directly, dropping live pages with it (§V-D).
                for s in &self.shards {
                    let mut shard = s.lock();
                    let dead: Vec<PageId> = shard
                        .entries
                        .iter()
                        .filter(|(_, e)| e.seg.id == seg_id)
                        .map(|(p, _)| *p)
                        .collect();
                    for p in dead {
                        if let Some(e) = shard.entries.remove(&p) {
                            shard.recency.remove(&e.touch);
                            self.live_bytes.fetch_sub(e.len as u64, Ordering::Relaxed);
                        }
                    }
                }
            }
            let _ = self.client.delete_segment(ctx, handle);
            self.segs.lock().info.remove(&seg_id);
            self.stats.compactions.inc();
            processed += 1;
        }
        Ok(processed)
    }

    /// Per-segment `(used, garbage)` bytes, active segment first absent —
    /// the compaction pressure view (tests / monitoring).
    pub fn segment_stats(&self) -> Vec<(u64, u64)> {
        let segs = self.segs.lock();
        segs.info
            .values()
            .map(|info| (info.used, info.garbage))
            .collect()
    }

    /// The first `limit` cached page ids (buffer-pool warm-up, §VIII).
    pub fn cached_pages(&self, limit: usize) -> Vec<PageId> {
        let mut out = Vec::with_capacity(limit.min(64));
        for shard in &self.shards {
            let s = shard.lock();
            // Most recently used first.
            for (_, pid) in s.recency.iter().rev() {
                if out.len() >= limit {
                    return out;
                }
                out.push(*pid);
            }
        }
        out
    }

    /// §VIII extension: an AStore server that crashed and restarted still
    /// holds its EBP segments in PMem ("leverage PMem persistency to
    /// recover EBP data pages locally once the AStore server is
    /// restarted"). Re-scan that server and re-adopt its valid pages into
    /// the index. Returns the number of pages re-attached.
    pub fn reattach_server(
        &self,
        ctx: &mut SimCtx,
        server: &Arc<vedb_astore::AStoreServer>,
    ) -> Result<usize> {
        let mut attached = 0;
        ctx.advance(VTime::from_micros(120)); // recovery RPC
        for found in server.ebp_recovery_scan(ctx) {
            // Only re-adopt segments the CM still routes (stale ones are
            // pending cleanup).
            let Ok(handle) = self
                .client
                .adopt_segment(ctx, found.segment, SegmentClass::Ebp)
            else {
                continue;
            };
            {
                let mut segs = self.segs.lock();
                segs.info.entry(handle.id).or_insert(SegInfo {
                    handle,
                    used: self.client.segment_len(handle),
                    garbage: 0,
                });
            }
            let shard_idx = self.shard_of(found.page);
            let prio = self.prio_of(found.page);
            let t = self.touch.fetch_add(1, Ordering::Relaxed);
            let mut shard = self.shards[shard_idx].lock();
            let newer_exists = shard
                .entries
                .get(&found.page)
                .map(|e| e.lsn >= found.lsn)
                .unwrap_or(false);
            if !newer_exists {
                if let Some(old) = shard.entries.remove(&found.page) {
                    shard.recency.remove(&old.touch);
                    self.live_bytes.fetch_sub(old.len as u64, Ordering::Relaxed);
                }
                shard.entries.insert(
                    found.page,
                    Entry {
                        lsn: found.lsn,
                        seg: handle,
                        offset: found.offset,
                        len: found.len,
                        prio,
                        touch: t,
                    },
                );
                shard.recency.insert(t, found.page);
                self.live_bytes
                    .fetch_add(found.len as u64, Ordering::Relaxed);
                attached += 1;
            }
        }
        Ok(attached)
    }

    /// Rebuild the EBP after a DBEngine crash from server-side scans
    /// (§V-E). `client` is the *new* engine incarnation's AStore client.
    pub fn recover(ctx: &mut SimCtx, client: Arc<AStoreClient>, cfg: EbpConfig) -> Result<Ebp> {
        let ebp = Ebp::new(Arc::clone(&client), cfg);
        let mut adopted: HashMap<SegmentId, SegmentHandle> = HashMap::new();
        for server in client.cm().live_servers() {
            // Recovery request is an RPC; the scan charges PMem time.
            ctx.advance(VTime::from_micros(120));
            for found in server.ebp_recovery_scan(ctx) {
                let handle = match adopted.get(&found.segment) {
                    Some(h) => *h,
                    None => {
                        let Ok(h) = client.adopt_segment(ctx, found.segment, SegmentClass::Ebp)
                        else {
                            continue; // segment's route is gone
                        };
                        ebp.segs.lock().info.insert(
                            h.id,
                            SegInfo {
                                handle: h,
                                used: client.segment_len(h),
                                garbage: 0,
                            },
                        );
                        adopted.insert(found.segment, h);
                        h
                    }
                };
                let prio = ebp.prio_of(found.page);
                let t = ebp.touch.fetch_add(1, Ordering::Relaxed);
                let shard_idx = ebp.shard_of(found.page);
                let mut shard = ebp.shards[shard_idx].lock();
                let newer = shard
                    .entries
                    .get(&found.page)
                    .map(|e| e.lsn >= found.lsn)
                    .unwrap_or(false);
                if !newer {
                    if let Some(old) = shard.entries.remove(&found.page) {
                        shard.recency.remove(&old.touch);
                        ebp.live_bytes.fetch_sub(old.len as u64, Ordering::Relaxed);
                    }
                    shard.entries.insert(
                        found.page,
                        Entry {
                            lsn: found.lsn,
                            seg: handle,
                            offset: found.offset,
                            len: found.len,
                            prio,
                            touch: t,
                        },
                    );
                    shard.recency.insert(t, found.page);
                    ebp.live_bytes
                        .fetch_add(found.len as u64, Ordering::Relaxed);
                }
            }
        }
        Ok(ebp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vedb_pagestore::PageType;

    // The EBP is exercised against a real AStore cluster via the shared
    // test harness in the astore crate's client tests; here we use the
    // public connect path.
    use vedb_astore::cm::ClusterManager;
    use vedb_rdma::RdmaEndpoint;
    use vedb_sim::{ClusterSpec, VTime};

    fn harness(ctx: &mut SimCtx, slot_kb: u64) -> (Arc<vedb_sim::SimEnv>, Arc<AStoreClient>) {
        let env = ClusterSpec::paper_default().build();
        let cm = ClusterManager::new(
            Arc::clone(&env.faults),
            VTime::from_secs(3600),
            VTime::from_secs(60),
        );
        for (i, n) in env.astore_nodes.iter().enumerate() {
            let s = vedb_astore::AStoreServer::new(
                i as NodeId,
                Arc::clone(n),
                8 << 20,
                slot_kb * 1024,
                false,
                VTime::from_millis(500),
                env.model.clone(),
            );
            cm.register_server(Arc::clone(&s));
            cm.heartbeat(VTime::ZERO, s.node(), s.free_slots());
        }
        let ep = RdmaEndpoint::new(
            env.model.clone(),
            Arc::clone(&env.faults),
            Arc::clone(&env.engine_nic),
        );
        let client = AStoreClient::connect(
            ctx,
            cm,
            ep,
            Arc::clone(&env.engine_cpu),
            env.model.clone(),
            1,
            VTime::from_millis(50),
        );
        (env, client)
    }

    fn page_with(marker: u8) -> Page {
        let mut p = Page::new();
        p.format(PageType::BTreeLeaf, 0);
        p.insert_at(0, &[marker; 64]).unwrap();
        p
    }

    fn small_cfg() -> EbpConfig {
        EbpConfig {
            capacity_bytes: 8 * 16 * 1024, // 8 pages
            shards: 1,
            ..Default::default()
        }
    }

    #[test]
    fn write_then_read_back() {
        let mut ctx = SimCtx::new(1, 7);
        let (_env, client) = harness(&mut ctx, 256);
        let ebp = Ebp::new(client, small_cfg());
        let pid = PageId::new(1, 5);
        let page = page_with(0xAB);
        ebp.write_page(&mut ctx, pid, &page, 100).unwrap();
        assert!(ebp.contains(pid));
        let got = ebp.read_page(&mut ctx, pid, 100).unwrap();
        assert_eq!(got.get(0).unwrap(), &[0xAB; 64]);
        assert_eq!(ebp.hits(), 1);
    }

    #[test]
    fn stale_entry_is_a_miss() {
        let mut ctx = SimCtx::new(1, 7);
        let (_env, client) = harness(&mut ctx, 256);
        let ebp = Ebp::new(client, small_cfg());
        let pid = PageId::new(1, 5);
        ebp.write_page(&mut ctx, pid, &page_with(1), 100).unwrap();
        // The engine has since modified the page up to LSN 200.
        assert!(ebp.read_page(&mut ctx, pid, 200).is_none());
        assert!(!ebp.contains(pid), "stale entry must be dropped");
        assert_eq!(ebp.misses(), 1);
    }

    #[test]
    fn read_latency_near_20us() {
        let mut ctx = SimCtx::new(1, 7);
        let (_env, client) = harness(&mut ctx, 256);
        let ebp = Ebp::new(client, small_cfg());
        let pid = PageId::new(1, 1);
        ebp.write_page(&mut ctx, pid, &page_with(1), 10).unwrap();
        let t0 = ctx.now();
        ebp.read_page(&mut ctx, pid, 10).unwrap();
        let us = (ctx.now() - t0).as_micros_f64();
        assert!(
            (10.0..=40.0).contains(&us),
            "EBP page read should be ~20us, got {us:.1}us"
        );
    }

    #[test]
    fn lru_eviction_bounds_size() {
        let mut ctx = SimCtx::new(1, 7);
        let (_env, client) = harness(&mut ctx, 1024);
        let ebp = Ebp::new(client, small_cfg()); // capacity: 8 pages
        for i in 0..30 {
            ebp.write_page(&mut ctx, PageId::new(1, i), &page_with(i as u8), 10)
                .unwrap();
        }
        assert!(ebp.len() <= 8, "EBP exceeded capacity: {} pages", ebp.len());
        assert!(ebp.live_bytes() <= 8 * 16 * 1024);
        // Most recent pages survived.
        assert!(ebp.contains(PageId::new(1, 29)));
        assert!(!ebp.contains(PageId::new(1, 0)));
    }

    #[test]
    fn priority_policy_protects_high_priority_pages() {
        let mut ctx = SimCtx::new(1, 7);
        let (_env, client) = harness(&mut ctx, 1024);
        let mut cfg = small_cfg();
        cfg.policy = EbpPolicy::Priority;
        cfg.space_priority.insert(7, 10); // space 7 is precious
        let ebp = Ebp::new(client, cfg);
        // Fill with high-priority pages.
        for i in 0..8 {
            ebp.write_page(&mut ctx, PageId::new(7, i), &page_with(1), 10)
                .unwrap();
        }
        // Low-priority pages cannot displace them: silently skipped.
        for i in 0..8 {
            ebp.write_page(&mut ctx, PageId::new(1, i), &page_with(2), 10)
                .unwrap();
        }
        for i in 0..8 {
            assert!(
                ebp.contains(PageId::new(7, i)),
                "high-prio page {i} evicted"
            );
            assert!(
                !ebp.contains(PageId::new(1, i)),
                "low-prio page {i} admitted"
            );
        }
        // A high-priority page *can* displace its own kind.
        ebp.write_page(&mut ctx, PageId::new(7, 100), &page_with(3), 10)
            .unwrap();
        assert!(ebp.contains(PageId::new(7, 100)));
    }

    #[test]
    fn overwrite_creates_garbage_and_compaction_reclaims() {
        let mut ctx = SimCtx::new(1, 7);
        let (_env, client) = harness(&mut ctx, 64); // small segments: ~3 pages each
        let cfg = EbpConfig {
            capacity_bytes: 4 * 16 * 1024,
            shards: 1,
            compaction: true,
            compaction_garbage_ratio: 0.4,
            ..Default::default()
        };
        let ebp = Ebp::new(client, cfg);
        let pid = PageId::new(1, 1);
        // Overwrite the same page many times: old images become garbage,
        // segments roll over, and compaction processes the frozen ones.
        for v in 0..20 {
            ebp.write_page(&mut ctx, pid, &page_with(v), 100 + v as u64)
                .unwrap();
        }
        // The page is still readable at its latest LSN.
        let got = ebp.read_page(&mut ctx, pid, 119).unwrap();
        assert_eq!(got.get(0).unwrap(), &[19; 64]);
        // Compaction kept the segment table bounded.
        let n_segs = ebp.segs.lock().info.len();
        assert!(
            n_segs <= 3,
            "compaction should bound segments, have {n_segs}"
        );
    }

    #[test]
    fn recovery_rebuilds_index_and_prunes_stale() {
        let mut ctx = SimCtx::new(1, 7);
        let (env, client) = harness(&mut ctx, 256);
        let ebp = Ebp::new(Arc::clone(&client), small_cfg());
        let keep = PageId::new(1, 1);
        let stale = PageId::new(1, 2);
        ebp.write_page(&mut ctx, keep, &page_with(0x11), 100)
            .unwrap();
        ebp.write_page(&mut ctx, stale, &page_with(0x22), 100)
            .unwrap();
        // Engine modifies `stale` afterwards and ships the mapping.
        ebp.note_page_lsn(&mut ctx, stale, 500);
        ebp.flush_lsn_batch(&mut ctx);

        // DBEngine crashes: a new incarnation recovers the EBP.
        drop(ebp);
        let ep = RdmaEndpoint::new(
            env.model.clone(),
            Arc::clone(&env.faults),
            Arc::clone(&env.engine_nic),
        );
        let client2 = AStoreClient::connect(
            &mut ctx,
            Arc::clone(client.cm()),
            ep,
            Arc::clone(&env.engine_cpu),
            env.model.clone(),
            1,
            VTime::from_millis(50),
        );
        let recovered = Ebp::recover(&mut ctx, client2, small_cfg()).unwrap();
        assert!(recovered.contains(keep), "fresh page must survive recovery");
        assert!(!recovered.contains(stale), "stale page must be pruned");
        let got = recovered.read_page(&mut ctx, keep, 100).unwrap();
        assert_eq!(got.get(0).unwrap(), &[0x11; 64]);
    }

    #[test]
    fn server_loss_degrades_to_misses() {
        let mut ctx = SimCtx::new(1, 7);
        let (env, client) = harness(&mut ctx, 256);
        let ebp = Ebp::new(client, small_cfg());
        let pid = PageId::new(1, 3);
        ebp.write_page(&mut ctx, pid, &page_with(5), 10).unwrap();
        let node = ebp.locate(pid).unwrap().node;
        env.faults.crash(node);
        assert!(ebp.read_page(&mut ctx, pid, 10).is_none());
        assert!(!ebp.contains(pid), "entry for lost server must be dropped");
    }
}
