//! Row-level two-phase locking, aware of virtual time.
//!
//! Locks are keyed by `(index space, encoded primary key)`. Mutual
//! exclusion is enforced in real time (threads block on a condvar), and the
//! *virtual* cost of waiting is accounted by stamping each key with the
//! virtual time of its last conflicting release: a waiter that is granted
//! the lock advances its clock to that stamp. Hot-row contention therefore
//! serializes transactions in virtual time exactly as it would on the real
//! system — which is what the order-processing experiment (Fig. 8) is
//! about.
//!
//! Deadlocks are broken by a real-time wait timeout; the victim aborts and
//! the workload retries (the behaviour MySQL-family engines exhibit).

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};
use vedb_sim::metrics::{Counter, LatencyRecorder};
use vedb_sim::trace::TraceLog;
use vedb_sim::{LockContention, MetricsRegistry, SimCtx, VTime};

use crate::{EngineError, Result};

/// Lock key: (index space, encoded row key).
pub type LockKey = (u32, Vec<u8>);

/// Lock mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// Shared (readers).
    Shared,
    /// Exclusive (writers).
    Exclusive,
}

#[derive(Default)]
struct LockState {
    /// (txn id, mode, grant vtime) for each holder. Multiple Shared
    /// holders, or exactly one Exclusive holder. The grant stamp is the
    /// holder's virtual clock at acquisition, so release can attribute the
    /// hold interval to the contention profile.
    holders: Vec<(u64, LockMode, VTime)>,
    /// Virtual time of the most recent release of *any* mode (an exclusive
    /// acquirer runs after every prior holder).
    last_any_release: VTime,
    /// Virtual time of the most recent *exclusive* release (a shared
    /// acquirer only waits for writers — readers never serialize readers).
    last_x_release: VTime,
}

struct Shard {
    table: Mutex<HashMap<LockKey, LockState>>,
    cv: Condvar,
}

/// The lock manager.
pub struct LockManager {
    shards: Vec<Arc<Shard>>,
    /// Real-time wait budget before declaring a deadlock victim.
    timeout: Duration,
    acquires: Arc<Counter>,
    waits: Arc<Counter>,
    timeouts: Arc<Counter>,
    wait_lat: Arc<LatencyRecorder>,
    trace: Arc<TraceLog>,
    /// Per-space (table/index) contention profile: wait-for counts, hold
    /// histograms, and the hot-key table surfaced in run reports.
    contention: Arc<LockContention>,
}

impl LockManager {
    /// Create a manager with `shards` hash shards and the given deadlock
    /// timeout (real time).
    pub fn new(shards: usize, timeout: Duration) -> LockManager {
        Self::with_metrics(shards, timeout, &MetricsRegistry::detached())
    }

    /// Like [`new`](Self::new), publishing lock counters into `registry`.
    pub fn with_metrics(
        shards: usize,
        timeout: Duration,
        registry: &MetricsRegistry,
    ) -> LockManager {
        LockManager {
            shards: (0..shards.max(1))
                .map(|_| {
                    Arc::new(Shard {
                        table: Mutex::new(HashMap::new()),
                        cv: Condvar::new(),
                    })
                })
                .collect(),
            timeout,
            acquires: registry.counter("core", "lock_acquires"),
            waits: registry.counter("core", "lock_waits"),
            timeouts: registry.counter("core", "lock_timeouts"),
            wait_lat: registry.latency("core", "lock_wait"),
            trace: Arc::clone(registry.trace()),
            contention: Arc::clone(registry.lock_contention()),
        }
    }

    /// Label `space` in the contention profile (reports render the label
    /// instead of a bare space number). Called by the catalog when tables
    /// and indexes are defined.
    pub fn set_space_label(&self, space: u32, label: impl Into<String>) {
        self.contention.set_label(space, label);
    }

    fn shard_of(&self, key: &LockKey) -> &Arc<Shard> {
        let mut h = key.0 as u64;
        for &b in &key.1 {
            h = h.wrapping_mul(0x100_0000_01b3) ^ b as u64;
        }
        &self.shards[(h % self.shards.len() as u64) as usize]
    }

    fn compatible(state: &LockState, txn: u64, mode: LockMode) -> bool {
        if state.holders.is_empty() {
            return true;
        }
        if state.holders.iter().all(|(t, _, _)| *t == txn) {
            // Re-entrant (covers upgrade by the sole holder).
            return true;
        }
        mode == LockMode::Shared && state.holders.iter().all(|(_, m, _)| *m == LockMode::Shared)
    }

    /// Acquire `key` in `mode` for `txn`. Blocks (real time) until granted;
    /// the caller's virtual clock is advanced past the conflicting
    /// release. Returns `LockTimeout` if the wait exceeds the deadlock
    /// budget.
    pub fn acquire(&self, ctx: &mut SimCtx, txn: u64, key: LockKey, mode: LockMode) -> Result<()> {
        // Timeout (deadlock-victim) paths drop the guard → abandoned span.
        let sp = self.trace.span(ctx, "lock", "wait");
        let shard = Arc::clone(self.shard_of(&key));
        // vedb-lint: allow(no-wall-clock, "real-time budget bounding how long a live OS thread may spin-wait on a row lock; it decides victim selection, never enters reported latencies (those come from the trace span virtual clock)")
        let deadline = std::time::Instant::now() + self.timeout;
        let mut table = shard.table.lock();
        loop {
            let state = table.entry(key.clone()).or_default();
            if Self::compatible(state, txn, mode) {
                let release = match mode {
                    LockMode::Shared => state.last_x_release,
                    LockMode::Exclusive => state.last_any_release,
                };
                // Grant stamp == the acquirer's clock after the virtual
                // wait below; an upgrade keeps the original grant (the
                // hold started at the first acquisition).
                let grant = ctx.now().max(release);
                match state.holders.iter_mut().find(|(t, _, _)| *t == txn) {
                    Some(h) => {
                        if mode == LockMode::Exclusive {
                            h.1 = LockMode::Exclusive; // upgrade
                        }
                    }
                    None => state.holders.push((txn, mode, grant)),
                }
                drop(table);
                self.acquires.inc();
                self.contention.note_acquire(key.0);
                if release > ctx.now() {
                    self.waits.inc();
                    self.wait_lat.record(release - ctx.now());
                    self.contention
                        .note_wait(key.0, &key.1, release - ctx.now());
                }
                // Account the virtual wait: we run after the conflicting
                // holder's release.
                ctx.wait_until(release);
                sp.finish(ctx);
                return Ok(());
            }
            if shard.cv.wait_until(&mut table, deadline).timed_out() {
                self.timeouts.inc();
                return Err(EngineError::LockTimeout {
                    context: format!("space {} key {:02x?}", key.0, &key.1[..key.1.len().min(8)]),
                });
            }
        }
    }

    /// Release one lock held by `txn`, stamping the release virtual time
    /// (per mode: see [`LockState`]).
    pub fn release(&self, now: VTime, txn: u64, key: &LockKey) {
        let shard = self.shard_of(key);
        let mut table = shard.table.lock();
        let mut held = None;
        if let Some(state) = table.get_mut(key) {
            held = state
                .holders
                .iter()
                .find(|(t, _, _)| *t == txn)
                .map(|(_, m, g)| (*m, *g));
            state.holders.retain(|(t, _, _)| *t != txn);
            state.last_any_release = state.last_any_release.max(now);
            if matches!(held, Some((LockMode::Exclusive, _))) {
                state.last_x_release = state.last_x_release.max(now);
            }
        }
        shard.cv.notify_all();
        drop(table);
        if let Some((_, grant)) = held {
            let hold = if now > grant {
                now - grant
            } else {
                VTime::ZERO
            };
            self.contention.note_hold(key.0, hold);
        }
    }

    /// Release every lock in `keys` (commit/abort path).
    pub fn release_all(&self, now: VTime, txn: u64, keys: &[LockKey]) {
        for key in keys {
            self.release(now, txn, key);
        }
    }

    /// Number of keys with at least one holder (tests).
    pub fn held_keys(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.table
                    .lock()
                    .values()
                    .filter(|st| !st.holders.is_empty())
                    .count()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn key(k: u8) -> LockKey {
        (1, vec![k])
    }

    #[test]
    fn shared_locks_coexist() {
        let lm = LockManager::new(4, Duration::from_millis(100));
        let mut c1 = SimCtx::new(1, 7);
        let mut c2 = SimCtx::new(2, 7);
        lm.acquire(&mut c1, 1, key(1), LockMode::Shared).unwrap();
        lm.acquire(&mut c2, 2, key(1), LockMode::Shared).unwrap();
        assert_eq!(lm.held_keys(), 1);
    }

    #[test]
    fn exclusive_conflicts_and_timeout() {
        let lm = LockManager::new(4, Duration::from_millis(50));
        let mut c1 = SimCtx::new(1, 7);
        let mut c2 = SimCtx::new(2, 7);
        lm.acquire(&mut c1, 1, key(1), LockMode::Exclusive).unwrap();
        let err = lm.acquire(&mut c2, 2, key(1), LockMode::Exclusive);
        assert!(matches!(err, Err(EngineError::LockTimeout { .. })));
    }

    #[test]
    fn reentrant_and_upgrade() {
        let lm = LockManager::new(4, Duration::from_millis(100));
        let mut c1 = SimCtx::new(1, 7);
        lm.acquire(&mut c1, 1, key(1), LockMode::Shared).unwrap();
        lm.acquire(&mut c1, 1, key(1), LockMode::Shared).unwrap();
        lm.acquire(&mut c1, 1, key(1), LockMode::Exclusive).unwrap(); // upgrade
                                                                      // Another txn cannot share now.
        let mut c2 = SimCtx::new(2, 7);
        assert!(lm.acquire(&mut c2, 2, key(1), LockMode::Shared).is_err());
    }

    #[test]
    fn waiter_inherits_release_vtime() {
        let lm = Arc::new(LockManager::new(4, Duration::from_secs(5)));
        let lm2 = Arc::clone(&lm);
        let mut c1 = SimCtx::new(1, 7);
        lm.acquire(&mut c1, 1, key(9), LockMode::Exclusive).unwrap();

        let waiter = std::thread::spawn(move || {
            let mut c2 = SimCtx::new(2, 7);
            c2.advance(VTime::from_micros(10)); // waiter is "early" in vtime
            lm2.acquire(&mut c2, 2, key(9), LockMode::Exclusive)
                .unwrap();
            c2.now()
        });
        std::thread::sleep(Duration::from_millis(20));
        // Holder releases at a much later virtual time.
        lm.release(VTime::from_millis(5), 1, &key(9));
        let waiter_now = waiter.join().unwrap();
        assert!(
            waiter_now >= VTime::from_millis(5),
            "waiter must be pushed past the release vtime, got {waiter_now}"
        );
    }

    #[test]
    fn contention_profile_records_waits_and_holds() {
        let reg = MetricsRegistry::new();
        let lm = LockManager::with_metrics(4, Duration::from_secs(5), &reg);
        lm.set_space_label(1, "orders");
        let mut c1 = SimCtx::new(1, 7);
        lm.acquire(&mut c1, 1, key(3), LockMode::Exclusive).unwrap();
        c1.advance(VTime::from_micros(30));
        lm.release(c1.now(), 1, &key(3));
        // Second txn starts "early": its grant waits on the release stamp.
        let mut c2 = SimCtx::new(2, 7);
        lm.acquire(&mut c2, 2, key(3), LockMode::Exclusive).unwrap();
        assert_eq!(c2.now(), c1.now());
        lm.release(c2.now(), 2, &key(3));

        let prof = reg.lock_contention().snapshot(4);
        let t = &prof.tables["orders"];
        assert_eq!(t.acquires, 2);
        assert_eq!(t.waits, 1);
        assert_eq!(t.wait_total_ns, 30_000);
        // Both holds recorded; the second hold is zero-length (released at
        // its own grant time).
        assert_eq!(t.holds, 2);
        assert_eq!(t.hold_total_ns, 30_000);
        assert_eq!(prof.top.len(), 1);
        assert_eq!(prof.top[0].key_hex, "03");
        assert_eq!(prof.top[0].table, "orders");
    }

    #[test]
    fn release_all_clears() {
        let lm = LockManager::new(4, Duration::from_millis(100));
        let mut c1 = SimCtx::new(1, 7);
        let keys: Vec<LockKey> = (0..5).map(key).collect();
        for k in &keys {
            lm.acquire(&mut c1, 1, k.clone(), LockMode::Exclusive)
                .unwrap();
        }
        assert_eq!(lm.held_keys(), 5);
        lm.release_all(c1.now(), 1, &keys);
        assert_eq!(lm.held_keys(), 0);
        // Re-acquirable by someone else.
        let mut c2 = SimCtx::new(2, 7);
        lm.acquire(&mut c2, 2, key(0), LockMode::Exclusive).unwrap();
    }
}
