//! Values, rows, and their encodings.
//!
//! Two encodings exist:
//!
//! * **Row encoding** ([`encode_row`]/[`decode_row`]) — compact tagged
//!   little-endian, used for cell payloads in B+Tree leaves.
//! * **Key encoding** ([`encode_key`]) — *memcomparable*: byte-wise
//!   comparison of encoded keys equals typed comparison of the values, so
//!   B+Tree pages can binary-search raw bytes. Integers flip the sign bit
//!   and go big-endian; strings are terminated with `0x00 0x01`-escaped
//!   framing; NULL is not allowed in keys.

use crate::{EngineError, Result};

/// A single column value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit integer (all integer column widths map here).
    Int(i64),
    /// Double-precision float.
    Double(f64),
    /// UTF-8 string (CHAR/VARCHAR).
    Str(String),
}

impl Value {
    /// Integer accessor (panics on type mismatch — workload code constructs
    /// rows and knows its schema).
    pub fn as_int(&self) -> i64 {
        match self {
            Value::Int(v) => *v,
            other => panic!("expected Int, got {other:?}"),
        }
    }

    /// Double accessor; integers widen.
    pub fn as_f64(&self) -> f64 {
        match self {
            Value::Double(v) => *v,
            Value::Int(v) => *v as f64,
            other => panic!("expected numeric, got {other:?}"),
        }
    }

    /// String accessor.
    pub fn as_str(&self) -> &str {
        match self {
            Value::Str(s) => s,
            other => panic!("expected Str, got {other:?}"),
        }
    }

    /// Is this NULL?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        use Value::*;
        match (self, other) {
            (Null, Null) => Some(std::cmp::Ordering::Equal),
            (Null, _) => Some(std::cmp::Ordering::Less),
            (_, Null) => Some(std::cmp::Ordering::Greater),
            (Int(a), Int(b)) => a.partial_cmp(b),
            (Double(a), Double(b)) => a.partial_cmp(b),
            (Int(a), Double(b)) => (*a as f64).partial_cmp(b),
            (Double(a), Int(b)) => a.partial_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.partial_cmp(b),
            _ => None,
        }
    }
}

/// A row: one value per column, in schema order.
pub type Row = Vec<Value>;

/// Encode a row into `out`.
pub fn encode_row(row: &Row, out: &mut Vec<u8>) {
    out.extend_from_slice(&(row.len() as u16).to_le_bytes());
    for v in row {
        match v {
            Value::Null => out.push(0),
            Value::Int(i) => {
                out.push(1);
                out.extend_from_slice(&i.to_le_bytes());
            }
            Value::Double(d) => {
                out.push(2);
                out.extend_from_slice(&d.to_le_bytes());
            }
            Value::Str(s) => {
                out.push(3);
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
        }
    }
}

/// Decode a row from `buf` (must contain exactly one row).
pub fn decode_row(buf: &[u8]) -> Result<Row> {
    let err = || EngineError::Codec("row truncated".into());
    if buf.len() < 2 {
        return Err(err());
    }
    let n = u16::from_le_bytes([buf[0], buf[1]]) as usize;
    let mut pos = 2;
    let mut row = Vec::with_capacity(n);
    for _ in 0..n {
        let tag = *buf.get(pos).ok_or_else(err)?;
        pos += 1;
        match tag {
            0 => row.push(Value::Null),
            1 => {
                let b = buf.get(pos..pos + 8).ok_or_else(err)?;
                row.push(Value::Int(i64::from_le_bytes(b.try_into().unwrap())));
                pos += 8;
            }
            2 => {
                let b = buf.get(pos..pos + 8).ok_or_else(err)?;
                row.push(Value::Double(f64::from_le_bytes(b.try_into().unwrap())));
                pos += 8;
            }
            3 => {
                let b = buf.get(pos..pos + 4).ok_or_else(err)?;
                let len = u32::from_le_bytes(b.try_into().unwrap()) as usize;
                pos += 4;
                let s = buf.get(pos..pos + len).ok_or_else(err)?;
                row.push(Value::Str(
                    String::from_utf8(s.to_vec())
                        .map_err(|_| EngineError::Codec("bad utf8".into()))?,
                ));
                pos += len;
            }
            t => return Err(EngineError::Codec(format!("bad value tag {t}"))),
        }
    }
    Ok(row)
}

/// Memcomparable encoding of a (composite) key.
///
/// # Panics
/// Panics on NULL or Double key parts (neither appears in any key of the
/// evaluated schemas; Doubles lack a total order).
pub fn encode_key(parts: &[Value]) -> Vec<u8> {
    let mut out = Vec::with_capacity(parts.len() * 9);
    for v in parts {
        match v {
            Value::Int(i) => {
                out.push(1);
                // Flip the sign bit so byte order == numeric order.
                out.extend_from_slice(&((*i as u64) ^ (1u64 << 63)).to_be_bytes());
            }
            Value::Str(s) => {
                out.push(2);
                // Escape 0x00 as 0x00 0xFF; terminate with 0x00 0x00 so a
                // shorter string sorts before its extensions.
                for &b in s.as_bytes() {
                    if b == 0 {
                        out.extend_from_slice(&[0x00, 0xFF]);
                    } else {
                        out.push(b);
                    }
                }
                out.extend_from_slice(&[0x00, 0x00]);
            }
            other => panic!("unsupported key part: {other:?}"),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_roundtrip() {
        let row: Row = vec![
            Value::Int(-42),
            Value::Str("hello world".into()),
            Value::Double(3.25),
            Value::Null,
            Value::Str(String::new()),
        ];
        let mut buf = Vec::new();
        encode_row(&row, &mut buf);
        assert_eq!(decode_row(&buf).unwrap(), row);
    }

    #[test]
    fn row_truncated_rejected() {
        let row: Row = vec![Value::Int(5)];
        let mut buf = Vec::new();
        encode_row(&row, &mut buf);
        assert!(decode_row(&buf[..buf.len() - 1]).is_err());
        assert!(decode_row(&[]).is_err());
    }

    #[test]
    fn key_order_matches_int_order() {
        let vals = [-1_000_000i64, -1, 0, 1, 7, 1_000_000];
        let keys: Vec<Vec<u8>> = vals.iter().map(|v| encode_key(&[Value::Int(*v)])).collect();
        for w in keys.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn key_order_matches_string_order() {
        let vals = ["", "a", "ab", "b", "ba"];
        let keys: Vec<Vec<u8>> = vals
            .iter()
            .map(|v| encode_key(&[Value::Str(v.to_string())]))
            .collect();
        for w in keys.windows(2) {
            assert!(w[0] < w[1], "{:?} !< {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn composite_key_order() {
        // (1, "b") < (2, "a"); (1, "a") < (1, "ab")
        let k = |i: i64, s: &str| encode_key(&[Value::Int(i), Value::Str(s.into())]);
        assert!(k(1, "b") < k(2, "a"));
        assert!(k(1, "a") < k(1, "ab"));
        assert!(k(1, "") < k(1, "a"));
    }

    #[test]
    fn string_with_nul_bytes_sorts_correctly() {
        let k = |s: &[u8]| encode_key(&[Value::Str(String::from_utf8(s.to_vec()).unwrap())]);
        assert!(k(b"a") < k(b"a\x00"));
        assert!(k(b"a\x00") < k(b"a\x01"));
    }

    #[test]
    fn value_comparisons() {
        assert!(Value::Int(3) < Value::Int(5));
        assert!(Value::Int(3) < Value::Double(3.5));
        assert!(Value::Null < Value::Int(i64::MIN));
        assert!(Value::Str("a".into()) < Value::Str("b".into()));
        assert_eq!(Value::Int(3).partial_cmp(&Value::Str("x".into())), None);
    }
}
