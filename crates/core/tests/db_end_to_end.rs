//! End-to-end engine tests: transactions, persistence, eviction through
//! the EBP, crash recovery, and the baseline-vs-AStore latency gap.

use std::sync::Arc;

use vedb_core::catalog::ColumnType;
use vedb_core::db::{Db, DbConfig, LogBackendKind, StorageFabric};
use vedb_core::ebp::EbpConfig;
use vedb_core::recovery;
use vedb_core::{EngineError, Value};
use vedb_sim::{ClusterSpec, SimCtx, VTime};

fn fabric() -> StorageFabric {
    StorageFabric::build(ClusterSpec::paper_default(), 32 << 20, 256 * 1024)
}

fn schema(cat: &mut vedb_core::Catalog) {
    cat.define("accounts")
        .col("id", ColumnType::Int)
        .col("owner", ColumnType::Str)
        .col("balance", ColumnType::Int)
        .pk(&["id"])
        .index("idx_owner", &["owner"])
        .build();
}

fn open_db(ctx: &mut SimCtx, fabric: &StorageFabric, cfg: DbConfig) -> Arc<Db> {
    let db = Db::open(ctx, fabric, cfg).unwrap();
    db.define_schema(schema);
    db.create_tables(ctx).unwrap();
    db
}

fn row(id: i64, owner: &str, balance: i64) -> Vec<Value> {
    vec![
        Value::Int(id),
        Value::Str(owner.into()),
        Value::Int(balance),
    ]
}

#[test]
fn insert_commit_read_back() {
    let f = fabric();
    let mut ctx = SimCtx::new(1, 42);
    let db = open_db(&mut ctx, &f, DbConfig::builder().build().unwrap());
    let mut txn = db.begin();
    for i in 0..50 {
        db.insert(
            &mut ctx,
            &mut txn,
            "accounts",
            row(i, &format!("owner-{i}"), 100 * i),
        )
        .unwrap();
    }
    db.commit(&mut ctx, &mut txn).unwrap();

    let got = db
        .get_by_pk(&mut ctx, None, "accounts", &[Value::Int(7)])
        .unwrap()
        .unwrap();
    assert_eq!(got[1], Value::Str("owner-7".into()));
    assert_eq!(got[2], Value::Int(700));
    assert!(db
        .get_by_pk(&mut ctx, None, "accounts", &[Value::Int(999)])
        .unwrap()
        .is_none());
}

#[test]
fn duplicate_pk_rejected() {
    let f = fabric();
    let mut ctx = SimCtx::new(1, 42);
    let db = open_db(&mut ctx, &f, DbConfig::builder().build().unwrap());
    let mut txn = db.begin();
    db.insert(&mut ctx, &mut txn, "accounts", row(1, "a", 0))
        .unwrap();
    assert!(matches!(
        db.insert(&mut ctx, &mut txn, "accounts", row(1, "b", 0)),
        Err(EngineError::DuplicateKey { .. })
    ));
}

#[test]
fn update_delete_and_secondary_index() {
    let f = fabric();
    let mut ctx = SimCtx::new(1, 42);
    let db = open_db(&mut ctx, &f, DbConfig::builder().build().unwrap());
    let mut txn = db.begin();
    for i in 0..20 {
        db.insert(
            &mut ctx,
            &mut txn,
            "accounts",
            row(i, &format!("o{}", i % 4), i),
        )
        .unwrap();
    }
    db.commit(&mut ctx, &mut txn).unwrap();

    // Secondary lookup before mutation.
    let rows = db
        .index_lookup(
            &mut ctx,
            "accounts",
            "idx_owner",
            &[Value::Str("o1".into())],
            100,
        )
        .unwrap();
    assert_eq!(rows.len(), 5); // ids 1,5,9,13,17

    let mut txn = db.begin();
    db.update_by_pk(&mut ctx, &mut txn, "accounts", &[Value::Int(1)], |r| {
        r[1] = Value::Str("renamed".into());
        r[2] = Value::Int(9999);
    })
    .unwrap();
    db.delete_by_pk(&mut ctx, &mut txn, "accounts", &[Value::Int(5)])
        .unwrap();
    db.commit(&mut ctx, &mut txn).unwrap();

    let rows = db
        .index_lookup(
            &mut ctx,
            "accounts",
            "idx_owner",
            &[Value::Str("o1".into())],
            100,
        )
        .unwrap();
    assert_eq!(rows.len(), 3, "id 1 re-keyed, id 5 deleted");
    let renamed = db
        .index_lookup(
            &mut ctx,
            "accounts",
            "idx_owner",
            &[Value::Str("renamed".into())],
            100,
        )
        .unwrap();
    assert_eq!(renamed.len(), 1);
    assert_eq!(renamed[0][2], Value::Int(9999));
    assert!(db
        .get_by_pk(&mut ctx, None, "accounts", &[Value::Int(5)])
        .unwrap()
        .is_none());
}

#[test]
fn abort_rolls_back_everything() {
    let f = fabric();
    let mut ctx = SimCtx::new(1, 42);
    let db = open_db(&mut ctx, &f, DbConfig::builder().build().unwrap());
    let mut setup = db.begin();
    db.insert(&mut ctx, &mut setup, "accounts", row(1, "keep", 100))
        .unwrap();
    db.commit(&mut ctx, &mut setup).unwrap();

    let mut txn = db.begin();
    db.insert(&mut ctx, &mut txn, "accounts", row(2, "gone", 0))
        .unwrap();
    db.update_by_pk(&mut ctx, &mut txn, "accounts", &[Value::Int(1)], |r| {
        r[2] = Value::Int(-1)
    })
    .unwrap();
    db.delete_by_pk(&mut ctx, &mut txn, "accounts", &[Value::Int(1)])
        .unwrap();
    db.abort(&mut ctx, &mut txn).unwrap();

    let r1 = db
        .get_by_pk(&mut ctx, None, "accounts", &[Value::Int(1)])
        .unwrap()
        .unwrap();
    assert_eq!(r1[2], Value::Int(100), "update+delete undone");
    assert!(db
        .get_by_pk(&mut ctx, None, "accounts", &[Value::Int(2)])
        .unwrap()
        .is_none());
    let idx = db
        .index_lookup(
            &mut ctx,
            "accounts",
            "idx_owner",
            &[Value::Str("gone".into())],
            10,
        )
        .unwrap();
    assert!(
        idx.is_empty(),
        "secondary entries of the aborted insert removed"
    );
}

#[test]
fn many_rows_split_pages_and_scan_in_order() {
    let f = fabric();
    let mut ctx = SimCtx::new(1, 42);
    let db = open_db(&mut ctx, &f, DbConfig::builder().build().unwrap());
    let n = 2000i64;
    let mut txn = db.begin();
    // Insert in shuffled order to exercise splits on both ends.
    let mut ids: Vec<i64> = (0..n).collect();
    for i in 0..ids.len() {
        let j = (i * 7919) % ids.len();
        ids.swap(i, j);
    }
    for id in &ids {
        db.insert(
            &mut ctx,
            &mut txn,
            "accounts",
            row(*id, &format!("o{}", id % 7), *id),
        )
        .unwrap();
    }
    db.commit(&mut ctx, &mut txn).unwrap();

    let mut seen = Vec::with_capacity(n as usize);
    db.scan_table(&mut ctx, "accounts", |r| {
        seen.push(r[0].as_int());
        true
    })
    .unwrap();
    assert_eq!(seen.len(), n as usize);
    let expected: Vec<i64> = (0..n).collect();
    assert_eq!(seen, expected, "clustered scan must return PK order");
    assert!(
        db.space_pages(db.with_table("accounts", |t| t.space_no).unwrap()) > 3,
        "2000 rows must have split into multiple pages"
    );
}

#[test]
fn eviction_through_ebp_and_pagestore_roundtrip() {
    let f = fabric();
    let mut ctx = SimCtx::new(1, 42);
    // Tiny pool forces eviction.
    let cfg = DbConfig::builder()
        .bp_pages(16)
        .bp_shards(2)
        .ebp(EbpConfig {
            capacity_bytes: 8 << 20,
            ..Default::default()
        })
        .build()
        .unwrap();
    let db = open_db(&mut ctx, &f, cfg);
    let mut txn = db.begin();
    for i in 0..3000 {
        db.insert(
            &mut ctx,
            &mut txn,
            "accounts",
            row(i, &format!("owner-{i}"), i),
        )
        .unwrap();
    }
    db.commit(&mut ctx, &mut txn).unwrap();

    // The pool holds 16 pages; the table is much bigger, so reads of cold
    // keys must come from the EBP or PageStore.
    db.ebp().unwrap().reset_stats();
    for i in (0..3000).step_by(97) {
        let r = db
            .get_by_pk(&mut ctx, None, "accounts", &[Value::Int(i)])
            .unwrap()
            .unwrap();
        assert_eq!(r[0], Value::Int(i));
    }
    assert!(
        db.ebp().unwrap().hits() > 0,
        "cold reads should be served by the EBP (hits={}, misses={})",
        db.ebp().unwrap().hits(),
        db.ebp().unwrap().misses()
    );
}

#[test]
fn crash_recovery_replays_committed_and_undoes_losers() {
    let f = fabric();
    let mut ctx = SimCtx::new(1, 42);
    let cfg = DbConfig::builder()
        .bp_pages(64)
        .ebp(EbpConfig::default())
        .build()
        .unwrap();
    let db = open_db(&mut ctx, &f, cfg.clone());

    let mut committed = db.begin();
    for i in 0..200 {
        db.insert(
            &mut ctx,
            &mut committed,
            "accounts",
            row(i, &format!("c{i}"), i),
        )
        .unwrap();
    }
    db.commit(&mut ctx, &mut committed).unwrap();

    // A loser: modifies rows but never commits. A concurrent committer's
    // group-commit flush makes the loser's records durable, so recovery
    // must actively undo them (without the flush they would simply vanish
    // with the log buffer — also correct, but a weaker test).
    let mut loser = db.begin();
    db.insert(&mut ctx, &mut loser, "accounts", row(9000, "loser", 1))
        .unwrap();
    db.update_by_pk(&mut ctx, &mut loser, "accounts", &[Value::Int(3)], |r| {
        r[2] = Value::Int(-777)
    })
    .unwrap();
    let mut bystander = db.begin();
    db.insert(
        &mut ctx,
        &mut bystander,
        "accounts",
        row(8000, "bystander", 2),
    )
    .unwrap();
    db.commit(&mut ctx, &mut bystander).unwrap();

    let ring_ids = db.log_segment_ids();
    drop(loser);
    drop(db); // DBEngine crash: all volatile state gone

    let mut ctx2 = SimCtx::new(1, 43);
    let (db2, report) = recovery::recover(&mut ctx2, &f, cfg, schema, &ring_ids).unwrap();
    assert_eq!(report.losers_undone, 1, "exactly one loser txn");
    assert!(report.committed >= 1);

    // Committed data is back (including the group-commit bystander).
    let r = db2
        .get_by_pk(&mut ctx2, None, "accounts", &[Value::Int(199)])
        .unwrap()
        .unwrap();
    assert_eq!(r[2], Value::Int(199));
    assert!(db2
        .get_by_pk(&mut ctx2, None, "accounts", &[Value::Int(8000)])
        .unwrap()
        .is_some());
    // Loser's insert is gone; its update reverted.
    assert!(db2
        .get_by_pk(&mut ctx2, None, "accounts", &[Value::Int(9000)])
        .unwrap()
        .is_none());
    let r3 = db2
        .get_by_pk(&mut ctx2, None, "accounts", &[Value::Int(3)])
        .unwrap()
        .unwrap();
    assert_eq!(r3[2], Value::Int(3), "loser's update must be undone");
    // And the recovered engine keeps working.
    let mut txn = db2.begin();
    db2.insert(&mut ctx2, &mut txn, "accounts", row(5000, "post", 1))
        .unwrap();
    db2.commit(&mut ctx2, &mut txn).unwrap();
    assert!(db2
        .get_by_pk(&mut ctx2, None, "accounts", &[Value::Int(5000)])
        .unwrap()
        .is_some());
}

#[test]
fn astore_commit_latency_beats_blobstore() {
    let f = fabric();
    let mut ctx_a = SimCtx::new(1, 42);
    let db_a = open_db(
        &mut ctx_a,
        &f,
        DbConfig::builder()
            .log(LogBackendKind::AStore)
            .build()
            .unwrap(),
    );
    let mut ctx_b = SimCtx::new(2, 42);
    let db_b = open_db(
        &mut ctx_b,
        &f,
        DbConfig::builder()
            .log(LogBackendKind::BlobStore)
            .build()
            .unwrap(),
    );

    let measure = |db: &Arc<Db>, ctx: &mut SimCtx, base: i64| {
        let t0 = ctx.now();
        for i in 0..50 {
            let mut txn = db.begin();
            db.insert(ctx, &mut txn, "accounts", row(base + i, "x", i))
                .unwrap();
            db.commit(ctx, &mut txn).unwrap();
        }
        (ctx.now() - t0) / 50
    };
    let astore_lat = measure(&db_a, &mut ctx_a, 0);
    let blob_lat = measure(&db_b, &mut ctx_b, 0);
    assert!(
        astore_lat.as_nanos() * 3 < blob_lat.as_nanos(),
        "AStore txn latency ({astore_lat}) should be several times lower than \
         the SSD LogStore ({blob_lat})"
    );
}

#[test]
fn checkpoint_truncates_and_ring_survives_wraparound() {
    let f = fabric();
    let mut ctx = SimCtx::new(1, 42);
    let cfg = DbConfig::builder().ring_segments(4).build().unwrap();
    let db = open_db(&mut ctx, &f, cfg);
    // Write far more log than the ring holds, checkpointing as we go.
    for batch in 0..20 {
        let mut txn = db.begin();
        for i in 0..50 {
            db.insert(
                &mut ctx,
                &mut txn,
                "accounts",
                row(batch * 50 + i, &format!("o{batch}"), i),
            )
            .unwrap();
        }
        db.commit(&mut ctx, &mut txn).unwrap();
        db.checkpoint(&mut ctx).unwrap();
    }
    // All data readable afterwards.
    for id in [0i64, 499, 999] {
        assert!(db
            .get_by_pk(&mut ctx, None, "accounts", &[Value::Int(id)])
            .unwrap()
            .is_some());
    }
}

#[test]
fn concurrent_commits_produce_a_parseable_log() {
    let f = fabric();
    let mut ctx = SimCtx::new(1, 42);
    let db = open_db(&mut ctx, &f, DbConfig::builder().build().unwrap());
    let base = ctx.now();

    std::thread::scope(|scope| {
        for t in 0..8i64 {
            let db = &db;
            scope.spawn(move || {
                let mut ctx = SimCtx::new(100 + t as u64, 42);
                ctx.wait_until(base);
                for i in 0..40 {
                    let mut txn = db.begin();
                    db.insert(
                        &mut ctx,
                        &mut txn,
                        "accounts",
                        row(t * 1000 + i, &format!("t{t}"), i),
                    )
                    .unwrap();
                    db.commit(&mut ctx, &mut txn).unwrap();
                }
            });
        }
    });

    // The durable log must parse as a dense, gap-free frame sequence up to
    // the flushed LSN (concurrent group commits must not interleave bytes).
    let mut ctx2 = SimCtx::new(2, 43);
    ctx2.wait_until(VTime::from_secs(100));
    let records = db.wal().records_from(&mut ctx2, 0).unwrap();
    let commits = records
        .iter()
        .filter(|(_, r)| matches!(r, vedb_core::wal::WalRecord::Commit { .. }))
        .count();
    assert!(
        commits >= 320,
        "all 320 commits must be durable, found {commits}"
    );
    // Every row readable.
    for t in 0..8i64 {
        for i in (0..40).step_by(13) {
            assert!(
                db.get_by_pk(&mut ctx2, None, "accounts", &[Value::Int(t * 1000 + i)])
                    .unwrap()
                    .is_some(),
                "row {t}/{i} missing"
            );
        }
    }
}

#[test]
fn group_commit_policy_consolidates_flushes_without_losing_commits() {
    let f = fabric();
    let mut ctx = SimCtx::new(1, 42);
    let cfg = DbConfig::builder()
        .flush_policy(vedb_core::FlushPolicy::Group {
            max_batch_bytes: 64 * 1024,
            max_wait: VTime::from_micros(200),
        })
        .build()
        .unwrap();
    let db = open_db(&mut ctx, &f, cfg);
    let base = ctx.now();

    std::thread::scope(|scope| {
        for t in 0..8i64 {
            let db = &db;
            scope.spawn(move || {
                let mut ctx = SimCtx::new(100 + t as u64, 42);
                ctx.wait_until(base);
                for i in 0..40 {
                    let mut txn = db.begin();
                    db.insert(
                        &mut ctx,
                        &mut txn,
                        "accounts",
                        row(t * 1000 + i, &format!("t{t}"), i),
                    )
                    .unwrap();
                    db.commit(&mut ctx, &mut txn).unwrap();
                }
            });
        }
    });

    // Ack-after-persist: every commit that returned is durable in the log.
    let mut ctx2 = SimCtx::new(2, 43);
    ctx2.wait_until(VTime::from_secs(100));
    let records = db.wal().records_from(&mut ctx2, 0).unwrap();
    let commits = records
        .iter()
        .filter(|(_, r)| matches!(r, vedb_core::wal::WalRecord::Commit { .. }))
        .count();
    assert!(
        commits >= 320,
        "all 320 commits must be durable, found {commits}"
    );
    for t in 0..8i64 {
        for i in (0..40).step_by(7) {
            assert!(
                db.get_by_pk(&mut ctx2, None, "accounts", &[Value::Int(t * 1000 + i)])
                    .unwrap()
                    .is_some(),
                "row {t}/{i} missing"
            );
        }
    }

    // The consolidator actually consolidated: strictly fewer physical
    // flushes than transaction commits, with the difference visible as
    // carried commits.
    let flushes = f.env.metrics.counter("core", "wal_flushes").get();
    let txn_commits = f.env.metrics.counter("core", "txn_commits").get();
    let carried = f.env.metrics.counter("core", "wal_carried_commits").get();
    assert!(
        flushes < txn_commits,
        "group policy must merge flushes: {flushes} flushes for {txn_commits} commits"
    );
    assert!(
        carried > 0,
        "concurrent committers must ride another leader's batch"
    );
}

#[test]
fn flush_policy_validation_rejects_zero_knobs() {
    assert!(matches!(
        DbConfig::builder()
            .flush_policy(vedb_core::FlushPolicy::Group {
                max_batch_bytes: 0,
                max_wait: VTime::from_micros(200),
            })
            .build(),
        Err(EngineError::Config(_))
    ));
    assert!(matches!(
        DbConfig::builder()
            .flush_policy(vedb_core::FlushPolicy::Group {
                max_batch_bytes: 64 * 1024,
                max_wait: VTime::ZERO,
            })
            .build(),
        Err(EngineError::Config(_))
    ));
    assert!(DbConfig::builder()
        .flush_policy(vedb_core::FlushPolicy::PerCommit)
        .build()
        .is_ok());
}
