//! Query executor and push-down framework integration tests: correctness
//! (push-down must return exactly the local result on every shape) and the
//! paper's performance claims (push-down beats engine-local execution for
//! scan-heavy queries; EBP-hosted fragments beat PageStore-hosted ones).

use std::sync::Arc;

use vedb_core::catalog::ColumnType;
use vedb_core::db::{Db, DbConfig, StorageFabric};
use vedb_core::ebp::EbpConfig;
use vedb_core::query::expr::CmpOp;
use vedb_core::query::{execute, AggExpr, Expr, Plan, QuerySession};
use vedb_core::{Row, Value};
use vedb_sim::{ClusterSpec, SimCtx, VTime};

fn fabric() -> StorageFabric {
    StorageFabric::build(ClusterSpec::paper_default(), 64 << 20, 512 * 1024)
}

/// orders(o_id, o_cust, o_amount, o_region) + lineitems(l_id, l_oid, l_qty)
fn setup(ctx: &mut SimCtx, f: &StorageFabric, cfg: DbConfig, rows: i64) -> Arc<Db> {
    let db = Db::open(ctx, f, cfg).unwrap();
    db.define_schema(|cat| {
        cat.define("orders")
            .col("o_id", ColumnType::Int)
            .col("o_cust", ColumnType::Int)
            .col("o_amount", ColumnType::Double)
            .col("o_region", ColumnType::Str)
            .pk(&["o_id"])
            .build();
        cat.define("lineitems")
            .col("l_id", ColumnType::Int)
            .col("l_oid", ColumnType::Int)
            .col("l_qty", ColumnType::Int)
            .pk(&["l_id"])
            .build();
    });
    db.create_tables(ctx).unwrap();
    let regions = ["north", "south", "east", "west"];
    let mut txn = db.begin();
    for i in 0..rows {
        db.insert(
            ctx,
            &mut txn,
            "orders",
            vec![
                Value::Int(i),
                Value::Int(i % 50),
                Value::Double((i % 997) as f64 * 1.5),
                Value::Str(regions[(i % 4) as usize].into()),
            ],
        )
        .unwrap();
        if i % 100 == 0 {
            db.commit(ctx, &mut txn).unwrap();
            txn = db.begin();
        }
    }
    for i in 0..rows / 2 {
        db.insert(
            ctx,
            &mut txn,
            "lineitems",
            vec![Value::Int(i), Value::Int(i % rows), Value::Int((i % 7) + 1)],
        )
        .unwrap();
    }
    db.commit(ctx, &mut txn).unwrap();
    db.checkpoint(ctx).unwrap();
    db
}

fn sorted(mut rows: Vec<Row>) -> Vec<Row> {
    rows.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
    rows
}

#[test]
fn filter_and_projection() {
    let f = fabric();
    let mut ctx = SimCtx::new(1, 7);
    let db = setup(&mut ctx, &f, DbConfig::builder().build().unwrap(), 500);
    let plan = Plan::SeqScan {
        table: "orders".into(),
        filter: Some(Expr::cmp(CmpOp::Lt, Expr::col(0), Expr::int(10))),
        project: Some(vec![Expr::col(0), Expr::mul(Expr::col(2), Expr::dbl(2.0))]),
    };
    let rows = execute(&mut ctx, &db, &QuerySession::default(), &plan).unwrap();
    assert_eq!(rows.len(), 10);
    assert_eq!(rows[3][0], Value::Int(3));
    assert_eq!(rows[3][1], Value::Double(9.0));
}

#[test]
fn aggregation_group_by() {
    let f = fabric();
    let mut ctx = SimCtx::new(1, 7);
    let db = setup(&mut ctx, &f, DbConfig::builder().build().unwrap(), 400);
    // SELECT o_region, COUNT(*), SUM(o_amount) FROM orders GROUP BY o_region
    let plan = Plan::scan("orders").agg(
        vec![3],
        vec![
            AggExpr::count_star(),
            AggExpr::sum(Expr::col(2)),
            AggExpr::max(Expr::col(0)),
        ],
    );
    let rows = execute(&mut ctx, &db, &QuerySession::default(), &plan).unwrap();
    assert_eq!(rows.len(), 4);
    let total: i64 = rows.iter().map(|r| r[1].as_int()).sum();
    assert_eq!(total, 400);
    for r in &rows {
        assert!(r[3].as_int() >= 396, "every region sees a high max id");
    }
}

#[test]
fn joins_hash_and_nested_loop_agree() {
    let f = fabric();
    let mut ctx = SimCtx::new(1, 7);
    let db = setup(&mut ctx, &f, DbConfig::builder().build().unwrap(), 200);
    let hash = Plan::scan("orders").hash_join(Plan::scan("lineitems"), vec![0], vec![1]);
    let nl = Plan::NestLoopJoin {
        left: Box::new(Plan::scan("orders")),
        right: Box::new(Plan::scan("lineitems")),
        on: Expr::eq(Expr::col(0), Expr::col(5)), // o_id == l_oid
        project: None,
    };
    let s = QuerySession::default();
    let h = execute(&mut ctx, &db, &s, &hash).unwrap();
    let n = execute(&mut ctx, &db, &s, &nl).unwrap();
    assert_eq!(h.len(), 100);
    assert_eq!(sorted(h), sorted(n));
}

#[test]
fn sort_and_limit() {
    let f = fabric();
    let mut ctx = SimCtx::new(1, 7);
    let db = setup(&mut ctx, &f, DbConfig::builder().build().unwrap(), 300);
    let plan = Plan::scan("orders").top_k(vec![(2, true), (0, false)], 5);
    let rows = execute(&mut ctx, &db, &QuerySession::default(), &plan).unwrap();
    assert_eq!(rows.len(), 5);
    for w in rows.windows(2) {
        assert!(w[0][2].as_f64() >= w[1][2].as_f64());
    }
}

#[test]
fn pushdown_matches_local_execution() {
    let f = fabric();
    let mut ctx = SimCtx::new(1, 7);
    let cfg = DbConfig::builder()
        .bp_pages(32)
        .ebp(EbpConfig {
            capacity_bytes: 32 << 20,
            ..Default::default()
        })
        .build()
        .unwrap();
    let db = setup(&mut ctx, &f, cfg, 3000);
    let local = QuerySession::default();
    let pq = QuerySession::with_pushdown();

    let plans = [
        // Plain filtered scan.
        Plan::SeqScan {
            table: "orders".into(),
            filter: Some(Expr::cmp(CmpOp::Ge, Expr::col(2), Expr::dbl(700.0))),
            project: None,
        },
        // Projection push-down.
        Plan::SeqScan {
            table: "orders".into(),
            filter: Some(Expr::Like(Box::new(Expr::col(3)), "n%".into())),
            project: Some(vec![Expr::col(0), Expr::col(3)]),
        },
        // Aggregation push-down with all functions.
        Plan::scan("orders").agg(
            vec![3],
            vec![
                AggExpr::count_star(),
                AggExpr::sum(Expr::col(2)),
                AggExpr::avg(Expr::col(2)),
                AggExpr::min(Expr::col(0)),
                AggExpr::max(Expr::col(0)),
            ],
        ),
        // Global (no group-by) aggregate.
        Plan::scan_where("orders", Expr::cmp(CmpOp::Lt, Expr::col(1), Expr::int(25))).agg(
            vec![],
            vec![AggExpr::count_star(), AggExpr::sum(Expr::col(2))],
        ),
    ];
    for (i, plan) in plans.iter().enumerate() {
        let a = execute(&mut ctx, &db, &local, plan).unwrap();
        let b = execute(&mut ctx, &db, &pq, plan).unwrap();
        assert_eq!(
            sorted(a),
            sorted(b),
            "plan {i} must agree local vs pushdown"
        );
    }
}

#[test]
fn pushdown_is_faster_and_uses_storage_cpu() {
    let f = fabric();
    let mut ctx = SimCtx::new(1, 7);
    // Tiny pool: engine-local scan must fetch remotely.
    let cfg = DbConfig::builder()
        .bp_pages(16)
        .ebp(EbpConfig {
            capacity_bytes: 64 << 20,
            ..Default::default()
        })
        .build()
        .unwrap();
    let db = setup(&mut ctx, &f, cfg, 6000);
    // Aggregation over everything: the classic push-down win (Q1/Q6-like).
    let plan = Plan::scan("orders").agg(
        vec![3],
        vec![AggExpr::count_star(), AggExpr::sum(Expr::col(2))],
    );
    // Warm-up (fills EBP through evictions).
    let s = QuerySession::default();
    execute(&mut ctx, &db, &s, &plan).unwrap();

    let t0 = ctx.now();
    execute(&mut ctx, &db, &s, &plan).unwrap();
    let local_time = ctx.now() - t0;

    let astore_cpu_before: VTime = db
        .env()
        .astore_nodes
        .iter()
        .map(|n| n.cpu.total_busy())
        .sum();
    let t1 = ctx.now();
    execute(&mut ctx, &db, &QuerySession::with_pushdown(), &plan).unwrap();
    let pq_time = ctx.now() - t1;
    let astore_cpu_after: VTime = db
        .env()
        .astore_nodes
        .iter()
        .map(|n| n.cpu.total_busy())
        .sum();

    assert!(
        pq_time.as_nanos() * 2 < local_time.as_nanos(),
        "pushdown ({pq_time}) should be >2x faster than local ({local_time})"
    );
    assert!(
        astore_cpu_after > astore_cpu_before,
        "pushdown must consume AStore server CPU (the idle cores of §VI-B)"
    );
}

#[test]
fn index_lookup_plan() {
    let f = fabric();
    let mut ctx = SimCtx::new(1, 7);
    let db = Db::open(&mut ctx, &f, DbConfig::builder().build().unwrap()).unwrap();
    db.define_schema(|cat| {
        cat.define("t")
            .col("id", ColumnType::Int)
            .col("grp", ColumnType::Int)
            .pk(&["id"])
            .index("by_grp", &["grp"])
            .build();
    });
    db.create_tables(&mut ctx).unwrap();
    let mut txn = db.begin();
    for i in 0..100 {
        db.insert(
            &mut ctx,
            &mut txn,
            "t",
            vec![Value::Int(i), Value::Int(i % 10)],
        )
        .unwrap();
    }
    db.commit(&mut ctx, &mut txn).unwrap();
    let plan = Plan::IndexLookup {
        table: "t".into(),
        index: "by_grp".into(),
        prefix: vec![Value::Int(3)],
        filter: Some(Expr::cmp(CmpOp::Gt, Expr::col(0), Expr::int(50))),
        project: None,
    };
    let rows = execute(&mut ctx, &db, &QuerySession::default(), &plan).unwrap();
    assert_eq!(rows.len(), 5); // 53,63,73,83,93
    assert!(rows
        .iter()
        .all(|r| r[1] == Value::Int(3) && r[0].as_int() > 50));
}
