//! End-to-end metric accuracy: counters reported through the deployment
//! registry must match ground truth computed from a fixed workload.
//!
//! Two workloads pin the numbers down:
//!
//! * **Hot-key reads, ample pool** — repeated `get_by_pk` of one row does a
//!   fixed number of page touches per read; after a warming read, misses
//!   stay flat and hits advance by exactly that stride.
//! * **Cold scans, tiny pool + EBP** — every buffer-pool miss consults the
//!   EBP exactly once, so `ebp_hits + ebp_misses == bp_misses` over any
//!   window; a second identical pass finds every page in BP or EBP, so its
//!   EBP miss delta is zero.
//! * **Redo lag books** — in a fault-free run every accepted record is
//!   either applied, queued behind an apply worker, or parked out of
//!   order: `records_accepted == records_applied + queued_records +
//!   parked_records`, and `apply_lag_records == queued + parked`.

use std::sync::Arc;

use vedb_core::catalog::ColumnType;
use vedb_core::db::{Db, DbConfig, StorageFabric};
use vedb_core::ebp::EbpConfig;
use vedb_core::Value;
use vedb_sim::{ClusterSpec, SimCtx};

fn fabric() -> StorageFabric {
    StorageFabric::build(ClusterSpec::paper_default(), 32 << 20, 256 * 1024)
}

/// Assert the fault-free redo-lag conservation equation on a registry.
fn assert_lag_books_balance(metrics: &vedb_sim::MetricsRegistry, when: &str) {
    let accepted = metrics.counter("pagestore", "records_accepted").get();
    let applied = metrics.counter("pagestore", "records_applied").get();
    let queued = metrics.gauge("pagestore", "queued_records").get();
    let parked = metrics.gauge("pagestore", "parked_records").get();
    let lag = metrics.gauge("pagestore", "apply_lag_records").get();
    assert!(queued >= 0, "{when}: queued gauge went negative: {queued}");
    assert!(parked >= 0, "{when}: parked gauge went negative: {parked}");
    assert_eq!(
        accepted,
        applied + queued as u64 + parked as u64,
        "{when}: accepted != applied + queued + parked \
         ({accepted} != {applied} + {queued} + {parked})"
    );
    assert_eq!(
        lag,
        queued + parked,
        "{when}: apply_lag_records must decompose into queued + parked"
    );
}

fn schema(cat: &mut vedb_core::Catalog) {
    cat.define("kv")
        .col("id", ColumnType::Int)
        .col("val", ColumnType::Str)
        .pk(&["id"])
        .build();
}

fn open_db(ctx: &mut SimCtx, fabric: &StorageFabric, cfg: DbConfig) -> Arc<Db> {
    let db = Db::open(ctx, fabric, cfg).unwrap();
    db.define_schema(schema);
    db.create_tables(ctx).unwrap();
    db
}

fn load(ctx: &mut SimCtx, db: &Db, rows: i64) {
    let mut txn = db.begin();
    for i in 0..rows {
        db.insert(
            ctx,
            &mut txn,
            "kv",
            vec![Value::Int(i), Value::Str(format!("v{i:-<120}"))],
        )
        .unwrap();
    }
    db.commit(ctx, &mut txn).unwrap();
}

#[test]
fn hot_key_reads_report_exact_hit_counts() {
    let f = fabric();
    let mut ctx = SimCtx::new(1, 42);
    // Pool far larger than the table: after warming, no evictions, no
    // misses, and a constant number of page hits per read.
    let db = open_db(
        &mut ctx,
        &f,
        DbConfig::builder().bp_pages(1024).build().unwrap(),
    );
    load(&mut ctx, &db, 500);

    let hits = f.env.metrics.counter("core", "bp_hits");
    let misses = f.env.metrics.counter("core", "bp_misses");
    let evictions = f.env.metrics.counter("core", "bp_evictions");

    // Warm the root-to-leaf path of the probed key.
    db.get_by_pk(&mut ctx, None, "kv", &[Value::Int(123)])
        .unwrap()
        .unwrap();

    let (h0, m0, e0) = (hits.get(), misses.get(), evictions.get());
    const N: u64 = 50;
    for _ in 0..N {
        let row = db
            .get_by_pk(&mut ctx, None, "kv", &[Value::Int(123)])
            .unwrap()
            .unwrap();
        assert_eq!(row[1], Value::Str(format!("v{:-<120}", 123)));
    }
    let dh = hits.get() - h0;
    let dm = misses.get() - m0;
    let de = evictions.get() - e0;

    assert_eq!(dm, 0, "warmed hot-key reads must not miss");
    assert_eq!(de, 0, "ample pool must not evict");
    assert_eq!(
        dh % N,
        0,
        "page touches per read must be constant, got {dh} over {N}"
    );
    let per_read = dh / N;
    assert!(
        (1..=4).contains(&per_read),
        "a point read touches the root-to-leaf path, got {per_read} pages"
    );

    // The registry view and the pool's legacy counters are the same events.
    assert_eq!(hits.get(), db.buffer_pool().hits());
    assert_eq!(misses.get(), db.buffer_pool().misses());
}

#[test]
fn cold_scans_conserve_ebp_lookups() {
    let f = fabric();
    let mut ctx = SimCtx::new(1, 42);
    // Tiny pool: the 2000-row table thrashes it, spilling into the EBP.
    let cfg = DbConfig::builder()
        .bp_pages(16)
        .bp_shards(2)
        .ebp(EbpConfig {
            capacity_bytes: 8 << 20,
            ..Default::default()
        })
        .build()
        .unwrap();
    let db = open_db(&mut ctx, &f, cfg);
    load(&mut ctx, &db, 2000);

    let bp_misses = f.env.metrics.counter("core", "bp_misses");
    let bp_evictions = f.env.metrics.counter("core", "bp_evictions");
    let ebp_hits = f.env.metrics.counter("core", "ebp_hits");
    let ebp_misses = f.env.metrics.counter("core", "ebp_misses");
    let ebp_writes = f.env.metrics.counter("core", "ebp_writes");
    let ebp_dedups = f.env.metrics.counter("core", "ebp_dedups");
    let ebp_skips = f.env.metrics.counter("core", "ebp_skips");

    let pass = |ctx: &mut SimCtx| {
        for i in 0..2000 {
            let r = db
                .get_by_pk(ctx, None, "kv", &[Value::Int(i)])
                .unwrap()
                .unwrap();
            assert_eq!(r[0], Value::Int(i));
        }
    };

    // Pass 1: misses go through the EBP lookup exactly once each.
    let (m0, h0, s0, w0, d0, k0, e0) = (
        bp_misses.get(),
        ebp_hits.get(),
        ebp_misses.get(),
        ebp_writes.get(),
        ebp_dedups.get(),
        ebp_skips.get(),
        bp_evictions.get(),
    );
    pass(&mut ctx);
    let dm = bp_misses.get() - m0;
    assert!(dm > 0, "a 2000-row scan must overflow a 16-page pool");
    assert_eq!(
        (ebp_hits.get() - h0) + (ebp_misses.get() - s0),
        dm,
        "every buffer-pool miss consults the EBP exactly once"
    );
    // Every eviction is accounted exactly once — appended as a write,
    // deduplicated against an already-cached identical image, or skipped
    // by the sink (meta page, WAL rule). Compaction may re-admit live
    // pages on top (also counted as writes), never fewer.
    assert!(
        (ebp_writes.get() - w0) + (ebp_dedups.get() - d0) + (ebp_skips.get() - k0)
            >= bp_evictions.get() - e0,
        "fewer EBP writes+dedups+skips ({}+{}+{}) than evictions ({})",
        ebp_writes.get() - w0,
        ebp_dedups.get() - d0,
        ebp_skips.get() - k0,
        bp_evictions.get() - e0
    );

    // Pass 2: every page left pass 1 resident in BP or EBP, and a
    // read-only pass never advances LSNs, so no EBP lookup can miss.
    let (m1, h1, s1) = (bp_misses.get(), ebp_hits.get(), ebp_misses.get());
    pass(&mut ctx);
    let dm2 = bp_misses.get() - m1;
    assert_eq!(
        ebp_misses.get() - s1,
        0,
        "second identical pass must be fully EBP-resident"
    );
    assert_eq!(
        ebp_hits.get() - h1,
        dm2,
        "second-pass misses must all be EBP hits"
    );
}

/// Fault-free conservation of the redo-lag books across a write/read
/// workload, at several quiesce points and mid-flight after a bare ship
/// (records accepted but possibly not yet applied — the split between
/// `queued_records` and `parked_records` is exactly what the lag gauges
/// exist to distinguish).
#[test]
fn redo_lag_books_balance_fault_free() {
    let f = fabric();
    let mut ctx = SimCtx::new(1, 42);
    let db = open_db(&mut ctx, &f, DbConfig::builder().build().unwrap());
    assert_lag_books_balance(&f.env.metrics, "after create_tables");

    load(&mut ctx, &db, 800);
    assert_lag_books_balance(&f.env.metrics, "after load");

    // A cold read pass forces replay on every touched replica.
    db.buffer_pool().clear();
    for i in (0..800).step_by(61) {
        db.get_by_pk(&mut ctx, None, "kv", &[Value::Int(i)])
            .unwrap()
            .unwrap();
    }
    assert_lag_books_balance(&f.env.metrics, "after cold reads");

    // Mid-flight: ship without forcing apply. Whatever is not yet applied
    // must sit in the queued/parked gauges, never fall off the books.
    let mut txn = db.begin();
    for i in 800..1000 {
        db.insert(
            &mut ctx,
            &mut txn,
            "kv",
            vec![Value::Int(i), Value::Str(format!("v{i:-<120}"))],
        )
        .unwrap();
    }
    db.commit(&mut ctx, &mut txn).unwrap();
    db.flush_ship(&mut ctx, true);
    assert_lag_books_balance(&f.env.metrics, "mid-flight after ship");
    let accepted = f.env.metrics.counter("pagestore", "records_accepted").get();
    assert!(accepted > 0, "workload must have shipped records");

    // Quiesce: everything applies, the lag gauges drain to zero.
    db.checkpoint(&mut ctx).unwrap();
    for server in f.pagestore.servers() {
        let key = f.pagestore.cfg().segment_of(vedb_core::db::META_PAGE);
        server.apply_pending(&mut ctx, key).unwrap();
    }
    db.buffer_pool().clear();
    for i in (0..1000).step_by(41) {
        db.get_by_pk(&mut ctx, None, "kv", &[Value::Int(i)])
            .unwrap()
            .unwrap();
    }
    assert_lag_books_balance(&f.env.metrics, "after quiesce");
}
