//! Crash-recovery chaos tests for the PageStore apply pipeline (ROADMAP
//! item 5): kill replicas mid-apply and mid-checkpoint, restart them from
//! their durable redo + checkpoints, and point-in-time-restore the store —
//! no acknowledged commit may be lost, and page images must come back
//! byte-identical.
//!
//! The durability contract under test: a replica's retained redo, parked
//! records and checkpoints survive a crash; its page images, apply queue
//! and apply watermark do not. `PageStoreServer::restart` must rebuild the
//! volatile half from the durable half, and the engine's read path must
//! heal replicas whose durable log itself has holes (via gossip from the
//! surviving quorum).

use std::sync::Arc;

use vedb_core::catalog::ColumnType;
use vedb_core::db::{Db, DbConfig, StorageFabric, META_PAGE};
use vedb_core::recovery;
use vedb_core::Value;
use vedb_pagestore::ApplyConfig;
use vedb_sim::{ClusterSpec, SimCtx};

fn fabric_with(apply: ApplyConfig) -> StorageFabric {
    StorageFabric::build_with_apply(ClusterSpec::paper_default(), 32 << 20, 256 * 1024, apply)
}

fn schema(cat: &mut vedb_core::Catalog) {
    cat.define("accounts")
        .col("id", ColumnType::Int)
        .col("owner", ColumnType::Str)
        .col("balance", ColumnType::Int)
        .pk(&["id"])
        .build();
}

fn open_db(ctx: &mut SimCtx, fabric: &StorageFabric, cfg: DbConfig) -> Arc<Db> {
    let db = Db::open(ctx, fabric, cfg).unwrap();
    db.define_schema(schema);
    db.create_tables(ctx).unwrap();
    db
}

fn row(id: i64, owner: &str, balance: i64) -> Vec<Value> {
    vec![
        Value::Int(id),
        Value::Str(owner.into()),
        Value::Int(balance),
    ]
}

fn commit_rows(ctx: &mut SimCtx, db: &Db, ids: std::ops::Range<i64>, owner: &str) {
    let mut txn = db.begin();
    for i in ids {
        db.insert(ctx, &mut txn, "accounts", row(i, owner, i))
            .unwrap();
    }
    db.commit(ctx, &mut txn).unwrap();
}

fn assert_rows(ctx: &mut SimCtx, db: &Db, ids: std::ops::Range<i64>, owner: &str) {
    db.buffer_pool().clear();
    for i in ids {
        let got = db
            .get_by_pk(ctx, None, "accounts", &[Value::Int(i)])
            .unwrap()
            .unwrap_or_else(|| panic!("acked row {i} lost"));
        assert_eq!(got[1], Value::Str(owner.into()), "row {i}");
        assert_eq!(got[2], Value::Int(i), "row {i}");
    }
}

/// Kill every PageStore replica mid-apply (records acked and queued, pages
/// possibly half-materialized), restart them from the durable log, and
/// verify no acknowledged commit is lost and a page image is
/// byte-identical across the restart.
#[test]
fn restart_mid_apply_loses_no_acked_commit() {
    let f = fabric_with(ApplyConfig {
        workers: 4,
        checkpoint_every_records: 0, // no checkpoints: pure log replay
    });
    let mut ctx = SimCtx::new(1, 7);
    let db = open_db(&mut ctx, &f, DbConfig::builder().build().unwrap());

    commit_rows(&mut ctx, &db, 0..120, "pre-crash");
    let shipped = db.shipped_lsn();
    assert!(shipped > 0);
    let meta_before = db
        .pagestore()
        .read_page(&mut ctx, META_PAGE, 0)
        .expect("meta page present before crash");

    // Crash-restart every replica: volatile page images and apply queues
    // vanish; the retained redo replays through the worker pool.
    for server in f.pagestore.servers() {
        let replayed = server.restart(&mut ctx).unwrap();
        assert!(replayed > 0, "restart must replay the retained log");
    }

    assert_rows(&mut ctx, &db, 0..120, "pre-crash");
    let meta_after = db
        .pagestore()
        .read_page(&mut ctx, META_PAGE, 0)
        .expect("meta page present after restart");
    assert_eq!(
        meta_before, meta_after,
        "page images must be byte-identical across a restart"
    );

    // The restarted store keeps accepting writes.
    commit_rows(&mut ctx, &db, 120..140, "post-crash");
    assert_rows(&mut ctx, &db, 120..140, "post-crash");
}

/// Kill a replica between two background checkpoints: restart must rebuild
/// from the *last completed* checkpoint plus the redo tail, and reads must
/// heal the replica whose durable log has a hole (it was down while the
/// quorum accepted records).
#[test]
fn restart_mid_checkpoint_recovers_from_snapshot_plus_tail() {
    let f = fabric_with(ApplyConfig {
        workers: 4,
        checkpoint_every_records: 64,
    });
    let mut ctx = SimCtx::new(1, 11);
    let db = open_db(&mut ctx, &f, DbConfig::builder().build().unwrap());

    // Several commit batches so the checkpointer fires repeatedly while
    // the workload runs.
    for b in 0..6 {
        commit_rows(&mut ctx, &db, b * 50..(b + 1) * 50, "batch");
    }
    let checkpoints = f.env.metrics.counter("pagestore", "checkpoints").get();
    assert!(
        checkpoints > 0,
        "workload must have driven background checkpoints"
    );

    // Crash one replica node mid-workload: the quorum keeps acking.
    let victim = Arc::clone(&f.pagestore.servers()[0]);
    f.env.faults.crash(victim.node());
    commit_rows(&mut ctx, &db, 300..360, "degraded");
    f.env.faults.restore(victim.node());

    // The victim restarts from checkpoint + retained tail; the records it
    // missed while down are healed by gossip on the read path.
    victim.restart(&mut ctx).unwrap();
    for server in f.pagestore.servers() {
        if server.node() != victim.node() {
            server.restart(&mut ctx).unwrap();
        }
    }

    assert_rows(&mut ctx, &db, 0..300, "batch");
    assert_rows(&mut ctx, &db, 300..360, "degraded");
    assert!(
        f.env.metrics.counter("pagestore", "restores").get() >= 3,
        "every replica restarted"
    );
}

/// Point-in-time restore of a quiesced store: `restore_to_lsn` at the
/// shipped LSN must reproduce exactly the current state, and the re-anchored
/// ship chain must accept new writes afterwards.
#[test]
fn restore_to_quiesced_lsn_preserves_state_and_chain() {
    let f = fabric_with(ApplyConfig {
        workers: 8,
        checkpoint_every_records: 128,
    });
    let mut ctx = SimCtx::new(1, 13);
    let db = open_db(&mut ctx, &f, DbConfig::builder().build().unwrap());

    commit_rows(&mut ctx, &db, 0..200, "quiesced");
    db.checkpoint(&mut ctx).unwrap(); // ship + flush everything
    let target = db.shipped_lsn();
    let meta_before = db.pagestore().read_page(&mut ctx, META_PAGE, 0).unwrap();

    let replayed = recovery::restore_pagestore_to_lsn(&mut ctx, &f, target).unwrap();
    assert!(replayed > 0, "restore must replay from the base images");

    assert_rows(&mut ctx, &db, 0..200, "quiesced");
    let meta_after = db.pagestore().read_page(&mut ctx, META_PAGE, 0).unwrap();
    assert_eq!(
        meta_before, meta_after,
        "restore to the quiesced LSN must be an identity on page images"
    );

    commit_rows(&mut ctx, &db, 200..230, "after-restore");
    assert_rows(&mut ctx, &db, 200..230, "after-restore");
}

/// Full disaster path: engine crash + storage restored to a mid-workload
/// LSN, then ARIES recovery rolls the WAL forward over the restored store.
/// Every acknowledged commit — including those beyond the restore point —
/// must come back.
#[test]
fn restore_then_wal_roll_forward_recovers_all_commits() {
    let f = fabric_with(ApplyConfig::default());
    let mut ctx = SimCtx::new(1, 17);
    let cfg = DbConfig::builder().build().unwrap();
    let db = open_db(&mut ctx, &f, cfg.clone());

    commit_rows(&mut ctx, &db, 0..100, "phase-1");
    db.flush_ship(&mut ctx, true);
    let mid = db.shipped_lsn();
    commit_rows(&mut ctx, &db, 100..180, "phase-2");
    db.flush_ship(&mut ctx, true);

    let ring_ids = db.log_segment_ids();
    drop(db); // engine crash

    // Storage rolls back to the phase-1 boundary (e.g. restoring a node
    // fleet from a consistent backup point)...
    let mut ctx2 = SimCtx::new(1, 18);
    recovery::restore_pagestore_to_lsn(&mut ctx2, &f, mid).unwrap();
    // ...and WAL-driven recovery re-ships history on top of it.
    let (db2, report) = recovery::recover(&mut ctx2, &f, cfg, schema, &ring_ids).unwrap();
    assert!(report.committed >= 2, "both phases' commits found in WAL");

    assert_rows(&mut ctx2, &db2, 0..100, "phase-1");
    assert_rows(&mut ctx2, &db2, 100..180, "phase-2");
}
