//! Tests for the §VIII future-work extensions implemented in this
//! reproduction: cost-based push-down, buffer-pool warm-up from the EBP,
//! and local EBP re-attachment after an AStore server restart.

use std::sync::Arc;

use vedb_core::catalog::ColumnType;
use vedb_core::db::{Db, DbConfig, StorageFabric};
use vedb_core::ebp::EbpConfig;
use vedb_core::query::{execute, AggExpr, Expr, Plan, QuerySession};
use vedb_core::Value;
use vedb_sim::{ClusterSpec, SimCtx};

fn fabric() -> StorageFabric {
    StorageFabric::build(ClusterSpec::paper_default(), 96 << 20, 1 << 20)
}

fn open_big(ctx: &mut SimCtx, f: &StorageFabric, rows: i64) -> Arc<Db> {
    let db = Db::open(
        ctx,
        f,
        DbConfig::builder()
            .bp_pages(32)
            .ebp(EbpConfig {
                capacity_bytes: 128 << 20,
                ..Default::default()
            })
            .build()
            .unwrap(),
    )
    .unwrap();
    db.define_schema(|cat| {
        cat.define("facts")
            .col("id", ColumnType::Int)
            .col("grp", ColumnType::Int)
            .col("val", ColumnType::Double)
            .col("pad", ColumnType::Str)
            .pk(&["id"])
            .build();
    });
    db.create_tables(ctx).unwrap();
    let mut txn = db.begin();
    for i in 0..rows {
        db.insert(
            ctx,
            &mut txn,
            "facts",
            vec![
                Value::Int(i),
                Value::Int(i % 16),
                Value::Double(i as f64),
                Value::Str("p".repeat(120)),
            ],
        )
        .unwrap();
        if i % 500 == 0 {
            db.commit(ctx, &mut txn).unwrap();
            txn = db.begin();
        }
    }
    db.commit(ctx, &mut txn).unwrap();
    db.checkpoint(ctx).unwrap();
    db
}

#[test]
fn cost_based_pushdown_pushes_aggregates_and_matches_results() {
    let f = fabric();
    let mut ctx = SimCtx::new(0, 7);
    let db = open_big(&mut ctx, &f, 4000);
    // Warm the EBP.
    db.scan_table(&mut ctx, "facts", |_| true).unwrap();

    let agg_plan = Plan::scan("facts").agg(
        vec![1],
        vec![AggExpr::count_star(), AggExpr::sum(Expr::col(2))],
    );
    let local = execute(&mut ctx, &db, &QuerySession::default(), &agg_plan).unwrap();

    // Cost-based session: the aggregate is clearly cheaper pushed down.
    let cb = QuerySession::with_cost_based_pushdown();
    let t0 = ctx.now();
    let pushed = execute(&mut ctx, &db, &cb, &agg_plan).unwrap();
    let t_cb = ctx.now() - t0;
    assert_eq!(format!("{local:?}"), format!("{pushed:?}"));

    let t0 = ctx.now();
    let _ = execute(&mut ctx, &db, &QuerySession::default(), &agg_plan).unwrap();
    let t_local = ctx.now() - t0;
    assert!(
        t_cb < t_local,
        "cost-based session should have pushed the aggregate down ({t_cb} vs {t_local})"
    );

    // A full-width unfiltered scan returns everything: the cost model must
    // refuse to push it (shipping all rows back buys nothing).
    let space = db.with_table("facts", |t| t.space_no).unwrap();
    let pages = db.space_pages(space);
    assert!(
        !vedb_core::query::pushdown::cost_decision(&db, space, pages, false, false),
        "full-width scan must not be pushed down by the cost model"
    );
    assert!(
        vedb_core::query::pushdown::cost_decision(&db, space, pages, false, true),
        "aggregation must be pushed down by the cost model"
    );
}

#[test]
fn warmup_from_ebp_restores_hit_rate() {
    let f = fabric();
    let mut ctx = SimCtx::new(0, 7);
    let db = open_big(&mut ctx, &f, 3000);
    // Fill the EBP via evictions.
    db.scan_table(&mut ctx, "facts", |_| true).unwrap();
    assert!(db.ebp().unwrap().len() > 32);

    // Simulate a restart of the local pool only.
    db.buffer_pool().clear();
    db.buffer_pool().reset_stats();

    let loaded = db.warmup_from_ebp(&mut ctx, 32);
    assert!(loaded > 0, "warm-up must load pages from the EBP");
    assert!(!db.buffer_pool().is_empty());
}

#[test]
fn astore_server_restart_reattaches_ebp_pages() {
    let f = fabric();
    let mut ctx = SimCtx::new(0, 7);
    let db = open_big(&mut ctx, &f, 3000);
    db.scan_table(&mut ctx, "facts", |_| true).unwrap();
    let ebp = db.ebp().unwrap();
    let before = ebp.len();
    assert!(before > 10);

    // Find a server hosting EBP pages, power-cycle it.
    let victim = f
        .astore_servers
        .iter()
        .find(|s| {
            ebp.cached_pages(before)
                .iter()
                .any(|p| ebp.locate(*p).map(|l| l.node == s.node()).unwrap_or(false))
        })
        .expect("some server hosts EBP pages")
        .clone();
    let victim_pages: Vec<_> = ebp
        .cached_pages(before)
        .into_iter()
        .filter(|p| {
            ebp.locate(*p)
                .map(|l| l.node == victim.node())
                .unwrap_or(false)
        })
        .collect();
    assert!(!victim_pages.is_empty());

    // Power failure: the node goes unreachable and loses volatile state.
    f.env.faults.crash(victim.node());
    victim.crash();
    // Reads of its pages now miss (entries dropped lazily on access).
    let miss_page = victim_pages[0];
    assert!(ebp.read_page(&mut ctx, miss_page, 0).is_none());

    // The server restarts: PMem media survived; rebuild its volatile state
    // and re-attach its pages to the engine's EBP index.
    f.env.faults.restore(victim.node());
    victim.restart(&mut ctx).unwrap();
    let attached = ebp.reattach_server(&mut ctx, &victim).unwrap();
    assert!(
        attached > 0,
        "restart must re-attach locally persisted EBP pages"
    );
    // The page whose index entry was dropped during the outage is back.
    assert!(
        ebp.read_page(&mut ctx, miss_page, 0).is_some(),
        "re-attached pages must be readable again"
    );
}
