//! Property tests for the group-commit consolidator (ISSUE 8).
//!
//! Under arbitrary interleavings of N virtual committers hammering one
//! [`Wal`], for **both** flush policies:
//!
//! 1. **Ack-after-persist**: at the moment `flush(lsn)` returns to a
//!    committer, that commit's LSN is `<=` the flushed watermark — a
//!    committer is never woken before its bytes are durable, whether it
//!    led the flush or was carried by another leader's batch.
//! 2. **Conservation**: once every committer has returned,
//!    `core.wal_bytes_flushed == core.wal_bytes_logged` — every logged
//!    byte reached the backend exactly once; batching merges writes but
//!    neither drops nor duplicates bytes (same style as
//!    `prop_resource_attribution`).
//! 3. **Stream integrity**: the backend's byte stream parses back into
//!    exactly the records that were logged, with every committer's
//!    commits in its own program order (no reordering across a batch
//!    boundary).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use proptest::prelude::*;
use vedb_astore::Lsn;
use vedb_core::wal::{FlushPolicy, LogBackend, Wal, WalRecord};
use vedb_core::Result;
use vedb_sim::{MetricsRegistry, SimCtx, VTime};

/// In-memory log backend: durable the instant `append` returns, with a
/// small virtual-time cost so flush latency is non-zero. Counts physical
/// appends so the test can observe batching.
struct MemLog {
    buf: Mutex<Vec<u8>>,
    appends: AtomicU64,
}

impl MemLog {
    fn new() -> Self {
        MemLog {
            buf: Mutex::new(Vec::new()),
            appends: AtomicU64::new(0),
        }
    }
}

impl LogBackend for MemLog {
    fn next_lsn(&self) -> Lsn {
        self.buf.lock().len() as u64
    }

    fn append(&self, ctx: &mut SimCtx, bytes: &[u8]) -> Result<Lsn> {
        ctx.advance(VTime::from_micros(20));
        self.appends.fetch_add(1, Ordering::Relaxed);
        let mut buf = self.buf.lock();
        let lsn = buf.len() as u64;
        buf.extend_from_slice(bytes);
        Ok(lsn)
    }

    fn read_from(&self, _ctx: &mut SimCtx, lsn: Lsn) -> Result<(Lsn, Vec<u8>)> {
        let buf = self.buf.lock();
        Ok((lsn, buf[lsn as usize..].to_vec()))
    }

    fn truncate(&self, _ctx: &mut SimCtx, _upto: Lsn) -> Result<()> {
        Ok(())
    }
}

/// One committer's schedule: how long it "thinks" (virtual ns) before
/// each of its commits.
fn committer_strategy() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..30_000, 1..12)
}

fn run_interleaving(policy: FlushPolicy, schedules: &[Vec<u64>]) {
    let reg = MetricsRegistry::new();
    let backend = Arc::new(MemLog::new());
    let wal = Arc::new(Wal::with_metrics(
        Box::new(ArcLog(Arc::clone(&backend))),
        policy,
        &reg,
    ));
    let bytes_logged = reg.counter("core", "wal_bytes_logged");
    let bytes_flushed = reg.counter("core", "wal_bytes_flushed");

    std::thread::scope(|s| {
        for (id, schedule) in schedules.iter().enumerate() {
            let wal = Arc::clone(&wal);
            s.spawn(move || {
                let mut ctx = SimCtx::new(id as u64 + 1, 0x9E0 + id as u64);
                for (op, think_ns) in schedule.iter().enumerate() {
                    ctx.advance(VTime::from_nanos(*think_ns));
                    // txn_id encodes (committer, op) so stream order per
                    // committer is checkable after the fact.
                    let txn_id = (id as u64) << 32 | op as u64;
                    let lsn = wal
                        .log(&mut ctx, &WalRecord::Commit { txn_id })
                        .expect("log");
                    wal.flush(&mut ctx, lsn).expect("flush");
                    // Ack-after-persist: our commit is durable the moment
                    // flush returns, led or carried.
                    assert!(
                        wal.flushed_lsn() > lsn,
                        "committer {id} op {op}: acked at lsn {lsn} but \
                         watermark is {}",
                        wal.flushed_lsn()
                    );
                }
            });
        }
    });

    // Conservation: every logged byte was flushed exactly once.
    assert_eq!(
        bytes_flushed.get(),
        bytes_logged.get(),
        "flushed bytes must equal logged bytes after all committers ack"
    );

    // Stream integrity: the backend holds every commit, parseable, with
    // each committer's commits in program order.
    let stream = backend.buf.lock().clone();
    let frames = vedb_core::wal::iter_frames(0, &stream);
    let total_ops: usize = schedules.iter().map(|s| s.len()).sum();
    assert_eq!(frames.len(), total_ops, "no record lost or torn");
    let mut last_op: Vec<i64> = vec![-1; schedules.len()];
    for (_, rec) in &frames {
        let WalRecord::Commit { txn_id } = rec else {
            panic!("unexpected record {rec:?}");
        };
        let (committer, op) = ((txn_id >> 32) as usize, (txn_id & 0xffff_ffff) as i64);
        assert!(
            op > last_op[committer],
            "committer {committer}'s commits reordered across a batch"
        );
        last_op[committer] = op;
    }
}

/// `Box<dyn LogBackend>` wrapper that lets the test keep a handle to the
/// backend's buffer after handing it to the Wal.
struct ArcLog(Arc<MemLog>);

impl LogBackend for ArcLog {
    fn next_lsn(&self) -> Lsn {
        self.0.next_lsn()
    }
    fn append(&self, ctx: &mut SimCtx, bytes: &[u8]) -> Result<Lsn> {
        self.0.append(ctx, bytes)
    }
    fn append_batch(&self, ctx: &mut SimCtx, records: &[&[u8]]) -> Result<Vec<Lsn>> {
        self.0.append_batch(ctx, records)
    }
    fn read_from(&self, ctx: &mut SimCtx, lsn: Lsn) -> Result<(Lsn, Vec<u8>)> {
        self.0.read_from(ctx, lsn)
    }
    fn truncate(&self, ctx: &mut SimCtx, upto: Lsn) -> Result<()> {
        self.0.truncate(ctx, upto)
    }
}

proptest! {
    // Each case spawns real threads; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn group_policy_acks_after_persist_and_conserves_bytes(
        schedules in proptest::collection::vec(committer_strategy(), 1..6),
    ) {
        run_interleaving(
            FlushPolicy::Group {
                max_batch_bytes: 4096,
                max_wait: VTime::from_micros(200),
            },
            &schedules,
        );
    }

    #[test]
    fn per_commit_policy_acks_after_persist_and_conserves_bytes(
        schedules in proptest::collection::vec(committer_strategy(), 1..4),
    ) {
        run_interleaving(FlushPolicy::PerCommit, &schedules);
    }
}
