//! Property test: the engine's clustered B+Tree agrees with a `BTreeMap`
//! model under arbitrary interleavings of insert/update/delete/get/scan,
//! including keys sized to force page splits and delete+re-insert churn.

use std::collections::BTreeMap;
use std::sync::Arc;

use proptest::prelude::*;
use vedb_core::catalog::ColumnType;
use vedb_core::db::{Db, DbConfig, StorageFabric};
use vedb_core::{EngineError, Value};
use vedb_sim::{ClusterSpec, SimCtx};

#[derive(Debug, Clone)]
enum Op {
    Insert(i64, u16),
    Update(i64, u16),
    Delete(i64),
    Get(i64),
    Scan,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let key = 0i64..200;
    prop_oneof![
        4 => (key.clone(), any::<u16>()).prop_map(|(k, v)| Op::Insert(k, v)),
        2 => (key.clone(), any::<u16>()).prop_map(|(k, v)| Op::Update(k, v)),
        2 => key.clone().prop_map(Op::Delete),
        2 => key.prop_map(Op::Get),
        1 => Just(Op::Scan),
    ]
}

fn payload(v: u16) -> String {
    // Variable-width payloads (some large) so pages split and compact.
    "x".repeat(32 + (v as usize % 400))
}

fn open(ctx: &mut SimCtx) -> (StorageFabric, Arc<Db>) {
    // Three servers per tier: AStore/PageStore replication needs them.
    let fabric = StorageFabric::build(ClusterSpec::paper_default(), 16 << 20, 256 * 1024);
    let db = Db::open(
        ctx,
        &fabric,
        DbConfig::builder()
            .bp_pages(32)
            .bp_shards(2)
            .build()
            .unwrap(),
    )
    .unwrap();
    db.define_schema(|cat| {
        cat.define("t")
            .col("id", ColumnType::Int)
            .col("v", ColumnType::Str)
            .pk(&["id"])
            .build();
    });
    db.create_tables(ctx).unwrap();
    (fabric, db)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn btree_matches_btreemap(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let mut ctx = SimCtx::new(1, 99);
        let (_fabric, db) = open(&mut ctx);
        let mut model: BTreeMap<i64, String> = BTreeMap::new();

        for op in &ops {
            match op {
                Op::Insert(k, v) => {
                    let p = payload(*v);
                    let mut txn = db.begin();
                    let r = db.insert(&mut ctx, &mut txn, "t",
                        vec![Value::Int(*k), Value::Str(p.clone())]);
                    match r {
                        Ok(()) => {
                            prop_assert!(!model.contains_key(k), "inserted duplicate {k}");
                            db.commit(&mut ctx, &mut txn).unwrap();
                            model.insert(*k, p);
                        }
                        Err(EngineError::DuplicateKey { .. }) => {
                            prop_assert!(model.contains_key(k));
                            db.abort(&mut ctx, &mut txn).unwrap();
                        }
                        Err(e) => return Err(TestCaseError::fail(format!("insert: {e}"))),
                    }
                }
                Op::Update(k, v) => {
                    let p = payload(*v);
                    let mut txn = db.begin();
                    let r = db.update_by_pk(&mut ctx, &mut txn, "t", &[Value::Int(*k)], |row| {
                        row[1] = Value::Str(p.clone());
                    });
                    match r {
                        Ok(()) => {
                            prop_assert!(model.contains_key(k));
                            db.commit(&mut ctx, &mut txn).unwrap();
                            model.insert(*k, p);
                        }
                        Err(EngineError::NotFound) => {
                            prop_assert!(!model.contains_key(k));
                            db.abort(&mut ctx, &mut txn).unwrap();
                        }
                        Err(e) => return Err(TestCaseError::fail(format!("update: {e}"))),
                    }
                }
                Op::Delete(k) => {
                    let mut txn = db.begin();
                    let r = db.delete_by_pk(&mut ctx, &mut txn, "t", &[Value::Int(*k)]);
                    match r {
                        Ok(()) => {
                            prop_assert!(model.remove(k).is_some());
                            db.commit(&mut ctx, &mut txn).unwrap();
                        }
                        Err(EngineError::NotFound) => {
                            prop_assert!(!model.contains_key(k));
                            db.abort(&mut ctx, &mut txn).unwrap();
                        }
                        Err(e) => return Err(TestCaseError::fail(format!("delete: {e}"))),
                    }
                }
                Op::Get(k) => {
                    let got = db.get_by_pk(&mut ctx, None, "t", &[Value::Int(*k)]).unwrap();
                    match (got, model.get(k)) {
                        (Some(row), Some(p)) => prop_assert_eq!(row[1].as_str(), p.as_str()),
                        (None, None) => {}
                        (a, b) => {
                            return Err(TestCaseError::fail(format!(
                                "get({k}): engine={:?} model={:?}", a.map(|r| r.len()), b.map(|p| p.len())
                            )))
                        }
                    }
                }
                Op::Scan => {
                    let mut seen: Vec<(i64, String)> = Vec::new();
                    db.scan_table(&mut ctx, "t", |row| {
                        seen.push((row[0].as_int(), row[1].as_str().to_string()));
                        true
                    })
                    .unwrap();
                    let expected: Vec<(i64, String)> =
                        model.iter().map(|(k, v)| (*k, v.clone())).collect();
                    prop_assert_eq!(&seen, &expected, "scan order/content mismatch");
                }
            }
        }
        // Final full verification.
        let mut seen = Vec::new();
        db.scan_table(&mut ctx, "t", |row| {
            seen.push(row[0].as_int());
            true
        })
        .unwrap();
        let expected: Vec<i64> = model.keys().copied().collect();
        prop_assert_eq!(seen, expected);
    }
}
