//! Regression tests for the stale-page flake (ROADMAP item 6).
//!
//! The failure chain: concurrent committers could hand REDO batches to the
//! PageStore facade in inverted LSN order (the drain and the `ship()` call
//! were not one atomic step), and a quorum-failed ship silently *dropped*
//! the drained batch. Replicas then either discarded records as back-link
//! duplicates or could never replay past the hole — cold page reads came
//! back stale (`slot N out of range`) or permanently `NotYetApplied`.
//!
//! The fix has three parts, each pinned here:
//! * stale-replica errors (`SlotOutOfRange`, `NotYetApplied`) classify as
//!   retryable,
//! * the engine read path re-ships and retries instead of failing the
//!   query,
//! * a quorum-failed ship re-queues its records, so a later flush (e.g.
//!   the read-path barrier after the partition heals) can deliver them.

use std::sync::Arc;

use vedb_core::catalog::ColumnType;
use vedb_core::db::{Db, DbConfig, LogBackendKind, StorageFabric};
use vedb_core::{EngineError, Value};
use vedb_pagestore::PageStoreError;
use vedb_sim::fault::NodeId;
use vedb_sim::{ClusterSpec, SimCtx};

fn fabric() -> StorageFabric {
    StorageFabric::build(ClusterSpec::paper_default(), 32 << 20, 256 * 1024)
}

fn schema(cat: &mut vedb_core::Catalog) {
    cat.define("accounts")
        .col("id", ColumnType::Int)
        .col("owner", ColumnType::Str)
        .col("balance", ColumnType::Int)
        .pk(&["id"])
        .build();
}

fn open_db(ctx: &mut SimCtx, fabric: &StorageFabric, cfg: DbConfig) -> Arc<Db> {
    let db = Db::open(ctx, fabric, cfg).unwrap();
    db.define_schema(schema);
    db.create_tables(ctx).unwrap();
    db
}

fn row(id: i64, owner: &str, balance: i64) -> Vec<Value> {
    vec![
        Value::Int(id),
        Value::Str(owner.into()),
        Value::Int(balance),
    ]
}

/// PageStore server node ids (`StorageFabric::build` assigns `200 + i`
/// over the storage nodes).
fn pagestore_nodes(f: &StorageFabric) -> Vec<NodeId> {
    (0..f.env.storage_nodes.len())
        .map(|i| 200 + i as NodeId)
        .collect()
}

#[test]
fn stale_replica_errors_classify_as_retryable() {
    let stale = PageStoreError::SlotOutOfRange { idx: 9, n_slots: 4 };
    assert!(
        stale.is_retryable(),
        "stale directory read must be retryable"
    );
    assert!(EngineError::PageStore(stale).is_retryable());

    let lagging = PageStoreError::NotYetApplied {
        need: 100,
        applied: 40,
    };
    assert!(
        lagging.is_retryable(),
        "lagging watermark must be retryable"
    );
    assert!(EngineError::PageStore(lagging).is_retryable());

    // Structural / logical errors must NOT be retried: re-driving them
    // can't succeed and would just burn the retry budget.
    assert!(!PageStoreError::Codec("bad".into()).is_retryable());
    assert!(!PageStoreError::BadPageImage {
        expected: 8192,
        got: 17
    }
    .is_retryable());
}

/// End-to-end: commit under a full PageStore partition (the ship fails
/// quorum and must re-queue), then heal and read cold — the read-path
/// barrier re-ships the queued records and the rows come back. Without the
/// re-queue, the records are gone and the cold read can never be satisfied.
#[test]
fn reads_recover_after_pagestore_partition_heals() {
    let f = fabric();
    let mut ctx = SimCtx::new(1, 7);
    let db = open_db(
        &mut ctx,
        &f,
        DbConfig::builder()
            .log(LogBackendKind::BlobStore)
            .build()
            .unwrap(),
    );

    // Baseline data, fully shipped and applied.
    let mut t1 = db.begin();
    for i in 0..8 {
        db.insert(&mut ctx, &mut t1, "accounts", row(i, "before", 10 * i))
            .unwrap();
    }
    db.commit(&mut ctx, &mut t1).unwrap();
    db.checkpoint(&mut ctx).unwrap();

    // Partition every PageStore replica. The WAL lives on the blob servers
    // (different node ids), so commits still reach durability — only REDO
    // shipping is cut off.
    for n in pagestore_nodes(&f) {
        f.env.faults.partition(n);
    }

    let mut t2 = db.begin();
    for i in 8..16 {
        db.insert(&mut ctx, &mut t2, "accounts", row(i, "during", 10 * i))
            .unwrap();
    }
    db.commit(&mut ctx, &mut t2)
        .expect("commit needs the log, not PageStore");

    // A cold read while partitioned must surface a *retryable* error, not
    // a panic and not a permanent one.
    db.buffer_pool().clear();
    let err = db
        .get_by_pk(&mut ctx, None, "accounts", &[Value::Int(3)])
        .expect_err("no replica is reachable");
    assert!(
        err.is_retryable(),
        "partition errors must classify retryable, got: {err}"
    );

    // Heal and read cold again: the read path re-flushes the (re-queued)
    // ship buffer and replays the replicas up to the required LSN.
    for n in pagestore_nodes(&f) {
        f.env.faults.heal(n);
    }
    db.buffer_pool().clear();
    for i in 0..16 {
        let got = db
            .get_by_pk(&mut ctx, None, "accounts", &[Value::Int(i)])
            .unwrap()
            .unwrap_or_else(|| panic!("row {i} lost after partition healed"));
        let want = if i < 8 { "before" } else { "during" };
        assert_eq!(got[1], Value::Str(want.into()), "row {i}");
    }
}

/// The same recovery must hold when reads race the healing window: a
/// lagging apply watermark (replicas healed but replay behind the
/// engine's `min_lsn`) is exactly what the bounded read retry covers.
#[test]
fn cold_reads_replay_through_lagging_watermark() {
    let f = fabric();
    let mut ctx = SimCtx::new(1, 11);
    let db = open_db(
        &mut ctx,
        &f,
        DbConfig::builder()
            .log(LogBackendKind::BlobStore)
            .build()
            .unwrap(),
    );

    // Interleave partitioned commits and heals several times so the ship
    // buffer accumulates and drains repeatedly; every row must survive.
    let mut next_id = 0i64;
    for round in 0..3 {
        for n in pagestore_nodes(&f) {
            f.env.faults.partition(n);
        }
        let mut txn = db.begin();
        for _ in 0..5 {
            db.insert(
                &mut ctx,
                &mut txn,
                "accounts",
                row(next_id, &format!("round-{round}"), next_id),
            )
            .unwrap();
            next_id += 1;
        }
        db.commit(&mut ctx, &mut txn).unwrap();
        for n in pagestore_nodes(&f) {
            f.env.faults.heal(n);
        }
        // Cold read immediately after healing: replay happens on demand.
        db.buffer_pool().clear();
        let got = db
            .get_by_pk(&mut ctx, None, "accounts", &[Value::Int(next_id - 1)])
            .unwrap()
            .expect("latest row readable right after heal");
        assert_eq!(got[1], Value::Str(format!("round-{round}")));
    }
}
