//! **Figure 12** — effect of EBP size on the internal lookup workload.
//!
//! Paper shapes: a large table probed by point lookups with a ~95%
//! buffer-pool hit rate; even the smallest EBP (256 GB) cuts average
//! response time by ~45% and P99 by >50%, with diminishing returns as the
//! EBP doubles (only so much data is eligible for caching).

use std::sync::Arc;

use vedb_bench::{fmt_ms, paper_note, print_table, Deployment};
use vedb_core::db::{DbConfig, LogBackendKind};
use vedb_core::ebp::EbpConfig;
use vedb_sim::VTime;
use vedb_workloads::lookup::{self, LookupScale};

fn run_config(ebp_bytes: Option<u64>, scale: LookupScale) -> (VTime, VTime) {
    let mut dep = Deployment::open_with(
        // bp_pages ~5% of the table: mid-90s BP hit rate.
        DbConfig::builder()
            .bp_pages(128)
            .bp_shards(8)
            .log(LogBackendKind::AStore)
            .ring_segments(12)
            .ebp(ebp_bytes.map(|b| EbpConfig {
                capacity_bytes: b,
                ..Default::default()
            }))
            .build()
            .unwrap(),
        vedb_sim::ClusterSpec::paper_default(),
        1 << 30,
        2 << 20,
    );
    dep.db.define_schema(lookup::define_schema);
    dep.db.create_tables(&mut dep.ctx).unwrap();
    lookup::load(&mut dep.ctx, &dep.db, scale).unwrap();
    // Warm pass: stream the cold region through the BP so evictions
    // populate the EBP.
    {
        let db = Arc::clone(&dep.db);
        let mut warm_ctx = dep.ctx.fork();
        for i in (1..=scale.rows).step_by(3) {
            let _ = db.get_by_pk(
                &mut warm_ctx,
                None,
                "operations",
                &[vedb_core::Value::Int(i)],
            );
        }
        dep.ctx.wait_until(warm_ctx.now());
    }
    let db = Arc::clone(&dep.db);
    let r = dep.trial(
        16,
        VTime::from_millis(30),
        VTime::from_millis(200),
        |ctx, _| lookup::lookup_op(ctx, &db, scale),
    );
    (r.latency.mean(), r.latency.p99())
}

fn main() {
    let scale = LookupScale {
        rows: 20_000,
        hot_fraction: 0.95,
        hot_region: 0.06,
    };
    // EBP sizes double, as in the figure; 0 = disabled.
    let configs: [(&str, Option<u64>); 5] = [
        ("no EBP", None),
        ("256GB(=8MB)", Some(8 << 20)),
        ("512GB(=16MB)", Some(16 << 20)),
        ("1TB(=32MB)", Some(32 << 20)),
        ("2TB(=64MB)", Some(64 << 20)),
    ];
    let mut rows = Vec::new();
    let mut stats = Vec::new();
    for (label, bytes) in configs {
        let (avg, p99) = run_config(bytes, scale);
        stats.push((avg, p99));
        rows.push(vec![label.to_string(), fmt_ms(avg), fmt_ms(p99)]);
    }
    print_table(
        "Fig 12: lookup workload latency vs EBP size",
        &["EBP size", "avg (ms)", "P99 (ms)"],
        &rows,
    );
    paper_note("256GB EBP: avg -45%, P99 -50%+; each doubling helps about half as much");

    let (avg0, p990) = stats[0];
    let (avg1, p991) = stats[1];
    let (avg_max, _) = stats[4];
    assert!(
        avg1.as_nanos() as f64 <= avg0.as_nanos() as f64 * 0.75,
        "smallest EBP must cut avg latency substantially ({avg0} -> {avg1})"
    );
    assert!(p991 < p990, "smallest EBP must cut P99 ({p990} -> {p991})");
    let first_gain = avg0.as_nanos().saturating_sub(avg1.as_nanos());
    let later_gain = avg1.as_nanos().saturating_sub(avg_max.as_nanos());
    assert!(
        later_gain < first_gain,
        "doubling the EBP must show diminishing returns ({first_gain} then {later_gain})"
    );
    println!("\nshape-check: OK");
}
