//! **Smoke-scale report run** — a small TPC-C trial on the full veDB
//! stack (AStore log + Extended Buffer Pool), exported as
//! `BENCH_tpcc_smoke.json`. CI runs this target to produce the artifact
//! it uploads and to check that every subsystem actually publishes into
//! the registry; the scale is deliberately tiny so it finishes in
//! seconds.

use vedb_bench::{fmt_tps, write_bench_report, Deployment};
use vedb_core::db::{DbConfig, LogBackendKind};
use vedb_core::ebp::EbpConfig;
use vedb_sim::VTime;
use vedb_workloads::tpcc::{self, TpccScale};

fn main() {
    let scale = TpccScale::bench();
    // A buffer pool smaller than the loaded tables (same shape as Fig 10),
    // so evictions spill into the EBP and the ebp_* counters exercise both
    // the write and the hit path.
    let mut dep = Deployment::open(
        DbConfig::builder()
            .bp_pages(96)
            .bp_shards(8)
            .log(LogBackendKind::AStore)
            .ring_segments(12)
            .ebp(EbpConfig {
                capacity_bytes: 256 << 20,
                ..Default::default()
            })
            .build()
            .unwrap(),
    );
    dep.db.define_schema(tpcc::define_schema);
    dep.db.create_tables(&mut dep.ctx).unwrap();
    tpcc::load(&mut dep.ctx, &dep.db, &scale).unwrap();

    // Single client: the smoke run doubles as the determinism fixture (a
    // one-client virtual-time trial is reproducible bit for bit), and it
    // sidesteps the engine's known EBP-under-concurrent-writers races.
    let db = std::sync::Arc::clone(&dep.db);
    let r = dep.trial(
        1,
        VTime::from_millis(5),
        VTime::from_millis(200),
        |ctx, _| tpcc::run_transaction(ctx, &db, &scale),
    );
    println!(
        "smoke TPC-C: {} TPS, p95 {:.2} ms",
        fmt_tps(r.throughput()),
        r.latency.p95().as_millis_f64()
    );

    let report = dep.report("tpcc_smoke", Some(&r));
    // The artifact must prove each subsystem reported in: these are the
    // counters EXPERIMENTS.md documents as the health check.
    for key in [
        "pmem.flushes",
        "pmem.bytes_persisted",
        "rdma.chain_writes",
        "rdma.rpc_calls",
        "astore.appends",
        "core.wal_flushes",
        "core.ebp_writes",
        "core.bp_misses",
        "core.txn_commits",
        "pagestore.records_applied",
    ] {
        assert!(
            report.counter(key) > 0,
            "expected non-zero counter {key} in smoke report"
        );
    }
    assert!(report.throughput() > 0.0, "smoke run committed nothing");
    write_bench_report(&report).expect("write BENCH_tpcc_smoke.json");
}
