//! **Smoke-scale report run** — a small TPC-C trial on the full veDB
//! stack (AStore log + Extended Buffer Pool), exported as
//! `BENCH_tpcc_smoke.json`. CI runs this target to produce the artifact
//! it uploads and to check that every subsystem actually publishes into
//! the registry; the scale is deliberately tiny so it finishes in
//! seconds.

use vedb_bench::{fmt_tps, write_bench_report, Deployment};
use vedb_core::db::{DbConfig, LogBackendKind};
use vedb_core::ebp::EbpConfig;
use vedb_sim::VTime;
use vedb_workloads::tpcc::{self, TpccScale};

fn main() {
    let scale = TpccScale::bench();
    // A buffer pool smaller than the loaded tables (same shape as Fig 10),
    // so evictions spill into the EBP and the ebp_* counters exercise both
    // the write and the hit path.
    let mut dep = Deployment::open(
        DbConfig::builder()
            .bp_pages(96)
            .bp_shards(8)
            .log(LogBackendKind::AStore)
            .ring_segments(12)
            .ebp(EbpConfig {
                capacity_bytes: 256 << 20,
                ..Default::default()
            })
            .build()
            .unwrap(),
    );
    dep.db.define_schema(tpcc::define_schema);
    dep.db.create_tables(&mut dep.ctx).unwrap();
    tpcc::load(&mut dep.ctx, &dep.db, &scale).unwrap();

    // Trace the trial (not the load) so the report's `profile` section
    // carries commit-phase attribution. The ring must hold the whole
    // measurement window: ~1K commits x ~50 spans fits in 2^18.
    dep.metrics().trace().set_capacity(1 << 18);
    dep.metrics().trace().enable();

    // Single client: the smoke run doubles as the determinism fixture (a
    // one-client virtual-time trial is reproducible bit for bit), and it
    // sidesteps the engine's known EBP-under-concurrent-writers races.
    let db = std::sync::Arc::clone(&dep.db);
    let r = dep.trial(
        1,
        VTime::from_millis(5),
        VTime::from_millis(200),
        |ctx, _| tpcc::run_transaction(ctx, &db, &scale),
    );
    println!(
        "smoke TPC-C: {} TPS, p95 {:.2} ms",
        fmt_tps(r.throughput()),
        r.latency.p95().as_millis_f64()
    );

    let report = dep.report("tpcc_smoke", Some(&r));
    // The artifact must prove each subsystem reported in: these are the
    // counters EXPERIMENTS.md documents as the health check.
    for key in [
        "pmem.flushes",
        "pmem.bytes_persisted",
        "rdma.chain_writes",
        "rdma.rpc_calls",
        "astore.appends",
        "core.wal_flushes",
        "core.ebp_writes",
        "core.bp_misses",
        "core.txn_commits",
        "pagestore.records_applied",
    ] {
        assert!(
            report.counter(key) > 0,
            "expected non-zero counter {key} in smoke report"
        );
    }
    assert!(report.throughput() > 0.0, "smoke run committed nothing");

    // Phase accounting must close the loop: the commit_phases breakdown
    // sums to the end-to-end commit time (within 1% for ring-eviction
    // slack; by construction it is exact when nothing was evicted).
    let profile = &report.profile;
    assert!(profile.spans > 0, "trace captured no spans");
    let commit_total = profile.ops["core/commit"].total_ns;
    let phase_sum: u64 = profile.commit_phases.values().map(|p| p.total_ns).sum();
    assert!(commit_total > 0, "no commit spans in profile");
    let drift = commit_total.abs_diff(phase_sum);
    assert!(
        drift * 100 <= commit_total,
        "commit_phases sum {phase_sum} deviates >1% from commit total {commit_total}"
    );
    assert!(
        profile.commit_phases.contains_key("wal/flush"),
        "commit path must attribute a wal/flush phase"
    );

    // Saturation attribution (schema v3): every cluster device must have
    // been discovered via its `.lanes` gauge and seen traffic, lock
    // acquisition must attribute to labelled tables, and the traced window
    // must fold into flamegraph stacks.
    assert!(
        !report.resources.is_empty(),
        "no resources discovered in smoke report"
    );
    for dev in ["engine.nic", "astore-0.pmem", "astore-0.nic"] {
        let r = report
            .resources
            .get(dev)
            .unwrap_or_else(|| panic!("resource {dev} missing from report"));
        assert!(r.ops > 0, "resource {dev} saw no traffic");
        assert_eq!(r.wait.count, r.ops, "{dev} wait samples != ops");
        assert_eq!(r.service.count, r.ops, "{dev} service samples != ops");
    }
    assert!(
        !profile.locks.tables.is_empty(),
        "lock contention profile attributed no tables"
    );
    assert!(
        profile.locks.tables.contains_key("warehouse"),
        "TPC-C lock profile must name the warehouse table"
    );
    assert!(
        !profile.folded.is_empty(),
        "traced run produced no folded stacks"
    );

    write_bench_report(&report).expect("write BENCH_tpcc_smoke.json");
    print!("{}", report.top_summary());
}
