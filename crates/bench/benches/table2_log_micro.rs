//! **Table II** — log-writing micro-benchmark.
//!
//! "We develop a micro benchmark tool that continuously writes 4KB pages
//! to either AStore or the regular LogStore in a single thread and
//! measures the latency, I/OPS, and bandwidth." Paper numbers:
//! W/O PMem 0.638 ms / 1,527 IOPS / 5.97 MB/s; W/ PMem 0.086 ms / 11,465
//! IOPS / 44.79 MB/s (~7× across the board).

use std::sync::Arc;

use vedb_astore::layout::SegmentClass;
use vedb_astore::{AppendOpts, SegmentOpts};
use vedb_bench::{paper_note, print_table};
use vedb_blobstore::{BlobGroup, BlobGroupConfig};
use vedb_core::db::StorageFabric;
use vedb_sim::{ClusterSpec, SimCtx};

const WRITES: usize = 2_000;
const SIZE: usize = 4096;

fn main() {
    let fabric = StorageFabric::build(ClusterSpec::paper_default(), 512 << 20, 16 << 20);

    // Baseline: BlobGroup over the SSD blob store (TCP RPC path).
    let mut ctx = SimCtx::new(1, 7);
    let group = BlobGroup::create(
        &mut ctx,
        BlobGroupConfig::default(),
        &fabric.blob_servers,
        Arc::clone(&fabric.rpc),
    )
    .unwrap();
    let t0 = ctx.now();
    for _ in 0..WRITES {
        group.append(&mut ctx, &[7u8; SIZE]).unwrap();
    }
    let ssd = summarize(ctx.now() - t0);

    // AStore: SegmentRing-style appends over PMem + one-sided RDMA.
    let mut ctx = SimCtx::new(2, 7);
    let ep = vedb_rdma::RdmaEndpoint::new(
        fabric.env.model.clone(),
        Arc::clone(&fabric.env.faults),
        Arc::clone(&fabric.env.engine_nic),
    );
    let client = vedb_astore::AStoreClient::connect(
        &mut ctx,
        Arc::clone(&fabric.cm),
        ep,
        Arc::clone(&fabric.env.engine_cpu),
        fabric.env.model.clone(),
        99,
        vedb_sim::VTime::from_millis(50),
    );
    let mut seg = client
        .create_segment_with(&mut ctx, SegmentOpts::new(SegmentClass::Log))
        .unwrap();
    let t0 = ctx.now();
    for _ in 0..WRITES {
        if client.segment_len(seg) + SIZE as u64 > client.segment_capacity(seg) {
            seg = client
                .create_segment_with(&mut ctx, SegmentOpts::new(SegmentClass::Log))
                .unwrap();
        }
        client
            .append_with(&mut ctx, seg, &[7u8; SIZE], AppendOpts::new())
            .unwrap();
    }
    let pmem = summarize(ctx.now() - t0);

    print_table(
        "Table II: log writing micro-benchmark (4KB, single thread)",
        &[
            "config",
            "avg write latency (ms)",
            "avg IOPS",
            "avg bandwidth (MB/s)",
        ],
        &[
            vec![
                "W/O PMem".into(),
                format!("{:.3}", ssd.0),
                format!("{:.0}", ssd.1),
                format!("{:.2}", ssd.2),
            ],
            vec![
                "W/  PMem".into(),
                format!("{:.3}", pmem.0),
                format!("{:.0}", pmem.1),
                format!("{:.2}", pmem.2),
            ],
            vec![
                "speedup".into(),
                format!("{:.1}x", ssd.0 / pmem.0),
                format!("{:.1}x", pmem.1 / ssd.1),
                format!("{:.1}x", pmem.2 / ssd.2),
            ],
        ],
    );
    paper_note("W/O 0.638ms / 1527 IOPS / 5.97 MB/s; W/ 0.086ms / 11465 IOPS / 44.79 MB/s (~7x)");

    assert!(
        ssd.0 / pmem.0 >= 4.0,
        "PMem log writes must be several times faster (got {:.1}x)",
        ssd.0 / pmem.0
    );
}

/// (avg latency ms, IOPS, MB/s) for WRITES ops over `total`.
fn summarize(total: vedb_sim::VTime) -> (f64, f64, f64) {
    let avg_ms = total.as_millis_f64() / WRITES as f64;
    let iops = WRITES as f64 / total.as_secs_f64();
    let mbps = iops * SIZE as f64 / 1e6;
    (avg_ms, iops, mbps)
}
