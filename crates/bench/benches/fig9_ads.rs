//! **Figure 9** — the internal advertisement workload: average and maximum
//! query latency with and without AStore.
//!
//! Paper shapes: average latency ~20× lower with AStore (~5 ms vs the
//! stock deployment's spikes toward ~150 ms P99), and worst-case drops
//! from ~500 ms to ~20 ms. The driver duplicates the workload onto both
//! deployments, as the paper's shadow-traffic test did.

use std::sync::Arc;

use vedb_bench::{fmt_ms, paper_note, print_table, Deployment};
use vedb_core::db::{DbConfig, LogBackendKind};
use vedb_sim::VTime;
use vedb_workloads::ads;

fn main() {
    let mut rows = Vec::new();
    let mut stats = Vec::new();
    for (name, log) in [
        ("veDB", LogBackendKind::BlobStore),
        ("veDB+AStore", LogBackendKind::AStore),
    ] {
        let mut dep = Deployment::open(
            DbConfig::builder()
                .bp_pages(4096)
                .bp_shards(16)
                .log(log)
                .ring_segments(12)
                .build()
                .unwrap(),
        );
        dep.db.define_schema(ads::define_schema);
        dep.db.create_tables(&mut dep.ctx).unwrap();
        ads::load(&mut dep.ctx, &dep.db).unwrap();

        let db = Arc::clone(&dep.db);
        let r = dep.trial(
            16,
            VTime::from_millis(30),
            VTime::from_millis(250),
            |ctx, _| ads::ad_op(ctx, &db),
        );
        rows.push(vec![
            name.to_string(),
            fmt_ms(r.latency.mean()),
            fmt_ms(r.latency.p99()),
            fmt_ms(r.latency.max()),
        ]);
        stats.push((r.latency.mean(), r.latency.p99(), r.latency.max()));
    }
    print_table(
        "Fig 9: advertisement workload latency (ms)",
        &["config", "avg", "P99", "max"],
        &rows,
    );
    paper_note("avg ~20x lower with AStore; P99 150ms -> ~5ms; worst-case ~500ms -> ~20ms");

    let (avg_base, p99_base, max_base) = stats[0];
    let (avg_astore, p99_astore, max_astore) = stats[1];
    assert!(
        avg_base.as_nanos() as f64 / avg_astore.as_nanos().max(1) as f64 > 3.0,
        "AStore average must be several times lower ({avg_base} vs {avg_astore})"
    );
    assert!(p99_astore < p99_base, "AStore P99 must be lower");
    assert!(max_astore < max_base, "AStore worst case must be lower");
    println!(
        "\nshape-check: OK (avg {:.1}x, P99 {:.1}x, max {:.1}x better with AStore)",
        avg_base.as_nanos() as f64 / avg_astore.as_nanos().max(1) as f64,
        p99_base.as_nanos() as f64 / p99_astore.as_nanos().max(1) as f64,
        max_base.as_nanos() as f64 / max_astore.as_nanos().max(1) as f64,
    );
}
