//! **Figures 6 + 7** — TPC-C throughput and P95 latency vs concurrency,
//! veDB with and without AStore.
//!
//! Paper shapes: with AStore throughput peaks ~90k TPS at 64 clients
//! (+30% over the ~68k TPS baseline, which peaks later, at 128 clients);
//! P95 latency is consistently lower with AStore (up to ~50% at 32
//! clients), and the gap narrows beyond 64 clients as the workload turns
//! CPU-bound.

use vedb_bench::{fmt_ms, fmt_tps, paper_note, print_table, write_bench_report, Deployment};
use vedb_core::db::{DbConfig, LogBackendKind};
use vedb_sim::VTime;
use vedb_workloads::tpcc::{self, TpccScale};

fn main() {
    // Warehouse count sized so the top of the client sweep sits near the
    // spec's ~10 terminals/warehouse ratio (the paper loads 1000 warehouses
    // for up to 512 clients; scaled down proportionally).
    let scale = TpccScale {
        warehouses: 48,
        districts: 4,
        customers: 40,
        items: 200,
        initial_orders: 15,
    };
    let clients = vec![1usize, 2, 4, 8, 16, 32, 64, 128, 256];
    let mut series: Vec<(String, Vec<(f64, VTime)>)> = Vec::new();

    for (name, slug, log) in [
        ("veDB", "fig6_7_tpcc_vedb", LogBackendKind::BlobStore),
        ("veDB+AStore", "fig6_7_tpcc_astore", LogBackendKind::AStore),
    ] {
        let mut dep = Deployment::open(
            DbConfig::builder()
                .bp_pages(4096)
                .bp_shards(16)
                .log(log)
                .ring_segments(8)
                .build()
                .unwrap(),
        );
        dep.db.define_schema(tpcc::define_schema);
        dep.db.create_tables(&mut dep.ctx).unwrap();
        tpcc::load(&mut dep.ctx, &dep.db, &scale).unwrap();

        let mut points = Vec::new();
        let mut peak_trial = None;
        for &n in &clients {
            let db = std::sync::Arc::clone(&dep.db);
            let r = dep.trial(
                n,
                VTime::from_millis(20),
                VTime::from_millis(150),
                |ctx, _| tpcc::run_transaction(ctx, &db, &scale),
            );
            points.push((r.throughput(), r.latency.p95()));
            if peak_trial
                .as_ref()
                .map(|t: &vedb_sim::TrialResult| r.throughput() > t.throughput())
                .unwrap_or(true)
            {
                peak_trial = Some(r);
            }
        }
        // Export the run's observability snapshot (counters accumulate over
        // the full sweep; the trial section reflects the peak point).
        let _ = write_bench_report(&dep.report(slug, peak_trial.as_ref()));
        series.push((name.to_string(), points));
    }

    let rows: Vec<Vec<String>> = clients
        .iter()
        .enumerate()
        .map(|(i, n)| {
            vec![
                n.to_string(),
                fmt_tps(series[0].1[i].0),
                fmt_tps(series[1].1[i].0),
                format!(
                    "{:+.0}%",
                    (series[1].1[i].0 / series[0].1[i].0 - 1.0) * 100.0
                ),
            ]
        })
        .collect();
    print_table(
        "Fig 6: TPC-C throughput (TPS) vs clients",
        &["clients", "veDB", "veDB+AStore", "gain"],
        &rows,
    );
    paper_note("peaks ~68k TPS (veDB, @128 clients) vs ~90k TPS (AStore, @64 clients), +30%");

    let rows: Vec<Vec<String>> = clients
        .iter()
        .enumerate()
        .map(|(i, n)| {
            vec![
                n.to_string(),
                fmt_ms(series[0].1[i].1),
                fmt_ms(series[1].1[i].1),
                format!(
                    "{:.0}%",
                    (1.0 - series[1].1[i].1.as_nanos() as f64
                        / series[0].1[i].1.as_nanos().max(1) as f64)
                        * 100.0
                ),
            ]
        })
        .collect();
    print_table(
        "Fig 7: TPC-C P95 latency (ms) vs clients",
        &["clients", "veDB", "veDB+AStore", "reduction"],
        &rows,
    );
    paper_note("AStore consistently lower; ~50% reduction at 32 clients; gap narrows past 64");

    // Shape assertions.
    let peak = |s: &[(f64, VTime)]| s.iter().map(|p| p.0).fold(0.0f64, f64::max);
    let peak_vedb = peak(&series[0].1);
    let peak_astore = peak(&series[1].1);
    assert!(
        peak_astore > peak_vedb * 1.1,
        "AStore peak TPS ({peak_astore:.0}) must exceed baseline ({peak_vedb:.0}) by >10%"
    );
    let mid = 5; // 32 clients
    assert!(
        series[1].1[mid].1 < series[0].1[mid].1,
        "AStore P95 must be lower at 32 clients"
    );
    println!(
        "\nshape-check: OK (AStore peak {peak_astore:.0} > baseline peak {peak_vedb:.0}; lower P95 at 32 clients)"
    );
}
