//! Criterion micro-benchmarks for the core data structures: slotted page
//! operations, B+Tree point ops through the full engine stack, row/key
//! codecs, REDO codecs, and the latency-histogram recorder.

// `criterion_group!` expands to undocumented public items.
#![allow(missing_docs)]

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use vedb_core::db::{Db, DbConfig, StorageFabric};
use vedb_core::row::{decode_row, encode_key, encode_row, Value};
use vedb_pagestore::page::{Page, PageType};
use vedb_pagestore::redo::{decode_record, encode_record, PageOp, RedoRecord};
use vedb_sim::{ClusterSpec, LatencyRecorder, SimCtx, VTime};

fn bench_page_ops(c: &mut Criterion) {
    c.bench_function("page/insert_100_cells", |b| {
        b.iter(|| {
            let mut p = Page::new();
            p.format(PageType::BTreeLeaf, 0);
            for i in 0..100 {
                p.insert_at(i, &[i as u8; 64]).unwrap();
            }
            p
        })
    });
    let mut page = Page::new();
    page.format(PageType::BTreeLeaf, 0);
    for i in 0..100 {
        page.insert_at(i, &[i as u8; 64]).unwrap();
    }
    c.bench_function("page/get_cell", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % 100;
            page.get(i).unwrap().len()
        })
    });
    c.bench_function("page/update_and_compact", |b| {
        b.iter(|| {
            let mut p = page.clone();
            p.update(50, &[1u8; 8]).unwrap();
            p.compact();
            p
        })
    });
}

fn bench_codecs(c: &mut Criterion) {
    let row = vec![
        Value::Int(123456),
        Value::Str("hello world, this is a row".into()),
        Value::Double(12.5),
        Value::Int(-9),
    ];
    c.bench_function("codec/encode_row", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(64);
            encode_row(&row, &mut buf);
            buf
        })
    });
    let mut buf = Vec::new();
    encode_row(&row, &mut buf);
    c.bench_function("codec/decode_row", |b| b.iter(|| decode_row(&buf).unwrap()));
    c.bench_function("codec/encode_key", |b| {
        b.iter(|| encode_key(&[Value::Int(42), Value::Str("abcdef".into())]))
    });
    let rec = RedoRecord {
        lsn: 100,
        prev_same_segment: 50,
        txn_id: 7,
        page: vedb_astore::PageId::new(3, 9),
        op: PageOp::InsertAt {
            slot: 5,
            cell: vec![7u8; 80],
        },
    };
    c.bench_function("codec/encode_redo", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(128);
            encode_record(&rec, &mut out);
            out
        })
    });
    let mut enc = Vec::new();
    encode_record(&rec, &mut enc);
    c.bench_function("codec/decode_redo", |b| {
        b.iter(|| decode_record(&enc).unwrap())
    });
}

fn engine() -> (Arc<Db>, SimCtx) {
    let fabric = StorageFabric::build(ClusterSpec::paper_default(), 64 << 20, 1 << 20);
    let mut ctx = SimCtx::new(0, 7);
    let db = Db::open(
        &mut ctx,
        &fabric,
        DbConfig::builder().bp_pages(2048).build().unwrap(),
    )
    .unwrap();
    db.define_schema(|cat| {
        cat.define("t")
            .col("id", vedb_core::ColumnType::Int)
            .col("v", vedb_core::ColumnType::Str)
            .pk(&["id"])
            .build();
    });
    db.create_tables(&mut ctx).unwrap();
    let mut txn = db.begin();
    for i in 0..10_000 {
        db.insert(
            &mut ctx,
            &mut txn,
            "t",
            vec![Value::Int(i), Value::Str(format!("v{i}"))],
        )
        .unwrap();
        if i % 1000 == 0 {
            db.commit(&mut ctx, &mut txn).unwrap();
            txn = db.begin();
        }
    }
    db.commit(&mut ctx, &mut txn).unwrap();
    // The fabric must outlive the Db; benches run to process exit anyway.
    std::mem::forget(fabric);
    (db, ctx)
}

fn bench_engine_ops(c: &mut Criterion) {
    let (db, mut ctx) = engine();
    c.bench_function("engine/point_get", |b| {
        let mut i = 0i64;
        b.iter(|| {
            i = (i + 7919) % 10_000;
            db.get_by_pk(&mut ctx, None, "t", &[Value::Int(i)]).unwrap()
        })
    });
    c.bench_function("engine/insert_commit", |b| {
        let mut i = 100_000i64;
        b.iter(|| {
            i += 1;
            let mut txn = db.begin();
            db.insert(
                &mut ctx,
                &mut txn,
                "t",
                vec![Value::Int(i), Value::Str("x".into())],
            )
            .unwrap();
            db.commit(&mut ctx, &mut txn).unwrap();
        })
    });
}

fn bench_histogram(c: &mut Criterion) {
    let rec = LatencyRecorder::new();
    c.bench_function("sim/latency_record", |b| {
        let mut i = 1u64;
        b.iter(|| {
            i = i.wrapping_mul(6364136223846793005).wrapping_add(1);
            rec.record(VTime::from_nanos(i % 10_000_000));
        })
    });
    for i in 0..100_000u64 {
        rec.record(VTime::from_nanos(i));
    }
    c.bench_function("sim/latency_p99", |b| b.iter(|| rec.p99()));
}

criterion_group!(
    name = micro;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_page_ops, bench_codecs, bench_engine_ops, bench_histogram
);
criterion_main!(micro);
