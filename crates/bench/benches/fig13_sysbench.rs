//! **Table III + Figure 13** — cost-equalized sysbench comparison.
//!
//! The paper equalizes hardware cost: PMem is ~1/3 the price of DRAM, so
//! "veDB + AStore" trades buffer-pool DRAM for 3× as much EBP PMem
//! (100 GB BP → 40 GB BP + 180 GB EBP, and so on down the Table III rows).
//! Figure 13 plots the QPS improvement of the AStore deployment over stock
//! veDB per client count: substantial gains below 64 clients, shrinking as
//! concurrency grows (EBP index maintenance contention), roughly vanishing
//! by 256.

use std::sync::Arc;

use vedb_bench::{paper_note, print_table, Deployment};
use vedb_core::db::{DbConfig, LogBackendKind};
use vedb_core::ebp::EbpConfig;
use vedb_sim::{ClusterSpec, VTime};
use vedb_workloads::sysbench::{self, SysbenchScale};

/// Table III rows, scaled: (cores, stock BP pages, AStore BP pages, EBP MB).
const ROWS: [(usize, usize, usize, u64); 2] = [(32, 640, 256, 24), (8, 128, 64, 6)];

fn run_config(
    cores: usize,
    bp_pages: usize,
    ebp_mb: Option<u64>,
    clients: &[usize],
    scale: SysbenchScale,
) -> Vec<f64> {
    let log = if ebp_mb.is_some() {
        LogBackendKind::AStore
    } else {
        LogBackendKind::BlobStore
    };
    let mut dep = Deployment::open_with(
        DbConfig::builder()
            .bp_pages(bp_pages)
            .bp_shards(8)
            .log(log)
            .ring_segments(12)
            .ebp(ebp_mb.map(|mb| EbpConfig {
                capacity_bytes: mb << 20,
                ..Default::default()
            }))
            .build()
            .unwrap(),
        ClusterSpec::paper_default().with_engine_cores(cores),
        1 << 30,
        2 << 20,
    );
    dep.db.define_schema(sysbench::define_schema);
    dep.db.create_tables(&mut dep.ctx).unwrap();
    sysbench::load(&mut dep.ctx, &dep.db, scale).unwrap();
    clients
        .iter()
        .map(|&n| {
            let db = Arc::clone(&dep.db);
            let r = dep.trial(
                n,
                VTime::from_millis(15),
                VTime::from_millis(100),
                |ctx, _| sysbench::transaction(ctx, &db, scale),
            );
            r.throughput()
        })
        .collect()
}

fn main() {
    let scale = SysbenchScale { rows: 10_000 };
    let clients = vec![1usize, 8, 32, 128, 256];
    let mut all_rows = Vec::new();
    let mut low_gain = Vec::new();
    let mut high_gain = Vec::new();
    for (cores, stock_bp, astore_bp, ebp_mb) in ROWS {
        let stock = run_config(cores, stock_bp, None, &clients, scale);
        let accel = run_config(cores, astore_bp, Some(ebp_mb), &clients, scale);
        for (i, &n) in clients.iter().enumerate() {
            let gain = (accel[i] / stock[i].max(1.0) - 1.0) * 100.0;
            if n <= 32 {
                low_gain.push(gain);
            }
            if n >= 128 {
                high_gain.push(gain);
            }
            all_rows.push(vec![
                format!("{cores} cores"),
                n.to_string(),
                format!("{:.0}", stock[i]),
                format!("{:.0}", accel[i]),
                format!("{gain:+.0}%"),
            ]);
        }
    }
    print_table(
        "Fig 13: sysbench QPS, cost-equalized veDB vs veDB+AStore (Table III rows)",
        &["config", "clients", "veDB", "veDB+AStore", "improvement"],
        &all_rows,
    );
    paper_note("significant gains <64 clients; improvement diminishes by 256 clients");

    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let low = avg(&low_gain);
    let high = avg(&high_gain);
    assert!(
        low > 10.0,
        "low-concurrency improvement should be substantial, got {low:.0}%"
    );
    assert!(
        high < low,
        "improvement must shrink at high concurrency ({high:.0}% vs {low:.0}%)"
    );
    println!("\nshape-check: OK (avg gain ≤32 clients {low:.0}%, ≥128 clients {high:.0}%)");
}
