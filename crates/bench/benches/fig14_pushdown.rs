//! **Figure 14** — push-down acceleration over the 22 CH-benCHmark
//! queries.
//!
//! Three configurations per query, as in the paper:
//!
//! * **baseline** — no EBP, no push-down, default query plan;
//! * **plan-change only** (blue bars) — the push-down-friendly plan (hash
//!   joins instead of the optimizer's default nested loops) but executed
//!   entirely in the engine;
//! * **PQ + EBP** (orange bars) — push-down enabled with the EBP hosting
//!   the hot pages.
//!
//! Paper shapes: Q1, 6, 11, 13, 15, 20, 22 gain 4–24× (aggregations and
//! selective filters pushed down); geometric mean ≈2.8× for PQ+EBP and
//! ≈2× attributable to execution (not plan choice) when re-baselined on
//! the plan-change-only runs.

use std::sync::Arc;

use vedb_bench::{paper_note, print_table, Deployment};
use vedb_core::db::{Db, DbConfig, LogBackendKind};
use vedb_core::ebp::EbpConfig;
use vedb_core::query::{execute, Expr, Plan, QuerySession};
use vedb_sim::{SimCtx, VTime};
use vedb_workloads::{chbench, tpcc};

/// Queries whose *default* plan uses a nested-loop join (the optimizer
/// preference the paper describes for Q13's customer⋈orders); switching to
/// the hash plan is the "plan change" effect.
fn default_plan(q: usize) -> Plan {
    match q {
        // Q16's default: nested-loop item x supplier.
        16 => Plan::NestLoopJoin {
            left: Box::new(Plan::scan("item")),
            right: Box::new(Plan::scan_where(
                "supplier",
                Expr::cmp(vedb_core::query::CmpOp::Gt, Expr::col(3), Expr::dbl(100.0)),
            )),
            on: Expr::eq(Expr::col(0), Expr::col(3)),
            project: None,
        }
        .agg(vec![4], vec![vedb_core::query::AggExpr::count_star()]),
        // Q20's default: nested-loop stock x supplier.
        20 => {
            let filtered = Plan::scan_where(
                "stock",
                Expr::cmp(vedb_core::query::CmpOp::Gt, Expr::col(2), Expr::int(40)),
            )
            .project(vec![
                Expr::col(0),
                Expr::col(1),
                Expr::mul(Expr::col(0), Expr::col(1)),
            ]);
            Plan::NestLoopJoin {
                left: Box::new(filtered),
                right: Box::new(Plan::scan("supplier")),
                on: Expr::eq(Expr::col(2), Expr::col(3)),
                project: None,
            }
            .agg(vec![5], vec![vedb_core::query::AggExpr::count_star()])
        }
        _ => chbench::query(q),
    }
}

fn timed(ctx: &mut SimCtx, db: &Arc<Db>, session: &QuerySession, plan: &Plan) -> VTime {
    execute(ctx, db, session, plan).unwrap(); // warm-up run
    let t0 = ctx.now();
    for _ in 0..2 {
        execute(ctx, db, session, plan).unwrap();
    }
    (ctx.now() - t0) / 2
}

fn geomean(xs: &[f64]) -> f64 {
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

fn main() {
    let scale = tpcc::TpccScale {
        warehouses: 8,
        districts: 4,
        customers: 60,
        items: 300,
        initial_orders: 40,
    };
    // bp_pages much smaller than the AP working set.
    let mut dep = Deployment::open(
        DbConfig::builder()
            .bp_pages(64)
            .bp_shards(8)
            .log(LogBackendKind::AStore)
            .ring_segments(12)
            .ebp(EbpConfig {
                capacity_bytes: 512 << 20,
                ..Default::default()
            })
            .build()
            .unwrap(),
    );
    dep.db.define_schema(|cat| {
        tpcc::define_schema(cat);
        chbench::extend_schema(cat);
    });
    dep.db.create_tables(&mut dep.ctx).unwrap();
    tpcc::load(&mut dep.ctx, &dep.db, &scale).unwrap();
    chbench::load_extra(&mut dep.ctx, &dep.db).unwrap();
    // Prime the EBP through evictions.
    for q in [1usize, 12, 22] {
        let _ = execute(
            &mut dep.ctx,
            &dep.db,
            &QuerySession::default(),
            &chbench::query(q),
        );
    }

    let local = QuerySession::default();
    let pq = QuerySession::with_pushdown();
    let db = Arc::clone(&dep.db);
    let ctx = &mut dep.ctx;

    let mut rows = Vec::new();
    let mut pq_speedups = Vec::new();
    let mut plan_only_speedups = Vec::new();
    let mut winners = Vec::new();
    for q in 1..=22usize {
        let t_base = timed(ctx, &db, &local, &default_plan(q));
        let t_plan = timed(ctx, &db, &local, &chbench::query(q));
        let t_pq = timed(ctx, &db, &pq, &chbench::query(q));
        let s_plan = t_base.as_nanos() as f64 / t_plan.as_nanos().max(1) as f64;
        let s_pq = t_base.as_nanos() as f64 / t_pq.as_nanos().max(1) as f64;
        pq_speedups.push(s_pq);
        plan_only_speedups.push(s_plan);
        if chbench::PUSHDOWN_WINNERS.contains(&q) {
            winners.push(s_pq);
        }
        rows.push(vec![
            format!("Q{q}"),
            format!("{:.1}", t_base.as_millis_f64()),
            format!("{:.1}", t_plan.as_millis_f64()),
            format!("{:.1}", t_pq.as_millis_f64()),
            format!("{s_plan:.2}x"),
            format!("{s_pq:.2}x"),
        ]);
    }
    let g_pq = geomean(&pq_speedups);
    let g_vs_plan = geomean(
        &pq_speedups
            .iter()
            .zip(&plan_only_speedups)
            .map(|(a, b)| a / b)
            .collect::<Vec<_>>(),
    );
    rows.push(vec![
        "geomean".into(),
        "".into(),
        "".into(),
        "".into(),
        format!("{:.2}x", geomean(&plan_only_speedups)),
        format!("{g_pq:.2}x"),
    ]);
    print_table(
        "Fig 14: CH query elapsed (ms): baseline plan vs plan-change vs PQ+EBP",
        &[
            "query",
            "baseline",
            "plan-only",
            "PQ+EBP",
            "plan speedup",
            "PQ speedup",
        ],
        &rows,
    );
    paper_note(
        "Q1,6,11,13,15,20,22 gain 4-24x; geomean ~2.8x overall; ~2x of it beyond plan change",
    );

    let winners_ok = winners.iter().filter(|s| **s > 2.0).count();
    assert!(
        winners_ok >= 4,
        "most marquee queries must gain >2x from PQ+EBP (got {winners_ok} of {})",
        winners.len()
    );
    assert!(
        g_pq > 1.5,
        "geomean PQ speedup should be well above 1 (got {g_pq:.2}x)"
    );
    assert!(
        g_vs_plan > 1.2,
        "PQ must win beyond plan change alone (got {g_vs_plan:.2}x)"
    );
    println!("\nshape-check: OK (geomean {g_pq:.2}x; {g_vs_plan:.2}x beyond plan change)");
}
