//! **Group-commit consolidation** (ISSUE 8) — flushes-per-commit and
//! commit latency vs concurrency, `FlushPolicy::PerCommit` vs
//! `FlushPolicy::Group`, exported as `BENCH_group_commit.json`.
//!
//! The workload is deliberately commit-dominated: each client inserts one
//! row into a private key range and commits, so there is no lock
//! contention and the measured latency is the commit path (§V-B). The
//! cluster pins each AStore server to a **single-lane log DIMM**
//! (`pmem_lanes: 1`) — the classic group-commit regime where the log
//! device serializes flushes; both policies run on the same spec so the
//! comparison is apples-to-apples. Expected shape: under `PerCommit`,
//! `core.wal_flushes` ≈ `core.txn_commits` and every flush's two PMem
//! writes (frame + io-meta) queue behind all in-flight committers, so
//! p50 grows with concurrency; under `Group` the ratio falls well below
//! 1, the log device stays unsaturated, and carried committers pay only
//! the bounded dwell + one batched append.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use vedb_bench::{fmt_tps, print_table, write_bench_report, Deployment};
use vedb_core::catalog::ColumnType;
use vedb_core::db::{Db, DbConfig, LogBackendKind};
use vedb_core::{FlushPolicy, Value};
use vedb_sim::{ClusterSpec, SimCtx, VTime};
use vedb_workloads::driver::OpOutcome;

fn define_schema(cat: &mut vedb_core::Catalog) {
    cat.define("commits")
        .col("id", ColumnType::Int)
        .col("payload", ColumnType::Str)
        .pk(&["id"])
        .build();
}

/// One commit-sized transaction: insert a row in the client's private key
/// range, commit. No shared rows → no lock waits → latency is WAL flush.
fn commit_op(ctx: &mut SimCtx, db: &Arc<Db>, client: usize, seqs: &[AtomicU64]) -> OpOutcome {
    let seq = seqs[client].fetch_add(1, Ordering::Relaxed);
    let id = (client as i64) * 10_000_000 + seq as i64;
    let mut txn = db.begin();
    let r = db.insert(
        ctx,
        &mut txn,
        "commits",
        vec![Value::Int(id), Value::Str(format!("payload-{id}"))],
    );
    match r {
        Ok(()) => match db.commit(ctx, &mut txn) {
            Ok(()) => OpOutcome::Committed,
            Err(_) => OpOutcome::Aborted,
        },
        Err(_) => {
            let _ = db.abort(ctx, &mut txn);
            OpOutcome::Aborted
        }
    }
}

struct Cell {
    tput: f64,
    p50: VTime,
    p99: VTime,
    flushes_per_commit: f64,
}

/// Table I cluster, except each AStore server's PMem is one log DIMM
/// lane — flushes serialize at the device, as on a real WAL device.
fn log_bound_spec() -> ClusterSpec {
    let mut spec = ClusterSpec::paper_default();
    spec.model.pmem_lanes = 1;
    spec
}

fn sweep(policy: FlushPolicy, clients: &[usize]) -> (Deployment, Vec<Cell>) {
    let mut dep = Deployment::open_with(
        DbConfig::builder()
            .bp_pages(4096)
            .bp_shards(16)
            .log(LogBackendKind::AStore)
            .ring_segments(12)
            .flush_policy(policy)
            .build()
            .unwrap(),
        log_bound_spec(),
        192 << 20,
        1 << 20,
    );
    // A couple of commit-latencies of skew, so a client cannot bank a
    // scheduler-slice worth of cheap commits before paying for the log
    // device queue it built up (same bound for both policies).
    dep.sync_window = VTime::from_micros(250);
    dep.db.define_schema(define_schema);
    dep.db.create_tables(&mut dep.ctx).unwrap();

    let flushes = dep.metrics().counter("core", "wal_flushes");
    let commits = dep.metrics().counter("core", "txn_commits");
    let seqs: Vec<AtomicU64> = (0..clients.iter().max().copied().unwrap_or(1))
        .map(|_| AtomicU64::new(0))
        .collect();

    let mut cells = Vec::new();
    for &n in clients {
        let db = Arc::clone(&dep.db);
        let seqs = &seqs;
        let (f0, c0) = (flushes.get(), commits.get());
        let r = dep.trial(
            n,
            VTime::from_millis(5),
            VTime::from_millis(60),
            |ctx, client| commit_op(ctx, &db, client, seqs),
        );
        let (df, dc) = (flushes.get() - f0, (commits.get() - c0).max(1));
        cells.push(Cell {
            tput: r.throughput(),
            p50: r.latency.p50(),
            p99: r.latency.p99(),
            flushes_per_commit: df as f64 / dc as f64,
        });
    }
    (dep, cells)
}

fn main() {
    let clients = vec![1usize, 2, 4, 8, 16, 32, 64];
    let group_policy = FlushPolicy::Group {
        max_batch_bytes: 64 * 1024,
        max_wait: VTime::from_micros(100),
    };

    let (_pc_dep, pc) = sweep(FlushPolicy::PerCommit, &clients);
    let (gr_dep, gr) = sweep(group_policy, &clients);

    let rows: Vec<Vec<String>> = clients
        .iter()
        .enumerate()
        .map(|(i, n)| {
            vec![
                n.to_string(),
                fmt_tps(pc[i].tput),
                fmt_tps(gr[i].tput),
                format!("{:.2}", pc[i].flushes_per_commit),
                format!("{:.2}", gr[i].flushes_per_commit),
                format!("{:.0}us", pc[i].p50.as_micros_f64()),
                format!("{:.0}us", gr[i].p50.as_micros_f64()),
                format!("{:.0}us", pc[i].p99.as_micros_f64()),
                format!("{:.0}us", gr[i].p99.as_micros_f64()),
            ]
        })
        .collect();
    print_table(
        "Group commit: PerCommit vs Group{64KB,100us}",
        &[
            "clients", "tps(pc)", "tps(gr)", "f/c(pc)", "f/c(gr)", "p50(pc)", "p50(gr)", "p99(pc)",
            "p99(gr)",
        ],
        &rows,
    );

    // Publish the sweep into the Group deployment's registry so the
    // exported JSON carries the cross-policy comparison (gauges are the
    // report's vehicle for bench-computed series). Times in ns, ratios
    // scaled ×1000.
    let g = gr_dep.metrics();
    for (i, &n) in clients.iter().enumerate() {
        g.gauge("bench", format!("tps_percommit_{n}"))
            .set(pc[i].tput as i64);
        g.gauge("bench", format!("tps_group_{n}"))
            .set(gr[i].tput as i64);
        g.gauge("bench", format!("p50ns_percommit_{n}"))
            .set(pc[i].p50.as_nanos() as i64);
        g.gauge("bench", format!("p50ns_group_{n}"))
            .set(gr[i].p50.as_nanos() as i64);
        g.gauge("bench", format!("p99ns_percommit_{n}"))
            .set(pc[i].p99.as_nanos() as i64);
        g.gauge("bench", format!("p99ns_group_{n}"))
            .set(gr[i].p99.as_nanos() as i64);
        g.gauge("bench", format!("fpc1000_percommit_{n}"))
            .set((pc[i].flushes_per_commit * 1000.0) as i64);
        g.gauge("bench", format!("fpc1000_group_{n}"))
            .set((gr[i].flushes_per_commit * 1000.0) as i64);
    }

    // The acceptance assertions (also enforced on the exported JSON by
    // CI's report_diff gate).
    let flushes = gr_dep
        .report("group_commit", None)
        .counter("core.wal_flushes");
    let commits = gr_dep
        .report("group_commit", None)
        .counter("core.txn_commits");
    assert!(
        (flushes as f64) < commits as f64 * 0.5,
        "group sweep must consolidate: {flushes} flushes / {commits} commits"
    );
    let doorbells = gr_dep
        .report("group_commit", None)
        .counter("rdma.doorbells");
    let wrs = gr_dep.report("group_commit", None).counter("rdma.wrs");
    assert!(
        doorbells > 0 && doorbells < wrs,
        "doorbell batching must show: {doorbells} doorbells / {wrs} WRs"
    );
    for (i, &n) in clients.iter().enumerate() {
        if n >= 8 {
            assert!(
                gr[i].p50 < pc[i].p50,
                "group p50 must beat per-commit at {n} clients: {:?} vs {:?}",
                gr[i].p50,
                pc[i].p50
            );
            assert!(
                gr[i].flushes_per_commit < 0.5,
                "flushes-per-commit must fall below 0.5 at {n} clients, got {:.2}",
                gr[i].flushes_per_commit
            );
        }
    }
    println!(
        "\nshape-check: OK ({flushes} flushes / {commits} commits = {:.2} per commit; \
         {doorbells} doorbells / {wrs} WRs)",
        flushes as f64 / commits as f64
    );

    let report = gr_dep.report("group_commit", None);
    write_bench_report(&report).expect("write BENCH_group_commit.json");
    print!("{}", report.top_summary());
}
