//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. chained-WR persistent write (2×WRITE + READ-flush, one doorbell) vs
//!    separate work requests vs a two-sided RPC write;
//! 2. SegmentRing appends vs BlobGroup appends for the log;
//! 3. EBP priority vs flat policy under a scan-heavy eviction storm;
//! 4. log-segment replication factor 3 vs 1.
//!
//! Each ablation prints a small table of virtual-time costs.

use std::sync::Arc;

use vedb_astore::layout::SegmentClass;
use vedb_astore::{AppendOpts, SegmentOpts};
use vedb_bench::print_table;
use vedb_blobstore::{BlobGroup, BlobGroupConfig};
use vedb_core::db::StorageFabric;
use vedb_core::ebp::{Ebp, EbpConfig, EbpPolicy};
use vedb_pagestore::page::{Page, PageType};
use vedb_sim::{ClusterSpec, SimCtx, VTime};

fn fabric() -> StorageFabric {
    StorageFabric::build(ClusterSpec::paper_default(), 256 << 20, 4 << 20)
}

fn astore_client(f: &StorageFabric, ctx: &mut SimCtx, id: u64) -> Arc<vedb_astore::AStoreClient> {
    let ep = vedb_rdma::RdmaEndpoint::new(
        f.env.model.clone(),
        Arc::clone(&f.env.faults),
        Arc::clone(&f.env.engine_nic),
    );
    vedb_astore::AStoreClient::connect(
        ctx,
        Arc::clone(&f.cm),
        ep,
        Arc::clone(&f.env.engine_cpu),
        f.env.model.clone(),
        id,
        VTime::from_millis(50),
    )
}

/// Ablation 1: the write chain vs alternatives, 4KB persistent writes.
fn ablate_write_chain(f: &StorageFabric) {
    const N: usize = 500;
    let data = vec![7u8; 4096];
    let meta = [0u8; 8];

    let mut ctx = SimCtx::new(1, 3);
    let server = &f.astore_servers[0];
    let mr = server.mr();
    let ep = vedb_rdma::RdmaEndpoint::new(
        f.env.model.clone(),
        Arc::clone(&f.env.faults),
        Arc::clone(&f.env.engine_nic),
    );
    // Reserve scratch space straight on the device for the ablation.
    let mut alloc_ctx = SimCtx::new(9, 3);
    let off = server
        .handle_alloc(&mut alloc_ctx, 900_001, SegmentClass::Log)
        .unwrap();
    let meta_off = server.io_meta_offset(off);

    // (a) chained: one doorbell, 2 WRITEs + flush READ.
    let t0 = ctx.now();
    for _ in 0..N {
        ep.write_chain(&mut ctx, &mr, &[(off, &data), (meta_off, &meta)])
            .unwrap();
    }
    let chained = (ctx.now() - t0) / N as u64;

    // (b) separate one-sided WRs + explicit flush read.
    let t0 = ctx.now();
    for _ in 0..N {
        ep.write(&mut ctx, &mr, off, &data).unwrap();
        ep.write(&mut ctx, &mr, meta_off, &meta).unwrap();
        let _ = ep.read(&mut ctx, &mr, off, 64).unwrap();
    }
    let separate = (ctx.now() - t0) / N as u64;

    // (c) two-sided RPC write through the server CPU.
    let t0 = ctx.now();
    for _ in 0..N {
        f.rpc
            .call(&mut ctx, server.node(), server.res(), data.len(), 16, |c| {
                let done = server
                    .res()
                    .pmem
                    .as_ref()
                    .unwrap()
                    .acquire(c.now(), f.env.model.pmem_write_svc(data.len()));
                c.wait_until(done);
            })
            .unwrap();
    }
    let rpc = (ctx.now() - t0) / N as u64;

    print_table(
        "Ablation: 4KB persistent write to AStore",
        &["method", "avg latency (us)"],
        &[
            vec![
                "chained 2xWRITE + READ (one doorbell)".into(),
                format!("{:.1}", chained.as_micros_f64()),
            ],
            vec![
                "separate WRs + flush READ".into(),
                format!("{:.1}", separate.as_micros_f64()),
            ],
            vec![
                "two-sided RPC write".into(),
                format!("{:.1}", rpc.as_micros_f64()),
            ],
        ],
    );
    assert!(chained < separate && separate < rpc);
}

/// Ablation 2: SegmentRing vs BlobGroup appends (the §V-A comparison).
fn ablate_ring_vs_bloggroup(f: &StorageFabric) {
    const N: usize = 300;
    let mut ctx = SimCtx::new(2, 3);
    let client = astore_client(f, &mut ctx, 910);
    let ring = vedb_astore::SegmentRing::create(&mut ctx, client, 8, 0).unwrap();
    let payload = vec![5u8; 8 * 1024];

    let t0 = ctx.now();
    for _ in 0..N {
        ring.append(&mut ctx, &payload).unwrap();
    }
    let ring_avg = (ctx.now() - t0) / N as u64;

    let group = BlobGroup::create(
        &mut ctx,
        BlobGroupConfig::default(),
        &f.blob_servers,
        Arc::clone(&f.rpc),
    )
    .unwrap();
    let t0 = ctx.now();
    for _ in 0..N {
        group.append(&mut ctx, &payload).unwrap();
    }
    let blob_avg = (ctx.now() - t0) / N as u64;

    print_table(
        "Ablation: 8KB log append, SegmentRing vs BlobGroup",
        &["container", "avg latency (us)"],
        &[
            vec![
                "SegmentRing (PMem, one-sided)".into(),
                format!("{:.1}", ring_avg.as_micros_f64()),
            ],
            vec![
                "BlobGroup (SSD, RPC)".into(),
                format!("{:.1}", blob_avg.as_micros_f64()),
            ],
        ],
    );
    assert!(ring_avg.as_nanos() * 3 < blob_avg.as_nanos());
}

/// Ablation 3: EBP priority vs flat policy under an eviction storm.
fn ablate_ebp_policy(f: &StorageFabric) {
    let mut rows = Vec::new();
    let mut survival = Vec::new();
    for (name, policy) in [("flat", EbpPolicy::Flat), ("priority", EbpPolicy::Priority)] {
        let mut ctx = SimCtx::new(3, 3);
        let client = astore_client(f, &mut ctx, 920 + (policy == EbpPolicy::Priority) as u64);
        let mut cfg = EbpConfig {
            capacity_bytes: 64 * 16 * 1024, // 64 pages
            policy,
            shards: 1,
            ..Default::default()
        };
        cfg.space_priority.insert(7, 10); // space 7 = the push-down table
        let ebp = Ebp::new(client, cfg);
        let mut page = Page::new();
        page.format(PageType::BTreeLeaf, 0);
        // Cache 32 hot push-down pages, then storm 200 cold pages through.
        for i in 0..32 {
            ebp.write_page(&mut ctx, vedb_astore::PageId::new(7, i), &page, 10)
                .unwrap();
        }
        for i in 0..200 {
            ebp.write_page(&mut ctx, vedb_astore::PageId::new(1, i), &page, 10)
                .unwrap();
        }
        let survived = (0..32)
            .filter(|i| ebp.contains(vedb_astore::PageId::new(7, *i)))
            .count();
        survival.push(survived);
        rows.push(vec![name.to_string(), format!("{survived}/32")]);
    }
    print_table(
        "Ablation: hot push-down pages surviving an eviction storm",
        &["EBP policy", "hot pages retained"],
        &rows,
    );
    assert!(
        survival[1] > survival[0],
        "priority policy must protect hot pages"
    );
}

/// Ablation 4: log replication factor 3 vs 1 (latency cost of safety).
fn ablate_replication(f: &StorageFabric) {
    const N: usize = 300;
    let mut ctx = SimCtx::new(4, 3);
    let client = astore_client(f, &mut ctx, 930);
    let payload = vec![9u8; 4096];
    let mut rows = Vec::new();
    let mut lat = Vec::new();
    for replication in [1usize, 3] {
        let seg = client
            .create_segment_with(
                &mut ctx,
                SegmentOpts::new(SegmentClass::Log).with_replication(replication),
            )
            .unwrap();
        let t0 = ctx.now();
        for _ in 0..N {
            if client.segment_len(seg) + payload.len() as u64 > client.segment_capacity(seg) {
                break;
            }
            client
                .append_with(&mut ctx, seg, &payload, AppendOpts::new())
                .unwrap();
        }
        let avg = (ctx.now() - t0) / N as u64;
        lat.push(avg);
        rows.push(vec![
            format!("{replication} replica(s)"),
            format!("{:.1}", avg.as_micros_f64()),
        ]);
    }
    print_table(
        "Ablation: 4KB AStore append latency vs replication factor",
        &["replication", "avg latency (us)"],
        &rows,
    );
    assert!(lat[1] >= lat[0], "triplicated writes cannot be cheaper");
}

fn main() {
    let f = fabric();
    ablate_write_chain(&f);
    ablate_ring_vs_bloggroup(&f);
    ablate_ebp_policy(&f);
    ablate_replication(&f);
    println!("\nablations: OK");
}
