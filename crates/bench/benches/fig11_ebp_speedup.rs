//! **Figure 11** — EBP speedup on CH-benCHmark analytical queries, for two
//! buffer-pool sizes.
//!
//! Paper shapes: queries whose working set exceeds the buffer pool (Q7 et
//! al.) gain up to ~3.5× from the EBP; queries with a tiny working set
//! (Q16) barely change. The gain shrinks when the buffer pool doubles.
//! Protocol follows §VII-B: one warm-up run, then the average of three
//! timed runs, EBP off vs on.

use std::sync::Arc;

use vedb_bench::{paper_note, print_table, Deployment};
use vedb_core::db::{Db, DbConfig, LogBackendKind};
use vedb_core::ebp::EbpConfig;
use vedb_core::query::{execute, QuerySession};
use vedb_sim::{SimCtx, VTime};
use vedb_workloads::{chbench, tpcc};

/// The queries Fig. 11 plots (its x-axis is a query subset with runtime
/// below the paper's cut-off).
const QUERIES: [usize; 8] = [1, 4, 6, 7, 12, 16, 17, 22];

fn timed_runs(ctx: &mut SimCtx, db: &Arc<Db>, q: usize) -> VTime {
    let session = QuerySession::default();
    let plan = chbench::query(q);
    execute(ctx, db, &session, &plan).unwrap(); // warm-up
    let t0 = ctx.now();
    for _ in 0..3 {
        execute(ctx, db, &session, &plan).unwrap();
    }
    (ctx.now() - t0) / 3
}

fn run_config(bp_pages: usize, ebp: bool, scale: &tpcc::TpccScale) -> Vec<(usize, VTime)> {
    let mut dep = Deployment::open(
        DbConfig::builder()
            .bp_pages(bp_pages)
            .bp_shards(8)
            .log(LogBackendKind::AStore)
            .ring_segments(12)
            .ebp(ebp.then(|| EbpConfig {
                capacity_bytes: 512 << 20,
                ..Default::default()
            }))
            .build()
            .unwrap(),
    );
    dep.db.define_schema(|cat| {
        tpcc::define_schema(cat);
        chbench::extend_schema(cat);
    });
    dep.db.create_tables(&mut dep.ctx).unwrap();
    tpcc::load(&mut dep.ctx, &dep.db, scale).unwrap();
    chbench::load_extra(&mut dep.ctx, &dep.db).unwrap();
    // Prime the EBP: one pass over the big tables pushes evictions into it.
    if ebp {
        for q in [1usize, 12] {
            let _ = execute(
                &mut dep.ctx,
                &dep.db,
                &QuerySession::default(),
                &chbench::query(q),
            );
        }
    }
    QUERIES
        .iter()
        .map(|&q| (q, timed_runs(&mut dep.ctx, &dep.db, q)))
        .collect()
}

fn main() {
    // Working set of the order_line-heavy queries ≫ 64-page pool, smaller
    // than the 128-page pool for some tables (mirroring 16GB vs 32GB).
    let scale = tpcc::TpccScale {
        warehouses: 8,
        districts: 4,
        customers: 60,
        items: 300,
        initial_orders: 40,
    };
    let mut rows = Vec::new();
    let mut speedups_small = Vec::new();
    for (label, bp) in [("16GB(=64p)", 64usize), ("32GB(=128p)", 128)] {
        let off = run_config(bp, false, &scale);
        let on = run_config(bp, true, &scale);
        for (i, &q) in QUERIES.iter().enumerate() {
            let s = off[i].1.as_nanos() as f64 / on[i].1.as_nanos().max(1) as f64;
            if bp == 64 {
                speedups_small.push((q, s));
            }
            rows.push(vec![
                format!("Q{q}"),
                label.to_string(),
                format!("{:.1}", off[i].1.as_millis_f64()),
                format!("{:.1}", on[i].1.as_millis_f64()),
                format!("{s:.2}x"),
            ]);
        }
    }
    print_table(
        "Fig 11: EBP speedup per CH query (elapsed ms, avg of 3 runs)",
        &["query", "buffer pool", "EBP off", "EBP on", "speedup"],
        &rows,
    );
    paper_note("Q7 >3x in both BP settings; Q16 ~1x (working set fits in BP); others up to 3.5x");

    let q7 = speedups_small.iter().find(|(q, _)| *q == 7).unwrap().1;
    let q16 = speedups_small.iter().find(|(q, _)| *q == 16).unwrap().1;
    assert!(
        q7 > 1.5,
        "Q7 (working set > BP) must gain substantially, got {q7:.2}x"
    );
    assert!(
        q16 < q7,
        "Q16 (tiny working set) must gain less than Q7 ({q16:.2}x vs {q7:.2}x)"
    );
    println!("\nshape-check: OK (Q7 {q7:.2}x, Q16 {q16:.2}x)");
}
