//! **Recovery figure** (ISSUE 10) — parallel redo apply + background
//! checkpointing vs serial replay, exported as `BENCH_recovery.json`.
//!
//! Two phases:
//!
//! * **Phase A — crash-restart sweep.** A raw PageStore cluster is shipped
//!   a multi-page redo stream of increasing length, one replica is
//!   crash-restarted, and the virtual time `restart` takes to rebuild the
//!   volatile half (page images, apply watermark) is measured. The serial
//!   configuration (1 apply worker, checkpointing off) replays the whole
//!   retained log on one lane; the parallel configuration (8 workers,
//!   checkpoint every 512 records) restores from the last completed
//!   checkpoint and replays only the tail, fanning independent pages
//!   across the worker pool. Expected shape: serial recovery grows
//!   linearly with log length, parallel recovery stays near-flat because
//!   checkpoints bound the replayed tail and the pool divides it.
//!
//! * **Phase B — steady-state apply lag.** Two engine deployments run the
//!   same write-heavy TPC-C trial (8 clients); the only difference is the
//!   apply pipeline. With a warm buffer pool the engine rarely reads
//!   through to the PageStore, so a serial, never-checkpointing store
//!   accumulates unapplied redo without bound, while the background
//!   checkpointer keeps the parallel store's `apply_lag_records` bounded
//!   by the checkpoint cadence.
//!
//! The cross-configuration numbers are published as counters under the
//! `recovery` component of the parallel deployment's registry, so CI can
//! gate the exported JSON with `report_diff --assert-counter-lt
//! recovery.parallel_us_24000 recovery.serial_us_24000` and
//! `--assert-counter-lt recovery.lag_parallel recovery.lag_serial`.

use std::sync::Arc;

use vedb_astore::PageId;
use vedb_bench::{fmt_tps, print_table, write_bench_report, Deployment};
use vedb_core::db::{DbConfig, LogBackendKind};
use vedb_pagestore::page::PageType;
use vedb_pagestore::redo::{PageOp, RedoRecord};
use vedb_pagestore::{ApplyConfig, PageStore, PageStoreConfig, PageStoreServer};
use vedb_rdma::RpcFabric;
use vedb_sim::{ClusterSpec, SimCtx, VTime};
use vedb_workloads::tpcc::{self, TpccScale};

/// Serial baseline: one apply worker, no background checkpoints — crash
/// recovery is a full single-lane log replay.
fn serial_cfg() -> ApplyConfig {
    ApplyConfig {
        workers: 1,
        checkpoint_every_records: 0,
    }
}

/// The tentpole configuration: 8-way partitioned apply plus a background
/// checkpoint every 512 accepted records per segment.
fn parallel_cfg() -> ApplyConfig {
    ApplyConfig {
        workers: 8,
        checkpoint_every_records: 512,
    }
}

/// A raw PageStore cluster (no engine) with an explicit apply config.
fn store_with(apply: ApplyConfig) -> Arc<PageStore> {
    let env = ClusterSpec::paper_default().build();
    let servers: Vec<Arc<PageStoreServer>> = env
        .storage_nodes
        .iter()
        .enumerate()
        .map(|(i, n)| {
            PageStoreServer::with_apply(
                200 + i as u32,
                Arc::clone(n),
                env.model.clone(),
                apply.clone(),
            )
        })
        .collect();
    let rpc = Arc::new(RpcFabric::new(env.model.clone(), Arc::clone(&env.faults)));
    PageStore::new(PageStoreConfig::default(), rpc, servers)
}

/// Pages the synthetic log touches: 32 pages of one segment, so the
/// partitioner has independent work for every worker.
const LOG_PAGES: u32 = 32;

/// Build an `n`-record redo stream interleaved round-robin across
/// [`LOG_PAGES`] pages: each page is formatted, seeded with one cell, then
/// updated in place (updates never grow, so the stream is valid at any
/// length).
fn make_log(n: usize) -> Vec<RedoRecord> {
    let mut records = Vec::with_capacity(n);
    let mut seeded = [false; LOG_PAGES as usize];
    let mut lsn = 0u64;
    let rec = |lsn: u64, page_no: u32, op: PageOp| RedoRecord {
        lsn,
        prev_same_segment: 0,
        txn_id: 1,
        page: PageId {
            space_no: 1,
            page_no,
        },
        op,
    };
    let mut i = 0usize;
    while records.len() < n {
        let p = (i % LOG_PAGES as usize) as u32;
        i += 1;
        if !seeded[p as usize] {
            seeded[p as usize] = true;
            lsn += 1;
            records.push(rec(
                lsn,
                p,
                PageOp::Format {
                    ty: PageType::BTreeLeaf,
                    level: 0,
                },
            ));
            lsn += 1;
            records.push(rec(
                lsn,
                p,
                PageOp::InsertAt {
                    slot: 0,
                    cell: vec![0xA5; 64],
                },
            ));
            continue;
        }
        lsn += 1;
        records.push(rec(
            lsn,
            p,
            PageOp::Update {
                slot: 0,
                cell: vec![(lsn & 0xFF) as u8; 64],
            },
        ));
    }
    records.truncate(n);
    records
}

struct RestartCell {
    /// Virtual restart latency of one replica.
    time: VTime,
    /// Records replayed by that restart (checkpoints shrink this).
    replayed: usize,
}

/// Ship an `n`-record log in commit-sized batches (so the background
/// checkpointer sees its trigger repeatedly), then crash-restart one
/// replica and measure the rebuild.
fn restart_after(apply: ApplyConfig, n: usize) -> RestartCell {
    let ps = store_with(apply);
    let mut ctx = SimCtx::new(1, 2024);
    let log = make_log(n);
    for chunk in log.chunks(128) {
        ps.ship(&mut ctx, chunk).expect("ship");
    }
    // Let any in-flight background checkpoint settle before the crash.
    ctx.advance(VTime::from_millis(5));

    let victim = Arc::clone(&ps.servers()[0]);
    let t0 = ctx.now();
    let replayed = victim.restart(&mut ctx).expect("restart");
    RestartCell {
        time: ctx.now().saturating_sub(t0),
        replayed,
    }
}

/// Phase B: run the write-heavy TPC-C trial on a deployment with `apply`
/// and return (throughput, apply_lag_records at end of trial).
fn tpcc_lag(apply: ApplyConfig) -> (Deployment, f64, i64) {
    let scale = TpccScale::bench();
    let mut dep = Deployment::open_with_apply(
        DbConfig::builder()
            .bp_pages(4096)
            .bp_shards(16)
            .log(LogBackendKind::AStore)
            .ring_segments(12)
            .build()
            .unwrap(),
        ClusterSpec::paper_default(),
        192 << 20,
        1 << 20,
        apply,
    );
    dep.db.define_schema(tpcc::define_schema);
    dep.db.create_tables(&mut dep.ctx).unwrap();
    tpcc::load(&mut dep.ctx, &dep.db, &scale).unwrap();

    let db = Arc::clone(&dep.db);
    let r = dep.trial(
        8,
        VTime::from_millis(5),
        VTime::from_millis(60),
        |ctx, _| tpcc::run_transaction(ctx, &db, &scale),
    );
    let lag = dep.metrics().gauge("pagestore", "apply_lag_records").get();
    (dep, r.throughput(), lag)
}

fn main() {
    // ---- Phase A: crash-restart sweep ------------------------------------
    let sweep = [2_000usize, 8_000, 24_000];
    let mut serial_cells = Vec::new();
    let mut parallel_cells = Vec::new();
    for &n in &sweep {
        serial_cells.push(restart_after(serial_cfg(), n));
        parallel_cells.push(restart_after(parallel_cfg(), n));
    }

    let rows: Vec<Vec<String>> = sweep
        .iter()
        .enumerate()
        .map(|(i, n)| {
            vec![
                n.to_string(),
                format!("{:.0}us", serial_cells[i].time.as_micros_f64()),
                format!("{:.0}us", parallel_cells[i].time.as_micros_f64()),
                serial_cells[i].replayed.to_string(),
                parallel_cells[i].replayed.to_string(),
                format!(
                    "{:.1}x",
                    serial_cells[i].time.as_nanos() as f64
                        / parallel_cells[i].time.as_nanos().max(1) as f64
                ),
            ]
        })
        .collect();
    print_table(
        "Crash restart: serial full replay vs parallel apply + checkpoints",
        &[
            "log(records)",
            "serial",
            "parallel",
            "replayed(s)",
            "replayed(p)",
            "speedup",
        ],
        &rows,
    );

    // ---- Phase B: steady-state apply lag under write-heavy TPC-C ---------
    let (_sdep, stps, slag) = tpcc_lag(serial_cfg());
    let (pdep, ptps, plag) = tpcc_lag(parallel_cfg());
    print_table(
        "TPC-C (8 clients): steady-state apply lag",
        &["config", "tps", "apply_lag_records"],
        &[
            vec!["serial/no-ckpt".into(), fmt_tps(stps), slag.to_string()],
            vec!["parallel+ckpt".into(), fmt_tps(ptps), plag.to_string()],
        ],
    );

    // ---- Publish the cross-config numbers on the exported registry -------
    let reg = pdep.metrics();
    for (i, &n) in sweep.iter().enumerate() {
        reg.counter("recovery", format!("serial_us_{n}"))
            .add(serial_cells[i].time.as_nanos() / 1_000);
        reg.counter("recovery", format!("parallel_us_{n}"))
            .add(parallel_cells[i].time.as_nanos() / 1_000);
        reg.counter("recovery", format!("serial_replayed_{n}"))
            .add(serial_cells[i].replayed as u64);
        reg.counter("recovery", format!("parallel_replayed_{n}"))
            .add(parallel_cells[i].replayed as u64);
    }
    reg.counter("recovery", "lag_serial")
        .add(slag.max(0) as u64);
    reg.counter("recovery", "lag_parallel")
        .add(plag.max(0) as u64);

    // ---- The acceptance assertions (also enforced by CI's report_diff) ---
    for (i, &n) in sweep.iter().enumerate() {
        assert!(
            parallel_cells[i].time < serial_cells[i].time,
            "parallel recovery must beat serial at {n} records: {:?} vs {:?}",
            parallel_cells[i].time,
            serial_cells[i].time
        );
        assert!(
            parallel_cells[i].replayed < serial_cells[i].replayed,
            "checkpoints must shrink the replayed tail at {n} records"
        );
    }
    assert!(
        plag < slag,
        "background checkpointer must bound steady-state lag: parallel {plag} vs serial {slag}"
    );
    println!(
        "\nshape-check: OK (24k-record restart {:.0}us -> {:.0}us; lag {slag} -> {plag})",
        serial_cells[2].time.as_micros_f64(),
        parallel_cells[2].time.as_micros_f64()
    );

    let report = pdep.report("recovery", None);
    write_bench_report(&report).expect("write BENCH_recovery.json");
    print!("{}", report.top_summary());
}
