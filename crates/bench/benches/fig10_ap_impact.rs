//! **Figure 10** — TPC-CH: impact of analytical streams on TP throughput,
//! with and without the Extended Buffer Pool.
//!
//! Paper shapes: with 32 TP clients, adding 1 AP stream costs ~5% TP
//! throughput and 8 AP streams cost ~30% (buffer-pool contention); with
//! the EBP enabled, TP throughput improves consistently at every AP level.

use std::sync::atomic::AtomicBool;
use std::sync::Arc;

use vedb_bench::{fmt_tps, paper_note, print_table, Deployment};
use vedb_core::db::{DbConfig, LogBackendKind};
use vedb_core::ebp::EbpConfig;
use vedb_core::query::{execute, QuerySession};
use vedb_sim::VTime;
use vedb_workloads::driver::OpOutcome;
use vedb_workloads::{chbench, tpcc};

const TP_CLIENTS: usize = 32;
/// AP queries cheap enough to loop as a stream.
const AP_SET: [usize; 5] = [1, 4, 6, 12, 22];

fn run_config(ebp: bool, ap_streams: usize, scale: &tpcc::TpccScale) -> f64 {
    // bp_pages small on purpose: AP scans thrash it (the Fig 10 story).
    let mut dep = Deployment::open(
        DbConfig::builder()
            .bp_pages(96)
            .bp_shards(8)
            .log(LogBackendKind::AStore)
            .ring_segments(12)
            .ebp(ebp.then(|| EbpConfig {
                capacity_bytes: 256 << 20,
                ..Default::default()
            }))
            .build()
            .unwrap(),
    );
    dep.db.define_schema(|cat| {
        tpcc::define_schema(cat);
        chbench::extend_schema(cat);
    });
    dep.db.create_tables(&mut dep.ctx).unwrap();
    tpcc::load(&mut dep.ctx, &dep.db, scale).unwrap();
    chbench::load_extra(&mut dep.ctx, &dep.db).unwrap();

    let db = Arc::clone(&dep.db);
    let session = QuerySession::default();
    let is_ap = AtomicBool::new(false);
    let _ = &is_ap;
    let scale2 = scale.clone();
    // Clients 0..TP_CLIENTS run TPC-C; the rest run AP query streams.
    let r = dep.trial(
        TP_CLIENTS + ap_streams,
        VTime::from_millis(30),
        VTime::from_millis(200),
        |ctx, client| {
            if client < TP_CLIENTS {
                tpcc::run_transaction(ctx, &db, &scale2)
            } else {
                let q = AP_SET[ctx.rng().gen_range(0..AP_SET.len())];
                match execute(ctx, &db, &session, &chbench::query(q)) {
                    Ok(_) => OpOutcome::Skip, // AP completions are not TP throughput
                    Err(_) => OpOutcome::Skip,
                }
            }
        },
    );
    r.throughput()
}

fn main() {
    let scale = tpcc::TpccScale::bench();
    let ap_levels = [0usize, 1, 8];
    let mut rows = Vec::new();
    let mut measured = Vec::new();
    for &ap in &ap_levels {
        let without = run_config(false, ap, &scale);
        let with = run_config(true, ap, &scale);
        measured.push((without, with));
        rows.push(vec![
            ap.to_string(),
            fmt_tps(without),
            fmt_tps(with),
            format!("{:+.0}%", (with / without.max(1.0) - 1.0) * 100.0),
        ]);
    }
    print_table(
        "Fig 10: TP throughput (TPS) under AP streams, 32 TP clients",
        &["AP streams", "no EBP", "with EBP", "EBP gain"],
        &rows,
    );
    paper_note(
        "1 AP stream costs ~5%, 8 streams ~30% of TP throughput; EBP improves TP consistently",
    );

    let (base0, _) = measured[0];
    let (base8, with8) = measured[2];
    assert!(
        base8 < base0 * 0.95,
        "8 AP streams must visibly depress TP throughput ({base8:.0} vs {base0:.0})"
    );
    assert!(
        with8 > base8,
        "EBP must improve TP throughput under 8 AP streams ({with8:.0} vs {base8:.0})"
    );
    println!("\nshape-check: OK");
}
