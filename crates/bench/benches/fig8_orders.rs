//! **Figure 8** — the internal batched order-processing workload, with and
//! without AStore.
//!
//! Paper shapes: for the single 2 KB insert, veDB+AStore exceeds 10k TPS
//! with only 8 clients while stock veDB reaches 3,339 TPS at 8 clients
//! (>3×); for the full batched order transaction, AStore reaches the
//! 10k-TPS target at 64 clients while stock veDB needs more than 512.

use std::sync::Arc;

use vedb_bench::{fmt_tps, paper_note, print_table, Deployment};
use vedb_core::db::{Db, DbConfig, LogBackendKind};
use vedb_sim::{SimCtx, VTime};
use vedb_workloads::driver::OpOutcome;
use vedb_workloads::orders;

fn run_series(
    clients: &[usize],
    op: impl Fn(&mut SimCtx, &Arc<Db>) -> OpOutcome + Sync,
) -> Vec<Vec<f64>> {
    let mut out = Vec::new();
    for log in [LogBackendKind::BlobStore, LogBackendKind::AStore] {
        let mut dep = Deployment::open(
            DbConfig::builder()
                .bp_pages(4096)
                .bp_shards(16)
                .log(log)
                .ring_segments(12)
                .build()
                .unwrap(),
        );
        dep.db.define_schema(orders::define_schema);
        dep.db.create_tables(&mut dep.ctx).unwrap();
        orders::load(&mut dep.ctx, &dep.db).unwrap();
        let mut series = Vec::new();
        for &n in clients {
            let db = Arc::clone(&dep.db);
            let r = dep.trial(
                n,
                VTime::from_millis(20),
                VTime::from_millis(120),
                |ctx, _| op(ctx, &db),
            );
            series.push(r.throughput());
        }
        out.push(series);
    }
    out
}

fn table(title: &str, clients: &[usize], series: &[Vec<f64>]) {
    let rows: Vec<Vec<String>> = clients
        .iter()
        .enumerate()
        .map(|(i, n)| {
            vec![
                n.to_string(),
                fmt_tps(series[0][i]),
                fmt_tps(series[1][i]),
                format!("{:.1}x", series[1][i] / series[0][i].max(1.0)),
            ]
        })
        .collect();
    print_table(title, &["clients", "veDB", "veDB+AStore", "speedup"], &rows);
}

fn main() {
    let clients = vec![1usize, 8, 16, 64, 128, 256];

    let single = run_series(&clients, orders::single_insert);
    table(
        "Fig 8a: single 2KB insert (TPS) vs clients",
        &clients,
        &single,
    );
    paper_note("at 8 clients: veDB 3,339 TPS vs AStore 10,000+ TPS (>3x)");

    let batch = run_series(&clients, orders::order_batch);
    table(
        "Fig 8b: full order-processing transaction (TPS) vs clients",
        &clients,
        &batch,
    );
    paper_note("AStore hits the 10k-TPS target at 64 clients; stock veDB needs >512");

    let idx8 = clients.iter().position(|&c| c == 8).unwrap();
    assert!(
        single[1][idx8] > single[0][idx8] * 2.0,
        "AStore single-insert at 8 clients should be >2x baseline ({} vs {})",
        single[1][idx8],
        single[0][idx8]
    );
    let idx64 = clients.iter().position(|&c| c == 64).unwrap();
    let astore_at_64 = batch[1][idx64];
    let base_best = batch[0].iter().cloned().fold(0.0f64, f64::max);
    assert!(
        astore_at_64 > base_best * 0.9,
        "AStore at 64 clients ({astore_at_64:.0}) should rival the baseline's best at any concurrency ({base_best:.0})"
    );
    println!("\nshape-check: OK");
}
