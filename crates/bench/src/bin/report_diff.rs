//! Perf-regression gate: compare two `BENCH_<figure>.json` reports.
//!
//! ```text
//! report_diff <baseline.json> <new.json> [options]
//!
//!   --max-tput-drop <frac>      throughput drop budget   (default 0.10)
//!   --max-p50-rise <frac>       p50 latency rise budget  (default 0.20)
//!   --max-p99-rise <frac>       p99 latency rise budget  (default 0.20)
//!   --max-phase-shift-pp <pp>   gate commit-phase share drift (default: report only)
//!   --max-util-drift <pp>       gate steady-state resource-utilization drift,
//!                               percentage points either direction
//!                               (default: report only)
//!   --assert-counter-ratio-lt <num/den> <x>
//!                               gate the NEW report on counters[num]/counters[den] < x
//!                               (repeatable; missing/zero denominator fails)
//!   --assert-counter-lt <a> <b> gate the NEW report on counters[a] < counters[b]
//!                               (repeatable)
//! ```
//!
//! Exit codes: 0 clean, 1 a gated metric regressed, 2 usage/parse error.

use std::process::ExitCode;

use vedb_bench::diff::{diff, parse_json, ReportSummary, Thresholds};

fn usage() -> ExitCode {
    eprintln!(
        "usage: report_diff <baseline.json> <new.json> \
         [--max-tput-drop F] [--max-p50-rise F] [--max-p99-rise F] \
         [--max-phase-shift-pp PP] [--max-util-drift PP] \
         [--assert-counter-ratio-lt NUM/DEN X]... [--assert-counter-lt A B]..."
    );
    ExitCode::from(2)
}

fn load(path: &str) -> Result<ReportSummary, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc = parse_json(&text).map_err(|e| format!("{path}: {e}"))?;
    ReportSummary::from_json(&doc).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut th = Thresholds::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut frac = |dst: &mut f64| -> bool {
            match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v >= 0.0 => {
                    *dst = v;
                    true
                }
                _ => false,
            }
        };
        match arg.as_str() {
            "--max-tput-drop" => {
                if !frac(&mut th.max_tput_drop) {
                    return usage();
                }
            }
            "--max-p50-rise" => {
                if !frac(&mut th.max_p50_rise) {
                    return usage();
                }
            }
            "--max-p99-rise" => {
                if !frac(&mut th.max_p99_rise) {
                    return usage();
                }
            }
            "--max-phase-shift-pp" => {
                let mut pp = 0.0;
                if !frac(&mut pp) {
                    return usage();
                }
                th.max_phase_shift_pp = Some(pp);
            }
            "--max-util-drift" => {
                let mut pp = 0.0;
                if !frac(&mut pp) {
                    return usage();
                }
                th.max_util_drift_pp = Some(pp);
            }
            "--assert-counter-ratio-lt" => {
                let pair = it.next();
                let limit = it.next().and_then(|v| v.parse::<f64>().ok());
                match (pair.and_then(|p| p.split_once('/')), limit) {
                    (Some((num, den)), Some(x))
                        if !num.is_empty() && !den.is_empty() && x > 0.0 =>
                    {
                        th.counter_ratio_lt.push((num.into(), den.into(), x));
                    }
                    _ => return usage(),
                }
            }
            "--assert-counter-lt" => match (it.next(), it.next()) {
                (Some(a), Some(b)) if !a.starts_with('-') && !b.starts_with('-') => {
                    th.counter_lt.push((a.clone(), b.clone()));
                }
                _ => return usage(),
            },
            "--help" | "-h" => return usage(),
            p if !p.starts_with('-') => paths.push(p.to_string()),
            _ => return usage(),
        }
    }
    if paths.len() != 2 {
        return usage();
    }
    let (base, new) = match (load(&paths[0]), load(&paths[1])) {
        (Ok(b), Ok(n)) => (b, n),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("report_diff: {e}");
            return ExitCode::from(2);
        }
    };
    let out = diff(&base, &new, &th);
    print!("{}", out.table);
    if out.regressed() {
        eprintln!("\nperf regression gate FAILED:");
        for r in &out.regressions {
            eprintln!("  - {r}");
        }
        ExitCode::from(1)
    } else {
        println!("\nperf regression gate passed.");
        ExitCode::SUCCESS
    }
}
