//! Flamegraph export: turn a `BENCH_<figure>.json` report into
//! inferno-compatible folded stacks, or a `vedb-top` one-screen summary.
//!
//! ```text
//! report_flame <report.json> [-o <out.folded>]   folded stacks (stdout or file)
//! report_flame --top <report.json>               one-screen saturation summary
//! ```
//!
//! The folded lines feed any flamegraph renderer that understands the
//! `stack weight` format (`inferno-flamegraph`, `flamegraph.pl`); weights
//! are span self-times in virtual nanoseconds. Exit codes: 0 clean, 2
//! usage/parse error (including a pre-v3 report with no folded section).

use std::process::ExitCode;

use vedb_bench::diff::parse_json;
use vedb_bench::flame::{folded_lines, top_summary};

fn usage() -> ExitCode {
    eprintln!(
        "usage: report_flame <report.json> [-o <out.folded>] | report_flame --top <report.json>"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path = None;
    let mut out_path = None;
    let mut top = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--top" => top = true,
            "-o" | "--output" => match it.next() {
                Some(p) => out_path = Some(p.clone()),
                None => return usage(),
            },
            "--help" | "-h" => return usage(),
            p if !p.starts_with('-') && path.is_none() => path = Some(p.to_string()),
            _ => return usage(),
        }
    }
    let Some(path) = path else { return usage() };
    let doc = match std::fs::read_to_string(&path)
        .map_err(|e| format!("{path}: {e}"))
        .and_then(|text| parse_json(&text).map_err(|e| format!("{path}: {e}")))
    {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("report_flame: {e}");
            return ExitCode::from(2);
        }
    };
    let rendered = if top {
        top_summary(&doc)
    } else {
        folded_lines(&doc)
    };
    match rendered {
        Ok(text) => match out_path {
            Some(out) => {
                if let Err(e) = std::fs::write(&out, &text) {
                    eprintln!("report_flame: {out}: {e}");
                    return ExitCode::from(2);
                }
                eprintln!(
                    "report_flame: wrote {} lines to {out}",
                    text.lines().count()
                );
                ExitCode::SUCCESS
            }
            None => {
                print!("{text}");
                ExitCode::SUCCESS
            }
        },
        Err(e) => {
            eprintln!("report_flame: {e}");
            ExitCode::from(2)
        }
    }
}
