//! Flamegraph export and `vedb-top` rendering from a **committed** bench
//! report.
//!
//! A live run renders these straight off the in-memory
//! [`vedb_sim::RunReport`] (`folded_stacks()` / `top_summary()`); this
//! module re-derives both from the serialized `BENCH_<figure>.json` so the
//! `report_flame` binary can inspect artifacts long after the run — the
//! committed baseline, a CI download — without re-running anything.
//!
//! The folded output is the classic `stack weight` line format consumed by
//! inferno / flamegraph.pl: frames are `component/op` joined by `;`,
//! weights are span self-times in virtual nanoseconds.

use std::fmt::Write as _;

use crate::diff::Json;

/// Render the report's `profile.folded` section as inferno-style folded
/// lines (`stack weight\n`, stacks sorted). Errors when the document has
/// no folded section (a pre-v3 report).
pub fn folded_lines(doc: &Json) -> Result<String, String> {
    let folded = doc
        .get("profile")
        .and_then(|p| p.get("folded"))
        .and_then(Json::as_obj)
        .ok_or("report has no `profile.folded` section (schema < v3?)")?;
    let mut out = String::new();
    for (stack, w) in folded {
        if let Some(w) = w.as_f64() {
            let _ = writeln!(out, "{stack} {}", w as u64);
        }
    }
    Ok(out)
}

fn ns(v: f64) -> String {
    // Mirror VTime's Display: scale to the largest unit that keeps the
    // number readable. Values are integer nanoseconds stored in f64.
    let n = v as u64;
    if n >= 1_000_000_000 {
        format!("{:.2}s", n as f64 / 1e9)
    } else if n >= 1_000_000 {
        format!("{:.2}ms", n as f64 / 1e6)
    } else if n >= 1_000 {
        format!("{:.2}us", n as f64 / 1e3)
    } else {
        format!("{n}ns")
    }
}

/// Re-render a `vedb-top`-style one-screen summary from a parsed report:
/// resources by steady-state utilization, hottest spans by self-time, most
/// contended locks, and any fault injections.
pub fn top_summary(doc: &Json) -> Result<String, String> {
    let name = doc.get("name").and_then(Json::as_str).unwrap_or("?");
    let tput = doc
        .get("throughput_per_s")
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    let window = doc.get("window_ns").and_then(Json::as_f64).unwrap_or(0.0);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== vedb-top: {name} ({tput:.0} op/s over {}) ==",
        ns(window)
    );

    if let Some(resources) = doc.get("resources").and_then(Json::as_obj) {
        let mut rows: Vec<(&String, &Json)> = resources.iter().collect();
        rows.sort_by(|(an, a), (bn, b)| {
            let util = |r: &Json| {
                r.get("steady_util_pct")
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0)
            };
            util(b).partial_cmp(&util(a)).unwrap().then(an.cmp(bn))
        });
        let _ = writeln!(
            out,
            "  {:<16} {:>5} {:>10} {:>7} {:>10} {:>10}",
            "resource", "lanes", "ops", "util%", "wait-p99", "svc-p99"
        );
        for (rname, r) in rows {
            let f = |k: &str| r.get(k).and_then(Json::as_f64).unwrap_or(0.0);
            let p99 = |k: &str| {
                r.get(k)
                    .and_then(|l| l.get("p99_ns"))
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0)
            };
            let _ = writeln!(
                out,
                "  {:<16} {:>5} {:>10} {:>6.2}% {:>10} {:>10}",
                rname,
                f("lanes") as u64,
                f("ops") as u64,
                f("steady_util_pct"),
                ns(p99("wait")),
                ns(p99("service")),
            );
        }
    }

    if let Some(ops) = doc
        .get("profile")
        .and_then(|p| p.get("ops"))
        .and_then(Json::as_obj)
    {
        let mut spans: Vec<(&String, u64)> = ops
            .iter()
            .filter_map(|(k, v)| {
                v.get("self_ns")
                    .and_then(Json::as_f64)
                    .map(|s| (k, s as u64))
            })
            .collect();
        spans.sort_by(|(an, a), (bn, b)| b.cmp(a).then(an.cmp(bn)));
        if !spans.is_empty() {
            let _ = writeln!(out, "  top spans by self time:");
            for (op, self_ns) in spans.into_iter().take(8) {
                let _ = writeln!(out, "    {op:<28} {}", ns(self_ns as f64));
            }
        }
    }

    if let Some(Json::Arr(top)) = doc
        .get("profile")
        .and_then(|p| p.get("locks"))
        .and_then(|l| l.get("top"))
    {
        if !top.is_empty() {
            let _ = writeln!(out, "  top contended locks:");
            for l in top.iter().take(5) {
                let s = |k: &str| l.get(k).and_then(Json::as_str).unwrap_or("?");
                let f = |k: &str| l.get(k).and_then(Json::as_f64).unwrap_or(0.0);
                let _ = writeln!(
                    out,
                    "    {}[{}] waits={} total={} max={}",
                    s("table"),
                    s("key"),
                    f("waits") as u64,
                    ns(f("wait_total_ns")),
                    ns(f("wait_max_ns")),
                );
            }
        }
    }

    if let Some(Json::Arr(faults)) = doc.get("profile").and_then(|p| p.get("fault_events")) {
        if !faults.is_empty() {
            let first = faults[0].get("at_ns").and_then(Json::as_f64).unwrap_or(0.0);
            let _ = writeln!(
                out,
                "  fault injections: {} (first at {})",
                faults.len(),
                ns(first)
            );
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diff::parse_json;

    const DOC: &str = r#"{
  "schema": "vedb-bench-report/v3",
  "name": "unit",
  "window_ns": 2000000,
  "throughput_per_s": 1234.5,
  "resources": {
    "engine.nic": {"lanes": 2, "ops": 7, "busy_ns": 70, "steady_util_pct": 3.10, "wait": {"p99_ns": 5}, "service": {"p99_ns": 10}},
    "astore-0.pmem": {"lanes": 4, "ops": 40, "busy_ns": 400, "steady_util_pct": 42.17, "wait": {"p99_ns": 900}, "service": {"p99_ns": 1000}}
  },
  "profile": {
    "ops": {
      "core/commit": {"count": 10, "total_ns": 9000, "self_ns": 4000, "self_share_pct": 44.44},
      "wal/flush": {"count": 10, "total_ns": 5000, "self_ns": 5000, "self_share_pct": 55.55}
    },
    "locks": {
      "tables": {"orders": {"space": 3, "acquires": 2, "waits": 1, "wait_total_ns": 30000, "wait_p99_ns": 30000, "wait_max_ns": 30000, "holds": 2, "hold_total_ns": 30000, "hold_p50_ns": 15000, "hold_p99_ns": 20000, "hold_max_ns": 20000}},
      "top": [{"table": "orders", "space": 3, "key": "03", "waits": 1, "wait_total_ns": 30000, "wait_max_ns": 30000}]
    },
    "fault_events": [{"at_ns": 1500, "op": "crash", "node": 2}],
    "folded": {
      "core/commit": 4000,
      "core/commit;wal/flush": 5000
    }
  }
}"#;

    #[test]
    fn folded_lines_match_inferno_contract() {
        let doc = parse_json(DOC).unwrap();
        let folded = folded_lines(&doc).unwrap();
        assert_eq!(folded, "core/commit 4000\ncore/commit;wal/flush 5000\n");
    }

    #[test]
    fn folded_lines_error_without_profile_section() {
        let doc = parse_json(r#"{"schema": "vedb-bench-report/v2", "name": "old"}"#).unwrap();
        assert!(folded_lines(&doc).is_err());
    }

    #[test]
    fn top_summary_covers_every_section() {
        let doc = parse_json(DOC).unwrap();
        let top = top_summary(&doc).unwrap();
        assert!(
            top.contains("vedb-top: unit (1234 op/s over 2.00ms)"),
            "{top}"
        );
        // Sorted by utilization: pmem (42%) before nic (3%).
        let pmem = top.find("astore-0.pmem").unwrap();
        let nic = top.find("engine.nic").unwrap();
        assert!(pmem < nic, "{top}");
        assert!(top.contains("42.17%"));
        assert!(top.contains("top spans by self time"));
        assert!(top.contains("wal/flush"));
        assert!(top.contains("orders[03] waits=1"));
        assert!(top.contains("fault injections: 1 (first at 1.50us)"));
    }
}
