//! Perf-regression diffing of two `BENCH_<figure>.json` reports.
//!
//! The bench reports are byte-deterministic JSON written by
//! [`vedb_sim::RunReport::to_json`]; this module reads two of them (a
//! committed baseline and a freshly generated artifact), compares
//! throughput, latency percentiles, key counters and commit-phase shares
//! against relative thresholds, and renders a readable table. The
//! `report_diff` binary wires this into CI: exit 1 when a gated metric
//! regressed beyond its threshold.
//!
//! The workspace deliberately has no serde; the parser below is a minimal
//! recursive-descent JSON reader sufficient for the report schema (objects,
//! arrays, strings with the escapes our writer emits, f64 numbers).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (the report only emits integers and fixed-decimal floats,
    /// all exactly representable in f64).
    Num(f64),
    /// String
    Str(String),
    /// Array
    Arr(Vec<Json>),
    /// Object, key-sorted (insertion order is irrelevant for diffing).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on an object, `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Numeric value, `None` otherwise.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String value, `None` otherwise.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Object map, `None` otherwise.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// Parse a JSON document. Errors carry a byte offset for context.
pub fn parse_json(src: &str) -> Result<Json, String> {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let val = parse_value(b, pos)?;
                map.insert(key, val);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut arr = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(arr));
            }
            loop {
                arr.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(arr));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected '\"' at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let esc = b.get(*pos).copied().ok_or("truncated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .ok_or("truncated \\u escape")
                            .and_then(|h| std::str::from_utf8(h).map_err(|_| "bad \\u escape"))?;
                        let cp = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_string())?;
                        *pos += 4;
                        out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(format!("unsupported escape at byte {pos}")),
                }
            }
            c => {
                // Multi-byte UTF-8 passes through unchanged.
                let start = *pos - 1;
                let len = match c {
                    0x00..=0x7f => 1,
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    _ => 4,
                };
                let chunk = b.get(start..start + len).ok_or("truncated utf-8")?;
                out.push_str(std::str::from_utf8(chunk).map_err(|_| "bad utf-8")?);
                *pos = start + len;
            }
        }
    }
    Err("unterminated string".into())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while let Some(&c) = b.get(*pos) {
        if matches!(c, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
            *pos += 1;
        } else {
            break;
        }
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

/// The comparable slice of one bench report.
#[derive(Debug, Clone)]
pub struct ReportSummary {
    /// Report name (the `<figure>` of `BENCH_<figure>.json`).
    pub name: String,
    /// Committed operations per virtual second.
    pub throughput_per_s: f64,
    /// Committed-op latency median, ns.
    pub p50_ns: f64,
    /// Committed-op latency 99th percentile, ns.
    pub p99_ns: f64,
    /// Every counter, keyed `"component.name"`.
    pub counters: BTreeMap<String, f64>,
    /// Commit-phase share of total commit time, keyed phase name, in
    /// percent. Empty when the run was not traced.
    pub phase_share_pct: BTreeMap<String, f64>,
    /// Steady-state utilization per resource, keyed `"node.device"`, in
    /// percent. Empty for pre-v3 reports (no `resources` section).
    pub resource_util_pct: BTreeMap<String, f64>,
}

impl ReportSummary {
    /// Extract the comparable fields from a parsed report.
    pub fn from_json(doc: &Json) -> Result<ReportSummary, String> {
        let need = |k: &str| doc.get(k).ok_or_else(|| format!("report missing `{k}`"));
        let num = |k: &str| {
            need(k)?
                .as_f64()
                .ok_or_else(|| format!("`{k}` is not a number"))
        };
        let schema = need("schema")?.as_str().unwrap_or("");
        if !schema.starts_with("vedb-bench-report/") {
            return Err(format!("not a vedb bench report (schema `{schema}`)"));
        }
        let latency = need("latency")?;
        let counters = need("counters")?
            .as_obj()
            .ok_or("`counters` is not an object")?
            .iter()
            .filter_map(|(k, v)| v.as_f64().map(|n| (k.clone(), n)))
            .collect();
        // Phase shares recomputed from integer totals rather than trusting
        // the serialized fixed-point strings.
        let mut phase_share_pct = BTreeMap::new();
        if let Some(phases) = doc.get("profile").and_then(|p| p.get("commit_phases")) {
            if let Some(m) = phases.as_obj() {
                let total: f64 = m
                    .values()
                    .filter_map(|v| v.get("total_ns").and_then(Json::as_f64))
                    .sum();
                if total > 0.0 {
                    for (k, v) in m {
                        if let Some(ns) = v.get("total_ns").and_then(Json::as_f64) {
                            phase_share_pct.insert(k.clone(), ns * 100.0 / total);
                        }
                    }
                }
            }
        }
        // Steady-state utilization per resource (schema v3+). Older
        // baselines simply have no section; the diff then reports every
        // resource as "new" without gating, so a v2 baseline still works.
        let mut resource_util_pct = BTreeMap::new();
        if let Some(m) = doc.get("resources").and_then(Json::as_obj) {
            for (k, v) in m {
                if let Some(u) = v.get("steady_util_pct").and_then(Json::as_f64) {
                    resource_util_pct.insert(k.clone(), u);
                }
            }
        }
        Ok(ReportSummary {
            name: need("name")?.as_str().unwrap_or("?").to_string(),
            throughput_per_s: num("throughput_per_s")?,
            p50_ns: latency
                .get("p50_ns")
                .and_then(Json::as_f64)
                .ok_or("`latency.p50_ns` missing")?,
            p99_ns: latency
                .get("p99_ns")
                .and_then(Json::as_f64)
                .ok_or("`latency.p99_ns` missing")?,
            counters,
            phase_share_pct,
            resource_util_pct,
        })
    }
}

/// Relative regression thresholds. A metric regresses when it moves in its
/// bad direction by more than the given fraction of the baseline.
#[derive(Debug, Clone)]
pub struct Thresholds {
    /// Max tolerated throughput drop (fraction; 0.10 = -10%).
    pub max_tput_drop: f64,
    /// Max tolerated p50 latency rise (fraction).
    pub max_p50_rise: f64,
    /// Max tolerated p99 latency rise (fraction).
    pub max_p99_rise: f64,
    /// Max tolerated commit-phase share drift, percentage points; `None`
    /// reports the drift without gating on it.
    pub max_phase_shift_pp: Option<f64>,
    /// Max tolerated steady-state resource-utilization drift, percentage
    /// points (either direction — a device suddenly idling flags a broken
    /// path as surely as one saturating); `None` reports without gating.
    pub max_util_drift_pp: Option<f64>,
    /// Absolute gates on the *new* report: each `(num, den, limit)` asserts
    /// `counters[num] / counters[den] < limit`. Used for invariants that
    /// hold regardless of the baseline — e.g. the group-commit gate
    /// `core.wal_flushes / core.txn_commits < 0.5`. A missing or zero
    /// denominator fails the gate (the invariant is unverifiable).
    pub counter_ratio_lt: Vec<(String, String, f64)>,
    /// Absolute gates on the *new* report: each `(a, b)` asserts
    /// `counters[a] < counters[b]` — e.g. `rdma.doorbells < rdma.wrs`
    /// proves multi-WR chains actually share doorbells.
    pub counter_lt: Vec<(String, String)>,
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds {
            max_tput_drop: 0.10,
            max_p50_rise: 0.20,
            max_p99_rise: 0.20,
            max_phase_shift_pp: None,
            max_util_drift_pp: None,
            counter_ratio_lt: Vec::new(),
            counter_lt: Vec::new(),
        }
    }
}

/// Outcome of one diff: the rendered table plus the regressions found.
#[derive(Debug)]
pub struct DiffOutcome {
    /// Human-readable comparison table.
    pub table: String,
    /// One line per gated metric that exceeded its threshold.
    pub regressions: Vec<String>,
}

impl DiffOutcome {
    /// Whether any gated metric regressed.
    pub fn regressed(&self) -> bool {
        !self.regressions.is_empty()
    }
}

fn rel_delta(base: f64, new: f64) -> f64 {
    if base == 0.0 {
        if new == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (new - base) / base
    }
}

fn fmt_delta(d: f64) -> String {
    if d.is_infinite() {
        "new".to_string()
    } else {
        format!("{:+.1}%", d * 100.0)
    }
}

/// Compare `new` against `base` under `th`.
pub fn diff(base: &ReportSummary, new: &ReportSummary, th: &Thresholds) -> DiffOutcome {
    let mut table = String::new();
    let mut regressions = Vec::new();
    let _ = writeln!(
        table,
        "report_diff: {} (baseline) vs {} (new)",
        base.name, new.name
    );
    let _ = writeln!(
        table,
        "{:<28} {:>14} {:>14} {:>9}  gate",
        "metric", "baseline", "new", "delta"
    );

    let mut row = |name: &str, b: f64, n: f64, gate: Option<(f64, bool)>| {
        let d = rel_delta(b, n);
        // `worse_when_up`: latency-style metrics regress on a rise.
        let (verdict, is_reg) = match gate {
            None => ("", false),
            Some((limit, worse_when_up)) => {
                let bad = if worse_when_up { d } else { -d };
                if bad > limit {
                    ("REGRESSED", true)
                } else {
                    ("ok", false)
                }
            }
        };
        let _ = writeln!(
            table,
            "{:<28} {:>14.1} {:>14.1} {:>9}  {}",
            name,
            b,
            n,
            fmt_delta(d),
            verdict
        );
        if is_reg {
            regressions.push(format!(
                "{name}: {b:.1} -> {n:.1} ({}) exceeds threshold {:.0}%",
                fmt_delta(d),
                gate.unwrap().0 * 100.0
            ));
        }
    };

    row(
        "throughput_per_s",
        base.throughput_per_s,
        new.throughput_per_s,
        Some((th.max_tput_drop, false)),
    );
    row(
        "latency.p50_ns",
        base.p50_ns,
        new.p50_ns,
        Some((th.max_p50_rise, true)),
    );
    row(
        "latency.p99_ns",
        base.p99_ns,
        new.p99_ns,
        Some((th.max_p99_rise, true)),
    );

    // Key counters: informational (the virtual-time smoke run is seeded, so
    // any drift here is a behaviour change worth seeing, not gating).
    for key in [
        "core.txn_commits",
        "core.txn_aborts",
        "astore.appends",
        "pagestore.records_applied",
        "rdma.chain_writes",
    ] {
        let b = base.counters.get(key).copied().unwrap_or(0.0);
        let n = new.counters.get(key).copied().unwrap_or(0.0);
        if b != 0.0 || n != 0.0 {
            row(key, b, n, None);
        }
    }

    // Commit-phase shares: drift in percentage points.
    let mut phases: Vec<&String> = base
        .phase_share_pct
        .keys()
        .chain(new.phase_share_pct.keys())
        .collect();
    phases.sort();
    phases.dedup();
    for phase in phases {
        let b = base.phase_share_pct.get(phase).copied().unwrap_or(0.0);
        let n = new.phase_share_pct.get(phase).copied().unwrap_or(0.0);
        let drift = n - b;
        let gated = th
            .max_phase_shift_pp
            .map(|limit| drift.abs() > limit)
            .unwrap_or(false);
        let _ = writeln!(
            table,
            "{:<28} {:>13.2}% {:>13.2}% {:>+8.2}pp  {}",
            format!("phase.{phase}"),
            b,
            n,
            drift,
            if gated {
                "REGRESSED"
            } else if th.max_phase_shift_pp.is_some() {
                "ok"
            } else {
                ""
            }
        );
        if gated {
            regressions.push(format!(
                "phase.{phase}: share {b:.2}% -> {n:.2}% drifts {:+.2}pp beyond {:.1}pp",
                drift,
                th.max_phase_shift_pp.unwrap()
            ));
        }
    }

    // Resource steady-state utilization: drift in percentage points. A
    // baseline with no `resources` section (pre-v3) cannot anchor a drift,
    // so those rows render as informational and the gate stays quiet until
    // the baseline is regenerated.
    let anchored = !base.resource_util_pct.is_empty();
    let mut resources: Vec<&String> = base
        .resource_util_pct
        .keys()
        .chain(new.resource_util_pct.keys())
        .collect();
    resources.sort();
    resources.dedup();
    for res in resources {
        let b = base.resource_util_pct.get(res).copied().unwrap_or(0.0);
        let n = new.resource_util_pct.get(res).copied().unwrap_or(0.0);
        let drift = n - b;
        let gate = th.max_util_drift_pp.filter(|_| anchored);
        let gated = gate.map(|limit| drift.abs() > limit).unwrap_or(false);
        let _ = writeln!(
            table,
            "{:<28} {:>13.2}% {:>13.2}% {:>+8.2}pp  {}",
            format!("util.{res}"),
            b,
            n,
            drift,
            if gated {
                "REGRESSED"
            } else if gate.is_some() {
                "ok"
            } else {
                ""
            }
        );
        if gated {
            regressions.push(format!(
                "util.{res}: {b:.2}% -> {n:.2}% drifts {:+.2}pp beyond {:.1}pp",
                drift,
                th.max_util_drift_pp.unwrap()
            ));
        }
    }

    // Absolute counter gates, evaluated against the new report only.
    for (num, den, limit) in &th.counter_ratio_lt {
        let n = new.counters.get(num).copied().unwrap_or(0.0);
        let d = new.counters.get(den).copied().unwrap_or(0.0);
        let (shown, ok) = if d > 0.0 {
            (n / d, n / d < *limit)
        } else {
            (f64::NAN, false)
        };
        let _ = writeln!(
            table,
            "{:<28} {:>14} {:>14.3} {:>9}  {}",
            format!("assert {num}/{den}"),
            format!("< {limit}"),
            shown,
            "",
            if ok { "ok" } else { "REGRESSED" }
        );
        if !ok {
            regressions.push(if d > 0.0 {
                format!("{num}/{den}: {n:.0}/{d:.0} = {shown:.3} not below {limit}")
            } else {
                format!("{num}/{den}: denominator `{den}` missing or zero")
            });
        }
    }
    for (a, b) in &th.counter_lt {
        let av = new.counters.get(a).copied().unwrap_or(0.0);
        let bv = new.counters.get(b).copied().unwrap_or(0.0);
        let ok = av < bv;
        let _ = writeln!(
            table,
            "{:<28} {:>14.0} {:>14.0} {:>9}  {}",
            format!("assert {a} < {b}"),
            av,
            bv,
            "",
            if ok { "ok" } else { "REGRESSED" }
        );
        if !ok {
            regressions.push(format!("{a} ({av:.0}) not below {b} ({bv:.0})"));
        }
    }

    DiffOutcome { table, regressions }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_json(tput: f64, p50: u64, p99: u64, flush_ns: u64, self_ns: u64) -> String {
        report_json_util(tput, p50, p99, flush_ns, self_ns, 42.17)
    }

    fn report_json_util(
        tput: f64,
        p50: u64,
        p99: u64,
        flush_ns: u64,
        self_ns: u64,
        util_pct: f64,
    ) -> String {
        format!(
            r#"{{
  "schema": "vedb-bench-report/v3",
  "name": "unit",
  "committed": 100,
  "aborted": 1,
  "window_ns": 1000000,
  "throughput_per_s": {tput},
  "latency": {{"count": 100, "mean_ns": 10, "p50_ns": {p50}, "p95_ns": 50, "p99_ns": {p99}, "max_ns": 99}},
  "counters": {{"core.commits": 100, "astore.appends": 40}},
  "gauges": {{}},
  "op_latencies": {{}},
  "resources": {{
    "astore-0.pmem": {{"lanes": 4, "ops": 40, "busy_ns": 400, "steady_util_pct": {util_pct}, "wait": {{"count": 40, "mean_ns": 5, "p50_ns": 4, "p95_ns": 9, "p99_ns": 9, "max_ns": 9}}, "service": {{"count": 40, "mean_ns": 10, "p50_ns": 10, "p95_ns": 10, "p99_ns": 10, "max_ns": 10}}}}
  }},
  "profile": {{
    "spans": 3, "abandoned": 0, "orphans": 0, "root_total_ns": 100,
    "ops": {{}},
    "commit_phases": {{
      "wal/flush": {{"count": 1, "total_ns": {flush_ns}, "share_pct": 0.00}},
      "self": {{"count": 1, "total_ns": {self_ns}, "share_pct": 0.00}}
    }},
    "timelines": {{}}
  }}
}}"#
        )
    }

    fn summary(tput: f64, p50: u64, p99: u64, flush_ns: u64, self_ns: u64) -> ReportSummary {
        let doc = parse_json(&report_json(tput, p50, p99, flush_ns, self_ns)).unwrap();
        ReportSummary::from_json(&doc).unwrap()
    }

    fn summary_util(util_pct: f64) -> ReportSummary {
        let doc = parse_json(&report_json_util(5000.0, 20, 80, 40, 60, util_pct)).unwrap();
        ReportSummary::from_json(&doc).unwrap()
    }

    #[test]
    fn parser_handles_report_shapes() {
        let doc = parse_json(&report_json(5000.0, 20, 80, 40, 60)).unwrap();
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("vedb-bench-report/v3")
        );
        assert_eq!(
            doc.get("latency")
                .and_then(|l| l.get("p99_ns"))
                .and_then(Json::as_f64),
            Some(80.0)
        );
        let esc = parse_json(r#"{"a": "x\"y\n", "b": [1, -2.5e1, true, null]}"#).unwrap();
        assert_eq!(esc.get("a").and_then(Json::as_str), Some("x\"y\n"));
        assert_eq!(
            esc.get("b"),
            Some(&Json::Arr(vec![
                Json::Num(1.0),
                Json::Num(-25.0),
                Json::Bool(true),
                Json::Null
            ]))
        );
        assert!(parse_json("{\"unterminated\": ").is_err());
        assert!(parse_json("{} trailing").is_err());
    }

    #[test]
    fn summary_recomputes_phase_shares() {
        let s = summary(5000.0, 20, 80, 40, 60);
        assert!((s.phase_share_pct["wal/flush"] - 40.0).abs() < 1e-9);
        assert!((s.phase_share_pct["self"] - 60.0).abs() < 1e-9);
    }

    #[test]
    fn identical_reports_pass() {
        let s = summary(5000.0, 20, 80, 40, 60);
        let out = diff(&s, &s, &Thresholds::default());
        assert!(!out.regressed(), "{}", out.table);
    }

    #[test]
    fn throughput_drop_beyond_threshold_regresses() {
        let base = summary(5000.0, 20, 80, 40, 60);
        let new = summary(4000.0, 20, 80, 40, 60); // -20% < -10% budget
        let out = diff(&base, &new, &Thresholds::default());
        assert!(out.regressed());
        assert!(out.regressions[0].contains("throughput_per_s"));
        // A drop within budget passes.
        let ok = summary(4600.0, 20, 80, 40, 60); // -8%
        assert!(!diff(&base, &ok, &Thresholds::default()).regressed());
    }

    #[test]
    fn p99_rise_beyond_threshold_regresses() {
        let base = summary(5000.0, 20, 80, 40, 60);
        let new = summary(5000.0, 20, 120, 40, 60); // +50% > +20% budget
        let out = diff(&base, &new, &Thresholds::default());
        assert!(out.regressed());
        assert!(out.regressions.iter().any(|r| r.contains("p99_ns")));
        // Throughput *gains* never regress.
        let faster = summary(9000.0, 10, 40, 40, 60);
        assert!(!diff(&base, &faster, &Thresholds::default()).regressed());
    }

    #[test]
    fn phase_drift_gates_only_when_asked() {
        let base = summary(5000.0, 20, 80, 40, 60); // flush 40%
        let new = summary(5000.0, 20, 80, 80, 20); // flush 80%
        assert!(!diff(&base, &new, &Thresholds::default()).regressed());
        let strict = Thresholds {
            max_phase_shift_pp: Some(10.0),
            ..Thresholds::default()
        };
        let out = diff(&base, &new, &strict);
        assert!(out.regressed());
        assert!(out.regressions.iter().any(|r| r.contains("wal/flush")));
    }

    #[test]
    fn summary_extracts_resource_utilization() {
        let s = summary_util(42.17);
        assert_eq!(s.resource_util_pct.len(), 1);
        assert!((s.resource_util_pct["astore-0.pmem"] - 42.17).abs() < 1e-9);
    }

    #[test]
    fn util_drift_gates_only_when_asked() {
        let base = summary_util(40.0);
        let new = summary_util(55.0); // +15pp
        assert!(!diff(&base, &new, &Thresholds::default()).regressed());
        let strict = Thresholds {
            max_util_drift_pp: Some(5.0),
            ..Thresholds::default()
        };
        let out = diff(&base, &new, &strict);
        assert!(out.regressed());
        assert!(out
            .regressions
            .iter()
            .any(|r| r.contains("util.astore-0.pmem")));
        // The gate is symmetric: a device going idle drifts just as far.
        let idle = summary_util(25.0); // -15pp
        assert!(diff(&base, &idle, &strict).regressed());
        // Within budget passes.
        let near = summary_util(43.0); // +3pp
        assert!(!diff(&base, &near, &strict).regressed());
    }

    #[test]
    fn counter_ratio_gate_checks_new_report_only() {
        // Fixture counters: core.commits = 100, astore.appends = 40.
        let s = summary(5000.0, 20, 80, 40, 60);
        let pass = Thresholds {
            counter_ratio_lt: vec![("astore.appends".into(), "core.commits".into(), 0.5)],
            ..Thresholds::default()
        };
        assert!(!diff(&s, &s, &pass).regressed());
        let fail = Thresholds {
            counter_ratio_lt: vec![("astore.appends".into(), "core.commits".into(), 0.3)],
            ..Thresholds::default()
        };
        let out = diff(&s, &s, &fail);
        assert!(out.regressed());
        assert!(out.regressions[0].contains("not below 0.3"), "{out:?}");
        // A missing denominator is a failure, not a silent pass.
        let missing = Thresholds {
            counter_ratio_lt: vec![("astore.appends".into(), "no.such".into(), 0.5)],
            ..Thresholds::default()
        };
        let out = diff(&s, &s, &missing);
        assert!(out.regressed());
        assert!(out.regressions[0].contains("missing or zero"));
    }

    #[test]
    fn counter_lt_gate_checks_new_report_only() {
        let s = summary(5000.0, 20, 80, 40, 60);
        let pass = Thresholds {
            counter_lt: vec![("astore.appends".into(), "core.commits".into())],
            ..Thresholds::default()
        };
        assert!(!diff(&s, &s, &pass).regressed());
        let fail = Thresholds {
            counter_lt: vec![("core.commits".into(), "astore.appends".into())],
            ..Thresholds::default()
        };
        let out = diff(&s, &s, &fail);
        assert!(out.regressed());
        assert!(out.regressions[0].contains("not below"));
    }

    #[test]
    fn util_gate_stays_quiet_against_pre_v3_baseline() {
        // A v2 baseline has no `resources` section; stripping it from the
        // fixture models that. The new report's rows render informationally
        // but must not trip the gate (there is nothing to anchor drift to).
        let raw = report_json_util(5000.0, 20, 80, 40, 60, 40.0);
        let start = raw.find("  \"resources\"").unwrap();
        let end = raw[start..]
            .find("\n  },\n")
            .map(|e| start + e + 6)
            .unwrap();
        let stripped = format!("{}{}", &raw[..start], &raw[end..]);
        let doc = parse_json(&stripped).unwrap();
        let base = ReportSummary::from_json(&doc).unwrap();
        assert!(base.resource_util_pct.is_empty());
        let new = summary_util(40.0);
        let strict = Thresholds {
            max_util_drift_pp: Some(5.0),
            ..Thresholds::default()
        };
        let out = diff(&base, &new, &strict);
        assert!(!out.regressed(), "{}", out.table);
        assert!(out.table.contains("util.astore-0.pmem"));
    }
}
