//! Shared harness utilities for the per-figure benchmarks.
//!
//! Every bench target builds one or more deployments ([`Deployment`]),
//! loads a workload, runs client sweeps with the virtual-time driver, and
//! prints a paper-style table next to the paper's reference numbers so the
//! *shape* comparison (who wins, by what factor, where the crossover sits)
//! is immediate. EXPERIMENTS.md records the outputs.

pub mod diff;
pub mod flame;

use std::path::PathBuf;
use std::sync::Arc;

use vedb_core::db::{Db, DbConfig, StorageFabric};
use vedb_pagestore::ApplyConfig;
use vedb_sim::{ClusterSpec, MetricsRegistry, RunReport, SimCtx, TrialResult, VTime};
use vedb_workloads::driver::{run_trial, DriverConfig, OpOutcome};

/// One deployed engine + its private storage fabric (one "cluster" per
/// configuration, as in the paper's side-by-side deployments).
pub struct Deployment {
    /// The storage cluster.
    pub fabric: StorageFabric,
    /// The engine.
    pub db: Arc<Db>,
    /// Load-phase context; its final clock is the earliest valid trial
    /// start.
    pub ctx: SimCtx,
    /// Virtual-time skew bound handed to the trial driver
    /// ([`vedb_workloads::driver::DEFAULT_SYNC_WINDOW`] by default).
    /// Benches that measure a saturated device at the median narrow it to
    /// a few operation-latencies so clients cannot bank cheap operations
    /// ahead of the queue they created.
    pub sync_window: VTime,
}

impl Deployment {
    /// Build a fabric (96 MB AStore per server, 1 MB slots) and open an
    /// engine with `cfg`.
    pub fn open(cfg: DbConfig) -> Deployment {
        Self::open_with(cfg, ClusterSpec::paper_default(), 192 << 20, 1 << 20)
    }

    /// Build with explicit cluster/capacity parameters.
    pub fn open_with(
        cfg: DbConfig,
        spec: ClusterSpec,
        astore_capacity: usize,
        slot_bytes: u64,
    ) -> Deployment {
        Self::open_with_apply(
            cfg,
            spec,
            astore_capacity,
            slot_bytes,
            ApplyConfig::default(),
        )
    }

    /// [`open_with`](Self::open_with) plus an explicit PageStore
    /// apply-pipeline configuration (worker count, checkpoint cadence) —
    /// the knob `fig_recovery` sweeps.
    pub fn open_with_apply(
        cfg: DbConfig,
        spec: ClusterSpec,
        astore_capacity: usize,
        slot_bytes: u64,
        apply: ApplyConfig,
    ) -> Deployment {
        let fabric = StorageFabric::build_with_apply(spec, astore_capacity, slot_bytes, apply);
        let mut ctx = SimCtx::new(0, 0xBEEF);
        let db = Db::open(&mut ctx, &fabric, cfg).expect("open engine");
        Deployment {
            fabric,
            db,
            ctx,
            sync_window: vedb_workloads::driver::DEFAULT_SYNC_WINDOW,
        }
    }

    /// Run one trial starting at the current timeline position, then
    /// advance the timeline.
    pub fn trial(
        &mut self,
        clients: usize,
        warmup: VTime,
        measure: VTime,
        op: impl Fn(&mut SimCtx, usize) -> OpOutcome + Sync,
    ) -> TrialResult {
        let cfg = DriverConfig {
            clients,
            warmup,
            measure,
            seed: 7,
            start: self.ctx.now(),
            sync_window: self.sync_window,
        };
        let r = run_trial(&cfg, op);
        self.ctx.wait_until(cfg.start + warmup + measure);
        r
    }

    /// The deployment-wide metrics registry (shared by every subsystem of
    /// this cluster).
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.fabric.env.metrics
    }

    /// Freeze the registry (and optionally a trial) into a [`RunReport`]
    /// named `name`.
    pub fn report(&self, name: &str, trial: Option<&TrialResult>) -> RunReport {
        RunReport::collect(name, trial, self.metrics())
    }
}

/// Directory `BENCH_<name>.json` artifacts are written to: the
/// `VEDB_BENCH_DIR` environment variable when set, otherwise the workspace
/// root (bench binaries run from arbitrary cwds under `cargo bench`).
pub fn bench_report_dir() -> PathBuf {
    match std::env::var_os("VEDB_BENCH_DIR") {
        Some(d) => PathBuf::from(d),
        None => PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."),
    }
}

/// Write `report` as `BENCH_<name>.json` into [`bench_report_dir`];
/// returns the path written. Errors are returned, not panicked, so a
/// read-only checkout degrades to console-only output.
pub fn write_bench_report(report: &RunReport) -> std::io::Result<PathBuf> {
    let path = bench_report_dir().join(format!("BENCH_{}.json", report.name));
    std::fs::write(&path, report.to_json())?;
    println!("  wrote {}", path.display());
    Ok(path)
}

/// Render an aligned table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!(
                "{:>w$}  ",
                c,
                w = widths.get(i).copied().unwrap_or(8)
            ));
        }
        println!("  {s}");
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Format a throughput.
pub fn fmt_tps(v: f64) -> String {
    if v >= 10_000.0 {
        format!("{:.1}k", v / 1000.0)
    } else {
        format!("{v:.0}")
    }
}

/// Format a virtual time as milliseconds.
pub fn fmt_ms(t: VTime) -> String {
    format!("{:.2}", t.as_millis_f64())
}

/// Standard client sweep used by the throughput figures.
pub fn client_sweep() -> Vec<usize> {
    vec![1, 2, 4, 8, 16, 32, 64, 128, 256, 512]
}

/// A header that states what the paper reported, so the printed table can
/// be eyeballed against it.
pub fn paper_note(note: &str) {
    println!("  paper: {note}");
}
