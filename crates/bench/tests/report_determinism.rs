//! Determinism regression: two fresh, identically-seeded single-client
//! simulation runs must produce **byte-identical** `RunReport` snapshots.
//!
//! This is the property the whole virtual-time methodology rests on — if
//! two same-seed runs diverge in any counter, latency bucket, or the JSON
//! encoding itself, figures stop being reproducible and CI artifact diffs
//! become noise. One client keeps the run single-threaded; multi-client
//! trials interleave on wall-clock thread scheduling and are exempt from
//! bit-level reproducibility.

use std::sync::Arc;

use vedb_bench::Deployment;
use vedb_core::db::{DbConfig, LogBackendKind};
use vedb_pagestore::ApplyConfig;
use vedb_sim::{ClusterSpec, RunReport, VTime};
use vedb_workloads::tpcc::{self, TpccScale};

fn run_once(name: &str) -> RunReport {
    run_once_with(name, ApplyConfig::default())
}

fn run_once_with(name: &str, apply: ApplyConfig) -> RunReport {
    let scale = TpccScale {
        warehouses: 2,
        districts: 2,
        customers: 20,
        items: 60,
        initial_orders: 5,
    };
    let mut dep = Deployment::open_with_apply(
        DbConfig::builder()
            .bp_pages(512)
            .bp_shards(4)
            .log(LogBackendKind::AStore)
            .ring_segments(8)
            .build()
            .unwrap(),
        ClusterSpec::paper_default(),
        192 << 20,
        1 << 20,
        apply,
    );
    dep.db.define_schema(tpcc::define_schema);
    dep.db.create_tables(&mut dep.ctx).unwrap();
    tpcc::load(&mut dep.ctx, &dep.db, &scale).unwrap();

    // Trace the trial so determinism also covers the profile section
    // (span ids, phase sums, timeline buckets).
    dep.metrics().trace().set_capacity(1 << 18);
    dep.metrics().trace().enable();

    let db = Arc::clone(&dep.db);
    let r = dep.trial(
        1,
        VTime::from_millis(5),
        VTime::from_millis(50),
        |ctx, _| tpcc::run_transaction(ctx, &db, &scale),
    );
    dep.report(name, Some(&r))
}

#[test]
fn seeded_single_client_runs_are_byte_identical() {
    let a = run_once("det");
    let b = run_once("det");

    // Sanity: the run actually did work — an empty report being equal to
    // another empty report would prove nothing.
    assert!(a.throughput() > 0.0, "trial committed nothing");
    assert!(a.counter("core.txn_commits") > 0);
    assert!(a.counter("pmem.writes") > 0);
    assert!(a.counter("rdma.chain_writes") > 0);

    let ja = a.to_json();
    let jb = b.to_json();
    if ja != jb {
        // Byte-level mismatch: show the first differing line for triage.
        for (la, lb) in ja.lines().zip(jb.lines()) {
            if la != lb {
                panic!("reports diverge:\n  run A: {la}\n  run B: {lb}");
            }
        }
        panic!(
            "reports differ in length: {} vs {} bytes",
            ja.len(),
            jb.len()
        );
    }
}

/// Same property with the apply pipeline cranked: an 8-worker parallel
/// applier plus an aggressive background checkpointer must not introduce
/// any scheduling nondeterminism — the worker pool folds partitions onto
/// simulated lanes deterministically and the checkpointer runs on a forked
/// context, so counters, truncation totals and latency buckets must still
/// be byte-identical between same-seed runs.
#[test]
fn parallel_apply_and_checkpointer_runs_are_byte_identical() {
    let apply = ApplyConfig {
        workers: 8,
        checkpoint_every_records: 128,
    };
    let a = run_once_with("det-par", apply.clone());
    let b = run_once_with("det-par", apply);

    // Sanity: the knobs were live — the pool dispatched batches and the
    // checkpointer fired and truncated replayed log.
    assert!(a.counter("storage-0.apply.batches") > 0, "pool never ran");
    assert!(a.counter("pagestore.checkpoints") > 0, "checkpointer idle");
    assert!(
        a.counter("pagestore.log_truncated_records") > 0,
        "checkpoints must truncate replayed log"
    );

    let ja = a.to_json();
    let jb = b.to_json();
    if ja != jb {
        for (la, lb) in ja.lines().zip(jb.lines()) {
            if la != lb {
                panic!("reports diverge:\n  run A: {la}\n  run B: {lb}");
            }
        }
        panic!(
            "reports differ in length: {} vs {} bytes",
            ja.len(),
            jb.len()
        );
    }
}

#[test]
fn report_json_round_trips_expected_fields() {
    let rep = run_once("fields");
    let json = rep.to_json();
    // Spot-check the schema the EXPERIMENTS.md tooling greps for.
    assert!(json.contains("\"schema\": \"vedb-bench-report/v3\""));
    assert!(json.contains("\"throughput_per_s\""));
    assert!(json.contains("\"p50_ns\""));
    assert!(json.contains("\"p95_ns\""));
    assert!(json.contains("\"p99_ns\""));
    assert!(json.contains("\"core.txn_commits\""));
    assert!(json.contains("\"pmem.bytes_persisted\""));
    assert!(json.contains("\"rdma.chain_writes\""));
    // The profile section: per-op attribution and the commit-phase split.
    assert!(json.contains("\"profile\""));
    assert!(json.contains("\"commit_phases\""));
    assert!(json.contains("\"core/commit\""));
    assert!(json.contains("\"wal/flush\""));
    // Schema v3 additions: resource saturation, lock contention, folded
    // flamegraph stacks.
    assert!(json.contains("\"resources\""));
    assert!(json.contains("\"steady_util_pct\""));
    assert!(json.contains("\"astore-0.pmem\""));
    assert!(json.contains("\"locks\""));
    assert!(json.contains("\"folded\""));
    assert!(!rep.resources.is_empty(), "no resources discovered");
    assert!(
        rep.resources.values().all(|r| r.wait.count == r.ops),
        "wait histogram must sample once per acquisition"
    );
    assert!(!rep.profile.folded.is_empty(), "no folded stacks");
    assert!(rep.profile.spans > 0, "trial ran with tracing off");
    let commit_total = rep.profile.ops["core/commit"].total_ns;
    let phase_sum: u64 = rep.profile.commit_phases.values().map(|p| p.total_ns).sum();
    assert!(
        commit_total.abs_diff(phase_sum) * 100 <= commit_total,
        "commit_phases sum {phase_sum} vs commit total {commit_total}"
    );
}
