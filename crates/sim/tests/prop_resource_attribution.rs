//! Property tests for resource saturation attribution.
//!
//! 1. **Conservation**: for every acquisition on a metrics-attached
//!    [`Resource`], `wait + service == completion - request` *exactly* —
//!    the calendar queue grants at `start >= now` and completes at
//!    `start + service`, so the wait/service split partitions each
//!    client-observed acquisition latency with no residue, under arbitrary
//!    interleavings of concurrent virtual-time clients.
//! 2. **Totals**: the registry's `busy_ns`/`ops` counters agree with the
//!    resource's own accumulators, and the wait/service histograms saw
//!    exactly one sample per acquisition.

use std::sync::Arc;

use proptest::prelude::*;
use vedb_sim::{MetricsRegistry, Resource, VTime};

#[derive(Debug, Clone)]
struct Acq {
    /// Virtual-time step the client takes before requesting.
    advance_ns: u64,
    /// Requested service interval.
    service_ns: u64,
}

fn acq_strategy() -> impl Strategy<Value = Vec<Acq>> {
    proptest::collection::vec(
        (0u64..50_000, 1u64..20_000).prop_map(|(advance_ns, service_ns)| Acq {
            advance_ns,
            service_ns,
        }),
        1..60,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn wait_plus_service_equals_acquisition_latency(
        per_client in proptest::collection::vec(acq_strategy(), 1..5),
        lanes in 1usize..4,
    ) {
        let reg = MetricsRegistry::new();
        let res = Arc::new(Resource::with_metrics("node.dev", lanes, &reg));

        // Concurrent clients, each with its own virtual clock, hammering
        // the same resource from OS threads (the registry handles are the
        // same Arcs the threads record into).
        let mut handles = Vec::new();
        for ops in per_client.clone() {
            let res = Arc::clone(&res);
            handles.push(std::thread::spawn(move || {
                let mut now = VTime::ZERO;
                let mut residue = 0u64;
                let mut total_lat = 0u64;
                for op in ops {
                    now += VTime::from_nanos(op.advance_ns);
                    let svc = VTime::from_nanos(op.service_ns);
                    let done = res.acquire(now, svc);
                    // Completion is never before now + service.
                    assert!(done >= now + svc);
                    let lat = (done - now).as_nanos();
                    let wait = lat - op.service_ns; // == start - now
                    residue += lat - (wait + op.service_ns);
                    total_lat += lat;
                    now = done;
                }
                (residue, total_lat)
            }));
        }
        let mut latency_sum = 0u64;
        for h in handles {
            let (residue, lat) = h.join().unwrap();
            prop_assert_eq!(residue, 0, "wait + service must cover latency exactly");
            latency_sum += lat;
        }

        // Registry totals: one histogram sample per acquisition; the exact
        // sums of the wait and service recorders partition the summed
        // client-observed latency.
        let n: u64 = per_client.iter().map(|c| c.len() as u64).sum();
        let svc_sum: u64 = per_client
            .iter()
            .flatten()
            .map(|a| a.service_ns)
            .sum();
        let counters = reg.counter_values();
        prop_assert_eq!(counters["node.dev.ops"], n);
        prop_assert_eq!(counters["node.dev.busy_ns"], svc_sum);
        prop_assert_eq!(res.total_busy().as_nanos(), svc_sum);

        let lats = reg.latency_handles();
        let wait = &lats.iter().find(|(k, _)| k == "node.dev.wait").unwrap().1;
        let service = &lats.iter().find(|(k, _)| k == "node.dev.service").unwrap().1;
        prop_assert_eq!(wait.count(), n);
        prop_assert_eq!(service.count(), n);
        prop_assert_eq!(service.total().as_nanos(), svc_sum);
        prop_assert_eq!(
            wait.total().as_nanos() + service.total().as_nanos(),
            latency_sum,
            "summed wait + service histograms must equal summed acquisition latency"
        );
    }
}
