//! Concurrency tests for the metrics layer: parallel writers racing
//! against drains/merges must never lose or double-count an increment.
//!
//! The invariant under test is conservation: with writers pumping a known
//! total into a source (`Counter`, `LatencyRecorder`, `RecoveryCounters`,
//! or a whole `MetricsRegistry`) while another thread repeatedly drains it
//! into a destination, `drained + residue == written` must hold exactly
//! once the writers are done. Everything here runs under plain
//! `cargo test` and is ThreadSanitizer-clean (atomics only, no data races
//! by construction).

use std::sync::atomic::{AtomicBool, Ordering};

use vedb_sim::{LatencyRecorder, MetricsRegistry, RecoveryCounters, VTime};

const WRITERS: usize = 8;
const INCS_PER_WRITER: u64 = 50_000;

/// Run `WRITERS` writer threads against `write`, while a drainer thread
/// races `drain` until every writer is done; `drain` runs once more after
/// the race so stragglers are collected.
fn race<W, D>(write: W, drain: D)
where
    W: Fn(usize) + Sync,
    D: Fn() + Sync,
{
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let write = &write;
        let writers: Vec<_> = (0..WRITERS).map(|w| s.spawn(move || write(w))).collect();
        let drainer = s.spawn(|| {
            while !stop.load(Ordering::Acquire) {
                drain();
                std::thread::yield_now();
            }
        });
        for h in writers {
            h.join().unwrap();
        }
        stop.store(true, Ordering::Release);
        drainer.join().unwrap();
    });
    drain();
}

#[test]
fn registry_drain_conserves_counter_totals() {
    let src = MetricsRegistry::new();
    let dst = MetricsRegistry::new();
    // Register up front so every writer shares the same handles.
    let ops = src.counter("test", "ops");
    let bytes = src.counter("test", "bytes");

    race(
        |w| {
            for i in 0..INCS_PER_WRITER {
                ops.inc();
                bytes.add((w as u64 + i) % 7);
            }
        },
        || src.drain_into(&dst),
    );

    let expected_bytes: u64 = (0..WRITERS as u64)
        .map(|w| (0..INCS_PER_WRITER).map(|i| (w + i) % 7).sum::<u64>())
        .sum();
    // After the final drain the source must be empty and the destination
    // must hold every increment exactly once.
    assert_eq!(ops.get(), 0, "source residue after final drain");
    assert_eq!(
        dst.counter_values()["test.ops"],
        WRITERS as u64 * INCS_PER_WRITER
    );
    assert_eq!(dst.counter_values()["test.bytes"], expected_bytes);
}

#[test]
fn latency_drain_conserves_samples() {
    let src = LatencyRecorder::new();
    let dst = LatencyRecorder::new();

    race(
        |w| {
            for i in 0..INCS_PER_WRITER {
                src.record(VTime::from_nanos((w as u64 * 131 + i) % 100_000));
            }
        },
        || src.drain_into(&dst),
    );

    let expected_max = (0..WRITERS as u64)
        .flat_map(|w| {
            [
                (w * 131) % 100_000,
                (w * 131 + INCS_PER_WRITER - 1) % 100_000,
            ]
        })
        .max()
        .unwrap();
    assert_eq!(src.count(), 0, "source residue after final drain");
    assert_eq!(dst.count(), WRITERS as u64 * INCS_PER_WRITER);
    assert_eq!(dst.max().as_nanos(), expected_max);
    // The bucket totals must add up to the sample count too (no sample
    // stranded half-transferred).
    assert!(dst.p50() <= dst.max());
}

#[test]
fn recovery_counters_drain_conserves_totals() {
    let src = RecoveryCounters::new();
    let dst = RecoveryCounters::new();

    race(
        |_| {
            for _ in 0..INCS_PER_WRITER {
                src.note_retry();
                src.note_backoff(VTime::from_nanos(3));
                src.note_read_failover();
            }
        },
        || src.drain_into(&dst),
    );

    let n = WRITERS as u64 * INCS_PER_WRITER;
    assert_eq!(src.retries(), 0);
    assert_eq!(dst.retries(), n);
    assert_eq!(dst.backoff(), VTime::from_nanos(3 * n));
    assert_eq!(dst.read_failovers(), n);
}

#[test]
fn merge_after_quiesce_matches_parallel_totals() {
    // Per-thread private recorders merged once at the end (the pattern the
    // trial driver uses): totals must equal the sum of the parts.
    let parts: Vec<RecoveryCounters> = (0..WRITERS).map(|_| RecoveryCounters::new()).collect();
    std::thread::scope(|s| {
        for part in &parts {
            s.spawn(move || {
                for _ in 0..INCS_PER_WRITER {
                    part.note_retry();
                    part.note_lease_renewal();
                }
            });
        }
    });
    let total = RecoveryCounters::new();
    for part in &parts {
        total.merge(part);
    }
    assert_eq!(total.retries(), WRITERS as u64 * INCS_PER_WRITER);
    assert_eq!(total.lease_renewals(), WRITERS as u64 * INCS_PER_WRITER);
    // merge leaves sources untouched.
    assert_eq!(parts[0].retries(), INCS_PER_WRITER);
}

#[test]
fn reset_then_write_never_underflows() {
    // reset() racing writers must leave a consistent (non-torn) state:
    // afterwards a quiesced drain still conserves everything written
    // after the last reset... which we can't know exactly, so assert the
    // weaker but still load-bearing property: counts stay internally
    // consistent (no panic, value ≤ total written).
    let reg = MetricsRegistry::new();
    let c = reg.counter("test", "r");
    race(
        |_| {
            for _ in 0..INCS_PER_WRITER {
                c.inc();
            }
        },
        || reg.reset(),
    );
    assert!(c.get() <= WRITERS as u64 * INCS_PER_WRITER);
}
