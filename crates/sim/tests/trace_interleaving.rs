//! `TraceLog` parent attribution under interleaved spans from multiple
//! concurrent clients.
//!
//! The per-client open-span stack in `trace.rs` is what keeps one client's
//! nesting from bleeding into another's when span opens/closes interleave —
//! both logically (two clients alternating in one thread) and physically
//! (driver threads racing on the shared ring). These tests pin both down,
//! plus the forked-lane property the commit-path profile relies on: a span
//! opened on a forked context never parents under the forking client's
//! open spans.

use std::sync::Arc;

use vedb_sim::{SimCtx, TraceEvent, TraceLog, VTime};

fn by_id(events: &[TraceEvent], id: u64) -> &TraceEvent {
    events.iter().find(|e| e.id == id).expect("span recorded")
}

#[test]
fn interleaved_clients_keep_separate_parent_stacks() {
    let log = Arc::new(TraceLog::new(64));
    log.enable();
    let mut c1 = SimCtx::new(1, 7);
    let mut c2 = SimCtx::new(2, 7);

    // Open order: c1-outer, c2-outer, c1-inner, c2-inner.
    let a = log.span(&c1, "core", "commit");
    let b = log.span(&c2, "core", "commit");
    c1.advance(VTime::from_micros(1));
    c2.advance(VTime::from_micros(2));
    let a_in = log.span(&c1, "wal", "flush");
    let b_in = log.span(&c2, "wal", "flush");
    // Close order scrambled across clients: c2-inner, c1-inner, c1, c2.
    c2.advance(VTime::from_micros(1));
    b_in.finish(&c2);
    c1.advance(VTime::from_micros(1));
    a_in.finish(&c1);
    a.finish(&c1);
    b.finish(&c2);

    let evs = log.events();
    assert_eq!(evs.len(), 4);
    let roots: Vec<&TraceEvent> = evs.iter().filter(|e| e.parent == 0).collect();
    assert_eq!(roots.len(), 2, "one root per client");
    for ev in &evs {
        if ev.parent != 0 {
            let parent = by_id(&evs, ev.parent);
            assert_eq!(
                parent.client, ev.client,
                "a span must parent under its own client's stack, never a \
                 concurrent client's: {}/{} (c{}) under {}/{} (c{})",
                ev.component, ev.op, ev.client, parent.component, parent.op, parent.client
            );
            assert_eq!(parent.component, "core");
        }
    }
}

#[test]
fn concurrent_driver_threads_never_cross_attribute() {
    // Physical interleaving: N clients on N threads, each opening a
    // three-deep nest per iteration against the one shared ring.
    const CLIENTS: u64 = 4;
    const ITERS: usize = 200;
    let log = Arc::new(TraceLog::new((CLIENTS as usize) * ITERS * 3 + 16));
    log.enable();
    std::thread::scope(|scope| {
        for client in 1..=CLIENTS {
            let log = Arc::clone(&log);
            scope.spawn(move || {
                let mut ctx = SimCtx::new(client, 42);
                for _ in 0..ITERS {
                    let outer = log.span(&ctx, "core", "commit");
                    ctx.advance(VTime::from_nanos(50));
                    let mid = log.span(&ctx, "wal", "flush");
                    ctx.advance(VTime::from_nanos(50));
                    let inner = log.span(&ctx, "astore", "append");
                    ctx.advance(VTime::from_nanos(50));
                    inner.finish(&ctx);
                    mid.finish(&ctx);
                    outer.finish(&ctx);
                }
            });
        }
    });

    let evs = log.events();
    assert_eq!(evs.len(), (CLIENTS as usize) * ITERS * 3);
    for ev in &evs {
        match ev.component {
            "core" => assert_eq!(ev.parent, 0, "commit is always a root"),
            _ => {
                let parent = by_id(&evs, ev.parent);
                assert_eq!(
                    parent.client, ev.client,
                    "cross-client parent edge: #{} (c{}) -> #{} (c{})",
                    ev.id, ev.client, parent.id, parent.client
                );
                // And the nesting shape survives: append under flush,
                // flush under commit.
                match ev.component {
                    "wal" => assert_eq!(parent.component, "core"),
                    "astore" => assert_eq!(parent.component, "wal"),
                    c => panic!("unexpected component {c}"),
                }
            }
        }
    }
}

#[test]
fn forked_lane_spans_stay_roots_under_concurrency() {
    let log = Arc::new(TraceLog::new(256));
    log.enable();
    let mut ctx = SimCtx::new(1, 7);
    let commit = log.span(&ctx, "core", "commit");
    // Replica fan-out: three forked contexts, spans interleaved with the
    // parent's still-open commit.
    for _ in 0..3 {
        let mut rep = ctx.fork();
        let sp = log.span(&rep, "rdma", "write_chain");
        rep.advance(VTime::from_micros(2));
        sp.finish(&rep);
    }
    let flush = log.span(&ctx, "wal", "flush");
    ctx.advance(VTime::from_micros(1));
    flush.finish(&ctx);
    commit.finish(&ctx);

    let evs = log.events();
    let chain: Vec<&TraceEvent> = evs.iter().filter(|e| e.component == "rdma").collect();
    assert_eq!(chain.len(), 3);
    for ev in chain {
        assert_eq!(ev.parent, 0, "forked-lane span must not nest under commit");
        assert_ne!(ev.client, 1);
    }
    // The same-lane child still nests correctly despite the interleaving.
    let flush = evs.iter().find(|e| e.component == "wal").unwrap();
    let commit = evs.iter().find(|e| e.component == "core").unwrap();
    assert_eq!(flush.parent, commit.id);
}
