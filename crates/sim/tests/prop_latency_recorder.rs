//! Property test: [`LatencyRecorder::percentile`] against exact quantiles.
//!
//! The recorder is a log-bucketed histogram (64 magnitude groups × 32
//! linear sub-buckets). Values below 32 ns land in single-value buckets
//! (exact); above that, a bucket spans `2^(mag-5)` ns and reports its
//! midpoint, so the representative is within half a bucket of every sample
//! it holds — a ≤ 1/64 ≈ 1.6% relative error. The property asserts a 3.2%
//! bound (double the analytic worst case) over arbitrary sample sets and
//! percentile ranks, plus exactness below the group-0 boundary.

use proptest::prelude::*;
use vedb_sim::{LatencyRecorder, VTime};

/// Exact quantile under the recorder's own rank rule:
/// `rank = ceil(p/100 * n)`, 1-based into the sorted samples.
fn exact_quantile(sorted: &[u64], p: f64) -> u64 {
    let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

fn sample_strategy() -> impl Strategy<Value = Vec<u64>> {
    // Mix magnitudes: sub-boundary exact values, mid-range, and large
    // (up to ~17 minutes in ns) so several bucket groups participate.
    proptest::collection::vec(
        prop_oneof![
            3 => 0u64..32,
            4 => 32u64..100_000,
            3 => 100_000u64..1_000_000_000_000,
        ],
        1..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn percentile_tracks_exact_quantile(
        samples in sample_strategy(),
        p_raw in 0u64..=1000,
    ) {
        let p = p_raw as f64 / 10.0; // 0.0..=100.0 in tenths
        let rec = LatencyRecorder::new();
        for &s in &samples {
            rec.record(VTime::from_nanos(s));
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();

        let exact = exact_quantile(&sorted, p);
        let got = rec.percentile(p).as_nanos();
        if exact < 32 {
            // Group 0: single-value buckets, the report is exact.
            prop_assert_eq!(got, exact, "group-0 percentile must be exact");
        } else {
            let err = (got as f64 - exact as f64).abs() / exact as f64;
            prop_assert!(
                err <= 0.032,
                "p{p}: got {got}, exact {exact}, rel err {err:.4}"
            );
        }
    }

    #[test]
    fn count_mean_max_are_exact(samples in sample_strategy()) {
        let rec = LatencyRecorder::new();
        let mut sum = 0u64;
        let mut max = 0u64;
        for &s in &samples {
            rec.record(VTime::from_nanos(s));
            sum += s;
            max = max.max(s);
        }
        prop_assert_eq!(rec.count(), samples.len() as u64);
        prop_assert_eq!(rec.max().as_nanos(), max);
        // Mean is tracked with an exact sum, only the division truncates.
        prop_assert_eq!(rec.mean().as_nanos(), sum / samples.len() as u64);
    }
}

/// The group-0 (linear, exact) → group-1 (log-bucketed) handoff sits at 32
/// ns. Probe it through the public API: a single recorded sample reports
/// its own bucket's representative as every percentile.
#[test]
fn group_boundary_buckets() {
    let rep_of = |ns: u64| {
        let r = LatencyRecorder::new();
        r.record(VTime::from_nanos(ns));
        r.p50().as_nanos()
    };
    // Group 0 (0..32): identity.
    assert_eq!(rep_of(0), 0);
    assert_eq!(rep_of(31), 31);
    // Group 1 (32..64): sub-bucket width still 1 ns, so still exact.
    assert_eq!(rep_of(32), 32);
    assert_eq!(rep_of(63), 63);
    // Group 2 (64..128): width-2 buckets reporting midpoints; 64 and 65
    // share the bucket whose representative is 65.
    assert_eq!(rep_of(64), 65);
    assert_eq!(rep_of(65), 65);
    assert_eq!(rep_of(127), 127);
}

/// Values beyond the last bucket must clamp, not panic or wrap.
#[test]
fn huge_values_clamp_to_last_bucket() {
    let r = LatencyRecorder::new();
    r.record(VTime::from_nanos(u64::MAX));
    r.record(VTime::from_nanos(u64::MAX - 1));
    assert_eq!(r.count(), 2);
    assert_eq!(r.max().as_nanos(), u64::MAX);
    assert!(r.p50() <= r.max());
}
