//! The calibrated latency model.
//!
//! Every device/network constant used anywhere in the reproduction lives in
//! [`LatencyModel`], so the whole simulation is calibrated in one place.
//! [`LatencyModel::paper_default`] is tuned to the paper's anchor numbers:
//!
//! * AStore small read ≈ 10 µs, small append ≈ 20 µs (§IV),
//! * 16 KB EBP page read ≈ 20 µs (§V-C),
//! * 256 KB one-sided RDMA write ≈ 0.1 ms (§V-A),
//! * PageStore remote page read ≈ 1 ms (§V-C),
//! * Table II: single-threaded 4 KB log write — 0.638 ms over the SSD/TCP
//!   LogStore vs 0.086 ms over AStore.
//!
//! Transfers are **pipelined**: a transfer of `n` KB costs
//! `base + n * max(wire_per_kb, media_per_kb)` — wire and media stream
//! concurrently, so the slower of the two sets the per-byte rate. This is
//! what makes a 256 KB RDMA write land near line rate (~0.1 ms) instead of
//! the sum of wire and media costs.

use crate::time::VTime;

/// Nanoseconds helper for terser constants below.
const fn us(n: u64) -> u64 {
    n * 1_000
}

/// Calibrated service times and delays for every simulated device.
///
/// All `*_base_ns` values are fixed per-operation costs; `*_per_kb_ns` values
/// are streaming costs per kilobyte. CPU costs are charged on CPU
/// [`Resource`](crate::resource::Resource)s by the component that performs the
/// work.
#[derive(Clone, Debug)]
pub struct LatencyModel {
    // ---- network fabric ----
    /// One-way propagation + switching delay of the RDMA fabric (pure delay,
    /// not a contended resource).
    pub wire_delay_ns: u64,
    /// Per-KB wire streaming cost (25 Gbps ≈ 320 ns/KB).
    pub wire_per_kb_ns: u64,
    /// Client-side cost to post one work request (MMIO doorbell etc.).
    pub rdma_issue_ns: u64,
    /// Round-trip base of the kernel TCP/RPC path used by LogStore/PageStore.
    pub rpc_rtt_ns: u64,
    /// Server CPU consumed to receive, dispatch and answer one RPC.
    pub rpc_server_cpu_ns: u64,
    /// Mean of the exponential scheduling jitter added to every RPC
    /// (thread wake-up, run-queue delay — the paper's latency spikes).
    pub rpc_jitter_mean_ns: u64,

    // ---- PMem device (per AStore server) ----
    /// Fixed media cost of a PMem read.
    pub pmem_read_base_ns: u64,
    /// Streaming read cost per KB.
    pub pmem_read_per_kb_ns: u64,
    /// Fixed media cost of a PMem write reaching the persistence domain.
    pub pmem_write_base_ns: u64,
    /// Streaming write cost per KB.
    pub pmem_write_per_kb_ns: u64,
    /// Concurrent access lanes per PMem device before queueing (Optane DIMMs
    /// degrade past a small number of concurrent accessors — §VII-A's
    /// "CPU-bound under high concurrency" observation).
    pub pmem_lanes: usize,

    // ---- SSD device (per Page/LogStore server) ----
    /// Fixed cost of an SSD read through the blob-store stack.
    pub ssd_read_base_ns: u64,
    /// Streaming read cost per KB.
    pub ssd_read_per_kb_ns: u64,
    /// Fixed cost of an SSD write through the blob-store stack (journaling,
    /// fsync batching — effective, not raw NAND, cost).
    pub ssd_write_base_ns: u64,
    /// Streaming write cost per KB.
    pub ssd_write_per_kb_ns: u64,
    /// Parallel channels per SSD box.
    pub ssd_lanes: usize,

    // ---- DBEngine CPU costs ----
    /// Buffer-pool hit: latch + pointer chase.
    pub cpu_bp_hit_ns: u64,
    /// Per-row cost of scanning a row in a page (copy + visibility).
    pub cpu_row_scan_ns: u64,
    /// Per-row cost of evaluating a simple predicate or aggregate update.
    pub cpu_row_eval_ns: u64,
    /// Per-row cost of an insert/update/delete (slot bookkeeping, logging).
    pub cpu_row_write_ns: u64,
    /// B+Tree traversal cost per level.
    pub cpu_btree_level_ns: u64,
    /// Fixed begin+commit bookkeeping per transaction.
    pub cpu_txn_overhead_ns: u64,
    /// SDK cost to build/submit one AStore write (segment meta update etc.).
    pub cpu_astore_sdk_ns: u64,
    /// SDK cost on the LogStore path (buffer copy + async submit + callback
    /// thread context switch — the costs §V-B says AStore eliminates).
    pub cpu_logstore_sdk_ns: u64,
    /// Cost to serialize/deserialize one push-down plan fragment.
    pub cpu_fragment_codec_ns: u64,
}

impl LatencyModel {
    /// The calibration used for every experiment (see module docs).
    pub fn paper_default() -> Self {
        LatencyModel {
            wire_delay_ns: 1_500,
            wire_per_kb_ns: 320,
            rdma_issue_ns: 700,
            rpc_rtt_ns: us(120),
            rpc_server_cpu_ns: us(30),
            rpc_jitter_mean_ns: us(40),

            pmem_read_base_ns: us(3),
            pmem_read_per_kb_ns: 600,
            pmem_write_base_ns: us(16),
            pmem_write_per_kb_ns: 350,
            pmem_lanes: 7,

            ssd_read_base_ns: us(250),
            ssd_read_per_kb_ns: us(20),
            ssd_write_base_ns: us(350),
            ssd_write_per_kb_ns: us(15),
            ssd_lanes: 8,

            cpu_bp_hit_ns: 500,
            cpu_row_scan_ns: 150,
            cpu_row_eval_ns: 50,
            cpu_row_write_ns: 1_000,
            cpu_btree_level_ns: 400,
            cpu_txn_overhead_ns: us(5),
            cpu_astore_sdk_ns: us(30),
            cpu_logstore_sdk_ns: us(8),
            cpu_fragment_codec_ns: us(20),
        }
    }

    /// Pipelined transfer cost: `base + kb * max(wire, media)` (see module
    /// docs). `len` in bytes; partial KBs round up.
    #[inline]
    fn xfer(base_ns: u64, media_per_kb_ns: u64, wire_per_kb_ns: u64, len: usize) -> VTime {
        let kb = (len as u64).div_ceil(1024);
        VTime::from_nanos(base_ns + kb * media_per_kb_ns.max(wire_per_kb_ns))
    }

    /// Service time of a PMem read of `len` bytes (media + streamed wire).
    pub fn pmem_read_svc(&self, len: usize) -> VTime {
        Self::xfer(
            self.pmem_read_base_ns,
            self.pmem_read_per_kb_ns,
            self.wire_per_kb_ns,
            len,
        )
    }

    /// Service time of a PMem write of `len` bytes into the persistence
    /// domain (media + streamed wire).
    pub fn pmem_write_svc(&self, len: usize) -> VTime {
        Self::xfer(
            self.pmem_write_base_ns,
            self.pmem_write_per_kb_ns,
            self.wire_per_kb_ns,
            len,
        )
    }

    /// Service time of an SSD read of `len` bytes.
    pub fn ssd_read_svc(&self, len: usize) -> VTime {
        Self::xfer(self.ssd_read_base_ns, self.ssd_read_per_kb_ns, 0, len)
    }

    /// Service time of an SSD write of `len` bytes.
    pub fn ssd_write_svc(&self, len: usize) -> VTime {
        Self::xfer(self.ssd_write_base_ns, self.ssd_write_per_kb_ns, 0, len)
    }

    /// One-way wire delay (pure latency; bandwidth is charged via
    /// `*_per_kb` inside the transfer costs).
    pub fn wire_delay(&self) -> VTime {
        VTime::from_nanos(self.wire_delay_ns)
    }

    /// Cost to post one RDMA work request from the client.
    pub fn rdma_issue(&self) -> VTime {
        VTime::from_nanos(self.rdma_issue_ns)
    }

    /// TCP/RPC round-trip base.
    pub fn rpc_rtt(&self) -> VTime {
        VTime::from_nanos(self.rpc_rtt_ns)
    }

    /// Server CPU charged per RPC.
    pub fn rpc_server_cpu(&self) -> VTime {
        VTime::from_nanos(self.rpc_server_cpu_ns)
    }

    /// Mean of the exponential RPC scheduling jitter.
    pub fn rpc_jitter_mean(&self) -> VTime {
        VTime::from_nanos(self.rpc_jitter_mean_ns)
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_rounds_up_partial_kb() {
        let m = LatencyModel::paper_default();
        assert_eq!(m.pmem_read_svc(1), m.pmem_read_svc(1024));
        assert!(m.pmem_read_svc(1025) > m.pmem_read_svc(1024));
    }

    #[test]
    fn anchor_16kb_page_read_near_20us() {
        let m = LatencyModel::paper_default();
        // media read + wire rtt + issue, as composed by the rdma layer
        let total = m.pmem_read_svc(16 * 1024).as_nanos() + 2 * m.wire_delay_ns + m.rdma_issue_ns;
        let total_us = total as f64 / 1e3;
        assert!(
            (12.0..=28.0).contains(&total_us),
            "16KB EBP read should be ~20us, got {total_us:.1}us"
        );
    }

    #[test]
    fn anchor_256kb_write_near_100us() {
        let m = LatencyModel::paper_default();
        let total = m.pmem_write_svc(256 * 1024).as_nanos() + 2 * m.wire_delay_ns;
        let total_us = total as f64 / 1e3;
        assert!(
            (80.0..=140.0).contains(&total_us),
            "256KB RDMA write should be ~100us, got {total_us:.1}us"
        );
    }

    #[test]
    fn pmem_write_faster_than_ssd_write() {
        let m = LatencyModel::paper_default();
        for len in [64, 4096, 16 * 1024, 256 * 1024] {
            assert!(m.pmem_write_svc(len) < m.ssd_write_svc(len));
            assert!(m.pmem_read_svc(len) < m.ssd_read_svc(len));
        }
    }

    #[test]
    fn serde_roundtrip() {
        let m = LatencyModel::paper_default();
        // serde support exists so benches can dump the calibration next to
        // results; spot-check it works through the Debug representation.
        let dbg = format!("{m:?}");
        assert!(dbg.contains("pmem_write_base_ns"));
    }
}
