//! Causal trace spans over virtual time.
//!
//! A [`TraceLog`] is a bounded ring buffer of [`TraceEvent`]s shared by every
//! subsystem of a deployment (it lives inside the
//! [`MetricsRegistry`](crate::metrics::MetricsRegistry)). Instrumented code
//! opens a span around an operation:
//!
//! ```
//! use vedb_sim::{MetricsRegistry, SimCtx, VTime};
//!
//! let reg = MetricsRegistry::detached();
//! reg.trace().enable();
//! let mut ctx = SimCtx::new(0, 42);
//! let sp = vedb_sim::span!(reg, &mut ctx, "astore", "append");
//! ctx.advance(VTime::from_micros(3)); // ... the operation ...
//! sp.finish(&mut ctx);
//! ```
//!
//! Spans opened while another span of the same client is active record that
//! span as their parent, so a dump reconstructs the causal tree
//! (`core/commit` → `wal/flush` → `astore/append` → `rdma/chain`). Tracing is
//! **off by default**: a disabled log hands out inert guards without taking
//! any lock, so the only per-span cost is one relaxed atomic load — the
//! zero-cost-when-disabled half of the observability policy (counters, by
//! contrast, are always on).
//!
//! Chaos tests enable the log at deployment start and call
//! [`TraceLog::dump`] from failure paths, so a red assertion comes with the
//! last N spans of virtual-time history attached.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::time::{SimCtx, VTime};

/// One completed (or abandoned) span: an operation on a component, with the
/// virtual-time interval it covered and the span it was causally nested in.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Unique span id (1-based; ids are assigned at span open).
    pub id: u64,
    /// Id of the enclosing span of the same client, or 0 for a root span.
    pub parent: u64,
    /// Simulated client the span ran on.
    pub client: u64,
    /// Subsystem, e.g. `"rdma"`.
    pub component: &'static str,
    /// Operation, e.g. `"write_chain"`.
    pub op: &'static str,
    /// Virtual time the span opened.
    pub start: VTime,
    /// Virtual time the span finished (== `start` if the guard was dropped
    /// without an explicit finish).
    pub end: VTime,
    /// `true` when the guard was dropped without [`SpanGuard::finish`] —
    /// typically an early-return error path. Abandoned spans carry no
    /// duration; profile aggregation excludes them instead of counting
    /// phantom zero-length operations.
    pub abandoned: bool,
}

struct TraceBuf {
    events: VecDeque<TraceEvent>,
    /// Stack of open span ids per client, for parent attribution.
    open: HashMap<u64, Vec<u64>>,
}

/// Bounded ring buffer of causal trace spans (see module docs).
pub struct TraceLog {
    enabled: AtomicBool,
    next_id: AtomicU64,
    cap: AtomicUsize,
    buf: Mutex<TraceBuf>,
}

impl TraceLog {
    /// Default ring capacity: enough for the tail of a chaos run without
    /// letting a long benchmark grow without bound.
    pub const DEFAULT_CAPACITY: usize = 16 * 1024;

    /// New, disabled log holding at most `cap` events (oldest evicted first).
    pub fn new(cap: usize) -> Self {
        TraceLog {
            enabled: AtomicBool::new(false),
            next_id: AtomicU64::new(1),
            cap: AtomicUsize::new(cap.max(1)),
            buf: Mutex::new(TraceBuf {
                events: VecDeque::new(),
                open: HashMap::new(),
            }),
        }
    }

    /// Change the ring capacity (profiling runs need more history than the
    /// chaos-tail default). Shrinking evicts the oldest events immediately.
    pub fn set_capacity(&self, cap: usize) {
        let cap = cap.max(1);
        let mut buf = self.buf.lock();
        self.cap.store(cap, Ordering::Relaxed);
        while buf.events.len() > cap {
            buf.events.pop_front();
        }
    }

    /// Turn span recording on.
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Turn span recording off; open guards become no-ops on finish.
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Relaxed);
    }

    /// Whether spans are currently recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Open a span for `component`/`op` on `ctx`'s client. Returns an inert
    /// guard (no lock taken, no id burned) when the log is disabled.
    pub fn span(
        self: &Arc<Self>,
        ctx: &SimCtx,
        component: &'static str,
        op: &'static str,
    ) -> SpanGuard {
        if !self.is_enabled() {
            return SpanGuard { inner: None };
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        // Spans stack per *trace lane*, not per driver client id: a forked
        // context (replica fan-out, async shipping) runs causally parallel
        // work and must not nest under — or pop — the parent's open spans.
        let client = ctx.trace_client();
        let parent = {
            let mut buf = self.buf.lock();
            let stack = buf.open.entry(client).or_default();
            let parent = stack.last().copied().unwrap_or(0);
            stack.push(id);
            parent
        };
        SpanGuard {
            inner: Some(SpanInner {
                log: Arc::clone(self),
                id,
                parent,
                client,
                component,
                op,
                start: ctx.now(),
            }),
        }
    }

    /// Record an instantaneous event: a zero-length root span at virtual
    /// time `at` (no open-span stack involvement, so it can be called from
    /// code that has no [`SimCtx`], e.g. fault injection). `client` carries
    /// the subject's identity — for fault events, the node id. No-op when
    /// the log is disabled.
    pub fn instant(&self, at: VTime, component: &'static str, op: &'static str, client: u64) {
        if !self.is_enabled() {
            return;
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let mut buf = self.buf.lock();
        if buf.events.len() >= self.cap.load(Ordering::Relaxed) {
            buf.events.pop_front();
        }
        buf.events.push_back(TraceEvent {
            id,
            parent: 0,
            client,
            component,
            op,
            start: at,
            end: at,
            abandoned: false,
        });
    }

    fn close(&self, inner: SpanInner, end: VTime, abandoned: bool) {
        let mut buf = self.buf.lock();
        if let Some(stack) = buf.open.get_mut(&inner.client) {
            // Spans are strictly nested per client, so the id is at (or, if
            // an intermediate guard was leaked, near) the top of the stack.
            if let Some(pos) = stack.iter().rposition(|&x| x == inner.id) {
                stack.truncate(pos);
            }
        }
        if buf.events.len() >= self.cap.load(Ordering::Relaxed) {
            buf.events.pop_front();
        }
        buf.events.push_back(TraceEvent {
            id: inner.id,
            parent: inner.parent,
            client: inner.client,
            component: inner.component,
            op: inner.op,
            start: inner.start,
            end,
            abandoned,
        });
    }

    /// Copy of the buffered events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.buf.lock().events.iter().cloned().collect()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.buf.lock().events.len()
    }

    /// Whether no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all buffered events and open-span bookkeeping.
    pub fn clear(&self) {
        let mut buf = self.buf.lock();
        buf.events.clear();
        buf.open.clear();
    }

    /// Render the buffer as one line per span, indented by causal depth —
    /// what chaos tests print when an assertion trips.
    pub fn dump(&self) -> String {
        let events = self.events();
        let mut depth: HashMap<u64, usize> = HashMap::new();
        let mut out = String::new();
        for ev in &events {
            let d = depth.get(&ev.parent).map_or(0, |p| p + 1);
            depth.insert(ev.id, d);
            out.push_str(&format!(
                "{:>12} .. {:>12}  c{:<3} {}{}/{}{} (#{} <- #{})\n",
                format!("{}", ev.start),
                format!("{}", ev.end),
                ev.client,
                "  ".repeat(d),
                ev.component,
                ev.op,
                if ev.abandoned { " [abandoned]" } else { "" },
                ev.id,
                ev.parent,
            ));
        }
        out
    }
}

struct SpanInner {
    log: Arc<TraceLog>,
    id: u64,
    parent: u64,
    client: u64,
    component: &'static str,
    op: &'static str,
    start: VTime,
}

/// RAII guard for an open span. Call [`finish`](Self::finish) with the
/// client's context to record the span's end time; a guard dropped without
/// finishing records `end == start` (the span is not lost, but carries no
/// duration — typically an early-return error path).
#[must_use = "a span guard should be finished with the client's SimCtx"]
pub struct SpanGuard {
    inner: Option<SpanInner>,
}

impl SpanGuard {
    /// Close the span at `ctx`'s current virtual time.
    pub fn finish(mut self, ctx: &SimCtx) {
        if let Some(inner) = self.inner.take() {
            let log = Arc::clone(&inner.log);
            log.close(inner, ctx.now(), false);
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            let log = Arc::clone(&inner.log);
            let start = inner.start;
            log.close(inner, start, true);
        }
    }
}

/// Open a trace span on a registry: `span!(registry, ctx, "rdma", "read")`.
///
/// Expands to [`TraceLog::span`] on the registry's trace log; the result is a
/// [`SpanGuard`] to `finish(ctx)` when the operation completes.
#[macro_export]
macro_rules! span {
    ($registry:expr, $ctx:expr, $component:expr, $op:expr) => {
        $registry.trace().span(&*$ctx, $component, $op)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_log_records_nothing() {
        let log = Arc::new(TraceLog::new(16));
        let ctx = SimCtx::new(1, 7);
        let sp = log.span(&ctx, "x", "y");
        sp.finish(&ctx);
        assert!(log.is_empty());
    }

    #[test]
    fn nesting_records_parent_edges() {
        let log = Arc::new(TraceLog::new(16));
        log.enable();
        let mut ctx = SimCtx::new(1, 7);
        let outer = log.span(&ctx, "core", "commit");
        ctx.advance(VTime::from_micros(1));
        let inner = log.span(&ctx, "wal", "flush");
        ctx.advance(VTime::from_micros(2));
        inner.finish(&ctx);
        ctx.advance(VTime::from_micros(1));
        outer.finish(&ctx);

        let evs = log.events();
        assert_eq!(evs.len(), 2);
        // Inner finishes first.
        assert_eq!(evs[0].component, "wal");
        assert_eq!(evs[0].parent, evs[1].id);
        assert_eq!(evs[1].parent, 0);
        assert_eq!(evs[1].end - evs[1].start, VTime::from_micros(4));
        assert!(log.dump().contains("wal/flush"));
    }

    #[test]
    fn ring_capacity_evicts_oldest() {
        let log = Arc::new(TraceLog::new(2));
        log.enable();
        let ctx = SimCtx::new(1, 7);
        for _ in 0..3 {
            log.span(&ctx, "a", "b").finish(&ctx);
        }
        let evs = log.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].id, 2);
    }

    #[test]
    fn dropped_guard_still_closes_stack() {
        let log = Arc::new(TraceLog::new(16));
        log.enable();
        let ctx = SimCtx::new(1, 7);
        {
            let _sp = log.span(&ctx, "a", "dropped");
        }
        let sp2 = log.span(&ctx, "a", "next");
        sp2.finish(&ctx);
        let evs = log.events();
        assert_eq!(evs.len(), 2);
        // The dropped span must not become a dangling parent of `next`.
        assert_eq!(evs[1].parent, 0);
    }

    #[test]
    fn abandoned_spans_carry_the_flag() {
        // Regression: a guard dropped without `finish` used to be
        // indistinguishable from a genuine zero-length span; the flag is
        // what lets profile aggregation exclude it.
        let log = Arc::new(TraceLog::new(16));
        log.enable();
        let mut ctx = SimCtx::new(1, 7);
        {
            let _sp = log.span(&ctx, "astore", "append"); // early-return path
        }
        let sp = log.span(&ctx, "astore", "append");
        sp.finish(&ctx); // finished at the open time: zero-length but real
        ctx.advance(VTime::from_micros(2));
        let sp = log.span(&ctx, "astore", "append");
        ctx.advance(VTime::from_micros(3));
        sp.finish(&ctx);

        let evs = log.events();
        assert_eq!(evs.len(), 3);
        assert!(evs[0].abandoned);
        assert_eq!(evs[0].end, evs[0].start);
        assert!(
            !evs[1].abandoned,
            "explicit zero-length finish is not abandoned"
        );
        assert!(!evs[2].abandoned);
        assert!(log.dump().contains("[abandoned]"));
    }

    #[test]
    fn set_capacity_grows_and_shrinks() {
        let log = Arc::new(TraceLog::new(2));
        log.enable();
        let ctx = SimCtx::new(1, 7);
        for _ in 0..3 {
            log.span(&ctx, "a", "b").finish(&ctx);
        }
        assert_eq!(log.len(), 2);
        log.set_capacity(8);
        for _ in 0..4 {
            log.span(&ctx, "a", "b").finish(&ctx);
        }
        assert_eq!(log.len(), 6);
        // Shrinking evicts the oldest immediately.
        log.set_capacity(3);
        assert_eq!(log.len(), 3);
        let evs = log.events();
        assert_eq!(evs[0].id, 5);
    }

    #[test]
    fn instants_are_zero_length_roots_and_respect_disable() {
        let log = Arc::new(TraceLog::new(16));
        log.instant(VTime::from_millis(1), "fault", "crash", 2);
        assert!(log.is_empty(), "disabled log must drop instants");
        log.enable();
        let ctx = SimCtx::new(1, 7);
        let sp = log.span(&ctx, "core", "commit");
        log.instant(VTime::from_millis(3), "fault", "crash", 2);
        sp.finish(&ctx);
        let evs = log.events();
        assert_eq!(evs.len(), 2);
        let fault = &evs[0];
        assert_eq!(fault.component, "fault");
        assert_eq!(fault.parent, 0, "instants never nest under open spans");
        assert_eq!(fault.client, 2);
        assert_eq!(fault.start, fault.end);
        assert!(!fault.abandoned);
        // The open-span stack was untouched: commit still closes as a root.
        assert_eq!(evs[1].parent, 0);
    }

    #[test]
    fn forked_context_spans_do_not_nest_under_parent() {
        let log = Arc::new(TraceLog::new(16));
        log.enable();
        let mut ctx = SimCtx::new(1, 7);
        let outer = log.span(&ctx, "core", "commit");
        // Off-critical-path work in a forked lane: must be a root span, and
        // closing it must not pop the parent's open stack.
        let fork = ctx.fork();
        let shipped = log.span(&fork, "pagestore", "ship");
        shipped.finish(&fork);
        let inner = log.span(&ctx, "wal", "flush");
        inner.finish(&ctx);
        outer.finish(&ctx);

        let evs = log.events();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].component, "pagestore");
        assert_eq!(evs[0].parent, 0, "forked span must be a root");
        assert_ne!(evs[0].client, 1, "forked span records its own lane");
        assert_eq!(evs[1].component, "wal");
        assert_eq!(evs[1].parent, evs[2].id, "same-lane nesting still works");
    }
}
