//! The Table I cluster, encoded as simulation resources.
//!
//! [`ClusterSpec`] captures the evaluation cluster of the paper (counts and
//! core/lane numbers); [`SimEnv`] instantiates it into live [`Resource`]s
//! shared by every component of a single experiment. One `SimEnv` == one
//! deployed cluster.

use std::sync::Arc;

use crate::fault::FaultPlan;
use crate::latency::LatencyModel;
use crate::metrics::MetricsRegistry;
use crate::resource::Resource;
use crate::time::VTime;

/// Per-node bundle of contended resources.
pub struct NodeRes {
    /// Human-readable name, e.g. `astore-1`.
    pub name: String,
    /// The node's CPU cores.
    pub cpu: Arc<Resource>,
    /// The node's NIC link(s) — occupancy models bandwidth serialization.
    pub nic: Arc<Resource>,
    /// PMem device, present on AStore servers.
    pub pmem: Option<Arc<Resource>>,
    /// SSD array, present on Page/LogStore servers.
    pub ssd: Option<Arc<Resource>>,
    /// Deployment-wide metric registry (the same instance as
    /// [`SimEnv::metrics`]), so server-side components built from a node
    /// handle publish into the cluster's report.
    pub metrics: Arc<MetricsRegistry>,
}

/// Shape of the simulated cluster (defaults mirror Table I).
#[derive(Clone, Debug)]
pub struct ClusterSpec {
    /// AStore data servers (Table I: 3 bare-metal boxes + root server).
    pub astore_servers: usize,
    /// Cores per AStore server (Xeon 8260: 96).
    pub astore_cores: usize,
    /// NIC ports per AStore server (2 × ConnectX-5 25 Gbps).
    pub astore_nic_ports: usize,
    /// Page/LogStore data servers (3 boxes + root server).
    pub storage_servers: usize,
    /// Cores per Page/LogStore server (Xeon 5218: 64).
    pub storage_cores: usize,
    /// NIC ports per storage server.
    pub storage_nic_ports: usize,
    /// DBEngine VM cores (Table I: 20-core VM).
    pub engine_cores: usize,
    /// Latency calibration to use.
    pub model: LatencyModel,
}

impl ClusterSpec {
    /// The Table I configuration.
    pub fn paper_default() -> Self {
        ClusterSpec {
            astore_servers: 3,
            astore_cores: 96,
            astore_nic_ports: 2,
            storage_servers: 3,
            storage_cores: 64,
            storage_nic_ports: 1,
            engine_cores: 20,
            model: LatencyModel::paper_default(),
        }
    }

    /// A small configuration for fast unit tests (single server each).
    pub fn tiny() -> Self {
        ClusterSpec {
            astore_servers: 1,
            astore_cores: 8,
            astore_nic_ports: 1,
            storage_servers: 1,
            storage_cores: 8,
            storage_nic_ports: 1,
            engine_cores: 4,
            model: LatencyModel::paper_default(),
        }
    }

    /// Override the DBEngine core count (Table III rows use 32/16/8).
    pub fn with_engine_cores(mut self, cores: usize) -> Self {
        self.engine_cores = cores;
        self
    }

    /// Instantiate the cluster into live resources. Every resource is
    /// built with [`Resource::with_metrics`], so per-resource wait/service
    /// histograms and utilization timelines land in the deployment
    /// registry; the fault plan gets the deployment trace log, so
    /// timestamped injections show up as `fault/*` events in reports.
    pub fn build(self) -> Arc<SimEnv> {
        let metrics = Arc::new(MetricsRegistry::new());
        let astore_nodes = (0..self.astore_servers)
            .map(|i| {
                Arc::new(NodeRes {
                    name: format!("astore-{i}"),
                    cpu: Arc::new(Resource::with_metrics(
                        format!("astore-{i}.cpu"),
                        self.astore_cores,
                        &metrics,
                    )),
                    nic: Arc::new(Resource::with_metrics(
                        format!("astore-{i}.nic"),
                        self.astore_nic_ports,
                        &metrics,
                    )),
                    pmem: Some(Arc::new(Resource::with_metrics(
                        format!("astore-{i}.pmem"),
                        self.model.pmem_lanes,
                        &metrics,
                    ))),
                    ssd: None,
                    metrics: Arc::clone(&metrics),
                })
            })
            .collect();
        let storage_nodes = (0..self.storage_servers)
            .map(|i| {
                Arc::new(NodeRes {
                    name: format!("storage-{i}"),
                    cpu: Arc::new(Resource::with_metrics(
                        format!("storage-{i}.cpu"),
                        self.storage_cores,
                        &metrics,
                    )),
                    nic: Arc::new(Resource::with_metrics(
                        format!("storage-{i}.nic"),
                        self.storage_nic_ports,
                        &metrics,
                    )),
                    pmem: None,
                    ssd: Some(Arc::new(Resource::with_metrics(
                        format!("storage-{i}.ssd"),
                        self.model.ssd_lanes,
                        &metrics,
                    ))),
                    metrics: Arc::clone(&metrics),
                })
            })
            .collect();
        let faults = Arc::new(FaultPlan::new());
        faults.attach_trace(Arc::clone(metrics.trace()));
        Arc::new(SimEnv {
            engine_cpu: Arc::new(Resource::with_metrics(
                "engine.cpu",
                self.engine_cores,
                &metrics,
            )),
            engine_nic: Arc::new(Resource::with_metrics("engine.nic", 1, &metrics)),
            astore_nodes,
            storage_nodes,
            faults,
            model: self.model,
            metrics,
        })
    }
}

/// A live simulated cluster: the resources every component charges time on.
pub struct SimEnv {
    /// DBEngine VM cores.
    pub engine_cpu: Arc<Resource>,
    /// DBEngine NIC link.
    pub engine_nic: Arc<Resource>,
    /// AStore data servers (PMem-equipped).
    pub astore_nodes: Vec<Arc<NodeRes>>,
    /// Page/LogStore data servers (SSD-equipped).
    pub storage_nodes: Vec<Arc<NodeRes>>,
    /// Shared failure-injection switches.
    pub faults: Arc<FaultPlan>,
    /// Latency calibration.
    pub model: LatencyModel,
    /// Deployment-wide metric registry every subsystem publishes into.
    pub metrics: Arc<MetricsRegistry>,
}

impl SimEnv {
    /// Reset all resource timelines and counters (between benchmark phases).
    pub fn reset_resources(&self) {
        self.engine_cpu.reset();
        self.engine_nic.reset();
        for n in self.astore_nodes.iter().chain(self.storage_nodes.iter()) {
            n.cpu.reset();
            n.nic.reset();
            if let Some(p) = &n.pmem {
                p.reset();
            }
            if let Some(s) = &n.ssd {
                s.reset();
            }
        }
    }

    /// Total engine CPU busy time (for utilization reports).
    pub fn engine_cpu_busy(&self) -> VTime {
        self.engine_cpu.total_busy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_table1() {
        let env = ClusterSpec::paper_default().build();
        assert_eq!(env.astore_nodes.len(), 3);
        assert_eq!(env.storage_nodes.len(), 3);
        assert_eq!(env.engine_cpu.lanes(), 20);
        assert!(env.astore_nodes[0].pmem.is_some());
        assert!(env.astore_nodes[0].ssd.is_none());
        assert!(env.storage_nodes[0].ssd.is_some());
        assert!(env.storage_nodes[0].pmem.is_none());
        assert_eq!(env.astore_nodes[0].cpu.lanes(), 96);
    }

    #[test]
    fn engine_cores_override() {
        let env = ClusterSpec::paper_default().with_engine_cores(8).build();
        assert_eq!(env.engine_cpu.lanes(), 8);
    }

    #[test]
    fn build_attaches_resource_metrics_and_fault_trace() {
        let env = ClusterSpec::tiny().build();
        let gauges = env.metrics.gauge_values();
        // Every resource advertises its parallelism under <name>.lanes.
        for key in [
            "engine.cpu.lanes",
            "engine.nic.lanes",
            "astore-0.cpu.lanes",
            "astore-0.nic.lanes",
            "astore-0.pmem.lanes",
            "storage-0.cpu.lanes",
            "storage-0.nic.lanes",
            "storage-0.ssd.lanes",
        ] {
            assert!(gauges.get(key).is_some_and(|v| *v > 0), "missing {key}");
        }
        // Acquisitions split into wait/service histograms on the registry.
        env.engine_cpu.acquire(VTime::ZERO, VTime::from_micros(5));
        let lats = env.metrics.latency_handles();
        let wait = lats.iter().find(|(k, _)| k == "engine.cpu.wait").unwrap();
        assert_eq!(wait.1.count(), 1);
        // Fault injections with timestamps reach the deployment trace log.
        env.metrics.trace().enable();
        env.faults.crash_at(VTime::from_millis(1), 0);
        let evs = env.metrics.trace().events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].component, "fault");
        env.metrics.trace().disable();
    }

    #[test]
    fn reset_clears_all() {
        let env = ClusterSpec::tiny().build();
        env.engine_cpu.acquire(VTime::ZERO, VTime::from_micros(5));
        env.astore_nodes[0]
            .pmem
            .as_ref()
            .unwrap()
            .acquire(VTime::ZERO, VTime::from_micros(5));
        env.reset_resources();
        assert_eq!(env.engine_cpu.total_busy(), VTime::ZERO);
        assert_eq!(env.astore_nodes[0].pmem.as_ref().unwrap().ops(), 0);
    }
}
