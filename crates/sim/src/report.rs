//! Serialisable run reports: registry snapshots + trial results as JSON.
//!
//! A [`RunReport`] freezes one benchmark run — throughput, the committed-op
//! latency distribution, and every subsystem counter/gauge/histogram from the
//! deployment's [`MetricsRegistry`] — into a plain-data struct with a
//! hand-rolled, **byte-deterministic** JSON encoding (`BTreeMap` key order,
//! integer nanoseconds, no wall-clock anywhere). Two runs of the same seeded
//! workload therefore serialise to identical bytes, which the determinism
//! regression test asserts, and `crates/bench` writes these out as
//! `BENCH_<figure>.json` artifacts so every PR leaves a machine-readable perf
//! baseline behind.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::metrics::{LatencyRecorder, MetricsRegistry, Timeline, TrialResult};
use crate::profile::Profile;

/// Five-number summary of a latency histogram, in integer nanoseconds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: u64,
    /// Mean, ns.
    pub mean_ns: u64,
    /// Median, ns.
    pub p50_ns: u64,
    /// 95th percentile, ns.
    pub p95_ns: u64,
    /// 99th percentile, ns.
    pub p99_ns: u64,
    /// Maximum (exact, not bucketed), ns.
    pub max_ns: u64,
}

impl LatencySummary {
    /// Summarise a recorder's current contents.
    pub fn from_recorder(r: &LatencyRecorder) -> Self {
        LatencySummary {
            count: r.count(),
            mean_ns: r.mean().as_nanos(),
            p50_ns: r.p50().as_nanos(),
            p95_ns: r.p95().as_nanos(),
            p99_ns: r.p99().as_nanos(),
            max_ns: r.max().as_nanos(),
        }
    }

    fn write_json(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"count\": {}, \"mean_ns\": {}, \"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}}}",
            self.count, self.mean_ns, self.p50_ns, self.p95_ns, self.p99_ns, self.max_ns
        );
    }
}

/// Saturation summary of one simulated resource (a `Resource` built with
/// `with_metrics`): parallelism, totals, the wait/service split, and a
/// steady-state utilization estimate from the trailing half of the
/// resource's `util_busy_ns` timeline buckets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResourceSummary {
    /// Parallel lanes (servers) of the resource.
    pub lanes: i64,
    /// Operations served.
    pub ops: u64,
    /// Total service time charged, ns.
    pub busy_ns: u64,
    /// Steady-state utilization in hundredths of a percent (integer math;
    /// `1234` renders as `12.34`). Computed over the trailing half of the
    /// sampled utilization buckets, so warm-up ramp is excluded.
    pub steady_util_x100: u64,
    /// Queueing-delay distribution (`start - now` per acquisition).
    pub wait: LatencySummary,
    /// Service-time distribution.
    pub service: LatencySummary,
}

/// Steady-state utilization from a busy-ns-per-bucket timeline: sum the
/// trailing half of the sampled buckets and divide by the covered bucket
/// span times the lane count. Returns hundredths of a percent.
fn steady_util_x100(tl: &Timeline, lanes: i64) -> u64 {
    if lanes <= 0 {
        return 0;
    }
    let samples = tl.snapshot();
    if samples.is_empty() {
        return 0;
    }
    let idxs: Vec<u64> = samples.keys().copied().collect();
    let first = idxs[idxs.len() / 2];
    let last = *idxs.last().unwrap();
    let busy: i64 = samples.range(first..).map(|(_, v)| *v).sum();
    let window = (last - first + 1) as u128 * tl.bucket_ns() as u128 * lanes as u128;
    if window == 0 || busy <= 0 {
        return 0;
    }
    (busy as u128 * 10_000 / window) as u64
}

/// One benchmark run, frozen for export (see module docs).
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Report name; becomes the `<figure>` part of `BENCH_<figure>.json`.
    pub name: String,
    /// Committed operations in the measurement window.
    pub committed: u64,
    /// Aborted operations in the measurement window.
    pub aborted: u64,
    /// Measurement window length, virtual ns.
    pub window_ns: u64,
    /// Latency distribution of committed operations.
    pub latency: LatencySummary,
    /// Every registry counter, keyed `"component.name"`.
    pub counters: BTreeMap<String, u64>,
    /// Every registry gauge, keyed `"component.name"`.
    pub gauges: BTreeMap<String, i64>,
    /// Every registry latency histogram, summarised, keyed
    /// `"component.name"`.
    pub op_latencies: BTreeMap<String, LatencySummary>,
    /// Per-resource saturation summaries, keyed by resource name
    /// (`engine.cpu`, `astore-0.pmem`, …). A component counts as a
    /// resource when it registered a `<name>.lanes` gauge — which
    /// `Resource::with_metrics` does.
    pub resources: BTreeMap<String, ResourceSummary>,
    /// Folded trace profile: per-op inclusive/self time, commit-phase
    /// accounting, timeline snapshots. Empty (but present in the JSON) when
    /// tracing was off for the run.
    pub profile: Profile,
}

impl RunReport {
    /// Freeze `registry` (and, when present, a trial's throughput/latency
    /// numbers) into a report named `name`.
    pub fn collect(name: &str, trial: Option<&TrialResult>, registry: &MetricsRegistry) -> Self {
        let (committed, aborted, window_ns, latency) = match trial {
            Some(t) => (
                t.committed,
                t.aborted,
                t.window.as_nanos(),
                LatencySummary::from_recorder(&t.latency),
            ),
            None => (
                0,
                0,
                0,
                LatencySummary::from_recorder(&LatencyRecorder::new()),
            ),
        };
        let counters = registry.counter_values();
        let gauges = registry.gauge_values();
        let op_latencies: BTreeMap<String, LatencySummary> = registry
            .latency_handles()
            .into_iter()
            .map(|(k, r)| (k, LatencySummary::from_recorder(&r)))
            .collect();
        let timelines: BTreeMap<String, std::sync::Arc<Timeline>> =
            registry.timeline_handles().into_iter().collect();
        let empty = LatencySummary::from_recorder(&LatencyRecorder::new());
        let resources: BTreeMap<String, ResourceSummary> = gauges
            .iter()
            .filter_map(|(k, lanes)| {
                let name = k.strip_suffix(".lanes")?;
                Some((
                    name.to_string(),
                    ResourceSummary {
                        lanes: *lanes,
                        ops: counters.get(&format!("{name}.ops")).copied().unwrap_or(0),
                        busy_ns: counters
                            .get(&format!("{name}.busy_ns"))
                            .copied()
                            .unwrap_or(0),
                        steady_util_x100: timelines
                            .get(&format!("{name}.util_busy_ns"))
                            .map(|tl| steady_util_x100(tl, *lanes))
                            .unwrap_or(0),
                        wait: op_latencies
                            .get(&format!("{name}.wait"))
                            .cloned()
                            .unwrap_or_else(|| empty.clone()),
                        service: op_latencies
                            .get(&format!("{name}.service"))
                            .cloned()
                            .unwrap_or_else(|| empty.clone()),
                    },
                ))
            })
            .collect();
        RunReport {
            name: name.to_string(),
            committed,
            aborted,
            window_ns,
            latency,
            counters,
            gauges,
            op_latencies,
            resources,
            profile: Profile::from_registry(registry),
        }
    }

    /// Committed operations per virtual second.
    pub fn throughput(&self) -> f64 {
        if self.window_ns == 0 {
            return 0.0;
        }
        self.committed as f64 / (self.window_ns as f64 / 1e9)
    }

    /// Value of counter `"component.name"`, zero if absent.
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Deterministic JSON encoding: keys sorted (BTreeMap order), times as
    /// integer ns, throughput as a fixed three-decimal number. Byte-identical
    /// across runs of the same seeded workload.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"vedb-bench-report/v3\",");
        let _ = writeln!(out, "  \"name\": \"{}\",", escape(&self.name));
        let _ = writeln!(out, "  \"committed\": {},", self.committed);
        let _ = writeln!(out, "  \"aborted\": {},", self.aborted);
        let _ = writeln!(out, "  \"window_ns\": {},", self.window_ns);
        let _ = writeln!(out, "  \"throughput_per_s\": {:.3},", self.throughput());
        out.push_str("  \"latency\": ");
        self.latency.write_json(&mut out);
        out.push_str(",\n  \"counters\": {");
        let mut first = true;
        for (k, v) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\n    \"{}\": {}", escape(k), v);
        }
        out.push_str("\n  },\n  \"gauges\": {");
        first = true;
        for (k, v) in &self.gauges {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\n    \"{}\": {}", escape(k), v);
        }
        out.push_str("\n  },\n  \"op_latencies\": {");
        first = true;
        for (k, v) in &self.op_latencies {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\n    \"{}\": ", escape(k));
            v.write_json(&mut out);
        }
        out.push_str("\n  },\n  \"resources\": {");
        first = true;
        for (k, r) in &self.resources {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n    \"{}\": {{\"lanes\": {}, \"ops\": {}, \"busy_ns\": {}, \
                 \"steady_util_pct\": {}.{:02}, \"wait\": ",
                escape(k),
                r.lanes,
                r.ops,
                r.busy_ns,
                r.steady_util_x100 / 100,
                r.steady_util_x100 % 100,
            );
            r.wait.write_json(&mut out);
            out.push_str(", \"service\": ");
            r.service.write_json(&mut out);
            out.push('}');
        }
        out.push_str("\n  },\n  \"profile\": ");
        self.profile.write_json(&mut out, "  ");
        out.push_str("\n}\n");
        out
    }
}

impl RunReport {
    /// One-screen `vedb-top`-style text summary: per-resource utilization
    /// (busiest first), the top spans by self time, the top contended
    /// locks, and any fault injections — what a bench run prints at the
    /// end so saturation is visible without opening the JSON.
    pub fn top_summary(&self) -> String {
        use crate::time::VTime;
        let ns = |v: u64| format!("{}", VTime::from_nanos(v));
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== vedb-top: {} ({:.0} op/s over {}) ==",
            self.name,
            self.throughput(),
            VTime::from_nanos(self.window_ns),
        );

        let mut res: Vec<(&String, &ResourceSummary)> = self.resources.iter().collect();
        res.sort_by(|a, b| {
            b.1.steady_util_x100
                .cmp(&a.1.steady_util_x100)
                .then(a.0.cmp(b.0))
        });
        let _ = writeln!(
            out,
            "  {:<16} {:>5} {:>8} {:>7} {:>10} {:>10}",
            "resource", "lanes", "ops", "util%", "wait p99", "svc p99"
        );
        for (name, r) in &res {
            let _ = writeln!(
                out,
                "  {:<16} {:>5} {:>8} {:>4}.{:02} {:>10} {:>10}",
                name,
                r.lanes,
                r.ops,
                r.steady_util_x100 / 100,
                r.steady_util_x100 % 100,
                ns(r.wait.p99_ns),
                ns(r.service.p99_ns),
            );
        }

        let mut spans: Vec<(&String, &crate::profile::OpStat)> = self.profile.ops.iter().collect();
        spans.sort_by(|a, b| b.1.self_ns.cmp(&a.1.self_ns).then(a.0.cmp(b.0)));
        if !spans.is_empty() {
            let _ = writeln!(out, "  top spans by self time:");
            for (k, s) in spans.iter().take(8) {
                let _ = writeln!(
                    out,
                    "    {:<28} count {:>8}  self {:>10}  incl {:>10}",
                    k,
                    s.count,
                    ns(s.self_ns),
                    ns(s.total_ns)
                );
            }
        }

        if !self.profile.locks.top.is_empty() {
            let _ = writeln!(out, "  top contended locks:");
            for l in self.profile.locks.top.iter().take(5) {
                let _ = writeln!(
                    out,
                    "    {:<16} key {:<16} waits {:>6}  total {:>10}  max {:>10}",
                    l.table,
                    l.key_hex,
                    l.waits,
                    ns(l.wait_total_ns),
                    ns(l.wait_max_ns)
                );
            }
        }

        if !self.profile.fault_events.is_empty() {
            let _ = writeln!(
                out,
                "  fault injections: {} (first at {})",
                self.profile.fault_events.len(),
                ns(self.profile.fault_events[0].at_ns)
            );
        }
        out
    }

    /// The profile's folded flamegraph stacks rendered as inferno-style
    /// lines: `frame;frame;frame weight\n`, in deterministic (BTreeMap)
    /// order. Empty string when tracing was off.
    pub fn folded_stacks(&self) -> String {
        let mut out = String::new();
        for (stack, w) in &self.profile.folded {
            let _ = writeln!(out, "{stack} {w}");
        }
        out
    }
}

/// Minimal JSON string escape; metric keys are `[a-z0-9._-]` but report names
/// are caller-supplied.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::VTime;

    fn sample_registry() -> MetricsRegistry {
        let reg = MetricsRegistry::new();
        reg.counter("pmem", "flushes").add(3);
        reg.counter("rdma", "reads").add(7);
        reg.gauge("pmem", "unpersisted_bytes").set(256);
        reg.latency("astore", "append")
            .record(VTime::from_micros(4));
        reg
    }

    #[test]
    fn collect_snapshots_registry() {
        let reg = sample_registry();
        let mut trial = TrialResult::new(VTime::from_millis(100));
        trial.committed = 500;
        trial.latency.record(VTime::from_micros(80));
        let rep = RunReport::collect("unit", Some(&trial), &reg);
        assert_eq!(rep.counter("pmem.flushes"), 3);
        assert_eq!(rep.counter("rdma.reads"), 7);
        assert_eq!(rep.counter("absent.metric"), 0);
        assert_eq!(rep.gauges["pmem.unpersisted_bytes"], 256);
        assert_eq!(rep.op_latencies["astore.append"].count, 1);
        assert!((rep.throughput() - 5000.0).abs() < 1e-9);
    }

    #[test]
    fn json_is_deterministic_and_parsable_shape() {
        let rep = RunReport::collect("fig\"x\"", None, &sample_registry());
        let a = rep.to_json();
        let b = rep.to_json();
        assert_eq!(a, b);
        assert!(a.contains("\"schema\": \"vedb-bench-report/v3\""));
        assert!(a.contains("\"resources\""));
        assert!(a.contains("\"profile\""));
        assert!(a.contains("\"fig\\\"x\\\"\""));
        assert!(a.contains("\"pmem.flushes\": 3"));
        assert!(a.contains("\"rdma.reads\": 7"));
        // Counters serialise in sorted key order.
        let pm = a.find("pmem.flushes").unwrap();
        let rd = a.find("rdma.reads").unwrap();
        assert!(pm < rd);
    }

    #[test]
    fn identical_registries_identical_bytes() {
        let a = RunReport::collect("same", None, &sample_registry()).to_json();
        let b = RunReport::collect("same", None, &sample_registry()).to_json();
        assert_eq!(a, b);
    }

    #[test]
    fn resources_discovered_via_lanes_gauge() {
        use crate::resource::Resource;
        let reg = sample_registry();
        let r = Resource::with_metrics("astore-0.pmem", 2, &reg);
        // Two back-to-back acquisitions: the second queues behind the
        // first once both lanes fill, so wait histograms see traffic.
        for _ in 0..3 {
            r.acquire(VTime::ZERO, VTime::from_micros(10));
        }
        let rep = RunReport::collect("res", None, &reg);
        let rs = &rep.resources["astore-0.pmem"];
        assert_eq!(rs.lanes, 2);
        assert_eq!(rs.ops, 3);
        assert_eq!(rs.busy_ns, 30_000);
        assert_eq!(rs.wait.count, 3);
        assert_eq!(rs.service.count, 3);
        assert_eq!(rs.service.mean_ns, 10_000);
        assert_eq!(rs.service.max_ns, 10_000);
        // Non-resource components don't leak into the section.
        assert!(!rep.resources.contains_key("pmem"));
        let json = rep.to_json();
        assert!(json.contains("\"astore-0.pmem\": {\"lanes\": 2"));
        assert!(json.contains("\"steady_util_pct\""));
    }

    #[test]
    fn top_summary_is_one_screen_and_covers_sections() {
        use crate::resource::Resource;
        let reg = sample_registry();
        let r = Resource::with_metrics("engine.cpu", 1, &reg);
        r.acquire(VTime::ZERO, VTime::from_micros(50));
        let c = reg.lock_contention();
        c.set_label(3, "warehouse");
        c.note_acquire(3);
        c.note_wait(3, b"\x01", VTime::from_micros(9));
        reg.trace().enable();
        {
            use crate::time::SimCtx;
            let mut ctx = SimCtx::new(1, 7);
            let sp = reg.trace().span(&ctx, "core", "commit");
            ctx.advance(VTime::from_micros(4));
            sp.finish(&ctx);
        }
        reg.trace()
            .instant(VTime::from_micros(2), "fault", "crash", 1);
        let mut trial = TrialResult::new(VTime::from_millis(10));
        trial.committed = 42;
        let rep = RunReport::collect("smoke", Some(&trial), &reg);
        let top = rep.top_summary();
        assert!(top.contains("vedb-top: smoke"));
        assert!(top.contains("engine.cpu"));
        assert!(top.contains("top spans by self time"));
        assert!(top.contains("core/commit"));
        assert!(top.contains("top contended locks"));
        assert!(top.contains("warehouse"));
        assert!(top.contains("fault injections: 1"));
        // Folded export matches the profile and ends each line with the
        // integer self-weight — the inferno folded-line contract.
        let folded = rep.folded_stacks();
        assert_eq!(folded, "core/commit 4000\n");
        reg.trace().disable();
    }

    #[test]
    fn profile_section_reflects_trace_spans() {
        use crate::time::SimCtx;
        let reg = sample_registry();
        reg.trace().enable();
        let mut ctx = SimCtx::new(1, 7);
        let commit = reg.trace().span(&ctx, "core", "commit");
        let flush = reg.trace().span(&ctx, "wal", "flush");
        ctx.advance(VTime::from_micros(4));
        flush.finish(&ctx);
        ctx.advance(VTime::from_micros(6));
        commit.finish(&ctx);
        let rep = RunReport::collect("traced", None, &reg);
        assert_eq!(rep.profile.ops["core/commit"].total_ns, 10_000);
        let json = rep.to_json();
        assert!(json.contains("\"commit_phases\""));
        assert!(json.contains("\"wal/flush\""));
    }
}
