//! Serialisable run reports: registry snapshots + trial results as JSON.
//!
//! A [`RunReport`] freezes one benchmark run — throughput, the committed-op
//! latency distribution, and every subsystem counter/gauge/histogram from the
//! deployment's [`MetricsRegistry`] — into a plain-data struct with a
//! hand-rolled, **byte-deterministic** JSON encoding (`BTreeMap` key order,
//! integer nanoseconds, no wall-clock anywhere). Two runs of the same seeded
//! workload therefore serialise to identical bytes, which the determinism
//! regression test asserts, and `crates/bench` writes these out as
//! `BENCH_<figure>.json` artifacts so every PR leaves a machine-readable perf
//! baseline behind.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::metrics::{LatencyRecorder, MetricsRegistry, TrialResult};
use crate::profile::Profile;

/// Five-number summary of a latency histogram, in integer nanoseconds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: u64,
    /// Mean, ns.
    pub mean_ns: u64,
    /// Median, ns.
    pub p50_ns: u64,
    /// 95th percentile, ns.
    pub p95_ns: u64,
    /// 99th percentile, ns.
    pub p99_ns: u64,
    /// Maximum (exact, not bucketed), ns.
    pub max_ns: u64,
}

impl LatencySummary {
    /// Summarise a recorder's current contents.
    pub fn from_recorder(r: &LatencyRecorder) -> Self {
        LatencySummary {
            count: r.count(),
            mean_ns: r.mean().as_nanos(),
            p50_ns: r.p50().as_nanos(),
            p95_ns: r.p95().as_nanos(),
            p99_ns: r.p99().as_nanos(),
            max_ns: r.max().as_nanos(),
        }
    }

    fn write_json(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"count\": {}, \"mean_ns\": {}, \"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}}}",
            self.count, self.mean_ns, self.p50_ns, self.p95_ns, self.p99_ns, self.max_ns
        );
    }
}

/// One benchmark run, frozen for export (see module docs).
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Report name; becomes the `<figure>` part of `BENCH_<figure>.json`.
    pub name: String,
    /// Committed operations in the measurement window.
    pub committed: u64,
    /// Aborted operations in the measurement window.
    pub aborted: u64,
    /// Measurement window length, virtual ns.
    pub window_ns: u64,
    /// Latency distribution of committed operations.
    pub latency: LatencySummary,
    /// Every registry counter, keyed `"component.name"`.
    pub counters: BTreeMap<String, u64>,
    /// Every registry gauge, keyed `"component.name"`.
    pub gauges: BTreeMap<String, i64>,
    /// Every registry latency histogram, summarised, keyed
    /// `"component.name"`.
    pub op_latencies: BTreeMap<String, LatencySummary>,
    /// Folded trace profile: per-op inclusive/self time, commit-phase
    /// accounting, timeline snapshots. Empty (but present in the JSON) when
    /// tracing was off for the run.
    pub profile: Profile,
}

impl RunReport {
    /// Freeze `registry` (and, when present, a trial's throughput/latency
    /// numbers) into a report named `name`.
    pub fn collect(name: &str, trial: Option<&TrialResult>, registry: &MetricsRegistry) -> Self {
        let (committed, aborted, window_ns, latency) = match trial {
            Some(t) => (
                t.committed,
                t.aborted,
                t.window.as_nanos(),
                LatencySummary::from_recorder(&t.latency),
            ),
            None => (
                0,
                0,
                0,
                LatencySummary::from_recorder(&LatencyRecorder::new()),
            ),
        };
        RunReport {
            name: name.to_string(),
            committed,
            aborted,
            window_ns,
            latency,
            counters: registry.counter_values(),
            gauges: registry.gauge_values(),
            op_latencies: registry
                .latency_handles()
                .into_iter()
                .map(|(k, r)| (k, LatencySummary::from_recorder(&r)))
                .collect(),
            profile: Profile::from_registry(registry),
        }
    }

    /// Committed operations per virtual second.
    pub fn throughput(&self) -> f64 {
        if self.window_ns == 0 {
            return 0.0;
        }
        self.committed as f64 / (self.window_ns as f64 / 1e9)
    }

    /// Value of counter `"component.name"`, zero if absent.
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Deterministic JSON encoding: keys sorted (BTreeMap order), times as
    /// integer ns, throughput as a fixed three-decimal number. Byte-identical
    /// across runs of the same seeded workload.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"vedb-bench-report/v2\",");
        let _ = writeln!(out, "  \"name\": \"{}\",", escape(&self.name));
        let _ = writeln!(out, "  \"committed\": {},", self.committed);
        let _ = writeln!(out, "  \"aborted\": {},", self.aborted);
        let _ = writeln!(out, "  \"window_ns\": {},", self.window_ns);
        let _ = writeln!(out, "  \"throughput_per_s\": {:.3},", self.throughput());
        out.push_str("  \"latency\": ");
        self.latency.write_json(&mut out);
        out.push_str(",\n  \"counters\": {");
        let mut first = true;
        for (k, v) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\n    \"{}\": {}", escape(k), v);
        }
        out.push_str("\n  },\n  \"gauges\": {");
        first = true;
        for (k, v) in &self.gauges {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\n    \"{}\": {}", escape(k), v);
        }
        out.push_str("\n  },\n  \"op_latencies\": {");
        first = true;
        for (k, v) in &self.op_latencies {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\n    \"{}\": ", escape(k));
            v.write_json(&mut out);
        }
        out.push_str("\n  },\n  \"profile\": ");
        self.profile.write_json(&mut out, "  ");
        out.push_str("\n}\n");
        out
    }
}

/// Minimal JSON string escape; metric keys are `[a-z0-9._-]` but report names
/// are caller-supplied.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::VTime;

    fn sample_registry() -> MetricsRegistry {
        let reg = MetricsRegistry::new();
        reg.counter("pmem", "flushes").add(3);
        reg.counter("rdma", "reads").add(7);
        reg.gauge("pmem", "unpersisted_bytes").set(256);
        reg.latency("astore", "append")
            .record(VTime::from_micros(4));
        reg
    }

    #[test]
    fn collect_snapshots_registry() {
        let reg = sample_registry();
        let mut trial = TrialResult::new(VTime::from_millis(100));
        trial.committed = 500;
        trial.latency.record(VTime::from_micros(80));
        let rep = RunReport::collect("unit", Some(&trial), &reg);
        assert_eq!(rep.counter("pmem.flushes"), 3);
        assert_eq!(rep.counter("rdma.reads"), 7);
        assert_eq!(rep.counter("absent.metric"), 0);
        assert_eq!(rep.gauges["pmem.unpersisted_bytes"], 256);
        assert_eq!(rep.op_latencies["astore.append"].count, 1);
        assert!((rep.throughput() - 5000.0).abs() < 1e-9);
    }

    #[test]
    fn json_is_deterministic_and_parsable_shape() {
        let rep = RunReport::collect("fig\"x\"", None, &sample_registry());
        let a = rep.to_json();
        let b = rep.to_json();
        assert_eq!(a, b);
        assert!(a.contains("\"schema\": \"vedb-bench-report/v2\""));
        assert!(a.contains("\"profile\""));
        assert!(a.contains("\"fig\\\"x\\\"\""));
        assert!(a.contains("\"pmem.flushes\": 3"));
        assert!(a.contains("\"rdma.reads\": 7"));
        // Counters serialise in sorted key order.
        let pm = a.find("pmem.flushes").unwrap();
        let rd = a.find("rdma.reads").unwrap();
        assert!(pm < rd);
    }

    #[test]
    fn identical_registries_identical_bytes() {
        let a = RunReport::collect("same", None, &sample_registry()).to_json();
        let b = RunReport::collect("same", None, &sample_registry()).to_json();
        assert_eq!(a, b);
    }

    #[test]
    fn profile_section_reflects_trace_spans() {
        use crate::time::SimCtx;
        let reg = sample_registry();
        reg.trace().enable();
        let mut ctx = SimCtx::new(1, 7);
        let commit = reg.trace().span(&ctx, "core", "commit");
        let flush = reg.trace().span(&ctx, "wal", "flush");
        ctx.advance(VTime::from_micros(4));
        flush.finish(&ctx);
        ctx.advance(VTime::from_micros(6));
        commit.finish(&ctx);
        let rep = RunReport::collect("traced", None, &reg);
        assert_eq!(rep.profile.ops["core/commit"].total_ns, 10_000);
        let json = rep.to_json();
        assert!(json.contains("\"commit_phases\""));
        assert!(json.contains("\"wal/flush\""));
    }
}
