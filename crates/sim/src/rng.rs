//! Deterministic random number generation for simulations.
//!
//! All randomness in the reproduction flows through [`SimRng`] so that a
//! benchmark run is a pure function of its seed. The generator is an
//! in-tree xoshiro256++ (fast, non-cryptographic — exactly right for
//! workload generation and latency jitter), seeded through SplitMix64, so
//! the simulation kernel has no external dependency for randomness.

use crate::time::VTime;

/// Types that [`SimRng::gen_range`] can sample uniformly.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)`.
    fn sample_half_open(rng: &mut SimRng, lo: Self, hi: Self) -> Self;
    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive(rng: &mut SimRng, lo: Self, hi: Self) -> Self;
}

/// Range forms accepted by [`SimRng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a uniform sample from the range.
    fn sample_from(self, rng: &mut SimRng) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from(self, rng: &mut SimRng) -> T {
        assert!(self.start < self.end, "gen_range on empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from(self, rng: &mut SimRng) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range on empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open(rng: &mut SimRng, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                let v = rng.next_u64() as u128 % span;
                (lo as i128 + v as i128) as $t
            }
            #[inline]
            fn sample_inclusive(rng: &mut SimRng, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = rng.next_u64() as u128 % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_half_open(rng: &mut SimRng, lo: Self, hi: Self) -> Self {
        lo + rng.gen_f64() * (hi - lo)
    }
    #[inline]
    fn sample_inclusive(rng: &mut SimRng, lo: Self, hi: Self) -> Self {
        lo + rng.gen_f64() * (hi - lo)
    }
}

/// A seeded, deterministic RNG (xoshiro256++).
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Create from a 64-bit seed (state expanded via SplitMix64).
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        SimRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform sample from a range, e.g. `rng.gen_range(0..10)`.
    #[inline]
    pub fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        if p <= 0.0 {
            return false;
        }
        self.gen_f64() < p
    }

    /// Uniform f64 in `[0, 1)`.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        // 53 high bits → uniform double in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Exponentially-distributed virtual-time jitter with the given mean.
    ///
    /// Used to model OS scheduling noise on RPC paths (the paper's "periodic
    /// spikes in latency" for the SSD/TCP LogStore, §V). The sample is capped
    /// at 20× the mean to keep single outliers from dominating short trials.
    pub fn jitter(&mut self, mean: VTime) -> VTime {
        if mean == VTime::ZERO {
            return VTime::ZERO;
        }
        let u: f64 = self.gen_range(1e-12..1.0f64);
        let sample = -u.ln() * mean.as_nanos() as f64;
        let capped = sample.min(mean.as_nanos() as f64 * 20.0);
        VTime::from_nanos(capped as u64)
    }

    /// NURand-style non-uniform random value used by TPC-C (clause 2.1.6).
    ///
    /// `a` is the bit-or window constant (255, 1023, 8191); the C constant is
    /// fixed per-run which is sufficient for reproduction purposes.
    pub fn nurand(&mut self, a: u64, x: u64, y: u64) -> u64 {
        let c = a / 2; // fixed run constant
        (((self.gen_range(0..=a) | self.gen_range(x..=y)) + c) % (y - x + 1)) + x
    }

    /// Zipf-like skewed pick over `n` items: returns an index in `[0, n)`,
    /// where a `hot_fraction` of accesses hit the first item. Used for the
    /// internal order-processing workload's hot vendor rows.
    pub fn skewed_index(&mut self, n: u64, hot_fraction: f64) -> u64 {
        if n <= 1 || self.gen_bool(hot_fraction) {
            0
        } else {
            self.gen_range(1..n)
        }
    }

    /// Random alphanumeric string of the given length (workload payloads).
    pub fn alnum_string(&mut self, len: usize) -> String {
        const CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
        (0..len)
            .map(|_| CHARS[self.gen_range(0..CHARS.len())] as char)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SimRng::new(123);
        let mut b = SimRng::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn jitter_is_nonnegative_and_bounded() {
        let mut rng = SimRng::new(7);
        let mean = VTime::from_micros(30);
        let mut total = 0u64;
        for _ in 0..10_000 {
            let j = rng.jitter(mean);
            assert!(j.as_nanos() <= mean.as_nanos() * 20);
            total += j.as_nanos();
        }
        let avg = total as f64 / 10_000.0;
        // Exponential mean should be close to the requested mean.
        assert!(
            (avg - mean.as_nanos() as f64).abs() < mean.as_nanos() as f64 * 0.15,
            "avg jitter {avg} too far from mean {}",
            mean.as_nanos()
        );
    }

    #[test]
    fn jitter_zero_mean() {
        let mut rng = SimRng::new(7);
        assert_eq!(rng.jitter(VTime::ZERO), VTime::ZERO);
    }

    #[test]
    fn nurand_in_range() {
        let mut rng = SimRng::new(99);
        for _ in 0..1000 {
            let v = rng.nurand(1023, 1, 3000);
            assert!((1..=3000).contains(&v));
        }
    }

    #[test]
    fn skewed_index_hits_hot_item() {
        let mut rng = SimRng::new(5);
        let mut hot = 0;
        for _ in 0..10_000 {
            if rng.skewed_index(100, 0.8) == 0 {
                hot += 1;
            }
        }
        // ~80% + 0.2 * 1/99 stray hits
        assert!(hot > 7_500 && hot < 8_700, "hot hits: {hot}");
    }

    #[test]
    fn alnum_string_len_and_charset() {
        let mut rng = SimRng::new(1);
        let s = rng.alnum_string(32);
        assert_eq!(s.len(), 32);
        assert!(s.chars().all(|c| c.is_ascii_alphanumeric()));
    }
}
