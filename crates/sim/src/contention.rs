//! Lock-contention accounting: per-table wait/hold statistics and the
//! top-K contended keys.
//!
//! The engine's lock manager (in `vedb-core`) reports three events into a
//! deployment-wide [`LockContention`] instance (held by the
//! [`MetricsRegistry`](crate::metrics::MetricsRegistry), like the trace
//! log): an *acquire* on an index space, a *wait* (the acquirer's virtual
//! clock had to jump past a conflicting release) and a *hold* (grant to
//! release). Aggregation happens per index space — labelled with the table
//! or index name by the engine's catalog — plus a per-key table that only
//! materialises keys which actually experienced a wait, so memory stays
//! proportional to contention rather than to the working set.
//!
//! [`LockContention::snapshot`] folds the state into a deterministic
//! [`LockProfile`] (BTreeMap per-table stats, top-K keys sorted by total
//! wait time with a `(space, key)` tiebreak) which
//! [`Profile`](crate::profile::Profile) embeds in the run report.

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::metrics::LatencyRecorder;
use crate::time::VTime;

/// How many contended keys a snapshot reports by default.
pub const DEFAULT_TOP_K: usize = 8;

/// Per-space (table or index) live accumulators.
#[derive(Default)]
struct SpaceStats {
    /// Lock grants on this space.
    acquires: std::sync::atomic::AtomicU64,
    /// Grants that had to wait for a conflicting release.
    waits: std::sync::atomic::AtomicU64,
    /// Virtual-time wait distribution (only contended grants record).
    wait_lat: LatencyRecorder,
    /// Grant-to-release hold-time distribution (every release records).
    hold_lat: LatencyRecorder,
}

impl SpaceStats {
    fn note_acquire(&self) {
        self.acquires
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    fn note_wait(&self, wait: VTime) {
        self.waits
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.wait_lat.record(wait);
    }

    fn note_hold(&self, hold: VTime) {
        self.hold_lat.record(hold);
    }
}

/// Per-key wait accumulator (only keys that experienced ≥1 wait exist).
#[derive(Clone, Copy, Default)]
struct KeyWait {
    count: u64,
    total_ns: u64,
    max_ns: u64,
}

/// Deployment-wide lock-contention accounting (see module docs).
#[derive(Default)]
pub struct LockContention {
    /// Index space → table/index name, set by the engine's catalog.
    labels: RwLock<BTreeMap<u32, String>>,
    /// Per-space accumulators.
    spaces: RwLock<BTreeMap<u32, Arc<SpaceStats>>>,
    /// Per-key wait totals, populated on first wait only.
    hot: Mutex<HashMap<(u32, Vec<u8>), KeyWait>>,
}

impl LockContention {
    /// Fresh, empty accounting.
    pub fn new() -> Self {
        Self::default()
    }

    /// Label `space` with a human-readable table/index name for reports.
    pub fn set_label(&self, space: u32, name: impl Into<String>) {
        self.labels.write().insert(space, name.into());
    }

    /// Get-or-create the accumulator for `space`. Read-locks on the hit
    /// path.
    fn space(&self, space: u32) -> Arc<SpaceStats> {
        if let Some(s) = self.spaces.read().get(&space) {
            return Arc::clone(s);
        }
        Arc::clone(
            self.spaces
                .write()
                .entry(space)
                .or_insert_with(|| Arc::new(SpaceStats::default())),
        )
    }

    /// Record one lock grant on `space`.
    pub fn note_acquire(&self, space: u32) {
        self.space(space).note_acquire();
    }

    /// Record a contended grant: the acquirer waited `wait` virtual time on
    /// `key` before running.
    pub fn note_wait(&self, space: u32, key: &[u8], wait: VTime) {
        self.space(space).note_wait(wait);
        let mut hot = self.hot.lock();
        let e = hot.entry((space, key.to_vec())).or_default();
        e.count += 1;
        e.total_ns += wait.as_nanos();
        e.max_ns = e.max_ns.max(wait.as_nanos());
    }

    /// Record a release: the lock was held for `hold` virtual time.
    pub fn note_hold(&self, space: u32, hold: VTime) {
        self.space(space).note_hold(hold);
    }

    /// Whether anything was recorded.
    pub fn is_empty(&self) -> bool {
        self.spaces.read().is_empty()
    }

    /// Drop all accumulated state (between benchmark phases). Labels are
    /// schema facts, not measurements — they survive.
    pub fn reset(&self) {
        self.spaces.write().clear();
        self.hot.lock().clear();
    }

    /// Fold the live state into a deterministic [`LockProfile`] with at
    /// most `top_k` hot keys.
    pub fn snapshot(&self, top_k: usize) -> LockProfile {
        let labels = self.labels.read();
        let label_of = |space: u32| -> String {
            labels
                .get(&space)
                .cloned()
                .unwrap_or_else(|| format!("space-{space}"))
        };
        let tables: BTreeMap<String, TableLockStat> = self
            .spaces
            .read()
            .iter()
            .map(|(space, st)| {
                (
                    label_of(*space),
                    TableLockStat {
                        space: *space,
                        acquires: st.acquires.load(std::sync::atomic::Ordering::Relaxed),
                        waits: st.waits.load(std::sync::atomic::Ordering::Relaxed),
                        wait_total_ns: st.wait_lat.total().as_nanos(),
                        wait_p99_ns: st.wait_lat.p99().as_nanos(),
                        wait_max_ns: st.wait_lat.max().as_nanos(),
                        holds: st.hold_lat.count(),
                        hold_total_ns: st.hold_lat.total().as_nanos(),
                        hold_p50_ns: st.hold_lat.p50().as_nanos(),
                        hold_p99_ns: st.hold_lat.p99().as_nanos(),
                        hold_max_ns: st.hold_lat.max().as_nanos(),
                    },
                )
            })
            .collect();
        let mut top: Vec<HotKeyStat> = self
            .hot
            .lock()
            .iter()
            .map(|((space, key), w)| HotKeyStat {
                table: label_of(*space),
                space: *space,
                key_hex: hex(key),
                waits: w.count,
                wait_total_ns: w.total_ns,
                wait_max_ns: w.max_ns,
            })
            .collect();
        // Deterministic order: heaviest wait first, then (space, key).
        top.sort_by(|a, b| {
            b.wait_total_ns
                .cmp(&a.wait_total_ns)
                .then(a.space.cmp(&b.space))
                .then(a.key_hex.cmp(&b.key_hex))
        });
        top.truncate(top_k);
        LockProfile { tables, top }
    }
}

/// Folded per-table lock statistics (one snapshot entry).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TableLockStat {
    /// Index space number the label resolves to.
    pub space: u32,
    /// Lock grants.
    pub acquires: u64,
    /// Grants that waited for a conflicting release.
    pub waits: u64,
    /// Sum of virtual wait time, ns.
    pub wait_total_ns: u64,
    /// P99 wait, ns.
    pub wait_p99_ns: u64,
    /// Max wait, ns (exact).
    pub wait_max_ns: u64,
    /// Releases that recorded a hold interval.
    pub holds: u64,
    /// Sum of grant-to-release hold time, ns.
    pub hold_total_ns: u64,
    /// Median hold, ns.
    pub hold_p50_ns: u64,
    /// P99 hold, ns.
    pub hold_p99_ns: u64,
    /// Max hold, ns (exact).
    pub hold_max_ns: u64,
}

/// One row of the top-K contended-lock table.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HotKeyStat {
    /// Table/index label of the key's space.
    pub table: String,
    /// Index space number.
    pub space: u32,
    /// Encoded row key, hex.
    pub key_hex: String,
    /// Number of waits on this key.
    pub waits: u64,
    /// Sum of virtual wait time, ns.
    pub wait_total_ns: u64,
    /// Longest single wait, ns.
    pub wait_max_ns: u64,
}

/// Deterministic snapshot of the deployment's lock contention.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LockProfile {
    /// Per-table statistics, keyed by catalog label (or `space-N`).
    pub tables: BTreeMap<String, TableLockStat>,
    /// Top-K contended keys by total wait time.
    pub top: Vec<HotKeyStat>,
}

impl LockProfile {
    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

fn hex(bytes: &[u8]) -> String {
    use std::fmt::Write as _;
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        let _ = write!(s, "{b:02x}");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquires_waits_and_holds_aggregate_per_space() {
        let c = LockContention::new();
        c.set_label(3, "warehouse");
        c.note_acquire(3);
        c.note_acquire(3);
        c.note_wait(3, b"w1", VTime::from_micros(10));
        c.note_hold(3, VTime::from_micros(50));
        c.note_hold(3, VTime::from_micros(150));
        let p = c.snapshot(4);
        let t = &p.tables["warehouse"];
        assert_eq!(t.space, 3);
        assert_eq!(t.acquires, 2);
        assert_eq!(t.waits, 1);
        assert_eq!(t.wait_total_ns, 10_000);
        assert_eq!(t.holds, 2);
        assert_eq!(t.hold_total_ns, 200_000);
        assert_eq!(t.hold_max_ns, 150_000);
    }

    #[test]
    fn unlabelled_space_gets_a_placeholder() {
        let c = LockContention::new();
        c.note_acquire(9);
        let p = c.snapshot(4);
        assert!(p.tables.contains_key("space-9"));
    }

    #[test]
    fn top_k_sorted_by_wait_with_deterministic_tiebreak() {
        let c = LockContention::new();
        c.set_label(1, "district");
        c.note_wait(1, b"\x01", VTime::from_micros(5));
        c.note_wait(1, b"\x01", VTime::from_micros(5));
        c.note_wait(1, b"\x02", VTime::from_micros(7));
        c.note_wait(2, b"\x00", VTime::from_micros(7));
        let p = c.snapshot(2);
        assert_eq!(p.top.len(), 2);
        // 01 has 10us total, then ties at 7us break by space.
        assert_eq!(p.top[0].key_hex, "01");
        assert_eq!(p.top[0].waits, 2);
        assert_eq!(p.top[0].wait_total_ns, 10_000);
        assert_eq!(p.top[1].space, 1);
        assert_eq!(p.top[1].key_hex, "02");
        assert_eq!(p.top[1].table, "district");
    }

    #[test]
    fn reset_clears_measurements_but_keeps_labels() {
        let c = LockContention::new();
        c.set_label(1, "orders");
        c.note_wait(1, b"k", VTime::from_micros(1));
        c.reset();
        assert!(c.is_empty());
        c.note_acquire(1);
        assert!(c.snapshot(1).tables.contains_key("orders"));
    }

    #[test]
    fn only_contended_keys_materialise() {
        let c = LockContention::new();
        for i in 0..100u8 {
            c.note_acquire(1);
            c.note_hold(1, VTime::from_nanos(i as u64));
        }
        c.note_wait(1, b"hot", VTime::from_micros(1));
        assert_eq!(c.hot.lock().len(), 1);
    }
}
