//! Deterministic latency attribution: fold the [`TraceLog`] into a
//! component/op profile.
//!
//! A raw span dump answers "what happened"; this module answers "where did
//! the time go". [`Profile::from_registry`] aggregates every completed span
//! into a per-`component/op` table of *inclusive* virtual time (the span's
//! own interval) and *self* time (inclusive minus the intervals of its
//! direct children), computes a per-phase breakdown of the commit path
//! ([`Profile::commit_phases`]) from span parentage, and snapshots every
//! registered [`Timeline`](crate::metrics::Timeline) (the `apply_lag`
//! trend). Everything is integer nanoseconds aggregated in `BTreeMap`s, so
//! the result — and its JSON encoding in
//! [`RunReport`](crate::report::RunReport) — is byte-deterministic for a
//! seeded single-client run.
//!
//! Three span populations are deliberately excluded or fenced:
//!
//! * **abandoned** spans (guard dropped without `finish`, i.e. early-return
//!   error paths) carry no duration and are counted but never aggregated;
//! * **orphans** (spans whose parent was evicted from the ring) still
//!   aggregate into `ops`, but their lost parentage is surfaced as a count
//!   so a truncated profile is visibly truncated;
//! * spans on forked contexts (replica fan-out, async REDO shipping) live
//!   in their own trace lanes and therefore aggregate as root spans — they
//!   are real work, but never inflate the commit critical path.

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::fmt::Write as _;

use crate::contention::{LockProfile, DEFAULT_TOP_K};
use crate::metrics::MetricsRegistry;
use crate::trace::TraceEvent;

/// Aggregate of every completed span of one `component/op`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct OpStat {
    /// Completed (non-abandoned) spans.
    pub count: u64,
    /// Inclusive virtual time: sum of span intervals, ns.
    pub total_ns: u64,
    /// Self virtual time: inclusive minus direct children's intervals, ns.
    pub self_ns: u64,
}

/// One phase of the commit path: a direct child of a `core/commit` span
/// (or the commit's own remainder, keyed `"self"`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PhaseStat {
    /// Child spans folded into this phase.
    pub count: u64,
    /// Virtual time attributed to the phase, ns.
    pub total_ns: u64,
}

/// Snapshot of one registered [`Timeline`](crate::metrics::Timeline).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TimelineSnapshot {
    /// Bucket width, virtual ns.
    pub bucket_ns: u64,
    /// Bucket index (`t / bucket_ns`) → last recorded value.
    pub samples: BTreeMap<u64, i64>,
}

/// One fault injection lifted out of the trace (a zero-length `fault/*`
/// instant recorded by the timestamped [`FaultPlan`](crate::fault::FaultPlan)
/// variants), in recording order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultEvent {
    /// Virtual time of the injection, ns.
    pub at_ns: u64,
    /// Injection kind: `crash`, `restore`, `partition`, `heal`,
    /// `drops_on`, `drops_off`.
    pub op: String,
    /// Subject node id (0 for fabric-wide drop-probability changes).
    pub node: u64,
}

/// The folded trace: per-op aggregates, commit-phase accounting, and
/// timeline snapshots (see module docs).
#[derive(Clone, Debug, Default)]
pub struct Profile {
    /// Spans in the ring when the profile was taken (incl. abandoned).
    pub spans: u64,
    /// Spans recorded with no explicit finish (excluded from aggregates).
    pub abandoned: u64,
    /// Spans whose parent id was already evicted from the ring.
    pub orphans: u64,
    /// Sum of root-span intervals, ns — the denominator of self-time
    /// shares (roots cover all traced virtual time exactly once).
    pub root_total_ns: u64,
    /// Per-`component/op` aggregates, sorted by key.
    pub ops: BTreeMap<String, OpStat>,
    /// Commit latency split by direct children of `core/commit` spans,
    /// plus the `"self"` remainder. By construction the phase totals sum
    /// exactly to `ops["core/commit"].total_ns`, even when children were
    /// evicted from the ring (evicted time folds into `"self"`).
    pub commit_phases: BTreeMap<String, PhaseStat>,
    /// Every registered timeline, keyed `"component.name"`.
    pub timelines: BTreeMap<String, TimelineSnapshot>,
    /// Lock-contention profile: per-table wait/hold stats plus the top-K
    /// contended keys (empty when the engine recorded no lock traffic).
    pub locks: LockProfile,
    /// Fault injections recorded as `fault/*` trace instants, in recording
    /// order. Fault events never aggregate into `ops` or `folded` — they
    /// are markers, not work.
    pub fault_events: Vec<FaultEvent>,
    /// Inferno-compatible folded stacks: root-to-span `component/op`
    /// frames joined by `;`, weighted by the span's *self* time in ns.
    /// Zero-weight stacks are omitted (inferno drops them anyway);
    /// `BTreeMap` order keeps the export byte-deterministic.
    pub folded: BTreeMap<String, u64>,
}

impl Profile {
    /// Fold `registry`'s trace log, timelines and lock-contention state
    /// into a profile.
    pub fn from_registry(registry: &MetricsRegistry) -> Profile {
        let mut p = Self::from_events(&registry.trace().events());
        p.locks = registry.lock_contention().snapshot(DEFAULT_TOP_K);
        p.timelines = registry
            .timeline_handles()
            .into_iter()
            .map(|(k, tl)| {
                (
                    k,
                    TimelineSnapshot {
                        bucket_ns: tl.bucket_ns(),
                        samples: tl.snapshot(),
                    },
                )
            })
            .collect();
        p
    }

    /// Fold a span dump into a profile (no timelines).
    pub fn from_events(events: &[TraceEvent]) -> Profile {
        let mut p = Profile {
            spans: events.len() as u64,
            ..Profile::default()
        };
        // Index live (non-abandoned) spans and the inclusive time of each
        // span's direct children, in one pass each. Fault instants are
        // markers, not work: they lift into `fault_events` and stay out of
        // every aggregate.
        let mut dur_of: HashMap<u64, u64> = HashMap::with_capacity(events.len());
        let mut by_id: HashMap<u64, &TraceEvent> = HashMap::with_capacity(events.len());
        for ev in events {
            if ev.component == "fault" {
                p.fault_events.push(FaultEvent {
                    at_ns: ev.start.as_nanos(),
                    op: ev.op.to_string(),
                    node: ev.client,
                });
                continue;
            }
            if ev.abandoned {
                p.abandoned += 1;
            } else {
                dur_of.insert(ev.id, (ev.end - ev.start).as_nanos());
                by_id.insert(ev.id, ev);
            }
        }
        let mut child_ns: HashMap<u64, u64> = HashMap::new();
        let mut children: HashMap<u64, Vec<&TraceEvent>> = HashMap::new();
        for ev in events {
            if ev.abandoned || ev.component == "fault" {
                continue;
            }
            if ev.parent != 0 {
                if dur_of.contains_key(&ev.parent) {
                    let d = (ev.end - ev.start).as_nanos();
                    *child_ns.entry(ev.parent).or_default() += d;
                    children.entry(ev.parent).or_default().push(ev);
                } else {
                    p.orphans += 1;
                }
            }
        }
        for ev in events {
            if ev.abandoned || ev.component == "fault" {
                continue;
            }
            let dur = (ev.end - ev.start).as_nanos();
            let kids = child_ns.get(&ev.id).copied().unwrap_or(0);
            let self_ns = dur.saturating_sub(kids);
            let stat = p.ops.entry(op_key(ev)).or_default();
            stat.count += 1;
            stat.total_ns += dur;
            stat.self_ns += self_ns;
            if self_ns > 0 {
                *p.folded.entry(folded_key(ev, &by_id)).or_default() += self_ns;
            }
            if ev.parent == 0 || !dur_of.contains_key(&ev.parent) {
                p.root_total_ns += dur;
            }
            if ev.component == "core" && ev.op == "commit" {
                let mut accounted = 0u64;
                if let Some(kids) = children.get(&ev.id) {
                    for child in kids {
                        let d = (child.end - child.start).as_nanos();
                        let ph = p.commit_phases.entry(op_key(child)).or_default();
                        ph.count += 1;
                        ph.total_ns += d;
                        accounted += d;
                    }
                }
                let own = p.commit_phases.entry("self".to_string()).or_default();
                own.count += 1;
                own.total_ns += dur.saturating_sub(accounted);
            }
        }
        p
    }

    /// Whether no spans, timeline samples or lock traffic were captured
    /// (tracing was off — the report's `profile` section will say so, not
    /// vanish).
    pub fn is_empty(&self) -> bool {
        self.spans == 0
            && self.timelines.values().all(|t| t.samples.is_empty())
            && self.locks.is_empty()
            && self.fault_events.is_empty()
    }

    /// Deterministic JSON encoding, appended to `out` (no trailing
    /// newline). Shares are fixed-point percentages derived from integer
    /// ns, so the bytes stay reproducible.
    pub fn write_json(&self, out: &mut String, indent: &str) {
        let pct = |part: u64, whole: u64| -> String {
            if whole == 0 {
                "0.00".to_string()
            } else {
                // Two fixed decimals via integer math: no float formatting.
                let scaled = part as u128 * 10_000 / whole as u128;
                format!("{}.{:02}", scaled / 100, scaled % 100)
            }
        };
        let _ = write!(out, "{{\n{indent}  \"spans\": {},", self.spans);
        let _ = write!(out, "\n{indent}  \"abandoned\": {},", self.abandoned);
        let _ = write!(out, "\n{indent}  \"orphans\": {},", self.orphans);
        let _ = write!(
            out,
            "\n{indent}  \"root_total_ns\": {},",
            self.root_total_ns
        );
        let _ = write!(out, "\n{indent}  \"ops\": {{");
        let mut first = true;
        for (k, v) in &self.ops {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n{indent}    \"{k}\": {{\"count\": {}, \"total_ns\": {}, \"self_ns\": {}, \"self_share_pct\": {}}}",
                v.count,
                v.total_ns,
                v.self_ns,
                pct(v.self_ns, self.root_total_ns),
            );
        }
        let commit_total = self.ops.get("core/commit").map(|s| s.total_ns).unwrap_or(0);
        let _ = write!(out, "\n{indent}  }},\n{indent}  \"commit_phases\": {{");
        first = true;
        for (k, v) in &self.commit_phases {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n{indent}    \"{k}\": {{\"count\": {}, \"total_ns\": {}, \"share_pct\": {}}}",
                v.count,
                v.total_ns,
                pct(v.total_ns, commit_total),
            );
        }
        let _ = write!(out, "\n{indent}  }},\n{indent}  \"timelines\": {{");
        first = true;
        for (k, tl) in &self.timelines {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n{indent}    \"{k}\": {{\"bucket_ns\": {}, \"samples\": {{",
                tl.bucket_ns
            );
            let mut first_s = true;
            for (b, v) in &tl.samples {
                if !first_s {
                    out.push_str(", ");
                }
                first_s = false;
                let _ = write!(out, "\"{b}\": {v}");
            }
            out.push_str("}}");
        }
        let _ = write!(out, "\n{indent}  }},\n{indent}  \"locks\": {{");
        let _ = write!(out, "\n{indent}    \"tables\": {{");
        first = true;
        for (label, t) in &self.locks.tables {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n{indent}      \"{label}\": {{\"space\": {}, \"acquires\": {}, \"waits\": {}, \
                 \"wait_total_ns\": {}, \"wait_p99_ns\": {}, \"wait_max_ns\": {}, \
                 \"holds\": {}, \"hold_total_ns\": {}, \"hold_p50_ns\": {}, \
                 \"hold_p99_ns\": {}, \"hold_max_ns\": {}}}",
                t.space,
                t.acquires,
                t.waits,
                t.wait_total_ns,
                t.wait_p99_ns,
                t.wait_max_ns,
                t.holds,
                t.hold_total_ns,
                t.hold_p50_ns,
                t.hold_p99_ns,
                t.hold_max_ns,
            );
        }
        let _ = write!(out, "\n{indent}    }},\n{indent}    \"top\": [");
        first = true;
        for k in &self.locks.top {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n{indent}      {{\"table\": \"{}\", \"space\": {}, \"key\": \"{}\", \
                 \"waits\": {}, \"wait_total_ns\": {}, \"wait_max_ns\": {}}}",
                k.table, k.space, k.key_hex, k.waits, k.wait_total_ns, k.wait_max_ns,
            );
        }
        let _ = write!(out, "\n{indent}    ]\n{indent}  }},");
        let _ = write!(out, "\n{indent}  \"fault_events\": [");
        first = true;
        for f in &self.fault_events {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n{indent}    {{\"at_ns\": {}, \"op\": \"{}\", \"node\": {}}}",
                f.at_ns, f.op, f.node,
            );
        }
        let _ = write!(out, "\n{indent}  ],\n{indent}  \"folded\": {{");
        first = true;
        for (stack, w) in &self.folded {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\n{indent}    \"{stack}\": {w}");
        }
        let _ = write!(out, "\n{indent}  }}\n{indent}}}");
    }
}

fn op_key(ev: &TraceEvent) -> String {
    format!("{}/{}", ev.component, ev.op)
}

/// Root-to-span stack of `component/op` frames joined by `;` — the folded
/// line format flamegraph renderers (inferno et al.) consume. A span whose
/// parent was evicted from the ring becomes a root frame, matching how
/// root-time accounting treats it.
fn folded_key(ev: &TraceEvent, by_id: &HashMap<u64, &TraceEvent>) -> String {
    let mut frames = vec![op_key(ev)];
    let mut parent = ev.parent;
    while parent != 0 {
        match by_id.get(&parent) {
            Some(pe) => {
                frames.push(op_key(pe));
                parent = pe.parent;
            }
            None => break,
        }
    }
    frames.reverse();
    frames.join(";")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{SimCtx, VTime};
    use crate::trace::TraceLog;
    use std::sync::Arc;

    /// Build: commit(10us) -> { wal/flush(4us) -> astore/append(3us),
    /// lock/wait(1us) }, plus one abandoned span and one foreign root.
    fn sample_events() -> Vec<TraceEvent> {
        let log = Arc::new(TraceLog::new(64));
        log.enable();
        let mut ctx = SimCtx::new(1, 7);
        let commit = log.span(&ctx, "core", "commit");
        let lock = log.span(&ctx, "lock", "wait");
        ctx.advance(VTime::from_micros(1));
        lock.finish(&ctx);
        let flush = log.span(&ctx, "wal", "flush");
        ctx.advance(VTime::from_micros(1));
        let app = log.span(&ctx, "astore", "append");
        ctx.advance(VTime::from_micros(3));
        app.finish(&ctx);
        flush.finish(&ctx);
        {
            let _dead = log.span(&ctx, "astore", "append"); // error path
        }
        ctx.advance(VTime::from_micros(5));
        commit.finish(&ctx);
        let root = log.span(&ctx, "pagestore", "ship");
        ctx.advance(VTime::from_micros(2));
        root.finish(&ctx);
        log.events()
    }

    #[test]
    fn inclusive_and_self_time() {
        let p = Profile::from_events(&sample_events());
        assert_eq!(p.spans, 6);
        assert_eq!(p.abandoned, 1);
        assert_eq!(p.orphans, 0);
        let commit = &p.ops["core/commit"];
        assert_eq!(commit.count, 1);
        assert_eq!(commit.total_ns, 10_000);
        // Commit self = 10us - (1us lock + 4us flush).
        assert_eq!(commit.self_ns, 5_000);
        let flush = &p.ops["wal/flush"];
        assert_eq!(flush.total_ns, 4_000);
        assert_eq!(flush.self_ns, 1_000);
        // Abandoned append excluded: one completed append only.
        assert_eq!(p.ops["astore/append"].count, 1);
        // Roots: commit (10us) + pagestore/ship (2us).
        assert_eq!(p.root_total_ns, 12_000);
    }

    #[test]
    fn commit_phases_sum_to_commit_total() {
        let p = Profile::from_events(&sample_events());
        assert_eq!(p.commit_phases["lock/wait"].total_ns, 1_000);
        assert_eq!(p.commit_phases["wal/flush"].total_ns, 4_000);
        assert_eq!(p.commit_phases["self"].total_ns, 5_000);
        let sum: u64 = p.commit_phases.values().map(|s| s.total_ns).sum();
        assert_eq!(sum, p.ops["core/commit"].total_ns);
    }

    #[test]
    fn evicted_children_fold_into_self_preserving_sum() {
        // Tiny ring: the early (child) spans are evicted, the commit stays.
        let log = Arc::new(TraceLog::new(1));
        log.enable();
        let mut ctx = SimCtx::new(1, 7);
        let commit = log.span(&ctx, "core", "commit");
        let flush = log.span(&ctx, "wal", "flush");
        ctx.advance(VTime::from_micros(4));
        flush.finish(&ctx);
        ctx.advance(VTime::from_micros(6));
        commit.finish(&ctx);
        let p = Profile::from_events(&log.events());
        // Only the commit survived; its full interval lands in "self".
        assert_eq!(p.spans, 1);
        let sum: u64 = p.commit_phases.values().map(|s| s.total_ns).sum();
        assert_eq!(sum, p.ops["core/commit"].total_ns);
        assert_eq!(p.commit_phases["self"].total_ns, 10_000);
    }

    #[test]
    fn orphans_counted_and_become_roots() {
        // A child whose parent id never closed into the ring.
        let evs = vec![TraceEvent {
            id: 9,
            parent: 4,
            client: 1,
            component: "wal",
            op: "flush",
            start: VTime::ZERO,
            end: VTime::from_micros(2),
            abandoned: false,
        }];
        let p = Profile::from_events(&evs);
        assert_eq!(p.orphans, 1);
        assert_eq!(p.root_total_ns, 2_000);
    }

    #[test]
    fn json_is_deterministic_and_shares_are_fixed_point() {
        let p = Profile::from_events(&sample_events());
        let mut a = String::new();
        p.write_json(&mut a, "  ");
        let mut b = String::new();
        p.write_json(&mut b, "  ");
        assert_eq!(a, b);
        assert!(a.contains("\"core/commit\""));
        assert!(a.contains("\"commit_phases\""));
        // flush share of commit: 4us / 10us = 40.00%.
        assert!(
            a.contains("\"wal/flush\": {\"count\": 1, \"total_ns\": 4000, \"share_pct\": 40.00}")
        );
    }

    #[test]
    fn folded_stacks_weighted_by_self_time() {
        let p = Profile::from_events(&sample_events());
        // commit self 5us, flush self 1us, append self 3us, lock 1us,
        // pagestore root 2us; zero-weight stacks omitted.
        assert_eq!(p.folded["core/commit"], 5_000);
        assert_eq!(p.folded["core/commit;wal/flush"], 1_000);
        assert_eq!(p.folded["core/commit;wal/flush;astore/append"], 3_000);
        assert_eq!(p.folded["core/commit;lock/wait"], 1_000);
        assert_eq!(p.folded["pagestore/ship"], 2_000);
        // Folded self-times partition root time exactly.
        assert_eq!(p.folded.values().sum::<u64>(), p.root_total_ns);
    }

    #[test]
    fn fault_instants_lift_out_of_aggregates() {
        let log = Arc::new(TraceLog::new(64));
        log.enable();
        let mut ctx = SimCtx::new(1, 7);
        let sp = log.span(&ctx, "core", "commit");
        log.instant(VTime::from_micros(3), "fault", "crash", 2);
        ctx.advance(VTime::from_micros(10));
        sp.finish(&ctx);
        log.instant(VTime::from_micros(12), "fault", "restore", 2);
        let p = Profile::from_events(&log.events());
        assert_eq!(p.fault_events.len(), 2);
        assert_eq!(p.fault_events[0].op, "crash");
        assert_eq!(p.fault_events[0].at_ns, 3_000);
        assert_eq!(p.fault_events[0].node, 2);
        assert_eq!(p.fault_events[1].op, "restore");
        // Not counted as spans/ops/roots/folded.
        assert!(!p.ops.keys().any(|k| k.starts_with("fault/")));
        assert!(!p.folded.keys().any(|k| k.contains("fault/")));
        assert_eq!(p.root_total_ns, 10_000);
    }

    #[test]
    fn lock_profile_rides_registry_snapshot() {
        let reg = MetricsRegistry::new();
        let c = reg.lock_contention();
        c.set_label(7, "orders");
        c.note_acquire(7);
        c.note_wait(7, b"\x09", VTime::from_micros(4));
        c.note_hold(7, VTime::from_micros(20));
        let p = Profile::from_registry(&reg);
        assert!(!p.is_empty());
        assert_eq!(p.locks.tables["orders"].waits, 1);
        assert_eq!(p.locks.top.len(), 1);
        assert_eq!(p.locks.top[0].key_hex, "09");
        let mut s = String::new();
        p.write_json(&mut s, "  ");
        assert!(s.contains("\"locks\""));
        assert!(s.contains("\"orders\""));
        assert!(s.contains("\"key\": \"09\""));
    }

    #[test]
    fn json_carries_fault_and_folded_sections() {
        let p = Profile::from_events(&sample_events());
        let mut s = String::new();
        p.write_json(&mut s, "  ");
        assert!(s.contains("\"fault_events\": ["));
        assert!(s.contains("\"folded\""));
        assert!(s.contains("\"core/commit;wal/flush;astore/append\": 3000"));
        assert!(s.contains("\"tables\""));
        assert!(s.contains("\"top\": ["));
    }

    #[test]
    fn registry_profile_includes_timelines() {
        let reg = MetricsRegistry::new();
        reg.timeline("pagestore", "apply_lag_records")
            .record(VTime::from_millis(2), 9);
        let p = Profile::from_registry(&reg);
        assert!(!p.is_empty());
        let tl = &p.timelines["pagestore.apply_lag_records"];
        assert_eq!(tl.samples[&2], 9);
        let mut s = String::new();
        p.write_json(&mut s, "  ");
        assert!(s.contains("\"pagestore.apply_lag_records\""));
        assert!(s.contains("\"2\": 9"));
    }
}
