//! Virtual timestamps and per-client clocks.
//!
//! A [`VTime`] is a number of *virtual nanoseconds* since the start of a
//! simulation. Each simulated client (a TPC-C terminal, an AP query stream, a
//! micro-benchmark thread) owns a [`SimCtx`] whose clock advances as the
//! client performs work: CPU work charges time on a CPU [`Resource`],
//! device/network operations charge their modelled service times, and lock
//! waits jump the clock to the releaser's time.
//!
//! [`Resource`]: crate::resource::Resource

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use crate::rng::SimRng;

/// A point in (or span of) virtual time, in nanoseconds.
///
/// `VTime` is used both as an absolute timestamp and as a duration; the
/// arithmetic is identical and the simulation never mixes virtual time with
/// wall-clock time, so a separate duration type would add noise without
/// preventing any real bug class here.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VTime(pub u64);

impl VTime {
    /// Zero — the start of every simulation.
    pub const ZERO: VTime = VTime(0);

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        VTime(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        VTime(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        VTime(ms * 1_000_000)
    }

    /// Construct from seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        VTime(s * 1_000_000_000)
    }

    /// Value in nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Value in (fractional) microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Value in (fractional) milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Value in (fractional) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating subtraction; a simulation never produces negative spans, but
    /// racing clock reads in multi-threaded drivers can observe small
    /// inversions which must not panic.
    #[inline]
    pub fn saturating_sub(self, other: VTime) -> VTime {
        VTime(self.0.saturating_sub(other.0))
    }

    /// The later of two times.
    #[inline]
    pub fn max(self, other: VTime) -> VTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add for VTime {
    type Output = VTime;
    #[inline]
    fn add(self, rhs: VTime) -> VTime {
        VTime(self.0 + rhs.0)
    }
}

impl AddAssign for VTime {
    #[inline]
    fn add_assign(&mut self, rhs: VTime) {
        self.0 += rhs.0;
    }
}

impl Sub for VTime {
    type Output = VTime;
    #[inline]
    fn sub(self, rhs: VTime) -> VTime {
        VTime(self.0 - rhs.0)
    }
}

impl Mul<u64> for VTime {
    type Output = VTime;
    #[inline]
    fn mul(self, rhs: u64) -> VTime {
        VTime(self.0 * rhs)
    }
}

impl Div<u64> for VTime {
    type Output = VTime;
    #[inline]
    fn div(self, rhs: u64) -> VTime {
        VTime(self.0 / rhs)
    }
}

impl Sum for VTime {
    fn sum<I: Iterator<Item = VTime>>(iter: I) -> VTime {
        VTime(iter.map(|t| t.0).sum())
    }
}

impl fmt::Debug for VTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for VTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns < 1_000 {
            write!(f, "{ns}ns")
        } else if ns < 1_000_000 {
            write!(f, "{:.2}us", ns as f64 / 1e3)
        } else if ns < 1_000_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        }
    }
}

/// Per-client simulation context: a virtual clock plus a deterministic RNG.
///
/// Every operation on the simulated storage stack takes `&mut SimCtx` and
/// advances the clock by the operation's (possibly queued) completion time.
/// Clients are cheap to create; benchmarks typically create one per simulated
/// connection, each seeded differently but deterministically.
pub struct SimCtx {
    now: VTime,
    rng: SimRng,
    /// Identifier of the simulated client; used for lease ownership, LRU
    /// shard selection in drivers, and debugging.
    pub client_id: u64,
    /// Trace lane this context's spans record under. Equal to `client_id`
    /// for a driver-created context; a [`fork`](Self::fork)ed child gets a
    /// fresh deterministic lane so spans opened on parallel work (replica
    /// fan-out, async REDO shipping) never interleave with — and never
    /// falsely parent under — the forking client's open span stack.
    trace_client: u64,
}

impl SimCtx {
    /// Create a context for `client_id`, deterministically seeded from
    /// `seed ^ client_id`.
    pub fn new(client_id: u64, seed: u64) -> Self {
        SimCtx {
            now: VTime::ZERO,
            rng: SimRng::new(seed ^ client_id.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            client_id,
            trace_client: client_id,
        }
    }

    /// Current virtual time of this client.
    #[inline]
    pub fn now(&self) -> VTime {
        self.now
    }

    /// Advance the clock by `d`.
    #[inline]
    pub fn advance(&mut self, d: VTime) {
        self.now += d;
    }

    /// Move the clock forward to `t` if `t` is later (never moves backwards).
    #[inline]
    pub fn wait_until(&mut self, t: VTime) {
        if t > self.now {
            self.now = t;
        }
    }

    /// Mutable access to the deterministic RNG.
    #[inline]
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// The trace lane spans opened on this context record under (see the
    /// field docs; forked contexts get their own lane).
    #[inline]
    pub fn trace_client(&self) -> u64 {
        self.trace_client
    }

    /// Reset the clock to zero (used between benchmark phases so warm-up time
    /// does not pollute measurement windows).
    pub fn reset_clock(&mut self) {
        self.now = VTime::ZERO;
    }

    /// Fork a child context that starts at this context's current time, for
    /// operations issued *in parallel* (replica fan-out, BlobGroup chunk
    /// striping, push-down task scatter). The child gets a fresh RNG stream
    /// derived from the parent. Re-join with
    /// [`wait_until`](Self::wait_until)`(child.now())` — typically the max
    /// over all children.
    pub fn fork(&mut self) -> SimCtx {
        let seed = self.rng.next_u64();
        SimCtx {
            now: self.now,
            rng: SimRng::new(seed),
            client_id: self.client_id,
            // Deterministic private trace lane (derived from the RNG draw
            // that already individualizes the child); the high bit keeps it
            // clear of the small integers real client ids use.
            trace_client: seed | (1 << 63),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_units() {
        assert_eq!(VTime::from_micros(3).as_nanos(), 3_000);
        assert_eq!(VTime::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(VTime::from_secs(1).as_nanos(), 1_000_000_000);
        assert!((VTime::from_micros(1500).as_millis_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn arithmetic() {
        let a = VTime::from_micros(10);
        let b = VTime::from_micros(4);
        assert_eq!((a + b).as_nanos(), 14_000);
        assert_eq!((a - b).as_nanos(), 6_000);
        assert_eq!((a * 3).as_nanos(), 30_000);
        assert_eq!((a / 2).as_nanos(), 5_000);
        assert_eq!(b.saturating_sub(a), VTime::ZERO);
        assert_eq!(a.max(b), a);
    }

    #[test]
    fn display_scales() {
        assert_eq!(format!("{}", VTime::from_nanos(5)), "5ns");
        assert_eq!(format!("{}", VTime::from_micros(5)), "5.00us");
        assert_eq!(format!("{}", VTime::from_millis(5)), "5.000ms");
        assert_eq!(format!("{}", VTime::from_secs(5)), "5.000s");
    }

    #[test]
    fn ctx_clock() {
        let mut ctx = SimCtx::new(7, 42);
        assert_eq!(ctx.now(), VTime::ZERO);
        ctx.advance(VTime::from_micros(5));
        ctx.wait_until(VTime::from_micros(3)); // no-op, earlier
        assert_eq!(ctx.now(), VTime::from_micros(5));
        ctx.wait_until(VTime::from_micros(9));
        assert_eq!(ctx.now(), VTime::from_micros(9));
        ctx.reset_clock();
        assert_eq!(ctx.now(), VTime::ZERO);
    }

    #[test]
    fn ctx_rng_is_deterministic_per_client() {
        let mut a1 = SimCtx::new(1, 99);
        let mut a2 = SimCtx::new(1, 99);
        let mut b = SimCtx::new(2, 99);
        let x1: u64 = a1.rng().next_u64();
        let x2: u64 = a2.rng().next_u64();
        let y: u64 = b.rng().next_u64();
        assert_eq!(x1, x2);
        assert_ne!(x1, y);
    }

    #[test]
    fn fork_gets_private_deterministic_trace_lane() {
        let mut a1 = SimCtx::new(3, 11);
        let mut a2 = SimCtx::new(3, 11);
        assert_eq!(a1.trace_client(), 3);
        let f1 = a1.fork();
        let f2 = a2.fork();
        // Same seed, same fork order => same lane; never the parent's lane.
        assert_eq!(f1.trace_client(), f2.trace_client());
        assert_ne!(f1.trace_client(), a1.trace_client());
        // Successive forks get distinct lanes.
        let g1 = a1.fork();
        assert_ne!(f1.trace_client(), g1.trace_client());
    }

    #[test]
    fn vtime_sum() {
        let total: VTime = (1..=3).map(VTime::from_micros).sum();
        assert_eq!(total, VTime::from_micros(6));
    }
}
