//! Worker-pool fan-out over a contended [`Resource`].
//!
//! A [`WorkerPool`] models a fixed set of worker threads pinned to a node
//! resource (typically its CPU). Callers hand it a batch of independent
//! *task demands* (per-task service times); the pool folds them onto its
//! workers round-robin and books every worker's share **concurrently** on
//! the underlying resource, so parallel speed-up and the contention it
//! causes (other tenants of the same cores queue behind the workers) both
//! emerge from the same G/G/k calendar the rest of the simulation uses.
//! The caller's clock advances to the batch *makespan* — the completion of
//! the slowest worker — exactly the join point of a real fork/join pool.
//!
//! Attribution: when built [`with_metrics`](WorkerPool::with_metrics), the
//! pool publishes `<name>.tasks` / `<name>.batches` / `<name>.busy_ns`
//! counters, a `<name>.makespan` latency histogram, and a `<name>.workers`
//! gauge, so bench reports can separate "time the pool itself burned" from
//! the resource's overall utilization.

use std::sync::Arc;

use crate::metrics::{Counter, Gauge, LatencyRecorder, MetricsRegistry};
use crate::resource::Resource;
use crate::time::{SimCtx, VTime};

struct PoolMetrics {
    tasks: Arc<Counter>,
    batches: Arc<Counter>,
    busy_ns: Arc<Counter>,
    makespan: Arc<LatencyRecorder>,
    #[allow(dead_code)]
    workers: Arc<Gauge>,
}

/// A fixed-size worker pool dispatching task batches onto a [`Resource`].
pub struct WorkerPool {
    workers: usize,
    resource: Arc<Resource>,
    metrics: Option<PoolMetrics>,
}

impl WorkerPool {
    /// Create a pool of `workers` threads over `resource`.
    ///
    /// # Panics
    /// Panics if `workers == 0`.
    pub fn new(workers: usize, resource: Arc<Resource>) -> Self {
        assert!(workers > 0, "a worker pool needs at least one worker");
        WorkerPool {
            workers,
            resource,
            metrics: None,
        }
    }

    /// Like [`new`](Self::new), additionally publishing attribution
    /// metrics under `name` (e.g. `storage-0.apply`).
    pub fn with_metrics(
        name: &str,
        workers: usize,
        resource: Arc<Resource>,
        registry: &MetricsRegistry,
    ) -> Self {
        let mut pool = Self::new(workers, resource);
        let workers_g = registry.gauge(name.to_string(), "workers");
        workers_g.set(workers as i64);
        pool.metrics = Some(PoolMetrics {
            tasks: registry.counter(name.to_string(), "tasks"),
            batches: registry.counter(name.to_string(), "batches"),
            busy_ns: registry.counter(name.to_string(), "busy_ns"),
            makespan: registry.latency(name.to_string(), "makespan"),
            workers: workers_g,
        });
        pool
    }

    /// Pool width.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Dispatch a batch of independent task demands across the workers and
    /// block the caller until the slowest worker finishes. Demands beyond
    /// the pool width fold onto workers round-robin (`i % workers`), so a
    /// caller may pass one demand per logical partition regardless of
    /// width. Returns the batch completion time (also the caller's new
    /// clock). A batch of empty/zero demands completes immediately.
    pub fn dispatch(&self, ctx: &mut SimCtx, demands: &[VTime]) -> VTime {
        let t0 = ctx.now();
        let mut lanes = vec![VTime::ZERO; self.workers.min(demands.len().max(1))];
        let n_lanes = lanes.len();
        for (i, d) in demands.iter().enumerate() {
            lanes[i % n_lanes] += *d;
        }
        let mut done = t0;
        let mut busy = VTime::ZERO;
        for lane in lanes {
            if lane == VTime::ZERO {
                continue;
            }
            busy += lane;
            // All workers bid for the resource at the same instant: the
            // calendar queue serializes them onto however many lanes the
            // device actually has free.
            done = done.max(self.resource.acquire(t0, lane));
        }
        ctx.wait_until(done);
        if let Some(m) = &self.metrics {
            m.tasks
                .add(demands.iter().filter(|d| **d != VTime::ZERO).count() as u64);
            m.batches.inc();
            m.busy_ns.add(busy.as_nanos());
            m.makespan.record(done.saturating_sub(t0));
        }
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_batch_beats_serial_on_a_wide_resource() {
        let cpu = Arc::new(Resource::new("cpu", 8));
        let pool4 = WorkerPool::new(4, Arc::clone(&cpu));
        let pool1 = WorkerPool::new(1, Arc::clone(&cpu));
        let demands = vec![VTime::from_micros(100); 4];

        let mut c4 = SimCtx::new(1, 1);
        pool4.dispatch(&mut c4, &demands);
        let mut c1 = SimCtx::new(2, 1);
        c1.advance(VTime::from_millis(10)); // past pool4's reservations
        pool1.dispatch(&mut c1, &demands);

        let par = c4.now();
        let ser = c1.now().saturating_sub(VTime::from_millis(10));
        assert!(
            par.as_nanos() * 3 < ser.as_nanos(),
            "4 workers over an idle 8-lane CPU should be ~4x faster: {par:?} vs {ser:?}"
        );
    }

    #[test]
    fn overflow_demands_fold_round_robin() {
        let cpu = Arc::new(Resource::new("cpu", 16));
        let pool = WorkerPool::new(2, cpu);
        let mut ctx = SimCtx::new(1, 1);
        // 6 tasks of 10us on 2 workers: 30us per worker, makespan 30us.
        let demands = vec![VTime::from_micros(10); 6];
        let t0 = ctx.now();
        pool.dispatch(&mut ctx, &demands);
        assert_eq!(ctx.now().saturating_sub(t0), VTime::from_micros(30));
    }

    #[test]
    fn empty_batch_is_free() {
        let cpu = Arc::new(Resource::new("cpu", 4));
        let pool = WorkerPool::new(4, cpu);
        let mut ctx = SimCtx::new(1, 1);
        pool.dispatch(&mut ctx, &[]);
        pool.dispatch(&mut ctx, &[VTime::ZERO, VTime::ZERO]);
        assert_eq!(ctx.now(), VTime::ZERO);
    }

    #[test]
    fn metrics_attribute_busy_time_exactly() {
        let reg = MetricsRegistry::new();
        let cpu = Arc::new(Resource::new("cpu", 4));
        let pool = WorkerPool::with_metrics("n0.apply", 2, cpu, &reg);
        let mut ctx = SimCtx::new(1, 1);
        pool.dispatch(&mut ctx, &[VTime::from_micros(5), VTime::from_micros(7)]);
        assert_eq!(reg.counter("n0.apply", "tasks").get(), 2);
        assert_eq!(reg.counter("n0.apply", "batches").get(), 1);
        assert_eq!(reg.counter("n0.apply", "busy_ns").get(), 12_000);
        assert_eq!(reg.gauge("n0.apply", "workers").get(), 2);
    }
}
