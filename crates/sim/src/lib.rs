//! # vedb-sim — virtual-time simulation kernel
//!
//! The paper's evaluation runs on a bare-metal cluster with Optane PMem,
//! RDMA NICs, and NVMe SSDs (Table I). This crate replaces *wall-clock time on
//! that hardware* with **virtual time**: every simulated client carries its own
//! clock ([`SimCtx`]), and every shared piece of hardware (a server's CPU
//! cores, a PMem device's internal parallelism, an SSD's channels, a NIC link)
//! is a [`Resource`] — a k-server queue reserved with an atomic *busy-until*
//! protocol. Queueing delay therefore **emerges from contention** instead of
//! being hard-coded, which is what lets the reproduction recover the paper's
//! shapes (throughput peaks, latency crossovers, concurrency collapse).
//!
//! Nothing in this crate knows about databases; it provides:
//!
//! * [`VTime`] / [`SimCtx`] — virtual timestamps and per-client clocks,
//! * [`Resource`] — contended k-lane resources,
//! * [`LatencyModel`] — calibrated device/network service times,
//! * [`LatencyRecorder`] — log-bucketed latency histograms (P50/P95/P99/max),
//! * [`ClusterSpec`] — the Table I cluster encoded as resources,
//! * [`FaultPlan`] — failure-injection switches shared across components,
//! * [`MetricsRegistry`] — per-subsystem counters/gauges/histograms plus the
//!   causal [`TraceLog`](trace::TraceLog) of [`span!`]-recorded operations,
//! * [`RunReport`] — deterministic JSON snapshots written by the bench
//!   harness as `BENCH_<figure>.json`.

pub mod cluster;
pub mod contention;
pub mod fault;
pub mod latency;
pub mod metrics;
pub mod profile;
pub mod report;
pub mod resource;
pub mod rng;
pub mod time;
pub mod trace;
pub mod workers;

pub use cluster::{ClusterSpec, SimEnv};
pub use contention::{HotKeyStat, LockContention, LockProfile, TableLockStat};
pub use fault::FaultPlan;
pub use latency::LatencyModel;
pub use metrics::{
    Counter, Gauge, LatencyRecorder, MetricsRegistry, RecoveryCounters, Timeline, TrialResult,
};
pub use profile::{FaultEvent, OpStat, PhaseStat, Profile, TimelineSnapshot};
pub use report::{LatencySummary, ResourceSummary, RunReport};
pub use resource::Resource;
pub use rng::SimRng;
pub use time::{SimCtx, VTime};
pub use trace::{SpanGuard, TraceEvent, TraceLog};
pub use workers::WorkerPool;
