//! Latency histograms, subsystem metric registry, and benchmark trial results.
//!
//! [`LatencyRecorder`] is a log-bucketed concurrent histogram (HdrHistogram
//! style, ~3% relative error): 64 power-of-two magnitude groups × 32 linear
//! sub-buckets, all atomic, so hundreds of driver threads can record without
//! locks. Percentiles, mean and max are derived from the buckets.
//!
//! [`MetricsRegistry`] is the repo-wide observability hub: every subsystem
//! (pmem, rdma, astore, core, pagestore, …) registers [`Counter`]s,
//! [`Gauge`]s and `LatencyRecorder`s keyed by static `(component, name)`
//! pairs. Registration takes a short lock once per handle; the hot path is a
//! single relaxed atomic op on the returned `Arc` handle, so instrumentation
//! stays cheap enough to leave on unconditionally.

use std::borrow::Cow;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::contention::LockContention;
use crate::time::VTime;
use crate::trace::TraceLog;

const SUB_BITS: u32 = 5; // 32 sub-buckets per magnitude
const SUB: usize = 1 << SUB_BITS;
const GROUPS: usize = 64;

/// Concurrent log-bucketed latency histogram over virtual-time samples.
pub struct LatencyRecorder {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for LatencyRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyRecorder {
    /// Create an empty recorder.
    pub fn new() -> Self {
        LatencyRecorder {
            buckets: (0..GROUPS * SUB).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }

    #[inline]
    fn index(ns: u64) -> usize {
        if ns < SUB as u64 {
            return ns as usize;
        }
        let mag = 63 - ns.leading_zeros(); // >= SUB_BITS
        let group = (mag - SUB_BITS + 1) as usize;
        let sub = ((ns >> (mag - SUB_BITS)) - SUB as u64) as usize;
        // group 0 handles values < SUB directly above
        (group * SUB + sub).min(GROUPS * SUB - 1)
    }

    /// Representative (midpoint-ish) value of bucket `i` in nanoseconds.
    fn bucket_value(i: usize) -> u64 {
        let group = i / SUB;
        let sub = (i % SUB) as u64;
        if group == 0 {
            return sub;
        }
        let shift = (group - 1) as u32;
        ((SUB as u64 + sub) << shift) + (1u64 << shift) / 2
    }

    /// Record one latency sample.
    pub fn record(&self, lat: VTime) {
        let ns = lat.as_nanos();
        self.buckets[Self::index(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Exact sum of every recorded sample (not bucketed). This is what the
    /// wait/service conservation property checks against: bucketing loses
    /// precision per sample, but the sum is accumulated from the raw values.
    pub fn total(&self) -> VTime {
        VTime::from_nanos(self.sum_ns.load(Ordering::Relaxed))
    }

    /// Mean latency (zero if empty).
    pub fn mean(&self) -> VTime {
        let n = self.count();
        if n == 0 {
            return VTime::ZERO;
        }
        VTime::from_nanos(self.sum_ns.load(Ordering::Relaxed) / n)
    }

    /// Maximum recorded latency (exact, not bucketed).
    pub fn max(&self) -> VTime {
        VTime::from_nanos(self.max_ns.load(Ordering::Relaxed))
    }

    /// Percentile in `[0, 100]`; returns the representative value of the
    /// bucket containing that rank (zero if empty).
    pub fn percentile(&self, p: f64) -> VTime {
        let n = self.count();
        if n == 0 {
            return VTime::ZERO;
        }
        let rank = ((p / 100.0) * n as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return VTime::from_nanos(Self::bucket_value(i));
            }
        }
        self.max()
    }

    /// Median (P50).
    pub fn p50(&self) -> VTime {
        self.percentile(50.0)
    }

    /// P95.
    pub fn p95(&self) -> VTime {
        self.percentile(95.0)
    }

    /// P99.
    pub fn p99(&self) -> VTime {
        self.percentile(99.0)
    }

    /// Merge another recorder's samples into this one.
    pub fn merge(&self, other: &LatencyRecorder) {
        for (a, b) in self.buckets.iter().zip(other.buckets.iter()) {
            let v = b.load(Ordering::Relaxed);
            if v > 0 {
                a.fetch_add(v, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(other.count(), Ordering::Relaxed);
        self.sum_ns
            .fetch_add(other.sum_ns.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max_ns
            .fetch_max(other.max_ns.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Drop all samples.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_ns.store(0, Ordering::Relaxed);
        self.max_ns.store(0, Ordering::Relaxed);
    }

    /// Atomically move this recorder's samples into `dst`, leaving this
    /// recorder empty. Unlike [`merge`](Self::merge)` + `[`reset`](Self::reset)
    /// (which loses increments that race between the read and the store),
    /// every field is transferred with `swap(0)`, so the *total* across
    /// source + destination is conserved even under concurrent `record`s.
    ///
    /// A sample caught mid-`record` (bucket already bumped, `count` not yet)
    /// may be split across one drain, but the straggler fields land on the
    /// source and are picked up by the next drain — nothing is lost or
    /// double-counted. `max` is transferred with `fetch_max`, which is the
    /// correct merge for a running maximum.
    pub fn drain_into(&self, dst: &LatencyRecorder) {
        for (src, d) in self.buckets.iter().zip(dst.buckets.iter()) {
            let v = src.swap(0, Ordering::Relaxed);
            if v > 0 {
                d.fetch_add(v, Ordering::Relaxed);
            }
        }
        dst.count
            .fetch_add(self.count.swap(0, Ordering::Relaxed), Ordering::Relaxed);
        dst.sum_ns
            .fetch_add(self.sum_ns.swap(0, Ordering::Relaxed), Ordering::Relaxed);
        dst.max_ns
            .fetch_max(self.max_ns.swap(0, Ordering::Relaxed), Ordering::Relaxed);
    }
}

/// A monotonically increasing event counter. Handles are shared via `Arc`
/// from the [`MetricsRegistry`]; incrementing is one relaxed atomic add.
#[derive(Default)]
pub struct Counter {
    v: AtomicU64,
}

impl Counter {
    /// Fresh zero counter (detached from any registry).
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.v.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if n > 0 {
            self.v.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }

    /// Atomically read the value and reset it to zero. Racing `add`s land
    /// either in the returned value or in the post-take counter, never both
    /// and never neither.
    #[inline]
    pub fn take(&self) -> u64 {
        self.v.swap(0, Ordering::Relaxed)
    }
}

/// A signed instantaneous value (bytes outstanding, queue depth, lag).
#[derive(Default)]
pub struct Gauge {
    v: AtomicI64,
}

impl Gauge {
    /// Fresh zero gauge (detached from any registry).
    pub fn new() -> Self {
        Self::default()
    }

    /// Increase by `n`.
    #[inline]
    pub fn add(&self, n: i64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// Decrease by `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.v.fetch_sub(n, Ordering::Relaxed);
    }

    /// Overwrite with `n`.
    #[inline]
    pub fn set(&self, n: i64) {
        self.v.store(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// A virtual-time-bucketed sample series: the trend behind a [`Gauge`].
///
/// A gauge only answers "what is the backlog *now*"; a timeline remembers
/// the value per virtual-time bucket (last write in a bucket wins), so a
/// report can show how PageStore's apply lag built up and drained over the
/// measurement window, not just where it ended. Buckets are keyed by
/// integer bucket index (`t / bucket_ns`) in a `BTreeMap`, so snapshots are
/// deterministic and serialise in time order.
pub struct Timeline {
    bucket_ns: u64,
    samples: Mutex<BTreeMap<u64, i64>>,
}

impl Timeline {
    /// Default bucket width: 1 ms of virtual time.
    pub const DEFAULT_BUCKET_NS: u64 = 1_000_000;

    /// New empty timeline with `bucket_ns`-wide buckets.
    pub fn new(bucket_ns: u64) -> Self {
        Timeline {
            bucket_ns: bucket_ns.max(1),
            samples: Mutex::new(BTreeMap::new()),
        }
    }

    /// Bucket width in virtual nanoseconds.
    pub fn bucket_ns(&self) -> u64 {
        self.bucket_ns
    }

    /// Record `value` at virtual time `at`; the last record within one
    /// bucket wins.
    pub fn record(&self, at: VTime, value: i64) {
        self.samples
            .lock()
            .insert(at.as_nanos() / self.bucket_ns, value);
    }

    /// Accumulate `delta` into the bucket containing `at`. Unlike
    /// [`record`](Self::record) (last-write-wins, for gauge trends), `add`
    /// sums contributions — the semantics a busy-time-per-bucket utilization
    /// series needs, where every reservation deposits its overlap with each
    /// bucket it spans.
    pub fn add(&self, at: VTime, delta: i64) {
        *self
            .samples
            .lock()
            .entry(at.as_nanos() / self.bucket_ns)
            .or_insert(0) += delta;
    }

    /// Accumulate a busy interval `[start_ns, end_ns)` into every bucket it
    /// overlaps, `add`ing the per-bucket overlap in nanoseconds. This is the
    /// primitive behind per-resource utilization timelines: dividing a
    /// bucket's sum by `bucket_ns * lanes` yields that bucket's utilization.
    pub fn add_busy(&self, start_ns: u64, end_ns: u64) {
        if end_ns <= start_ns {
            return;
        }
        let mut samples = self.samples.lock();
        let mut s = start_ns;
        while s < end_ns {
            let bucket = s / self.bucket_ns;
            let bucket_end = (bucket + 1) * self.bucket_ns;
            let e = end_ns.min(bucket_end);
            *samples.entry(bucket).or_insert(0) += (e - s) as i64;
            s = e;
        }
    }

    /// Copy of the samples, keyed by bucket index, in time order.
    pub fn snapshot(&self) -> BTreeMap<u64, i64> {
        self.samples.lock().clone()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.lock().is_empty()
    }

    /// Drop all samples (between benchmark phases).
    pub fn reset(&self) {
        self.samples.lock().clear();
    }
}

type MetricKey = (Cow<'static, str>, Cow<'static, str>);

/// Repo-wide metric registry: counters, gauges and latency histograms keyed
/// by `(component, name)` pairs, plus the causal [`TraceLog`] and the
/// [`LockContention`] profile. Components with a fixed identity pass
/// `&'static str` keys (zero-cost); per-instance resources (`astore-0.pmem`)
/// pass owned `String`s.
///
/// One registry is created per [`SimEnv`](crate::cluster::SimEnv) and shared
/// (via `Arc`) by every subsystem of that deployment; components that are
/// built outside a cluster (unit-test harnesses) get a
/// [`detached`](Self::detached) registry so instrumentation code never has to
/// branch. Lookup locks a short [`parking_lot::Mutex`]; components do it once
/// at construction and cache the `Arc` handles, so steady-state recording is
/// lock-free.
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<MetricKey, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<MetricKey, Arc<Gauge>>>,
    latencies: Mutex<BTreeMap<MetricKey, Arc<LatencyRecorder>>>,
    timelines: Mutex<BTreeMap<MetricKey, Arc<Timeline>>>,
    trace: Arc<TraceLog>,
    contention: Arc<LockContention>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// Fresh empty registry.
    pub fn new() -> Self {
        MetricsRegistry {
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            latencies: Mutex::new(BTreeMap::new()),
            timelines: Mutex::new(BTreeMap::new()),
            trace: Arc::new(TraceLog::new(TraceLog::DEFAULT_CAPACITY)),
            contention: Arc::new(LockContention::new()),
        }
    }

    /// A private registry for components constructed without a cluster
    /// (harness code, unit tests). Metrics still work; they are just not
    /// visible in any deployment-wide report.
    pub fn detached() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// Get-or-register the counter `component/name`.
    pub fn counter(
        &self,
        component: impl Into<Cow<'static, str>>,
        name: impl Into<Cow<'static, str>>,
    ) -> Arc<Counter> {
        Arc::clone(
            self.counters
                .lock()
                .entry((component.into(), name.into()))
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// Get-or-register the gauge `component/name`.
    pub fn gauge(
        &self,
        component: impl Into<Cow<'static, str>>,
        name: impl Into<Cow<'static, str>>,
    ) -> Arc<Gauge> {
        Arc::clone(
            self.gauges
                .lock()
                .entry((component.into(), name.into()))
                .or_insert_with(|| Arc::new(Gauge::new())),
        )
    }

    /// Get-or-register the latency histogram `component/name`.
    pub fn latency(
        &self,
        component: impl Into<Cow<'static, str>>,
        name: impl Into<Cow<'static, str>>,
    ) -> Arc<LatencyRecorder> {
        Arc::clone(
            self.latencies
                .lock()
                .entry((component.into(), name.into()))
                .or_insert_with(|| Arc::new(LatencyRecorder::new())),
        )
    }

    /// Get-or-register the timeline `component/name` with the default 1 ms
    /// bucket width.
    pub fn timeline(
        &self,
        component: impl Into<Cow<'static, str>>,
        name: impl Into<Cow<'static, str>>,
    ) -> Arc<Timeline> {
        Arc::clone(
            self.timelines
                .lock()
                .entry((component.into(), name.into()))
                .or_insert_with(|| Arc::new(Timeline::new(Timeline::DEFAULT_BUCKET_NS))),
        )
    }

    /// Handles to every registered timeline, sorted by key.
    pub fn timeline_handles(&self) -> Vec<(String, Arc<Timeline>)> {
        self.timelines
            .lock()
            .iter()
            .map(|((c, n), v)| (format!("{c}.{n}"), Arc::clone(v)))
            .collect()
    }

    /// The causal trace log shared by every span in this deployment.
    pub fn trace(&self) -> &Arc<TraceLog> {
        &self.trace
    }

    /// The deployment-wide lock-contention profile (fed by the engine's
    /// lock manager, folded into reports by
    /// [`Profile`](crate::profile::Profile)).
    pub fn lock_contention(&self) -> &Arc<LockContention> {
        &self.contention
    }

    /// Snapshot every counter as `"component.name" -> value`, sorted by key
    /// (BTreeMap order makes snapshots deterministic).
    pub fn counter_values(&self) -> BTreeMap<String, u64> {
        self.counters
            .lock()
            .iter()
            .map(|((c, n), v)| (format!("{c}.{n}"), v.get()))
            .collect()
    }

    /// Snapshot every gauge as `"component.name" -> value`, sorted by key.
    pub fn gauge_values(&self) -> BTreeMap<String, i64> {
        self.gauges
            .lock()
            .iter()
            .map(|((c, n), v)| (format!("{c}.{n}"), v.get()))
            .collect()
    }

    /// Handles to every registered latency histogram, sorted by key.
    pub fn latency_handles(&self) -> Vec<(String, Arc<LatencyRecorder>)> {
        self.latencies
            .lock()
            .iter()
            .map(|((c, n), v)| (format!("{c}.{n}"), Arc::clone(v)))
            .collect()
    }

    /// Atomically drain every metric into `dst`, registering missing keys
    /// there on the fly. Values are moved with `swap(0)` (see
    /// [`Counter::take`] / [`LatencyRecorder::drain_into`]), so concurrent
    /// writers lose nothing: each increment ends up in exactly one of
    /// (drained total, source residue). Gauges are instantaneous values, not
    /// totals — they are copied, not moved.
    pub fn drain_into(&self, dst: &MetricsRegistry) {
        let counters: Vec<(MetricKey, Arc<Counter>)> = self
            .counters
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect();
        for ((c, n), src) in counters {
            dst.counter(c, n).add(src.take());
        }
        let gauges: Vec<(MetricKey, Arc<Gauge>)> = self
            .gauges
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect();
        for ((c, n), src) in gauges {
            dst.gauge(c, n).set(src.get());
        }
        let lats: Vec<(MetricKey, Arc<LatencyRecorder>)> = self
            .latencies
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect();
        for ((c, n), src) in lats {
            src.drain_into(&dst.latency(c, n));
        }
    }

    /// Zero every registered metric (between benchmark phases). Handles stay
    /// registered and cached `Arc`s remain valid.
    pub fn reset(&self) {
        for v in self.counters.lock().values() {
            v.take();
        }
        for v in self.gauges.lock().values() {
            v.set(0);
        }
        for v in self.latencies.lock().values() {
            v.reset();
        }
        for v in self.timelines.lock().values() {
            v.reset();
        }
        self.trace.clear();
        self.contention.reset();
    }
}

/// Counters published by fault-recovery layers (AStore client retries,
/// replica failover, lease renewal, CM-driven repair). One instance is
/// shared per client/component via `Arc`; tests and benchmark reports read
/// the totals to assert that recovery happened and stayed bounded.
#[derive(Default)]
pub struct RecoveryCounters {
    retries: AtomicU64,
    backoff_ns: AtomicU64,
    read_failovers: AtomicU64,
    lease_renewals: AtomicU64,
    route_refreshes: AtomicU64,
    segments_replaced: AtomicU64,
    replicas_repaired: AtomicU64,
}

impl RecoveryCounters {
    /// Fresh, all-zero counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one retried operation (any path: read, write, CM call).
    pub fn note_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Record virtual time spent sleeping in backoff before a retry.
    pub fn note_backoff(&self, slept: VTime) {
        self.backoff_ns
            .fetch_add(slept.as_nanos(), Ordering::Relaxed);
    }

    /// Record a read served by a replica other than the first routed one.
    pub fn note_read_failover(&self) {
        self.read_failovers.fetch_add(1, Ordering::Relaxed);
    }

    /// Record an automatic lease renewal performed by the recovery layer.
    pub fn note_lease_renewal(&self) {
        self.lease_renewals.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a forced route re-resolution (stale/failed route).
    pub fn note_route_refresh(&self) {
        self.route_refreshes.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a segment rolled to a fresh replacement (ring rollover).
    pub fn note_segment_replaced(&self) {
        self.segments_replaced.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one replica re-replicated/pruned by the cluster manager.
    pub fn note_replica_repaired(&self) {
        self.replicas_repaired.fetch_add(1, Ordering::Relaxed);
    }

    /// Total retried operations.
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Total virtual time spent in retry backoff.
    pub fn backoff(&self) -> VTime {
        VTime::from_nanos(self.backoff_ns.load(Ordering::Relaxed))
    }

    /// Total reads served by a non-primary replica.
    pub fn read_failovers(&self) -> u64 {
        self.read_failovers.load(Ordering::Relaxed)
    }

    /// Total automatic lease renewals.
    pub fn lease_renewals(&self) -> u64 {
        self.lease_renewals.load(Ordering::Relaxed)
    }

    /// Total forced route refreshes.
    pub fn route_refreshes(&self) -> u64 {
        self.route_refreshes.load(Ordering::Relaxed)
    }

    /// Total segments rolled to replacements.
    pub fn segments_replaced(&self) -> u64 {
        self.segments_replaced.load(Ordering::Relaxed)
    }

    /// Total replicas repaired by the CM.
    pub fn replicas_repaired(&self) -> u64 {
        self.replicas_repaired.load(Ordering::Relaxed)
    }

    /// Drop all counts (between benchmark phases).
    pub fn reset(&self) {
        self.retries.store(0, Ordering::Relaxed);
        self.backoff_ns.store(0, Ordering::Relaxed);
        self.read_failovers.store(0, Ordering::Relaxed);
        self.lease_renewals.store(0, Ordering::Relaxed);
        self.route_refreshes.store(0, Ordering::Relaxed);
        self.segments_replaced.store(0, Ordering::Relaxed);
        self.replicas_repaired.store(0, Ordering::Relaxed);
    }

    /// Add `other`'s totals into this instance (aggregating per-client
    /// counters into a deployment-wide view). `other` is left untouched; use
    /// [`drain_into`](Self::drain_into) when `other` keeps receiving writes.
    pub fn merge(&self, other: &RecoveryCounters) {
        self.retries
            .fetch_add(other.retries.load(Ordering::Relaxed), Ordering::Relaxed);
        self.backoff_ns
            .fetch_add(other.backoff_ns.load(Ordering::Relaxed), Ordering::Relaxed);
        self.read_failovers.fetch_add(
            other.read_failovers.load(Ordering::Relaxed),
            Ordering::Relaxed,
        );
        self.lease_renewals.fetch_add(
            other.lease_renewals.load(Ordering::Relaxed),
            Ordering::Relaxed,
        );
        self.route_refreshes.fetch_add(
            other.route_refreshes.load(Ordering::Relaxed),
            Ordering::Relaxed,
        );
        self.segments_replaced.fetch_add(
            other.segments_replaced.load(Ordering::Relaxed),
            Ordering::Relaxed,
        );
        self.replicas_repaired.fetch_add(
            other.replicas_repaired.load(Ordering::Relaxed),
            Ordering::Relaxed,
        );
    }

    /// Atomically move this instance's totals into `dst`, zeroing this one.
    /// Each field is transferred with `swap(0)`, so increments racing with
    /// the drain land in exactly one of (dst, residue) — `merge` followed by
    /// `reset` would silently drop them.
    pub fn drain_into(&self, dst: &RecoveryCounters) {
        dst.retries
            .fetch_add(self.retries.swap(0, Ordering::Relaxed), Ordering::Relaxed);
        dst.backoff_ns.fetch_add(
            self.backoff_ns.swap(0, Ordering::Relaxed),
            Ordering::Relaxed,
        );
        dst.read_failovers.fetch_add(
            self.read_failovers.swap(0, Ordering::Relaxed),
            Ordering::Relaxed,
        );
        dst.lease_renewals.fetch_add(
            self.lease_renewals.swap(0, Ordering::Relaxed),
            Ordering::Relaxed,
        );
        dst.route_refreshes.fetch_add(
            self.route_refreshes.swap(0, Ordering::Relaxed),
            Ordering::Relaxed,
        );
        dst.segments_replaced.fetch_add(
            self.segments_replaced.swap(0, Ordering::Relaxed),
            Ordering::Relaxed,
        );
        dst.replicas_repaired.fetch_add(
            self.replicas_repaired.swap(0, Ordering::Relaxed),
            Ordering::Relaxed,
        );
    }
}

impl std::fmt::Debug for RecoveryCounters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecoveryCounters")
            .field("retries", &self.retries())
            .field("backoff", &self.backoff())
            .field("read_failovers", &self.read_failovers())
            .field("lease_renewals", &self.lease_renewals())
            .field("route_refreshes", &self.route_refreshes())
            .field("segments_replaced", &self.segments_replaced())
            .field("replicas_repaired", &self.replicas_repaired())
            .finish()
    }
}

/// Outcome of one benchmark trial: operation counts over a virtual-time
/// window plus the latency distribution.
pub struct TrialResult {
    /// Successfully committed operations/transactions.
    pub committed: u64,
    /// Aborted/retried operations.
    pub aborted: u64,
    /// Virtual-time length of the measurement window.
    pub window: VTime,
    /// Latency distribution of committed operations.
    pub latency: LatencyRecorder,
}

impl TrialResult {
    /// Empty result for a window (drivers fill it in).
    pub fn new(window: VTime) -> Self {
        TrialResult {
            committed: 0,
            aborted: 0,
            window,
            latency: LatencyRecorder::new(),
        }
    }

    /// Committed operations per virtual second.
    pub fn throughput(&self) -> f64 {
        if self.window == VTime::ZERO {
            return 0.0;
        }
        self.committed as f64 / self.window.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_recorder() {
        let r = LatencyRecorder::new();
        assert_eq!(r.count(), 0);
        assert_eq!(r.mean(), VTime::ZERO);
        assert_eq!(r.p99(), VTime::ZERO);
        assert_eq!(r.max(), VTime::ZERO);
    }

    #[test]
    fn single_sample() {
        let r = LatencyRecorder::new();
        r.record(VTime::from_micros(100));
        assert_eq!(r.count(), 1);
        assert_eq!(r.mean(), VTime::from_micros(100));
        let p = r.p50().as_nanos() as f64;
        assert!((p - 100_000.0).abs() / 100_000.0 < 0.05, "p50={p}");
        assert_eq!(r.max(), VTime::from_micros(100));
    }

    #[test]
    fn percentiles_of_uniform_ramp() {
        let r = LatencyRecorder::new();
        for i in 1..=10_000u64 {
            r.record(VTime::from_micros(i));
        }
        let p50 = r.p50().as_micros_f64();
        let p95 = r.p95().as_micros_f64();
        let p99 = r.p99().as_micros_f64();
        assert!((p50 - 5_000.0).abs() / 5_000.0 < 0.06, "p50={p50}");
        assert!((p95 - 9_500.0).abs() / 9_500.0 < 0.06, "p95={p95}");
        assert!((p99 - 9_900.0).abs() / 9_900.0 < 0.06, "p99={p99}");
        assert_eq!(r.max(), VTime::from_micros(10_000));
    }

    #[test]
    fn small_values_are_exact() {
        let r = LatencyRecorder::new();
        for ns in 0..32u64 {
            r.record(VTime::from_nanos(ns));
        }
        assert_eq!(r.count(), 32);
        // Buckets below SUB are exact: rank 1 is the 0ns sample, rank 2 is 1ns.
        assert_eq!(r.percentile(100.0 / 32.0).as_nanos(), 0);
        assert_eq!(r.percentile(200.0 / 32.0).as_nanos(), 1);
        assert_eq!(r.percentile(100.0).as_nanos(), 31);
    }

    #[test]
    fn merge_combines() {
        let a = LatencyRecorder::new();
        let b = LatencyRecorder::new();
        a.record(VTime::from_micros(10));
        b.record(VTime::from_micros(1000));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), VTime::from_micros(1000));
        assert_eq!(a.mean(), VTime::from_micros(505));
    }

    #[test]
    fn reset_clears() {
        let r = LatencyRecorder::new();
        r.record(VTime::from_micros(5));
        r.reset();
        assert_eq!(r.count(), 0);
        assert_eq!(r.max(), VTime::ZERO);
    }

    #[test]
    fn trial_throughput() {
        let mut t = TrialResult::new(VTime::from_secs(2));
        t.committed = 1000;
        assert!((t.throughput() - 500.0).abs() < 1e-9);
        let empty = TrialResult::new(VTime::ZERO);
        assert_eq!(empty.throughput(), 0.0);
    }

    #[test]
    fn timeline_buckets_last_write_wins() {
        let tl = Timeline::new(1_000); // 1us buckets
        tl.record(VTime::from_nanos(100), 3);
        tl.record(VTime::from_nanos(900), 5); // same bucket, overwrites
        tl.record(VTime::from_micros(2), -1);
        let snap = tl.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[&0], 5);
        assert_eq!(snap[&2], -1);
        tl.reset();
        assert!(tl.is_empty());
    }

    #[test]
    fn timeline_add_accumulates_within_bucket() {
        let tl = Timeline::new(1_000); // 1us buckets
        tl.add(VTime::from_nanos(100), 3);
        tl.add(VTime::from_nanos(900), 5); // same bucket, sums
        tl.add(VTime::from_micros(2), 2);
        let snap = tl.snapshot();
        assert_eq!(snap[&0], 8);
        assert_eq!(snap[&2], 2);
    }

    #[test]
    fn timeline_add_busy_splits_across_buckets() {
        let tl = Timeline::new(1_000);
        // 300ns..2_500ns spans buckets 0 (700ns), 1 (1000ns), 2 (500ns).
        tl.add_busy(300, 2_500);
        let snap = tl.snapshot();
        assert_eq!(snap[&0], 700);
        assert_eq!(snap[&1], 1_000);
        assert_eq!(snap[&2], 500);
        // Total deposited equals the interval length.
        assert_eq!(snap.values().sum::<i64>(), 2_200);
        // Degenerate interval deposits nothing.
        tl.add_busy(10, 10);
        assert_eq!(tl.snapshot().values().sum::<i64>(), 2_200);
    }

    #[test]
    fn registry_accepts_owned_keys() {
        let reg = MetricsRegistry::new();
        let name = format!("astore-{}.pmem", 0);
        reg.counter(name.clone(), "busy_ns").add(7);
        // Same dynamic key resolves to the same handle as a fresh String.
        assert_eq!(reg.counter("astore-0.pmem".to_string(), "busy_ns").get(), 7);
        assert_eq!(reg.counter_values()["astore-0.pmem.busy_ns"], 7);
        // Static and owned keys share one namespace.
        reg.gauge("engine.cpu", "lanes").set(20);
        assert_eq!(reg.gauge_values()["engine.cpu.lanes"], 20);
    }

    #[test]
    fn recorder_total_is_exact_sum() {
        let r = LatencyRecorder::new();
        r.record(VTime::from_nanos(123_457));
        r.record(VTime::from_nanos(1));
        assert_eq!(r.total(), VTime::from_nanos(123_458));
    }

    #[test]
    fn registry_timelines_register_and_reset() {
        let reg = MetricsRegistry::new();
        reg.timeline("pagestore", "apply_lag_records")
            .record(VTime::from_millis(3), 7);
        let handles = reg.timeline_handles();
        assert_eq!(handles.len(), 1);
        assert_eq!(handles[0].0, "pagestore.apply_lag_records");
        assert_eq!(handles[0].1.snapshot()[&3], 7);
        reg.reset();
        assert!(handles[0].1.is_empty());
    }

    #[test]
    fn concurrent_record() {
        use std::sync::Arc;
        let r = Arc::new(LatencyRecorder::new());
        let mut hs = vec![];
        for t in 0..4 {
            let r = Arc::clone(&r);
            hs.push(std::thread::spawn(move || {
                for i in 0..10_000u64 {
                    r.record(VTime::from_nanos(i * (t + 1)));
                }
            }));
        }
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(r.count(), 40_000);
    }
}
