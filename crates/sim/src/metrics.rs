//! Latency histograms and benchmark trial results.
//!
//! [`LatencyRecorder`] is a log-bucketed concurrent histogram (HdrHistogram
//! style, ~3% relative error): 64 power-of-two magnitude groups × 32 linear
//! sub-buckets, all atomic, so hundreds of driver threads can record without
//! locks. Percentiles, mean and max are derived from the buckets.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::time::VTime;

const SUB_BITS: u32 = 5; // 32 sub-buckets per magnitude
const SUB: usize = 1 << SUB_BITS;
const GROUPS: usize = 64;

/// Concurrent log-bucketed latency histogram over virtual-time samples.
pub struct LatencyRecorder {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for LatencyRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyRecorder {
    /// Create an empty recorder.
    pub fn new() -> Self {
        LatencyRecorder {
            buckets: (0..GROUPS * SUB).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }

    #[inline]
    fn index(ns: u64) -> usize {
        if ns < SUB as u64 {
            return ns as usize;
        }
        let mag = 63 - ns.leading_zeros(); // >= SUB_BITS
        let group = (mag - SUB_BITS + 1) as usize;
        let sub = ((ns >> (mag - SUB_BITS)) - SUB as u64) as usize;
        // group 0 handles values < SUB directly above
        (group * SUB + sub).min(GROUPS * SUB - 1)
    }

    /// Representative (midpoint-ish) value of bucket `i` in nanoseconds.
    fn bucket_value(i: usize) -> u64 {
        let group = i / SUB;
        let sub = (i % SUB) as u64;
        if group == 0 {
            return sub;
        }
        let shift = (group - 1) as u32;
        ((SUB as u64 + sub) << shift) + (1u64 << shift) / 2
    }

    /// Record one latency sample.
    pub fn record(&self, lat: VTime) {
        let ns = lat.as_nanos();
        self.buckets[Self::index(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency (zero if empty).
    pub fn mean(&self) -> VTime {
        let n = self.count();
        if n == 0 {
            return VTime::ZERO;
        }
        VTime::from_nanos(self.sum_ns.load(Ordering::Relaxed) / n)
    }

    /// Maximum recorded latency (exact, not bucketed).
    pub fn max(&self) -> VTime {
        VTime::from_nanos(self.max_ns.load(Ordering::Relaxed))
    }

    /// Percentile in `[0, 100]`; returns the representative value of the
    /// bucket containing that rank (zero if empty).
    pub fn percentile(&self, p: f64) -> VTime {
        let n = self.count();
        if n == 0 {
            return VTime::ZERO;
        }
        let rank = ((p / 100.0) * n as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return VTime::from_nanos(Self::bucket_value(i));
            }
        }
        self.max()
    }

    /// Median (P50).
    pub fn p50(&self) -> VTime {
        self.percentile(50.0)
    }

    /// P95.
    pub fn p95(&self) -> VTime {
        self.percentile(95.0)
    }

    /// P99.
    pub fn p99(&self) -> VTime {
        self.percentile(99.0)
    }

    /// Merge another recorder's samples into this one.
    pub fn merge(&self, other: &LatencyRecorder) {
        for (a, b) in self.buckets.iter().zip(other.buckets.iter()) {
            let v = b.load(Ordering::Relaxed);
            if v > 0 {
                a.fetch_add(v, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(other.count(), Ordering::Relaxed);
        self.sum_ns
            .fetch_add(other.sum_ns.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max_ns
            .fetch_max(other.max_ns.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Drop all samples.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_ns.store(0, Ordering::Relaxed);
        self.max_ns.store(0, Ordering::Relaxed);
    }
}

/// Counters published by fault-recovery layers (AStore client retries,
/// replica failover, lease renewal, CM-driven repair). One instance is
/// shared per client/component via `Arc`; tests and benchmark reports read
/// the totals to assert that recovery happened and stayed bounded.
#[derive(Default)]
pub struct RecoveryCounters {
    retries: AtomicU64,
    backoff_ns: AtomicU64,
    read_failovers: AtomicU64,
    lease_renewals: AtomicU64,
    route_refreshes: AtomicU64,
    segments_replaced: AtomicU64,
    replicas_repaired: AtomicU64,
}

impl RecoveryCounters {
    /// Fresh, all-zero counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one retried operation (any path: read, write, CM call).
    pub fn note_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Record virtual time spent sleeping in backoff before a retry.
    pub fn note_backoff(&self, slept: VTime) {
        self.backoff_ns
            .fetch_add(slept.as_nanos(), Ordering::Relaxed);
    }

    /// Record a read served by a replica other than the first routed one.
    pub fn note_read_failover(&self) {
        self.read_failovers.fetch_add(1, Ordering::Relaxed);
    }

    /// Record an automatic lease renewal performed by the recovery layer.
    pub fn note_lease_renewal(&self) {
        self.lease_renewals.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a forced route re-resolution (stale/failed route).
    pub fn note_route_refresh(&self) {
        self.route_refreshes.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a segment rolled to a fresh replacement (ring rollover).
    pub fn note_segment_replaced(&self) {
        self.segments_replaced.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one replica re-replicated/pruned by the cluster manager.
    pub fn note_replica_repaired(&self) {
        self.replicas_repaired.fetch_add(1, Ordering::Relaxed);
    }

    /// Total retried operations.
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Total virtual time spent in retry backoff.
    pub fn backoff(&self) -> VTime {
        VTime::from_nanos(self.backoff_ns.load(Ordering::Relaxed))
    }

    /// Total reads served by a non-primary replica.
    pub fn read_failovers(&self) -> u64 {
        self.read_failovers.load(Ordering::Relaxed)
    }

    /// Total automatic lease renewals.
    pub fn lease_renewals(&self) -> u64 {
        self.lease_renewals.load(Ordering::Relaxed)
    }

    /// Total forced route refreshes.
    pub fn route_refreshes(&self) -> u64 {
        self.route_refreshes.load(Ordering::Relaxed)
    }

    /// Total segments rolled to replacements.
    pub fn segments_replaced(&self) -> u64 {
        self.segments_replaced.load(Ordering::Relaxed)
    }

    /// Total replicas repaired by the CM.
    pub fn replicas_repaired(&self) -> u64 {
        self.replicas_repaired.load(Ordering::Relaxed)
    }

    /// Drop all counts (between benchmark phases).
    pub fn reset(&self) {
        self.retries.store(0, Ordering::Relaxed);
        self.backoff_ns.store(0, Ordering::Relaxed);
        self.read_failovers.store(0, Ordering::Relaxed);
        self.lease_renewals.store(0, Ordering::Relaxed);
        self.route_refreshes.store(0, Ordering::Relaxed);
        self.segments_replaced.store(0, Ordering::Relaxed);
        self.replicas_repaired.store(0, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for RecoveryCounters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecoveryCounters")
            .field("retries", &self.retries())
            .field("backoff", &self.backoff())
            .field("read_failovers", &self.read_failovers())
            .field("lease_renewals", &self.lease_renewals())
            .field("route_refreshes", &self.route_refreshes())
            .field("segments_replaced", &self.segments_replaced())
            .field("replicas_repaired", &self.replicas_repaired())
            .finish()
    }
}

/// Outcome of one benchmark trial: operation counts over a virtual-time
/// window plus the latency distribution.
pub struct TrialResult {
    /// Successfully committed operations/transactions.
    pub committed: u64,
    /// Aborted/retried operations.
    pub aborted: u64,
    /// Virtual-time length of the measurement window.
    pub window: VTime,
    /// Latency distribution of committed operations.
    pub latency: LatencyRecorder,
}

impl TrialResult {
    /// Empty result for a window (drivers fill it in).
    pub fn new(window: VTime) -> Self {
        TrialResult {
            committed: 0,
            aborted: 0,
            window,
            latency: LatencyRecorder::new(),
        }
    }

    /// Committed operations per virtual second.
    pub fn throughput(&self) -> f64 {
        if self.window == VTime::ZERO {
            return 0.0;
        }
        self.committed as f64 / self.window.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_recorder() {
        let r = LatencyRecorder::new();
        assert_eq!(r.count(), 0);
        assert_eq!(r.mean(), VTime::ZERO);
        assert_eq!(r.p99(), VTime::ZERO);
        assert_eq!(r.max(), VTime::ZERO);
    }

    #[test]
    fn single_sample() {
        let r = LatencyRecorder::new();
        r.record(VTime::from_micros(100));
        assert_eq!(r.count(), 1);
        assert_eq!(r.mean(), VTime::from_micros(100));
        let p = r.p50().as_nanos() as f64;
        assert!((p - 100_000.0).abs() / 100_000.0 < 0.05, "p50={p}");
        assert_eq!(r.max(), VTime::from_micros(100));
    }

    #[test]
    fn percentiles_of_uniform_ramp() {
        let r = LatencyRecorder::new();
        for i in 1..=10_000u64 {
            r.record(VTime::from_micros(i));
        }
        let p50 = r.p50().as_micros_f64();
        let p95 = r.p95().as_micros_f64();
        let p99 = r.p99().as_micros_f64();
        assert!((p50 - 5_000.0).abs() / 5_000.0 < 0.06, "p50={p50}");
        assert!((p95 - 9_500.0).abs() / 9_500.0 < 0.06, "p95={p95}");
        assert!((p99 - 9_900.0).abs() / 9_900.0 < 0.06, "p99={p99}");
        assert_eq!(r.max(), VTime::from_micros(10_000));
    }

    #[test]
    fn small_values_are_exact() {
        let r = LatencyRecorder::new();
        for ns in 0..32u64 {
            r.record(VTime::from_nanos(ns));
        }
        assert_eq!(r.count(), 32);
        // Buckets below SUB are exact: rank 1 is the 0ns sample, rank 2 is 1ns.
        assert_eq!(r.percentile(100.0 / 32.0).as_nanos(), 0);
        assert_eq!(r.percentile(200.0 / 32.0).as_nanos(), 1);
        assert_eq!(r.percentile(100.0).as_nanos(), 31);
    }

    #[test]
    fn merge_combines() {
        let a = LatencyRecorder::new();
        let b = LatencyRecorder::new();
        a.record(VTime::from_micros(10));
        b.record(VTime::from_micros(1000));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), VTime::from_micros(1000));
        assert_eq!(a.mean(), VTime::from_micros(505));
    }

    #[test]
    fn reset_clears() {
        let r = LatencyRecorder::new();
        r.record(VTime::from_micros(5));
        r.reset();
        assert_eq!(r.count(), 0);
        assert_eq!(r.max(), VTime::ZERO);
    }

    #[test]
    fn trial_throughput() {
        let mut t = TrialResult::new(VTime::from_secs(2));
        t.committed = 1000;
        assert!((t.throughput() - 500.0).abs() < 1e-9);
        let empty = TrialResult::new(VTime::ZERO);
        assert_eq!(empty.throughput(), 0.0);
    }

    #[test]
    fn concurrent_record() {
        use std::sync::Arc;
        let r = Arc::new(LatencyRecorder::new());
        let mut hs = vec![];
        for t in 0..4 {
            let r = Arc::clone(&r);
            hs.push(std::thread::spawn(move || {
                for i in 0..10_000u64 {
                    r.record(VTime::from_nanos(i * (t + 1)));
                }
            }));
        }
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(r.count(), 40_000);
    }
}
