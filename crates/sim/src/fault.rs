//! Failure injection shared across all simulated components.
//!
//! A [`FaultPlan`] is a small bag of switches consulted by the device and
//! network layers: which nodes are currently crashed, and with what
//! probability messages should be dropped (used by the PageStore gossip
//! tests). Components hold an `Arc<FaultPlan>` and check it on every
//! operation, so tests can kill an AStore server mid-write or partition a
//! replica without any special hooks in the code under test.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;

/// Identifier of a simulated node (assigned by the node registry).
pub type NodeId = u32;

/// Shared failure-injection state.
#[derive(Default)]
pub struct FaultPlan {
    crashed: RwLock<HashSet<NodeId>>,
    /// Partitioned nodes: alive (state intact, heartbeats may be stale) but
    /// unreachable over the fabric — every message to them is dropped.
    partitioned: RwLock<HashSet<NodeId>>,
    /// f64 bits of the message-drop probability.
    drop_prob_bits: AtomicU64,
}

impl FaultPlan {
    /// A plan with nothing failing.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mark `node` crashed: RDMA and RPC operations against it fail until
    /// [`FaultPlan::restore`].
    pub fn crash(&self, node: NodeId) {
        self.crashed.write().insert(node);
    }

    /// Bring `node` back (its persistent state — PMem contents — survives;
    /// volatile state does not; that split is enforced by `vedb-pmem`).
    pub fn restore(&self, node: NodeId) {
        self.crashed.write().remove(&node);
    }

    /// Is `node` currently crashed?
    pub fn is_crashed(&self, node: NodeId) -> bool {
        self.crashed.read().contains(&node)
    }

    /// Number of currently-crashed nodes.
    pub fn crashed_count(&self) -> usize {
        self.crashed.read().len()
    }

    /// Partition `node` off the network: it stays up (volatile state
    /// intact, unlike [`FaultPlan::crash`]) but every message to it is
    /// dropped until [`FaultPlan::heal`].
    pub fn partition(&self, node: NodeId) {
        self.partitioned.write().insert(node);
    }

    /// Heal a network partition injected by [`FaultPlan::partition`].
    pub fn heal(&self, node: NodeId) {
        self.partitioned.write().remove(&node);
    }

    /// Is `node` currently partitioned off the network?
    pub fn is_partitioned(&self, node: NodeId) -> bool {
        self.partitioned.read().contains(&node)
    }

    /// Set the probability in `[0,1]` that any single message is dropped.
    pub fn set_drop_prob(&self, p: f64) {
        self.drop_prob_bits
            .store(p.clamp(0.0, 1.0).to_bits(), Ordering::Relaxed);
    }

    /// Current message-drop probability.
    pub fn drop_prob(&self) -> f64 {
        f64::from_bits(self.drop_prob_bits.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_and_restore() {
        let f = FaultPlan::new();
        assert!(!f.is_crashed(3));
        f.crash(3);
        f.crash(5);
        assert!(f.is_crashed(3));
        assert_eq!(f.crashed_count(), 2);
        f.restore(3);
        assert!(!f.is_crashed(3));
        assert!(f.is_crashed(5));
    }

    #[test]
    fn partition_and_heal() {
        let f = FaultPlan::new();
        assert!(!f.is_partitioned(2));
        f.partition(2);
        assert!(f.is_partitioned(2));
        assert!(!f.is_crashed(2), "partition must not imply crash");
        f.heal(2);
        assert!(!f.is_partitioned(2));
    }

    #[test]
    fn drop_probability_roundtrip_and_clamp() {
        let f = FaultPlan::new();
        assert_eq!(f.drop_prob(), 0.0);
        f.set_drop_prob(0.25);
        assert!((f.drop_prob() - 0.25).abs() < 1e-12);
        f.set_drop_prob(7.0);
        assert_eq!(f.drop_prob(), 1.0);
        f.set_drop_prob(-1.0);
        assert_eq!(f.drop_prob(), 0.0);
    }
}
