//! Failure injection shared across all simulated components.
//!
//! A [`FaultPlan`] is a small bag of switches consulted by the device and
//! network layers: which nodes are currently crashed, and with what
//! probability messages should be dropped (used by the PageStore gossip
//! tests). Components hold an `Arc<FaultPlan>` and check it on every
//! operation, so tests can kill an AStore server mid-write or partition a
//! replica without any special hooks in the code under test.
//!
//! When a [`TraceLog`] is attached (done by
//! [`ClusterSpec::build`](crate::cluster::ClusterSpec::build)), the
//! timestamped injection variants ([`crash_at`](FaultPlan::crash_at),
//! [`partition_at`](FaultPlan::partition_at), …) additionally record each
//! injection as an instantaneous `fault/<op>` trace event carrying the
//! node id, so chaos runs can correlate failures with latency spikes in
//! the exported report. The un-timestamped originals stay silent — they
//! have no virtual clock to stamp.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::time::VTime;
use crate::trace::TraceLog;

/// Identifier of a simulated node (assigned by the node registry).
pub type NodeId = u32;

/// Shared failure-injection state.
#[derive(Default)]
pub struct FaultPlan {
    crashed: RwLock<HashSet<NodeId>>,
    /// Partitioned nodes: alive (state intact, heartbeats may be stale) but
    /// unreachable over the fabric — every message to them is dropped.
    partitioned: RwLock<HashSet<NodeId>>,
    /// f64 bits of the message-drop probability.
    drop_prob_bits: AtomicU64,
    /// Trace log fault events are recorded into, when attached.
    trace: RwLock<Option<Arc<TraceLog>>>,
}

impl FaultPlan {
    /// A plan with nothing failing.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mark `node` crashed: RDMA and RPC operations against it fail until
    /// [`FaultPlan::restore`].
    pub fn crash(&self, node: NodeId) {
        self.crashed.write().insert(node);
    }

    /// Bring `node` back (its persistent state — PMem contents — survives;
    /// volatile state does not; that split is enforced by `vedb-pmem`).
    pub fn restore(&self, node: NodeId) {
        self.crashed.write().remove(&node);
    }

    /// Is `node` currently crashed?
    pub fn is_crashed(&self, node: NodeId) -> bool {
        self.crashed.read().contains(&node)
    }

    /// Number of currently-crashed nodes.
    pub fn crashed_count(&self) -> usize {
        self.crashed.read().len()
    }

    /// Partition `node` off the network: it stays up (volatile state
    /// intact, unlike [`FaultPlan::crash`]) but every message to it is
    /// dropped until [`FaultPlan::heal`].
    pub fn partition(&self, node: NodeId) {
        self.partitioned.write().insert(node);
    }

    /// Heal a network partition injected by [`FaultPlan::partition`].
    pub fn heal(&self, node: NodeId) {
        self.partitioned.write().remove(&node);
    }

    /// Is `node` currently partitioned off the network?
    pub fn is_partitioned(&self, node: NodeId) -> bool {
        self.partitioned.read().contains(&node)
    }

    /// Set the probability in `[0,1]` that any single message is dropped.
    pub fn set_drop_prob(&self, p: f64) {
        self.drop_prob_bits
            .store(p.clamp(0.0, 1.0).to_bits(), Ordering::Relaxed);
    }

    /// Current message-drop probability.
    pub fn drop_prob(&self) -> f64 {
        f64::from_bits(self.drop_prob_bits.load(Ordering::Relaxed))
    }

    /// Attach the trace log the timestamped injection variants record
    /// into. [`ClusterSpec::build`](crate::cluster::ClusterSpec::build)
    /// wires the deployment's log here so chaos suites get fault events in
    /// their exported reports for free.
    pub fn attach_trace(&self, trace: Arc<TraceLog>) {
        *self.trace.write() = Some(trace);
    }

    fn note(&self, at: VTime, op: &'static str, node: NodeId) {
        if let Some(t) = self.trace.read().as_ref() {
            t.instant(at, "fault", op, node as u64);
        }
    }

    /// [`crash`](Self::crash) plus a `fault/crash` trace event at virtual
    /// time `at`.
    pub fn crash_at(&self, at: VTime, node: NodeId) {
        self.crash(node);
        self.note(at, "crash", node);
    }

    /// [`restore`](Self::restore) plus a `fault/restore` trace event.
    pub fn restore_at(&self, at: VTime, node: NodeId) {
        self.restore(node);
        self.note(at, "restore", node);
    }

    /// [`partition`](Self::partition) plus a `fault/partition` trace event.
    pub fn partition_at(&self, at: VTime, node: NodeId) {
        self.partition(node);
        self.note(at, "partition", node);
    }

    /// [`heal`](Self::heal) plus a `fault/heal` trace event.
    pub fn heal_at(&self, at: VTime, node: NodeId) {
        self.heal(node);
        self.note(at, "heal", node);
    }

    /// [`set_drop_prob`](Self::set_drop_prob) plus a trace event:
    /// `fault/drops_on` when `p > 0`, `fault/drops_off` when the
    /// probability returns to zero. The node field is unused (drops are
    /// fabric-wide) and recorded as 0.
    pub fn set_drop_prob_at(&self, at: VTime, p: f64) {
        self.set_drop_prob(p);
        self.note(at, if p > 0.0 { "drops_on" } else { "drops_off" }, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_and_restore() {
        let f = FaultPlan::new();
        assert!(!f.is_crashed(3));
        f.crash(3);
        f.crash(5);
        assert!(f.is_crashed(3));
        assert_eq!(f.crashed_count(), 2);
        f.restore(3);
        assert!(!f.is_crashed(3));
        assert!(f.is_crashed(5));
    }

    #[test]
    fn partition_and_heal() {
        let f = FaultPlan::new();
        assert!(!f.is_partitioned(2));
        f.partition(2);
        assert!(f.is_partitioned(2));
        assert!(!f.is_crashed(2), "partition must not imply crash");
        f.heal(2);
        assert!(!f.is_partitioned(2));
    }

    #[test]
    fn timestamped_injections_record_trace_instants() {
        let f = FaultPlan::new();
        // Without an attached trace, the *_at variants still inject.
        f.crash_at(VTime::from_millis(1), 4);
        assert!(f.is_crashed(4));

        let log = Arc::new(TraceLog::new(16));
        log.enable();
        f.attach_trace(Arc::clone(&log));
        f.restore_at(VTime::from_millis(2), 4);
        f.partition_at(VTime::from_millis(3), 5);
        f.heal_at(VTime::from_millis(4), 5);
        f.set_drop_prob_at(VTime::from_millis(5), 0.3);
        f.set_drop_prob_at(VTime::from_millis(6), 0.0);
        assert!(!f.is_crashed(4));
        assert!(!f.is_partitioned(5));
        assert_eq!(f.drop_prob(), 0.0);

        let evs = log.events();
        let ops: Vec<&str> = evs.iter().map(|e| e.op).collect();
        assert_eq!(
            ops,
            ["restore", "partition", "heal", "drops_on", "drops_off"]
        );
        assert!(evs.iter().all(|e| e.component == "fault"));
        assert_eq!(evs[0].client, 4);
        assert_eq!(evs[1].start, VTime::from_millis(3));
    }

    #[test]
    fn drop_probability_roundtrip_and_clamp() {
        let f = FaultPlan::new();
        assert_eq!(f.drop_prob(), 0.0);
        f.set_drop_prob(0.25);
        assert!((f.drop_prob() - 0.25).abs() < 1e-12);
        f.set_drop_prob(7.0);
        assert_eq!(f.drop_prob(), 1.0);
        f.set_drop_prob(-1.0);
        assert_eq!(f.drop_prob(), 0.0);
    }
}
