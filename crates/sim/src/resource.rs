//! Contended k-lane resources with virtual-time queueing.
//!
//! A [`Resource`] models a piece of hardware with `k` parallel servers: a
//! CPU with `k` cores, a PMem DIMM with `k` concurrent access lanes, an SSD
//! with `k` channels, a NIC link with `k` in-flight slots. Each lane keeps a
//! short calendar of future reservations. To use the resource, a client
//! books the earliest-completing slot across lanes:
//!
//! ```text
//! completion = earliest gap of length `service` at or after `now`
//! ```
//!
//! Crucially, reservations are **gap-aware**: a client whose clock is
//! slightly behind another's (driver threads run closed-loop with bounded
//! virtual-time skew) can backfill an idle interval *before* someone else's
//! future reservation, exactly as the real device would serve the request
//! that arrives first. A simple busy-until watermark would instead let one
//! future reservation block the whole lane — inflating queueing delay by
//! the skew bound at every hop.
//!
//! This is a standard G/G/k calendar-queue simulation; throughput
//! saturation and latency blow-up under concurrency emerge naturally,
//! which is the behaviour the paper's Figures 6, 7 and 13 hinge on.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::metrics::{Counter, LatencyRecorder, MetricsRegistry, Timeline};
use crate::time::VTime;

/// How much history a lane retains. Reservations ending further than this
/// before the newest observed clock are pruned; clients are never this far
/// apart (the trial driver bounds skew to a couple of milliseconds).
const HISTORY_NS: u64 = 50_000_000; // 50ms

#[derive(Default)]
struct Lane {
    /// Sorted, non-overlapping reservations (start, end) in nanoseconds.
    slots: Vec<(u64, u64)>,
}

impl Lane {
    /// Earliest (start, completion, insert_index) for a job of `svc` ns
    /// arriving at `now`. Intervals fully before `now` are skipped with a
    /// binary search, so cost is proportional to the number of *future*
    /// gaps, which coalescing keeps tiny.
    fn earliest(&self, now: u64, svc: u64) -> (u64, u64, usize) {
        let first = self.slots.partition_point(|&(_, e)| e <= now);
        let mut candidate = now;
        for (i, &(s, e)) in self.slots.iter().enumerate().skip(first) {
            if candidate + svc <= s {
                return (candidate, candidate + svc, i);
            }
            candidate = candidate.max(e);
        }
        (candidate, candidate + svc, self.slots.len())
    }

    /// Insert a reservation, coalescing with adjacent intervals so dense
    /// back-to-back traffic collapses into a single interval per lane.
    fn reserve(&mut self, start: u64, end: u64, idx: usize) {
        let merges_prev = idx > 0 && self.slots[idx - 1].1 == start;
        let merges_next = idx < self.slots.len() && self.slots[idx].0 == end;
        match (merges_prev, merges_next) {
            (true, true) => {
                self.slots[idx - 1].1 = self.slots[idx].1;
                self.slots.remove(idx);
            }
            (true, false) => self.slots[idx - 1].1 = end,
            (false, true) => self.slots[idx].0 = start,
            (false, false) => self.slots.insert(idx, (start, end)),
        }
    }

    fn prune(&mut self, horizon: u64) {
        let keep_from = self.slots.partition_point(|&(_, e)| e < horizon);
        if keep_from > 0 {
            self.slots.drain(..keep_from);
        }
    }
}

struct State {
    lanes: Vec<Lane>,
    max_seen_now: u64,
    total_busy_ns: u64,
    ops: u64,
}

/// Metric handles a resource publishes into when built with
/// [`Resource::with_metrics`]: the wait/service split, total busy time and
/// op counts, plus a busy-ns-per-bucket utilization [`Timeline`].
struct ResourceMetrics {
    wait: Arc<LatencyRecorder>,
    service: Arc<LatencyRecorder>,
    busy_ns: Arc<Counter>,
    ops: Arc<Counter>,
    util: Arc<Timeline>,
}

/// A named, contended resource with `k` parallel lanes.
pub struct Resource {
    name: String,
    state: Mutex<State>,
    n_lanes: usize,
    metrics: Option<ResourceMetrics>,
}

impl Resource {
    /// Create a resource with `lanes` parallel servers.
    ///
    /// # Panics
    /// Panics if `lanes == 0`.
    pub fn new(name: impl Into<String>, lanes: usize) -> Self {
        assert!(lanes > 0, "a resource needs at least one lane");
        Resource {
            name: name.into(),
            state: Mutex::new(State {
                lanes: (0..lanes).map(|_| Lane::default()).collect(),
                max_seen_now: 0,
                total_busy_ns: 0,
                ops: 0,
            }),
            n_lanes: lanes,
            metrics: None,
        }
    }

    /// Like [`new`](Self::new), publishing this resource's saturation
    /// metrics into `registry` under its own name as the component:
    ///
    /// * `<name>.wait` / `<name>.service` latency histograms — every
    ///   acquisition split into queueing delay (`start - now`) and service
    ///   time, so `wait + service` equals the caller-observed latency
    ///   exactly;
    /// * `<name>.busy_ns` / `<name>.ops` counters (totals);
    /// * `<name>.lanes` gauge — marks the component as a resource for
    ///   report discovery and carries the parallelism for utilization math;
    /// * `<name>.util_busy_ns` timeline — per-bucket busy nanoseconds
    ///   (bucket utilization = value / (bucket_ns × lanes)).
    pub fn with_metrics(name: impl Into<String>, lanes: usize, registry: &MetricsRegistry) -> Self {
        let name = name.into();
        registry.gauge(name.clone(), "lanes").set(lanes as i64);
        let metrics = ResourceMetrics {
            wait: registry.latency(name.clone(), "wait"),
            service: registry.latency(name.clone(), "service"),
            busy_ns: registry.counter(name.clone(), "busy_ns"),
            ops: registry.counter(name.clone(), "ops"),
            util: registry.timeline(name.clone(), "util_busy_ns"),
        };
        let mut r = Self::new(name, lanes);
        r.metrics = Some(metrics);
        r
    }

    /// Name given at construction (for reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of parallel lanes.
    pub fn lanes(&self) -> usize {
        self.n_lanes
    }

    /// Reserve `service` time on the earliest-available lane slot at or
    /// after `now`. Returns the completion time (≥ `now + service`).
    pub fn acquire(&self, now: VTime, service: VTime) -> VTime {
        if service == VTime::ZERO {
            return now;
        }
        let now_ns = now.as_nanos();
        let svc = service.as_nanos();
        let mut st = self.state.lock();
        st.max_seen_now = st.max_seen_now.max(now_ns);
        // Periodic pruning of ancient reservations.
        if st.ops.is_multiple_of(64) {
            let horizon = st.max_seen_now.saturating_sub(HISTORY_NS);
            for lane in &mut st.lanes {
                lane.prune(horizon);
            }
        }
        let mut best: Option<(u64, u64, usize, usize)> = None; // start,end,lane,idx
        for (li, lane) in st.lanes.iter().enumerate() {
            let (start, end, idx) = lane.earliest(now_ns, svc);
            if best.map(|(_, be, _, _)| end < be).unwrap_or(true) {
                best = Some((start, end, li, idx));
                if start == now_ns {
                    break; // cannot do better than starting immediately
                }
            }
        }
        let (start, end, li, idx) = best.expect("at least one lane");
        st.lanes[li].reserve(start, end, idx);
        st.total_busy_ns += svc;
        st.ops += 1;
        drop(st);
        if let Some(m) = &self.metrics {
            // By construction start >= now and end == start + svc, so
            // wait + service == end - now exactly (the conservation the
            // attribution proptest pins).
            m.wait.record(VTime::from_nanos(start - now_ns));
            m.service.record(service);
            m.busy_ns.add(svc);
            m.ops.inc();
            m.util.add_busy(start, end);
        }
        VTime::from_nanos(end)
    }

    /// Total service time ever charged (utilization accounting).
    pub fn total_busy(&self) -> VTime {
        VTime::from_nanos(self.state.lock().total_busy_ns)
    }

    /// Number of operations ever served.
    pub fn ops(&self) -> u64 {
        self.state.lock().ops
    }

    /// Utilization over a window of virtual time (1.0 = all lanes busy the
    /// whole window). Values above 1.0 mean the accounting window was shorter
    /// than the busy period (e.g. warm-up excluded); callers clamp as needed.
    pub fn utilization(&self, window: VTime) -> f64 {
        if window == VTime::ZERO {
            return 0.0;
        }
        self.total_busy().as_nanos() as f64 / (window.as_nanos() as f64 * self.n_lanes as f64)
    }

    /// Reset lane timelines and counters (between benchmark phases).
    pub fn reset(&self) {
        let mut st = self.state.lock();
        for lane in &mut st.lanes {
            lane.slots.clear();
        }
        st.max_seen_now = 0;
        st.total_busy_ns = 0;
        st.ops = 0;
    }
}

impl std::fmt::Debug for Resource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Resource")
            .field("name", &self.name)
            .field("lanes", &self.n_lanes)
            .field("ops", &self.ops())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_resource_serves_immediately() {
        let r = Resource::new("cpu", 2);
        let done = r.acquire(VTime::from_micros(100), VTime::from_micros(10));
        assert_eq!(done, VTime::from_micros(110));
    }

    #[test]
    fn zero_service_is_free() {
        let r = Resource::new("cpu", 1);
        assert_eq!(
            r.acquire(VTime::from_micros(5), VTime::ZERO),
            VTime::from_micros(5)
        );
        assert_eq!(r.ops(), 0);
    }

    #[test]
    fn single_lane_serializes() {
        let r = Resource::new("disk", 1);
        let d1 = r.acquire(VTime::ZERO, VTime::from_micros(10));
        let d2 = r.acquire(VTime::ZERO, VTime::from_micros(10));
        let d3 = r.acquire(VTime::ZERO, VTime::from_micros(10));
        assert_eq!(d1, VTime::from_micros(10));
        assert_eq!(d2, VTime::from_micros(20));
        assert_eq!(d3, VTime::from_micros(30));
    }

    #[test]
    fn two_lanes_run_two_in_parallel() {
        let r = Resource::new("nic", 2);
        let d1 = r.acquire(VTime::ZERO, VTime::from_micros(10));
        let d2 = r.acquire(VTime::ZERO, VTime::from_micros(10));
        let d3 = r.acquire(VTime::ZERO, VTime::from_micros(10));
        assert_eq!(d1, VTime::from_micros(10));
        assert_eq!(d2, VTime::from_micros(10));
        assert_eq!(d3, VTime::from_micros(20));
    }

    #[test]
    fn late_arrival_does_not_wait() {
        let r = Resource::new("disk", 1);
        let _ = r.acquire(VTime::ZERO, VTime::from_micros(10));
        // Arrives after the first job is done: starts at its own `now`.
        let done = r.acquire(VTime::from_micros(50), VTime::from_micros(10));
        assert_eq!(done, VTime::from_micros(60));
    }

    #[test]
    fn earlier_arrival_backfills_before_future_reservation() {
        let r = Resource::new("disk", 1);
        // A client "ahead" in virtual time books 100us..110us.
        let d1 = r.acquire(VTime::from_micros(100), VTime::from_micros(10));
        assert_eq!(d1, VTime::from_micros(110));
        // A client "behind" at t=0 fits entirely before that reservation
        // and must not queue behind it.
        let d2 = r.acquire(VTime::ZERO, VTime::from_micros(10));
        assert_eq!(d2, VTime::from_micros(10));
        // A job too large for the gap goes after.
        let d3 = r.acquire(VTime::from_micros(95), VTime::from_micros(10));
        assert_eq!(d3, VTime::from_micros(120));
    }

    #[test]
    fn backfill_between_two_reservations() {
        let r = Resource::new("disk", 1);
        let _ = r.acquire(VTime::ZERO, VTime::from_micros(10)); // 0..10
        let _ = r.acquire(VTime::from_micros(40), VTime::from_micros(10)); // 40..50
                                                                           // Fits in the 10..40 gap.
        let d = r.acquire(VTime::from_micros(5), VTime::from_micros(20));
        assert_eq!(d, VTime::from_micros(30));
    }

    #[test]
    fn utilization_accounting() {
        let r = Resource::new("cpu", 2);
        r.acquire(VTime::ZERO, VTime::from_micros(10));
        r.acquire(VTime::ZERO, VTime::from_micros(30));
        // 40us busy across 2 lanes over a 20us window -> 1.0
        assert!((r.utilization(VTime::from_micros(20)) - 1.0).abs() < 1e-9);
        assert_eq!(r.ops(), 2);
        r.reset();
        assert_eq!(r.ops(), 0);
        assert_eq!(r.total_busy(), VTime::ZERO);
    }

    #[test]
    fn concurrent_acquire_is_consistent() {
        use std::sync::Arc;
        let r = Arc::new(Resource::new("cpu", 4));
        let svc = VTime::from_micros(5);
        let mut handles = vec![];
        for _ in 0..8 {
            let r = Arc::clone(&r);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    r.acquire(VTime::ZERO, svc);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.ops(), 8_000);
        // All service time must be accounted exactly once.
        assert_eq!(r.total_busy(), VTime::from_micros(5 * 8_000));
        assert!(r.utilization(VTime::from_millis(10)) >= 1.0);
    }

    #[test]
    fn reservations_do_not_overlap_within_a_lane() {
        let mut rng = crate::rng::SimRng::new(42);
        let r = Resource::new("x", 3);
        for _ in 0..2000 {
            let now = VTime::from_nanos(rng.gen_range(0..1_000_000u64));
            let svc = VTime::from_nanos(rng.gen_range(1..50_000u64));
            r.acquire(now, svc);
        }
        let st = r.state.lock();
        for lane in &st.lanes {
            for w in lane.slots.windows(2) {
                assert!(w[0].1 <= w[1].0, "overlap: {:?} then {:?}", w[0], w[1]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn zero_lanes_panics() {
        let _ = Resource::new("bad", 0);
    }

    #[test]
    fn history_pruning_never_undercounts_total_busy() {
        // Regression guard for the utilization accounting: `HISTORY_NS`
        // pruning drains old lane *reservations* (calendar slots) but must
        // never touch `total_busy_ns`, which accumulates independently per
        // acquire. Drive a long-lived single-lane resource far past the
        // 50ms history horizon (pruning runs every 64 ops) and check every
        // charged nanosecond is still accounted.
        let r = Resource::new("pmem", 1);
        let svc = VTime::from_micros(100);
        let step = VTime::from_millis(2);
        let n: u64 = 1000; // spans 2s of virtual time, 40x the horizon
        for i in 0..n {
            r.acquire(step * i, svc);
        }
        assert_eq!(r.total_busy(), svc * n);
        assert_eq!(r.ops(), n);
        // The lanes themselves were pruned (bounded memory), proving the
        // horizon actually passed through the calendar.
        let slots: usize = r.state.lock().lanes.iter().map(|l| l.slots.len()).sum();
        assert!(
            slots < (n as usize) / 2,
            "pruning never ran: {slots} slots retained"
        );
    }

    #[test]
    fn attached_resource_splits_wait_and_service() {
        let reg = MetricsRegistry::new();
        let r = Resource::with_metrics("disk", 1, &reg);
        let d1 = r.acquire(VTime::ZERO, VTime::from_micros(10));
        let d2 = r.acquire(VTime::ZERO, VTime::from_micros(10));
        assert_eq!(d1, VTime::from_micros(10));
        assert_eq!(d2, VTime::from_micros(20)); // queued 10us behind d1
        let lats = reg.latency_handles();
        let get = |name: &str| {
            lats.iter()
                .find(|(k, _)| k == name)
                .map(|(_, h)| Arc::clone(h))
                .unwrap()
        };
        let wait = get("disk.wait");
        let service = get("disk.service");
        assert_eq!(wait.count(), 2);
        assert_eq!(wait.total(), VTime::from_micros(10)); // 0 + 10us
        assert_eq!(service.total(), VTime::from_micros(20));
        // wait + service == total caller-observed latency (20us + 20us).
        assert_eq!(
            wait.total() + service.total(),
            (d1 - VTime::ZERO) + (d2 - VTime::ZERO)
        );
        assert_eq!(reg.gauge_values()["disk.lanes"], 1);
        assert_eq!(reg.counter_values()["disk.busy_ns"], 20_000);
        assert_eq!(reg.counter_values()["disk.ops"], 2);
        // Both 10us services land in utilization bucket 0 (1ms buckets).
        let tl = &reg.timeline_handles()[0];
        assert_eq!(tl.0, "disk.util_busy_ns");
        assert_eq!(tl.1.snapshot()[&0], 20_000);
    }

    #[test]
    fn detached_resource_records_nothing() {
        let r = Resource::new("disk", 1);
        r.acquire(VTime::ZERO, VTime::from_micros(10));
        assert!(r.metrics.is_none());
    }
}
