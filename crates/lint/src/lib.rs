//! `vedb-lint` — determinism & crash-safety static analysis for the veDB
//! workspace.
//!
//! The simulator's headline property is *byte-determinism*: one seed, one
//! report. That property is easy to break with one stray `Instant::now()`
//! or an iterated `HashMap` on the report path, and such regressions are
//! invisible to `cargo test` (the test may pass 99 runs out of 100). This
//! crate turns the determinism rules — and two crash-safety rules that are
//! equally invisible to tests — into a CI gate:
//!
//! | lint | invariant |
//! |------|-----------|
//! | `no-wall-clock` | all runtime timing flows from the virtual clock |
//! | `no-unseeded-rng` | all randomness flows from the seeded `SimCtx` RNG |
//! | `ordered-serialization` | report-path iteration is order-stable |
//! | `no-panic-in-runtime` | server request paths return typed errors |
//! | `lock-order` | the lock-acquisition graph is acyclic and reviewed |
//!
//! Findings are suppressed site-by-site with
//! `// vedb-lint: allow(<lint>, "<reason>")`; the reason is mandatory and
//! a missing one is itself a diagnostic (`bad-suppression`).
//!
//! Run it exactly like CI does:
//!
//! ```text
//! cargo run -p vedb-lint -- crates/ src/ examples/
//! ```

use std::fmt;
use std::path::{Path, PathBuf};

pub mod lints;
pub mod lockgraph;
pub mod scan;

/// How bad a finding is. Everything the gate emits today is an error —
/// the variant exists so a future `Warning` tier doesn't change the
/// diagnostic format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Fails the gate.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One finding, rendered rustc-style: `error[lint]: msg\n  --> file:line`.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Severity tier.
    pub severity: Severity,
    /// Which lint fired (e.g. `no-wall-clock`).
    pub lint: String,
    /// File the finding is in.
    pub path: String,
    /// 1-based line (0 = file-level, e.g. a stale golden entry).
    pub line: usize,
    /// Human-readable explanation with the fix direction.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}[{}]: {}", self.severity, self.lint, self.message)?;
        if self.line > 0 {
            write!(f, "  --> {}:{}", self.path, self.line)
        } else {
            write!(f, "  --> {}", self.path)
        }
    }
}

/// Options for a whole-tree run.
pub struct RunOptions {
    /// Path of the lock-order golden file.
    pub golden_path: String,
    /// When set, rewrite the golden file from the tree instead of
    /// diffing against it.
    pub write_golden: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            golden_path: "crates/lint/lock_order.golden".to_string(),
            write_golden: false,
        }
    }
}

/// Run the four token lints (plus suppression-syntax checking) over one
/// already-scanned file. Lock-order edges are extracted separately because
/// they need the whole tree. This is the entry point the fixture tests use.
pub fn analyze_scanned(s: &scan::Scanned, out: &mut Vec<Diagnostic>) {
    lints::check_suppression_syntax(s, out);
    lints::no_wall_clock(s, out);
    lints::no_unseeded_rng(s, out);
    lints::ordered_serialization(s, out);
    lints::no_panic_in_runtime(s, out);
}

/// Convenience wrapper for tests: scan + analyze one source string.
pub fn analyze_source(path: &str, src: &str) -> Vec<Diagnostic> {
    let s = scan::scan(path, src);
    let mut out = Vec::new();
    analyze_scanned(&s, &mut out);
    out
}

/// Should this path be linted at all? Skips build output, vendored shims,
/// the lint crate's own fixtures, and integration-test trees (tests may
/// use wall clocks and panics freely).
fn lintable(path: &Path) -> bool {
    let p = path.to_string_lossy().replace('\\', "/");
    if !p.ends_with(".rs") {
        return false;
    }
    let skip = [
        "/target/",
        "/vendor/",
        "/fixtures/",
        "/tests/",
        "/benches/",
        "crates/lint/",
    ];
    !skip.iter().any(|s| p.contains(s))
}

/// Collect every lintable `.rs` file under `roots` (each may be a file or
/// a directory), sorted for deterministic output.
pub fn collect_files(roots: &[String]) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for root in roots {
        let root = Path::new(root);
        if root.is_file() {
            if lintable(root) {
                files.push(root.to_path_buf());
            }
            continue;
        }
        if root.is_dir() {
            walk(root, &mut files)?;
        }
    }
    files.sort();
    files.dedup();
    Ok(files)
}

fn walk(dir: &Path, files: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if matches!(
                name.as_ref(),
                "target" | "vendor" | ".git" | "fixtures" | "tests" | "benches"
            ) {
                continue;
            }
            walk(&path, files)?;
        } else if lintable(&path) {
            files.push(path);
        }
    }
    Ok(())
}

/// Whole-tree run: lint every file under `roots`, then check the
/// lock-order graph against the golden file. Returns all diagnostics
/// (empty = gate passes). When `opts.write_golden` is set the golden file
/// is rewritten and lock-order diffing is skipped (cycles still fail).
pub fn run(roots: &[String], opts: &RunOptions) -> std::io::Result<Vec<Diagnostic>> {
    let files = collect_files(roots)?;
    let mut diags = Vec::new();
    let mut scans = Vec::new();
    let mut edges = Vec::new();
    for file in &files {
        let src = std::fs::read_to_string(file)?;
        let label = file.to_string_lossy().replace('\\', "/");
        let label = label.strip_prefix("./").unwrap_or(&label).to_string();
        let s = scan::scan(&label, &src);
        analyze_scanned(&s, &mut diags);
        edges.extend(lockgraph::extract_edges(&s));
        scans.push(s);
    }
    let graph = lockgraph::build_graph(&edges);
    if opts.write_golden {
        std::fs::write(&opts.golden_path, lockgraph::render_golden(&graph))?;
        // Even a freshly written golden must not contain a cycle.
        for cyc in lockgraph::find_cycles(&graph) {
            diags.push(Diagnostic {
                severity: Severity::Error,
                lint: lints::LOCK_ORDER.to_string(),
                path: opts.golden_path.clone(),
                line: 0,
                message: format!("lock-order cycle: {}", cyc.join(" -> ")),
            });
        }
    } else {
        let golden_text = std::fs::read_to_string(&opts.golden_path).unwrap_or_default();
        let golden = lockgraph::parse_golden(&golden_text);
        lockgraph::diff_against_golden(&graph, &golden, &opts.golden_path, &scans, &mut diags);
    }
    // Unused suppressions are drift: the code they excused is gone.
    for s in &scans {
        for sup in &s.suppressions {
            if sup.lint == lints::LOCK_ORDER {
                // Lock-order suppressions waive *edges*, which only show up
                // when new; an edge already in the golden file leaves its
                // suppression intentionally dormant.
                continue;
            }
            let used = diags_would_hit(s, sup);
            if !used {
                diags.push(Diagnostic {
                    severity: Severity::Error,
                    lint: lints::BAD_SUPPRESSION.to_string(),
                    path: s.path.clone(),
                    line: sup.line,
                    message: format!(
                        "unused suppression for `{}` — the finding it excused is \
                         gone; delete the directive",
                        sup.lint
                    ),
                });
            }
        }
    }
    diags.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok(diags)
}

/// Would `sup` suppress at least one finding? Re-runs the single lint it
/// names over the file and checks for a hit on the covered lines.
fn diags_would_hit(s: &scan::Scanned, sup: &scan::Suppression) -> bool {
    // Build an unsuppressed view of the same file: same code, no directives.
    let bare = scan::Scanned {
        path: s.path.clone(),
        code: s.code.clone(),
        suppressions: Vec::new(),
        bad_directives: Vec::new(),
    };
    let mut out = Vec::new();
    match sup.lint.as_str() {
        lint if lint == lints::NO_WALL_CLOCK => lints::no_wall_clock(&bare, &mut out),
        lint if lint == lints::NO_UNSEEDED_RNG => lints::no_unseeded_rng(&bare, &mut out),
        lint if lint == lints::ORDERED_SERIALIZATION => {
            lints::ordered_serialization(&bare, &mut out)
        }
        lint if lint == lints::NO_PANIC_IN_RUNTIME => lints::no_panic_in_runtime(&bare, &mut out),
        _ => return true, // unknown lint names are caught elsewhere; don't double-report
    }
    out.iter()
        .any(|d| d.line == sup.line || (!sup.trailing && sup.line + 1 == d.line))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagnostic_renders_rustc_style() {
        let d = Diagnostic {
            severity: Severity::Error,
            lint: "no-wall-clock".into(),
            path: "crates/core/src/db.rs".into(),
            line: 42,
            message: "msg".into(),
        };
        let text = d.to_string();
        assert!(text.starts_with("error[no-wall-clock]: msg"));
        assert!(text.contains("--> crates/core/src/db.rs:42"));
    }

    #[test]
    fn analyze_source_flags_wall_clock() {
        let diags = analyze_source(
            "crates/core/src/db.rs",
            "fn f() { let t = Instant::now(); }\n",
        );
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].lint, "no-wall-clock");
    }

    #[test]
    fn suppressed_finding_is_quiet() {
        let diags = analyze_source(
            "crates/core/src/db.rs",
            "// vedb-lint: allow(no-wall-clock, \"test clock\")\nfn f() { let t = Instant::now(); }\n",
        );
        assert!(diags.is_empty());
    }
}
