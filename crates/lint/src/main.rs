//! `vedb-lint` CLI.
//!
//! ```text
//! cargo run -p vedb-lint -- crates/ src/ examples/
//! cargo run -p vedb-lint -- --write-golden crates/ src/ examples/
//! cargo run -p vedb-lint -- --golden path/to/lock_order.golden crates/
//! ```
//!
//! Exit status: `0` when no unsuppressed diagnostics, `1` when findings
//! were emitted, `2` on usage/IO errors.

use std::process::ExitCode;

use vedb_lint::{run, RunOptions};

fn main() -> ExitCode {
    let mut roots: Vec<String> = Vec::new();
    let mut opts = RunOptions::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--write-golden" => opts.write_golden = true,
            "--golden" => match args.next() {
                Some(p) => opts.golden_path = p,
                None => {
                    eprintln!("error: --golden requires a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                eprintln!(
                    "usage: vedb-lint [--golden <file>] [--write-golden] <paths>...\n\
                     \n\
                     Lints: no-wall-clock, no-unseeded-rng, ordered-serialization,\n\
                     no-panic-in-runtime, lock-order.\n\
                     Suppress a finding with: // vedb-lint: allow(<lint>, \"<reason>\")"
                );
                return ExitCode::SUCCESS;
            }
            _ if arg.starts_with('-') => {
                eprintln!("error: unknown flag `{arg}` (see --help)");
                return ExitCode::from(2);
            }
            _ => roots.push(arg),
        }
    }
    if roots.is_empty() {
        roots = vec!["crates".into(), "src".into(), "examples".into()];
    }
    let diags = match run(&roots, &opts) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    for d in &diags {
        println!("{d}\n");
    }
    if opts.write_golden {
        eprintln!("wrote {}", opts.golden_path);
    }
    if diags.is_empty() {
        eprintln!("vedb-lint: clean");
        ExitCode::SUCCESS
    } else {
        eprintln!("vedb-lint: {} unsuppressed finding(s)", diags.len());
        ExitCode::FAILURE
    }
}
