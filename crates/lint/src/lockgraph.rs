//! Lint 5 — **lock-order**: the static lock-acquisition graph.
//!
//! Deadlocks in this codebase come from one shape: function F acquires
//! lock class B while already holding class A, and function G does the
//! reverse. This pass extracts every such ordered pair *statically* and
//! maintains them as a committed golden file
//! (`crates/lint/lock_order.golden`): a new edge is an explicit diff a
//! reviewer must acknowledge, and a cycle in the class graph fails the
//! build outright.
//!
//! ## What counts as an acquisition
//!
//! * `recv.lock()` — `parking_lot::Mutex` (zero-arg only; `stream.lock(x)`
//!   style calls don't exist here),
//! * `recv.read()` / `recv.write()` — zero-arg `RwLock` guards (the
//!   zero-arg requirement keeps `io::Read::read(buf)` out),
//! * `recv.acquire(..)` where `recv` ends in `locks` — the engine's
//!   row-lock `LockManager`.
//!
//! ## Lock classes
//!
//! A class is `<crate>/<file-stem>::<final field name>` — e.g.
//! `core/db::ship_buf` for `self.ship_buf.lock()`. Distinct fields with
//! one name in one file merge into one class; that is deliberately
//! conservative (a false cycle is a prompt to rename a field, a missed
//! cycle would be a silent deadlock).
//!
//! ## Guard lifetimes (approximation)
//!
//! A guard bound by `let g = ...` lives until its enclosing block closes,
//! `drop(g)` runs, or `g` is re-bound. An unbound guard (temporary) lives
//! to the end of its statement. Guards returned from helper functions are
//! invisible — the helper's own acquisitions are attributed to the helper.
//! These approximations are pinned by the fixture suite.

use std::collections::{BTreeMap, BTreeSet};

use crate::scan::Scanned;
use crate::{Diagnostic, Severity};

/// One directed edge: `from` was held while `to` was acquired.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Edge {
    /// Class already held.
    pub from: String,
    /// Class acquired under it.
    pub to: String,
}

/// An edge plus one example site (for diagnostics; not part of the golden
/// identity).
#[derive(Debug, Clone)]
pub struct EdgeSite {
    /// The edge.
    pub edge: Edge,
    /// `file:line` of one acquisition that created it.
    pub site: String,
    /// Function it occurred in.
    pub function: String,
    /// Line (for suppression lookup).
    pub line: usize,
}

/// Lock class for a path label like `crates/core/src/db.rs`.
fn class_prefix(path: &str) -> String {
    let p = path.replace('\\', "/");
    let stem = p
        .rsplit('/')
        .next()
        .unwrap_or(&p)
        .trim_end_matches(".rs")
        .to_string();
    let krate = p
        .split("crates/")
        .nth(1)
        .and_then(|r| r.split('/').next())
        .unwrap_or("root")
        .to_string();
    format!("{krate}/{stem}")
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tok<'a> {
    Ident(&'a str),
    Punct(u8),
}

struct Lexed<'a> {
    toks: Vec<(usize, Tok<'a>)>, // (line, token)
}

fn lex(code: &str) -> Lexed<'_> {
    let bytes = code.as_bytes();
    let mut toks = Vec::new();
    let mut line = 1;
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if b == b'\n' {
            line += 1;
            i += 1;
        } else if b.is_ascii_alphabetic() || b == b'_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            toks.push((line, Tok::Ident(&code[start..i])));
        } else if b.is_ascii_whitespace() {
            i += 1;
        } else {
            toks.push((line, Tok::Punct(b)));
            i += 1;
        }
    }
    Lexed { toks }
}

/// A live guard.
#[derive(Debug, Clone)]
struct Guard {
    class: String,
    /// Binding name (`None` = statement temporary).
    name: Option<String>,
    /// Brace depth the guard was acquired at (its scope closes when the
    /// enclosing block does).
    depth: usize,
    /// Acquired in the statement currently being read (resolved at `;`).
    from_stmt: bool,
    /// The acquisition was the statement's top-level expression
    /// (`… .lock();` directly before the `;`), so a `let` binding names the
    /// guard itself — not some value computed *from* a temporary guard, as
    /// in `let blob = encode(&self.meta.lock());` where the guard dies at
    /// the semicolon.
    bindable: bool,
}

/// Reconstruct the receiver chain of a method call: `body[dot_idx]` is the
/// `.` before the method name; walk left over `ident (. ident)*`, skipping
/// `[...]` index expressions. `foo().lock()` (call-result receivers) return
/// `None` — helper-returned guards are invisible by design.
fn receiver_of(body: &[(usize, Tok<'_>)], dot_idx: usize) -> Option<String> {
    let mut parts: Vec<String> = Vec::new();
    let mut dot = dot_idx;
    loop {
        let mut j = dot.checked_sub(1)?;
        match body.get(j)?.1 {
            Tok::Punct(b']') => {
                let mut depth = 0i32;
                loop {
                    match body.get(j)?.1 {
                        Tok::Punct(b']') => depth += 1,
                        Tok::Punct(b'[') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j = j.checked_sub(1)?;
                }
                j = j.checked_sub(1)?;
                match body.get(j)?.1 {
                    Tok::Ident(name) => parts.push(name.to_string()),
                    _ => return None,
                }
            }
            Tok::Ident(name) => parts.push(name.to_string()),
            _ => return None,
        }
        match j.checked_sub(1).map(|p| body[p].1) {
            Some(Tok::Punct(b'.')) => dot = j - 1,
            _ => break,
        }
    }
    parts.reverse();
    Some(parts.join("."))
}

/// Extract every (held → acquired) edge from one file.
pub fn extract_edges(s: &Scanned) -> Vec<EdgeSite> {
    let prefix = class_prefix(&s.path);
    let lexed = lex(&s.code);
    let toks = &lexed.toks;
    let mut edges: Vec<EdgeSite> = Vec::new();

    let mut i = 0;
    while i < toks.len() {
        if let (_, Tok::Ident("fn")) = toks[i] {
            // fn name ... { body }
            let fn_name = match toks.get(i + 1) {
                Some((_, Tok::Ident(n))) => n.to_string(),
                _ => {
                    i += 1;
                    continue;
                }
            };
            // Find the body's opening brace at angle/paren depth 0. `where`
            // clauses and return types may contain braces only inside
            // type-level constructs we don't see at depth 0.
            let mut j = i + 2;
            let mut paren = 0i32;
            let mut body_start = None;
            while j < toks.len() {
                match toks[j].1 {
                    Tok::Punct(b'(') | Tok::Punct(b'[') => paren += 1,
                    Tok::Punct(b')') | Tok::Punct(b']') => paren -= 1,
                    Tok::Punct(b'{') if paren == 0 => {
                        body_start = Some(j);
                        break;
                    }
                    Tok::Punct(b';') if paren == 0 => break, // trait method decl
                    _ => {}
                }
                j += 1;
            }
            let Some(body_start) = body_start else {
                i = j + 1;
                continue;
            };
            let body_end = matching_brace(toks, body_start);
            analyze_fn(
                s,
                &prefix,
                &fn_name,
                &toks[body_start..body_end],
                &mut edges,
            );
            i = body_end;
        } else {
            i += 1;
        }
    }
    edges
}

fn matching_brace(toks: &[(usize, Tok<'_>)], open: usize) -> usize {
    let mut depth = 0;
    for (k, (_, t)) in toks.iter().enumerate().skip(open) {
        match t {
            Tok::Punct(b'{') => depth += 1,
            Tok::Punct(b'}') => {
                depth -= 1;
                if depth == 0 {
                    return k + 1;
                }
            }
            _ => {}
        }
    }
    toks.len()
}

/// Walk one function body tracking guards and recording edges.
fn analyze_fn(
    s: &Scanned,
    prefix: &str,
    fn_name: &str,
    body: &[(usize, Tok<'_>)],
    edges: &mut Vec<EdgeSite>,
) {
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth: usize = 0;
    // Pending `let` binding name for the current statement.
    let mut stmt_let: Option<String> = None;

    let mut i = 0;
    while i < body.len() {
        let (line, t) = body[i];
        match t {
            Tok::Punct(b'{') => depth += 1,
            Tok::Punct(b'}') => {
                depth = depth.saturating_sub(1);
                guards.retain(|g| g.depth <= depth);
                // Closing a block ends the statement too.
                end_statement(&mut guards, &mut stmt_let);
            }
            Tok::Punct(b';') => {
                end_statement(&mut guards, &mut stmt_let);
            }
            Tok::Ident("let") => {
                // `let [mut] name =`
                let mut k = i + 1;
                if let Some((_, Tok::Ident("mut"))) = body.get(k) {
                    k += 1;
                }
                if let Some((_, Tok::Ident(name))) = body.get(k) {
                    stmt_let = Some(name.to_string());
                    // Rebinding a name sheds the old guard.
                    guards.retain(|g| g.name.as_deref() != Some(*name));
                }
            }
            Tok::Ident("drop") => {
                if let (Some((_, Tok::Punct(b'('))), Some((_, Tok::Ident(victim)))) =
                    (body.get(i + 1), body.get(i + 2))
                {
                    let victim = victim.to_string();
                    guards.retain(|g| g.name.as_deref() != Some(victim.as_str()));
                }
            }
            Tok::Ident(m @ ("lock" | "read" | "write" | "acquire")) => {
                // Must look like `. m ( )` (or `.acquire(args)` on `locks`).
                let dotted = matches!(body.get(i.wrapping_sub(1)), Some((_, Tok::Punct(b'.'))));
                let open = matches!(body.get(i + 1), Some((_, Tok::Punct(b'('))));
                if !dotted || !open {
                    i += 1;
                    continue;
                }
                let zero_arg = matches!(body.get(i + 2), Some((_, Tok::Punct(b')'))));
                let recv = receiver_of(body, i - 1);
                // Closing paren of this call: for zero-arg calls it is
                // i + 2; for `acquire(args…)` walk to the match.
                let close = if zero_arg {
                    i + 2
                } else {
                    let mut depth_p = 0i32;
                    let mut k = i + 1;
                    loop {
                        match body.get(k).map(|t| t.1) {
                            Some(Tok::Punct(b'(')) => depth_p += 1,
                            Some(Tok::Punct(b')')) => {
                                depth_p -= 1;
                                if depth_p == 0 {
                                    break k;
                                }
                            }
                            None => break k,
                            _ => {}
                        }
                        k += 1;
                    }
                };
                let bindable = matches!(body.get(close + 1), Some((_, Tok::Punct(b';'))));
                let class = match (m, zero_arg, recv.as_deref()) {
                    ("acquire", _, Some(r)) if r.ends_with("locks") => {
                        format!("{prefix}::row-locks")
                    }
                    ("lock" | "read" | "write", true, Some(r)) => {
                        let field = r.rsplit('.').next().unwrap_or(r);
                        if field == "self" || field.is_empty() {
                            i += 1;
                            continue;
                        }
                        format!("{prefix}::{field}")
                    }
                    _ => {
                        i += 1;
                        continue;
                    }
                };
                // Record edges from every live guard of a different class.
                let mut seen: BTreeSet<&str> = BTreeSet::new();
                for g in &guards {
                    if g.class != class && seen.insert(g.class.as_str()) {
                        edges.push(EdgeSite {
                            edge: Edge {
                                from: g.class.clone(),
                                to: class.clone(),
                            },
                            site: format!("{}:{}", s.path, line),
                            function: fn_name.to_string(),
                            line,
                        });
                    }
                }
                guards.push(Guard {
                    class,
                    name: None,
                    depth,
                    from_stmt: true,
                    bindable,
                });
            }
            _ => {}
        }
        i += 1;
    }
}

/// At `;` (or block close): statement temporaries die; the statement's
/// first acquisition survives when the statement was a `let` binding
/// (matching `let g = a.lock();`).
fn end_statement(guards: &mut Vec<Guard>, stmt_let: &mut Option<String>) {
    let bound = stmt_let.take();
    let mut named = false;
    guards.retain_mut(|g| {
        if !g.from_stmt {
            return true;
        }
        g.from_stmt = false;
        if !named && g.bindable {
            if let Some(b) = &bound {
                g.name = Some(b.clone());
                named = true;
                return true;
            }
        }
        false
    });
}

/// The whole-tree graph: dedup edges, keep the first example site of each.
pub fn build_graph(all: &[EdgeSite]) -> BTreeMap<Edge, EdgeSite> {
    let mut graph: BTreeMap<Edge, EdgeSite> = BTreeMap::new();
    for es in all {
        graph.entry(es.edge.clone()).or_insert_with(|| es.clone());
    }
    graph
}

/// Serialize the graph in golden-file form (one `A -> B` per line, sorted).
pub fn render_golden(graph: &BTreeMap<Edge, EdgeSite>) -> String {
    let mut out = String::from(
        "# vedb-lint lock-order golden file.\n\
         # One edge per line: <held-class> -> <acquired-class>.\n\
         # Regenerate with: cargo run -p vedb-lint -- --write-golden <paths>\n",
    );
    for e in graph.keys() {
        out.push_str(&format!("{} -> {}\n", e.from, e.to));
    }
    out
}

/// Parse a golden file back into edges.
pub fn parse_golden(text: &str) -> BTreeSet<Edge> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| {
            l.split_once("->").map(|(a, b)| Edge {
                from: a.trim().to_string(),
                to: b.trim().to_string(),
            })
        })
        .collect()
}

/// Find cycles in the class graph. Returns each cycle as the ordered list
/// of classes (starting from the lexicographically smallest member, so
/// output is deterministic).
pub fn find_cycles(graph: &BTreeMap<Edge, EdgeSite>) -> Vec<Vec<String>> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for e in graph.keys() {
        adj.entry(&e.from).or_default().push(&e.to);
    }
    let mut cycles: BTreeSet<Vec<String>> = BTreeSet::new();
    // Bounded DFS from every node; the graphs here are tiny.
    let nodes: Vec<&str> = adj.keys().copied().collect();
    for &start in &nodes {
        let mut stack = vec![(start, vec![start])];
        while let Some((node, path)) = stack.pop() {
            if let Some(nexts) = adj.get(node) {
                for &n in nexts {
                    if n == start {
                        let mut cyc: Vec<String> = path.iter().map(|s| s.to_string()).collect();
                        // Canonicalize: rotate so the smallest element leads.
                        let min_pos = (0..cyc.len()).min_by_key(|&i| cyc[i].clone()).unwrap_or(0);
                        cyc.rotate_left(min_pos);
                        cycles.insert(cyc);
                    } else if !path.contains(&n) && path.len() < 16 {
                        let mut np = path.clone();
                        np.push(n);
                        stack.push((n, np));
                    }
                }
            }
        }
    }
    cycles.into_iter().collect()
}

/// Compare the tree's graph against the golden set; emit diagnostics for
/// new edges, stale golden entries, and cycles.
pub fn diff_against_golden(
    graph: &BTreeMap<Edge, EdgeSite>,
    golden: &BTreeSet<Edge>,
    golden_path: &str,
    scans: &[Scanned],
    out: &mut Vec<Diagnostic>,
) {
    for (edge, site) in graph {
        if golden.contains(edge) {
            continue;
        }
        // A lock-order suppression on the acquisition line waives the edge.
        let suppressed = scans
            .iter()
            .find(|s| site.site.starts_with(&s.path))
            .and_then(|s| s.is_suppressed(crate::lints::LOCK_ORDER, site.line))
            .is_some();
        if suppressed {
            continue;
        }
        let (path, line) = site
            .site
            .rsplit_once(':')
            .map(|(p, l)| (p.to_string(), l.parse().unwrap_or(0)))
            .unwrap_or((site.site.clone(), 0));
        out.push(Diagnostic {
            severity: Severity::Error,
            lint: crate::lints::LOCK_ORDER.to_string(),
            path,
            line,
            message: format!(
                "new lock-acquisition edge `{} -> {}` (in `{}`) is not in {}; \
                 if the ordering is intended, regenerate the golden file with \
                 `cargo run -p vedb-lint -- --write-golden`",
                edge.from, edge.to, site.function, golden_path
            ),
        });
    }
    for edge in golden {
        if !graph.contains_key(edge) {
            out.push(Diagnostic {
                severity: Severity::Error,
                lint: crate::lints::LOCK_ORDER.to_string(),
                path: golden_path.to_string(),
                line: 0,
                message: format!(
                    "stale golden edge `{} -> {}` no longer exists in the tree; \
                     regenerate the golden file",
                    edge.from, edge.to
                ),
            });
        }
    }
    for cyc in find_cycles(graph) {
        let ring = cyc.join(" -> ");
        let first_site = cyc
            .first()
            .and_then(|a| {
                graph
                    .iter()
                    .find(|(e, _)| e.from == *a)
                    .map(|(_, s)| s.site.clone())
            })
            .unwrap_or_default();
        out.push(Diagnostic {
            severity: Severity::Error,
            lint: crate::lints::LOCK_ORDER.to_string(),
            path: first_site
                .rsplit_once(':')
                .map(|(p, _)| p.to_string())
                .unwrap_or_default(),
            line: 0,
            message: format!(
                "lock-order cycle: {ring} -> {} — two call paths can deadlock; \
                 break the cycle or merge the locks",
                cyc.first().map(String::as_str).unwrap_or("")
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan;

    #[test]
    fn nested_guard_produces_edge() {
        let s = scan(
            "crates/core/src/db.rs",
            "fn f(&self) {\n    let g = self.meta.lock();\n    let h = self.ship_buf.lock();\n}\n",
        );
        let edges = extract_edges(&s);
        assert_eq!(edges.len(), 1);
        assert_eq!(edges[0].edge.from, "core/db::meta");
        assert_eq!(edges[0].edge.to, "core/db::ship_buf");
    }

    #[test]
    fn dropped_guard_produces_no_edge() {
        let s = scan(
            "crates/core/src/db.rs",
            "fn f(&self) {\n    let g = self.meta.lock();\n    drop(g);\n    let h = self.ship_buf.lock();\n}\n",
        );
        assert!(extract_edges(&s).is_empty());
    }

    #[test]
    fn block_scoped_guard_dies_at_close() {
        let s = scan(
            "crates/core/src/db.rs",
            "fn f(&self) {\n    {\n        let g = self.meta.lock();\n    }\n    let h = self.ship_buf.lock();\n}\n",
        );
        assert!(extract_edges(&s).is_empty());
    }

    #[test]
    fn temporary_guard_scopes_to_statement() {
        let s = scan(
            "crates/core/src/db.rs",
            "fn f(&self) {\n    self.meta.lock().insert(1);\n    let h = self.ship_buf.lock();\n}\n",
        );
        assert!(extract_edges(&s).is_empty());
        let s2 = scan(
            "crates/core/src/db.rs",
            "fn f(&self) {\n    foo(&self.meta.lock(), &self.ship_buf.lock());\n}\n",
        );
        let edges = extract_edges(&s2);
        assert_eq!(edges.len(), 1);
    }

    #[test]
    fn nested_call_guard_is_a_temporary_not_the_binding() {
        // `blob` binds encode()'s return value; the meta guard dies at `;`.
        let s = scan(
            "crates/core/src/db.rs",
            "fn f(&self) {\n    let blob = encode(&self.meta.lock());\n    let g = self.page.lock();\n}\n",
        );
        assert!(extract_edges(&s).is_empty());
    }

    #[test]
    fn io_write_with_args_is_not_a_lock() {
        let s = scan(
            "crates/core/src/db.rs",
            "fn f(&self) {\n    let g = self.meta.lock();\n    file.write(buf);\n}\n",
        );
        assert!(extract_edges(&s).is_empty());
    }

    #[test]
    fn cycle_detector_finds_two_cycle() {
        let mk = |a: &str, b: &str| EdgeSite {
            edge: Edge {
                from: a.into(),
                to: b.into(),
            },
            site: "x.rs:1".into(),
            function: "f".into(),
            line: 1,
        };
        let graph = build_graph(&[mk("a", "b"), mk("b", "a")]);
        let cycles = find_cycles(&graph);
        assert_eq!(cycles, vec![vec!["a".to_string(), "b".to_string()]]);
        let acyclic = build_graph(&[mk("a", "b"), mk("b", "c"), mk("a", "c")]);
        assert!(find_cycles(&acyclic).is_empty());
    }

    #[test]
    fn golden_roundtrip() {
        let mk = |a: &str, b: &str| EdgeSite {
            edge: Edge {
                from: a.into(),
                to: b.into(),
            },
            site: "x.rs:1".into(),
            function: "f".into(),
            line: 1,
        };
        let graph = build_graph(&[mk("a", "b"), mk("b", "c")]);
        let text = render_golden(&graph);
        let parsed = parse_golden(&text);
        assert_eq!(parsed.len(), 2);
        assert!(parsed.contains(&Edge {
            from: "a".into(),
            to: "b".into()
        }));
    }
}
