//! The four token-scan lints (the fifth, lock-order, lives in
//! [`crate::lockgraph`]).
//!
//! Each lint is a named pass over a [`Scanned`] file. Scoping is by path:
//! a lint only fires in the modules its invariant protects (see
//! `DESIGN.md` "Determinism invariants"). Findings carry the lint name so
//! `// vedb-lint: allow(<name>, "<reason>")` can suppress them with a
//! written justification.

use crate::scan::Scanned;
use crate::{Diagnostic, Severity};

/// Lint names, kept in one place so suppressions, fixtures and docs agree.
pub const NO_WALL_CLOCK: &str = "no-wall-clock";
/// See [`NO_WALL_CLOCK`].
pub const NO_UNSEEDED_RNG: &str = "no-unseeded-rng";
/// See [`NO_WALL_CLOCK`].
pub const ORDERED_SERIALIZATION: &str = "ordered-serialization";
/// See [`NO_WALL_CLOCK`].
pub const NO_PANIC_IN_RUNTIME: &str = "no-panic-in-runtime";
/// See [`NO_WALL_CLOCK`].
pub const LOCK_ORDER: &str = "lock-order";
/// Emitted for malformed / reason-less suppression comments.
pub const BAD_SUPPRESSION: &str = "bad-suppression";

/// Is `path` inside the sim's clock internals, where wall-clock reads are
/// the implementation of virtual time itself?
fn is_clock_internal(path: &str) -> bool {
    path.contains("crates/sim/src/time.rs")
}

/// Modules that feed `RunReport` / metrics / trace export: any unordered
/// iteration here can change report bytes between runs.
fn is_report_path(path: &str) -> bool {
    let p = path.replace('\\', "/");
    p.contains("crates/sim/src/metrics.rs")
        || p.contains("crates/sim/src/profile.rs")
        || p.contains("crates/sim/src/trace.rs")
        || p.contains("crates/sim/src/report.rs")
        || p.contains("crates/sim/src/contention.rs")
        || p.contains("crates/bench/")
}

/// Server-side request paths where a panic kills a storage node (or the
/// engine's commit path) instead of surfacing a typed, retryable error.
fn is_runtime_path(path: &str) -> bool {
    let p = path.replace('\\', "/");
    p.contains("crates/astore/src/server.rs")
        || p.contains("crates/pagestore/src/server.rs")
        || p.contains("crates/pagestore/src/redo.rs")
        || p.contains("crates/blobstore/src/")
        || p.contains("crates/core/src/db.rs")
        || p.contains("crates/core/src/wal.rs")
        || p.contains("crates/core/src/recovery.rs")
}

/// Find every occurrence of identifier `word` in `code` (word-boundary
/// match on sanitized text), returning byte offsets.
fn find_ident(code: &str, word: &str) -> Vec<usize> {
    let bytes = code.as_bytes();
    let mut hits = Vec::new();
    let mut from = 0;
    while let Some(rel) = code[from..].find(word) {
        let at = from + rel;
        let before_ok = at == 0 || {
            let b = bytes[at - 1];
            !(b.is_ascii_alphanumeric() || b == b'_')
        };
        let after = at + word.len();
        let after_ok = after >= bytes.len() || {
            let b = bytes[after];
            !(b.is_ascii_alphanumeric() || b == b'_')
        };
        if before_ok && after_ok {
            hits.push(at);
        }
        from = at + word.len();
    }
    hits
}

fn diag(s: &Scanned, lint: &str, line: usize, msg: String, out: &mut Vec<Diagnostic>) {
    if s.is_suppressed(lint, line).is_some() {
        return;
    }
    out.push(Diagnostic {
        severity: Severity::Error,
        lint: lint.to_string(),
        path: s.path.clone(),
        line,
        message: msg,
    });
}

/// Report malformed suppression directives (missing/empty reasons).
pub fn check_suppression_syntax(s: &Scanned, out: &mut Vec<Diagnostic>) {
    for (line, msg) in &s.bad_directives {
        out.push(Diagnostic {
            severity: Severity::Error,
            lint: BAD_SUPPRESSION.to_string(),
            path: s.path.clone(),
            line: *line,
            message: msg.clone(),
        });
    }
}

/// Lint 1 — **no-wall-clock**: `std::time::Instant`, `SystemTime` and
/// `std::thread::sleep` are forbidden outside the sim's clock internals.
/// Every latency in a report must come from the virtual clock; one stray
/// wall-clock read silently couples results to host load.
/// (`std::time::Duration` is fine: it is a value type, not a clock.)
pub fn no_wall_clock(s: &Scanned, out: &mut Vec<Diagnostic>) {
    if is_clock_internal(&s.path) {
        return;
    }
    for word in ["Instant", "SystemTime"] {
        for at in find_ident(&s.code, word) {
            let line = crate::scan::line_of(&s.code, at);
            diag(
                s,
                NO_WALL_CLOCK,
                line,
                format!(
                    "`{word}` reads the wall clock; all runtime timing must flow \
                     from the virtual clock (`SimCtx::now`)"
                ),
                out,
            );
        }
    }
    for at in find_ident(&s.code, "sleep") {
        // Only thread::sleep — `sleep` as a local name is unusual but legal.
        let prefix = &s.code[..at];
        let tail: String = prefix
            .chars()
            .rev()
            .take(24)
            .collect::<String>()
            .chars()
            .rev()
            .collect();
        if tail.trim_end().ends_with("thread::") {
            let line = crate::scan::line_of(&s.code, at);
            diag(
                s,
                NO_WALL_CLOCK,
                line,
                "`thread::sleep` blocks on the wall clock; use virtual-time \
                 waits (`SimCtx::wait_until` / `advance`) on simulated paths"
                    .to_string(),
                out,
            );
        }
    }
}

/// Lint 2 — **no-unseeded-rng**: `thread_rng()` / `rand::random` are
/// forbidden everywhere. Randomness must flow from the seeded `SimCtx`
/// RNG so two runs with the same seed are byte-identical.
pub fn no_unseeded_rng(s: &Scanned, out: &mut Vec<Diagnostic>) {
    for word in ["thread_rng", "from_entropy", "OsRng"] {
        for at in find_ident(&s.code, word) {
            let line = crate::scan::line_of(&s.code, at);
            diag(
                s,
                NO_UNSEEDED_RNG,
                line,
                format!(
                    "`{word}` draws OS entropy; all randomness must come from \
                     the seeded `SimCtx` RNG (xoshiro256++)"
                ),
                out,
            );
        }
    }
    // `rand::random` / `rand::random::<T>()` path form.
    for at in find_ident(&s.code, "random") {
        let prefix = &s.code[..at];
        if prefix.trim_end().ends_with("rand::") {
            let line = crate::scan::line_of(&s.code, at);
            diag(
                s,
                NO_UNSEEDED_RNG,
                line,
                "`rand::random` is seeded from OS entropy; use the seeded \
                 `SimCtx` RNG"
                    .to_string(),
                out,
            );
        }
    }
}

/// Lint 3 — **ordered-serialization**: in report-path modules, iterating a
/// `HashMap`/`HashSet` is flagged unless the statement shows an ordering
/// step (`sort`/`BTreeMap` collect). Hash iteration order is arbitrary
/// and changes across runs — on the report path that breaks
/// byte-determinism of `BENCH_*.json`.
pub fn ordered_serialization(s: &Scanned, out: &mut Vec<Diagnostic>) {
    if !is_report_path(&s.path) {
        return;
    }
    let hash_vars = collect_hash_idents(&s.code);
    let lines: Vec<&str> = s.code.lines().collect();
    for (i, line_text) in lines.iter().enumerate() {
        let line_no = i + 1;
        // Statement context: this line plus up to two continuation lines,
        // so `.iter()\n.map(..)\n.sorted..` chains are seen together.
        let stmt: String = lines[i..(i + 3).min(lines.len())].join(" ");
        let ordered = stmt.contains(".sort")
            || stmt.contains("BTreeMap")
            || stmt.contains("BTreeSet")
            || stmt.contains("sorted");
        if ordered {
            continue;
        }
        for var in &hash_vars {
            let direct_iter = [".iter()", ".keys()", ".values()", ".drain(", ".into_iter()"]
                .iter()
                .any(|m| line_text.contains(&format!("{var}{m}")));
            let for_loop = {
                // `for x in map` / `for (k, v) in &map` / `in map {`
                line_text.contains("for ")
                    && line_text.contains(" in ")
                    && line_text
                        .split(" in ")
                        .nth(1)
                        .map(|rhs| {
                            let rhs = rhs.trim_start_matches(['&', ' ']);
                            rhs == *var
                                || rhs.starts_with(&format!("{var} "))
                                || rhs.starts_with(&format!("{var} {{"))
                                || rhs.starts_with(&format!("{var}."))
                                || rhs.starts_with(&format!("self.{var}"))
                        })
                        .unwrap_or(false)
            };
            if direct_iter || for_loop {
                diag(
                    s,
                    ORDERED_SERIALIZATION,
                    line_no,
                    format!(
                        "iteration over hash collection `{var}` in a report-path \
                         module; hash order is nondeterministic — sort the result, \
                         or hold the data in a `BTreeMap`"
                    ),
                    out,
                );
                break; // one diagnostic per line is enough
            }
        }
    }
}

/// Identifiers declared (let-binding, struct field, or fn param) with a
/// `HashMap`/`HashSet` type in this file. Also catches
/// `= HashMap::new()` / `with_capacity` initializers.
fn collect_hash_idents(code: &str) -> Vec<String> {
    let mut vars = Vec::new();
    for line in code.lines() {
        let t = line.trim();
        let mentions_hash = t.contains("HashMap") || t.contains("HashSet");
        if !mentions_hash {
            continue;
        }
        // `let [mut] name: Hash... =` / `let [mut] name = Hash...`
        if let Some(rest) = t.strip_prefix("let ") {
            let rest = rest.strip_prefix("mut ").unwrap_or(rest);
            let name: String = rest
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if !name.is_empty() {
                vars.push(name);
                continue;
            }
        }
        // `name: HashMap<..>` field / param declaration.
        if let Some(colon) = t.find(':') {
            if t[colon..].contains("HashMap") || t[colon..].contains("HashSet") {
                let name: String = t[..colon]
                    .trim()
                    .trim_start_matches("pub ")
                    .trim_start_matches("pub(crate) ")
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect();
                if !name.is_empty() && name != "impl" && name != "fn" {
                    vars.push(name);
                }
            }
        }
    }
    vars.sort();
    vars.dedup();
    vars
}

/// Lint 4 — **no-panic-in-runtime**: `unwrap()` / `expect()` / `panic!` are
/// forbidden in server-side request paths. A panic there takes down a
/// simulated storage node mid-request (and in production would crash a
/// real server); failures must surface as typed errors the retry layer can
/// classify.
pub fn no_panic_in_runtime(s: &Scanned, out: &mut Vec<Diagnostic>) {
    if !is_runtime_path(&s.path) {
        return;
    }
    for (needle, what) in [
        (".unwrap()", "unwrap()"),
        (".expect(", "expect()"),
        ("panic!(", "panic!"),
        ("unimplemented!(", "unimplemented!"),
        ("todo!(", "todo!"),
    ] {
        let mut from = 0;
        while let Some(rel) = s.code[from..].find(needle) {
            let at = from + rel;
            from = at + needle.len();
            let line = crate::scan::line_of(&s.code, at);
            diag(
                s,
                NO_PANIC_IN_RUNTIME,
                line,
                format!(
                    "`{what}` in a server-side request path can kill the node \
                     mid-request; return a typed error (or justify the invariant \
                     with an allow-reason)"
                ),
                out,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan;

    #[test]
    fn hash_ident_collection() {
        let code = "let mut dur_of: HashMap<u64, u64> = HashMap::new();\n\
                    open: HashMap<u64, Vec<u64>>,\n\
                    let plain = 3;\n";
        let vars = collect_hash_idents(code);
        assert_eq!(vars, vec!["dur_of".to_string(), "open".to_string()]);
    }

    #[test]
    fn wall_clock_duration_is_allowed() {
        let s = scan("crates/core/src/x.rs", "use std::time::Duration;\n");
        let mut out = Vec::new();
        no_wall_clock(&s, &mut out);
        assert!(out.is_empty());
    }
}
