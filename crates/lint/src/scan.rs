//! Source sanitizer: the front half of every lint.
//!
//! `vedb-lint` deliberately avoids a full Rust parser (the workspace builds
//! offline; there is no `syn` to link against). Instead each file is
//! *sanitized*: comments and string/char literals are blanked out —
//! byte-for-byte, so line/column positions survive — and `// vedb-lint:`
//! directives are collected while doing so. Lints then run cheap token
//! scans over the sanitized text and can trust that every `Instant` or
//! `.unwrap()` they see is real code, not prose or a log message.
//!
//! The sanitizer also erases `#[cfg(test)]` items (a `mod tests { .. }`
//! block, a test-only `fn`, or a test-only `use`): test code may use wall
//! clocks, panics and unordered iteration freely — determinism invariants
//! protect the *runtime* and the *report path*.

/// One `// vedb-lint: allow(<lint>, "<reason>")` directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// 1-based line the directive sits on. A directive suppresses findings
    /// on its own line and, when it is the only thing on its line, on the
    /// next line — so both trailing and preceding-line styles work.
    pub line: usize,
    /// Lint name inside `allow(..)`.
    pub lint: String,
    /// The mandatory human-written reason; empty when the author forgot it
    /// (which is itself reported as a `bad-suppression` diagnostic).
    pub reason: String,
    /// Whether anything other than whitespace precedes the comment on its
    /// line (trailing style).
    pub trailing: bool,
}

/// A sanitized source file.
#[derive(Debug, Clone)]
pub struct Scanned {
    /// Path label used in diagnostics.
    pub path: String,
    /// Source with comments, strings and `#[cfg(test)]` items blanked out.
    /// Identical length and line structure to the original.
    pub code: String,
    /// All `vedb-lint:` directives found in comments.
    pub suppressions: Vec<Suppression>,
    /// Lines whose directive was malformed (missing reason, bad syntax).
    pub bad_directives: Vec<(usize, String)>,
}

impl Scanned {
    /// Is `lint` suppressed at `line`? (Directive on the same line, or
    /// alone on the line directly above.)
    pub fn is_suppressed(&self, lint: &str, line: usize) -> Option<&Suppression> {
        self.suppressions
            .iter()
            .find(|s| s.lint == lint && (s.line == line || (!s.trailing && s.line + 1 == line)))
    }
}

/// 1-based line number of byte offset `pos` in `src`.
pub fn line_of(src: &str, pos: usize) -> usize {
    src.as_bytes()[..pos]
        .iter()
        .filter(|&&b| b == b'\n')
        .count()
        + 1
}

fn blank(out: &mut [u8], from: usize, to: usize) {
    for b in &mut out[from..to] {
        if *b != b'\n' {
            *b = b' ';
        }
    }
}

/// Parse a `vedb-lint: allow(name, "reason")` directive from comment text.
/// Returns `Ok(Some((lint, reason)))`, `Ok(None)` when the comment is not a
/// directive at all, and `Err(msg)` for a malformed directive.
fn parse_directive(comment: &str) -> Result<Option<(String, String)>, String> {
    let Some(idx) = comment.find("vedb-lint:") else {
        return Ok(None);
    };
    let rest = comment[idx + "vedb-lint:".len()..].trim();
    let Some(args) = rest
        .strip_prefix("allow(")
        .and_then(|r| r.rfind(')').map(|e| &r[..e]))
    else {
        return Err(format!("malformed vedb-lint directive: `{}`", rest.trim()));
    };
    let Some((name, reason_part)) = args.split_once(',') else {
        return Err(format!(
            "vedb-lint allow({}) is missing its mandatory reason — write \
             `vedb-lint: allow({}, \"why this is sound\")`",
            args.trim(),
            args.trim()
        ));
    };
    let name = name.trim().to_string();
    let reason = reason_part.trim();
    let reason = reason
        .strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .unwrap_or("")
        .trim()
        .to_string();
    if name.is_empty() || reason.is_empty() {
        return Err(format!(
            "vedb-lint allow({name}) has an empty reason — suppressions must \
             say why the finding is sound"
        ));
    }
    Ok(Some((name, reason)))
}

/// Sanitize `src`, collecting directives along the way.
pub fn scan(path: &str, src: &str) -> Scanned {
    let bytes = src.as_bytes();
    let mut out = bytes.to_vec();
    let mut suppressions = Vec::new();
    let mut bad_directives = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        let next = bytes.get(i + 1).copied().unwrap_or(0);
        match b {
            b'/' if next == b'/' => {
                let end = src[i..].find('\n').map(|n| i + n).unwrap_or(bytes.len());
                let comment = &src[i..end];
                let line = line_of(src, i);
                let trailing = !src[..i].rsplit('\n').next().unwrap_or("").trim().is_empty();
                match parse_directive(comment) {
                    Ok(Some((lint, reason))) => suppressions.push(Suppression {
                        line,
                        lint,
                        reason,
                        trailing,
                    }),
                    Ok(None) => {}
                    Err(msg) => bad_directives.push((line, msg)),
                }
                blank(&mut out, i, end);
                i = end;
            }
            b'/' if next == b'*' => {
                // Nested block comments, as in real Rust.
                let start = i;
                let mut depth = 1;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                let comment = &src[start..i];
                match parse_directive(comment) {
                    Ok(Some((lint, reason))) => suppressions.push(Suppression {
                        line: line_of(src, start),
                        lint,
                        reason,
                        trailing: true,
                    }),
                    Ok(None) => {}
                    Err(msg) => bad_directives.push((line_of(src, start), msg)),
                }
                blank(&mut out, start, i);
            }
            b'"' => {
                // String literal (the `b` / `r#` prefix bytes stay as-is;
                // they are harmless identifiers once the payload is blank).
                let start = i;
                i += 1;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' => i += 2,
                        b'"' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
                blank(&mut out, start + 1, i.saturating_sub(1).max(start + 1));
            }
            b'r' if next == b'#' || next == b'"' => {
                // Raw string r"..." / r#"..."# / r##"..."## …
                let start = i;
                let mut j = i + 1;
                let mut hashes = 0;
                while bytes.get(j) == Some(&b'#') {
                    hashes += 1;
                    j += 1;
                }
                if bytes.get(j) == Some(&b'"') {
                    let closer: String = std::iter::once('"')
                        .chain(std::iter::repeat_n('#', hashes))
                        .collect();
                    let body_start = j + 1;
                    let end = src[body_start..]
                        .find(&closer)
                        .map(|n| body_start + n + closer.len())
                        .unwrap_or(bytes.len());
                    blank(&mut out, start + 1, end);
                    i = end;
                } else {
                    // `r#ident` raw identifier or plain `r` — skip the ident.
                    i = j;
                    while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_')
                    {
                        i += 1;
                    }
                }
            }
            b'\'' => {
                // Char literal vs lifetime. `'a` (lifetime) has no closing
                // quote within a couple of chars; `'x'` / `'\n'` do.
                if next == b'\\' {
                    // '\x' escape: find closing quote.
                    let start = i;
                    i += 2;
                    while i < bytes.len() && bytes[i] != b'\'' {
                        i += 1;
                    }
                    i += 1;
                    blank(&mut out, start + 1, (i.saturating_sub(1)).max(start + 1));
                } else if bytes.get(i + 2) == Some(&b'\'') {
                    blank(&mut out, i + 1, i + 2);
                    i += 3;
                } else {
                    i += 1; // lifetime: leave as-is
                }
                continue;
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                // Skip identifiers wholesale so `b"..."` prefixes or idents
                // containing quote-ish bytes can't confuse the scanner.
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                continue;
            }
            _ => i += 1,
        }
    }
    let mut code = String::from_utf8(out).unwrap_or_else(|_| src.to_string());
    erase_cfg_test(&mut code);
    Scanned {
        path: path.to_string(),
        code,
        suppressions,
        bad_directives,
    }
}

/// Blank every `#[cfg(test)]`-guarded item (and everything it encloses).
fn erase_cfg_test(code: &mut String) {
    let mut search_from = 0;
    loop {
        let hay = code.clone();
        let Some(rel) = hay[search_from..].find("#[cfg(test)]") else {
            break;
        };
        let attr_start = search_from + rel;
        let mut j = attr_start + "#[cfg(test)]".len();
        let bytes = hay.as_bytes();
        // Skip further attributes and whitespace up to the item.
        // Then blank to either the end of the item's brace block or the
        // terminating semicolon, whichever comes first at depth 0.
        let mut depth = 0usize;
        let mut end = bytes.len();
        while j < bytes.len() {
            match bytes[j] {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = j + 1;
                        break;
                    }
                }
                b';' if depth == 0 => {
                    end = j + 1;
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        // SAFETY of positions: all offsets come from the same string.
        let replaced: String = hay[attr_start..end]
            .chars()
            .map(|c| if c == '\n' { '\n' } else { ' ' })
            .collect();
        code.replace_range(attr_start..end, &replaced);
        search_from = end.min(code.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let s = scan(
            "x.rs",
            "let a = \"Instant::now()\"; // Instant in prose\nlet b = 1;\n",
        );
        assert!(!s.code.contains("Instant"));
        assert!(s.code.contains("let b = 1;"));
    }

    #[test]
    fn directive_with_reason_parses() {
        let s = scan(
            "x.rs",
            "foo(); // vedb-lint: allow(no-wall-clock, \"real-time dwell\")\n",
        );
        assert_eq!(s.suppressions.len(), 1);
        assert_eq!(s.suppressions[0].lint, "no-wall-clock");
        assert_eq!(s.suppressions[0].reason, "real-time dwell");
        assert!(s.suppressions[0].trailing);
    }

    #[test]
    fn directive_without_reason_is_reported() {
        let s = scan("x.rs", "// vedb-lint: allow(no-wall-clock)\nfoo();\n");
        assert!(s.suppressions.is_empty());
        assert_eq!(s.bad_directives.len(), 1);
    }

    #[test]
    fn cfg_test_blocks_are_erased() {
        let src =
            "fn live() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\n";
        let s = scan("x.rs", src);
        assert!(s.code.contains("x.unwrap()"));
        assert!(!s.code.contains("y.unwrap()"));
        assert!(!s.code.contains("mod tests"));
    }

    #[test]
    fn lifetimes_survive_char_literals() {
        let s = scan("x.rs", "fn f<'a>(x: &'a str) -> char { 'q' }\n");
        assert!(s.code.contains("<'a>"));
        assert!(!s.code.contains('q'));
    }

    #[test]
    fn preceding_line_suppression_covers_next_line() {
        let s = scan(
            "x.rs",
            "// vedb-lint: allow(no-panic-in-runtime, \"checked above\")\nx.unwrap();\n",
        );
        assert!(s.is_suppressed("no-panic-in-runtime", 2).is_some());
        assert!(s.is_suppressed("no-panic-in-runtime", 3).is_none());
    }
}
